#!/usr/bin/env bash
# Apply the repo's .clang-format to every C++ source under the formatted
# directories (the same set CI's format-check job verifies). Usage:
#   scripts/format.sh            # rewrite files in place
#   scripts/format.sh --check    # dry run: exit non-zero on any diff
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
mapfile -t files < <(git ls-files 'src/*.cpp' 'src/*.hpp' 'tests/*.cpp' \
  'bench/*.cpp' 'examples/*.cpp')

if [[ "${1:-}" == "--check" ]]; then
  "$CLANG_FORMAT" --dry-run --Werror "${files[@]}"
else
  "$CLANG_FORMAT" -i "${files[@]}"
fi
