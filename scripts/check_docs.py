#!/usr/bin/env python3
"""Docs link-and-coverage checker: keeps the prose wired to the code.

Two failure modes this guards against, neither of which any compiler sees:

  dead-link       A relative link or intra-repo anchor in README.md or
                  docs/*.md points at a file or heading that no longer
                  exists (file moved, heading reworded).
  spec-coverage   src/scenario/spec_io.cpp learns a new field but
                  docs/spec-format.md never mentions it — the documented
                  spec surface silently falls behind the parsed one.

Runs as a ctest (`check_docs`) and as a CI step. Pure stdlib Python, no
build needed.

Usage: check_docs.py --root <repo root>
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
# Fields read by the spec parser: r.opt("x") / r.req("x") on an ObjectReader,
# plus the reader variables the flow/web100/sweep parsers use.
FIELD_RE = re.compile(r"\b(?:r|w|rr|a)\.(?:opt|req)\(\"([a-z_0-9]+)\"\)")

# Parser-internal names that are not spec-file fields (or are documented
# under a different, canonical name). Keep this list short and justified.
FIELD_EXEMPT: set[str] = set()


def github_anchor(heading: str) -> str:
    """GitHub's heading -> anchor rule: lowercase, drop punctuation,
    spaces to hyphens (good enough for the ASCII headings we write)."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(md_path: pathlib.Path) -> set[str]:
    return {github_anchor(h) for h in HEADING_RE.findall(md_path.read_text())}


def check_links(root: pathlib.Path, docs: list[pathlib.Path]) -> list[str]:
    errors = []
    for doc in docs:
        text = doc.read_text()
        # Strip fenced code blocks: example snippets are not live links.
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            dest = doc if not path_part else (doc.parent / path_part).resolve()
            rel = doc.relative_to(root)
            if not dest.exists():
                errors.append(f"{rel}: dead link '{target}' (no such file)")
                continue
            if anchor and dest.suffix == ".md":
                if anchor not in anchors_of(dest):
                    errors.append(
                        f"{rel}: dead anchor '{target}' "
                        f"(no heading '#{anchor}' in {dest.name})")
    return errors


def check_spec_coverage(root: pathlib.Path) -> list[str]:
    spec_io = root / "src" / "scenario" / "spec_io.cpp"
    doc = root / "docs" / "spec-format.md"
    errors = []
    if not spec_io.exists():
        return [f"missing {spec_io.relative_to(root)}"]
    if not doc.exists():
        return [f"missing {doc.relative_to(root)} (the spec surface must be documented)"]
    parsed = set(FIELD_RE.findall(spec_io.read_text())) - FIELD_EXEMPT
    if len(parsed) < 30:
        errors.append(
            f"spec-coverage: only {len(parsed)} fields scraped from spec_io.cpp — "
            "the FIELD_RE pattern has likely fallen out of sync with the parser")
    # Strip fenced blocks first: they would derail the single-backtick
    # pairing below, and example snippets are not documentation of record.
    doc_text = re.sub(r"```.*?```", "", doc.read_text(), flags=re.DOTALL)
    # A field counts as documented when it appears backtick-quoted anywhere
    # (table cells, prose, or a `parent.child` path).
    documented = set()
    for code_span in re.findall(r"`([^`]+)`", doc_text):
        for token in re.split(r"[^\w]+", code_span):
            if token:
                documented.add(token)
    for field in sorted(parsed - documented):
        errors.append(f"docs/spec-format.md: parsed spec field '{field}' is undocumented")
    return errors


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--root", default=".", help="repository root")
    args = ap.parse_args()
    root = pathlib.Path(args.root).resolve()

    docs = [root / "README.md"] + sorted((root / "docs").glob("*.md"))
    docs = [d for d in docs if d.exists()]
    errors = check_links(root, docs) + check_spec_coverage(root)
    for e in errors:
        print(f"check_docs: {e}", file=sys.stderr)
    if errors:
        print(f"check_docs: {len(errors)} problem(s)", file=sys.stderr)
        return 1
    fields = len(set(FIELD_RE.findall((root / 'src/scenario/spec_io.cpp').read_text())))
    print(f"check_docs: {len(docs)} documents, {fields} spec fields — all wired")
    return 0


if __name__ == "__main__":
    sys.exit(main())
