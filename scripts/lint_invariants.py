#!/usr/bin/env python3
"""Project-invariant linter: rules a generic static analyzer cannot express.

The repo's two load-bearing promises are (a) every artifact regenerates
byte-identically from a fixed seed and (b) the event core is allocation-free
on its hot path. Both are trivially easy to break with one innocuous line —
a wall-clock read in the simulator, an unordered-map iteration in a CSV
emitter, a std::function capture in the scheduler — and none of those is a
compile error or a clang-tidy diagnostic. This linter makes them build
failures. It runs as a ctest (`lint_invariants`) and as a CI gate.

Rules
-----
  determinism-clock   src/sim and src/net must not read wall clocks or
                      nondeterministic entropy (rand/srand/random_device,
                      system_clock/steady_clock/high_resolution_clock,
                      time()/clock()/gettimeofday/clock_gettime,
                      filesystem timestamps). sim::Rng + sim::Time are the
                      only sanctioned sources of randomness and time.
  golden-unordered    Golden-emitting code (src/artifacts, src/metrics,
                      src/web100/csv_export.*) must not mention unordered
                      containers at all, and nothing under src/web100 may
                      *iterate* one (keyed lookup is fine): iteration order
                      is hash-seed- and libstdc++-version-dependent, which
                      is exactly how a golden goes flaky.
  hotpath-alloc       The scheduler hot path (scheduler.{hpp,cpp},
                      event_entry.hpp, inline_callback.hpp) and the
                      partitioned window loop (partition.{hpp,cpp},
                      cross_link.{hpp,cpp}) must not use std::function,
                      smart pointers, or non-placement new.
                      PR 3 made the schedule/cancel/reschedule loop
                      allocation-free; tests/alloc_guard_test.cpp checks
                      the runtime half of that claim, this rule the static
                      half.
  header-hygiene      Every public header under src/ must start with
                      `#pragma once`, must not climb directories in quoted
                      includes (paths are rooted at src/), and must be
                      self-contained for a project-tuned token->header map
                      (use std::vector => include <vector>, ...).

Usage: lint_invariants.py [--root REPO_ROOT] [--list-rules]
Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# --------------------------------------------------------------------------
# C++ source stripping: comments, string/char literals (incl. raw strings)
# are blanked so token rules can't false-positive on prose or log text.
# Line structure is preserved for diagnostics.
# --------------------------------------------------------------------------


def strip_cpp(text: str) -> str:
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":  # line comment
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":  # block comment
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            seg = text[i : j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j + 2
        elif c == "R" and nxt == '"':  # raw string literal
            m = re.match(r'R"([^(\s]*)\(', text[i:])
            if not m:
                out.append(c)
                i += 1
                continue
            closer = ")" + m.group(1) + '"'
            j = text.find(closer, i + m.end())
            j = n - len(closer) if j == -1 else j
            seg = text[i : j + len(closer)]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j + len(closer)
        elif (
            c == "'"
            and i > 0
            and text[i - 1] in "0123456789abcdefABCDEF'"
            and (nxt.isalnum() or nxt == "_")
        ):
            # C++14 digit separator (1'000'000, 0xFF'FF), not a char literal:
            # treating it as an opener would blank real code up to the next
            # apostrophe and corrupt line numbers.
            out.append(c)
            i += 1
        elif c in "\"'":  # string / char literal
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            seg = text[i + 1 : j]
            out.append(quote + "".join(ch if ch == "\n" else " " for ch in seg) + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def scan_lines(stripped: str, pattern: re.Pattern, skip_includes: bool = True):
    """Yield (line_number, match) for every match outside #include lines."""
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        if skip_includes and line.lstrip().startswith("#"):
            continue
        for m in pattern.finditer(line):
            yield lineno, m


# --------------------------------------------------------------------------
# Rule: determinism-clock
# --------------------------------------------------------------------------

CLOCK_BANNED = [
    (re.compile(r"\b(?:std::)?s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"std::random_device"), "std::random_device"),
    (re.compile(r"\b(?:system|steady|high_resolution)_clock\b"), "wall/monotonic clock"),
    (re.compile(r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"), "time()"),
    (re.compile(r"\bgettimeofday\s*\(|\bclock_gettime\s*\("), "POSIX clock read"),
    (re.compile(r"(?<![\w:])clock\s*\(\s*\)"), "clock()"),
    (re.compile(r"\blast_write_time\b|\bfile_time_type\b"), "filesystem timestamp"),
]


def rule_determinism_clock(root: Path):
    findings = []
    for directory in ("src/sim", "src/net"):
        for path in sorted((root / directory).rglob("*")):
            if path.suffix not in (".hpp", ".cpp"):
                continue
            stripped = strip_cpp(path.read_text())
            for pattern, what in CLOCK_BANNED:
                for lineno, _ in scan_lines(stripped, pattern):
                    findings.append(
                        Finding(
                            path.relative_to(root), lineno, "determinism-clock",
                            f"{what} in deterministic core; use sim::Rng / sim::Time "
                            "(simulated clock) instead",
                        )
                    )
    return findings


# --------------------------------------------------------------------------
# Rule: golden-unordered
# --------------------------------------------------------------------------

GOLDEN_STRICT_DIRS = ("src/artifacts", "src/metrics")
GOLDEN_STRICT_FILES = ("src/web100/csv_export.hpp", "src/web100/csv_export.cpp")
UNORDERED_DECL = re.compile(r"std::unordered_(?:multi)?(?:map|set)\s*<[^;{=]*>\s+(\w+)")


def rule_golden_unordered(root: Path):
    findings = []
    strict_paths = []
    for directory in GOLDEN_STRICT_DIRS:
        strict_paths.extend(
            p for p in sorted((root / directory).rglob("*")) if p.suffix in (".hpp", ".cpp")
        )
    strict_paths.extend(root / f for f in GOLDEN_STRICT_FILES if (root / f).exists())

    token = re.compile(r"\bunordered_(?:multi)?(?:map|set)\b")
    for path in strict_paths:
        stripped = strip_cpp(path.read_text())
        for lineno, line in enumerate(stripped.splitlines(), start=1):
            if token.search(line):
                findings.append(
                    Finding(
                        path.relative_to(root), lineno, "golden-unordered",
                        "unordered container in golden-emitting code; use std::map, "
                        "a sorted vector, or a side vector of keys in insertion order",
                    )
                )

    # src/web100 may *hold* unordered maps (PollingAgent's keyed series) but
    # must never iterate them: collect the declared names, then flag
    # range-fors and begin()/end() over them anywhere in the directory.
    web100 = [p for p in sorted((root / "src/web100").rglob("*")) if p.suffix in (".hpp", ".cpp")]
    unordered_names = set()
    stripped_by_path = {}
    for path in web100:
        stripped = strip_cpp(path.read_text())
        stripped_by_path[path] = stripped
        unordered_names.update(UNORDERED_DECL.findall(stripped))
    if unordered_names:
        names = "|".join(re.escape(n) for n in sorted(unordered_names))
        # begin() (in any spelling) is what starts an iteration; a bare
        # `find(k) == end()` membership probe is order-independent and fine.
        iteration = re.compile(
            rf"for\s*\([^;()]*:\s*(?:this->)?({names})\s*\)|"
            rf"\b({names})\s*\.\s*c?r?begin\s*\("
        )
        for path, stripped in stripped_by_path.items():
            for lineno, m in scan_lines(stripped, iteration):
                name = m.group(1) or m.group(2)
                findings.append(
                    Finding(
                        path.relative_to(root), lineno, "golden-unordered",
                        f"iteration over unordered container '{name}': order is "
                        "hash-seed-dependent and will flake goldens; iterate an "
                        "insertion-ordered key vector instead",
                    )
                )
    return findings


# --------------------------------------------------------------------------
# Rule: hotpath-alloc
# --------------------------------------------------------------------------

HOTPATH_FILES = (
    "src/sim/scheduler.hpp",
    "src/sim/scheduler.cpp",
    "src/sim/event_entry.hpp",
    "src/sim/inline_callback.hpp",
    # The partitioned window loop (stage -> publish -> drain -> deliver) is
    # part of the steady-state hot path: alloc_guard_test asserts a warm
    # window round performs zero allocations, so the same constructs are
    # banned here.
    "src/sim/partition.hpp",
    "src/sim/partition.cpp",
    "src/net/cross_link.hpp",
    "src/net/cross_link.cpp",
    # The fluid integrator ticks once per stride for the whole run; its
    # sources/couplings/driver (net/fluid.*) and the queue coupling surface
    # it drives (net/queue.hpp) are steady-state hot path too.
    "src/net/fluid.hpp",
    "src/net/fluid.cpp",
    "src/net/queue.hpp",
)
HOTPATH_BANNED = [
    (re.compile(r"std::function\b"), "std::function (type-erased heap closure)"),
    (re.compile(r"std::(?:make_shared|make_unique)\b"), "heap-allocating factory"),
    (re.compile(r"std::(?:shared|unique|weak)_ptr\b"), "smart pointer"),
    # `::new (addr)` placement-new into InlineCallback storage is the one
    # sanctioned spelling; anything else — including a qualified `::new T`
    # without a placement-address argument — is a heap allocation.
    (re.compile(r"(?<!:)\bnew\b(?!\s*\()"), "non-placement operator new"),
    (re.compile(r"(?<!:)\bnew\s*\("), "unqualified new; spell placement new as ::new(addr)"),
    (re.compile(r"::\s*new\b(?!\s*\()"), "::new without a placement address (heap allocation)"),
]


def rule_hotpath_alloc(root: Path):
    findings = []
    for rel in HOTPATH_FILES:
        path = root / rel
        if not path.exists():
            continue
        stripped = strip_cpp(path.read_text())
        for pattern, what in HOTPATH_BANNED:
            for lineno, _ in scan_lines(stripped, pattern):
                findings.append(
                    Finding(
                        path.relative_to(root), lineno, "hotpath-alloc",
                        f"{what} in the scheduler hot path; the event core is "
                        "allocation-free (InlineCallback + slot arena) and "
                        "tests/alloc_guard_test.cpp enforces 0 allocs at runtime",
                    )
                )
    return findings


# --------------------------------------------------------------------------
# Rule: header-hygiene
# --------------------------------------------------------------------------

# token pattern -> acceptable providing headers (any one satisfies).
SELF_CONTAINMENT = [
    (re.compile(r"std::vector\b"), ("vector",)),
    (re.compile(r"std::string\b"), ("string",)),
    (re.compile(r"std::string_view\b"), ("string_view",)),
    (re.compile(r"std::u?int(?:8|16|32|64)_t\b|std::u?int_fast|std::u?intptr_t"), ("cstdint",)),
    (re.compile(r"std::size_t\b|std::byte\b|std::ptrdiff_t\b|std::nullptr_t\b"), ("cstddef",)),
    (re.compile(r"std::optional\b|std::nullopt\b"), ("optional",)),
    (re.compile(r"std::function\b"), ("functional",)),
    (re.compile(r"std::atomic\b"), ("atomic",)),
    (re.compile(r"std::(?:jthread|thread)\b"), ("thread",)),
    (re.compile(r"std::mutex\b|std::lock_guard\b|std::scoped_lock\b"), ("mutex",)),
    (re.compile(r"std::(?:unique|shared|weak)_ptr\b|std::make_(?:unique|shared)\b"), ("memory",)),
    (re.compile(r"std::span\b"), ("span",)),
    (re.compile(r"std::array\b"), ("array",)),
    (re.compile(r"std::pair\b|std::move\b|std::forward\b|std::exchange\b|std::swap\b"),
     ("utility",)),
    (re.compile(r"std::numeric_limits\b"), ("limits",)),
    (re.compile(r"std::(?:priority_queue|queue|deque)\b"), ("queue", "deque")),
    (re.compile(r"std::map\b|std::multimap\b"), ("map",)),
    (re.compile(r"std::unordered_(?:multi)?map\b"), ("unordered_map",)),
    (re.compile(r"std::unordered_(?:multi)?set\b"), ("unordered_set",)),
    (re.compile(r"std::variant\b|std::monostate\b|std::visit\b"), ("variant",)),
    (re.compile(r"(?<![\w:])assert\s*\("), ("cassert",)),
    (re.compile(r"std::ostream\b|std::istream\b"), ("iosfwd", "ostream", "istream", "iostream")),
    (re.compile(r"std::ostringstream\b|std::istringstream\b|std::stringstream\b"), ("sstream",)),
    (re.compile(r"std::(?:runtime_error|invalid_argument|logic_error|out_of_range)\b"),
     ("stdexcept",)),
    (re.compile(r"std::exception_ptr\b|std::current_exception\b|std::rethrow_exception\b"),
     ("exception",)),
]

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*[<"]([^>"]+)[>"]', re.MULTILINE)
UPWARD_INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"\.\./', re.MULTILINE)


def rule_header_hygiene(root: Path):
    findings = []
    for path in sorted((root / "src").rglob("*.hpp")):
        raw = path.read_text()
        rel = path.relative_to(root)
        stripped = strip_cpp(raw)

        # Comments are stripped first so a leading license/doc block of any
        # length never hides (or stands in for) the guard: the first line of
        # actual code must be `#pragma once`.
        first_code = next((ln.strip() for ln in stripped.splitlines() if ln.strip()), "")
        if first_code != "#pragma once":
            findings.append(
                Finding(rel, 1, "header-hygiene", "public header must open with #pragma once")
            )

        for m in UPWARD_INCLUDE_RE.finditer(raw):
            lineno = raw.count("\n", 0, m.start()) + 1
            findings.append(
                Finding(
                    rel, lineno, "header-hygiene",
                    'upward-relative #include "../..." — quoted includes are rooted at src/ '
                    '(e.g. #include "sim/time.hpp")',
                )
            )

        includes = set(INCLUDE_RE.findall(raw))
        for pattern, providers in SELF_CONTAINMENT:
            if any(p in includes for p in providers):
                continue
            hits = list(scan_lines(stripped, pattern))
            if hits:
                lineno = hits[0][0]
                want = " or ".join(f"<{p}>" for p in providers)
                findings.append(
                    Finding(
                        rel, lineno, "header-hygiene",
                        f"uses '{hits[0][1].group(0).strip()}' but does not include {want} "
                        "(headers must be self-contained)",
                    )
                )
    return findings


RULES = {
    "determinism-clock": rule_determinism_clock,
    "golden-unordered": rule_golden_unordered,
    "hotpath-alloc": rule_hotpath_alloc,
    "header-hygiene": rule_header_hygiene,
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: the checkout containing this script)")
    parser.add_argument("--list-rules", action="store_true", help="print rule ids and exit")
    args = parser.parse_args()

    if args.list_rules:
        for name in RULES:
            print(name)
        return 0

    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"lint_invariants: no src/ under {root}", file=sys.stderr)
        return 2

    findings = []
    for rule in RULES.values():
        findings.extend(rule(root))
    for f in findings:
        print(f)
    if findings:
        print(f"\nlint_invariants: {len(findings)} finding(s) across {len(RULES)} rules",
              file=sys.stderr)
        return 1
    print(f"lint_invariants: clean ({len(RULES)} rules)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
