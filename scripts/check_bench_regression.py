#!/usr/bin/env python3
"""Bench-regression guard for the scheduler smoke benchmark.

Diffs a freshly produced BENCH_scheduler.json against the checked-in
bench/baseline.json, per (scenario, backend) pair, on events/sec. A pair
that falls more than --tolerance below its baseline fails the check; a
pair more than --tolerance above it is reported as a candidate for a
baseline refresh (run with --update, or copy the fresh file over
bench/baseline.json, and commit the diff).

Only the Python standard library is used.
"""

import argparse
import json
import shutil
import sys


def load_results(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    results = {}
    for entry in doc.get("results", []):
        key = (entry["scenario"], entry["backend"])
        results[key] = float(entry["events_per_sec"])
    if not results:
        sys.exit(f"error: {path} contains no results")
    return results


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly produced BENCH_scheduler.json")
    parser.add_argument("baseline", help="checked-in baseline (bench/baseline.json)")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional slowdown per pair (default 0.25 = -25%%)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="copy the fresh file over the baseline instead of checking",
    )
    args = parser.parse_args()

    if args.update:
        shutil.copyfile(args.fresh, args.baseline)
        print(f"updated {args.baseline} from {args.fresh}")
        return 0

    fresh = load_results(args.fresh)
    baseline = load_results(args.baseline)

    failures = 0
    improvements = 0
    width = max(len(f"{s} / {b}") for s, b in baseline)
    for key in sorted(baseline):
        scenario, backend = key
        label = f"{scenario} / {backend}"
        base = baseline[key]
        if key not in fresh:
            print(f"{label:<{width}}  FAIL   missing from fresh results")
            failures += 1
            continue
        now = fresh[key]
        ratio = now / base
        if ratio < 1.0 - args.tolerance:
            print(
                f"{label:<{width}}  FAIL   {now:>12,.0f} ev/s vs baseline "
                f"{base:>12,.0f} ({ratio - 1.0:+.1%}, tolerance -{args.tolerance:.0%})"
            )
            failures += 1
        else:
            note = ""
            if ratio > 1.0 + args.tolerance:
                note = "  (faster than baseline; consider --update)"
                improvements += 1
            print(
                f"{label:<{width}}  OK     {now:>12,.0f} ev/s vs baseline "
                f"{base:>12,.0f} ({ratio - 1.0:+.1%}){note}"
            )

    for key in sorted(set(fresh) - set(baseline)):
        print(f"{key[0]} / {key[1]}: not in baseline (new scenario?); add it via --update")

    if failures:
        print(
            f"\n{failures} benchmark pair(s) regressed beyond -{args.tolerance:.0%}. "
            "If intentional, refresh bench/baseline.json and commit the diff."
        )
        return 1
    print(f"\nall {len(baseline)} benchmark pairs within -{args.tolerance:.0%} of baseline.")
    if improvements:
        print(f"({improvements} pair(s) ran >{args.tolerance:.0%} faster; baseline is stale.)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
