#pragma once

#include <cstddef>
#include <cstdint>

#include "net/data_rate.hpp"
#include "sim/time.hpp"

namespace rss::core {

/// Canonical parameters of the paper's testbed (§4): a 100 Mbps path
/// between Argonne and Lawrence Berkeley with a 60 ms round-trip time, a
/// Linux 2.4 host whose NIC interface queue (txqueuelen) holds 100 packets,
/// and 1500-byte Ethernet frames.
///
/// Everything that regenerates a paper artifact starts from these values;
/// sweeps perturb one dimension at a time.
struct CanonicalPath {
  net::DataRate nic_rate{net::DataRate::mbps(100)};   ///< host NIC = bottleneck
  net::DataRate wan_rate{net::DataRate::gbps(1)};     ///< WAN faster than host
  sim::Time one_way_delay{sim::Time::milliseconds(30)};  ///< RTT = 60 ms
  std::size_t ifq_capacity_packets{100};              ///< Linux 2.4 txqueuelen
  std::uint32_t mss{1460};

  [[nodiscard]] sim::Time rtt() const { return one_way_delay * 2; }

  /// Path bandwidth-delay product in packets of (MSS + 40B headers).
  [[nodiscard]] double bdp_packets() const {
    const double bytes = static_cast<double>(nic_rate.bits_per_second()) / 8.0 *
                         rtt().to_seconds();
    return bytes / static_cast<double>(mss + 40);
  }
};

}  // namespace rss::core
