#pragma once

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string_view>

#include "control/pid.hpp"
#include "sim/time.hpp"
#include "tcp/reno.hpp"

namespace rss::core {

/// Restricted Slow-Start — the paper's contribution (§3).
///
/// A PID controller paces window growth during slow-start:
///  * process variable: current occupancy of the local interface queue
///    (IFQ) the connection transmits through,
///  * set point: `setpoint_fraction` (default 0.9) of the maximum IFQ size,
///  * controller: `u = Kp (E + (1/Ti)∫E dt + Td dE/dt)` with gains from
///    Ziegler–Nichols tuning (`TuningResult::paper_rule()`).
///
/// The controller output, interpreted in MSS-per-ACK units and clamped to
/// [min_increment_mss, max_increment_mss], *replaces* the fixed +1 MSS
/// slow-start increment:
///  * far below the set point, the output saturates at +1 ⇒ stock
///    exponential doubling,
///  * approaching the set point the increment shrinks smoothly ⇒ growth is
///    paced instead of overflowing the IFQ,
///  * above the set point (burst overshoot) a negative output trims cwnd.
///
/// Congestion avoidance and loss recovery are untouched (the paper is
/// explicit that only the slow-start phase changes), so everything outside
/// on_ack-in-slow-start delegates to Reno. A send-stall — which this
/// algorithm exists to prevent, but can still occur under pathological
/// gains — reacts like Linux (CWR) and additionally re-centres the
/// integrator, since a stall proves the integral wound up past reality.
class RestrictedSlowStart : public tcp::RenoCongestionControl {
 public:
  struct Options {
    double setpoint_fraction{0.9};  ///< paper: "90% of the maximum IFQ size"
    /// Gains from Ziegler–Nichols (paper rule). Defaults were produced by
    /// the simulation-in-the-loop tuner on the canonical ANL–LBNL path
    /// (see bench/ext_tuning and scenario::tune_restricted_slow_start).
    control::PidGains gains{0.12, 0.30, 0.10};
    double max_increment_mss{1.0};   ///< never grow faster than stock slow-start
    double min_increment_mss{-1.0};  ///< allow trimming on overshoot
    double derivative_filter_n{10.0};
    /// Integral separation: integrate only while |error| is within this
    /// fraction of the IFQ capacity. Below the path BDP the queue drains to
    /// empty every round (large positive error by physics, not by window
    /// deficit), and integrating there winds the controller up enough to
    /// push straight through the set point.
    double integral_separation_fraction{0.25};
    /// Hard burst guard: once occupancy is within this many packets of
    /// capacity, the increment is clamped to <= 0 regardless of controller
    /// output. Covers the 2-3 packet per-ACK send bursts the sampled
    /// occupancy cannot see. Enforced per ACK even in kernel-timer mode.
    double guard_packets{4.0};
    /// Controller sampling mode. Zero (default) recomputes the PID on
    /// every ACK — the event-driven ideal, which turns out to be
    /// unconditionally stable because the IFQ is local (no dead time).
    /// A positive period emulates the paper's kernel implementation, where
    /// the controller ran at timer granularity (Linux 2.4: HZ=100, 10 ms
    /// jiffies): the output is recomputed once per period and *held*
    /// between updates. The hold introduces the loop delay that makes
    /// Ziegler-Nichols closed-loop tuning meaningful (§3).
    sim::Time sample_period{sim::Time::zero()};
    RenoCongestionControl::Options reno{};
  };

  /// Options preset for the kernel-timer controller: 10 ms sample-and-hold
  /// (Linux 2.4 HZ=100) with gains from the simulation-in-the-loop
  /// Ziegler-Nichols run under that same period (bench/ext_tuning:
  /// Kc ~ 0.078, Tc ~ 0.020 s -> paper rule 0.33/0.5/0.33). The per-ACK
  /// defaults above are NOT stable under a 10 ms hold — the hold adds loop
  /// delay, so the gain must drop accordingly.
  [[nodiscard]] static Options kernel_timer_options() {
    Options opt;
    opt.sample_period = sim::Time::milliseconds(10);
    opt.gains = control::PidGains{0.026, 0.010, 0.0066};
    return opt;
  }

  RestrictedSlowStart() : RestrictedSlowStart(Options{}) {}
  explicit RestrictedSlowStart(Options opt)
      : RenoCongestionControl(opt.reno),
        opt_{opt},
        pid_{opt.gains,
             control::OutputLimits{opt.min_increment_mss, opt.max_increment_mss},
             opt.derivative_filter_n} {}

  void on_ack(std::uint32_t acked_bytes) override;
  bool on_local_congestion() override;

  [[nodiscard]] std::string_view name() const override { return "restricted-slow-start"; }

  /// Set point in packets given the attached device's IFQ capacity.
  [[nodiscard]] double setpoint_packets() const;

  [[nodiscard]] const control::PidController& pid() const { return pid_; }
  [[nodiscard]] const Options& options() const { return opt_; }
  /// Last controller output in MSS-per-ACK units (diagnostic).
  [[nodiscard]] double last_increment_mss() const { return last_increment_; }

 private:
  Options opt_;
  control::PidController pid_;
  std::optional<sim::Time> last_update_;
  double last_increment_{0.0};
  double held_output_{0.0};  ///< kernel-timer mode: output held between samples
};

}  // namespace rss::core
