#include "core/restricted_slow_start.hpp"

namespace rss::core {

double RestrictedSlowStart::setpoint_packets() const {
  return opt_.setpoint_fraction * static_cast<double>(host().ifq_capacity_packets());
}

void RestrictedSlowStart::on_ack(std::uint32_t acked_bytes) {
  tcp::CcHost& h = host();
  const auto mss = static_cast<double>(h.mss());

  if (!in_slow_start()) {
    // Congestion avoidance is stock Reno — the paper modifies slow-start only.
    h.set_cwnd_bytes(h.cwnd_bytes() + mss * mss / h.cwnd_bytes());
    return;
  }

  const sim::Time now = h.now();
  const double occupancy = static_cast<double>(h.ifq_occupancy_packets());
  const double capacity = static_cast<double>(h.ifq_capacity_packets());
  const double error = setpoint_packets() - occupancy;

  // Sample clock: every ACK in the event-driven default, or once per
  // kernel-timer period with the output held in between (see Options).
  const bool due = !last_update_ || opt_.sample_period.is_zero() ||
                   now >= *last_update_ + opt_.sample_period;
  if (due) {
    // Coalesce zero-interval samples (ACK bursts landing at one timestamp)
    // by padding dt to one nanosecond — the integral slice stays negligible.
    double dt = 1e-9;
    if (last_update_ && now > *last_update_) dt = (now - *last_update_).to_seconds();
    last_update_ = now;

    // Integral separation (see Options): only integrate near the set point.
    const bool integrate =
        std::abs(error) <= opt_.integral_separation_fraction * capacity;
    held_output_ = pid_.update(error, dt, integrate);  // MSS per ACK, saturated
  }
  double u = held_output_;

  // Burst guard: with the queue within a send-burst of overflowing, never
  // grow — the sampled occupancy is a round-trip-old view of a bursty
  // process and the cost of one more packet here is a send-stall. Applied
  // per ACK so a held positive output cannot push through the top.
  if (occupancy >= capacity - opt_.guard_packets) u = std::min(u, 0.0);
  last_increment_ = u;

  // Scale by acked data the way RFC 5681 does (min(N, SMSS)/MSS) so delayed
  // ACKs do not double the restricted rate.
  const double ack_scale =
      std::min(static_cast<double>(acked_bytes), mss) / mss;
  h.set_cwnd_bytes(h.cwnd_bytes() + u * mss * ack_scale);
}

bool RestrictedSlowStart::on_local_congestion() {
  // A stall means the controller's model of the queue was stale (e.g. a
  // cross-traffic burst filled the IFQ between ACKs). React like the stock
  // stack, and flush the integral so the controller does not keep pushing.
  const bool reduced = RenoCongestionControl::on_local_congestion();
  if (reduced) pid_.set_integral(0.0);
  return reduced;
}

}  // namespace rss::core
