#pragma once

#include <string_view>

#include <cstdint>

#include "core/restricted_slow_start.hpp"
#include "tcp/highspeed.hpp"

namespace rss::core {

/// Restricted Slow-Start composed with HighSpeed TCP congestion avoidance
/// — the natural "future work" of the paper: RSS repairs the *startup*
/// phase on large-BDP paths (host IFQ overflow), HSTCP (RFC 3649) repairs
/// the *steady-state* phase (AIMD too slow to recover a large window).
/// The two modifications are disjoint by construction — the paper is
/// explicit that RSS touches only slow-start — so the composition is
/// exactly: RSS's PID-paced growth while cwnd < ssthresh, HSTCP's a(w)/
/// b(w) response otherwise.
class HighSpeedRestrictedSlowStart final : public RestrictedSlowStart {
 public:
  struct HybridOptions {
    RestrictedSlowStart::Options rss{};
    tcp::HighSpeedCongestionControl::HsOptions highspeed{};
  };

  HighSpeedRestrictedSlowStart() : HighSpeedRestrictedSlowStart(HybridOptions{}) {}
  explicit HighSpeedRestrictedSlowStart(HybridOptions opt)
      : RestrictedSlowStart(opt.rss), hs_{opt.highspeed} {}

  void attach(tcp::CcHost& host) override {
    RestrictedSlowStart::attach(host);
    hs_.attach(host);
  }

  void on_ack(std::uint32_t acked_bytes) override {
    if (in_slow_start()) {
      RestrictedSlowStart::on_ack(acked_bytes);  // PID-paced startup
    } else {
      hs_.on_ack(acked_bytes);  // a(w) super-linear avoidance
    }
  }

  void on_fast_retransmit() override { hs_.on_fast_retransmit(); }  // b(w) decrease

  [[nodiscard]] std::string_view name() const override { return "highspeed-rss"; }

 private:
  // Delegate for the congestion-avoidance response function. Attached to
  // the same host, so window writes land in the same place; only one of
  // the two algorithms acts per event.
  tcp::HighSpeedCongestionControl hs_;
};

}  // namespace rss::core
