#include "web100/csv_export.hpp"

#include <stdexcept>

#include "metrics/csv.hpp"

namespace rss::web100 {

std::size_t export_csv(const PollingAgent& agent, std::ostream& os,
                       const std::vector<std::string>& variables, sim::Time start,
                       sim::Time end, sim::Time period) {
  if (variables.empty()) throw std::invalid_argument("export_csv: no variables");
  if (period <= sim::Time::zero()) throw std::invalid_argument("export_csv: period must be > 0");

  metrics::CsvWriter csv{os};
  csv.field("t_s");
  for (const auto& name : variables) csv.field(std::string_view{name});
  csv.endrow();

  std::size_t rows = 0;
  for (sim::Time t = start; t <= end; t += period) {
    csv.field(t.to_seconds());
    for (const auto& name : variables) csv.field(agent.series(name).value_at(t));
    csv.endrow();
    ++rows;
  }
  return rows;
}

std::size_t export_csv(const PollingAgent& agent, std::ostream& os, sim::Time start,
                       sim::Time end, sim::Time period) {
  return export_csv(agent, os, agent.variable_names(), start, end, period);
}

}  // namespace rss::web100
