#include "web100/mib.hpp"

#include <ostream>

namespace rss::web100 {

std::vector<std::pair<std::string, double>> flatten(const Mib& m) {
  return {
      {"PktsOut", static_cast<double>(m.PktsOut)},
      {"DataBytesOut", static_cast<double>(m.DataBytesOut)},
      {"PktsRetrans", static_cast<double>(m.PktsRetrans)},
      {"BytesRetrans", static_cast<double>(m.BytesRetrans)},
      {"ThruBytesAcked", static_cast<double>(m.ThruBytesAcked)},
      {"AcksIn", static_cast<double>(m.AcksIn)},
      {"DupAcksIn", static_cast<double>(m.DupAcksIn)},
      {"SendStall", static_cast<double>(m.SendStall)},
      {"CongestionSignals", static_cast<double>(m.CongestionSignals)},
      {"Timeouts", static_cast<double>(m.Timeouts)},
      {"FastRetran", static_cast<double>(m.FastRetran)},
      {"OtherReductions", static_cast<double>(m.OtherReductions)},
      {"CurCwnd", m.CurCwnd},
      {"MaxCwnd", m.MaxCwnd},
      {"CurSsthresh", m.CurSsthresh},
      {"CurRwinRcvd", static_cast<double>(m.CurRwinRcvd)},
      {"SlowStartSegments", static_cast<double>(m.SlowStartSegments)},
      {"CongAvoidSegments", static_cast<double>(m.CongAvoidSegments)},
      {"SmoothedRTT_ms", static_cast<double>(m.SmoothedRTT.milliseconds_count())},
      {"CurRTO_ms", static_cast<double>(m.CurRTO.milliseconds_count())},
      {"MinRTT_ms", static_cast<double>(m.MinRTT.milliseconds_count())},
  };
}

std::ostream& operator<<(std::ostream& os, const Mib& mib) {
  for (const auto& [name, value] : flatten(mib)) os << name << "=" << value << " ";
  return os;
}

}  // namespace rss::web100
