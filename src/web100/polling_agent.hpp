#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "metrics/timeseries.hpp"
#include "sim/simulation.hpp"
#include "web100/mib.hpp"

namespace rss::web100 {

/// Periodic snapshotter of a connection's MIB — the userspace half of
/// Web100: what `readvars`-style tooling did on the paper's testbed. Each
/// tracked variable becomes a TimeSeries sampled every `period`; the
/// figure harnesses read these series directly (e.g. FIG-1 plots
/// `SendStall` vs time).
class PollingAgent {
 public:
  /// `mib_source` is called at every poll and must return the live MIB
  /// (indirection so the agent survives sender reconstruction in sweeps).
  PollingAgent(sim::Simulation& simulation, std::function<const Mib&()> mib_source,
               sim::Time period);

  /// Begin polling (first sample at now + period; an initial zero-time
  /// sample is taken immediately so series start at t=0).
  void start();
  void stop() { running_ = false; }

  /// Series for a variable name from flatten(); throws if never polled or
  /// unknown.
  [[nodiscard]] const metrics::TimeSeries& series(const std::string& variable) const;

  [[nodiscard]] const std::vector<std::string>& variable_names() const { return names_; }
  [[nodiscard]] sim::Time period() const { return period_; }
  [[nodiscard]] std::size_t polls_taken() const { return polls_; }

 private:
  void poll();

  sim::Simulation& sim_;
  std::function<const Mib&()> mib_source_;
  sim::Time period_;
  bool running_{false};
  std::size_t polls_{0};
  std::vector<std::string> names_;
  std::unordered_map<std::string, metrics::TimeSeries> series_;
};

}  // namespace rss::web100
