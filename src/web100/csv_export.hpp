#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "web100/polling_agent.hpp"

namespace rss::web100 {

/// Export a set of polled Web100 variables as a rectangular CSV: one row
/// per grid instant, one column per variable (step-resampled). This is the
/// artifact a Web100 `readvars` logging loop produced on the paper's
/// testbed and what the figure scripts consume.
///
/// Returns the number of data rows written.
std::size_t export_csv(const PollingAgent& agent, std::ostream& os,
                       const std::vector<std::string>& variables, sim::Time start,
                       sim::Time end, sim::Time period);

/// Convenience overload: every variable the agent tracks.
std::size_t export_csv(const PollingAgent& agent, std::ostream& os, sim::Time start,
                       sim::Time end, sim::Time period);

}  // namespace rss::web100
