#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace rss::web100 {

/// Per-connection instrumentation mirroring the Web100 TCP-KIS variable
/// set the paper used for its measurements (§4: "We use web100 to get
/// detailed statistics of the TCP state information").
///
/// Counters are monotone; gauges reflect the latest state. Names follow
/// the TCP-KIS document so harness output lines up with the paper's
/// vocabulary (SendStall is the star of Figure 1).
struct Mib {
  // --- data transfer counters ---
  std::uint64_t PktsOut{0};         ///< data segments sent (incl. retransmissions)
  std::uint64_t DataBytesOut{0};    ///< payload bytes sent (incl. retransmissions)
  std::uint64_t PktsRetrans{0};     ///< segments retransmitted
  std::uint64_t BytesRetrans{0};    ///< payload bytes retransmitted
  std::uint64_t ThruBytesAcked{0};  ///< cumulatively acknowledged payload bytes
  std::uint64_t AcksIn{0};          ///< ACK segments received
  std::uint64_t DupAcksIn{0};       ///< duplicate ACKs received

  // --- congestion signals (the paper's Figure 1 observables) ---
  std::uint64_t SendStall{0};           ///< local IFQ rejections (send-stalls)
  std::uint64_t CongestionSignals{0};   ///< all cwnd-reduction events
  std::uint64_t Timeouts{0};            ///< retransmission timer expirations
  std::uint64_t FastRetran{0};          ///< fast retransmits
  std::uint64_t OtherReductions{0};     ///< CWR entries from local congestion

  // --- window gauges ---
  double CurCwnd{0};        ///< bytes
  double MaxCwnd{0};        ///< bytes, high-water mark
  double CurSsthresh{0};    ///< bytes
  std::uint32_t CurRwinRcvd{0};  ///< last advertised window seen

  // --- phase accounting ---
  std::uint64_t SlowStartSegments{0};  ///< ACK-driven increments applied in slow-start
  std::uint64_t CongAvoidSegments{0};  ///< increments applied in congestion avoidance

  // --- timing gauges ---
  sim::Time SmoothedRTT{sim::Time::zero()};
  sim::Time CurRTO{sim::Time::zero()};
  sim::Time MinRTT{sim::Time::zero()};

  /// Record a cwnd gauge update, maintaining the high-water mark.
  void update_cwnd(double cwnd_bytes) {
    CurCwnd = cwnd_bytes;
    if (cwnd_bytes > MaxCwnd) MaxCwnd = cwnd_bytes;
  }
};

/// Names/values flattened for CSV output; order is stable.
[[nodiscard]] std::vector<std::pair<std::string, double>> flatten(const Mib& mib);

std::ostream& operator<<(std::ostream& os, const Mib& mib);

}  // namespace rss::web100
