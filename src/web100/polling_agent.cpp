#include "web100/polling_agent.hpp"

#include <stdexcept>

namespace rss::web100 {

PollingAgent::PollingAgent(sim::Simulation& simulation,
                           std::function<const Mib&()> mib_source, sim::Time period)
    : sim_{simulation}, mib_source_{std::move(mib_source)}, period_{period} {
  if (!mib_source_) throw std::invalid_argument("PollingAgent: null MIB source");
  if (period_ <= sim::Time::zero()) throw std::invalid_argument("PollingAgent: period must be > 0");
}

void PollingAgent::start() {
  if (running_) return;
  running_ = true;
  poll();  // t = now sample so every series has an origin point
  sim_.every(period_, [this](sim::Time) {
    if (!running_) return false;
    poll();
    return true;
  });
}

void PollingAgent::poll() {
  const auto values = flatten(mib_source_());
  if (names_.empty()) {
    names_.reserve(values.size());
    for (const auto& [name, _] : values) {
      names_.push_back(name);
      series_.emplace(name, metrics::TimeSeries{name});
    }
  }
  for (const auto& [name, value] : values) series_.at(name).record(sim_.now(), value);
  ++polls_;
}

const metrics::TimeSeries& PollingAgent::series(const std::string& variable) const {
  const auto it = series_.find(variable);
  if (it == series_.end())
    throw std::out_of_range("PollingAgent: unknown or never-polled variable: " + variable);
  return it->second;
}

}  // namespace rss::web100
