#include "artifacts/golden.hpp"

#include <cmath>
#include <fstream>

namespace rss::artifacts {

namespace {

void add_error(DiffResult& out, std::string message) {
  ++out.total_mismatches;
  if (out.errors.size() < kMaxReportedErrors) {
    out.errors.push_back(std::move(message));
  } else if (out.errors.size() == kMaxReportedErrors) {
    out.errors.push_back("... further mismatches suppressed");
  }
}

bool numbers_match(double golden, double fresh, const ColumnTolerance& tol) {
  if (std::isnan(golden) && std::isnan(fresh)) return true;
  if (std::isinf(golden) || std::isinf(fresh)) return golden == fresh;
  return std::abs(fresh - golden) <= std::max(tol.abs, tol.rel * std::abs(golden));
}

}  // namespace

DiffResult diff_tables(const metrics::Table& golden, const metrics::Table& fresh,
                       const Tolerances& tol) {
  DiffResult out;

  // Column schema must match exactly — a renamed/reordered/missing column is
  // a format change, not numeric drift, and needs a deliberate re-golden.
  if (golden.columns() != fresh.columns()) {
    for (const auto& c : golden.columns()) {
      if (!fresh.column_index(c)) add_error(out, "missing column: " + c);
    }
    for (const auto& c : fresh.columns()) {
      if (!golden.column_index(c)) add_error(out, "unexpected column: " + c);
    }
    if (out.total_mismatches == 0) add_error(out, "columns reordered");
    return out;
  }

  if (golden.row_count() != fresh.row_count()) {
    add_error(out, strf("row count mismatch: golden %zu, fresh %zu", golden.row_count(),
                        fresh.row_count()));
    return out;
  }

  for (std::size_t r = 0; r < golden.row_count(); ++r) {
    for (std::size_t c = 0; c < golden.column_count(); ++c) {
      const auto& g = golden.at(r, c);
      const auto& f = fresh.at(r, c);
      const auto& col = golden.columns()[c];
      if (g.numeric && f.numeric) {
        const auto& ct = tol.for_column(col);
        if (!numbers_match(g.number, f.number, ct)) {
          add_error(out, strf("row %zu col %s: golden %s, fresh %s (tol abs=%g rel=%g)",
                              r, col.c_str(), g.text.c_str(), f.text.c_str(), ct.abs,
                              ct.rel));
        }
      } else if (g.text != f.text) {
        add_error(out, strf("row %zu col %s: golden \"%s\", fresh \"%s\"", r, col.c_str(),
                            g.text.c_str(), f.text.c_str()));
      }
    }
  }
  return out;
}

void write_golden(const std::string& path, const metrics::Table& table) {
  std::ofstream f{path, std::ios::binary | std::ios::trunc};
  if (!f) throw std::runtime_error{"write_golden: cannot open " + path};
  table.write_csv(f);
  f.flush();
  if (!f) throw std::runtime_error{"write_golden: write failed for " + path};
}

}  // namespace rss::artifacts
