// EXT-MODERN-CC — congestion-control x queue-discipline matrix, two
// decades past the paper. The paper's zoo (Reno, RSS) meets the modern one
// (CUBIC, DCTCP/ECN) across the modern AQM ladder (tail-drop, RED, CoDel)
// on one shared dumbbell: 4 cc x 3 qdisc = 12 cells, each reporting
// goodput, host send-stalls, retransmissions, CE marks, and the bottleneck
// queue-delay distribution (p50/p95/p99 of sampled backlog).
//
// Shape under test: (a) every pairing carries traffic — the algorithms are
// composable, not coupled to one discipline; (b) DCTCP's step-marked rows
// produce CE marks and hold the bottleneck's p95 queue delay under the
// Reno/tail-drop baseline (near-empty-queue operation, its design goal);
// (c) CoDel bounds standing delay for every sender: each cc's p95 queue
// delay under CoDel stays below its own tail-drop figure.
//
// The grid is built through the same DeviceSpec/FlowSpec surface spec
// files use ("cc", "qdisc", "codel", "ecn", "ecn_threshold"), so this
// artifact also pins the spec-driven plumbing end to end.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "artifacts/experiments.hpp"
#include "metrics/summary.hpp"
#include "scenario/builder.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/sweep.hpp"
#include "web100/mib.hpp"

namespace rss::artifacts {

using namespace rss::sim::literals;

namespace {

constexpr sim::Time kWarmup = 5_s;
constexpr sim::Time kHorizon = 30_s;
constexpr sim::Time kSamplePeriod = sim::Time::milliseconds(10);

const std::vector<std::string> kCcAxis = {"reno", "cubic", "dctcp",
                                          "restricted-slow-start"};
const std::vector<std::string> kQdiscAxis = {"droptail", "red", "codel"};

struct Cell {
  std::string cc;
  std::string qdisc;
  double goodput_mbps{0};
  unsigned long long stalls{0};
  unsigned long long retrans{0};
  unsigned long long ce_marks{0};
  double qdelay_p50_ms{0};
  double qdelay_p95_ms{0};
  double qdelay_p99_ms{0};
};

/// Two-sender dumbbell with the cell's qdisc on the bottleneck devices.
/// DCTCP rows negotiate ECN end to end and arm DCTCP-style step marking at
/// a shallow threshold; the other ccs run the discipline untouched.
scenario::TopologySpec make_cell_spec(const std::string& cc, const std::string& qdisc) {
  scenario::TopologySpec spec;
  spec.nodes = {"s0", "s1", "rL", "rR", "d0", "d1"};

  scenario::DeviceSpec access;
  access.rate = net::DataRate::mbps(500);
  access.ifq_packets = 100;

  scenario::DeviceSpec bottleneck;
  bottleneck.rate = net::DataRate::mbps(50);
  bottleneck.ifq_packets = 100;
  if (qdisc == "red") {
    bottleneck.qdisc = scenario::QueueDiscipline::kRed;
    bottleneck.red.min_threshold = 30;
    bottleneck.red.max_threshold = 90;
  } else if (qdisc == "codel") {
    bottleneck.qdisc = scenario::QueueDiscipline::kCodel;
  }
  const bool ecn = cc == "dctcp";
  if (ecn) bottleneck.ecn_threshold = 20;

  const auto add_link = [&spec](const std::string& a, const std::string& b, sim::Time delay,
                                const scenario::DeviceSpec& dev) {
    scenario::LinkSpec l;
    l.a = a;
    l.b = b;
    l.delay = delay;
    l.a_dev = dev;
    l.b_dev = dev;
    spec.links.push_back(std::move(l));
  };
  add_link("s0", "rL", 1_ms, access);
  add_link("s1", "rL", 1_ms, access);
  add_link("rL", "rR", 10_ms, bottleneck);
  add_link("rR", "d0", 1_ms, access);
  add_link("rR", "d1", 1_ms, access);

  for (std::size_t f = 0; f < 2; ++f) {
    scenario::FlowSpec flow;
    flow.src = "s" + std::to_string(f);
    flow.dst = "d" + std::to_string(f);
    flow.ecn = ecn;
    flow.start = sim::Time::milliseconds(static_cast<std::int64_t>(300 * f));
    spec.flows.push_back(std::move(flow));
  }
  return spec;
}

Cell run_cell(const std::string& cc, const std::string& qdisc) {
  const scenario::TopologySpec spec = make_cell_spec(cc, qdisc);
  auto s = scenario::ScenarioBuilder{spec}.build(scenario::factory_by_name(cc));

  // Sample the bottleneck backlog on a fixed grid past warmup; backlog in
  // bytes over line rate is the queueing delay the next arrival would see.
  const net::NetDevice& dev = s->device("rL", "rR");
  const double line_bps = static_cast<double>(dev.rate().bits_per_second());
  std::vector<double> delays_ms;
  delays_ms.reserve(static_cast<std::size_t>(
      (kHorizon - kWarmup).to_seconds() / kSamplePeriod.to_seconds()) + 1);
  for (sim::Time t = kWarmup; t <= kHorizon; t = t + kSamplePeriod) {
    s->run_until(t);
    delays_ms.push_back(static_cast<double>(dev.ifq().size_bytes()) * 8.0 / line_bps * 1e3);
  }
  s->run_until(kHorizon);

  Cell cell;
  cell.cc = cc;
  cell.qdisc = qdisc;
  for (const double g : s->goodputs_mbps(kWarmup, kHorizon)) cell.goodput_mbps += g;
  for (std::size_t f = 0; f < s->flow_count(); ++f) {
    const web100::Mib& mib = s->sender(f).mib();
    cell.stalls += mib.SendStall;
    cell.retrans += mib.PktsRetrans;
  }
  cell.ce_marks = dev.ifq().stats().ce_marked;

  std::sort(delays_ms.begin(), delays_ms.end());
  cell.qdelay_p50_ms = metrics::quantile_sorted(delays_ms, 0.50);
  cell.qdelay_p95_ms = metrics::quantile_sorted(delays_ms, 0.95);
  cell.qdelay_p99_ms = metrics::quantile_sorted(delays_ms, 0.99);
  return cell;
}

}  // namespace

Experiment make_ext_modern_cc_experiment() {
  Experiment e;
  e.name = "ext_modern_cc";
  e.title = "modern cc zoo x AQM matrix: Reno/CUBIC/DCTCP/RSS over tail-drop/RED/CoDel";
  e.tolerances.fallback = {1e-9, 1e-3};
  e.tolerances.per_column["stalls"] = {2.0, 0.0};
  e.tolerances.per_column["retrans"] = {0.0, 0.25};
  // Mark counters ride on RED's Rng draws through libm; allow small slack.
  e.tolerances.per_column["ce_marks"] = {5.0, 0.05};
  e.tolerances.per_column["qdelay_p50_ms"] = {0.1, 0.05};
  e.tolerances.per_column["qdelay_p95_ms"] = {0.1, 0.05};
  e.tolerances.per_column["qdelay_p99_ms"] = {0.1, 0.05};
  e.run = [] {
    std::vector<Cell> cells(kCcAxis.size() * kQdiscAxis.size());
    scenario::parallel_sweep(cells.size(), [&](std::size_t i) {
      cells[i] = run_cell(kCcAxis[i / kQdiscAxis.size()], kQdiscAxis[i % kQdiscAxis.size()]);
    });

    metrics::Table table{{"cc", "qdisc", "goodput_mbps", "stalls", "retrans", "ce_marks",
                          "qdelay_p50_ms", "qdelay_p95_ms", "qdelay_p99_ms"}};
    for (const auto& c : cells) {
      table.add_row({c.cc, c.qdisc, c.goodput_mbps, c.stalls, c.retrans, c.ce_marks,
                     c.qdelay_p50_ms, c.qdelay_p95_ms, c.qdelay_p99_ms});
    }

    const auto cell_at = [&](const std::string& cc, const std::string& qdisc) -> const Cell& {
      for (const auto& c : cells)
        if (c.cc == cc && c.qdisc == qdisc) return c;
      return cells.front();
    };
    const Cell& baseline = cell_at("reno", "droptail");

    // (a) every pairing carries meaningful traffic.
    bool all_carry = true;
    for (const auto& c : cells) all_carry = all_carry && c.goodput_mbps > 10.0;
    // (b) DCTCP marks and runs shallow.
    bool dctcp_shallow = true;
    for (const auto& q : kQdiscAxis) {
      const Cell& c = cell_at("dctcp", q);
      dctcp_shallow = dctcp_shallow && c.ce_marks > 0 &&
                      c.qdelay_p95_ms < baseline.qdelay_p95_ms;
    }
    // (c) CoDel bounds each cc's standing delay below its tail-drop figure.
    // DCTCP is exempt from the strict bound: its step marking already holds
    // the queue under CoDel's 5 ms target, leaving the control law nothing
    // to shed — its CoDel and tail-drop rows legitimately coincide.
    bool codel_bounds = true;
    for (const auto& cc : kCcAxis) {
      const double codel_p95 = cell_at(cc, "codel").qdelay_p95_ms;
      const double droptail_p95 = cell_at(cc, "droptail").qdelay_p95_ms;
      codel_bounds = codel_bounds && (cc == "dctcp" ? codel_p95 <= droptail_p95
                                                    : codel_p95 < droptail_p95);
    }

    ExperimentResult res;
    res.table = std::move(table);
    res.reproduced = all_carry && dctcp_shallow && codel_bounds;
    res.verdict = strf(
        "12-cell grid: all cells carry >10 Mb/s: %s; DCTCP marks & runs below tail-drop "
        "p95 delay: %s; CoDel p95 < tail-drop p95 for every cc: %s",
        all_carry ? "yes" : "NO", dctcp_shallow ? "yes" : "NO", codel_bounds ? "yes" : "NO");
    return res;
  };
  return e;
}

}  // namespace rss::artifacts
