// FIG-1 — Figure 1 of the paper: cumulative send-stall signals vs time
// (0..25 s), standard Linux TCP vs the proposed (Restricted Slow-Start)
// TCP, on the ANL<->LBNL path.
//
// Paper's shape: standard TCP accumulates a handful of send-stalls over
// the run (y-axis 0..4 in the figure); the modified TCP stays at zero.

#include <memory>
#include <vector>

#include "artifacts/experiments.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/sweep.hpp"
#include "scenario/wan_path.hpp"

namespace rss::artifacts {

using namespace rss::sim::literals;

Experiment make_fig1_send_stalls_experiment() {
  Experiment e;
  e.name = "fig1_send_stalls";
  e.title = "cumulative send-stall signals vs time, standard TCP vs RSS (paper Figure 1)";
  e.tolerances.fallback = {1e-9, 1e-6};
  // Cumulative stall counts are integers; a libm-induced one-sample timing
  // shift moves a step edge by at most one row, so allow +-1 per sample.
  e.tolerances.per_column["standard_tcp_cum_stalls"] = {1.0, 0.0};
  e.tolerances.per_column["restricted_ss_cum_stalls"] = {0.0, 0.0};
  e.run = [] {
    const sim::Time horizon = 25_s;
    const sim::Time sample = 500_ms;

    std::vector<scenario::CcVariant> variants;
    for (auto& variant : scenario::standard_variants()) {
      if (variant.label == "limited-slow-start") continue;  // figure has 2 series
      variants.push_back(std::move(variant));
    }

    std::vector<std::unique_ptr<scenario::WanPath>> runs(variants.size());
    scenario::parallel_sweep(variants.size(), [&](std::size_t i) {
      scenario::WanPath::Config cfg;
      cfg.web100_poll_period = sample;
      cfg.sender.trace_stalls = true;
      auto wan = std::make_unique<scenario::WanPath>(cfg, variants[i].factory);
      wan->run_bulk_transfer(sim::Time::zero(), horizon);
      runs[i] = std::move(wan);
    });

    metrics::Table table{{"t_s", "standard_tcp_cum_stalls", "restricted_ss_cum_stalls"}};
    const auto& std_series = runs[0]->agent()->series("SendStall");
    const auto& rss_series = runs[1]->agent()->series("SendStall");
    for (sim::Time t = sim::Time::zero(); t <= horizon; t += sample) {
      table.add_row({t.to_seconds(), std_series.value_at(t), rss_series.value_at(t)});
    }

    const auto std_stalls = runs[0]->sender().mib().SendStall;
    const auto rss_stalls = runs[1]->sender().mib().SendStall;
    ExperimentResult r;
    r.table = std::move(table);
    r.reproduced = std_stalls > 0 && rss_stalls == 0;
    r.verdict = strf(
        "standard TCP %llu send-stalls, restricted slow-start %llu; paper shape "
        "(standard accumulates, modified ~0) -> %s",
        static_cast<unsigned long long>(std_stalls),
        static_cast<unsigned long long>(rss_stalls),
        r.reproduced ? "REPRODUCED" : "NOT reproduced");
    return r;
  };
  return e;
}

}  // namespace rss::artifacts
