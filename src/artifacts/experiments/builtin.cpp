#include "artifacts/experiments.hpp"

namespace rss::artifacts {

void register_builtin_experiments(ExperimentRegistry& registry) {
  if (registry.find("fig1_send_stalls")) return;  // already registered
  registry.add(make_fig1_send_stalls_experiment());
  registry.add(make_tab1_throughput_experiment());
  registry.add(make_abl_aqm_experiment());
  registry.add(make_abl_ifq_size_experiment());
  registry.add(make_abl_pid_gains_experiment());
  registry.add(make_abl_rtt_experiment());
  registry.add(make_abl_sampling_experiment());
  registry.add(make_abl_setpoint_experiment());
  registry.add(make_ext_fairness_experiment());
  registry.add(make_ext_hybrid_fluid_experiment());
  registry.add(make_ext_modern_cc_experiment());
  registry.add(make_ext_parkinglot_experiment());
  registry.add(make_ext_sack_experiment());
  registry.add(make_ext_specdriven_experiment());
  registry.add(make_ext_tuning_experiment());
  registry.add(make_ext_variants_experiment());
}

}  // namespace rss::artifacts
