// EXT-HYBRID-FLUID — fidelity gate for the hybrid fluid/packet traffic
// engine. A single-bottleneck parking lot carries one packet-level Reno
// foreground flow against 4 or 5 background Reno aggregates; each
// configuration runs twice, once with packet background and once with the
// background fluidized (rate-ODE aggregates coupled into the bottleneck
// queue). The foreground flow keeps its full packet-level TCP machinery in
// both runs, so its goodput and send-stall counts measure how faithfully
// the fluid background reproduces the pressure of the packet background.
//
// Shape under test: fluidizing the background leaves the foreground's
// goodput within 5% of the all-packet run (and its send-stall count within
// the same budget), and fluid integration stays byte-stable when the
// simulation is split across partitions.
//
// Scope: the 5% equivalence holds in the moderate-multiplexing regime this
// study pins (several same-RTT background aggregates on one bottleneck,
// measured over many AIMD sawtooth periods). Multi-bottleneck foregrounds
// in timeout-dominated regimes do not track this closely — fluidization is
// a background-traffic model, not a foreground one.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "artifacts/experiments.hpp"
#include "scenario/builder.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/presets.hpp"
#include "scenario/sweep.hpp"
#include "web100/mib.hpp"

namespace rss::artifacts {

using namespace rss::sim::literals;

namespace {

constexpr double kGoodputTolerance = 0.05;  // ±5% relative on fg goodput
constexpr sim::Time kWarmup = 5_s;
constexpr sim::Time kHorizon = 180_s;

struct Result {
  std::size_t cross{0};
  bool fluid{false};
  double fg_mbps{0};
  double bg_mbps{0};
  unsigned long long fg_stalls{0};
  unsigned long long fg_retrans{0};
};

/// One population: dumbbell parking lot, `cross` background flows, packet
/// or fluid background. The foreground goodput is windowed past warmup so
/// both models are compared in their AIMD steady state.
Result run_population(std::size_t cross, bool fluid) {
  scenario::ParkingLot::Config cfg;
  cfg.hops = 1;
  cfg.cross_flows_per_hop = cross;
  cfg.hop_delays = {20_ms};
  cfg.access_rate = net::DataRate::mbps(100);
  cfg.bottleneck_rate = net::DataRate::mbps(100);
  cfg.fluid_cross = fluid;
  // The equivalence study compares traffic models, not execution engines:
  // pin an explicit partition policy so the process-wide --partitions
  // default (which only fills in unpinned specs) can't re-cut the dumbbell
  // and perturb same-timestamp tie-breaks mid-study. Two-way is the
  // smallest explicit count; it splits at the 20 ms hop and matches the
  // single-scheduler run byte for byte on this topology.
  cfg.execution.partitions = 2;
  scenario::ParkingLot lot{cfg, scenario::uniform_cc(scenario::make_reno_factory())};
  lot.start_all(sim::Time::zero());

  lot.scenario().run_until(kWarmup);
  const std::uint64_t acked0 = lot.scenario().sender(0).mib().ThruBytesAcked;
  lot.scenario().run_until(kHorizon);
  const web100::Mib& mib = lot.scenario().sender(0).mib();

  Result r;
  r.cross = cross;
  r.fluid = fluid;
  r.fg_mbps = static_cast<double>(mib.ThruBytesAcked - acked0) * 8.0 /
              (kHorizon - kWarmup).to_seconds() / 1e6;
  const std::vector<double> goodputs = lot.goodputs_mbps(sim::Time::zero(), kHorizon);
  for (std::size_t i = 1; i < goodputs.size(); ++i) r.bg_mbps += goodputs[i];
  r.fg_stalls = mib.SendStall;
  r.fg_retrans = mib.PktsRetrans;
  return r;
}

/// Flow-observable fingerprint of a fluidized ScaleMesh run: every packet
/// flow's MIB words plus every fluid aggregate's delivered-byte ledger.
std::vector<std::uint64_t> mesh_fingerprint(std::size_t partitions) {
  scenario::ScaleMesh::Config cfg;
  cfg.segments = 4;
  cfg.flows_per_segment = 2;
  cfg.cross_flows_per_segment = 1;
  cfg.fluid_local = true;
  scenario::TopologySpec spec = scenario::ScaleMesh::make_spec(cfg);
  spec.execution.partitions = partitions;
  auto s = scenario::ScenarioBuilder{spec}.build(scenario::make_reno_factory());
  for (std::size_t i = 0; i < s->flow_count(); ++i) s->start_flow(i, sim::Time::zero());
  s->run_until(2_s);
  std::vector<std::uint64_t> out;
  for (std::size_t i = 0; i < s->flow_count(); ++i) {
    if (s->is_fluid(i)) {
      out.push_back(static_cast<std::uint64_t>(s->fluid_sink(i).delivered_bytes()));
    } else {
      const web100::Mib& mib = s->sender(i).mib();
      out.push_back(mib.ThruBytesAcked);
      out.push_back(mib.PktsRetrans);
      out.push_back(mib.SendStall);
    }
  }
  return out;
}

}  // namespace

Experiment make_ext_hybrid_fluid_experiment() {
  Experiment e;
  e.name = "ext_hybrid_fluid";
  e.title = "Hybrid fluid/packet background: foreground equivalence and partition parity";
  e.tolerances.fallback = {1e-9, 1e-3};
  e.tolerances.per_column["fg_stalls"] = {2.0, 0.0};
  e.tolerances.per_column["fg_retrans"] = {0.0, 0.25};
  e.run = [] {
    const std::vector<std::size_t> cross_loads{4, 5};
    std::vector<Result> results(2 * cross_loads.size());
    std::vector<std::vector<std::uint64_t>> prints(2);

    // Four population runs plus the two partition-parity runs, all
    // independent simulations.
    scenario::parallel_sweep(results.size() + prints.size(), [&](std::size_t i) {
      if (i < results.size()) {
        results[i] = run_population(cross_loads[i / 2], (i % 2) != 0);
      } else {
        const std::size_t partitions = i == results.size() ? 1 : 4;
        prints[i - results.size()] = mesh_fingerprint(partitions);
      }
    });

    metrics::Table table{
        {"cross_flows", "background", "fg_mbps", "fg_stalls", "fg_retrans", "bg_mbps"}};
    for (const auto& r : results) {
      table.add_row({r.cross, r.fluid ? "fluid" : "packet", r.fg_mbps, r.fg_stalls,
                     r.fg_retrans, r.bg_mbps});
    }

    bool within_tolerance = true;
    std::string detail;
    for (std::size_t c = 0; c < cross_loads.size(); ++c) {
      const Result& packet = results[2 * c];
      const Result& fluid = results[2 * c + 1];
      const double rel = packet.fg_mbps > 0.0 ? fluid.fg_mbps / packet.fg_mbps - 1.0 : 1.0;
      const unsigned long long stall_hi = std::max(packet.fg_stalls, fluid.fg_stalls);
      const unsigned long long stall_lo = std::min(packet.fg_stalls, fluid.fg_stalls);
      const double stall_budget =
          std::max(2.0, kGoodputTolerance * static_cast<double>(packet.fg_stalls));
      const bool ok = rel >= -kGoodputTolerance && rel <= kGoodputTolerance &&
                      static_cast<double>(stall_hi - stall_lo) <= stall_budget;
      within_tolerance = within_tolerance && ok;
      detail += strf("%scross=%zu fg %.2f->%.2f Mb/s (%+.1f%%), stalls %llu->%llu",
                     detail.empty() ? "" : "; ", packet.cross, packet.fg_mbps, fluid.fg_mbps,
                     rel * 100.0, packet.fg_stalls, fluid.fg_stalls);
    }

    const bool parity = !prints[0].empty() && prints[0] == prints[1];

    ExperimentResult res;
    res.table = std::move(table);
    res.reproduced = within_tolerance && parity;
    res.verdict =
        strf("%s; partitions 1 vs 4 byte-stable: %s", detail.c_str(), parity ? "yes" : "NO");
    return res;
  };
  return e;
}

}  // namespace rss::artifacts
