// ABL-SAMP — controller sampling-regime ablation: per-ACK event-driven
// control vs the paper's kernel-timer (jiffy) sample-and-hold, with and
// without jiffy-tuned Ziegler-Nichols gains. Quantifies what the kernel
// implementation detail costs and why the paper needed §3's tuning.

#include <string>
#include <vector>

#include "artifacts/experiments.hpp"
#include "metrics/timeseries.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/sweep.hpp"
#include "scenario/wan_path.hpp"

namespace rss::artifacts {

using namespace rss::sim::literals;

Experiment make_abl_sampling_experiment() {
  Experiment e;
  e.name = "abl_sampling";
  e.title = "controller sampling regime (kernel-timer fidelity) ablation";
  e.tolerances.fallback = {1e-9, 1e-3};
  e.tolerances.per_column["ifq_sigma"] = {0.05, 0.02};
  e.tolerances.per_column["stalls"] = {1.0, 0.0};
  e.run = [] {
    struct Variant {
      std::string label;
      core::RestrictedSlowStart::Options opt;
    };
    std::vector<Variant> variants;
    variants.push_back({"per-ACK (event-driven)", core::RestrictedSlowStart::Options{}});
    {
      core::RestrictedSlowStart::Options o;  // per-ACK gains under a 10 ms hold
      o.sample_period = 10_ms;
      variants.push_back({"10 ms hold, per-ACK gains", o});
    }
    variants.push_back(
        {"10 ms hold, jiffy-tuned ZN", core::RestrictedSlowStart::kernel_timer_options()});
    {
      auto o = core::RestrictedSlowStart::kernel_timer_options();
      o.sample_period = 100_ms;  // HZ=10 era / sloppy timers
      variants.push_back({"100 ms hold, jiffy-tuned ZN", o});
    }

    struct Row {
      double goodput;
      double ifq_sigma;
      unsigned long long stalls;
    };
    std::vector<Row> rows(variants.size());
    const sim::Time horizon = 25_s;

    scenario::parallel_sweep(variants.size(), [&](std::size_t i) {
      scenario::WanPath::Config cfg;
      cfg.enable_web100 = false;
      scenario::WanPath wan{cfg, scenario::make_rss_factory(variants[i].opt)};
      metrics::TimeSeries ifq{"ifq"};
      wan.simulation().every(20_ms, [&](sim::Time now) {
        ifq.record(now, static_cast<double>(wan.nic().occupancy_packets()));
        return true;
      });
      wan.run_bulk_transfer(sim::Time::zero(), horizon);

      rows[i] = {wan.goodput_mbps(sim::Time::zero(), horizon),
                 ifq.stddev_from(10_s, horizon),
                 static_cast<unsigned long long>(wan.sender().mib().SendStall)};
    });

    metrics::Table table{{"controller", "goodput_mbps", "ifq_sigma", "stalls"}};
    for (std::size_t i = 0; i < variants.size(); ++i) {
      table.add_row({variants[i].label, rows[i].goodput, rows[i].ifq_sigma, rows[i].stalls});
    }

    const bool shape = rows[0].goodput > 85.0 &&             // per-ACK near line rate
                       rows[2].goodput > rows[1].goodput &&  // tuning recovers the hold's cost
                       rows[2].stalls == 0;
    ExperimentResult res;
    res.table = std::move(table);
    res.reproduced = shape;
    res.verdict =
        strf("jiffy-tuned gains recover what mistuned-hold loses, stall-free: %s",
             shape ? "yes" : "NO");
    return res;
  };
  return e;
}

}  // namespace rss::artifacts
