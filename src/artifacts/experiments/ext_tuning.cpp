// EXT-ZN — the paper's §3 tuning procedure, reproduced end to end:
//
//   1. Ziegler–Nichols gain ramp on an analytic integrator-with-dead-time
//      plant, checked against the closed-form critical point,
//   2a. the same procedure simulation-in-the-loop with the per-ACK
//       controller: delay-free, unconditionally stable, Z-N finds nothing
//       (a real finding of the reproduction),
//   2b. simulation-in-the-loop with the paper's kernel-timer controller
//       (HZ=100 sample-and-hold): the hold adds the delay, Z-N finds Kc/Tc,
//   3. the relay (Åström–Hägglund) experiment as an independent estimate,
//   4. validation: deploy the sim-tuned paper-rule gains and confirm
//      stall-free high utilization.
//
// Table layout: one row per stage; columns that do not apply to a stage
// hold 0. `found` is 1 when the stage produced a tuning result, `ok` is
// the stage's own pass flag.

#include <cmath>
#include <functional>
#include <vector>

#include "artifacts/experiments.hpp"
#include "control/plant.hpp"
#include "control/relay_tuner.hpp"
#include "control/ziegler_nichols.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/sweep.hpp"
#include "scenario/tuning.hpp"
#include "scenario/wan_path.hpp"

namespace rss::artifacts {

using namespace rss::sim::literals;

namespace {

struct StageRow {
  const char* stage{""};
  bool found{false};
  double kc{0}, tc{0};
  double kp{0}, ti{0}, td{0};
  double goodput{0};
  unsigned long long stalls{0};
  bool ok{false};
};

}  // namespace

Experiment make_ext_tuning_experiment() {
  Experiment e;
  e.name = "ext_tuning";
  e.title = "Ziegler-Nichols tuning procedure end to end (paper §3)";
  e.tolerances.fallback = {1e-9, 1e-3};
  // The gain ramp/bisection can settle one step differently if the plant's
  // exp() differs by an ulp across glibc builds; the critical point itself
  // is only located to the tuner's own resolution anyway.
  e.tolerances.per_column["kc"] = {0.01, 0.02};
  e.tolerances.per_column["tc_s"] = {0.01, 0.02};
  e.tolerances.per_column["kp"] = {0.01, 0.02};
  e.tolerances.per_column["ti_s"] = {0.01, 0.02};
  e.tolerances.per_column["td_s"] = {0.01, 0.02};
  e.tolerances.per_column["stalls"] = {0.0, 0.0};
  e.run = [] {
    std::vector<StageRow> rows(5);
    rows[0].stage = "analytic_plant";
    rows[1].stage = "tcp_loop_per_ack";
    rows[2].stage = "tcp_loop_jiffy";
    rows[3].stage = "relay_check";
    rows[4].stage = "deploy_sim_tuned";

    // Stages 1, 2a, 2b and 3 are independent experiments; run them as a
    // sweep. Stage 4 needs 2b's gains, so it runs after.
    scenario::parallel_sweep(4, [&](std::size_t i) {
      switch (i) {
        case 0: {  // Analytic check: K/s e^{-Ls}, K=1, L=0.25 -> Kc=pi/(2KL), Tc=4L.
          const control::ZieglerNicholsTuner tuner;
          const auto r = tuner.tune([](double kp) {
            control::IntegratorPlant plant{1.0, 0.25};
            return control::run_p_control_experiment(plant, kp, 1.0, 60.0, 0.005);
          });
          const double kc_th = M_PI / 0.5, tc_th = 1.0;
          if (r) {
            rows[0].found = true;
            rows[0].kc = r->kc;
            rows[0].tc = r->tc;
            rows[0].ok =
                std::abs(r->kc - kc_th) < 0.5 * kc_th && std::abs(r->tc - tc_th) < 0.4;
          }
          break;
        }
        case 1: {  // Per-ACK loop: delay-free, Z-N must find nothing.
          scenario::TuneOptions opt;
          opt.duration = 15_s;
          opt.controller_period = sim::Time::zero();
          const auto r = scenario::tune_restricted_slow_start(opt);
          rows[1].found = r.has_value();
          rows[1].ok = !r;
          break;
        }
        case 2: {  // Kernel-timer loop: the hold adds delay, Z-N finds Kc/Tc.
          scenario::TuneOptions opt;
          opt.duration = 15_s;
          const auto r = scenario::tune_restricted_slow_start(opt);
          if (r) {
            const auto g = r->paper_rule();
            rows[2] = {rows[2].stage, true, r->kc, r->tc, g.kp, g.ti, g.td, 0.0, 0, true};
          }
          break;
        }
        case 3: {  // Relay cross-check on the analytic plant.
          control::RelayTuner::Options opt;
          opt.relay_amplitude = 1.0;
          const control::RelayTuner tuner{opt};
          const auto r = tuner.tune([](const std::function<double(double)>& relay) {
            control::IntegratorPlant plant{1.0, 0.25};
            std::vector<control::ResponseSample> resp;
            double y = 0.0;
            for (double t = 0.0; t < 40.0; t += 0.002) {
              y = plant.step(relay(1.0 - y), 0.002);
              resp.push_back({t + 0.002, y});
            }
            return resp;
          });
          if (r) {
            rows[3].found = true;
            rows[3].kc = r->kc;
            rows[3].tc = r->tc;
            rows[3].ok = true;
          }
          break;
        }
      }
    });

    // Stage 4: deploy the sim-tuned gains under the same kernel-timer
    // controller and validate on the paper path.
    if (rows[2].found) {
      core::RestrictedSlowStart::Options rss_opt;
      rss_opt.gains = {rows[2].kp, rows[2].ti, rows[2].td};
      rss_opt.sample_period = 10_ms;
      scenario::WanPath::Config cfg;
      cfg.enable_web100 = false;
      scenario::WanPath wan{cfg, scenario::make_rss_factory(rss_opt)};
      wan.run_bulk_transfer(0_s, 25_s);
      rows[4].found = true;
      rows[4].goodput = wan.goodput_mbps(0_s, 25_s);
      rows[4].stalls = static_cast<unsigned long long>(wan.sender().mib().SendStall);
      rows[4].ok = rows[4].goodput > 70.0 && rows[4].stalls == 0;
    }

    metrics::Table table{{"stage", "found", "kc", "tc_s", "kp", "ti_s", "td_s",
                          "goodput_mbps", "stalls", "ok"}};
    bool all_ok = true;
    for (const auto& r : rows) {
      all_ok = all_ok && r.ok;
      table.add_row({r.stage, static_cast<int>(r.found), r.kc, r.tc, r.kp, r.ti, r.td,
                     r.goodput, r.stalls, static_cast<int>(r.ok)});
    }

    ExperimentResult res;
    res.table = std::move(table);
    res.reproduced = all_ok;
    res.verdict = strf("tuning pipeline: %s", all_ok ? "REPRODUCED" : "NOT reproduced");
    return res;
  };
  return e;
}

}  // namespace rss::artifacts
