// ABL-SP — ablation of the paper's 90% set-point choice (§3). Sweep the
// set-point fraction: too low leaves the pipe underfilled; too high erodes
// the burst margin and risks stalls. 0.9 sits on the flat top of the
// goodput curve with a comfortable margin.

#include <vector>

#include "artifacts/experiments.hpp"
#include "metrics/timeseries.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/sweep.hpp"
#include "scenario/wan_path.hpp"

namespace rss::artifacts {

using namespace rss::sim::literals;

Experiment make_abl_setpoint_experiment() {
  Experiment e;
  e.name = "abl_setpoint";
  e.title = "Restricted Slow-Start set-point fraction sweep (IFQ = 100 pkts)";
  e.tolerances.fallback = {1e-9, 1e-3};
  e.tolerances.per_column["mean_ifq"] = {0.5, 0.02};
  e.tolerances.per_column["peak_ifq"] = {1.0, 0.0};
  e.tolerances.per_column["stalls"] = {1.0, 0.0};
  e.run = [] {
    const std::vector<double> fractions{0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 1.0};
    const sim::Time horizon = 25_s;

    struct Row {
      double goodput;
      double mean_ifq;
      double peak_ifq;
      unsigned long long stalls;
    };
    std::vector<Row> rows(fractions.size());

    scenario::parallel_sweep(fractions.size(), [&](std::size_t i) {
      core::RestrictedSlowStart::Options rss_opt;
      rss_opt.setpoint_fraction = fractions[i];
      scenario::WanPath::Config cfg;
      cfg.enable_web100 = false;
      scenario::WanPath wan{cfg, scenario::make_rss_factory(rss_opt)};

      metrics::TimeSeries ifq{"ifq"};
      wan.simulation().every(20_ms, [&](sim::Time now) {
        ifq.record(now, static_cast<double>(wan.nic().occupancy_packets()));
        return true;
      });
      wan.run_bulk_transfer(sim::Time::zero(), horizon);

      rows[i] = {wan.goodput_mbps(sim::Time::zero(), horizon),
                 ifq.time_weighted_mean(10_s, horizon), ifq.max_value(),
                 static_cast<unsigned long long>(wan.sender().mib().SendStall)};
    });

    metrics::Table table{
        {"setpoint_fraction", "goodput_mbps", "mean_ifq", "peak_ifq", "stalls"}};
    for (std::size_t i = 0; i < fractions.size(); ++i) {
      table.add_row({fractions[i], rows[i].goodput, rows[i].mean_ifq, rows[i].peak_ifq,
                     rows[i].stalls});
    }

    // The paper's 0.9 must be on the flat top and stall-free.
    const auto& p90 = rows[4];
    const bool ok = p90.goodput > 75.0 && p90.stalls == 0;
    ExperimentResult res;
    res.table = std::move(table);
    res.reproduced = ok;
    res.verdict = strf("paper's 90%% choice: %.1f Mb/s, %llu stalls -> %s", p90.goodput,
                       static_cast<unsigned long long>(p90.stalls),
                       ok ? "validated" : "NOT validated");
    return res;
  };
  return e;
}

}  // namespace rss::artifacts
