// ABL-IFQ — the paper's §2 motivation: increasing the soft-component
// (txqueuelen) size wastes memory and still underutilizes. Sweep the IFQ
// capacity and compare standard TCP vs RSS: standard TCP needs a very
// large IFQ to stop stalling, while RSS reaches near-line-rate at every
// size.

#include <vector>

#include "artifacts/experiments.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/sweep.hpp"
#include "scenario/wan_path.hpp"

namespace rss::artifacts {

using namespace rss::sim::literals;

Experiment make_abl_ifq_size_experiment() {
  Experiment e;
  e.name = "abl_ifq_size";
  e.title = "goodput & send-stalls vs interface-queue capacity, standard vs RSS";
  e.tolerances.fallback = {1e-9, 1e-3};
  e.tolerances.per_column["std_stalls"] = {1.0, 0.0};
  e.tolerances.per_column["rss_stalls"] = {0.0, 0.0};
  e.run = [] {
    const std::vector<std::size_t> sizes{20, 50, 100, 200, 500, 1000, 2000};
    const sim::Time horizon = 25_s;

    struct Cell {
      double goodput{0};
      unsigned long long stalls{0};
    };
    struct Row {
      Cell standard, rss;
    };
    std::vector<Row> rows(sizes.size());

    scenario::parallel_sweep(sizes.size() * 2, [&](std::size_t job) {
      const std::size_t i = job / 2;
      const bool use_rss = job % 2 == 1;
      scenario::WanPath::Config cfg;
      cfg.enable_web100 = false;
      cfg.path.ifq_capacity_packets = sizes[i];
      scenario::WanPath wan{
          cfg, use_rss ? scenario::make_rss_factory() : scenario::make_reno_factory()};
      wan.run_bulk_transfer(sim::Time::zero(), horizon);
      Cell cell{wan.goodput_mbps(sim::Time::zero(), horizon),
                static_cast<unsigned long long>(wan.sender().mib().SendStall)};
      (use_rss ? rows[i].rss : rows[i].standard) = cell;
    });

    metrics::Table table{
        {"ifq_pkts", "std_goodput_mbps", "std_stalls", "rss_goodput_mbps", "rss_stalls"}};
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      table.add_row({sizes[i], rows[i].standard.goodput, rows[i].standard.stalls,
                     rows[i].rss.goodput, rows[i].rss.stalls});
    }

    // Shape checks: RSS delivers high utilization even at small IFQs (where
    // standard TCP collapses), and both converge at very large IFQs.
    const bool rss_high = rows.front().rss.goodput > 2.0 * rows.front().standard.goodput &&
                          rows[2].rss.goodput > 85.0;
    const bool std_grows = rows.back().standard.goodput > rows.front().standard.goodput;
    ExperimentResult res;
    res.table = std::move(table);
    res.reproduced = rss_high && std_grows;
    res.verdict = strf(
        "RSS >> standard at small IFQ and >85 Mb/s at the paper's 100: %s; standard "
        "improves with IFQ size: %s",
        rss_high ? "yes" : "NO", std_grows ? "yes" : "NO");
    return res;
  };
  return e;
}

}  // namespace rss::artifacts
