// EXT-VAR — extended multi-variant comparison on the paper path: Tahoe,
// Reno/"standard", Vegas, Limited Slow-Start (RFC 3742), HighSpeed and the
// paper's Restricted Slow-Start. Context the paper's two-variant
// comparison does not show: where RSS sits in the design space.

#include <vector>

#include "artifacts/experiments.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/sweep.hpp"
#include "scenario/wan_path.hpp"

namespace rss::artifacts {

using namespace rss::sim::literals;

Experiment make_ext_variants_experiment() {
  Experiment e;
  e.name = "ext_variants";
  e.title = "multi-variant comparison on the ANL<->LBNL path, 25 s bulk transfer";
  e.tolerances.fallback = {1e-9, 1e-3};
  // HighSpeed's response curve goes through libm log/exp, so its integer
  // counters get a little slack too.
  e.tolerances.per_column["stalls"] = {1.0, 0.0};
  e.tolerances.per_column["fast_retrans"] = {2.0, 0.02};
  e.tolerances.per_column["timeouts"] = {1.0, 0.0};
  e.tolerances.per_column["srtt_ms"] = {1.0, 0.01};
  e.run = [] {
    const auto names = scenario::variant_names();
    const sim::Time horizon = 25_s;

    struct Row {
      double goodput;
      unsigned long long stalls, fast_retrans, timeouts;
      double max_cwnd_pkts;
      double srtt_ms;
    };
    std::vector<Row> rows(names.size());

    scenario::parallel_sweep(names.size(), [&](std::size_t i) {
      scenario::WanPath::Config cfg;
      cfg.enable_web100 = false;
      scenario::WanPath wan{cfg, scenario::factory_by_name(names[i])};
      wan.run_bulk_transfer(sim::Time::zero(), horizon);
      const auto& mib = wan.sender().mib();
      rows[i] = {wan.goodput_mbps(sim::Time::zero(), horizon),
                 static_cast<unsigned long long>(mib.SendStall),
                 static_cast<unsigned long long>(mib.FastRetran),
                 static_cast<unsigned long long>(mib.Timeouts),
                 mib.MaxCwnd / 1460.0,
                 static_cast<double>(mib.SmoothedRTT.milliseconds_count())};
    });

    metrics::Table table{{"variant", "goodput_mbps", "stalls", "fast_retrans", "timeouts",
                          "max_cwnd_pkts", "srtt_ms"}};
    for (std::size_t i = 0; i < names.size(); ++i) {
      const auto& r = rows[i];
      table.add_row({names[i], r.goodput, r.stalls, r.fast_retrans, r.timeouts,
                     r.max_cwnd_pkts, r.srtt_ms});
    }

    // Shape: RSS wins outright stall-free; Vegas conservative; standard
    // beats Tahoe.
    const auto idx = [&](const char* n) {
      for (std::size_t i = 0; i < names.size(); ++i)
        if (names[i] == n) return i;
      return std::size_t{0};
    };
    const bool ok = rows[idx("restricted-slow-start")].goodput > rows[idx("vegas")].goodput &&
                    rows[idx("restricted-slow-start")].stalls == 0 &&
                    rows[idx("reno")].goodput >= rows[idx("tahoe")].goodput;
    ExperimentResult res;
    res.table = std::move(table);
    res.reproduced = ok;
    res.verdict =
        strf("RSS tops the table stall-free; Vegas conservative; Reno >= Tahoe: %s",
             ok ? "yes" : "NO");
    return res;
  };
  return e;
}

}  // namespace rss::artifacts
