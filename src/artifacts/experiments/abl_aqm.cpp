// ABL-AQM — router queue-discipline ablation on the dumbbell: tail-drop
// vs RED (the era's AQM). RSS addresses *host* congestion (the local IFQ,
// always tail-drop in Linux); AQM addresses *network* congestion. The two
// act at different queues, so RED neither replaces nor conflicts with RSS.
//
// Table layout: the two full-topology dumbbell populations first, then the
// two synthetic equal-offered-load queue-discipline rows; columns that do
// not apply to a row hold 0.

#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "artifacts/experiments.hpp"
#include "metrics/summary.hpp"
#include "net/queue.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/dumbbell.hpp"
#include "scenario/sweep.hpp"

namespace rss::artifacts {

using namespace rss::sim::literals;

namespace {

struct PopulationRow {
  std::string label;
  double total{0};
  double fairness{0};
  unsigned long long router_drops{0};
  unsigned long long stalls{0};
};

PopulationRow run_population(const std::string& label, bool use_rss) {
  scenario::Dumbbell::Config cfg;
  cfg.flows = 4;
  cfg.access_rate = net::DataRate::mbps(100);  // host-limited startups
  scenario::Dumbbell d{cfg, [use_rss](std::size_t) -> std::unique_ptr<tcp::CongestionControl> {
                         if (use_rss) return std::make_unique<core::RestrictedSlowStart>();
                         return std::make_unique<tcp::RenoCongestionControl>();
                       }};
  for (std::size_t i = 0; i < cfg.flows; ++i)
    d.start_flow(i, sim::Time::milliseconds(static_cast<std::int64_t>(500 * i)));
  const sim::Time horizon = 30_s;
  d.simulation().run_until(horizon);

  PopulationRow r;
  r.label = label;
  const auto goodputs = d.goodputs_mbps(sim::Time::zero(), horizon);
  r.total = std::accumulate(goodputs.begin(), goodputs.end(), 0.0);
  r.fairness = metrics::jain_fairness(goodputs);
  r.router_drops = d.bottleneck().ifq().stats().dropped;
  for (std::size_t i = 0; i < cfg.flows; ++i) r.stalls += d.sender(i).mib().SendStall;
  return r;
}

}  // namespace

Experiment make_abl_aqm_experiment() {
  Experiment e;
  e.name = "abl_aqm";
  e.title = "host IFQ vs router queue discipline: tail-drop/RED orthogonality to RSS";
  e.tolerances.fallback = {1e-9, 1e-3};
  // Drop counters ride on Rng draws through libm; allow small integer slack.
  e.tolerances.per_column["router_drops"] = {3.0, 0.02};
  e.tolerances.per_column["stalls"] = {2.0, 0.0};
  e.tolerances.per_column["synth_drops"] = {3.0, 0.02};
  e.tolerances.per_column["synth_early_drops"] = {3.0, 0.02};
  e.tolerances.per_column["synth_mean_occ"] = {0.5, 0.02};
  e.run = [] {
    std::vector<PopulationRow> rows(2);
    scenario::parallel_sweep(2, [&](std::size_t i) {
      rows[i] = run_population(
          i == 0 ? "tail-drop router, all-reno" : "tail-drop router, all-rss", i == 1);
    });

    // Synthetic RED-vs-droptail at equal offered load: drive both queues
    // with the same arrival pattern and compare drop clustering.
    net::DropTailQueue dt{100};
    net::RedQueue::Options red_opt;
    red_opt.capacity_packets = 100;
    red_opt.min_threshold = 30;
    red_opt.max_threshold = 90;
    net::RedQueue red{red_opt, sim::Rng{42}};
    sim::Rng arrivals{7};
    std::uint64_t dt_burst_drops = 0, red_burst_drops = 0;
    double dt_occ_sum = 0, red_occ_sum = 0;
    const int rounds = 2000;
    for (int round = 0; round < rounds; ++round) {
      // Bursty arrivals: 0-5 packets in, 2 out — slow-start-ish overload.
      const auto in = arrivals.next_in(0, 5);
      for (std::uint64_t k = 0; k < in; ++k) {
        net::Packet p;
        p.payload_bytes = 1460;
        const bool dt_ok = dt.enqueue(p);
        const bool red_ok = red.enqueue(p);
        dt_burst_drops += !dt_ok;
        red_burst_drops += !red_ok;
      }
      (void)dt.dequeue();
      (void)dt.dequeue();
      (void)red.dequeue();
      (void)red.dequeue();
      dt_occ_sum += static_cast<double>(dt.size_packets());
      red_occ_sum += static_cast<double>(red.size_packets());
    }
    const double dt_mean_occ = dt_occ_sum / rounds;
    const double red_mean_occ = red_occ_sum / rounds;

    metrics::Table table{{"configuration", "total_mbps", "jain_fairness", "router_drops",
                          "stalls", "synth_drops", "synth_early_drops", "synth_mean_occ"}};
    for (const auto& r : rows) {
      table.add_row({r.label, r.total, r.fairness, r.router_drops, r.stalls, 0, 0, 0.0});
    }
    table.add_row({"synthetic tail-drop (cap 100)", 0.0, 0.0, 0, 0, dt_burst_drops, 0,
                   dt_mean_occ});
    table.add_row({"synthetic RED (cap 100)", 0.0, 0.0, 0, 0, red_burst_drops,
                   red.early_drops(), red_mean_occ});

    // RED's virtue under sustained overload is *standing-queue* control
    // (lower mean occupancy = lower latency), not fewer drops.
    const bool shape = red.early_drops() > 0 && red_mean_occ < dt_mean_occ &&
                       rows[1].stalls <= rows[0].stalls;
    ExperimentResult res;
    res.table = std::move(table);
    res.reproduced = shape;
    res.verdict = strf(
        "RED sheds early & keeps the standing queue shorter; RSS reduces host stalls "
        "independent of router discipline: %s",
        shape ? "yes" : "NO");
    return res;
  };
  return e;
}

}  // namespace rss::artifacts
