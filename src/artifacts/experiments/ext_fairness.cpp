// EXT-FAIR — the paper's stated design goal is "optimal bandwidth
// utilization, while still being network friendly". RSS only restricts its
// own startup, so it must not hurt competing standard flows. Three
// dumbbell populations (4 flows, staggered starts, shared 100 Mbit/s
// bottleneck): all-Reno, all-RSS, and mixed.
//
// Built on the declarative topology API: the dumbbell spec comes from
// Dumbbell::make_spec, the staggered starts are declared on the FlowSpecs,
// and ScenarioBuilder wires it.

#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "artifacts/experiments.hpp"
#include "metrics/summary.hpp"
#include "scenario/builder.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/dumbbell.hpp"
#include "scenario/sweep.hpp"

namespace rss::artifacts {

using namespace rss::sim::literals;

namespace {

struct Result {
  std::string label;
  std::vector<double> goodputs;
  double fairness{0};
  double total{0};
  unsigned long long stalls{0};
};

Result run_population(const std::string& label, const scenario::FlowCcFactory& factory) {
  scenario::Dumbbell::Config cfg;
  cfg.flows = 4;
  // Paper-era hosts: the access NIC runs at the same 100 Mbit/s as the
  // shared bottleneck, so each flow's startup can stall its *own* IFQ
  // (host congestion) while steady-state contention happens at the router
  // (network congestion).
  cfg.access_rate = net::DataRate::mbps(100);

  scenario::TopologySpec spec = scenario::Dumbbell::make_spec(cfg);
  for (std::size_t i = 0; i < spec.flows.size(); ++i)
    spec.flows[i].start = sim::Time::seconds(static_cast<std::int64_t>(2 * i));
  auto scenario = scenario::ScenarioBuilder{std::move(spec)}.build(factory);

  const sim::Time horizon = 40_s;
  scenario->run_until(horizon);

  Result r;
  r.label = label;
  r.goodputs = scenario->goodputs_mbps(sim::Time::zero(), horizon);
  r.fairness = metrics::jain_fairness(r.goodputs);
  r.total = std::accumulate(r.goodputs.begin(), r.goodputs.end(), 0.0);
  for (std::size_t i = 0; i < cfg.flows; ++i) r.stalls += scenario->sender(i).mib().SendStall;
  return r;
}

}  // namespace

Experiment make_ext_fairness_experiment() {
  Experiment e;
  e.name = "ext_fairness";
  e.title = "4 staggered flows on a shared 100 Mbit/s dumbbell: friendliness";
  e.tolerances.fallback = {1e-9, 1e-3};
  e.tolerances.per_column["jain_fairness"] = {0.005, 0.0};
  e.tolerances.per_column["stalls"] = {2.0, 0.0};
  e.run = [] {
    std::vector<Result> results(3);
    const std::vector<std::string> labels{"all-reno", "all-rss", "mixed rss/reno"};

    scenario::parallel_sweep(3, [&](std::size_t i) {
      scenario::FlowCcFactory factory;
      if (i == 0) {
        factory = scenario::uniform_cc(scenario::make_reno_factory());
      } else if (i == 1) {
        factory = scenario::uniform_cc(scenario::make_rss_factory());
      } else {
        // Alternating mixed population: RSS on even flow indices.
        factory = scenario::striped_cc(
            {scenario::make_rss_factory(), scenario::make_reno_factory()});
      }
      results[i] = run_population(labels[i], factory);
    });

    metrics::Table table{{"population", "jain_fairness", "total_mbps", "stalls",
                          "flow0_mbps", "flow1_mbps", "flow2_mbps", "flow3_mbps"}};
    for (const auto& r : results) {
      table.add_row({r.label, r.fairness, r.total, r.stalls, r.goodputs[0], r.goodputs[1],
                     r.goodputs[2], r.goodputs[3]});
    }

    // Mixed population head-to-head: RSS flows are 0 and 2.
    const auto& mixed = results[2];
    const double rss_share = mixed.goodputs[0] + mixed.goodputs[2];
    const double reno_share = mixed.goodputs[1] + mixed.goodputs[3];
    const bool friendly = mixed.fairness > 0.6 && rss_share < 2.0 * reno_share;
    const bool fair_populations = results[0].fairness > 0.6 && results[1].fairness > 0.6;
    ExperimentResult res;
    res.table = std::move(table);
    res.reproduced = friendly && fair_populations;
    res.verdict = strf(
        "mixed split: RSS pair %.1f Mb/s vs Reno pair %.1f Mb/s; network friendly (no "
        "starvation either way): %s",
        rss_share, reno_share, res.reproduced ? "yes" : "NO");
    return res;
  };
  return e;
}

}  // namespace rss::artifacts
