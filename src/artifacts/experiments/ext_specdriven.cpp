// EXT-SPECDRIVEN — "studies as config": the entire experiment grid lives in
// specs/rss_vs_reno_ifq.json, not in this file. The spec declares the
// paper's WAN path as data, then sweeps a 2x3 grid — end-to-end congestion
// control {reno, restricted-slow-start} x sender IFQ depth {50, 100, 200}
// packets — through the generic spec runner (parse -> expand -> build ->
// parallel_sweep). This C++ is a thin shell: it names the file and states
// the expected shape; editing the JSON re-scopes the study with no
// recompile.
//
// Shape under test: at every IFQ depth, RSS removes the send-stalls Reno's
// slow-start overshoot causes on the host NIC queue, without giving up
// goodput — the paper's Figure 1 claim, regenerated from config alone.

#include <string>

#include "artifacts/experiments.hpp"
#include "scenario/spec_cli.hpp"

#ifndef RSS_SPECS_DIR
#define RSS_SPECS_DIR "specs"
#endif

namespace rss::artifacts {

Experiment make_ext_specdriven_experiment() {
  Experiment e;
  e.name = "ext_specdriven";
  e.title = "spec-driven study: RSS vs Reno over IFQ depths, from specs/rss_vs_reno_ifq.json";
  e.tolerances.fallback = {1e-9, 1e-3};
  e.tolerances.per_column["send_stalls"] = {2.0, 0.0};
  e.tolerances.per_column["timeouts"] = {1.0, 0.0};
  e.tolerances.per_column["pkts_retrans"] = {0.0, 0.02};
  e.run = [] {
    const std::string path = std::string{RSS_SPECS_DIR} + "/rss_vs_reno_ifq.json";
    metrics::Table table = scenario::spec::run_spec_file(path);

    // Shape: summed over the IFQ axis, the RSS population stalls less than
    // Reno and is not starved (goodput within 20% of Reno's total).
    const std::size_t cc_col = *table.column_index("cc");
    const std::size_t stall_col = *table.column_index("send_stalls");
    const std::size_t goodput_col = *table.column_index("goodput_mbps");
    double reno_stalls = 0, rss_stalls = 0, reno_mbps = 0, rss_mbps = 0;
    for (std::size_t row = 0; row < table.row_count(); ++row) {
      const bool is_reno = table.at(row, cc_col).text == "reno";
      (is_reno ? reno_stalls : rss_stalls) += table.at(row, stall_col).number;
      (is_reno ? reno_mbps : rss_mbps) += table.at(row, goodput_col).number;
    }

    ExperimentResult res;
    res.table = std::move(table);
    res.reproduced = rss_stalls < reno_stalls && rss_mbps > 0.8 * reno_mbps;
    res.verdict =
        strf("config-only grid (2 cc x 3 ifq): stalls %.0f (reno) -> %.0f (rss), "
             "goodput sum %.1f -> %.1f Mb/s; shape %s",
             reno_stalls, rss_stalls, reno_mbps, rss_mbps,
             res.reproduced ? "reproduced" : "NOT reproduced");
    return res;
  };
  return e;
}

}  // namespace rss::artifacts
