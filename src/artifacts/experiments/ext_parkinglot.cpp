// EXT-PARKINGLOT — multi-bottleneck scenario breadth: a 3-hop parking-lot
// topology with heterogeneous per-hop RTTs and one Reno cross flow per
// hop. The end-to-end flow crosses every bottleneck (so it pays every
// hop's contention) while each cross flow loads exactly one hop. Two
// populations differ only in the end-to-end flow's congestion control —
// standard Reno vs Restricted Slow-Start — with the paper's host-NIC
// constraint (access at the bottleneck's 100 Mbit/s, 100-packet IFQ), so
// startup overshoot stalls the sender's own interface queue exactly as on
// the WAN path.
//
// Shape under test: RSS eliminates the end-to-end flow's send-stalls
// without starving the cross traffic on any hop.

#include <numeric>
#include <string>
#include <vector>

#include "artifacts/experiments.hpp"
#include "metrics/summary.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/presets.hpp"
#include "scenario/sweep.hpp"

namespace rss::artifacts {

using namespace rss::sim::literals;

namespace {

struct Result {
  std::string label;
  std::vector<double> goodputs;  // flow 0 = end-to-end, then one per hop
  double fairness{0};
  double total{0};
  unsigned long long e2e_stalls{0};
};

Result run_population(const std::string& label, const scenario::CcFactory& e2e_cc) {
  scenario::ParkingLot::Config cfg;
  cfg.hops = 3;
  cfg.cross_flows_per_hop = 1;
  // Heterogeneous per-hop RTTs: the short-, medium- and long-haul segments
  // of the chain (end-to-end RTT ~104 ms; cross-flow RTTs ~14/34/64 ms).
  cfg.hop_delays = {5_ms, 15_ms, 30_ms};
  // Paper-era hosts: access NICs run at the bottleneck's 100 Mbit/s with a
  // 100-packet IFQ, so slow-start overshoot stalls the local queue.
  cfg.access_rate = net::DataRate::mbps(100);
  cfg.bottleneck_rate = net::DataRate::mbps(100);

  // Flow 0 (end-to-end) gets the population's algorithm; cross traffic is
  // always standard Reno.
  auto reno = scenario::make_reno_factory();
  scenario::ParkingLot lot{cfg, [&](std::size_t flow) {
                             return flow == 0 ? e2e_cc() : reno();
                           }};
  lot.start_flow(0, 0_s);
  for (std::size_t i = 1; i < lot.flow_count(); ++i)
    lot.start_flow(i, sim::Time::seconds(static_cast<std::int64_t>(i)));

  const sim::Time horizon = 40_s;
  lot.simulation().run_until(horizon);

  Result r;
  r.label = label;
  r.goodputs = lot.goodputs_mbps(sim::Time::zero(), horizon);
  r.fairness = metrics::jain_fairness(r.goodputs);
  r.total = std::accumulate(r.goodputs.begin(), r.goodputs.end(), 0.0);
  r.e2e_stalls = lot.end_to_end().mib().SendStall;
  return r;
}

}  // namespace

Experiment make_ext_parkinglot_experiment() {
  Experiment e;
  e.name = "ext_parkinglot";
  e.title = "3-hop parking lot, heterogeneous RTTs: Reno vs RSS end-to-end flow";
  e.tolerances.fallback = {1e-9, 1e-3};
  e.tolerances.per_column["jain_fairness"] = {0.005, 0.0};
  e.tolerances.per_column["e2e_stalls"] = {2.0, 0.0};
  e.run = [] {
    std::vector<Result> results(2);
    const std::vector<std::string> labels{"reno-e2e", "rss-e2e"};

    scenario::parallel_sweep(2, [&](std::size_t i) {
      results[i] = run_population(labels[i], i == 0 ? scenario::make_reno_factory()
                                                    : scenario::make_rss_factory());
    });

    metrics::Table table{{"population", "e2e_mbps", "e2e_stalls", "cross0_mbps",
                          "cross1_mbps", "cross2_mbps", "jain_fairness", "total_mbps"}};
    for (const auto& r : results) {
      table.add_row({r.label, r.goodputs[0], r.e2e_stalls, r.goodputs[1], r.goodputs[2],
                     r.goodputs[3], r.fairness, r.total});
    }

    const auto& reno = results[0];
    const auto& rss = results[1];
    const bool stall_fix = rss.e2e_stalls < reno.e2e_stalls;
    bool nobody_starved = true;
    for (const auto& r : results)
      for (const double g : r.goodputs) nobody_starved = nobody_starved && g > 1.0;
    ExperimentResult res;
    res.table = std::move(table);
    res.reproduced = stall_fix && nobody_starved;
    res.verdict = strf(
        "end-to-end stalls %llu (reno) -> %llu (rss); e2e goodput %.1f -> %.1f Mb/s; "
        "all hops' cross traffic alive: %s",
        reno.e2e_stalls, rss.e2e_stalls, reno.goodputs[0], rss.goodputs[0],
        res.reproduced ? "yes" : "NO");
    return res;
  };
  return e;
}

}  // namespace rss::artifacts
