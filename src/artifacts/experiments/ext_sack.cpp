// EXT-SACK — loss-recovery machinery comparison: NewReno vs SACK
// (RFC 2018 + RFC 6675-lite pipe algorithm), with and without Restricted
// Slow-Start, under a burst-loss and a continuous-random-loss regime on
// the paper path.

#include <vector>

#include "artifacts/experiments.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/sweep.hpp"
#include "scenario/wan_path.hpp"

namespace rss::artifacts {

using namespace rss::sim::literals;

namespace {

struct Cell {
  double goodput{0};
  unsigned long long retrans{0};
  unsigned long long timeouts{0};
};

Cell run_one(bool sack, bool rss, bool burst) {
  scenario::WanPath::Config cfg;
  cfg.enable_web100 = false;
  cfg.path.ifq_capacity_packets = rss ? 100 : 100000;  // stock path for pure-recovery runs
  cfg.sender.enable_sack = sack;
  cfg.receiver.enable_sack = sack;
  scenario::WanPath wan{cfg,
                        rss ? scenario::make_rss_factory() : scenario::make_reno_factory()};
  if (burst) {
    wan.simulation().at(3_s, [&] { wan.nic().link()->set_loss_rate(0.2, sim::Rng{11}); });
    wan.simulation().at(3100_ms, [&] { wan.nic().link()->set_loss_rate(0.0, sim::Rng{11}); });
  } else {
    wan.nic().link()->set_loss_rate(0.01, sim::Rng{13});
  }
  const sim::Time horizon = 12_s;
  wan.run_bulk_transfer(sim::Time::zero(), horizon);
  return {wan.goodput_mbps(sim::Time::zero(), horizon),
          static_cast<unsigned long long>(wan.sender().mib().PktsRetrans),
          static_cast<unsigned long long>(wan.sender().mib().Timeouts)};
}

}  // namespace

Experiment make_ext_sack_experiment() {
  Experiment e;
  e.name = "ext_sack";
  e.title = "loss-recovery machinery: NewReno vs SACK, with/without RSS";
  e.tolerances.fallback = {1e-9, 2e-3};
  // Loss realisations ride on Rng draws through libm log(); retransmission
  // and timeout counts can wobble by a few packets across glibc builds.
  e.tolerances.per_column["retrans"] = {5.0, 0.02};
  e.tolerances.per_column["timeouts"] = {1.0, 0.0};
  e.run = [] {
    struct Job {
      const char* label;
      bool sack, rss, burst;
    };
    const std::vector<Job> jobs{
        {"burst | newreno", false, false, true},    {"burst | sack", true, false, true},
        {"burst | rss+newreno", false, true, true}, {"burst | rss+sack", true, true, true},
        {"p=1%  | newreno", false, false, false},   {"p=1%  | sack", true, false, false},
    };
    std::vector<Cell> cells(jobs.size());
    scenario::parallel_sweep(jobs.size(), [&](std::size_t i) {
      cells[i] = run_one(jobs[i].sack, jobs[i].rss, jobs[i].burst);
    });

    metrics::Table table{{"scenario", "goodput_mbps", "retrans", "timeouts"}};
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      table.add_row({jobs[i].label, cells[i].goodput, cells[i].retrans, cells[i].timeouts});
    }

    // The rss rows run on the paper's IFQ-100 path while the pure-recovery
    // rows use a huge IFQ, so compare within each pair, not across.
    const bool shape = cells[1].goodput > cells[0].goodput &&  // sack wins the burst case
                       cells[3].goodput > cells[2].goodput &&  // ...with RSS too
                       cells[5].retrans <= cells[4].retrans;   // never retransmits more
    ExperimentResult res;
    res.table = std::move(table);
    res.reproduced = shape;
    res.verdict = strf(
        "SACK wins multi-hole recovery, composes with RSS, and never retransmits more "
        "than NewReno: %s",
        shape ? "yes" : "NO");
    return res;
  };
  return e;
}

}  // namespace rss::artifacts
