// ABL-RTT — sensitivity of the result to path RTT. The paper measured one
// path (60 ms); the mechanism (slow-start bursts overflowing a fixed-size
// IFQ) is RTT-dependent: the larger the BDP relative to the IFQ, the worse
// standard TCP's stall penalty and the larger RSS's win.

#include <vector>

#include "artifacts/experiments.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/sweep.hpp"
#include "scenario/wan_path.hpp"

namespace rss::artifacts {

using namespace rss::sim::literals;

Experiment make_abl_rtt_experiment() {
  Experiment e;
  e.name = "abl_rtt";
  e.title = "goodput vs path RTT at 100 Mbit/s, IFQ 100 pkts, standard vs RSS";
  e.tolerances.fallback = {1e-9, 1e-3};
  e.tolerances.per_column["std_stalls"] = {1.0, 0.0};
  e.tolerances.per_column["rss_stalls"] = {0.0, 0.0};
  e.tolerances.per_column["rss_gain_pct"] = {0.5, 0.01};
  e.run = [] {
    const std::vector<std::int64_t> rtts_ms{10, 30, 60, 120, 200};
    const sim::Time horizon = 30_s;

    struct Cell {
      double goodput{0};
      unsigned long long stalls{0};
    };
    struct Row {
      Cell standard, rss;
    };
    std::vector<Row> rows(rtts_ms.size());

    scenario::parallel_sweep(rtts_ms.size() * 2, [&](std::size_t job) {
      const std::size_t i = job / 2;
      const bool use_rss = job % 2 == 1;
      scenario::WanPath::Config cfg;
      cfg.enable_web100 = false;
      cfg.path.one_way_delay = sim::Time::milliseconds(rtts_ms[i] / 2);
      scenario::WanPath wan{
          cfg, use_rss ? scenario::make_rss_factory() : scenario::make_reno_factory()};
      wan.run_bulk_transfer(sim::Time::zero(), horizon);
      Cell cell{wan.goodput_mbps(sim::Time::zero(), horizon),
                static_cast<unsigned long long>(wan.sender().mib().SendStall)};
      (use_rss ? rows[i].rss : rows[i].standard) = cell;
    });

    metrics::Table table{{"rtt_ms", "std_goodput_mbps", "std_stalls", "rss_goodput_mbps",
                          "rss_stalls", "rss_gain_pct"}};
    bool rss_never_loses = true;
    for (std::size_t i = 0; i < rtts_ms.size(); ++i) {
      const auto& r = rows[i];
      const double gain = 100.0 * (r.rss.goodput - r.standard.goodput) / r.standard.goodput;
      rss_never_loses = rss_never_loses && r.rss.goodput >= 0.95 * r.standard.goodput;
      table.add_row({rtts_ms[i], r.standard.goodput, r.standard.stalls, r.rss.goodput,
                     r.rss.stalls, gain});
    }

    // Shape: the win grows with RTT (BDP/IFQ ratio), and RSS never loses.
    const double gain_low = rows.front().rss.goodput / rows.front().standard.goodput;
    const double gain_high = rows.back().rss.goodput / rows.back().standard.goodput;
    ExperimentResult res;
    res.table = std::move(table);
    res.reproduced = rss_never_loses;
    res.verdict = strf("RSS >= standard at every RTT: %s; win grows with RTT: %s",
                       rss_never_loses ? "yes" : "NO", gain_high > gain_low ? "yes" : "NO");
    return res;
  };
  return e;
}

}  // namespace rss::artifacts
