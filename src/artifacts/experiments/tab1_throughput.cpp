// TAB-1 — the paper's §4 headline result: "our scheme is able to achieve
// 40% improvement in throughput compared to the standard TCP" on a
// 100 Mbit/s, 60 ms-RTT path. Standard TCP vs Limited Slow-Start
// (RFC 3742) vs Restricted Slow-Start on the same bulk transfer.

#include <string>
#include <vector>

#include "artifacts/experiments.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/sweep.hpp"
#include "scenario/wan_path.hpp"

namespace rss::artifacts {

using namespace rss::sim::literals;

Experiment make_tab1_throughput_experiment() {
  Experiment e;
  e.name = "tab1_throughput";
  e.title = "bulk-transfer throughput by congestion-control variant (paper Table 1 / §4)";
  e.tolerances.fallback = {1e-9, 1e-3};
  // Derived ratio: goodput drift within tolerance on both operands can
  // amplify through 100*(rss/std - 1), so it needs its own wider band.
  e.tolerances.per_column["vs_standard_pct"] = {0.5, 0.01};
  e.tolerances.per_column["stalls"] = {1.0, 0.0};
  e.tolerances.per_column["timeouts"] = {0.0, 0.0};
  e.run = [] {
    const sim::Time horizon = 25_s;

    struct Row {
      std::string label;
      double goodput_mbps{0};
      unsigned long long stalls{0};
      unsigned long long timeouts{0};
      double max_cwnd_pkts{0};
    };

    auto variants = scenario::standard_variants();
    std::vector<Row> rows(variants.size());
    scenario::parallel_sweep(variants.size(), [&](std::size_t i) {
      scenario::WanPath::Config cfg;
      cfg.enable_web100 = false;
      scenario::WanPath wan{cfg, variants[i].factory};
      wan.run_bulk_transfer(sim::Time::zero(), horizon);
      rows[i] = {variants[i].label, wan.goodput_mbps(sim::Time::zero(), horizon),
                 static_cast<unsigned long long>(wan.sender().mib().SendStall),
                 static_cast<unsigned long long>(wan.sender().mib().Timeouts),
                 wan.sender().mib().MaxCwnd / 1460.0};
    });

    const double standard = rows[0].goodput_mbps;
    metrics::Table table{
        {"variant", "goodput_mbps", "vs_standard_pct", "stalls", "timeouts",
         "max_cwnd_pkts"}};
    for (const auto& r : rows) {
      table.add_row({r.label, r.goodput_mbps,
                     100.0 * (r.goodput_mbps - standard) / standard, r.stalls, r.timeouts,
                     r.max_cwnd_pkts});
    }

    const double rss = rows[2].goodput_mbps;
    const double improvement = 100.0 * (rss - standard) / standard;
    ExperimentResult res;
    res.table = std::move(table);
    res.reproduced = improvement > 20.0;
    res.verdict =
        strf("paper claim: +40%% for restricted slow-start; measured %+.1f%% -> %s",
             improvement, res.reproduced ? "REPRODUCED (shape)" : "NOT reproduced");
    return res;
  };
  return e;
}

}  // namespace rss::artifacts
