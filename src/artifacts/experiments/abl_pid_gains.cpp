// ABL-GAIN — ablation of the Ziegler–Nichols gain choice (§3). Scales the
// default proportional gain up and down (and drops the I/D terms) to show
// the tuned operating point is neither arbitrary nor fragile.

#include <string>
#include <vector>

#include "artifacts/experiments.hpp"
#include "metrics/timeseries.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/sweep.hpp"
#include "scenario/wan_path.hpp"

namespace rss::artifacts {

using namespace rss::sim::literals;

Experiment make_abl_pid_gains_experiment() {
  Experiment e;
  e.name = "abl_pid_gains";
  e.title = "PID gain ablation around the Ziegler-Nichols tuned point";
  e.tolerances.fallback = {1e-9, 1e-3};
  // Dispersion stats and the ramp-crossing instant are the most sensitive
  // outputs here; give them a little more headroom than plain goodput.
  e.tolerances.per_column["ifq_sigma"] = {0.05, 0.02};
  e.tolerances.per_column["ramp_s"] = {0.05, 0.0};
  e.tolerances.per_column["stalls"] = {1.0, 0.0};
  e.run = [] {
    struct Variant {
      std::string label;
      control::PidGains gains;
    };
    const control::PidGains base = core::RestrictedSlowStart::Options{}.gains;
    const std::vector<Variant> variants{
        {"0.1x Kp (sluggish)", {0.1 * base.kp, base.ti, base.td}},
        {"0.33x Kp", {0.33 * base.kp, base.ti, base.td}},
        {"tuned (paper rule)", base},
        {"3x Kp", {3.0 * base.kp, base.ti, base.td}},
        {"10x Kp (aggressive)", {10.0 * base.kp, base.ti, base.td}},
        {"P only", {base.kp, 0.0, 0.0}},
        {"PI (no derivative)", {base.kp, base.ti, 0.0}},
    };
    const sim::Time horizon = 25_s;

    struct Row {
      double goodput;
      double mean_ifq;
      double ifq_stddev;
      unsigned long long stalls;
      double t_to_90mbps;  ///< ramp speed: first time inst. goodput > 90% line
    };
    std::vector<Row> rows(variants.size());

    scenario::parallel_sweep(variants.size(), [&](std::size_t i) {
      core::RestrictedSlowStart::Options opt;
      opt.gains = variants[i].gains;
      scenario::WanPath::Config cfg;
      cfg.enable_web100 = false;
      scenario::WanPath wan{cfg, scenario::make_rss_factory(opt)};

      metrics::TimeSeries ifq{"ifq"};
      double t_ramp = -1.0;
      std::uint64_t last_acked = 0;
      wan.simulation().every(20_ms, [&](sim::Time now) {
        ifq.record(now, static_cast<double>(wan.nic().occupancy_packets()));
        const std::uint64_t acked = wan.sender().bytes_acked();
        const double inst_mbps = static_cast<double>(acked - last_acked) * 8.0 / 0.02 / 1e6;
        last_acked = acked;
        if (t_ramp < 0.0 && inst_mbps > 85.0) t_ramp = now.to_seconds();
        return true;
      });
      wan.run_bulk_transfer(sim::Time::zero(), horizon);

      // Occupancy dispersion in steady state measures control quality.
      rows[i] = {wan.goodput_mbps(sim::Time::zero(), horizon),
                 ifq.time_weighted_mean(10_s, horizon), ifq.stddev_from(10_s, horizon),
                 static_cast<unsigned long long>(wan.sender().mib().SendStall), t_ramp};
    });

    metrics::Table table{
        {"gains", "goodput_mbps", "mean_ifq", "ifq_sigma", "stalls", "ramp_s"}};
    for (std::size_t i = 0; i < variants.size(); ++i) {
      const auto& r = rows[i];
      table.add_row(
          {variants[i].label, r.goodput, r.mean_ifq, r.ifq_stddev, r.stalls, r.t_to_90mbps});
    }

    const auto& tuned = rows[2];
    const bool ok = tuned.stalls == 0 && tuned.goodput >= rows[0].goodput - 0.5;
    ExperimentResult res;
    res.table = std::move(table);
    res.reproduced = ok;
    res.verdict =
        strf("tuned gains: stall-free and at least as fast as the detuned variants: %s",
             ok ? "yes" : "NO");
    return res;
  };
  return e;
}

}  // namespace rss::artifacts
