#include "artifacts/runner.hpp"

#include <cstdio>
#include <exception>
#include <filesystem>
#include <iostream>
#include <string_view>

#include "artifacts/experiments.hpp"
#include "artifacts/golden.hpp"
#include "artifacts/registry.hpp"
#include "scenario/exec_flags.hpp"

namespace rss::artifacts {

namespace {

namespace fs = std::filesystem;

std::string golden_path(const std::string& dir, const std::string& name) {
  return (fs::path{dir} / (name + ".csv")).string();
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <command> [options] [experiment...]\n"
               "\n"
               "commands:\n"
               "  --list            list registered experiments\n"
               "  --run <name|all>  run experiment(s), print CSV tables + verdicts\n"
               "  --write-goldens   run experiment(s) and (re)write golden CSVs\n"
               "  --check           run experiment(s) and diff against golden CSVs;\n"
               "                    exit 0 iff every table matches (determinism gate)\n"
               "\n"
               "options:\n"
               "  --goldens <dir>   golden directory (default: the source tree's\n"
               "                    artifacts/goldens, falling back to ./artifacts/goldens)\n"
               "%s"
               "\n"
               "--write-goldens and --check default to every registered experiment;\n"
               "name specific experiments to restrict them.\n",
               argv0, scenario::ExecFlags::help());
  return 2;
}

/// Resolve the experiment name list for a command; "all"/empty -> all.
bool resolve_names(const ExperimentRegistry& registry, std::vector<std::string>& names,
                   std::string& error) {
  if (names.empty() || (names.size() == 1 && names[0] == "all")) {
    names = registry.names();
    return true;
  }
  for (const auto& n : names) {
    if (!registry.find(n)) {
      error = "unknown experiment: " + n;
      return false;
    }
  }
  return true;
}

int cmd_list(const ExperimentRegistry& registry) {
  for (const auto& name : registry.names()) {
    const Experiment* e = registry.find(name);
    std::printf("%-18s %s\n", e->name.c_str(), e->title.c_str());
  }
  return 0;
}

int cmd_run(const ExperimentRegistry& registry, const std::vector<std::string>& names) {
  bool all_reproduced = true;
  for (const auto& name : names) {
    const Experiment* e = registry.find(name);
    std::printf("== %s: %s\n", e->name.c_str(), e->title.c_str());
    const ExperimentResult r = e->run();
    r.table.write_csv(std::cout);
    std::printf("-- %s\n\n", r.verdict.c_str());
    all_reproduced = all_reproduced && r.reproduced;
  }
  return all_reproduced ? 0 : 1;
}

int cmd_write_goldens(const ExperimentRegistry& registry,
                      const std::vector<std::string>& names, const std::string& dir) {
  fs::create_directories(dir);
  for (const auto& name : names) {
    const Experiment* e = registry.find(name);
    const ExperimentResult r = e->run();
    const auto path = golden_path(dir, name);
    write_golden(path, r.table);
    std::printf("wrote %-18s -> %s (%zu rows)%s\n", name.c_str(), path.c_str(),
                r.table.row_count(), r.reproduced ? "" : "  [shape NOT reproduced]");
  }
  return 0;
}

int cmd_check(const ExperimentRegistry& registry, const std::vector<std::string>& names,
              const std::string& dir) {
  std::size_t failures = 0;
  std::size_t index = 0;
  for (const auto& name : names) {
    ++index;
    std::printf("[%zu/%zu] %-18s ", index, names.size(), name.c_str());
    std::fflush(stdout);
    const auto path = golden_path(dir, name);
    if (!fs::exists(path)) {
      std::printf("FAIL (missing golden %s — run --write-goldens)\n", path.c_str());
      ++failures;
      continue;
    }
    const Experiment* e = registry.find(name);
    metrics::Table golden;
    try {
      golden = metrics::Table::read_csv_file(path);
    } catch (const std::exception& ex) {
      std::printf("FAIL (unreadable golden: %s)\n", ex.what());
      ++failures;
      continue;
    }
    const ExperimentResult r = e->run();
    const DiffResult diff = diff_tables(golden, r.table, e->tolerances);
    if (!diff.ok()) {
      std::printf("FAIL (%zu mismatches)\n", diff.total_mismatches);
      for (const auto& err : diff.errors) std::printf("    %s\n", err.c_str());
      ++failures;
    } else if (!r.reproduced) {
      // Drift inside the tolerances can still flip a strict shape
      // predicate recomputed from the fresh numbers; the bench binaries
      // would then exit 1 for every user, so the gate must fail too.
      std::printf("FAIL (tables match but shape verdict regressed: %s)\n",
                  r.verdict.c_str());
      ++failures;
    } else {
      std::printf("PASS (%zu rows, %zu cols)\n", golden.row_count(),
                  golden.column_count());
    }
  }
  if (failures) {
    std::printf("\n%zu/%zu experiments drifted from their goldens.\n"
                "If the change is intentional, regenerate with --write-goldens and commit "
                "the diff.\n",
                failures, names.size());
  } else {
    std::printf("\nall %zu experiments match their goldens.\n", names.size());
  }
  return failures ? 1 : 0;
}

}  // namespace

int run_experiment_main(const std::string& name) {
  try {
    auto& registry = ExperimentRegistry::instance();
    register_builtin_experiments(registry);
    const Experiment* e = registry.find(name);
    if (!e) {
      std::fprintf(stderr, "unknown experiment: %s\n", name.c_str());
      return 2;
    }
    std::printf("%s: %s\n\n", e->name.c_str(), e->title.c_str());
    const ExperimentResult r = e->run();
    r.table.write_csv(std::cout);
    std::printf("\n%s\n", r.verdict.c_str());
    return r.reproduced ? 0 : 1;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 2;
  }
}

int artifacts_main(int argc, char** argv, std::string default_goldens_dir) {
  enum class Command { kNone, kList, kRun, kWriteGoldens, kCheck };
  Command cmd = Command::kNone;
  std::string goldens_dir;
  scenario::ExecFlags exec;
  std::vector<std::string> names;

  for (int i = 1; i < argc; ++i) {
    switch (exec.parse(argc, argv, i)) {
      case scenario::ExecFlags::Parse::kConsumed:
        continue;
      case scenario::ExecFlags::Parse::kError:
        return 2;
      case scenario::ExecFlags::Parse::kNotMine:
        break;
    }
    const std::string_view arg = argv[i];
    if (arg == "--list") {
      cmd = Command::kList;
    } else if (arg == "--run") {
      cmd = Command::kRun;
    } else if (arg == "--write-goldens") {
      cmd = Command::kWriteGoldens;
    } else if (arg == "--check") {
      cmd = Command::kCheck;
    } else if (arg == "--goldens") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--goldens needs a directory argument\n");
        return 2;
      }
      goldens_dir = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return usage(argv[0]);
    } else {
      names.emplace_back(arg);
    }
  }
  if (cmd == Command::kNone) return usage(argv[0]);
  // Same flag surface as rss_scenario: install the execution flags as the
  // process-wide defaults so every experiment's internal sweeps and
  // partitioned builds draw on one thread budget.
  if (!exec.install()) return 2;

  if (goldens_dir.empty()) {
    // The build embeds <source-tree>/artifacts/goldens; use it as long as
    // the source tree is still there (--write-goldens may need to create
    // the directory itself). Fall back to a CWD-relative path so a
    // relocated binary still works when run from a repo root.
    const fs::path def{default_goldens_dir};
    const bool source_tree_present =
        fs::exists(def) ||
        (def.has_parent_path() && fs::exists(def.parent_path().parent_path()));
    goldens_dir = source_tree_present ? default_goldens_dir
                                      : std::string{"artifacts/goldens"};
  }

  try {
    auto& registry = ExperimentRegistry::instance();
    register_builtin_experiments(registry);
    if (cmd == Command::kList) return cmd_list(registry);

    std::string error;
    if (!resolve_names(registry, names, error)) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 2;
    }
    switch (cmd) {
      case Command::kRun:
        return cmd_run(registry, names);
      case Command::kWriteGoldens:
        return cmd_write_goldens(registry, names, goldens_dir);
      case Command::kCheck:
        return cmd_check(registry, names, goldens_dir);
      default:
        return usage(argv[0]);
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 2;
  }
}

}  // namespace rss::artifacts
