#pragma once

#include "artifacts/registry.hpp"

namespace rss::artifacts {

/// Paper headline artifacts.
[[nodiscard]] Experiment make_fig1_send_stalls_experiment();
[[nodiscard]] Experiment make_tab1_throughput_experiment();

/// Ablations (bench/abl_*).
[[nodiscard]] Experiment make_abl_aqm_experiment();
[[nodiscard]] Experiment make_abl_ifq_size_experiment();
[[nodiscard]] Experiment make_abl_pid_gains_experiment();
[[nodiscard]] Experiment make_abl_rtt_experiment();
[[nodiscard]] Experiment make_abl_sampling_experiment();
[[nodiscard]] Experiment make_abl_setpoint_experiment();

/// Extensions beyond the paper (bench/ext_*).
[[nodiscard]] Experiment make_ext_fairness_experiment();
[[nodiscard]] Experiment make_ext_hybrid_fluid_experiment();
[[nodiscard]] Experiment make_ext_modern_cc_experiment();
[[nodiscard]] Experiment make_ext_parkinglot_experiment();
[[nodiscard]] Experiment make_ext_sack_experiment();
[[nodiscard]] Experiment make_ext_specdriven_experiment();
[[nodiscard]] Experiment make_ext_tuning_experiment();
[[nodiscard]] Experiment make_ext_variants_experiment();

/// Register every experiment above with `registry`, in display order.
/// Idempotent: a registry that already holds fig1_send_stalls is left
/// untouched.
void register_builtin_experiments(ExperimentRegistry& registry = ExperimentRegistry::instance());

}  // namespace rss::artifacts
