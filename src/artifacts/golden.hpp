#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "artifacts/experiment.hpp"
#include "metrics/table.hpp"

namespace rss::artifacts {

/// Outcome of diffing a freshly regenerated table against its golden.
struct DiffResult {
  std::vector<std::string> errors;  ///< human-readable, capped (see kMaxReportedErrors)
  std::size_t total_mismatches{0};  ///< uncapped count, for the summary line

  [[nodiscard]] bool ok() const { return total_mismatches == 0; }
};

/// How many individual mismatch lines diff_tables reports before switching
/// to a single "... and N more" summary.
inline constexpr std::size_t kMaxReportedErrors = 16;

/// Structural checks (column names/order, row count) fail fast; cell checks
/// compare numerically under `tol` when both sides are numeric (NaN equals
/// NaN — a deterministic artifact may legitimately pin one), else as exact
/// text.
[[nodiscard]] DiffResult diff_tables(const metrics::Table& golden,
                                     const metrics::Table& fresh, const Tolerances& tol);

/// Write `table` to `path` (parent directory must exist); throws
/// std::runtime_error on I/O failure.
void write_golden(const std::string& path, const metrics::Table& table);

}  // namespace rss::artifacts
