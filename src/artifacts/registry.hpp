#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "artifacts/experiment.hpp"

namespace rss::artifacts {

/// Name -> experiment lookup, in registration (display) order. Registration
/// is explicit (register_builtin_experiments) rather than via static
/// initializers, so experiments in a static library cannot be silently
/// dropped by the linker.
class ExperimentRegistry {
 public:
  /// The process-wide registry used by the bench mains and the
  /// rss_artifacts driver. Tests may build their own instances.
  static ExperimentRegistry& instance();

  /// Throws std::invalid_argument on an empty or duplicate name.
  void add(Experiment experiment);

  [[nodiscard]] const Experiment* find(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const { return experiments_.size(); }

 private:
  std::vector<Experiment> experiments_;
};

}  // namespace rss::artifacts
