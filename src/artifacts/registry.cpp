#include "artifacts/registry.hpp"

#include <stdexcept>

namespace rss::artifacts {

ExperimentRegistry& ExperimentRegistry::instance() {
  static ExperimentRegistry registry;
  return registry;
}

void ExperimentRegistry::add(Experiment experiment) {
  if (experiment.name.empty()) {
    throw std::invalid_argument{"ExperimentRegistry::add: empty experiment name"};
  }
  if (find(experiment.name)) {
    throw std::invalid_argument{"ExperimentRegistry::add: duplicate experiment \"" +
                                experiment.name + "\""};
  }
  experiments_.push_back(std::move(experiment));
}

const Experiment* ExperimentRegistry::find(std::string_view name) const {
  for (const auto& e : experiments_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

std::vector<std::string> ExperimentRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(experiments_.size());
  for (const auto& e : experiments_) out.push_back(e.name);
  return out;
}

}  // namespace rss::artifacts
