#include "artifacts/experiment.hpp"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace rss::artifacts {

const ColumnTolerance& Tolerances::for_column(std::string_view name) const {
  const auto it = per_column.find(name);
  return it != per_column.end() ? it->second : fallback;
}

std::string strf(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (n < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace rss::artifacts
