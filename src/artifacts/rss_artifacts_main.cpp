// rss_artifacts — regenerate the paper's artifacts (Figure 1, Table 1, the
// ablations and extensions) as canonical CSV tables, and diff them against
// the checked-in goldens in artifacts/goldens/. CI runs `--check` on every
// push as the determinism gate.

#include "artifacts/runner.hpp"

#ifndef RSS_DEFAULT_GOLDENS_DIR
#define RSS_DEFAULT_GOLDENS_DIR "artifacts/goldens"
#endif

int main(int argc, char** argv) {
  return rss::artifacts::artifacts_main(argc, argv, RSS_DEFAULT_GOLDENS_DIR);
}
