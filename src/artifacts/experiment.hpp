#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "metrics/table.hpp"

namespace rss::artifacts {

/// Per-column acceptance band for the golden differ. A fresh value x passes
/// against golden value g iff |x - g| <= max(abs, rel * |g|); {0, 0} means
/// exact numeric equality. Tolerances exist to absorb the only legitimate
/// drift sources — CSV formatting quantization and libm (log/exp) ulp
/// differences across glibc builds feeding the Rng/HighSpeed paths — while
/// still failing on any real change to the reproduced numbers.
struct ColumnTolerance {
  double abs{0.0};
  double rel{0.0};
};

struct Tolerances {
  /// Applied to numeric columns without a per_column entry.
  ColumnTolerance fallback{};
  std::map<std::string, ColumnTolerance, std::less<>> per_column;

  [[nodiscard]] const ColumnTolerance& for_column(std::string_view name) const;
};

/// What one experiment run produces: the canonical table (the artifact that
/// is goldened and diffed) plus the bench's human-facing shape verdict.
struct ExperimentResult {
  metrics::Table table;
  bool reproduced{true};
  std::string verdict;
};

/// A registered experiment: `name` is both the registry key and the golden
/// file stem (artifacts/goldens/<name>.csv).
struct Experiment {
  std::string name;
  std::string title;
  Tolerances tolerances;
  std::function<ExperimentResult()> run;
};

/// printf-style formatting for verdict strings (libstdc++ in the supported
/// toolchains predates std::format).
[[nodiscard]] std::string strf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace rss::artifacts
