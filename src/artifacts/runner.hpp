#pragma once

#include <string>
#include <vector>

namespace rss::artifacts {

/// Entry point for the thin bench/ mains: run one registered experiment,
/// stream its canonical CSV table to stdout followed by the shape verdict.
/// Returns 0 when the shape reproduced, 1 when not, 2 on unknown name or
/// error.
int run_experiment_main(const std::string& name);

/// Entry point for the rss_artifacts driver. `default_goldens_dir` is the
/// fallback used when no --goldens flag is given (the build embeds the
/// source-tree artifacts/goldens path).
int artifacts_main(int argc, char** argv, std::string default_goldens_dir);

}  // namespace rss::artifacts
