#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/data_rate.hpp"
#include "scenario/topology.hpp"
#include "sim/time.hpp"

namespace rss::scenario::spec {

/// Typed spec-file error, the file-format sibling of TopologyError: every
/// failure mode a JSON scenario file can exhibit gets a switchable code,
/// and the message carries the line (for syntax errors) or the dotted
/// field path (for schema errors) so `rss_scenario --validate` output
/// points at the offending spot, not just "bad file".
class SpecError : public std::runtime_error {
 public:
  enum class Code {
    kSyntax,        ///< malformed JSON text (line() is 1-based)
    kWrongType,     ///< key present but holds the wrong JSON type
    kMissingField,  ///< required key absent
    kUnknownField,  ///< unrecognized key — specs are parsed strictly
    kBadValue,      ///< bad unit suffix, unknown enum/cc name, out-of-range number
    kBadSweep,      ///< empty axis, zip length mismatch, unresolvable axis path
  };

  SpecError(Code code, std::string field, int line, const std::string& what)
      : std::runtime_error(what), code_{code}, field_{std::move(field)}, line_{line} {}

  [[nodiscard]] Code code() const { return code_; }
  /// Dotted path of the offending field ("links[2].a_dev.rate"); empty for
  /// document-level syntax errors.
  [[nodiscard]] const std::string& field() const { return field_; }
  /// 1-based source line, 0 when not applicable (schema errors on values
  /// synthesized in memory).
  [[nodiscard]] int line() const { return line_; }

 private:
  Code code_;
  std::string field_;
  int line_;
};

// --------------------------------------------------------------------------
// Minimal JSON document model. Self-contained (no third-party dependency):
// the subset the spec format needs — null, bool, number, string, array,
// object — with insertion-ordered object keys and per-value source lines so
// schema errors can point back into the file. Numbers keep their literal
// text, which makes serialize(parse(text)) byte-exact for 64-bit integers
// (seeds) that a double round-trip would corrupt.
// --------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type{Type::kNull};
  bool boolean{false};
  std::string number;  ///< literal text, e.g. "42", "-1.5e3" (type == kNumber)
  std::string string;  ///< decoded text (type == kString)
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  ///< insertion order
  int line{0};  ///< 1-based line in the source text; 0 = built in memory

  [[nodiscard]] static JsonValue make_null();
  [[nodiscard]] static JsonValue make_bool(bool v);
  [[nodiscard]] static JsonValue make_number(std::uint64_t v);
  [[nodiscard]] static JsonValue make_number(std::int64_t v);
  [[nodiscard]] static JsonValue make_number(double v);
  /// Pre-formatted numeric literal (must be a valid JSON number).
  [[nodiscard]] static JsonValue make_number_literal(std::string literal);
  [[nodiscard]] static JsonValue make_string(std::string v);
  [[nodiscard]] static JsonValue make_array();
  [[nodiscard]] static JsonValue make_object();

  [[nodiscard]] bool is_object() const { return type == Type::kObject; }
  [[nodiscard]] bool is_array() const { return type == Type::kArray; }
  [[nodiscard]] bool is_string() const { return type == Type::kString; }
  [[nodiscard]] bool is_number() const { return type == Type::kNumber; }

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  [[nodiscard]] JsonValue* find(std::string_view key);
  /// Append/overwrite an object member (keeps first-insertion order).
  void set(std::string_view key, JsonValue value);

  // Checked scalar accessors. `field` names the value in error messages.
  [[nodiscard]] double as_double(const std::string& field) const;
  [[nodiscard]] std::uint64_t as_u64(const std::string& field) const;
  [[nodiscard]] std::int64_t as_i64(const std::string& field) const;
  [[nodiscard]] bool as_bool(const std::string& field) const;
  [[nodiscard]] const std::string& as_string(const std::string& field) const;
};

/// Parse a JSON document. Throws SpecError{kSyntax} with a 1-based line on
/// malformed input; rejects trailing garbage and duplicate object keys.
[[nodiscard]] JsonValue json_parse(std::string_view text);

/// Pretty-print with 2-space indentation and a trailing newline. Stable:
/// serialize(parse(s)) == serialize(parse(serialize(parse(s)))).
[[nodiscard]] std::string json_serialize(const JsonValue& value);

// --------------------------------------------------------------------------
// Unit-tagged scalars. Times and rates are strings with a unit suffix
// ("30ms", "100mbps") so specs read like the prose they encode; the
// serializer picks the largest unit that divides the value exactly, which
// keeps round trips byte-identical.
// --------------------------------------------------------------------------

/// "250ns" / "10us" / "30ms" / "1.5s" -> Time (fractions round to the
/// nearest nanosecond). Throws SpecError{kBadValue}.
[[nodiscard]] sim::Time parse_time(const std::string& text, const std::string& field);
[[nodiscard]] std::string format_time(sim::Time t);

/// "9600bps" / "56kbps" / "100mbps" / "1gbps" -> DataRate. Throws
/// SpecError{kBadValue}.
[[nodiscard]] net::DataRate parse_rate(const std::string& text, const std::string& field);
[[nodiscard]] std::string format_rate(net::DataRate rate);

// --------------------------------------------------------------------------
// The scenario spec: a TopologySpec plus the pieces a config-only study
// needs on top of the topology — per-flow congestion control (by registered
// variant name), the run window, and an optional parameter sweep.
// --------------------------------------------------------------------------

/// How long to run and where the measurement window starts (goodput and
/// counter deltas are taken over [measure_start, duration]).
struct RunSpec {
  sim::Time duration{sim::Time::seconds(30)};
  sim::Time measure_start{sim::Time::zero()};
};

/// One sweep dimension: a dotted path into the spec document plus the
/// values to substitute there. Paths address any field — numeric knobs
/// ("links[0].a_dev.ifq_packets", "run.duration") are the common case, but
/// enum-like strings ("flows[0].cc") sweep the same way.
struct SweepAxis {
  std::string field;
  std::vector<JsonValue> values;
};

struct SweepSpec {
  enum class Mode {
    kGrid,  ///< cartesian product of all axes (first axis slowest)
    kZip,   ///< parallel iteration; all axes must have equal length
  };
  Mode mode{Mode::kGrid};
  std::vector<SweepAxis> axes;

  [[nodiscard]] bool empty() const { return axes.empty(); }
  /// Number of concrete points this sweep expands to (1 when empty).
  [[nodiscard]] std::size_t point_count() const;
};

/// A parsed scenario file: everything needed to build and run the study
/// without recompiling.
struct ScenarioSpec {
  std::string name;               ///< study label (defaults to "scenario")
  TopologySpec topology;
  std::vector<std::string> flow_cc;  ///< variant name per flow ("reno", "rss", ...)
  RunSpec run;
  SweepSpec sweep;
};

/// Parse a scenario document (strict: unknown keys throw). Validates field
/// types, units, cc names and sweep structure; topology-graph validity
/// (dangling endpoints, duplicate links, unroutable flows) is checked by
/// check_scenario_spec below, matching where the C++ builder checks it.
[[nodiscard]] ScenarioSpec parse_scenario_spec(std::string_view json_text);
[[nodiscard]] ScenarioSpec parse_scenario_spec(const JsonValue& document);

/// Load + parse a file. Throws std::runtime_error when unreadable.
[[nodiscard]] ScenarioSpec load_scenario_spec(const std::string& path);

/// Read a spec file's text (shared by every file-taking entry point);
/// throws std::runtime_error when the file cannot be opened.
[[nodiscard]] std::string read_spec_file(const std::string& path);

/// Graph-level validation: runs validate_topology plus the routability
/// check on every flow. Throws TopologyError (the same typed errors the
/// builder raises), so --validate reports dangling link endpoints et al.
/// before any simulation is attempted.
void check_scenario_spec(const ScenarioSpec& spec);

/// Serialize back to the canonical file form. Defaults are elided (a field
/// equal to its default is not emitted), so emitted presets stay readable
/// and serialize∘parse is byte-stable.
[[nodiscard]] std::string serialize_scenario_spec(const ScenarioSpec& spec);
[[nodiscard]] JsonValue scenario_spec_to_json(const ScenarioSpec& spec);

// --------------------------------------------------------------------------
// Sweep expansion. Substitution happens on the JSON document: each point is
// the base document minus "sweep", with every axis value written at its
// field path, then re-parsed — so a swept value passes through exactly the
// same validation as a hand-written one.
// --------------------------------------------------------------------------

/// One expanded sweep point: the concrete spec plus the axis assignment
/// that produced it, as (field path, JSON literal) pairs in axis order —
/// the sweep columns of the output table.
struct SweepPoint {
  ScenarioSpec spec;
  std::vector<std::pair<std::string, std::string>> assignment;
};

/// Expand a scenario document into its sweep points (a single point with an
/// empty assignment when the spec has no sweep). Throws SpecError{kBadSweep}
/// on empty axes, zip length mismatches, or paths that do not resolve.
[[nodiscard]] std::vector<SweepPoint> expand_scenario_spec(const JsonValue& document);
[[nodiscard]] std::vector<SweepPoint> expand_scenario_spec(std::string_view json_text);

}  // namespace rss::scenario::spec
