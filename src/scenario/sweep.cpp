#include "scenario/sweep.hpp"

#include <algorithm>
#include <exception>
#include <mutex>

namespace rss::scenario {

void parallel_sweep(std::size_t count, const std::function<void(std::size_t)>& fn,
                    std::size_t max_threads) {
  if (count == 0) return;
  // hardware_concurrency() may legitimately return 0 ("unknown"); fall back
  // to a single worker instead of clamping 0 into the thread count.
  ExecutionPolicy policy;
  policy.threads = max_threads;
  std::size_t workers = policy.resolve_threads(count);
  workers = std::clamp<std::size_t>(workers, 1, count);

  if (workers == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> cancelled{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      // Once any worker has thrown, surviving workers must not drain the
      // remaining points: a sweep that is going to rethrow should stop
      // promptly instead of burning cores on results nobody will see.
      if (cancelled.load(std::memory_order_relaxed)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        {
          std::lock_guard lock{error_mutex};
          if (!first_error) first_error = std::current_exception();
        }
        cancelled.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_sweep(std::size_t count, const std::function<void(std::size_t)>& fn,
                    const ExecutionPolicy& policy) {
  if (count == 0) return;
  parallel_sweep(count, fn, policy.resolve_threads(count));
}

}  // namespace rss::scenario
