#include "scenario/builder.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/cross_link.hpp"

namespace rss::scenario {

namespace {

constexpr std::uint64_t edge_key(std::size_t a, std::size_t b) {
  return (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(b);
}

/// `rng` is the stream RED queues fork from, in link-device order. For a
/// single-partition build it is the simulation's master RNG (the historical
/// behavior, byte-for-byte); a partitioned build forks from a dedicated
/// Rng(seed) instead, which yields the *same* fork sequence — the master
/// RNG has had no draws at wiring time — while leaving each partition's own
/// RNG untouched.
[[nodiscard]] std::unique_ptr<net::PacketQueue> make_queue(const DeviceSpec& dev,
                                                           sim::Rng& rng) {
  if (dev.qdisc == QueueDiscipline::kRed) {
    net::RedQueue::Options red = dev.red;
    red.capacity_packets = dev.ifq_packets;
    return std::make_unique<net::RedQueue>(red, rng.fork());
  }
  return std::make_unique<net::DropTailQueue>(dev.ifq_packets);
}

}  // namespace

// --- ScenarioBuilder ------------------------------------------------------

ScenarioBuilder& ScenarioBuilder::node(std::string name) {
  spec_.nodes.push_back(std::move(name));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::link(LinkSpec link) {
  spec_.links.push_back(std::move(link));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::duplex_link(std::string a, std::string b,
                                              net::DataRate rate, sim::Time delay,
                                              std::size_t ifq_packets) {
  LinkSpec l;
  l.a = std::move(a);
  l.b = std::move(b);
  l.delay = delay;
  l.a_dev.rate = rate;
  l.a_dev.ifq_packets = ifq_packets;
  l.b_dev.rate = rate;
  l.b_dev.ifq_packets = ifq_packets;
  spec_.links.push_back(std::move(l));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::flow(FlowSpec flow) {
  spec_.flows.push_back(std::move(flow));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::seed(std::uint64_t seed) {
  spec_.seed = seed;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::backend(sim::QueueBackend backend) {
  spec_.backend = backend;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::execution(ExecutionPolicy policy) {
  spec_.execution = policy;
  return *this;
}

sim::QueueBackend ScenarioBuilder::auto_backend(const TopologySpec& spec,
                                                const RouteTable& routes) {
  return ExecutionPolicy{}.resolve_backend(estimated_pending_events(spec, routes));
}

std::unique_ptr<Scenario> ScenarioBuilder::build(const FlowCcFactory& cc_factory) const {
  using Code = TopologyError::Code;
  if (!cc_factory)
    throw TopologyError(Code::kNullCcFactory,
                        "ScenarioBuilder: null congestion-control factory");
  validate_topology(spec_);
  RouteTable routes = compute_routes(spec_);

  // Routability is a spec property, so reject before wiring anything.
  for (const auto& flow : spec_.flows) {
    const std::size_t src = *node_index(spec_, flow.src);
    const std::size_t dst = *node_index(spec_, flow.dst);
    if (!routes.reachable(src, dst))
      throw TopologyError(Code::kUnroutableFlow,
                          "topology: no path from '" + flow.src + "' to '" + flow.dst + "'");
  }

  // Resolve the execution policy; spec.backend is the deprecated alias and
  // loses to an explicitly set execution.backend, and the process-wide
  // defaults (CLI --backend/--partitions) are the lowest-precedence layer.
  ExecutionPolicy policy = spec_.execution;
  if (!policy.backend && spec_.backend) policy.backend = spec_.backend;
  const ExecutionDefaults& process_defaults = execution_defaults();
  if (!policy.backend && process_defaults.backend)
    policy.backend = process_defaults.backend;
  if (policy.partitions == 1 && process_defaults.partitions > 1)
    policy.partitions = process_defaults.partitions;
  if (policy.partitions == 0)
    throw TopologyError(Code::kBadExecution, "execution: partitions must be >= 1");

  // Partition the node graph. Requests beyond the node count are clamped;
  // a disconnected graph can yield more partitions than requested (extra
  // components parallelize for free).
  const std::size_t requested =
      std::min(policy.partitions, std::max<std::size_t>(spec_.nodes.size(), 1));
  std::vector<std::uint32_t> assignment;
  sim::Time lookahead = sim::Time::infinity();
  if (requested > 1) {
    std::vector<sim::PartitionEdge> edges;
    edges.reserve(spec_.links.size());
    for (const auto& link : spec_.links)
      edges.push_back({*node_index(spec_, link.a), *node_index(spec_, link.b), link.delay});
    assignment = policy.strategy == PartitionStrategy::kBlock
                     ? sim::partition_blocks(spec_.nodes.size(), requested)
                     : sim::partition_by_latency(spec_.nodes.size(), edges, requested);
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (assignment[edges[e].a] != assignment[edges[e].b] &&
          edges[e].latency < sim::Time::nanoseconds(1))
        throw TopologyError(Code::kZeroLatencyCut,
                            "execution: link '" + spec_.links[e].a + "' -- '" +
                                spec_.links[e].b +
                                "' crosses partitions but has zero latency; conservative "
                                "lookahead needs every cut link to be >= 1ns");
    }
    lookahead = sim::min_cut_latency(edges, assignment);
  } else {
    assignment.assign(spec_.nodes.size(), 0);
  }
  const std::size_t parts = std::max<std::size_t>(sim::partition_count(assignment), 1);

  // Backend auto-select sees each partition's share of the pending-event
  // estimate — a partition runs its own scheduler over roughly 1/parts of
  // the events.
  const std::size_t estimated = estimated_pending_events(spec_, routes);
  const sim::QueueBackend backend = policy.resolve_backend(estimated / parts);

  // make_unique needs a public constructor; the builder is a friend, so
  // construct directly.
  std::unique_ptr<Scenario> scenario{new Scenario(spec_, std::move(routes))};
  const TopologySpec& spec = scenario->spec_;
  scenario->node_partition_ = assignment;
  scenario->lookahead_ = lookahead;
  for (std::size_t p = 0; p < parts; ++p)
    scenario->sims_.push_back(
        std::make_unique<sim::Simulation>(spec.seed + p, backend));
  if (parts > 1) {
    std::vector<sim::Simulation*> sim_ptrs;
    sim_ptrs.reserve(parts);
    for (const auto& s : scenario->sims_) sim_ptrs.push_back(s.get());
    // Resolve the thread count here rather than in the engine: a zero
    // budget must fall through the process-wide defaults (--jobs) before
    // hitting hardware_concurrency, and the sim layer knows neither.
    scenario->engine_ = std::make_unique<sim::PartitionedEngine>(
        std::move(sim_ptrs),
        sim::PartitionedEngine::Options{.lookahead = lookahead,
                                        .threads = policy.resolve_threads(parts),
                                        .deterministic_merge = policy.deterministic_merge});
  }

  const auto sim_of_node = [&](std::size_t n) -> sim::Simulation& {
    return *scenario->sims_[assignment[n]];
  };
  // RED fork stream: the partition-0 master RNG for single-partition
  // builds (historical behavior), a detached same-seed stream otherwise
  // (identical fork sequence — see make_queue).
  sim::Rng detached_master{spec.seed};
  sim::Rng& queue_rng = parts > 1 ? detached_master : scenario->sims_.front()->rng();

  // Nodes: ids are 1-based spec indices.
  for (std::size_t i = 0; i < spec.nodes.size(); ++i) {
    scenario->nodes_.push_back(std::make_unique<net::Node>(
        sim_of_node(i), static_cast<std::uint32_t>(i + 1), spec.nodes[i]));
    scenario->node_index_.emplace(spec.nodes[i], i);
  }

  // Links: one device per endpoint, created in link declaration order so
  // device indices match the RouteTable's adjacency. A link whose
  // endpoints landed in different partitions becomes a CrossPartitionLink
  // staging through the engine; channel ids follow link order, keeping the
  // deterministic merge a pure function of the spec.
  for (const auto& link : spec.links) {
    const std::size_t a = scenario->index_of(link.a);
    const std::size_t b = scenario->index_of(link.b);
    const std::string a_name =
        link.a_dev.name.empty() ? link.a + "->" + link.b : link.a_dev.name;
    const std::string b_name =
        link.b_dev.name.empty() ? link.b + "->" + link.a : link.b_dev.name;
    net::NetDevice& a_dev = scenario->nodes_[a]->add_device(
        link.a_dev.rate, make_queue(link.a_dev, queue_rng), a_name);
    net::NetDevice& b_dev = scenario->nodes_[b]->add_device(
        link.b_dev.rate, make_queue(link.b_dev, queue_rng), b_name);
    const std::uint32_t pa = assignment[a];
    const std::uint32_t pb = assignment[b];
    if (pa == pb) {
      scenario->links_.push_back(
          std::make_unique<net::PointToPointLink>(sim_of_node(a), link.delay));
    } else {
      sim::HandoffChannel& fwd = scenario->engine_->add_channel(pa, pb);
      sim::HandoffChannel& rev = scenario->engine_->add_channel(pb, pa);
      scenario->links_.push_back(std::make_unique<net::CrossPartitionLink>(
          sim_of_node(a), sim_of_node(b), link.delay, fwd, rev));
    }
    scenario->links_.back()->attach(a_dev, b_dev);
    scenario->device_by_edge_.emplace(edge_key(a, b), &a_dev);
    scenario->device_by_edge_.emplace(edge_key(b, a), &b_dev);
  }

  // Forwarding tables from the shortest-path routes.
  for (std::size_t n = 0; n < spec.nodes.size(); ++n) {
    for (std::size_t d = 0; d < spec.nodes.size(); ++d) {
      const std::size_t device = scenario->routes_.next_device[n][d];
      if (n == d || device == RouteTable::kUnreachable) continue;
      scenario->nodes_[n]->set_route(static_cast<std::uint32_t>(d + 1), device);
    }
  }

  // Flows: receiver first, then sender (the order the hand-wired
  // scenarios used), then the optional Web100 agent. Each endpoint object
  // is wired to its own node's partition.
  for (std::size_t f = 0; f < spec.flows.size(); ++f) {
    const auto& flow = spec.flows[f];
    const std::size_t src = scenario->index_of(flow.src);
    const std::size_t dst = scenario->index_of(flow.dst);
    const std::uint32_t flow_id =
        flow.flow_id != 0 ? flow.flow_id : static_cast<std::uint32_t>(f + 1);

    Scenario::FlowRuntime runtime;
    runtime.src_sim = &sim_of_node(src);

    tcp::TcpReceiver::Options rx_opt = flow.receiver;
    rx_opt.flow_id = flow_id;
    rx_opt.peer_node = static_cast<std::uint32_t>(src + 1);
    runtime.receiver = std::make_unique<tcp::TcpReceiver>(sim_of_node(dst),
                                                          *scenario->nodes_[dst], rx_opt);

    tcp::TcpSender::Options tx_opt = flow.sender;
    tx_opt.flow_id = flow_id;
    tx_opt.dst_node = static_cast<std::uint32_t>(dst + 1);
    net::NetDevice& egress =
        scenario->nodes_[src]->device(scenario->routes_.egress(src, dst));
    runtime.sender = std::make_unique<tcp::TcpSender>(
        sim_of_node(src), *scenario->nodes_[src], egress, cc_factory(f), tx_opt);

    if (flow.web100) {
      runtime.agent = std::make_unique<web100::PollingAgent>(
          sim_of_node(src),
          [sender = runtime.sender.get()]() -> const web100::Mib& { return sender->mib(); },
          flow.web100_poll_period);
      runtime.agent->start();
    }

    scenario->flows_.push_back(std::move(runtime));
  }

  // Spec-declared starts, scheduled after every flow is wired so flow
  // construction order never interleaves with start events.
  for (std::size_t f = 0; f < spec.flows.size(); ++f) {
    if (spec.flows[f].start) scenario->start_flow(f, *spec.flows[f].start);
  }

  return scenario;
}

// --- Scenario -------------------------------------------------------------

Scenario::Scenario(TopologySpec spec, RouteTable routes)
    : spec_{std::move(spec)}, routes_{std::move(routes)} {}

std::size_t Scenario::index_of(std::string_view name) const {
  const auto it = node_index_.find(std::string{name});
  if (it == node_index_.end())
    throw std::out_of_range("Scenario: unknown node '" + std::string{name} + "'");
  return it->second;
}

std::uint32_t Scenario::partition_of(std::string_view name) const {
  return node_partition_.at(index_of(name));
}

std::uint64_t Scenario::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& sim : sims_) total += sim->scheduler().events_executed();
  return total;
}

void Scenario::start_flow(std::size_t i, sim::Time at) {
  FlowRuntime& flow = flows_.at(i);
  tcp::TcpSender* sender = flow.sender.get();
  flow.src_sim->at(at, [sender] { sender->set_unlimited(true); });
}

std::vector<double> Scenario::goodputs_mbps(sim::Time t0, sim::Time t1) const {
  std::vector<double> out;
  out.reserve(flows_.size());
  for (const auto& flow : flows_) out.push_back(flow.sender->goodput_mbps(t0, t1));
  return out;
}

net::Node& Scenario::node(std::string_view name) { return *nodes_.at(index_of(name)); }

net::NetDevice& Scenario::device(std::string_view node, std::string_view peer) {
  const auto it = device_by_edge_.find(edge_key(index_of(node), index_of(peer)));
  if (it == device_by_edge_.end())
    throw std::out_of_range("Scenario: no direct link from '" + std::string{node} +
                            "' to '" + std::string{peer} + "'");
  return *it->second;
}

const net::NetDevice& Scenario::device(std::string_view node, std::string_view peer) const {
  return const_cast<Scenario*>(this)->device(node, peer);
}

}  // namespace rss::scenario
