#include "scenario/builder.hpp"

#include <stdexcept>

namespace rss::scenario {

namespace {

constexpr std::uint64_t edge_key(std::size_t a, std::size_t b) {
  return (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(b);
}

[[nodiscard]] std::unique_ptr<net::PacketQueue> make_queue(const DeviceSpec& dev,
                                                           sim::Simulation& sim) {
  if (dev.qdisc == QueueDiscipline::kRed) {
    net::RedQueue::Options red = dev.red;
    red.capacity_packets = dev.ifq_packets;
    return std::make_unique<net::RedQueue>(red, sim.rng().fork());
  }
  return std::make_unique<net::DropTailQueue>(dev.ifq_packets);
}

}  // namespace

// --- ScenarioBuilder ------------------------------------------------------

ScenarioBuilder& ScenarioBuilder::node(std::string name) {
  spec_.nodes.push_back(std::move(name));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::link(LinkSpec link) {
  spec_.links.push_back(std::move(link));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::duplex_link(std::string a, std::string b,
                                              net::DataRate rate, sim::Time delay,
                                              std::size_t ifq_packets) {
  LinkSpec l;
  l.a = std::move(a);
  l.b = std::move(b);
  l.delay = delay;
  l.a_dev.rate = rate;
  l.a_dev.ifq_packets = ifq_packets;
  l.b_dev.rate = rate;
  l.b_dev.ifq_packets = ifq_packets;
  spec_.links.push_back(std::move(l));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::flow(FlowSpec flow) {
  spec_.flows.push_back(std::move(flow));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::seed(std::uint64_t seed) {
  spec_.seed = seed;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::backend(sim::QueueBackend backend) {
  spec_.backend = backend;
  return *this;
}

sim::QueueBackend ScenarioBuilder::auto_backend(const TopologySpec& spec,
                                                const RouteTable& routes) {
  return estimated_pending_events(spec, routes) >= kCalendarQueuePendingEvents
             ? sim::QueueBackend::kCalendarQueue
             : sim::QueueBackend::kBinaryHeap;
}

std::unique_ptr<Scenario> ScenarioBuilder::build(const FlowCcFactory& cc_factory) const {
  if (!cc_factory)
    throw TopologyError(TopologyError::Code::kNullCcFactory,
                        "ScenarioBuilder: null congestion-control factory");
  validate_topology(spec_);
  RouteTable routes = compute_routes(spec_);

  // Routability is a spec property, so reject before wiring anything.
  for (const auto& flow : spec_.flows) {
    const std::size_t src = *node_index(spec_, flow.src);
    const std::size_t dst = *node_index(spec_, flow.dst);
    if (!routes.reachable(src, dst))
      throw TopologyError(TopologyError::Code::kUnroutableFlow,
                          "topology: no path from '" + flow.src + "' to '" + flow.dst + "'");
  }

  const sim::QueueBackend backend = spec_.backend.value_or(auto_backend(spec_, routes));
  // make_unique needs a public constructor; the builder is a friend, so
  // construct directly.
  std::unique_ptr<Scenario> scenario{new Scenario(spec_, std::move(routes), backend)};
  const TopologySpec& spec = scenario->spec_;
  sim::Simulation& sim = scenario->sim_;

  // Nodes: ids are 1-based spec indices.
  for (std::size_t i = 0; i < spec.nodes.size(); ++i) {
    scenario->nodes_.push_back(
        std::make_unique<net::Node>(sim, static_cast<std::uint32_t>(i + 1), spec.nodes[i]));
    scenario->node_index_.emplace(spec.nodes[i], i);
  }

  // Links: one device per endpoint, created in link declaration order so
  // device indices match the RouteTable's adjacency.
  for (const auto& link : spec.links) {
    const std::size_t a = scenario->index_of(link.a);
    const std::size_t b = scenario->index_of(link.b);
    const std::string a_name =
        link.a_dev.name.empty() ? link.a + "->" + link.b : link.a_dev.name;
    const std::string b_name =
        link.b_dev.name.empty() ? link.b + "->" + link.a : link.b_dev.name;
    net::NetDevice& a_dev =
        scenario->nodes_[a]->add_device(link.a_dev.rate, make_queue(link.a_dev, sim), a_name);
    net::NetDevice& b_dev =
        scenario->nodes_[b]->add_device(link.b_dev.rate, make_queue(link.b_dev, sim), b_name);
    scenario->links_.push_back(std::make_unique<net::PointToPointLink>(sim, link.delay));
    scenario->links_.back()->attach(a_dev, b_dev);
    scenario->device_by_edge_.emplace(edge_key(a, b), &a_dev);
    scenario->device_by_edge_.emplace(edge_key(b, a), &b_dev);
  }

  // Forwarding tables from the shortest-path routes.
  for (std::size_t n = 0; n < spec.nodes.size(); ++n) {
    for (std::size_t d = 0; d < spec.nodes.size(); ++d) {
      const std::size_t device = scenario->routes_.next_device[n][d];
      if (n == d || device == RouteTable::kUnreachable) continue;
      scenario->nodes_[n]->set_route(static_cast<std::uint32_t>(d + 1), device);
    }
  }

  // Flows: receiver first, then sender (the order the hand-wired
  // scenarios used), then the optional Web100 agent.
  for (std::size_t f = 0; f < spec.flows.size(); ++f) {
    const auto& flow = spec.flows[f];
    const std::size_t src = scenario->index_of(flow.src);
    const std::size_t dst = scenario->index_of(flow.dst);
    const std::uint32_t flow_id =
        flow.flow_id != 0 ? flow.flow_id : static_cast<std::uint32_t>(f + 1);

    Scenario::FlowRuntime runtime;

    tcp::TcpReceiver::Options rx_opt = flow.receiver;
    rx_opt.flow_id = flow_id;
    rx_opt.peer_node = static_cast<std::uint32_t>(src + 1);
    runtime.receiver =
        std::make_unique<tcp::TcpReceiver>(sim, *scenario->nodes_[dst], rx_opt);

    tcp::TcpSender::Options tx_opt = flow.sender;
    tx_opt.flow_id = flow_id;
    tx_opt.dst_node = static_cast<std::uint32_t>(dst + 1);
    net::NetDevice& egress =
        scenario->nodes_[src]->device(scenario->routes_.egress(src, dst));
    runtime.sender = std::make_unique<tcp::TcpSender>(sim, *scenario->nodes_[src], egress,
                                                      cc_factory(f), tx_opt);

    if (flow.web100) {
      runtime.agent = std::make_unique<web100::PollingAgent>(
          sim,
          [sender = runtime.sender.get()]() -> const web100::Mib& { return sender->mib(); },
          flow.web100_poll_period);
      runtime.agent->start();
    }

    scenario->flows_.push_back(std::move(runtime));
  }

  // Spec-declared starts, scheduled after every flow is wired so flow
  // construction order never interleaves with start events.
  for (std::size_t f = 0; f < spec.flows.size(); ++f) {
    if (spec.flows[f].start) scenario->start_flow(f, *spec.flows[f].start);
  }

  return scenario;
}

// --- Scenario -------------------------------------------------------------

Scenario::Scenario(TopologySpec spec, RouteTable routes, sim::QueueBackend backend)
    : spec_{std::move(spec)}, routes_{std::move(routes)}, sim_{spec_.seed, backend} {}

std::size_t Scenario::index_of(std::string_view name) const {
  const auto it = node_index_.find(std::string{name});
  if (it == node_index_.end())
    throw std::out_of_range("Scenario: unknown node '" + std::string{name} + "'");
  return it->second;
}

void Scenario::start_flow(std::size_t i, sim::Time at) {
  tcp::TcpSender* sender = flows_.at(i).sender.get();
  sim_.at(at, [sender] { sender->set_unlimited(true); });
}

std::vector<double> Scenario::goodputs_mbps(sim::Time t0, sim::Time t1) const {
  std::vector<double> out;
  out.reserve(flows_.size());
  for (const auto& flow : flows_) out.push_back(flow.sender->goodput_mbps(t0, t1));
  return out;
}

net::Node& Scenario::node(std::string_view name) { return *nodes_.at(index_of(name)); }

net::NetDevice& Scenario::device(std::string_view node, std::string_view peer) {
  const auto it = device_by_edge_.find(edge_key(index_of(node), index_of(peer)));
  if (it == device_by_edge_.end())
    throw std::out_of_range("Scenario: no direct link from '" + std::string{node} +
                            "' to '" + std::string{peer} + "'");
  return *it->second;
}

const net::NetDevice& Scenario::device(std::string_view node, std::string_view peer) const {
  return const_cast<Scenario*>(this)->device(node, peer);
}

}  // namespace rss::scenario
