#include "scenario/builder.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

#include "net/cross_link.hpp"

namespace rss::scenario {

namespace {

constexpr std::uint64_t edge_key(std::size_t a, std::size_t b) {
  return (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(b);
}

/// One hop of a flow's shortest-path route: the egress device (node +
/// device index), the neighbor it leads to, and the spec link it rides.
struct RouteHop {
  std::size_t node;
  std::size_t device;
  std::size_t next;
  std::size_t link;
};

/// Walk src -> dst through the forwarding tables. `link_of_edge` maps
/// edge_key(a, b) to the spec link index for every directly linked pair.
[[nodiscard]] std::vector<RouteHop> walk_route(
    const RouteTable& routes, const std::map<std::uint64_t, std::size_t>& link_of_edge,
    std::size_t src, std::size_t dst) {
  std::vector<RouteHop> hops;
  std::size_t n = src;
  while (n != dst) {
    const std::size_t dev = routes.egress(n, dst);
    std::size_t next = RouteTable::kUnreachable;
    for (const auto& [neighbor, device] : routes.adjacency[n]) {
      if (device == dev) {
        next = neighbor;
        break;
      }
    }
    if (next == RouteTable::kUnreachable)
      throw std::logic_error("walk_route: egress device without an adjacency entry");
    hops.push_back({n, dev, next, link_of_edge.at(edge_key(n, next))});
    n = next;
  }
  return hops;
}

/// Line rate of the egress device a hop serializes through.
[[nodiscard]] net::DataRate hop_rate(const TopologySpec& spec, const RouteHop& hop) {
  const LinkSpec& link = spec.links[hop.link];
  return *node_index(spec, link.a) == hop.node ? link.a_dev.rate : link.b_dev.rate;
}

/// `rng` is the stream RED queues fork from, in link-device order. For a
/// single-partition build it is the simulation's master RNG (the historical
/// behavior, byte-for-byte); a partitioned build forks from a dedicated
/// Rng(seed) instead, which yields the *same* fork sequence — the master
/// RNG has had no draws at wiring time — while leaving each partition's own
/// RNG untouched.
[[nodiscard]] std::unique_ptr<net::PacketQueue> make_queue(const DeviceSpec& dev,
                                                           sim::Rng& rng,
                                                           const sim::Simulation& sim) {
  std::unique_ptr<net::PacketQueue> queue;
  if (dev.qdisc == QueueDiscipline::kRed) {
    net::RedQueue::Options red = dev.red;
    red.capacity_packets = dev.ifq_packets;
    queue = std::make_unique<net::RedQueue>(red, rng.fork());
  } else if (dev.qdisc == QueueDiscipline::kCodel) {
    net::CodelQueue::Options codel = dev.codel;
    codel.capacity_packets = dev.ifq_packets;
    queue = std::make_unique<net::CodelQueue>(codel, sim);
  } else {
    queue = std::make_unique<net::DropTailQueue>(dev.ifq_packets);
  }
  queue->set_ecn_step_threshold(dev.ecn_threshold);
  return queue;
}

}  // namespace

// --- ScenarioBuilder ------------------------------------------------------

ScenarioBuilder& ScenarioBuilder::node(std::string name) {
  spec_.nodes.push_back(std::move(name));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::link(LinkSpec link) {
  spec_.links.push_back(std::move(link));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::duplex_link(std::string a, std::string b,
                                              net::DataRate rate, sim::Time delay,
                                              std::size_t ifq_packets) {
  LinkSpec l;
  l.a = std::move(a);
  l.b = std::move(b);
  l.delay = delay;
  l.a_dev.rate = rate;
  l.a_dev.ifq_packets = ifq_packets;
  l.b_dev.rate = rate;
  l.b_dev.ifq_packets = ifq_packets;
  spec_.links.push_back(std::move(l));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::flow(FlowSpec flow) {
  spec_.flows.push_back(std::move(flow));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::seed(std::uint64_t seed) {
  spec_.seed = seed;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::backend(sim::QueueBackend backend) {
  spec_.backend = backend;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::execution(ExecutionPolicy policy) {
  spec_.execution = policy;
  return *this;
}

sim::QueueBackend ScenarioBuilder::auto_backend(const TopologySpec& spec,
                                                const RouteTable& routes) {
  return ExecutionPolicy{}.resolve_backend(estimated_pending_events(spec, routes));
}

std::unique_ptr<Scenario> ScenarioBuilder::build(const FlowCcFactory& cc_factory) const {
  using Code = TopologyError::Code;
  if (!cc_factory)
    throw TopologyError(Code::kNullCcFactory,
                        "ScenarioBuilder: null congestion-control factory");
  validate_topology(spec_);
  RouteTable routes = compute_routes(spec_);

  // Routability is a spec property, so reject before wiring anything.
  for (const auto& flow : spec_.flows) {
    const std::size_t src = *node_index(spec_, flow.src);
    const std::size_t dst = *node_index(spec_, flow.dst);
    if (!routes.reachable(src, dst))
      throw TopologyError(Code::kUnroutableFlow,
                          "topology: no path from '" + flow.src + "' to '" + flow.dst + "'");
  }

  // Fluid pre-pass: walk every flow's route once. Fluid routes are pinned
  // into one partition (their integration must stay local) and their
  // bottleneck contention decides which devices get a FluidQueueCoupling —
  // a device is coupled iff foreground packets cross it too, or the fluid
  // aggregates alone can oversubscribe its line.
  std::map<std::uint64_t, std::size_t> link_of_edge;
  for (std::size_t l = 0; l < spec_.links.size(); ++l) {
    const std::size_t a = *node_index(spec_, spec_.links[l].a);
    const std::size_t b = *node_index(spec_, spec_.links[l].b);
    link_of_edge.emplace(edge_key(a, b), l);
    link_of_edge.emplace(edge_key(b, a), l);
  }
  std::vector<std::vector<RouteHop>> fluid_routes(spec_.flows.size());
  std::vector<net::FluidOptions> fluid_opts(spec_.flows.size());
  std::set<std::uint64_t> packet_devices;     // edge_key(node, device index)
  std::map<std::uint64_t, double> fluid_peak_sum;  // same key -> Σ capped peaks (bps)
  std::set<std::size_t> pinned_links;
  for (std::size_t f = 0; f < spec_.flows.size(); ++f) {
    const auto& flow = spec_.flows[f];
    const std::size_t src = *node_index(spec_, flow.src);
    const std::size_t dst = *node_index(spec_, flow.dst);
    if (flow.model != TrafficModel::kFluid) {
      // Foreground packets contend on the data path and the ACK path.
      for (const RouteHop& hop : walk_route(routes, link_of_edge, src, dst))
        packet_devices.insert(edge_key(hop.node, hop.device));
      for (const RouteHop& hop : walk_route(routes, link_of_edge, dst, src))
        packet_devices.insert(edge_key(hop.node, hop.device));
      continue;
    }
    fluid_routes[f] = walk_route(routes, link_of_edge, src, dst);
    net::FluidOptions opt = flow.fluid;
    net::DataRate min_rate = net::DataRate::bps(0);
    sim::Time one_way = sim::Time::zero();
    for (const RouteHop& hop : fluid_routes[f]) {
      pinned_links.insert(hop.link);
      const net::DataRate rate = hop_rate(spec_, hop);
      if (min_rate.bits_per_second() == 0 || rate < min_rate) min_rate = rate;
      one_way = one_way + spec_.links[hop.link].delay;
    }
    // Cap the peak at the route's narrowest line and derive an unset RTT
    // from the route's propagation delay.
    if (opt.peak_rate.bits_per_second() == 0 || min_rate < opt.peak_rate)
      opt.peak_rate = min_rate;
    if (opt.rtt == sim::Time::zero()) opt.rtt = one_way + one_way;
    if (opt.initial_rate > opt.peak_rate) opt.initial_rate = opt.peak_rate;
    fluid_opts[f] = opt;
    for (const RouteHop& hop : fluid_routes[f])
      fluid_peak_sum[edge_key(hop.node, hop.device)] +=
          static_cast<double>(opt.peak_rate.bits_per_second());
  }

  // Resolve the execution policy; spec.backend is the deprecated alias and
  // loses to an explicitly set execution.backend, and the process-wide
  // defaults (CLI --backend/--partitions) are the lowest-precedence layer.
  ExecutionPolicy policy = spec_.execution;
  if (!policy.backend && spec_.backend) policy.backend = spec_.backend;
  const ExecutionDefaults& process_defaults = execution_defaults();
  if (!policy.backend && process_defaults.backend)
    policy.backend = process_defaults.backend;
  if (policy.partitions == 1 && process_defaults.partitions > 1)
    policy.partitions = process_defaults.partitions;
  if (policy.partitions == 0)
    throw TopologyError(Code::kBadExecution, "execution: partitions must be >= 1");

  // Partition the node graph. Requests beyond the node count are clamped;
  // a disconnected graph can yield more partitions than requested (extra
  // components parallelize for free).
  const std::size_t requested =
      std::min(policy.partitions, std::max<std::size_t>(spec_.nodes.size(), 1));
  std::vector<std::uint32_t> assignment;
  sim::Time lookahead = sim::Time::infinity();
  if (requested > 1) {
    std::vector<sim::PartitionEdge> edges;
    edges.reserve(spec_.links.size());
    for (const auto& link : spec_.links)
      edges.push_back({*node_index(spec_, link.a), *node_index(spec_, link.b), link.delay});
    // Fluid routes are mandatory intra-partition: their links are pinned
    // (united before any other merge), so fluid integration never crosses
    // a HandoffChannel and the lookahead window is untouched by fluid.
    const std::vector<std::size_t> pinned(pinned_links.begin(), pinned_links.end());
    assignment = policy.strategy == PartitionStrategy::kBlock
                     ? sim::partition_blocks(spec_.nodes.size(), requested)
                     : sim::partition_by_latency(spec_.nodes.size(), edges, requested, pinned);
    for (const std::size_t l : pinned_links) {
      if (assignment[edges[l].a] != assignment[edges[l].b])
        throw TopologyError(Code::kFluidRouteCut,
                            "execution: link '" + spec_.links[l].a + "' -- '" +
                                spec_.links[l].b +
                                "' carries a fluid flow but the partitioning splits it; "
                                "fluid routes must stay within one partition (use the "
                                "latency strategy, which pins them)");
    }
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (assignment[edges[e].a] != assignment[edges[e].b] &&
          edges[e].latency < sim::Time::nanoseconds(1))
        throw TopologyError(Code::kZeroLatencyCut,
                            "execution: link '" + spec_.links[e].a + "' -- '" +
                                spec_.links[e].b +
                                "' crosses partitions but has zero latency; conservative "
                                "lookahead needs every cut link to be >= 1ns");
    }
    lookahead = sim::min_cut_latency(edges, assignment);
  } else {
    assignment.assign(spec_.nodes.size(), 0);
  }
  const std::size_t parts = std::max<std::size_t>(sim::partition_count(assignment), 1);

  // Backend auto-select sees each partition's share of the pending-event
  // estimate — a partition runs its own scheduler over roughly 1/parts of
  // the events.
  const std::size_t estimated = estimated_pending_events(spec_, routes);
  const sim::QueueBackend backend = policy.resolve_backend(estimated / parts);

  // make_unique needs a public constructor; the builder is a friend, so
  // construct directly.
  std::unique_ptr<Scenario> scenario{new Scenario(spec_, std::move(routes))};
  const TopologySpec& spec = scenario->spec_;
  scenario->node_partition_ = assignment;
  scenario->lookahead_ = lookahead;
  for (std::size_t p = 0; p < parts; ++p) {
    scenario->sims_.push_back(
        std::make_unique<sim::Simulation>(spec.seed + p, backend));
    // Origins label nodes (spec index + 1) plus the shared stream 0;
    // pre-sizing keeps ranked scheduling allocation-free on the hot path.
    scenario->sims_.back()->scheduler().reserve_origins(spec.nodes.size() + 1);
  }
  if (parts > 1) {
    std::vector<sim::Simulation*> sim_ptrs;
    sim_ptrs.reserve(parts);
    for (const auto& s : scenario->sims_) sim_ptrs.push_back(s.get());
    // Resolve the thread count here rather than in the engine: a zero
    // budget must fall through the process-wide defaults (--jobs) before
    // hitting hardware_concurrency, and the sim layer knows neither.
    scenario->engine_ = std::make_unique<sim::PartitionedEngine>(
        std::move(sim_ptrs),
        sim::PartitionedEngine::Options{.lookahead = lookahead,
                                        .threads = policy.resolve_threads(parts),
                                        .deterministic_merge = policy.deterministic_merge});
  }

  const auto sim_of_node = [&](std::size_t n) -> sim::Simulation& {
    return *scenario->sims_[assignment[n]];
  };
  // RED fork stream: the partition-0 master RNG for single-partition
  // builds (historical behavior), a detached same-seed stream otherwise
  // (identical fork sequence — see make_queue).
  sim::Rng detached_master{spec.seed};
  sim::Rng& queue_rng = parts > 1 ? detached_master : scenario->sims_.front()->rng();

  // Nodes: ids are 1-based spec indices.
  for (std::size_t i = 0; i < spec.nodes.size(); ++i) {
    scenario->nodes_.push_back(std::make_unique<net::Node>(
        sim_of_node(i), static_cast<std::uint32_t>(i + 1), spec.nodes[i]));
    scenario->node_index_.emplace(spec.nodes[i], i);
  }

  // Links: one device per endpoint, created in link declaration order so
  // device indices match the RouteTable's adjacency. A link whose
  // endpoints landed in different partitions becomes a CrossPartitionLink
  // staging through the engine; channel ids follow link order, keeping the
  // deterministic merge a pure function of the spec.
  for (const auto& link : spec.links) {
    const std::size_t a = scenario->index_of(link.a);
    const std::size_t b = scenario->index_of(link.b);
    const std::string a_name =
        link.a_dev.name.empty() ? link.a + "->" + link.b : link.a_dev.name;
    const std::string b_name =
        link.b_dev.name.empty() ? link.b + "->" + link.a : link.b_dev.name;
    net::NetDevice& a_dev = scenario->nodes_[a]->add_device(
        link.a_dev.rate, make_queue(link.a_dev, queue_rng, sim_of_node(a)), a_name);
    net::NetDevice& b_dev = scenario->nodes_[b]->add_device(
        link.b_dev.rate, make_queue(link.b_dev, queue_rng, sim_of_node(b)), b_name);
    // Tag devices with their node's global index so same-timestamp link
    // deliveries order by (node, per-node rank) — intrinsic to the spec,
    // identical whether the run is sequential or partitioned. Tagged
    // unconditionally: the 1-partition run is the parity baseline.
    a_dev.set_event_origin(static_cast<std::uint32_t>(a) + 1);
    b_dev.set_event_origin(static_cast<std::uint32_t>(b) + 1);
    const std::uint32_t pa = assignment[a];
    const std::uint32_t pb = assignment[b];
    if (pa == pb) {
      scenario->links_.push_back(
          std::make_unique<net::PointToPointLink>(sim_of_node(a), link.delay));
    } else {
      sim::HandoffChannel& fwd = scenario->engine_->add_channel(pa, pb);
      sim::HandoffChannel& rev = scenario->engine_->add_channel(pb, pa);
      scenario->links_.push_back(std::make_unique<net::CrossPartitionLink>(
          sim_of_node(a), sim_of_node(b), link.delay, fwd, rev));
    }
    scenario->links_.back()->attach(a_dev, b_dev);
    scenario->device_by_edge_.emplace(edge_key(a, b), &a_dev);
    scenario->device_by_edge_.emplace(edge_key(b, a), &b_dev);
  }

  // Forwarding tables from the shortest-path routes.
  for (std::size_t n = 0; n < spec.nodes.size(); ++n) {
    for (std::size_t d = 0; d < spec.nodes.size(); ++d) {
      const std::size_t device = scenario->routes_.next_device[n][d];
      if (n == d || device == RouteTable::kUnreachable) continue;
      scenario->nodes_[n]->set_route(static_cast<std::uint32_t>(d + 1), device);
    }
  }

  // Flows: receiver first, then sender (the order the hand-wired
  // scenarios used), then the optional Web100 agent. Each endpoint object
  // is wired to its own node's partition.
  // Per-partition fluid integration stride: the finest stride any of the
  // partition's aggregates asked for (one driver ticks them all).
  std::vector<sim::Time> driver_stride(parts, sim::Time::zero());
  std::vector<net::FluidDriver*> driver_of(parts, nullptr);
  std::map<net::NetDevice*, net::FluidQueueCoupling*> coupling_of;
  for (std::size_t f = 0; f < spec.flows.size(); ++f) {
    if (spec.flows[f].model != TrafficModel::kFluid) continue;
    const std::uint32_t p = assignment[scenario->index_of(spec.flows[f].src)];
    const sim::Time stride = fluid_opts[f].stride;
    if (driver_stride[p] == sim::Time::zero() || stride < driver_stride[p])
      driver_stride[p] = stride;
  }

  for (std::size_t f = 0; f < spec.flows.size(); ++f) {
    const auto& flow = spec.flows[f];
    const std::size_t src = scenario->index_of(flow.src);
    const std::size_t dst = scenario->index_of(flow.dst);
    const std::uint32_t flow_id =
        flow.flow_id != 0 ? flow.flow_id : static_cast<std::uint32_t>(f + 1);

    if (flow.model == TrafficModel::kFluid) {
      Scenario::FlowRuntime runtime;
      runtime.src_sim = &sim_of_node(src);
      runtime.fluid_source = std::make_unique<net::FluidSource>(
          fluid_opts[f], flow.src + "~>" + flow.dst);
      runtime.fluid_sink = std::make_unique<net::FluidSink>(*runtime.fluid_source);

      const std::uint32_t p = assignment[src];
      if (driver_of[p] == nullptr) {
        scenario->fluid_drivers_.push_back(
            std::make_unique<net::FluidDriver>(sim_of_node(src), driver_stride[p]));
        driver_of[p] = scenario->fluid_drivers_.back().get();
      }
      driver_of[p]->add_source(runtime.fluid_source.get());

      // Couple only where contention is real: devices foreground packets
      // also cross, or devices the fluid aggregates alone can saturate.
      // Uncoupled hops cost nothing per stride — that sparsity is where
      // the wall-time win comes from.
      for (const RouteHop& hop : fluid_routes[f]) {
        net::NetDevice& dev = scenario->nodes_[hop.node]->device(hop.device);
        const std::uint64_t key = edge_key(hop.node, hop.device);
        const double line_bps = static_cast<double>(dev.rate().bits_per_second());
        const bool shared_with_packets = packet_devices.count(key) != 0;
        const bool oversubscribed = fluid_peak_sum[key] > line_bps;
        if (!shared_with_packets && !oversubscribed) continue;
        net::FluidQueueCoupling*& coupling = coupling_of[&dev];
        if (coupling == nullptr) {
          scenario->fluid_couplings_.push_back(
              std::make_unique<net::FluidQueueCoupling>(dev));
          coupling = scenario->fluid_couplings_.back().get();
          driver_of[p]->add_coupling(coupling);
        }
        coupling->add_source(runtime.fluid_source.get());
      }

      scenario->flows_.push_back(std::move(runtime));
      continue;
    }

    Scenario::FlowRuntime runtime;
    runtime.src_sim = &sim_of_node(src);

    tcp::TcpReceiver::Options rx_opt = flow.receiver;
    rx_opt.flow_id = flow_id;
    rx_opt.peer_node = static_cast<std::uint32_t>(src + 1);
    if (flow.ecn) rx_opt.ecn = true;
    runtime.receiver = std::make_unique<tcp::TcpReceiver>(sim_of_node(dst),
                                                          *scenario->nodes_[dst], rx_opt);

    tcp::TcpSender::Options tx_opt = flow.sender;
    tx_opt.flow_id = flow_id;
    tx_opt.dst_node = static_cast<std::uint32_t>(dst + 1);
    if (flow.ecn) tx_opt.ecn = true;
    net::NetDevice& egress =
        scenario->nodes_[src]->device(scenario->routes_.egress(src, dst));
    runtime.sender = std::make_unique<tcp::TcpSender>(
        sim_of_node(src), *scenario->nodes_[src], egress, cc_factory(f), tx_opt);

    if (flow.web100) {
      runtime.agent = std::make_unique<web100::PollingAgent>(
          sim_of_node(src),
          [sender = runtime.sender.get()]() -> const web100::Mib& { return sender->mib(); },
          flow.web100_poll_period);
      runtime.agent->start();
    }

    scenario->flows_.push_back(std::move(runtime));
  }

  // Arm the fluid drivers once everything is registered: each partition's
  // tick is a single self-rescheduling event regardless of how many
  // aggregates it integrates.
  for (const auto& driver : scenario->fluid_drivers_) driver->start();

  // Spec-declared starts, scheduled after every flow is wired so flow
  // construction order never interleaves with start events.
  for (std::size_t f = 0; f < spec.flows.size(); ++f) {
    if (spec.flows[f].start) scenario->start_flow(f, *spec.flows[f].start);
  }

  return scenario;
}

// --- Scenario -------------------------------------------------------------

Scenario::Scenario(TopologySpec spec, RouteTable routes)
    : spec_{std::move(spec)}, routes_{std::move(routes)} {}

std::size_t Scenario::index_of(std::string_view name) const {
  const auto it = node_index_.find(std::string{name});
  if (it == node_index_.end())
    throw std::out_of_range("Scenario: unknown node '" + std::string{name} + "'");
  return it->second;
}

std::uint32_t Scenario::partition_of(std::string_view name) const {
  return node_partition_.at(index_of(name));
}

std::uint64_t Scenario::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& sim : sims_) total += sim->scheduler().events_executed();
  return total;
}

tcp::TcpSender* Scenario::checked_sender(std::size_t i) {
  FlowRuntime& flow = flows_.at(i);
  if (!flow.sender)
    throw std::logic_error("Scenario: flow " + std::to_string(i) +
                           " is fluid and has no TcpSender; use fluid_source()/fluid_sink()");
  return flow.sender.get();
}

net::FluidSource& Scenario::fluid_source(std::size_t i) {
  FlowRuntime& flow = flows_.at(i);
  if (!flow.fluid_source)
    throw std::logic_error("Scenario: flow " + std::to_string(i) + " is packet-level");
  return *flow.fluid_source;
}

const net::FluidSink& Scenario::fluid_sink(std::size_t i) const {
  const FlowRuntime& flow = flows_.at(i);
  if (!flow.fluid_sink)
    throw std::logic_error("Scenario: flow " + std::to_string(i) + " is packet-level");
  return *flow.fluid_sink;
}

void Scenario::start_flow(std::size_t i, sim::Time at) {
  FlowRuntime& flow = flows_.at(i);
  if (flow.fluid_source) {
    net::FluidSource* source = flow.fluid_source.get();
    flow.src_sim->at(at, [source] { source->start(); });
    return;
  }
  tcp::TcpSender* sender = flow.sender.get();
  flow.src_sim->at(at, [sender] { sender->set_unlimited(true); });
}

std::vector<double> Scenario::goodputs_mbps(sim::Time t0, sim::Time t1) const {
  std::vector<double> out;
  out.reserve(flows_.size());
  for (const auto& flow : flows_) {
    out.push_back(flow.fluid_sink ? flow.fluid_sink->goodput_mbps(t0, t1)
                                  : flow.sender->goodput_mbps(t0, t1));
  }
  return out;
}

net::Node& Scenario::node(std::string_view name) { return *nodes_.at(index_of(name)); }

net::NetDevice& Scenario::device(std::string_view node, std::string_view peer) {
  const auto it = device_by_edge_.find(edge_key(index_of(node), index_of(peer)));
  if (it == device_by_edge_.end())
    throw std::out_of_range("Scenario: no direct link from '" + std::string{node} +
                            "' to '" + std::string{peer} + "'");
  return *it->second;
}

const net::NetDevice& Scenario::device(std::string_view node, std::string_view peer) const {
  return const_cast<Scenario*>(this)->device(node, peer);
}

}  // namespace rss::scenario
