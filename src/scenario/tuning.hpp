#pragma once

#include <optional>

#include "control/ziegler_nichols.hpp"
#include "core/config.hpp"
#include "sim/time.hpp"

namespace rss::scenario {

/// Simulation-in-the-loop Ziegler–Nichols tuning of Restricted Slow-Start
/// (the paper's §3 procedure, automated end-to-end):
///
/// For each candidate proportional gain the harness builds a fresh WanPath,
/// runs RSS with P-only control and symmetric ±1 MSS/ACK authority, and
/// records the IFQ occupancy every `sample_period`. The
/// ZieglerNicholsTuner ramps/bisects the gain until the occupancy limit-
/// cycles around the set point, yielding (Kc, Tc); the paper rule
/// Kp = 0.33·Kc, Ti = 0.5·Tc, Td = 0.33·Tc turns that into deployable
/// gains.
struct TuneOptions {
  core::CanonicalPath path{};
  double setpoint_fraction{0.9};
  /// Controller sampling period during the probe AND for the deployed
  /// gains. The paper's kernel implementation ran at timer granularity
  /// (Linux 2.4: HZ=100 -> 10 ms); the sample-and-hold is what gives the
  /// loop enough delay to oscillate at all — the per-ACK event-driven
  /// controller is unconditionally stable and Z-N cannot find Kc on it
  /// (bench/ext_tuning prints both stories).
  sim::Time controller_period{sim::Time::milliseconds(10)};
  /// Samples before this are discarded: the sub-BDP slow-start ramp has an
  /// intrinsic fill/drain sawtooth that would otherwise be misread as a
  /// closed-loop limit cycle at any gain.
  sim::Time warmup{sim::Time::seconds(5)};
  sim::Time duration{sim::Time::seconds(20)};   ///< per-experiment horizon
  sim::Time sample_period{sim::Time::milliseconds(5)};
  control::ZieglerNicholsTuner::Options tuner{};

  TuneOptions() {
    // ACK-burst jitter of +-2-3 packets around the set point is not an
    // oscillation; require a limit cycle of meaningful amplitude (the
    // detector floors at flat_threshold * mean|PV| ~ 0.08 * 90 ~ 7 pkts).
    tuner.detector.flat_threshold = 0.08;
    tuner.kp_initial = 0.05;
    tuner.kp_max = 1e3;
  }
};

/// Returns nullopt if no gain destabilizes the loop (does not happen on
/// sane paths; guarded for robustness).
[[nodiscard]] std::optional<control::TuningResult> tune_restricted_slow_start(
    const TuneOptions& options);

}  // namespace rss::scenario
