#include "scenario/topology.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

namespace rss::scenario {

namespace {

[[nodiscard]] std::unordered_map<std::string_view, std::size_t> index_nodes(
    const TopologySpec& spec) {
  std::unordered_map<std::string_view, std::size_t> index;
  index.reserve(spec.nodes.size());
  for (std::size_t i = 0; i < spec.nodes.size(); ++i) index.emplace(spec.nodes[i], i);
  return index;
}

}  // namespace

std::optional<std::size_t> node_index(const TopologySpec& spec, std::string_view name) {
  const auto it = std::find(spec.nodes.begin(), spec.nodes.end(), name);
  if (it == spec.nodes.end()) return std::nullopt;
  return static_cast<std::size_t>(it - spec.nodes.begin());
}

void validate_topology(const TopologySpec& spec) {
  using Code = TopologyError::Code;

  std::unordered_set<std::string_view> seen_nodes;
  for (const auto& name : spec.nodes) {
    if (name.empty()) throw TopologyError(Code::kEmptyName, "topology: node with empty name");
    if (!seen_nodes.insert(name).second)
      throw TopologyError(Code::kDuplicateNode, "topology: duplicate node '" + name + "'");
  }

  const auto index = index_nodes(spec);
  // Unordered node-pair -> already-declared, for duplicate-edge detection.
  std::unordered_set<std::uint64_t> seen_edges;
  for (const auto& link : spec.links) {
    const auto a = index.find(link.a);
    const auto b = index.find(link.b);
    if (a == index.end())
      throw TopologyError(Code::kUnknownEndpoint,
                          "topology: link endpoint '" + link.a + "' is not a declared node");
    if (b == index.end())
      throw TopologyError(Code::kUnknownEndpoint,
                          "topology: link endpoint '" + link.b + "' is not a declared node");
    if (a->second == b->second)
      throw TopologyError(Code::kSelfLoop, "topology: self-loop link at '" + link.a + "'");
    const auto lo = std::min(a->second, b->second);
    const auto hi = std::max(a->second, b->second);
    if (!seen_edges.insert((static_cast<std::uint64_t>(lo) << 32) | hi).second)
      throw TopologyError(Code::kDuplicateLink, "topology: duplicate link between '" + link.a +
                                                    "' and '" + link.b + "'");
  }

  // Per-endpoint flow-id uniqueness: demux happens at the endpoint nodes,
  // so two flows may share an id only when they share no endpoint.
  std::unordered_map<std::size_t, std::unordered_set<std::uint32_t>> ids_at_node;
  for (std::size_t f = 0; f < spec.flows.size(); ++f) {
    const auto& flow = spec.flows[f];
    const auto src = index.find(flow.src);
    const auto dst = index.find(flow.dst);
    if (src == index.end())
      throw TopologyError(Code::kUnknownEndpoint,
                          "topology: flow source '" + flow.src + "' is not a declared node");
    if (dst == index.end())
      throw TopologyError(Code::kUnknownEndpoint,
                          "topology: flow destination '" + flow.dst + "' is not a declared node");
    if (src->second == dst->second)
      throw TopologyError(Code::kSelfLoop,
                          "topology: flow from '" + flow.src + "' to itself");
    const std::uint32_t id =
        flow.flow_id != 0 ? flow.flow_id : static_cast<std::uint32_t>(f + 1);
    for (const auto endpoint : {src->second, dst->second}) {
      if (!ids_at_node[endpoint].insert(id).second)
        throw TopologyError(Code::kDuplicateFlowId,
                            "topology: flow id " + std::to_string(id) +
                                " used twice at node '" + spec.nodes[endpoint] + "'");
    }
  }
}

RouteTable compute_routes(const TopologySpec& spec) {
  const auto index = index_nodes(spec);
  const std::size_t n = spec.nodes.size();

  RouteTable table;
  table.adjacency.resize(n);
  // Device indices follow link declaration order per node — the same order
  // ScenarioBuilder creates NetDevices in.
  for (const auto& link : spec.links) {
    const std::size_t a = index.at(link.a);
    const std::size_t b = index.at(link.b);
    table.adjacency[a].emplace_back(b, table.adjacency[a].size());
    table.adjacency[b].emplace_back(a, table.adjacency[b].size());
  }

  table.next_device.assign(n, std::vector<std::size_t>(n, RouteTable::kUnreachable));
  // BFS per source. Neighbors are visited in link declaration order, so
  // among equal-hop paths the one through the earliest-declared link wins.
  std::vector<std::size_t> parent_device(n);  // device on `src` the path to v starts with
  std::vector<bool> visited(n);
  for (std::size_t src = 0; src < n; ++src) {
    std::fill(visited.begin(), visited.end(), false);
    visited[src] = true;
    std::deque<std::size_t> frontier;
    for (const auto& [neighbor, device] : table.adjacency[src]) {
      if (visited[neighbor]) continue;  // parallel-link guard (validation rejects anyway)
      visited[neighbor] = true;
      parent_device[neighbor] = device;
      table.next_device[src][neighbor] = device;
      frontier.push_back(neighbor);
    }
    while (!frontier.empty()) {
      const std::size_t v = frontier.front();
      frontier.pop_front();
      for (const auto& [neighbor, device] : table.adjacency[v]) {
        (void)device;
        if (visited[neighbor]) continue;
        visited[neighbor] = true;
        parent_device[neighbor] = parent_device[v];
        table.next_device[src][neighbor] = parent_device[v];
        frontier.push_back(neighbor);
      }
    }
  }
  return table;
}

std::size_t RouteTable::hops(std::size_t from, std::size_t to) const {
  if (from == to) return 0;
  std::size_t count = 0;
  std::size_t at = from;
  while (at != to) {
    const std::size_t device = egress(at, to);
    if (device == kUnreachable) return kUnreachable;
    at = adjacency[at][device].first;
    ++count;
    if (count > adjacency.size()) return kUnreachable;  // defensive: no routing loops
  }
  return count;
}

std::size_t estimated_pending_events(const TopologySpec& spec, const RouteTable& routes) {
  const auto index = index_nodes(spec);
  std::size_t pending = 0;
  for (const auto& flow : spec.flows) {
    // A fluid flow contributes one driver tick per partition regardless of
    // aggregate count, not per-flow timers/trains — negligible next to the
    // packet flows this estimate sizes the backend for.
    if (flow.model == TrafficModel::kFluid) continue;
    const std::size_t src = index.at(flow.src);
    const std::size_t dst = index.at(flow.dst);
    const std::size_t hops = routes.hops(src, dst);
    pending += 2 + (hops == RouteTable::kUnreachable ? 0 : hops);
  }
  return pending;
}

}  // namespace rss::scenario
