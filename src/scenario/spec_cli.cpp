#include "scenario/spec_cli.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "scenario/builder.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/dumbbell.hpp"
#include "scenario/presets.hpp"
#include "scenario/sweep.hpp"
#include "scenario/wan_path.hpp"
#include "web100/mib.hpp"

namespace rss::scenario::spec {

FlowCcFactory make_flow_cc_factory(const ScenarioSpec& spec) {
  auto factories = std::make_shared<std::vector<CcFactory>>();
  factories->reserve(spec.topology.flows.size());
  for (std::size_t i = 0; i < spec.topology.flows.size(); ++i) {
    const std::string name = i < spec.flow_cc.size() ? spec.flow_cc[i] : "reno";
    factories->push_back(factory_by_name(name));
  }
  return [factories](std::size_t flow) { return factories->at(flow)(); };
}

std::unique_ptr<Scenario> build_scenario(const ScenarioSpec& spec) {
  check_scenario_spec(spec);
  auto scenario = ScenarioBuilder{spec.topology}.build(make_flow_cc_factory(spec));
  for (std::size_t i = 0; i < spec.topology.flows.size(); ++i) {
    if (!spec.topology.flows[i].start) scenario->start_flow(i, sim::Time::zero());
  }
  return scenario;
}

// --- run engine -----------------------------------------------------------

namespace {

struct FlowCounters {
  std::uint64_t bytes_acked{0};
  std::uint64_t send_stalls{0};
  std::uint64_t timeouts{0};
  std::uint64_t pkts_retrans{0};
};

struct FlowResult {
  double goodput_mbps{0};
  std::uint64_t send_stalls{0};
  std::uint64_t timeouts{0};
  std::uint64_t pkts_retrans{0};
};

[[nodiscard]] FlowCounters counters_of(const tcp::TcpSender& sender) {
  const web100::Mib& mib = sender.mib();
  return {mib.ThruBytesAcked, mib.SendStall, mib.Timeouts, mib.PktsRetrans};
}

[[nodiscard]] std::vector<FlowResult> run_point(const ScenarioSpec& spec) {
  auto scenario = build_scenario(spec);

  // Measurement is windowed: TcpSender::goodput_mbps averages the whole
  // transfer, so a nonzero measure_start needs counters snapshotted *at*
  // measure_start (mid-run, via a scheduled event) and deltas taken
  // against the end state.
  const std::size_t flow_count = spec.topology.flows.size();
  std::vector<FlowCounters> at_start(flow_count);
  // Fluid aggregates have no MIB; their window delta is delivered bytes.
  std::vector<double> fluid_at_start(flow_count, 0.0);
  if (!spec.run.measure_start.is_zero()) {
    scenario->simulation().at(spec.run.measure_start, [&] {
      for (std::size_t i = 0; i < flow_count; ++i) {
        if (scenario->is_fluid(i)) {
          fluid_at_start[i] = scenario->fluid_sink(i).delivered_bytes();
        } else {
          at_start[i] = counters_of(scenario->sender(i));
        }
      }
    });
  }
  scenario->run_until(spec.run.duration);

  const double window_s = (spec.run.duration - spec.run.measure_start).to_seconds();
  std::vector<FlowResult> flows;
  flows.reserve(flow_count);
  for (std::size_t i = 0; i < flow_count; ++i) {
    if (scenario->is_fluid(i)) {
      FlowResult r;
      const double delivered = scenario->fluid_sink(i).delivered_bytes() - fluid_at_start[i];
      r.goodput_mbps = window_s > 0 ? delivered * 8.0 / window_s / 1e6 : 0.0;
      flows.push_back(r);
      continue;
    }
    const FlowCounters end = counters_of(scenario->sender(i));
    FlowResult r;
    r.goodput_mbps = window_s > 0
                         ? static_cast<double>(end.bytes_acked - at_start[i].bytes_acked) *
                               8.0 / window_s / 1e6
                         : 0.0;
    r.send_stalls = end.send_stalls - at_start[i].send_stalls;
    r.timeouts = end.timeouts - at_start[i].timeouts;
    r.pkts_retrans = end.pkts_retrans - at_start[i].pkts_retrans;
    flows.push_back(r);
  }
  return flows;
}

}  // namespace

metrics::Table run_spec_document(const JsonValue& document, std::size_t max_threads) {
  ExecFlags exec;
  exec.jobs = max_threads;
  return run_spec_document(document, exec);
}

metrics::Table run_spec_document(const JsonValue& document, const ExecFlags& exec) {
  std::vector<SweepPoint> points = expand_scenario_spec(document);

  std::vector<std::string> columns{"point"};
  for (const auto& [field, value] : points.front().assignment) columns.push_back(field);
  for (const char* c : {"flow", "src", "dst", "cc", "goodput_mbps", "send_stalls",
                        "timeouts", "pkts_retrans"})
    columns.emplace_back(c);

  // One thread budget for the whole run: sweep workers come off it first,
  // then each partitioned point that doesn't pin its own thread count gets
  // an equal share of what remains — nested parallelism (sweep x engine)
  // never oversubscribes.
  for (auto& point : points) exec.apply(point.spec.topology.execution);
  std::size_t budget = exec.jobs;
  if (budget == 0) budget = execution_defaults().thread_budget;
  if (budget == 0) budget = ExecutionPolicy::hardware_threads();
  const std::size_t workers =
      std::clamp<std::size_t>(budget, 1, std::max<std::size_t>(points.size(), 1));
  for (auto& point : points) {
    ExecutionPolicy& policy = point.spec.topology.execution;
    if (policy.partitioned() && policy.threads == 0)
      policy.threads = std::max<std::size_t>(1, budget / workers);
  }

  std::vector<std::vector<FlowResult>> results(points.size());
  parallel_sweep(
      points.size(), [&](std::size_t p) { results[p] = run_point(points[p].spec); },
      workers);

  metrics::Table table{columns};
  for (std::size_t p = 0; p < points.size(); ++p) {
    const ScenarioSpec& spec = points[p].spec;
    for (std::size_t f = 0; f < results[p].size(); ++f) {
      std::vector<metrics::Cell> row;
      row.reserve(columns.size());
      row.emplace_back(static_cast<unsigned long long>(p));
      for (const auto& [field, value] : points[p].assignment) row.emplace_back(value);
      row.emplace_back(static_cast<unsigned long long>(f));
      row.emplace_back(spec.topology.flows[f].src);
      row.emplace_back(spec.topology.flows[f].dst);
      row.emplace_back(f < spec.flow_cc.size() ? spec.flow_cc[f] : "reno");
      const FlowResult& r = results[p][f];
      row.emplace_back(r.goodput_mbps);
      row.emplace_back(static_cast<unsigned long long>(r.send_stalls));
      row.emplace_back(static_cast<unsigned long long>(r.timeouts));
      row.emplace_back(static_cast<unsigned long long>(r.pkts_retrans));
      table.add_row(std::move(row));
    }
  }
  return table;
}

metrics::Table run_spec_text(std::string_view json_text, std::size_t max_threads) {
  return run_spec_document(json_parse(json_text), max_threads);
}

metrics::Table run_spec_file(const std::string& path, std::size_t max_threads) {
  return run_spec_text(read_spec_file(path), max_threads);
}

metrics::Table run_spec_text(std::string_view json_text, const ExecFlags& exec) {
  return run_spec_document(json_parse(json_text), exec);
}

metrics::Table run_spec_file(const std::string& path, const ExecFlags& exec) {
  return run_spec_text(read_spec_file(path), exec);
}

// --- presets as specs -----------------------------------------------------

std::vector<std::string> preset_names() {
  return {"wanpath", "dumbbell", "parkinglot", "chain", "scale", "scale_fluid"};
}

ScenarioSpec preset_spec(const std::string& name) {
  ScenarioSpec spec;
  spec.name = name;
  if (name == "wanpath") {
    spec.topology = WanPath::make_spec(WanPath::Config{});
  } else if (name == "dumbbell") {
    spec.topology = Dumbbell::make_spec(Dumbbell::Config{});
  } else if (name == "parkinglot") {
    spec.topology = ParkingLot::make_spec(ParkingLot::Config{});
  } else if (name == "chain") {
    spec.topology = MultiBottleneckChain::make_spec(MultiBottleneckChain::Config{});
  } else if (name == "scale") {
    // The reduced bench configuration: the full ScaleMesh default is a
    // 100k-flow workload, far too heavy for an emittable/round-trippable
    // preset. Partitioned by default — the round-trip fingerprint therefore
    // also exercises build-and-run through the partitioned engine.
    ScaleMesh::Config cfg;
    cfg.segments = 4;
    cfg.flows_per_segment = 8;
    cfg.cross_flows_per_segment = 2;
    cfg.execution.partitions = 4;
    spec.topology = ScaleMesh::make_spec(cfg);
  } else if (name == "scale_fluid") {
    // The hybrid configuration of the scale preset: segment-local flows are
    // fluid aggregates (trunk cross traffic stays packet), still across 4
    // partitions. Round-tripping it pins the fluid flow-spec serialization,
    // and running it under --jobs exercises partition-local fluid ticks on
    // the threaded engine.
    ScaleMesh::Config cfg;
    cfg.segments = 4;
    cfg.flows_per_segment = 8;
    cfg.cross_flows_per_segment = 2;
    cfg.fluid_local = true;
    cfg.execution.partitions = 4;
    spec.topology = ScaleMesh::make_spec(cfg);
  } else {
    throw std::invalid_argument(
        "unknown preset: " + name +
        " (known: wanpath, dumbbell, parkinglot, chain, scale, scale_fluid)");
  }
  spec.flow_cc.assign(spec.topology.flows.size(), "reno");
  return spec;
}

// --- CLI ------------------------------------------------------------------

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <command> [options]\n"
               "\n"
               "commands:\n"
               "  --run <spec.json>        expand the spec's sweep, build and run every\n"
               "                           point, write the result table as CSV\n"
               "  --validate <file...>     parse + topology-check spec files (and every\n"
               "                           sweep point); exit 0 iff all are valid\n"
               "  --emit-preset <name>     dump a C++ topology preset as a spec file\n"
               "                           (wanpath, dumbbell, parkinglot, chain)\n"
               "  --list-presets           list the emittable presets\n"
               "  --roundtrip              self-check: every preset emits, re-parses and\n"
               "                           re-serializes byte-identically, and the\n"
               "                           re-parsed spec rebuilds an identical scenario\n"
               "\n"
               "options:\n"
               "  --out <path>             write CSV/spec output here (default: stdout)\n"
               "%s",
               argv0, ExecFlags::help());
  return 2;
}

[[nodiscard]] int write_output(const std::string& out_path, const std::string& content) {
  if (out_path.empty()) {
    std::cout << content;
    return 0;
  }
  std::ofstream out{out_path};
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << content;
  return 0;
}

int cmd_run(const std::string& path, const std::string& out_path, const ExecFlags& exec) {
  const metrics::Table table = run_spec_file(path, exec);
  const int rc = write_output(out_path, table.to_csv());
  if (rc == 0 && !out_path.empty())
    std::printf("wrote %s (%zu rows)\n", out_path.c_str(), table.row_count());
  return rc;
}

int cmd_validate(const std::vector<std::string>& files) {
  if (files.empty()) {
    std::fprintf(stderr, "--validate needs at least one spec file\n");
    return 2;
  }
  std::size_t failures = 0;
  for (const auto& path : files) {
    try {
      const std::vector<SweepPoint> points = expand_scenario_spec(read_spec_file(path));
      for (const auto& point : points) check_scenario_spec(point.spec);
      const ScenarioSpec& first = points.front().spec;
      std::printf("%-40s OK (%zu point%s, %zu nodes, %zu links, %zu flows)\n", path.c_str(),
                  points.size(), points.size() == 1 ? "" : "s", first.topology.nodes.size(),
                  first.topology.links.size(), first.topology.flows.size());
    } catch (const std::exception& ex) {
      std::printf("%-40s FAIL\n    %s\n", path.c_str(), ex.what());
      ++failures;
    }
  }
  if (failures) std::printf("%zu/%zu spec files failed validation.\n", failures, files.size());
  return failures ? 1 : 0;
}

int cmd_emit_preset(const std::string& name, const std::string& out_path) {
  return write_output(out_path, serialize_scenario_spec(preset_spec(name)));
}

int cmd_list_presets() {
  for (const auto& name : preset_names()) std::printf("%s\n", name.c_str());
  return 0;
}

/// Everything observable a short run produces, for exact comparison.
[[nodiscard]] std::vector<std::uint64_t> fingerprint(const ScenarioSpec& spec) {
  auto scenario = build_scenario(spec);
  scenario->run_until(sim::Time::seconds(2));
  std::vector<std::uint64_t> out;
  for (std::size_t i = 0; i < spec.topology.flows.size(); ++i) {
    if (scenario->is_fluid(i)) {
      // Fluid flows have no MIB; the delivered-byte ledger (exact in
      // double for these magnitudes) plays the same role.
      out.push_back(static_cast<std::uint64_t>(scenario->fluid_sink(i).delivered_bytes()));
      out.push_back(0);
      out.push_back(0);
      out.push_back(0);
      continue;
    }
    const web100::Mib& mib = scenario->sender(i).mib();
    out.push_back(mib.ThruBytesAcked);
    out.push_back(mib.PktsOut);
    out.push_back(mib.PktsRetrans);
    out.push_back(mib.SendStall);
  }
  return out;
}

int cmd_roundtrip() {
  std::size_t failures = 0;
  for (const auto& name : preset_names()) {
    const ScenarioSpec original = preset_spec(name);
    const std::string emitted = serialize_scenario_spec(original);
    ScenarioSpec reparsed;
    try {
      reparsed = parse_scenario_spec(emitted);
    } catch (const std::exception& ex) {
      std::printf("%-12s FAIL (emitted spec does not re-parse: %s)\n", name.c_str(), ex.what());
      ++failures;
      continue;
    }
    const std::string reemitted = serialize_scenario_spec(reparsed);
    if (reemitted != emitted) {
      std::printf("%-12s FAIL (serialize∘parse is not byte-stable)\n", name.c_str());
      ++failures;
      continue;
    }
    const std::vector<std::uint64_t> a = fingerprint(original);
    const std::vector<std::uint64_t> b = fingerprint(reparsed);
    if (a != b) {
      std::printf("%-12s FAIL (re-parsed spec builds a different scenario)\n", name.c_str());
      ++failures;
      continue;
    }
    std::printf("%-12s PASS (%zu bytes, %zu flows byte-identical after 2s)\n", name.c_str(),
                emitted.size(), original.topology.flows.size());
  }
  if (failures) {
    std::printf("%zu/%zu presets failed the spec round-trip.\n", failures,
                preset_names().size());
  } else {
    std::printf("all %zu presets round-trip byte-identically.\n", preset_names().size());
  }
  return failures ? 1 : 0;
}

}  // namespace

int scenario_main(int argc, char** argv) {
  enum class Command { kNone, kRun, kValidate, kEmitPreset, kListPresets, kRoundtrip };
  Command cmd = Command::kNone;
  std::string out_path;
  std::string run_path;
  std::string preset;
  ExecFlags exec;
  std::vector<std::string> files;

  for (int i = 1; i < argc; ++i) {
    switch (exec.parse(argc, argv, i)) {
      case ExecFlags::Parse::kConsumed:
        continue;
      case ExecFlags::Parse::kError:
        return 2;
      case ExecFlags::Parse::kNotMine:
        break;
    }
    const std::string_view arg = argv[i];
    if (arg == "--run") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--run needs a spec file argument\n");
        return 2;
      }
      cmd = Command::kRun;
      run_path = argv[++i];
    } else if (arg == "--validate") {
      cmd = Command::kValidate;
    } else if (arg == "--emit-preset") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--emit-preset needs a preset name\n");
        return 2;
      }
      cmd = Command::kEmitPreset;
      preset = argv[++i];
    } else if (arg == "--list-presets") {
      cmd = Command::kListPresets;
    } else if (arg == "--roundtrip") {
      cmd = Command::kRoundtrip;
    } else if (arg == "--out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "--out needs a path argument\n");
        return 2;
      }
      out_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg.front() == '-') {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return usage(argv[0]);
    } else {
      files.emplace_back(arg);
    }
  }

  try {
    switch (cmd) {
      case Command::kRun:
        return cmd_run(run_path, out_path, exec);
      case Command::kValidate:
        return cmd_validate(files);
      case Command::kEmitPreset:
        return cmd_emit_preset(preset, out_path);
      case Command::kListPresets:
        return cmd_list_presets();
      case Command::kRoundtrip:
        return cmd_roundtrip();
      case Command::kNone:
        return usage(argv[0]);
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 2;
  }
  return 2;
}

}  // namespace rss::scenario::spec
