#pragma once

#include <cstddef>

#include <optional>

#include "sim/scheduler.hpp"

namespace rss::scenario {

/// How ScenarioBuilder assigns topology nodes to partitions.
enum class PartitionStrategy {
  kAuto,   ///< latency-guided agglomeration (sim::partition_by_latency)
  kBlock,  ///< contiguous blocks of spec node order (sim::partition_blocks)
};

/// The single execution-configuration object for a scenario: queue backend,
/// partitioning, and thread budget in one place. Before this existed the
/// knobs were scattered — WanPath/Dumbbell carried their own
/// Config::backend, the builder hid the auto-select constant, and
/// parallel_sweep guessed its own worker count. Those surfaces remain as
/// documented deprecated aliases that forward here.
///
/// Defaults reproduce the historical behavior exactly: one partition,
/// auto-selected backend, hardware thread budget.
struct ExecutionPolicy {
  /// Event-queue backend for every partition's scheduler; unset =
  /// auto-select from the estimated pending-event density (see
  /// resolve_backend).
  std::optional<sim::QueueBackend> backend{};
  /// Number of topology partitions to run in parallel; 1 = the classic
  /// single-scheduler run. Requests beyond the node count are clamped.
  std::size_t partitions{1};
  PartitionStrategy strategy{PartitionStrategy::kAuto};
  /// Worker-thread budget: for a partitioned run, threads driving
  /// partitions; for parallel_sweep, concurrent sweep points. 0 = one per
  /// hardware thread (with the hardware_concurrency()==0 report guarded).
  std::size_t threads{0};
  /// Sort cross-partition handoffs into (deliver_at, channel, seq) order
  /// before scheduling, making partitioned runs a pure function of the
  /// spec. Leave on; off exists only to measure the sort's cost.
  bool deterministic_merge{true};

  /// Estimated pending-event count at which the auto-select picks the
  /// calendar queue over the binary heap. Derived from the measured
  /// crossover on bench_micro_substrate (README "Choosing a QueueBackend"):
  /// a 32-flow dumbbell — 32 flows x (2 timers + 3 links) = 160 pending
  /// events — is where the calendar starts winning.
  static constexpr std::size_t kCalendarQueuePendingEvents = 160;

  friend bool operator==(const ExecutionPolicy&, const ExecutionPolicy&) = default;

  [[nodiscard]] bool partitioned() const { return partitions > 1; }
  [[nodiscard]] bool is_default() const { return *this == ExecutionPolicy{}; }

  /// Backend for one partition, given that partition's share of the
  /// spec's estimated pending events.
  [[nodiscard]] sim::QueueBackend resolve_backend(std::size_t estimated_pending) const {
    if (backend) return *backend;
    return estimated_pending >= kCalendarQueuePendingEvents
               ? sim::QueueBackend::kCalendarQueue
               : sim::QueueBackend::kBinaryHeap;
  }

  /// std::thread::hardware_concurrency(), with the standard-permitted
  /// 0 = "unknown" report mapped to 1.
  [[nodiscard]] static std::size_t hardware_threads();

  /// Worker count for `work_items` independent work items under this
  /// policy's thread budget: min(budget, work_items), never 0. A zero
  /// budget falls back to the process-wide default (execution_defaults()),
  /// then to hardware_threads().
  [[nodiscard]] std::size_t resolve_threads(std::size_t work_items) const;
};

/// Process-wide execution defaults — the lowest-precedence layer of policy
/// resolution (explicit ExecutionPolicy > deprecated Config/spec backend >
/// these > built-in auto). The CLI drivers (rss_scenario, rss_artifacts)
/// install --jobs / --backend / --partitions here, which is how both
/// binaries share one flag surface and every nested parallel construct
/// (sweep workers x partition engine threads) draws on a single thread
/// budget. Not synchronized: install before any workers are spawned.
struct ExecutionDefaults {
  /// Total thread budget for the process; 0 = one per hardware thread.
  std::size_t thread_budget{0};
  /// Queue backend for scenarios that don't pin one (pop order is
  /// backend-independent, so this is a pure speed knob).
  std::optional<sim::QueueBackend> backend{};
  /// Partition count for scenarios that leave partitions at the default;
  /// 0 = no override.
  std::size_t partitions{0};
};

/// The mutable process-wide defaults instance.
[[nodiscard]] ExecutionDefaults& execution_defaults();

}  // namespace rss::scenario
