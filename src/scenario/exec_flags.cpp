#include "scenario/exec_flags.hpp"

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string_view>

namespace rss::scenario {

namespace {

/// "binary_heap"/"calendar_queue"/"auto" -> backend (auto = nullopt);
/// std::nullopt wrapped in outer optional absence signals an unknown name.
[[nodiscard]] bool lookup_backend(std::string_view name,
                                  std::optional<sim::QueueBackend>& out) {
  if (name == "binary_heap") {
    out = sim::QueueBackend::kBinaryHeap;
    return true;
  }
  if (name == "calendar_queue") {
    out = sim::QueueBackend::kCalendarQueue;
    return true;
  }
  if (name == "auto") {
    out = std::nullopt;
    return true;
  }
  return false;
}

[[nodiscard]] bool parse_count(const char* flag, int argc, char** argv, int& i,
                               std::size_t& out) {
  if (i + 1 >= argc) {
    std::fprintf(stderr, "%s needs a count argument\n", flag);
    return false;
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(argv[++i], &end, 10);
  if (end == argv[i] || *end != '\0') {
    std::fprintf(stderr, "%s: '%s' is not a count\n", flag, argv[i]);
    return false;
  }
  out = static_cast<std::size_t>(v);
  return true;
}

}  // namespace

ExecFlags::Parse ExecFlags::parse(int argc, char** argv, int& i) {
  const std::string_view arg = argv[i];
  if (arg == "--jobs" || arg == "--threads")
    return parse_count("--jobs", argc, argv, i, jobs) ? Parse::kConsumed : Parse::kError;
  if (arg == "--partitions")
    return parse_count("--partitions", argc, argv, i, partitions) ? Parse::kConsumed
                                                                  : Parse::kError;
  if (arg == "--backend") {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "--backend needs a name argument\n");
      return Parse::kError;
    }
    backend = argv[++i];
    std::optional<sim::QueueBackend> ignored;
    if (!lookup_backend(backend, ignored)) {
      std::fprintf(stderr,
                   "--backend: unknown backend '%s' (expected binary_heap, "
                   "calendar_queue, or auto)\n",
                   backend.c_str());
      return Parse::kError;
    }
    return Parse::kConsumed;
  }
  return Parse::kNotMine;
}

const char* ExecFlags::help() {
  return "  --jobs <n>               total thread budget shared by sweep points and\n"
         "                           partition engines (default: all cores)\n"
         "  --backend <name>         event-queue backend: binary_heap, calendar_queue,\n"
         "                           or auto (a speed knob; results are identical)\n"
         "  --partitions <n>         run each scenario across n partitions\n";
}

bool ExecFlags::install() const {
  ExecutionDefaults& defaults = execution_defaults();
  if (!backend.empty() && !lookup_backend(backend, defaults.backend)) {
    std::fprintf(stderr, "unknown backend: %s\n", backend.c_str());
    return false;
  }
  if (jobs != 0) defaults.thread_budget = jobs;
  if (partitions != 0) defaults.partitions = partitions;
  return true;
}

void ExecFlags::apply(ExecutionPolicy& policy) const {
  if (!backend.empty()) {
    std::optional<sim::QueueBackend> parsed;
    if (lookup_backend(backend, parsed)) policy.backend = parsed;
  }
  if (partitions != 0) policy.partitions = partitions;
}

}  // namespace rss::scenario
