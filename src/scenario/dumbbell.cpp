#include "scenario/dumbbell.hpp"

#include <stdexcept>
#include <string>

namespace rss::scenario {

TopologySpec Dumbbell::make_spec(const Config& config) {
  TopologySpec spec;
  spec.seed = config.seed;
  spec.backend = config.backend;
  spec.execution = config.execution;

  spec.nodes = {"routerL", "routerR"};
  for (std::size_t i = 0; i < config.flows; ++i) {
    spec.nodes.push_back("sender" + std::to_string(i));
    spec.nodes.push_back("receiver" + std::to_string(i));
  }

  // Shared bottleneck L <-> R. The router queue is where network
  // congestion happens in this topology.
  LinkSpec bottleneck;
  bottleneck.a = "routerL";
  bottleneck.b = "routerR";
  bottleneck.delay = config.bottleneck_delay;
  bottleneck.a_dev = {.rate = config.bottleneck_rate,
                      .ifq_packets = config.router_queue_packets,
                      .name = "routerL/bottleneck"};
  bottleneck.b_dev = {.rate = config.bottleneck_rate,
                      .ifq_packets = config.router_queue_packets,
                      .name = "routerR/bottleneck"};
  spec.links.push_back(std::move(bottleneck));

  for (std::size_t i = 0; i < config.flows; ++i) {
    // Sender access: host NIC (finite IFQ: local stalls possible) <-> router L.
    LinkSpec access;
    access.a = "sender" + std::to_string(i);
    access.b = "routerL";
    access.delay = config.access_delay;
    access.a_dev = {config.access_rate, config.sender_ifq_packets};
    access.b_dev = {config.access_rate, 1000};
    spec.links.push_back(std::move(access));

    // Receiver access: router R <-> receiver NIC.
    LinkSpec egress;
    egress.a = "routerR";
    egress.b = "receiver" + std::to_string(i);
    egress.delay = config.access_delay;
    egress.a_dev = {config.access_rate, 1000};
    egress.b_dev = {config.access_rate, 1000};
    spec.links.push_back(std::move(egress));

    FlowSpec flow;
    flow.src = "sender" + std::to_string(i);
    flow.dst = "receiver" + std::to_string(i);
    flow.sender = config.sender;
    flow.sender.mss = config.mss;
    flow.receiver = config.receiver;
    spec.flows.push_back(std::move(flow));
  }
  return spec;
}

Dumbbell::Dumbbell(Config config, const PerFlowCcFactory& cc_factory) : cfg_{config} {
  if (cfg_.flows == 0) throw std::invalid_argument("Dumbbell: need at least one flow");
  if (!cc_factory) throw std::invalid_argument("Dumbbell: null congestion-control factory");
  scenario_ = ScenarioBuilder{make_spec(cfg_)}.build(cc_factory);
}

}  // namespace rss::scenario
