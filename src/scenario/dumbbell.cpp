#include "scenario/dumbbell.hpp"

#include <stdexcept>
#include <string>

#include "net/queue.hpp"

namespace rss::scenario {

namespace {
constexpr std::uint32_t kLeftRouterId = 1;
constexpr std::uint32_t kRightRouterId = 2;
constexpr std::uint32_t sender_id(std::size_t i) { return 10 + static_cast<std::uint32_t>(i); }
constexpr std::uint32_t receiver_id(std::size_t i) {
  return 1000 + static_cast<std::uint32_t>(i);
}
}  // namespace

Dumbbell::Dumbbell(Config config, const PerFlowCcFactory& cc_factory)
    : cfg_{config},
      sim_{config.seed,
           config.backend.value_or(config.flows >= kCalendarQueueFlowThreshold
                                       ? sim::QueueBackend::kCalendarQueue
                                       : sim::QueueBackend::kBinaryHeap)} {
  if (cfg_.flows == 0) throw std::invalid_argument("Dumbbell: need at least one flow");
  if (!cc_factory) throw std::invalid_argument("Dumbbell: null congestion-control factory");

  left_router_ = std::make_unique<net::Node>(sim_, kLeftRouterId, "routerL");
  right_router_ = std::make_unique<net::Node>(sim_, kRightRouterId, "routerR");

  // Shared bottleneck L -> R (device 0 on both routers). The router queue
  // is where network congestion happens in this topology.
  auto& l_bottleneck = left_router_->add_device(
      cfg_.bottleneck_rate, std::make_unique<net::DropTailQueue>(cfg_.router_queue_packets),
      "routerL/bottleneck");
  auto& r_bottleneck = right_router_->add_device(
      cfg_.bottleneck_rate, std::make_unique<net::DropTailQueue>(cfg_.router_queue_packets),
      "routerR/bottleneck");
  bottleneck_dev_ = &l_bottleneck;
  links_.push_back(std::make_unique<net::PointToPointLink>(sim_, cfg_.bottleneck_delay));
  links_.back()->attach(l_bottleneck, r_bottleneck);

  for (std::size_t i = 0; i < cfg_.flows; ++i) {
    auto snode =
        std::make_unique<net::Node>(sim_, sender_id(i), "sender" + std::to_string(i));
    auto rnode =
        std::make_unique<net::Node>(sim_, receiver_id(i), "receiver" + std::to_string(i));

    // Sender access: host NIC (finite IFQ: local stalls possible) <-> router L.
    auto& s_dev = snode->add_device(
        cfg_.access_rate, std::make_unique<net::DropTailQueue>(cfg_.sender_ifq_packets));
    auto& l_dev = left_router_->add_device(cfg_.access_rate,
                                           std::make_unique<net::DropTailQueue>(1000));
    links_.push_back(std::make_unique<net::PointToPointLink>(sim_, cfg_.access_delay));
    links_.back()->attach(s_dev, l_dev);

    // Receiver access: router R <-> receiver NIC.
    auto& r_dev = right_router_->add_device(cfg_.access_rate,
                                            std::make_unique<net::DropTailQueue>(1000));
    auto& d_dev =
        rnode->add_device(cfg_.access_rate, std::make_unique<net::DropTailQueue>(1000));
    links_.push_back(std::make_unique<net::PointToPointLink>(sim_, cfg_.access_delay));
    links_.back()->attach(r_dev, d_dev);

    // Routing. Device indices: routers gained one device per flow after the
    // bottleneck (index 0).
    const std::size_t l_access_index = left_router_->device_count() - 1;
    const std::size_t r_access_index = right_router_->device_count() - 1;
    snode->set_default_route(0);
    rnode->set_default_route(0);
    left_router_->set_route(receiver_id(i), 0);             // toward bottleneck
    left_router_->set_route(sender_id(i), l_access_index);  // ACKs back to sender
    right_router_->set_route(receiver_id(i), r_access_index);
    right_router_->set_route(sender_id(i), 0);  // ACKs toward bottleneck (reverse)

    const auto flow_id = static_cast<std::uint32_t>(i + 1);
    tcp::TcpReceiver::Options rx_opt = cfg_.receiver;
    rx_opt.flow_id = flow_id;
    rx_opt.peer_node = sender_id(i);
    receivers_.push_back(std::make_unique<tcp::TcpReceiver>(sim_, *rnode, rx_opt));

    tcp::TcpSender::Options tx_opt = cfg_.sender;
    tx_opt.flow_id = flow_id;
    tx_opt.dst_node = receiver_id(i);
    tx_opt.mss = cfg_.mss;
    senders_.push_back(
        std::make_unique<tcp::TcpSender>(sim_, *snode, s_dev, cc_factory(i), tx_opt));

    sender_nodes_.push_back(std::move(snode));
    receiver_nodes_.push_back(std::move(rnode));
  }
}

void Dumbbell::start_flow(std::size_t i, sim::Time start) {
  tcp::TcpSender& s = sender(i);
  sim_.at(start, [&s] { s.set_unlimited(true); });
}

std::vector<double> Dumbbell::goodputs_mbps(sim::Time t0, sim::Time t1) const {
  std::vector<double> out;
  out.reserve(senders_.size());
  for (const auto& s : senders_) out.push_back(s->goodput_mbps(t0, t1));
  return out;
}

}  // namespace rss::scenario
