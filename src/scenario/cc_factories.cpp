#include "scenario/cc_factories.hpp"

#include <stdexcept>

namespace rss::scenario {

FlowCcFactory striped_cc(std::vector<CcFactory> factories) {
  if (factories.empty())
    throw std::invalid_argument("striped_cc: need at least one factory");
  for (const auto& factory : factories)
    if (!factory) throw std::invalid_argument("striped_cc: null factory");
  return [factories = std::move(factories)](std::size_t flow_index) {
    return factories[flow_index % factories.size()]();
  };
}

CcFactory factory_by_name(const std::string& name) {
  if (name == "reno" || name == "standard" || name == "standard-tcp") {
    return make_reno_factory();
  }
  if (name == "tahoe") return make_tahoe_factory();
  if (name == "vegas") return make_vegas_factory();
  if (name == "limited" || name == "limited-slow-start" || name == "lss") {
    return make_limited_slow_start_factory();
  }
  if (name == "restricted" || name == "restricted-slow-start" || name == "rss") {
    return make_rss_factory();
  }
  if (name == "highspeed" || name == "hstcp") return make_highspeed_factory();
  if (name == "highspeed-rss" || name == "hs-rss") return make_highspeed_rss_factory();
  if (name == "cubic") return make_cubic_factory();
  if (name == "dctcp") return make_dctcp_factory();
  throw std::invalid_argument("unknown congestion-control variant: " + name);
}

std::vector<std::string> variant_names() {
  return {"tahoe",      "reno",          "vegas", "limited-slow-start",
          "restricted-slow-start",       "highspeed", "highspeed-rss",
          "cubic",      "dctcp"};
}

}  // namespace rss::scenario
