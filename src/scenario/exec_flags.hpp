#pragma once

#include <cstddef>
#include <string>

#include "scenario/execution.hpp"

namespace rss::scenario {

/// The shared execution flag surface: rss_scenario and rss_artifacts accept
/// the same three flags with the same meanings, and both feed one
/// process-wide thread budget (ExecutionDefaults) so nested parallelism —
/// sweep workers times partition engine threads — never oversubscribes.
///
///   --jobs <n>         total thread budget (0 / omitted = all cores);
///                      --threads is kept as a deprecated synonym
///   --backend <name>   binary_heap | calendar_queue | auto
///   --partitions <n>   run each scenario across n partitions
struct ExecFlags {
  std::size_t jobs{0};        ///< 0 = unset (hardware concurrency)
  std::string backend{};      ///< empty = unset
  std::size_t partitions{0};  ///< 0 = unset (spec/Config decides)

  enum class Parse {
    kConsumed,  ///< argv[i] (and possibly its value) was one of ours
    kNotMine,   ///< not an execution flag; caller keeps parsing
    kError,     ///< ours but malformed; a diagnostic went to stderr
  };

  /// Try to consume argv[i], advancing `i` past any value argument.
  [[nodiscard]] Parse parse(int argc, char** argv, int& i);

  /// The flag help block (indented, newline-terminated) for usage() texts.
  [[nodiscard]] static const char* help();

  /// Install as the process-wide ExecutionDefaults (the lowest-precedence
  /// policy layer). Returns false (with a stderr diagnostic) on an unknown
  /// --backend name.
  [[nodiscard]] bool install() const;

  /// Override one policy in place — the CLI wins over the spec for the
  /// flags that were given; unset flags leave the policy alone. (--jobs is
  /// deliberately not applied here: the thread budget is divided by the
  /// runner across sweep workers, not pinned per scenario.)
  void apply(ExecutionPolicy& policy) const;
};

}  // namespace rss::scenario
