#include "scenario/wan_path.hpp"

namespace rss::scenario {

TopologySpec WanPath::make_spec(const Config& config) {
  TopologySpec spec;
  spec.seed = config.seed;
  spec.backend = config.backend;
  spec.execution = config.execution;
  spec.nodes = {"sender", "receiver"};

  LinkSpec wan;
  wan.a = "sender";
  wan.b = "receiver";
  wan.delay = config.path.one_way_delay;
  wan.a_dev.rate = config.path.nic_rate;
  wan.a_dev.ifq_packets = config.path.ifq_capacity_packets;
  wan.a_dev.name = "sender/nic";
  wan.b_dev.rate = config.path.wan_rate;
  wan.b_dev.ifq_packets = config.receiver_ifq_packets;
  wan.b_dev.name = "receiver/nic";
  spec.links.push_back(std::move(wan));

  FlowSpec flow;
  flow.src = "sender";
  flow.dst = "receiver";
  flow.flow_id = config.flow_id;
  flow.sender = config.sender;
  flow.sender.mss = config.path.mss;
  flow.receiver = config.receiver;
  flow.web100 = config.enable_web100;
  flow.web100_poll_period = config.web100_poll_period;
  spec.flows.push_back(std::move(flow));
  return spec;
}

WanPath::WanPath(Config config, const CcFactory& cc_factory)
    : cfg_{config},
      scenario_{ScenarioBuilder{make_spec(config)}.build(uniform_cc(cc_factory))} {}

void WanPath::run_bulk_transfer(sim::Time start, sim::Time until) {
  scenario_->start_flow(0, start);
  scenario_->run_until(until);
}

}  // namespace rss::scenario
