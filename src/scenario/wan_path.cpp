#include "scenario/wan_path.hpp"

#include <stdexcept>

#include "net/queue.hpp"

namespace rss::scenario {

namespace {
constexpr std::uint32_t kSenderNodeId = 1;
constexpr std::uint32_t kReceiverNodeId = 2;
}  // namespace

WanPath::WanPath(Config config, const CcFactory& cc_factory)
    : cfg_{config}, sim_{config.seed, config.backend} {
  if (!cc_factory) throw std::invalid_argument("WanPath: null congestion-control factory");

  sender_node_ = std::make_unique<net::Node>(sim_, kSenderNodeId, "sender");
  receiver_node_ = std::make_unique<net::Node>(sim_, kReceiverNodeId, "receiver");

  nic_ = &sender_node_->add_device(
      cfg_.path.nic_rate,
      std::make_unique<net::DropTailQueue>(cfg_.path.ifq_capacity_packets), "sender/nic");
  auto& rx_dev = receiver_node_->add_device(
      cfg_.path.wan_rate, std::make_unique<net::DropTailQueue>(cfg_.receiver_ifq_packets),
      "receiver/nic");

  link_ = std::make_unique<net::PointToPointLink>(sim_, cfg_.path.one_way_delay);
  link_->attach(*nic_, rx_dev);

  sender_node_->set_route(kReceiverNodeId, 0);
  receiver_node_->set_route(kSenderNodeId, 0);

  tcp::TcpReceiver::Options rx_opt = cfg_.receiver;
  rx_opt.flow_id = cfg_.flow_id;
  rx_opt.peer_node = kSenderNodeId;
  receiver_ = std::make_unique<tcp::TcpReceiver>(sim_, *receiver_node_, rx_opt);

  tcp::TcpSender::Options tx_opt = cfg_.sender;
  tx_opt.flow_id = cfg_.flow_id;
  tx_opt.dst_node = kReceiverNodeId;
  tx_opt.mss = cfg_.path.mss;
  sender_ = std::make_unique<tcp::TcpSender>(sim_, *sender_node_, *nic_, cc_factory(), tx_opt);

  if (cfg_.enable_web100) {
    agent_ = std::make_unique<web100::PollingAgent>(
        sim_, [this]() -> const web100::Mib& { return sender_->mib(); },
        cfg_.web100_poll_period);
    agent_->start();
  }
}

void WanPath::run_bulk_transfer(sim::Time start, sim::Time until) {
  sim_.at(start, [this] { sender_->set_unlimited(true); });
  sim_.run_until(until);
}

}  // namespace rss::scenario
