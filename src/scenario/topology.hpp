#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/codel.hpp"
#include "net/data_rate.hpp"
#include "net/fluid.hpp"
#include "net/queue.hpp"
#include "scenario/execution.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "tcp/congestion_control.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"

namespace rss::scenario {

/// Factory for the congestion-control algorithm under test (one instance
/// per call; scenarios with a single flow population use this form).
using CcFactory = std::function<std::unique_ptr<tcp::CongestionControl>()>;

/// Indexed factory: called once per flow with the flow's index in the
/// TopologySpec, so mixed populations (e.g. one RSS flow among Renos) work
/// on every scenario. This is the canonical factory type every builder and
/// preset takes; adapt a zero-arg CcFactory with uniform_cc().
using FlowCcFactory =
    std::function<std::unique_ptr<tcp::CongestionControl>(std::size_t flow_index)>;

/// Adapt a zero-arg factory to the indexed form (every flow gets an
/// identically-configured instance).
[[nodiscard]] inline FlowCcFactory uniform_cc(CcFactory factory) {
  if (!factory) return {};
  return [factory = std::move(factory)](std::size_t) { return factory(); };
}

/// Queue discipline for one NetDevice's interface queue.
enum class QueueDiscipline {
  kDropTail,  ///< tail-drop FIFO (Linux txqueuelen, the paper's IFQ)
  kRed,       ///< Random Early Detection (router AQM experiments)
  kCodel,     ///< CoDel sojourn-time AQM (RFC 8289)
};

/// One endpoint NIC of a duplex link. Rates and IFQ depths are
/// per-endpoint because real paths are asymmetric (the paper's host NIC is
/// 100 Mbit/s against a 1 Gbit/s WAN side).
struct DeviceSpec {
  net::DataRate rate{net::DataRate::gbps(1)};
  std::size_t ifq_packets{1000};
  QueueDiscipline qdisc{QueueDiscipline::kDropTail};
  net::RedQueue::Options red{};  ///< honoured when qdisc == kRed (capacity taken from ifq_packets)
  /// Honoured when qdisc == kCodel (capacity taken from ifq_packets).
  net::CodelQueue::Options codel{};
  /// DCTCP-style step marking: CE-mark ECT packets when the instantaneous
  /// occupancy reaches this many packets (0 = off). Works on every qdisc.
  std::size_t ecn_threshold{0};
  std::string name{};            ///< empty -> "<node>-><peer>"
};

/// A full-duplex link between two named nodes: one NetDevice is created at
/// each end, wired through a PointToPointLink with the given one-way
/// propagation delay.
struct LinkSpec {
  std::string a;
  std::string b;
  sim::Time delay{sim::Time::milliseconds(1)};
  DeviceSpec a_dev{};
  DeviceSpec b_dev{};
};

/// Traffic class of a flow: full packet-level TCP, or a fluid rate-ODE
/// aggregate folded into bottleneck queues at an integration stride.
enum class TrafficModel {
  kPacket,  ///< packet-level TCP (default; the paper's foreground flows)
  kFluid,   ///< AIMD rate ODE + virtual queue backlog (background aggregates)
};

/// A bulk TCP flow between two named endpoint nodes.
struct FlowSpec {
  std::string src;
  std::string dst;
  /// 0 = auto (flow index + 1). Must be unique among flows sharing an
  /// endpoint node (that is where the demux happens).
  std::uint32_t flow_id{0};
  /// When set, an unbounded bulk transfer is scheduled at this time during
  /// build; when unset, drive the flow manually via Scenario::start_flow.
  std::optional<sim::Time> start{};
  tcp::TcpSender::Options sender{};      ///< flow/dst ids overwritten by the builder
  tcp::TcpReceiver::Options receiver{};  ///< flow/peer ids overwritten by the builder
  /// Negotiate ECN on this flow: data packets go out ECT, the receiver
  /// echoes CE marks (RFC 8257 discipline), and the sender feeds the echo
  /// to its congestion control. The builder copies this into both the
  /// sender and receiver options.
  bool ecn{false};
  /// Attach a Web100-style PollingAgent to this flow's sender MIB.
  bool web100{false};
  sim::Time web100_poll_period{sim::Time::milliseconds(100)};
  /// Packet (default) or fluid. Fluid flows ignore sender/receiver/web100
  /// and take their dynamics from `fluid`; spec files reject the combination
  /// outright.
  TrafficModel model{TrafficModel::kPacket};
  /// Fluid aggregate parameters, honoured when model == kFluid. An unset
  /// (zero) rtt is derived by the builder as twice the route's one-way
  /// delay; a zero peak_rate is capped at the route's minimum line rate.
  net::FluidOptions fluid{};
};

/// A network described as data: nodes, duplex links, flows. Build it with
/// ScenarioBuilder; the presets (WanPath, Dumbbell, ParkingLot,
/// MultiBottleneckChain) are thin emitters of this struct.
struct TopologySpec {
  std::vector<std::string> nodes;
  std::vector<LinkSpec> links;
  std::vector<FlowSpec> flows;
  std::uint64_t seed{1};
  /// Deprecated alias for execution.backend, kept so existing specs (and
  /// their JSON round-trips) stay byte-identical. An explicitly set
  /// execution.backend wins over this field.
  std::optional<sim::QueueBackend> backend{};
  /// How to execute the built scenario: queue backend, partition count and
  /// strategy, thread budget. Defaults reproduce the classic
  /// single-scheduler run.
  ExecutionPolicy execution{};
};

/// Typed spec-validation error. Derives from std::invalid_argument so
/// call sites that predate the builder (catching invalid_argument) keep
/// working; new code can switch on code().
class TopologyError : public std::invalid_argument {
 public:
  enum class Code {
    kEmptyName,        ///< node with an empty name
    kDuplicateNode,    ///< two nodes share a name
    kUnknownEndpoint,  ///< link or flow references an undeclared node
    kSelfLoop,         ///< link (or flow) with identical endpoints
    kDuplicateLink,    ///< second link between the same node pair
    kDuplicateFlowId,  ///< two flows with the same id share an endpoint node
    kUnroutableFlow,   ///< no path between a flow's endpoints
    kNullCcFactory,    ///< build() called with an empty factory
    kBadExecution,     ///< invalid ExecutionPolicy (e.g. partitions == 0)
    kZeroLatencyCut,   ///< a cross-partition link has zero latency (no lookahead)
    kFluidRouteCut,    ///< a partitioning splits a fluid flow's route across partitions
  };

  TopologyError(Code code, const std::string& what)
      : std::invalid_argument(what), code_{code} {}

  [[nodiscard]] Code code() const { return code_; }

 private:
  Code code_;
};

/// Static forwarding tables for every node of a validated spec, computed
/// by breadth-first search (minimum hop count; ties broken by link
/// declaration order, so routes are deterministic for a given spec).
struct RouteTable {
  static constexpr std::size_t kUnreachable = std::numeric_limits<std::size_t>::max();

  /// next_device[n][d]: egress device index on node n for packets to node
  /// d (indices into the spec's node list; device indices follow link
  /// declaration order per node). kUnreachable when no path exists;
  /// next_device[n][n] is kUnreachable by convention.
  std::vector<std::vector<std::size_t>> next_device;

  [[nodiscard]] std::size_t egress(std::size_t from, std::size_t to) const {
    return next_device.at(from).at(to);
  }
  [[nodiscard]] bool reachable(std::size_t from, std::size_t to) const {
    return egress(from, to) != kUnreachable;
  }
  /// Hop count of the shortest path (kUnreachable when disconnected).
  [[nodiscard]] std::size_t hops(std::size_t from, std::size_t to) const;

  /// The adjacency the search ran on: per node, (neighbor node, device
  /// index) pairs in link declaration order.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> adjacency;
};

/// Structural validation of nodes/links/flows (everything except
/// routability, which needs the routes). Throws TopologyError.
void validate_topology(const TopologySpec& spec);

/// All-pairs shortest-path routes for a structurally valid spec.
[[nodiscard]] RouteTable compute_routes(const TopologySpec& spec);

/// Index of a node name in spec.nodes, or nullopt.
[[nodiscard]] std::optional<std::size_t> node_index(const TopologySpec& spec,
                                                    std::string_view name);

/// Estimated number of simultaneously pending scheduler events when every
/// flow is active: each bulk flow keeps ~2 timers (RTO, delayed ACK) plus
/// one serialization train per link it crosses. This is the density the
/// queue-backend crossover was measured against.
[[nodiscard]] std::size_t estimated_pending_events(const TopologySpec& spec,
                                                   const RouteTable& routes);

}  // namespace rss::scenario
