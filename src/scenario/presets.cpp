#include "scenario/presets.hpp"

#include <stdexcept>

namespace rss::scenario {

namespace {

[[nodiscard]] std::vector<sim::Time> resolve_hop_delays(const std::vector<sim::Time>& given,
                                                        std::size_t hops,
                                                        sim::Time fallback,
                                                        const char* preset) {
  if (given.empty()) return std::vector<sim::Time>(hops, fallback);
  if (given.size() != hops)
    throw std::invalid_argument(std::string{preset} +
                                ": hop_delays size must match the hop count");
  return given;
}

[[nodiscard]] std::string router_name(std::size_t index) {
  return "r" + std::to_string(index);
}

}  // namespace

// --- ParkingLot -----------------------------------------------------------

TopologySpec ParkingLot::make_spec(const Config& config) {
  if (config.hops == 0) throw std::invalid_argument("ParkingLot: need at least one hop");
  const auto hop_delays = resolve_hop_delays(config.hop_delays, config.hops,
                                             config.default_hop_delay, "ParkingLot");

  TopologySpec spec;
  spec.seed = config.seed;
  spec.backend = config.backend;
  spec.execution = config.execution;

  for (std::size_t r = 0; r <= config.hops; ++r) spec.nodes.push_back(router_name(r));
  spec.nodes.push_back("src");
  spec.nodes.push_back("dst");
  for (std::size_t h = 0; h < config.hops; ++h) {
    for (std::size_t k = 0; k < config.cross_flows_per_hop; ++k) {
      const std::string suffix = std::to_string(h) + "_" + std::to_string(k);
      spec.nodes.push_back("xs" + suffix);
      spec.nodes.push_back("xd" + suffix);
    }
  }

  // The chain: hop h runs router h -> router h+1 at the bottleneck rate.
  for (std::size_t h = 0; h < config.hops; ++h) {
    LinkSpec hop;
    hop.a = router_name(h);
    hop.b = router_name(h + 1);
    hop.delay = hop_delays[h];
    hop.a_dev = {.rate = config.bottleneck_rate,
                 .ifq_packets = config.router_queue_packets,
                 .name = "hop" + std::to_string(h)};
    hop.b_dev = {config.bottleneck_rate, config.router_queue_packets};
    spec.links.push_back(std::move(hop));
  }

  const auto access_link = [&](const std::string& host, const std::string& router) {
    LinkSpec l;
    l.a = host;
    l.b = router;
    l.delay = config.access_delay;
    l.a_dev = {config.access_rate, config.sender_ifq_packets};
    l.b_dev = {config.access_rate, 1000};
    spec.links.push_back(std::move(l));
  };

  access_link("src", router_name(0));
  access_link("dst", router_name(config.hops));
  for (std::size_t h = 0; h < config.hops; ++h) {
    for (std::size_t k = 0; k < config.cross_flows_per_hop; ++k) {
      const std::string suffix = std::to_string(h) + "_" + std::to_string(k);
      access_link("xs" + suffix, router_name(h));
      access_link("xd" + suffix, router_name(h + 1));
    }
  }

  const auto add_flow = [&](const std::string& src, const std::string& dst, bool cross) {
    FlowSpec flow;
    flow.src = src;
    flow.dst = dst;
    if (cross && config.fluid_cross) {
      flow.model = TrafficModel::kFluid;
      flow.fluid = config.fluid_options;
    } else {
      flow.sender = config.sender;
      flow.sender.mss = config.mss;
      flow.receiver = config.receiver;
    }
    spec.flows.push_back(std::move(flow));
  };

  add_flow("src", "dst", false);  // flow 0: end-to-end across every hop
  for (std::size_t h = 0; h < config.hops; ++h) {
    for (std::size_t k = 0; k < config.cross_flows_per_hop; ++k) {
      const std::string suffix = std::to_string(h) + "_" + std::to_string(k);
      add_flow("xs" + suffix, "xd" + suffix, true);
    }
  }
  return spec;
}

ParkingLot::ParkingLot(Config config, const FlowCcFactory& cc_factory)
    : cfg_{std::move(config)} {
  if (!cc_factory)
    throw std::invalid_argument("ParkingLot: null congestion-control factory");
  scenario_ = ScenarioBuilder{make_spec(cfg_)}.build(cc_factory);
}

void ParkingLot::start_all(sim::Time start) {
  for (std::size_t i = 0; i < scenario_->flow_count(); ++i) scenario_->start_flow(i, start);
}

net::NetDevice& ParkingLot::bottleneck(std::size_t hop) {
  return scenario_->device(router_name(hop), router_name(hop + 1));
}

// --- MultiBottleneckChain -------------------------------------------------

TopologySpec MultiBottleneckChain::make_spec(const Config& config) {
  if (config.hop_rates.empty())
    throw std::invalid_argument("MultiBottleneckChain: need at least one hop rate");
  if (config.flows == 0)
    throw std::invalid_argument("MultiBottleneckChain: need at least one flow");
  const std::size_t hops = config.hop_rates.size();
  const auto hop_delays = resolve_hop_delays(config.hop_delays, hops,
                                             config.default_hop_delay,
                                             "MultiBottleneckChain");

  TopologySpec spec;
  spec.seed = config.seed;
  spec.backend = config.backend;
  spec.execution = config.execution;

  for (std::size_t r = 0; r <= hops; ++r) spec.nodes.push_back(router_name(r));
  for (std::size_t i = 0; i < config.flows; ++i) {
    spec.nodes.push_back("s" + std::to_string(i));
    spec.nodes.push_back("d" + std::to_string(i));
  }

  for (std::size_t h = 0; h < hops; ++h) {
    LinkSpec hop;
    hop.a = router_name(h);
    hop.b = router_name(h + 1);
    hop.delay = hop_delays[h];
    hop.a_dev = {.rate = config.hop_rates[h],
                 .ifq_packets = config.router_queue_packets,
                 .name = "hop" + std::to_string(h)};
    hop.b_dev = {config.hop_rates[h], config.router_queue_packets};
    spec.links.push_back(std::move(hop));
  }

  // Flow i enters the chain at router (i mod hops) and exits at the far
  // end: staggered entry points give each flow a different hop count and
  // RTT while the chain tail stays shared.
  for (std::size_t i = 0; i < config.flows; ++i) {
    LinkSpec in;
    in.a = "s" + std::to_string(i);
    in.b = router_name(i % hops);
    in.delay = config.access_delay;
    in.a_dev = {config.access_rate, config.sender_ifq_packets};
    in.b_dev = {config.access_rate, 1000};
    spec.links.push_back(std::move(in));

    LinkSpec out;
    out.a = router_name(hops);
    out.b = "d" + std::to_string(i);
    out.delay = config.access_delay;
    out.a_dev = {config.access_rate, 1000};
    out.b_dev = {config.access_rate, 1000};
    spec.links.push_back(std::move(out));

    FlowSpec flow;
    flow.src = "s" + std::to_string(i);
    flow.dst = "d" + std::to_string(i);
    flow.sender = config.sender;
    flow.sender.mss = config.mss;
    flow.receiver = config.receiver;
    spec.flows.push_back(std::move(flow));
  }
  return spec;
}

MultiBottleneckChain::MultiBottleneckChain(Config config, const FlowCcFactory& cc_factory)
    : cfg_{std::move(config)} {
  if (!cc_factory)
    throw std::invalid_argument("MultiBottleneckChain: null congestion-control factory");
  scenario_ = ScenarioBuilder{make_spec(cfg_)}.build(cc_factory);
}

net::NetDevice& MultiBottleneckChain::bottleneck(std::size_t hop) {
  return scenario_->device(router_name(hop), router_name(hop + 1));
}

std::size_t MultiBottleneckChain::flow_hops(std::size_t i) const {
  return cfg_.hop_rates.size() - (i % cfg_.hop_rates.size());
}

// --- ScaleMesh ------------------------------------------------------------

TopologySpec ScaleMesh::make_spec(const Config& config) {
  if (config.segments == 0)
    throw std::invalid_argument("ScaleMesh: need at least one segment");
  if (config.flows_per_segment == 0)
    throw std::invalid_argument("ScaleMesh: need at least one flow per segment");
  if (config.segments > 1 && config.inter_delay < sim::Time::nanoseconds(1))
    throw std::invalid_argument("ScaleMesh: inter_delay must be >= 1ns (lookahead bound)");

  TopologySpec spec;
  spec.seed = config.seed;
  spec.backend = config.backend;
  spec.execution = config.execution;

  const auto seg = [](const char* prefix, std::size_t i) {
    return std::string{prefix} + std::to_string(i);
  };

  for (std::size_t i = 0; i < config.segments; ++i) {
    spec.nodes.push_back(seg("hL", i));
    spec.nodes.push_back(seg("rL", i));
    spec.nodes.push_back(seg("rR", i));
    spec.nodes.push_back(seg("hR", i));
  }

  for (std::size_t i = 0; i < config.segments; ++i) {
    LinkSpec in;
    in.a = seg("hL", i);
    in.b = seg("rL", i);
    in.delay = config.access_delay;
    in.a_dev = {config.access_rate, config.sender_ifq_packets};
    in.b_dev = {config.access_rate, 1000};
    spec.links.push_back(std::move(in));

    LinkSpec bottleneck;
    bottleneck.a = seg("rL", i);
    bottleneck.b = seg("rR", i);
    bottleneck.delay = config.bottleneck_delay;
    bottleneck.a_dev = {.rate = config.bottleneck_rate,
                        .ifq_packets = config.router_queue_packets,
                        .name = "seg" + std::to_string(i) + "/bottleneck"};
    bottleneck.b_dev = {config.bottleneck_rate, config.router_queue_packets};
    spec.links.push_back(std::move(bottleneck));

    LinkSpec out;
    out.a = seg("rR", i);
    out.b = seg("hR", i);
    out.delay = config.access_delay;
    out.a_dev = {config.access_rate, 1000};
    out.b_dev = {config.access_rate, 1000};
    spec.links.push_back(std::move(out));

    // Trunk to the next segment: the largest delay in the topology, so
    // latency-guided partitioning cuts here and inter_delay becomes the
    // engine's lookahead window.
    if (i + 1 < config.segments) {
      LinkSpec trunk;
      trunk.a = seg("rR", i);
      trunk.b = seg("rL", i + 1);
      trunk.delay = config.inter_delay;
      trunk.a_dev = {.rate = config.trunk_rate,
                     .ifq_packets = config.router_queue_packets,
                     .name = "trunk" + std::to_string(i)};
      trunk.b_dev = {config.trunk_rate, config.router_queue_packets};
      spec.links.push_back(std::move(trunk));
    }
  }

  const auto add_flow = [&](const std::string& src, const std::string& dst, bool local) {
    FlowSpec flow;
    flow.src = src;
    flow.dst = dst;
    flow.start = config.start_all;
    if (local && config.fluid_local) {
      flow.model = TrafficModel::kFluid;
      flow.fluid = config.fluid_options;
    } else {
      flow.sender = config.sender;
      flow.sender.mss = config.mss;
      flow.receiver = config.receiver;
    }
    spec.flows.push_back(std::move(flow));
  };

  // Local flows first (segment-major), then cross flows (trunk-major) —
  // the index math in local_flow()/cross_flow() depends on this order.
  for (std::size_t i = 0; i < config.segments; ++i)
    for (std::size_t k = 0; k < config.flows_per_segment; ++k)
      add_flow(seg("hL", i), seg("hR", i), true);
  for (std::size_t i = 0; i + 1 < config.segments; ++i)
    for (std::size_t k = 0; k < config.cross_flows_per_segment; ++k)
      add_flow(seg("hL", i), seg("hR", i + 1), false);
  return spec;
}

ScaleMesh::ScaleMesh(Config config, const FlowCcFactory& cc_factory)
    : cfg_{std::move(config)} {
  if (!cc_factory)
    throw std::invalid_argument("ScaleMesh: null congestion-control factory");
  scenario_ = ScenarioBuilder{make_spec(cfg_)}.build(cc_factory);
}

net::NetDevice& ScaleMesh::bottleneck(std::size_t segment) {
  return scenario_->device("rL" + std::to_string(segment),
                           "rR" + std::to_string(segment));
}

}  // namespace rss::scenario
