#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

namespace rss::scenario {

/// Run `fn(i)` for i in [0, count) across up to `max_threads` worker
/// threads (0 = hardware concurrency). Each index is an *independent*
/// simulation — the event cores are single-threaded by design, so the only
/// sanctioned parallelism in this library is across whole runs, which is
/// exactly what parameter sweeps need.
///
/// Exceptions thrown by `fn` propagate: the first one (by worker
/// observation order) is rethrown on the calling thread after all workers
/// join. An error also cancels the sweep — workers finish their in-flight
/// point, then stop claiming new ones, so the call returns promptly
/// instead of draining the remaining points.
void parallel_sweep(std::size_t count, const std::function<void(std::size_t)>& fn,
                    std::size_t max_threads = 0);

/// Map convenience: produce one result per input in parallel; results are
/// positionally stable.
template <typename In, typename Fn>
auto parallel_map(const std::vector<In>& inputs, Fn&& fn, std::size_t max_threads = 0)
    -> std::vector<decltype(fn(inputs.front()))> {
  using Out = decltype(fn(inputs.front()));
  std::vector<Out> results(inputs.size());
  parallel_sweep(
      inputs.size(), [&](std::size_t i) { results[i] = fn(inputs[i]); }, max_threads);
  return results;
}

}  // namespace rss::scenario
