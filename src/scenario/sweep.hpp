#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "scenario/execution.hpp"

namespace rss::scenario {

/// Run `fn(i)` for i in [0, count) across up to `max_threads` worker
/// threads (0 = hardware concurrency, with the `hardware_concurrency() ==
/// 0` "unknown" case treated as 1). Each index is an *independent*
/// simulation — per-run parallelism (partitioned engines) and sweep
/// parallelism share one thread budget via the ExecutionPolicy overload
/// below.
///
/// Exceptions thrown by `fn` propagate: the first one (by worker
/// observation order) is rethrown on the calling thread after all workers
/// join. An error also cancels the sweep — workers finish their in-flight
/// point, then stop claiming new ones, so the call returns promptly
/// instead of draining the remaining points.
void parallel_sweep(std::size_t count, const std::function<void(std::size_t)>& fn,
                    std::size_t max_threads = 0);

/// ExecutionPolicy-driven overload: the worker count is
/// `policy.resolve_threads(count)` — the policy's thread budget (0 =
/// hardware concurrency, 0-guarded) clamped to the point count. When the
/// sweep body itself builds partitioned scenarios, divide the same budget:
/// give each run `max(1, budget / sweep_workers)` engine threads so nested
/// parallelism respects one overall thread budget.
void parallel_sweep(std::size_t count, const std::function<void(std::size_t)>& fn,
                    const ExecutionPolicy& policy);

/// Map convenience: produce one result per input in parallel; results are
/// positionally stable.
template <typename In, typename Fn>
auto parallel_map(const std::vector<In>& inputs, Fn&& fn, std::size_t max_threads = 0)
    -> std::vector<decltype(fn(inputs.front()))> {
  using Out = decltype(fn(inputs.front()));
  std::vector<Out> results(inputs.size());
  parallel_sweep(
      inputs.size(), [&](std::size_t i) { results[i] = fn(inputs[i]); }, max_threads);
  return results;
}

}  // namespace rss::scenario
