#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "scenario/builder.hpp"
#include "scenario/topology.hpp"

namespace rss::scenario {

/// Parking-lot topology: a chain of `hops` bottleneck links, one
/// end-to-end flow crossing all of them, and `cross_flows_per_hop`
/// single-hop cross flows entering and leaving at every hop — the classic
/// multi-bottleneck fairness stressor (an end-to-end flow pays the loss
/// rate of every hop; per-hop flows pay one).
///
///   src ── R0 ══ hop0 ══ R1 ══ hop1 ══ R2 ══ ... ══ RH ── dst
///          │╲          ╱ │╲           ╱
///         xs0_k     xd0_k xs1_k    xd1_k        (per-hop cross traffic)
///
/// Per-hop delays may be heterogeneous (`hop_delays`), so cross flows see
/// different RTTs — the background-RTT-heterogeneity axis of the fairness
/// study.
///
/// Flow order: index 0 is the end-to-end flow; cross flows follow
/// hop-major (hop 0's cross flows, then hop 1's, ...).
class ParkingLot {
 public:
  struct Config {
    std::size_t hops{3};
    std::size_t cross_flows_per_hop{1};
    std::uint64_t seed{1};
    /// Deprecated alias for execution.backend (an explicitly set
    /// execution.backend wins).
    std::optional<sim::QueueBackend> backend{};
    /// Full execution policy (backend, partitions, thread budget).
    ExecutionPolicy execution{};
    net::DataRate bottleneck_rate{net::DataRate::mbps(100)};
    net::DataRate access_rate{net::DataRate::gbps(1)};
    sim::Time access_delay{sim::Time::milliseconds(1)};
    /// One-way propagation delay per hop. Empty = `hops` copies of
    /// default_hop_delay; otherwise the size must equal `hops`.
    std::vector<sim::Time> hop_delays{};
    sim::Time default_hop_delay{sim::Time::milliseconds(10)};
    std::size_t sender_ifq_packets{100};   ///< per-host NIC queue
    std::size_t router_queue_packets{100}; ///< per-hop bottleneck queue
    std::uint32_t mss{1460};
    tcp::TcpSender::Options sender{};      ///< ids/mss overwritten per flow
    tcp::TcpReceiver::Options receiver{};  ///< ids overwritten per flow
    /// Model the per-hop cross traffic as fluid aggregates instead of
    /// packet flows (the hybrid fluid/packet configuration); the
    /// end-to-end flow always stays packet-level.
    bool fluid_cross{false};
    /// Fluid parameters for the cross aggregates when fluid_cross is set
    /// (peak auto-capped at the route line rate, RTT derived if zero).
    net::FluidOptions fluid_options{};
  };

  [[nodiscard]] static TopologySpec make_spec(const Config& config);

  ParkingLot(Config config, const FlowCcFactory& cc_factory);

  /// Start flow `i`'s unbounded bulk transfer at `start`.
  void start_flow(std::size_t i, sim::Time start) { scenario_->start_flow(i, start); }
  /// Start every flow (end-to-end and all cross traffic) at `start`.
  void start_all(sim::Time start);

  [[nodiscard]] sim::Simulation& simulation() { return scenario_->simulation(); }
  [[nodiscard]] Scenario& scenario() { return *scenario_; }
  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] std::size_t flow_count() const { return scenario_->flow_count(); }
  /// The end-to-end flow's sender (flow 0).
  [[nodiscard]] tcp::TcpSender& end_to_end() { return scenario_->sender(0); }
  /// Cross flow `k` of hop `h`.
  [[nodiscard]] tcp::TcpSender& cross_sender(std::size_t hop, std::size_t k) {
    return scenario_->sender(1 + hop * cfg_.cross_flows_per_hop + k);
  }
  [[nodiscard]] net::Node& router(std::size_t index) {
    return scenario_->node("r" + std::to_string(index));
  }
  /// Egress device of hop `h` (on router h toward router h+1) — the h-th
  /// bottleneck queue.
  [[nodiscard]] net::NetDevice& bottleneck(std::size_t hop);

  [[nodiscard]] std::vector<double> goodputs_mbps(sim::Time t0, sim::Time t1) const {
    return scenario_->goodputs_mbps(t0, t1);
  }

 private:
  Config cfg_;
  std::unique_ptr<Scenario> scenario_;
};

/// Multi-bottleneck chain with per-flow RTT heterogeneity: a chain of
/// routers whose hop rates may all differ, and N long flows that enter at
/// staggered routers (flow i at router i mod hops) but all exit at the far
/// end — so flows traverse different hop counts, see different RTTs, and
/// contend on the shared tail of the chain.
///
///   s0 ─ R0 ══ rate0 ══ R1 ══ rate1 ══ R2 ══ rate2 ══ R3 ─ d0,d1,d2
///        s1 ─────┘            s2 ─────────┘
class MultiBottleneckChain {
 public:
  struct Config {
    std::size_t flows{3};
    /// Hop rates, fastest-to-slowest or any mix; size defines the chain
    /// length (must be >= 1).
    std::vector<net::DataRate> hop_rates{net::DataRate::mbps(100),
                                         net::DataRate::mbps(80),
                                         net::DataRate::mbps(60)};
    /// One-way delay per hop. Empty = hop_rates.size() copies of
    /// default_hop_delay; otherwise the size must match hop_rates.
    std::vector<sim::Time> hop_delays{};
    sim::Time default_hop_delay{sim::Time::milliseconds(10)};
    std::uint64_t seed{1};
    /// Deprecated alias for execution.backend (an explicitly set
    /// execution.backend wins).
    std::optional<sim::QueueBackend> backend{};
    /// Full execution policy (backend, partitions, thread budget).
    ExecutionPolicy execution{};
    net::DataRate access_rate{net::DataRate::gbps(1)};
    sim::Time access_delay{sim::Time::milliseconds(1)};
    std::size_t sender_ifq_packets{100};
    std::size_t router_queue_packets{100};
    std::uint32_t mss{1460};
    tcp::TcpSender::Options sender{};
    tcp::TcpReceiver::Options receiver{};
  };

  [[nodiscard]] static TopologySpec make_spec(const Config& config);

  MultiBottleneckChain(Config config, const FlowCcFactory& cc_factory);

  void start_flow(std::size_t i, sim::Time start) { scenario_->start_flow(i, start); }

  [[nodiscard]] sim::Simulation& simulation() { return scenario_->simulation(); }
  [[nodiscard]] Scenario& scenario() { return *scenario_; }
  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] std::size_t flow_count() const { return scenario_->flow_count(); }
  [[nodiscard]] tcp::TcpSender& sender(std::size_t i) { return scenario_->sender(i); }
  /// Egress device of hop `h` (on router h toward router h+1).
  [[nodiscard]] net::NetDevice& bottleneck(std::size_t hop);
  /// Hop count flow `i` traverses (router segments only, excluding access
  /// links) — differs per flow by construction.
  [[nodiscard]] std::size_t flow_hops(std::size_t i) const;

  [[nodiscard]] std::vector<double> goodputs_mbps(sim::Time t0, sim::Time t1) const {
    return scenario_->goodputs_mbps(t0, t1);
  }

 private:
  Config cfg_;
  std::unique_ptr<Scenario> scenario_;
};

/// Scale preset: a chain of `segments` independent dumbbells stitched
/// together by long-haul trunks — the workload the partitioned engine is
/// built for. Each segment is a classic 4-node dumbbell carrying
/// `flows_per_segment` local flows (flows share their segment's host pair,
/// so node count — and the O(nodes^2) route table — stays tiny while the
/// flow population scales to 100k+); `cross_flows_per_segment` flows per
/// trunk cross into the next segment and exercise the partition handoff.
///
///   hL0 ─ rL0 ══ rR0 ─ hR0      hL1 ─ rL1 ══ rR1 ─ hR1
///                  └───── trunk (inter_delay) ─────┘   ...
///
/// The trunks carry the largest latency in the topology, so the builder's
/// latency-guided partitioning (ExecutionPolicy::partitions > 1) cuts
/// exactly there and the trunk delay becomes the conservative-lookahead
/// window. Defaults describe the 100k-flow configuration from the bench;
/// tests use small explicit configs.
class ScaleMesh {
 public:
  struct Config {
    std::size_t segments{8};
    std::size_t flows_per_segment{12500};   ///< local hL_i -> hR_i flows
    std::size_t cross_flows_per_segment{4}; ///< hL_i -> hR_{i+1}, per trunk
    std::uint64_t seed{1};
    /// Deprecated alias for execution.backend (an explicitly set
    /// execution.backend wins).
    std::optional<sim::QueueBackend> backend{};
    /// Full execution policy — set execution.partitions to run segments in
    /// parallel (the trunk delay bounds the lookahead window).
    ExecutionPolicy execution{};
    net::DataRate access_rate{net::DataRate::gbps(10)};
    net::DataRate bottleneck_rate{net::DataRate::gbps(1)};
    net::DataRate trunk_rate{net::DataRate::gbps(10)};
    sim::Time access_delay{sim::Time::microseconds(50)};
    sim::Time bottleneck_delay{sim::Time::milliseconds(5)};
    /// One-way trunk delay between adjacent segments — the partition cut
    /// latency, hence the lookahead bound. Must be >= 1ns to partition.
    sim::Time inter_delay{sim::Time::milliseconds(10)};
    std::size_t sender_ifq_packets{100};
    std::size_t router_queue_packets{200};
    std::uint32_t mss{1460};
    /// When set, every flow's bulk transfer starts at this time during
    /// build (spec-declared starts); when unset, drive flows manually.
    std::optional<sim::Time> start_all{};
    tcp::TcpSender::Options sender{};      ///< ids/mss overwritten per flow
    tcp::TcpReceiver::Options receiver{};  ///< ids overwritten per flow
    /// Model each segment's local flows as fluid aggregates; trunk cross
    /// flows stay packet-level (they are what exercises the handoff).
    bool fluid_local{false};
    /// Fluid parameters for the local aggregates when fluid_local is set.
    net::FluidOptions fluid_options{};
  };

  [[nodiscard]] static TopologySpec make_spec(const Config& config);

  ScaleMesh(Config config, const FlowCcFactory& cc_factory);

  /// Start flow `i`'s unbounded bulk transfer at `start`.
  void start_flow(std::size_t i, sim::Time start) { scenario_->start_flow(i, start); }

  [[nodiscard]] Scenario& scenario() { return *scenario_; }
  [[nodiscard]] const Config& config() const { return cfg_; }
  [[nodiscard]] std::size_t flow_count() const { return scenario_->flow_count(); }
  [[nodiscard]] tcp::TcpSender& sender(std::size_t i) { return scenario_->sender(i); }
  /// Flow index of local flow `k` within segment `s` (segment-major,
  /// local flows first, then all cross flows trunk-major).
  [[nodiscard]] std::size_t local_flow(std::size_t segment, std::size_t k) const {
    return segment * cfg_.flows_per_segment + k;
  }
  /// Flow index of cross flow `k` on the trunk leaving segment `s`.
  [[nodiscard]] std::size_t cross_flow(std::size_t segment, std::size_t k) const {
    return cfg_.segments * cfg_.flows_per_segment +
           segment * cfg_.cross_flows_per_segment + k;
  }
  /// The bottleneck egress device of segment `s` (rL_s toward rR_s).
  [[nodiscard]] net::NetDevice& bottleneck(std::size_t segment);

  [[nodiscard]] std::vector<double> goodputs_mbps(sim::Time t0, sim::Time t1) const {
    return scenario_->goodputs_mbps(t0, t1);
  }

 private:
  Config cfg_;
  std::unique_ptr<Scenario> scenario_;
};

}  // namespace rss::scenario
