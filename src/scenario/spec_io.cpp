#include "scenario/spec_io.hpp"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <unordered_set>

#include "scenario/builder.hpp"
#include "scenario/cc_factories.hpp"

namespace rss::scenario::spec {

namespace {

// --- error helpers --------------------------------------------------------

[[noreturn]] void fail(SpecError::Code code, const std::string& field, int line,
                       const std::string& msg) {
  std::string what = "spec";
  if (!field.empty()) what += ": " + field;
  if (line > 0) what += " (line " + std::to_string(line) + ")";
  what += ": " + msg;
  throw SpecError(code, field, line, what);
}

[[nodiscard]] std::string sub(const std::string& base, std::string_view key) {
  if (base.empty()) return std::string{key};
  return base + "." + std::string{key};
}

[[nodiscard]] std::string idx(const std::string& base, std::size_t i) {
  return base + "[" + std::to_string(i) + "]";
}

}  // namespace

// --- JsonValue ------------------------------------------------------------

JsonValue JsonValue::make_null() { return {}; }

JsonValue JsonValue::make_bool(bool v) {
  JsonValue j;
  j.type = Type::kBool;
  j.boolean = v;
  return j;
}

JsonValue JsonValue::make_number(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return make_number_literal(buf);
}

JsonValue JsonValue::make_number(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  return make_number_literal(buf);
}

JsonValue JsonValue::make_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return make_number_literal(buf);
}

JsonValue JsonValue::make_number_literal(std::string literal) {
  JsonValue j;
  j.type = Type::kNumber;
  j.number = std::move(literal);
  return j;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue j;
  j.type = Type::kString;
  j.string = std::move(v);
  return j;
}

JsonValue JsonValue::make_array() {
  JsonValue j;
  j.type = Type::kArray;
  return j;
}

JsonValue JsonValue::make_object() {
  JsonValue j;
  j.type = Type::kObject;
  return j;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

JsonValue* JsonValue::find(std::string_view key) {
  if (type != Type::kObject) return nullptr;
  for (auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

void JsonValue::set(std::string_view key, JsonValue value) {
  if (JsonValue* existing = find(key)) {
    *existing = std::move(value);
    return;
  }
  object.emplace_back(std::string{key}, std::move(value));
}

double JsonValue::as_double(const std::string& field) const {
  if (type != Type::kNumber)
    fail(SpecError::Code::kWrongType, field, line, "expected a number");
  return std::strtod(number.c_str(), nullptr);
}

std::uint64_t JsonValue::as_u64(const std::string& field) const {
  if (type != Type::kNumber)
    fail(SpecError::Code::kWrongType, field, line, "expected a number");
  if (number.find_first_of(".eE-") != std::string::npos)
    fail(SpecError::Code::kBadValue, field, line,
         "expected a non-negative integer, got '" + number + "'");
  errno = 0;
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(number.c_str(), &end, 10);
  if (errno == ERANGE || end != number.c_str() + number.size())
    fail(SpecError::Code::kBadValue, field, line,
         "integer out of range: '" + number + "'");
  return v;
}

std::int64_t JsonValue::as_i64(const std::string& field) const {
  if (type != Type::kNumber)
    fail(SpecError::Code::kWrongType, field, line, "expected a number");
  if (number.find_first_of(".eE") != std::string::npos)
    fail(SpecError::Code::kBadValue, field, line,
         "expected an integer, got '" + number + "'");
  errno = 0;
  char* end = nullptr;
  const std::int64_t v = std::strtoll(number.c_str(), &end, 10);
  if (errno == ERANGE || end != number.c_str() + number.size())
    fail(SpecError::Code::kBadValue, field, line,
         "integer out of range: '" + number + "'");
  return v;
}

bool JsonValue::as_bool(const std::string& field) const {
  if (type != Type::kBool)
    fail(SpecError::Code::kWrongType, field, line, "expected true or false");
  return boolean;
}

const std::string& JsonValue::as_string(const std::string& field) const {
  if (type != Type::kString)
    fail(SpecError::Code::kWrongType, field, line, "expected a string");
  return string;
}

// --- JSON parser ----------------------------------------------------------

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_{text} {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size())
      fail(SpecError::Code::kSyntax, "", line_, "trailing characters after JSON document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[noreturn]] void syntax(const std::string& msg) {
    fail(SpecError::Code::kSyntax, "", line_, msg);
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') ++line_;
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    if (pos_ >= text_.size()) syntax("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c)
      syntax(std::string{"expected '"} + c + "'");
    ++pos_;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) syntax("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return parse_string_value();
      case 't':
      case 'f':
        return parse_bool();
      case 'n':
        parse_literal("null");
        return JsonValue::make_null();
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        syntax(std::string{"unexpected character '"} + c + "'");
    }
  }

  JsonValue parse_object(int depth) {
    JsonValue obj = JsonValue::make_object();
    obj.line = line_;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    std::set<std::string> keys;
    while (true) {
      skip_ws();
      if (peek() != '"') syntax("expected a quoted object key");
      const int key_line = line_;
      std::string key = parse_string_text();
      if (!keys.insert(key).second)
        fail(SpecError::Code::kSyntax, "", key_line, "duplicate object key \"" + key + "\"");
      skip_ws();
      expect(':');
      obj.object.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      syntax("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array(int depth) {
    JsonValue arr = JsonValue::make_array();
    arr.line = line_;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.array.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      syntax("expected ',' or ']' in array");
    }
  }

  JsonValue parse_string_value() {
    const int at = line_;
    JsonValue v = JsonValue::make_string(parse_string_text());
    v.line = at;
    return v;
  }

  std::string parse_string_text() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) syntax("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\n') syntax("unescaped newline in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) syntax("unterminated escape sequence");
      c = text_[pos_++];
      switch (c) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: syntax(std::string{"invalid escape '\\"} + c + "'");
      }
    }
  }

  void append_unicode_escape(std::string& out) {
    if (pos_ + 4 > text_.size()) syntax("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else syntax("invalid hex digit in \\u escape");
    }
    // UTF-8 encode the BMP code point (surrogate pairs are out of scope for
    // topology names; reject them explicitly).
    if (code >= 0xD800 && code <= 0xDFFF) syntax("surrogate \\u escapes are not supported");
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue parse_bool() {
    if (text_.substr(pos_).starts_with("true")) {
      pos_ += 4;
      JsonValue v = JsonValue::make_bool(true);
      v.line = line_;
      return v;
    }
    parse_literal("false");
    JsonValue v = JsonValue::make_bool(false);
    v.line = line_;
    return v;
  }

  void parse_literal(std::string_view word) {
    if (!text_.substr(pos_).starts_with(word))
      syntax("invalid literal (expected " + std::string{word} + ")");
    pos_ += word.size();
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    const int at = line_;
    if (peek() == '-') ++pos_;
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
      syntax("malformed number");
    if (text_[pos_] == '0' && pos_ + 1 < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))
      syntax("malformed number (leading zeros are not allowed)");
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        syntax("malformed number (digits required after '.')");
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(text_[pos_])))
        syntax("malformed number (digits required in exponent)");
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    JsonValue v = JsonValue::make_number_literal(std::string{text_.substr(start, pos_ - start)});
    v.line = at;
    return v;
  }

  std::string_view text_;
  std::size_t pos_{0};
  int line_{1};
};

}  // namespace

JsonValue json_parse(std::string_view text) { return JsonParser{text}.parse_document(); }

// --- JSON serializer ------------------------------------------------------

namespace {

void append_quoted(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

[[nodiscard]] bool is_scalar_array(const JsonValue& v) {
  for (const auto& e : v.array)
    if (e.type == JsonValue::Type::kArray || e.type == JsonValue::Type::kObject) return false;
  return true;
}

void serialize_value(std::string& out, const JsonValue& v, int indent) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string pad_in(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (v.type) {
    case JsonValue::Type::kNull:
      out += "null";
      return;
    case JsonValue::Type::kBool:
      out += v.boolean ? "true" : "false";
      return;
    case JsonValue::Type::kNumber:
      out += v.number;
      return;
    case JsonValue::Type::kString:
      append_quoted(out, v.string);
      return;
    case JsonValue::Type::kArray: {
      if (v.array.empty()) {
        out += "[]";
        return;
      }
      // Scalar-only arrays render inline; nested ones get a line per element.
      if (is_scalar_array(v)) {
        out.push_back('[');
        for (std::size_t i = 0; i < v.array.size(); ++i) {
          if (i) out += ", ";
          serialize_value(out, v.array[i], indent);
        }
        out.push_back(']');
        return;
      }
      out += "[\n";
      for (std::size_t i = 0; i < v.array.size(); ++i) {
        out += pad_in;
        serialize_value(out, v.array[i], indent + 1);
        if (i + 1 < v.array.size()) out.push_back(',');
        out.push_back('\n');
      }
      out += pad + "]";
      return;
    }
    case JsonValue::Type::kObject: {
      if (v.object.empty()) {
        out += "{}";
        return;
      }
      out += "{\n";
      for (std::size_t i = 0; i < v.object.size(); ++i) {
        out += pad_in;
        append_quoted(out, v.object[i].first);
        out += ": ";
        serialize_value(out, v.object[i].second, indent + 1);
        if (i + 1 < v.object.size()) out.push_back(',');
        out.push_back('\n');
      }
      out += pad + "}";
      return;
    }
  }
}

}  // namespace

std::string json_serialize(const JsonValue& value) {
  std::string out;
  serialize_value(out, value, 0);
  out.push_back('\n');
  return out;
}

// --- unit-tagged scalars --------------------------------------------------

namespace {

/// Split "<number><suffix>" and return the suffix. The numeric part is
/// held to a strict `digits[.digits]` grammar (no sign, whitespace, hex,
/// or exponent — strtod alone would accept all of those), matching the
/// strictness of the JSON layer. Throws kBadValue when it is missing or
/// malformed.
double split_unit(const std::string& text, const std::string& field, std::string& suffix) {
  std::size_t i = 0;
  while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
  const std::size_t int_digits = i;
  if (i < text.size() && text[i] == '.') {
    ++i;
    const std::size_t frac_start = i;
    while (i < text.size() && std::isdigit(static_cast<unsigned char>(text[i]))) ++i;
    if (i == frac_start)
      fail(SpecError::Code::kBadValue, field, 0, "malformed value '" + text + "'");
  }
  if (int_digits == 0)
    fail(SpecError::Code::kBadValue, field, 0, "malformed value '" + text + "'");
  const double v = std::strtod(text.substr(0, i).c_str(), nullptr);
  if (!std::isfinite(v))
    fail(SpecError::Code::kBadValue, field, 0, "malformed value '" + text + "'");
  suffix.assign(text, i, std::string::npos);
  return v;
}

}  // namespace

sim::Time parse_time(const std::string& text, const std::string& field) {
  std::string suffix;
  const double v = split_unit(text, field, suffix);
  double ns_per_unit = 0;
  if (suffix == "ns") ns_per_unit = 1;
  else if (suffix == "us") ns_per_unit = 1e3;
  else if (suffix == "ms") ns_per_unit = 1e6;
  else if (suffix == "s") ns_per_unit = 1e9;
  else
    fail(SpecError::Code::kBadValue, field, 0,
         "bad time unit in '" + text + "' (expected ns, us, ms, or s)");
  const double ns = v * ns_per_unit;
  if (ns > 9.2e18)
    fail(SpecError::Code::kBadValue, field, 0, "time '" + text + "' out of range");
  return sim::Time::nanoseconds(static_cast<std::int64_t>(ns + 0.5));
}

std::string format_time(sim::Time t) {
  const std::int64_t ns = t.nanoseconds_count();
  char buf[40];
  if (ns == 0) {
    return "0s";
  } else if (ns % 1'000'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%" PRId64 "s", ns / 1'000'000'000);
  } else if (ns % 1'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%" PRId64 "ms", ns / 1'000'000);
  } else if (ns % 1'000 == 0) {
    std::snprintf(buf, sizeof buf, "%" PRId64 "us", ns / 1'000);
  } else {
    std::snprintf(buf, sizeof buf, "%" PRId64 "ns", ns);
  }
  return buf;
}

net::DataRate parse_rate(const std::string& text, const std::string& field) {
  std::string suffix;
  const double v = split_unit(text, field, suffix);
  double bps_per_unit = 0;
  if (suffix == "bps") bps_per_unit = 1;
  else if (suffix == "kbps") bps_per_unit = 1e3;
  else if (suffix == "mbps") bps_per_unit = 1e6;
  else if (suffix == "gbps") bps_per_unit = 1e9;
  else
    fail(SpecError::Code::kBadValue, field, 0,
         "bad rate unit in '" + text + "' (expected bps, kbps, mbps, or gbps)");
  const double bps = v * bps_per_unit;
  if (bps < 1 || bps > 1.8e19)
    fail(SpecError::Code::kBadValue, field, 0, "rate '" + text + "' out of range");
  return net::DataRate::bps(static_cast<std::uint64_t>(bps + 0.5));
}

std::string format_rate(net::DataRate rate) {
  const std::uint64_t bps = rate.bits_per_second();
  char buf[40];
  if (bps != 0 && bps % 1'000'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%" PRIu64 "gbps", bps / 1'000'000'000);
  } else if (bps != 0 && bps % 1'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%" PRIu64 "mbps", bps / 1'000'000);
  } else if (bps != 0 && bps % 1'000 == 0) {
    std::snprintf(buf, sizeof buf, "%" PRIu64 "kbps", bps / 1'000);
  } else {
    std::snprintf(buf, sizeof buf, "%" PRIu64 "bps", bps);
  }
  return buf;
}

// --- strict object reader -------------------------------------------------

namespace {

/// Wraps one JSON object for schema parsing: every key must be consumed by
/// opt()/req() before finish(), so typos ("ifq_pakcets") fail loudly with
/// kUnknownField instead of silently running the default.
class ObjectReader {
 public:
  ObjectReader(const JsonValue& v, std::string path) : v_{v}, path_{std::move(path)} {
    if (v.type != JsonValue::Type::kObject)
      fail(SpecError::Code::kWrongType, path_, v.line, "expected an object");
  }

  [[nodiscard]] const JsonValue* opt(std::string_view key) {
    consumed_.insert(std::string{key});
    return v_.find(key);
  }

  [[nodiscard]] const JsonValue& req(std::string_view key) {
    const JsonValue* v = opt(key);
    if (!v)
      fail(SpecError::Code::kMissingField, path_of(key), v_.line,
           "missing required field");
    return *v;
  }

  [[nodiscard]] std::string path_of(std::string_view key) const { return sub(path_, key); }

  void finish() const {
    for (const auto& [key, value] : v_.object) {
      if (!consumed_.count(key))
        fail(SpecError::Code::kUnknownField, sub(path_, key), value.line,
             "unknown field \"" + key + "\"");
    }
  }

 private:
  const JsonValue& v_;
  std::string path_;
  std::set<std::string, std::less<>> consumed_;
};

template <typename T>
[[nodiscard]] T as_checked_unsigned(const JsonValue& v, const std::string& field) {
  const std::uint64_t raw = v.as_u64(field);
  if (raw > std::numeric_limits<T>::max())
    fail(SpecError::Code::kBadValue, field, v.line, "value out of range");
  return static_cast<T>(raw);
}

// --- schema: parse --------------------------------------------------------

void parse_red_options(const JsonValue& v, const std::string& path, net::RedQueue::Options& red) {
  ObjectReader r{v, path};
  if (const auto* x = r.opt("min_threshold"))
    red.min_threshold = x->as_double(r.path_of("min_threshold"));
  if (const auto* x = r.opt("max_threshold"))
    red.max_threshold = x->as_double(r.path_of("max_threshold"));
  if (const auto* x = r.opt("max_drop_probability"))
    red.max_drop_probability = x->as_double(r.path_of("max_drop_probability"));
  if (const auto* x = r.opt("queue_weight"))
    red.queue_weight = x->as_double(r.path_of("queue_weight"));
  r.finish();
}

void parse_codel_options(const JsonValue& v, const std::string& path,
                         net::CodelQueue::Options& codel) {
  ObjectReader r{v, path};
  if (const auto* x = r.opt("target"))
    codel.target = parse_time(x->as_string(r.path_of("target")), r.path_of("target"));
  if (const auto* x = r.opt("interval"))
    codel.interval = parse_time(x->as_string(r.path_of("interval")), r.path_of("interval"));
  r.finish();
}

DeviceSpec parse_device(const JsonValue& v, const std::string& path) {
  ObjectReader r{v, path};
  DeviceSpec d;
  if (const auto* x = r.opt("rate"))
    d.rate = parse_rate(x->as_string(r.path_of("rate")), r.path_of("rate"));
  if (const auto* x = r.opt("ifq_packets"))
    d.ifq_packets = as_checked_unsigned<std::size_t>(*x, r.path_of("ifq_packets"));
  if (const auto* x = r.opt("qdisc")) {
    const std::string& q = x->as_string(r.path_of("qdisc"));
    if (q == "droptail") d.qdisc = QueueDiscipline::kDropTail;
    else if (q == "red") d.qdisc = QueueDiscipline::kRed;
    else if (q == "codel") d.qdisc = QueueDiscipline::kCodel;
    else
      fail(SpecError::Code::kBadValue, r.path_of("qdisc"), x->line,
           "unknown qdisc '" + q + "' (expected \"droptail\", \"red\", or \"codel\")");
  }
  if (const auto* x = r.opt("red")) {
    if (d.qdisc != QueueDiscipline::kRed)
      fail(SpecError::Code::kBadValue, r.path_of("red"), x->line,
           "red options require \"qdisc\": \"red\"");
    parse_red_options(*x, r.path_of("red"), d.red);
  }
  if (const auto* x = r.opt("codel")) {
    if (d.qdisc != QueueDiscipline::kCodel)
      fail(SpecError::Code::kBadValue, r.path_of("codel"), x->line,
           "codel options require \"qdisc\": \"codel\"");
    parse_codel_options(*x, r.path_of("codel"), d.codel);
  }
  if (const auto* x = r.opt("ecn_threshold"))
    d.ecn_threshold = as_checked_unsigned<std::size_t>(*x, r.path_of("ecn_threshold"));
  if (const auto* x = r.opt("name")) d.name = x->as_string(r.path_of("name"));
  r.finish();
  return d;
}

LinkSpec parse_link(const JsonValue& v, const std::string& path) {
  ObjectReader r{v, path};
  LinkSpec l;
  l.a = r.req("a").as_string(r.path_of("a"));
  l.b = r.req("b").as_string(r.path_of("b"));
  if (const auto* x = r.opt("delay"))
    l.delay = parse_time(x->as_string(r.path_of("delay")), r.path_of("delay"));
  if (const auto* x = r.opt("a_dev")) l.a_dev = parse_device(*x, r.path_of("a_dev"));
  if (const auto* x = r.opt("b_dev")) l.b_dev = parse_device(*x, r.path_of("b_dev"));
  r.finish();
  return l;
}

void parse_rtt_options(const JsonValue& v, const std::string& path,
                       tcp::RttEstimator::Options& rtt) {
  ObjectReader r{v, path};
  if (const auto* x = r.opt("initial_rto"))
    rtt.initial_rto = parse_time(x->as_string(r.path_of("initial_rto")), r.path_of("initial_rto"));
  if (const auto* x = r.opt("min_rto"))
    rtt.min_rto = parse_time(x->as_string(r.path_of("min_rto")), r.path_of("min_rto"));
  if (const auto* x = r.opt("max_rto"))
    rtt.max_rto = parse_time(x->as_string(r.path_of("max_rto")), r.path_of("max_rto"));
  if (const auto* x = r.opt("alpha")) rtt.alpha = x->as_double(r.path_of("alpha"));
  if (const auto* x = r.opt("beta")) rtt.beta = x->as_double(r.path_of("beta"));
  if (const auto* x = r.opt("k"))
    rtt.k = static_cast<int>(x->as_i64(r.path_of("k")));
  r.finish();
}

void parse_sender_options(const JsonValue& v, const std::string& path,
                          tcp::TcpSender::Options& o) {
  ObjectReader r{v, path};
  if (const auto* x = r.opt("mss"))
    o.mss = as_checked_unsigned<std::uint32_t>(*x, r.path_of("mss"));
  if (const auto* x = r.opt("initial_seq"))
    o.initial_seq = as_checked_unsigned<std::uint32_t>(*x, r.path_of("initial_seq"));
  if (const auto* x = r.opt("rwnd_limit_bytes"))
    o.rwnd_limit_bytes = x->as_u64(r.path_of("rwnd_limit_bytes"));
  if (const auto* x = r.opt("stall_retry_delay"))
    o.stall_retry_delay =
        parse_time(x->as_string(r.path_of("stall_retry_delay")), r.path_of("stall_retry_delay"));
  if (const auto* x = r.opt("enable_sack")) o.enable_sack = x->as_bool(r.path_of("enable_sack"));
  if (const auto* x = r.opt("cwnd_validation"))
    o.cwnd_validation = x->as_bool(r.path_of("cwnd_validation"));
  if (const auto* x = r.opt("trace_cwnd")) o.trace_cwnd = x->as_bool(r.path_of("trace_cwnd"));
  if (const auto* x = r.opt("trace_stalls"))
    o.trace_stalls = x->as_bool(r.path_of("trace_stalls"));
  if (const auto* x = r.opt("rtt")) parse_rtt_options(*x, r.path_of("rtt"), o.rtt);
  r.finish();
}

void parse_receiver_options(const JsonValue& v, const std::string& path,
                            tcp::TcpReceiver::Options& o) {
  ObjectReader r{v, path};
  if (const auto* x = r.opt("initial_seq"))
    o.initial_seq = as_checked_unsigned<std::uint32_t>(*x, r.path_of("initial_seq"));
  if (const auto* x = r.opt("advertised_window"))
    o.advertised_window = as_checked_unsigned<std::uint32_t>(*x, r.path_of("advertised_window"));
  if (const auto* x = r.opt("ack_every"))
    o.ack_every = static_cast<int>(x->as_i64(r.path_of("ack_every")));
  if (const auto* x = r.opt("delayed_ack_timeout"))
    o.delayed_ack_timeout = parse_time(x->as_string(r.path_of("delayed_ack_timeout")),
                                       r.path_of("delayed_ack_timeout"));
  if (const auto* x = r.opt("enable_sack")) o.enable_sack = x->as_bool(r.path_of("enable_sack"));
  if (const auto* x = r.opt("quickack_segments"))
    o.quickack_segments = x->as_u64(r.path_of("quickack_segments"));
  r.finish();
}

void parse_fluid_options(const JsonValue& v, const std::string& path, net::FluidOptions& o) {
  ObjectReader r{v, path};
  if (const auto* x = r.opt("initial_rate"))
    o.initial_rate = parse_rate(x->as_string(r.path_of("initial_rate")), r.path_of("initial_rate"));
  if (const auto* x = r.opt("peak_rate"))
    o.peak_rate = parse_rate(x->as_string(r.path_of("peak_rate")), r.path_of("peak_rate"));
  if (const auto* x = r.opt("stride"))
    o.stride = parse_time(x->as_string(r.path_of("stride")), r.path_of("stride"));
  if (const auto* x = r.opt("packet_bytes"))
    o.packet_bytes = as_checked_unsigned<std::uint32_t>(*x, r.path_of("packet_bytes"));
  if (const auto* x = r.opt("rtt"))
    o.rtt = parse_time(x->as_string(r.path_of("rtt")), r.path_of("rtt"));
  if (const auto* x = r.opt("decrease")) {
    const std::string field = r.path_of("decrease");
    o.decrease = x->as_double(field);
    if (o.decrease <= 0.0 || o.decrease >= 1.0)
      fail(SpecError::Code::kBadValue, field, x->line, "decrease factor must be in (0, 1)");
  }
  r.finish();
}

FlowSpec parse_flow(const JsonValue& v, const std::string& path, std::string& cc) {
  ObjectReader r{v, path};
  FlowSpec f;
  f.src = r.req("src").as_string(r.path_of("src"));
  f.dst = r.req("dst").as_string(r.path_of("dst"));
  if (const auto* x = r.opt("id"))
    f.flow_id = as_checked_unsigned<std::uint32_t>(*x, r.path_of("id"));
  if (const auto* x = r.opt("start"))
    f.start = parse_time(x->as_string(r.path_of("start")), r.path_of("start"));
  if (const auto* x = r.opt("model")) {
    const std::string& m = x->as_string(r.path_of("model"));
    if (m == "packet") f.model = TrafficModel::kPacket;
    else if (m == "fluid") f.model = TrafficModel::kFluid;
    else
      fail(SpecError::Code::kBadValue, r.path_of("model"), x->line,
           "unknown traffic model '" + m + "' (expected \"packet\" or \"fluid\")");
  }
  if (f.model == TrafficModel::kFluid) {
    // A fluid aggregate has no TCP machinery: reject the packet-only
    // fields outright instead of silently ignoring them.
    for (const char* key : {"cc", "ecn", "sender", "receiver", "web100"}) {
      if (const auto* x = r.opt(key))
        fail(SpecError::Code::kBadValue, r.path_of(key), x->line,
             std::string{"\""} + key + "\" is packet-only; a fluid flow takes its "
             "dynamics from \"fluid\"");
    }
    if (const auto* x = r.opt("fluid")) parse_fluid_options(*x, r.path_of("fluid"), f.fluid);
    cc = "reno";  // placeholder; never consulted for fluid flows
    r.finish();
    return f;
  }
  if (const auto* x = r.opt("fluid"))
    fail(SpecError::Code::kBadValue, r.path_of("fluid"), x->line,
         "fluid options require \"model\": \"fluid\"");
  cc = "reno";
  if (const auto* x = r.opt("cc")) {
    cc = x->as_string(r.path_of("cc"));
    try {
      (void)factory_by_name(cc);
    } catch (const std::invalid_argument&) {
      std::string known;
      for (const auto& n : variant_names()) known += (known.empty() ? "" : ", ") + n;
      fail(SpecError::Code::kBadValue, r.path_of("cc"), x->line,
           "unknown congestion-control variant '" + cc + "' (known: " + known + ")");
    }
  }
  if (const auto* x = r.opt("ecn")) f.ecn = x->as_bool(r.path_of("ecn"));
  if (const auto* x = r.opt("sender")) parse_sender_options(*x, r.path_of("sender"), f.sender);
  if (const auto* x = r.opt("receiver"))
    parse_receiver_options(*x, r.path_of("receiver"), f.receiver);
  if (const auto* x = r.opt("web100")) {
    ObjectReader w{*x, r.path_of("web100")};
    f.web100 = true;
    if (const auto* p = w.opt("poll"))
      f.web100_poll_period = parse_time(p->as_string(w.path_of("poll")), w.path_of("poll"));
    w.finish();
  }
  r.finish();
  return f;
}

SweepSpec parse_sweep(const JsonValue& v, const std::string& path) {
  ObjectReader r{v, path};
  SweepSpec sweep;
  if (const auto* x = r.opt("mode")) {
    const std::string& m = x->as_string(r.path_of("mode"));
    if (m == "grid") sweep.mode = SweepSpec::Mode::kGrid;
    else if (m == "zip") sweep.mode = SweepSpec::Mode::kZip;
    else
      fail(SpecError::Code::kBadValue, r.path_of("mode"), x->line,
           "unknown sweep mode '" + m + "' (expected \"grid\" or \"zip\")");
  }
  const JsonValue& axes = r.req("axes");
  if (!axes.is_array())
    fail(SpecError::Code::kWrongType, r.path_of("axes"), axes.line, "expected an array");
  for (std::size_t i = 0; i < axes.array.size(); ++i) {
    const std::string axis_path = idx(r.path_of("axes"), i);
    ObjectReader a{axes.array[i], axis_path};
    SweepAxis axis;
    axis.field = a.req("field").as_string(sub(axis_path, "field"));
    const JsonValue& values = a.req("values");
    if (!values.is_array())
      fail(SpecError::Code::kWrongType, sub(axis_path, "values"), values.line,
           "expected an array");
    if (values.array.empty())
      fail(SpecError::Code::kBadSweep, sub(axis_path, "values"), values.line,
           "sweep axis has no values");
    for (const auto& value : values.array) {
      if (value.is_array() || value.is_object())
        fail(SpecError::Code::kBadSweep, sub(axis_path, "values"), value.line,
             "sweep values must be scalars");
      axis.values.push_back(value);
    }
    a.finish();
    sweep.axes.push_back(std::move(axis));
  }
  if (sweep.mode == SweepSpec::Mode::kZip && !sweep.axes.empty()) {
    const std::size_t len = sweep.axes.front().values.size();
    for (const auto& axis : sweep.axes) {
      if (axis.values.size() != len)
        fail(SpecError::Code::kBadSweep, sub(path, "axes"), v.line,
             "zip sweep axes must have equal lengths (axis '" +
                 sweep.axes.front().field + "' has " + std::to_string(len) + ", axis '" +
                 axis.field + "' has " + std::to_string(axis.values.size()) + ")");
    }
  }
  r.finish();
  return sweep;
}

// --- schema: serialize ----------------------------------------------------

JsonValue red_to_json(const net::RedQueue::Options& red) {
  const net::RedQueue::Options def{};
  JsonValue o = JsonValue::make_object();
  if (red.min_threshold != def.min_threshold)
    o.set("min_threshold", JsonValue::make_number(red.min_threshold));
  if (red.max_threshold != def.max_threshold)
    o.set("max_threshold", JsonValue::make_number(red.max_threshold));
  if (red.max_drop_probability != def.max_drop_probability)
    o.set("max_drop_probability", JsonValue::make_number(red.max_drop_probability));
  if (red.queue_weight != def.queue_weight)
    o.set("queue_weight", JsonValue::make_number(red.queue_weight));
  return o;
}

JsonValue codel_to_json(const net::CodelQueue::Options& codel) {
  const net::CodelQueue::Options def{};
  JsonValue o = JsonValue::make_object();
  if (codel.target != def.target)
    o.set("target", JsonValue::make_string(format_time(codel.target)));
  if (codel.interval != def.interval)
    o.set("interval", JsonValue::make_string(format_time(codel.interval)));
  return o;
}

JsonValue device_to_json(const DeviceSpec& d) {
  const DeviceSpec def{};
  JsonValue o = JsonValue::make_object();
  if (d.rate != def.rate) o.set("rate", JsonValue::make_string(format_rate(d.rate)));
  if (d.ifq_packets != def.ifq_packets)
    o.set("ifq_packets", JsonValue::make_number(static_cast<std::uint64_t>(d.ifq_packets)));
  if (d.qdisc == QueueDiscipline::kRed) {
    o.set("qdisc", JsonValue::make_string("red"));
    JsonValue red = red_to_json(d.red);
    if (!red.object.empty()) o.set("red", std::move(red));
  } else if (d.qdisc == QueueDiscipline::kCodel) {
    o.set("qdisc", JsonValue::make_string("codel"));
    JsonValue codel = codel_to_json(d.codel);
    if (!codel.object.empty()) o.set("codel", std::move(codel));
  }
  if (d.ecn_threshold != def.ecn_threshold)
    o.set("ecn_threshold",
          JsonValue::make_number(static_cast<std::uint64_t>(d.ecn_threshold)));
  if (!d.name.empty()) o.set("name", JsonValue::make_string(d.name));
  return o;
}

JsonValue link_to_json(const LinkSpec& l) {
  JsonValue o = JsonValue::make_object();
  o.set("a", JsonValue::make_string(l.a));
  o.set("b", JsonValue::make_string(l.b));
  o.set("delay", JsonValue::make_string(format_time(l.delay)));
  JsonValue a_dev = device_to_json(l.a_dev);
  if (!a_dev.object.empty()) o.set("a_dev", std::move(a_dev));
  JsonValue b_dev = device_to_json(l.b_dev);
  if (!b_dev.object.empty()) o.set("b_dev", std::move(b_dev));
  return o;
}

JsonValue rtt_to_json(const tcp::RttEstimator::Options& rtt) {
  const tcp::RttEstimator::Options def{};
  JsonValue o = JsonValue::make_object();
  if (rtt.initial_rto != def.initial_rto)
    o.set("initial_rto", JsonValue::make_string(format_time(rtt.initial_rto)));
  if (rtt.min_rto != def.min_rto)
    o.set("min_rto", JsonValue::make_string(format_time(rtt.min_rto)));
  if (rtt.max_rto != def.max_rto)
    o.set("max_rto", JsonValue::make_string(format_time(rtt.max_rto)));
  if (rtt.alpha != def.alpha) o.set("alpha", JsonValue::make_number(rtt.alpha));
  if (rtt.beta != def.beta) o.set("beta", JsonValue::make_number(rtt.beta));
  if (rtt.k != def.k) o.set("k", JsonValue::make_number(static_cast<std::int64_t>(rtt.k)));
  return o;
}

JsonValue sender_to_json(const tcp::TcpSender::Options& o) {
  const tcp::TcpSender::Options def{};
  JsonValue j = JsonValue::make_object();
  if (o.mss != def.mss) j.set("mss", JsonValue::make_number(static_cast<std::uint64_t>(o.mss)));
  if (o.initial_seq != def.initial_seq)
    j.set("initial_seq", JsonValue::make_number(static_cast<std::uint64_t>(o.initial_seq)));
  if (o.rwnd_limit_bytes != def.rwnd_limit_bytes)
    j.set("rwnd_limit_bytes", JsonValue::make_number(o.rwnd_limit_bytes));
  if (o.stall_retry_delay != def.stall_retry_delay)
    j.set("stall_retry_delay", JsonValue::make_string(format_time(o.stall_retry_delay)));
  if (o.enable_sack != def.enable_sack) j.set("enable_sack", JsonValue::make_bool(o.enable_sack));
  if (o.cwnd_validation != def.cwnd_validation)
    j.set("cwnd_validation", JsonValue::make_bool(o.cwnd_validation));
  if (o.trace_cwnd != def.trace_cwnd) j.set("trace_cwnd", JsonValue::make_bool(o.trace_cwnd));
  if (o.trace_stalls != def.trace_stalls)
    j.set("trace_stalls", JsonValue::make_bool(o.trace_stalls));
  JsonValue rtt = rtt_to_json(o.rtt);
  if (!rtt.object.empty()) j.set("rtt", std::move(rtt));
  return j;
}

JsonValue receiver_to_json(const tcp::TcpReceiver::Options& o) {
  const tcp::TcpReceiver::Options def{};
  JsonValue j = JsonValue::make_object();
  if (o.initial_seq != def.initial_seq)
    j.set("initial_seq", JsonValue::make_number(static_cast<std::uint64_t>(o.initial_seq)));
  if (o.advertised_window != def.advertised_window)
    j.set("advertised_window",
          JsonValue::make_number(static_cast<std::uint64_t>(o.advertised_window)));
  if (o.ack_every != def.ack_every)
    j.set("ack_every", JsonValue::make_number(static_cast<std::int64_t>(o.ack_every)));
  if (o.delayed_ack_timeout != def.delayed_ack_timeout)
    j.set("delayed_ack_timeout", JsonValue::make_string(format_time(o.delayed_ack_timeout)));
  if (o.enable_sack != def.enable_sack) j.set("enable_sack", JsonValue::make_bool(o.enable_sack));
  if (o.quickack_segments != def.quickack_segments)
    j.set("quickack_segments", JsonValue::make_number(o.quickack_segments));
  return j;
}

JsonValue fluid_to_json(const net::FluidOptions& o) {
  const net::FluidOptions def{};
  JsonValue j = JsonValue::make_object();
  if (o.initial_rate != def.initial_rate)
    j.set("initial_rate", JsonValue::make_string(format_rate(o.initial_rate)));
  if (o.peak_rate != def.peak_rate)
    j.set("peak_rate", JsonValue::make_string(format_rate(o.peak_rate)));
  if (o.stride != def.stride) j.set("stride", JsonValue::make_string(format_time(o.stride)));
  if (o.packet_bytes != def.packet_bytes)
    j.set("packet_bytes", JsonValue::make_number(static_cast<std::uint64_t>(o.packet_bytes)));
  if (o.rtt != def.rtt) j.set("rtt", JsonValue::make_string(format_time(o.rtt)));
  if (o.decrease != def.decrease) j.set("decrease", JsonValue::make_number(o.decrease));
  return j;
}

JsonValue flow_to_json(const FlowSpec& f, const std::string& cc) {
  JsonValue o = JsonValue::make_object();
  o.set("src", JsonValue::make_string(f.src));
  o.set("dst", JsonValue::make_string(f.dst));
  if (f.flow_id != 0)
    o.set("id", JsonValue::make_number(static_cast<std::uint64_t>(f.flow_id)));
  if (f.start) o.set("start", JsonValue::make_string(format_time(*f.start)));
  if (f.model == TrafficModel::kFluid) {
    o.set("model", JsonValue::make_string("fluid"));
    JsonValue fluid = fluid_to_json(f.fluid);
    if (!fluid.object.empty()) o.set("fluid", std::move(fluid));
    return o;
  }
  o.set("cc", JsonValue::make_string(cc));
  if (f.ecn) o.set("ecn", JsonValue::make_bool(true));
  JsonValue sender = sender_to_json(f.sender);
  if (!sender.object.empty()) o.set("sender", std::move(sender));
  JsonValue receiver = receiver_to_json(f.receiver);
  if (!receiver.object.empty()) o.set("receiver", std::move(receiver));
  if (f.web100) {
    JsonValue w = JsonValue::make_object();
    if (f.web100_poll_period != FlowSpec{}.web100_poll_period)
      w.set("poll", JsonValue::make_string(format_time(f.web100_poll_period)));
    o.set("web100", std::move(w));
  }
  return o;
}

[[nodiscard]] std::optional<sim::QueueBackend> parse_backend_name(const JsonValue& x,
                                                                  const std::string& field) {
  const std::string& b = x.as_string(field);
  if (b == "binary_heap") return sim::QueueBackend::kBinaryHeap;
  if (b == "calendar_queue") return sim::QueueBackend::kCalendarQueue;
  if (b == "auto") return std::nullopt;
  fail(SpecError::Code::kBadValue, field, x.line,
       "unknown backend '" + b +
           "' (expected \"binary_heap\", \"calendar_queue\", or \"auto\")");
}

[[nodiscard]] ExecutionPolicy parse_execution(const JsonValue& v, const std::string& path) {
  ObjectReader r{v, path};
  ExecutionPolicy policy;
  if (const auto* x = r.opt("backend"))
    policy.backend = parse_backend_name(*x, r.path_of("backend"));
  if (const auto* x = r.opt("partitions")) {
    const std::string field = r.path_of("partitions");
    policy.partitions = static_cast<std::size_t>(x->as_u64(field));
    if (policy.partitions == 0)
      fail(SpecError::Code::kBadValue, field, x->line, "partitions must be >= 1");
  }
  if (const auto* x = r.opt("strategy")) {
    const std::string field = r.path_of("strategy");
    const std::string& s = x->as_string(field);
    if (s == "auto") policy.strategy = PartitionStrategy::kAuto;
    else if (s == "block") policy.strategy = PartitionStrategy::kBlock;
    else
      fail(SpecError::Code::kBadValue, field, x->line,
           "unknown strategy '" + s + "' (expected \"auto\" or \"block\")");
  }
  if (const auto* x = r.opt("threads"))
    policy.threads = static_cast<std::size_t>(x->as_u64(r.path_of("threads")));
  if (const auto* x = r.opt("deterministic_merge"))
    policy.deterministic_merge = x->as_bool(r.path_of("deterministic_merge"));
  r.finish();
  return policy;
}

/// Defaults elided field-by-field so a spec that only sets `partitions`
/// round-trips as exactly {"partitions": N}.
[[nodiscard]] JsonValue execution_to_json(const ExecutionPolicy& policy) {
  const ExecutionPolicy def{};
  JsonValue o = JsonValue::make_object();
  if (policy.backend)
    o.set("backend", JsonValue::make_string(*policy.backend == sim::QueueBackend::kBinaryHeap
                                                ? "binary_heap"
                                                : "calendar_queue"));
  if (policy.partitions != def.partitions)
    o.set("partitions",
          JsonValue::make_number(static_cast<std::uint64_t>(policy.partitions)));
  if (policy.strategy != def.strategy) o.set("strategy", JsonValue::make_string("block"));
  if (policy.threads != def.threads)
    o.set("threads", JsonValue::make_number(static_cast<std::uint64_t>(policy.threads)));
  if (policy.deterministic_merge != def.deterministic_merge)
    o.set("deterministic_merge", JsonValue::make_bool(policy.deterministic_merge));
  return o;
}

JsonValue sweep_to_json(const SweepSpec& sweep) {
  JsonValue o = JsonValue::make_object();
  if (sweep.mode == SweepSpec::Mode::kZip) o.set("mode", JsonValue::make_string("zip"));
  JsonValue axes = JsonValue::make_array();
  for (const auto& axis : sweep.axes) {
    JsonValue a = JsonValue::make_object();
    a.set("field", JsonValue::make_string(axis.field));
    JsonValue values = JsonValue::make_array();
    values.array = axis.values;
    a.set("values", std::move(values));
    axes.array.push_back(std::move(a));
  }
  o.set("axes", std::move(axes));
  return o;
}

}  // namespace

// --- ScenarioSpec parse/serialize -----------------------------------------

std::size_t SweepSpec::point_count() const {
  if (axes.empty()) return 1;
  if (mode == Mode::kZip) return axes.front().values.size();
  std::size_t count = 1;
  for (const auto& axis : axes) count *= axis.values.size();
  return count;
}

ScenarioSpec parse_scenario_spec(const JsonValue& document) {
  ObjectReader r{document, ""};
  ScenarioSpec s;
  s.name = "scenario";
  if (const auto* x = r.opt("name")) s.name = x->as_string("name");
  if (const auto* x = r.opt("seed")) s.topology.seed = x->as_u64("seed");
  // Top-level "backend" is the deprecated alias for execution.backend; both
  // parse, and the builder resolves the precedence (execution wins).
  if (const auto* x = r.opt("backend"))
    s.topology.backend = parse_backend_name(*x, "backend");
  if (const auto* x = r.opt("execution"))
    s.topology.execution = parse_execution(*x, "execution");

  const JsonValue& nodes = r.req("nodes");
  if (!nodes.is_array())
    fail(SpecError::Code::kWrongType, "nodes", nodes.line, "expected an array");
  for (std::size_t i = 0; i < nodes.array.size(); ++i)
    s.topology.nodes.push_back(nodes.array[i].as_string(idx("nodes", i)));

  if (const auto* links = r.opt("links")) {
    if (!links->is_array())
      fail(SpecError::Code::kWrongType, "links", links->line, "expected an array");
    for (std::size_t i = 0; i < links->array.size(); ++i)
      s.topology.links.push_back(parse_link(links->array[i], idx("links", i)));
  }

  if (const auto* flows = r.opt("flows")) {
    if (!flows->is_array())
      fail(SpecError::Code::kWrongType, "flows", flows->line, "expected an array");
    for (std::size_t i = 0; i < flows->array.size(); ++i) {
      std::string cc;
      s.topology.flows.push_back(parse_flow(flows->array[i], idx("flows", i), cc));
      s.flow_cc.push_back(std::move(cc));
    }
  }

  if (const auto* run = r.opt("run")) {
    ObjectReader rr{*run, "run"};
    if (const auto* x = rr.opt("duration"))
      s.run.duration = parse_time(x->as_string("run.duration"), "run.duration");
    if (const auto* x = rr.opt("measure_start"))
      s.run.measure_start = parse_time(x->as_string("run.measure_start"), "run.measure_start");
    rr.finish();
  }

  if (const auto* sweep = r.opt("sweep")) s.sweep = parse_sweep(*sweep, "sweep");

  r.finish();
  return s;
}

ScenarioSpec parse_scenario_spec(std::string_view json_text) {
  return parse_scenario_spec(json_parse(json_text));
}

std::string read_spec_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("cannot open spec file: " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

ScenarioSpec load_scenario_spec(const std::string& path) {
  return parse_scenario_spec(read_spec_file(path));
}

void check_scenario_spec(const ScenarioSpec& spec) {
  validate_topology(spec.topology);
  const RouteTable routes = compute_routes(spec.topology);
  for (const auto& flow : spec.topology.flows) {
    const std::size_t src = *node_index(spec.topology, flow.src);
    const std::size_t dst = *node_index(spec.topology, flow.dst);
    if (!routes.reachable(src, dst))
      throw TopologyError(TopologyError::Code::kUnroutableFlow,
                          "topology: no path from '" + flow.src + "' to '" + flow.dst + "'");
  }
}

JsonValue scenario_spec_to_json(const ScenarioSpec& spec) {
  JsonValue root = JsonValue::make_object();
  if (spec.name != "scenario") root.set("name", JsonValue::make_string(spec.name));
  if (spec.topology.seed != TopologySpec{}.seed)
    root.set("seed", JsonValue::make_number(spec.topology.seed));
  if (spec.topology.backend) {
    root.set("backend",
             JsonValue::make_string(*spec.topology.backend == sim::QueueBackend::kBinaryHeap
                                        ? "binary_heap"
                                        : "calendar_queue"));
  }
  // Emitted only when non-default, so pre-execution specs (and all the
  // goldens) stay byte-identical through a round trip.
  if (!spec.topology.execution.is_default())
    root.set("execution", execution_to_json(spec.topology.execution));

  JsonValue nodes = JsonValue::make_array();
  for (const auto& n : spec.topology.nodes) nodes.array.push_back(JsonValue::make_string(n));
  root.set("nodes", std::move(nodes));

  if (!spec.topology.links.empty()) {
    JsonValue links = JsonValue::make_array();
    for (const auto& l : spec.topology.links) links.array.push_back(link_to_json(l));
    root.set("links", std::move(links));
  }

  if (!spec.topology.flows.empty()) {
    JsonValue flows = JsonValue::make_array();
    for (std::size_t i = 0; i < spec.topology.flows.size(); ++i) {
      const std::string cc = i < spec.flow_cc.size() ? spec.flow_cc[i] : "reno";
      flows.array.push_back(flow_to_json(spec.topology.flows[i], cc));
    }
    root.set("flows", std::move(flows));
  }

  const RunSpec run_def{};
  if (spec.run.duration != run_def.duration || spec.run.measure_start != run_def.measure_start) {
    JsonValue run = JsonValue::make_object();
    if (spec.run.duration != run_def.duration)
      run.set("duration", JsonValue::make_string(format_time(spec.run.duration)));
    if (spec.run.measure_start != run_def.measure_start)
      run.set("measure_start", JsonValue::make_string(format_time(spec.run.measure_start)));
    root.set("run", std::move(run));
  }

  if (!spec.sweep.empty()) root.set("sweep", sweep_to_json(spec.sweep));
  return root;
}

std::string serialize_scenario_spec(const ScenarioSpec& spec) {
  return json_serialize(scenario_spec_to_json(spec));
}

// --- sweep expansion ------------------------------------------------------

namespace {

/// One "name[3][0]"-style path segment.
struct PathSegment {
  std::string key;
  std::vector<std::size_t> indices;
};

[[nodiscard]] std::vector<PathSegment> parse_field_path(const std::string& path) {
  std::vector<PathSegment> segments;
  std::size_t i = 0;
  while (i < path.size()) {
    PathSegment seg;
    while (i < path.size() && path[i] != '.' && path[i] != '[') seg.key.push_back(path[i++]);
    if (seg.key.empty())
      fail(SpecError::Code::kBadSweep, path, 0, "malformed sweep field path");
    while (i < path.size() && path[i] == '[') {
      ++i;
      std::string digits;
      while (i < path.size() && std::isdigit(static_cast<unsigned char>(path[i])))
        digits.push_back(path[i++]);
      if (digits.empty() || i >= path.size() || path[i] != ']')
        fail(SpecError::Code::kBadSweep, path, 0, "malformed sweep field path");
      ++i;  // ']'
      seg.indices.push_back(static_cast<std::size_t>(std::stoull(digits)));
    }
    segments.push_back(std::move(seg));
    if (i < path.size()) {
      if (path[i] != '.')
        fail(SpecError::Code::kBadSweep, path, 0, "malformed sweep field path");
      ++i;
      if (i == path.size())
        fail(SpecError::Code::kBadSweep, path, 0, "malformed sweep field path");
    }
  }
  if (segments.empty())
    fail(SpecError::Code::kBadSweep, path, 0, "empty sweep field path");
  return segments;
}

/// Write `value` at `path` inside `document`. Every intermediate segment
/// must already exist; the final segment may create a new object key (so an
/// axis can sweep a field the base spec leaves at its default), but array
/// indices always have to resolve.
void set_at_path(JsonValue& document, const std::string& path, const JsonValue& value) {
  const auto segments = parse_field_path(path);
  JsonValue* at = &document;
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const PathSegment& seg = segments[s];
    const bool last = s + 1 == segments.size();
    JsonValue* next = at->find(seg.key);
    if (!next) {
      if (!at->is_object())
        fail(SpecError::Code::kBadSweep, path, 0,
             "sweep path does not resolve (no object at '" + seg.key + "')");
      if (last && seg.indices.empty()) {
        at->set(seg.key, value);
        return;
      }
      fail(SpecError::Code::kBadSweep, path, 0,
           "sweep path does not resolve (missing field '" + seg.key + "')");
    }
    at = next;
    for (const std::size_t index : seg.indices) {
      if (!at->is_array() || index >= at->array.size())
        fail(SpecError::Code::kBadSweep, path, 0,
             "sweep path does not resolve (bad index " + std::to_string(index) + " under '" +
                 seg.key + "')");
      at = &at->array[index];
    }
  }
  *at = value;
}

/// Render an axis value for table/label use: numbers and booleans as their
/// literal, strings unquoted.
[[nodiscard]] std::string scalar_text(const JsonValue& v) {
  switch (v.type) {
    case JsonValue::Type::kString:
      return v.string;
    case JsonValue::Type::kNumber:
      return v.number;
    case JsonValue::Type::kBool:
      return v.boolean ? "true" : "false";
    default:
      return "null";
  }
}

}  // namespace

std::vector<SweepPoint> expand_scenario_spec(const JsonValue& document) {
  if (document.type != JsonValue::Type::kObject)
    fail(SpecError::Code::kWrongType, "", document.line, "expected a JSON object");

  const JsonValue* sweep_json = document.find("sweep");
  if (!sweep_json) {
    SweepPoint point;
    point.spec = parse_scenario_spec(document);
    return {std::move(point)};
  }
  const SweepSpec sweep = parse_sweep(*sweep_json, "sweep");

  // The base document: everything except the sweep block.
  JsonValue base = JsonValue::make_object();
  base.line = document.line;
  for (const auto& [key, value] : document.object)
    if (key != "sweep") base.object.emplace_back(key, value);

  const std::size_t points = sweep.point_count();
  std::vector<SweepPoint> expanded;
  expanded.reserve(points);
  for (std::size_t p = 0; p < points; ++p) {
    // Map the flat point index to one index per axis: zip advances all axes
    // together; grid runs the last axis fastest (odometer order).
    std::vector<std::size_t> select(sweep.axes.size(), p);
    if (sweep.mode == SweepSpec::Mode::kGrid) {
      std::size_t rem = p;
      for (std::size_t a = sweep.axes.size(); a-- > 0;) {
        select[a] = rem % sweep.axes[a].values.size();
        rem /= sweep.axes[a].values.size();
      }
    }
    JsonValue point_doc = base;
    SweepPoint point;
    for (std::size_t a = 0; a < sweep.axes.size(); ++a) {
      const JsonValue& value = sweep.axes[a].values[select[a]];
      set_at_path(point_doc, sweep.axes[a].field, value);
      point.assignment.emplace_back(sweep.axes[a].field, scalar_text(value));
    }
    point.spec = parse_scenario_spec(point_doc);
    expanded.push_back(std::move(point));
  }
  return expanded;
}

std::vector<SweepPoint> expand_scenario_spec(std::string_view json_text) {
  return expand_scenario_spec(json_parse(json_text));
}

}  // namespace rss::scenario::spec
