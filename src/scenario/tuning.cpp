#include "scenario/tuning.hpp"

#include <vector>

#include "core/restricted_slow_start.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/wan_path.hpp"

namespace rss::scenario {

std::optional<control::TuningResult> tune_restricted_slow_start(const TuneOptions& options) {
  const auto experiment =
      [&options](double kp) -> std::vector<control::ResponseSample> {
    core::RestrictedSlowStart::Options rss_opt;
    rss_opt.setpoint_fraction = options.setpoint_fraction;
    rss_opt.gains = control::PidGains{kp, 0.0, 0.0};  // P-only probe
    rss_opt.min_increment_mss = -1.0;                 // symmetric authority
    rss_opt.max_increment_mss = 1.0;
    rss_opt.sample_period = options.controller_period;

    WanPath::Config cfg;
    cfg.path = options.path;
    cfg.enable_web100 = false;  // keep the probe lean
    WanPath wan{cfg, make_rss_factory(rss_opt)};

    // Record the process variable — IFQ occupancy — on a fixed grid,
    // discarding the slow-start ramp (see TuneOptions::warmup).
    std::vector<control::ResponseSample> response;
    response.reserve(static_cast<std::size_t>(options.duration / options.sample_period) + 1);
    wan.simulation().every(options.sample_period, [&](sim::Time now) {
      if (now >= options.warmup) {
        response.push_back(
            {now.to_seconds(), static_cast<double>(wan.nic().occupancy_packets())});
      }
      return true;
    });

    wan.run_bulk_transfer(sim::Time::zero(), options.duration);
    return response;
  };

  const control::ZieglerNicholsTuner tuner{options.tuner};
  return tuner.tune(experiment);
}

}  // namespace rss::scenario
