#pragma once

#include <functional>
#include <memory>

#include "core/config.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/simulation.hpp"
#include "tcp/congestion_control.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"
#include "web100/polling_agent.hpp"

namespace rss::scenario {

/// Factory for the congestion-control algorithm under test.
using CcFactory = std::function<std::unique_ptr<tcp::CongestionControl>()>;

/// The paper's testbed in a box (§4): a host whose 100 Mbps NIC (with a
/// 100-packet interface queue) is the path bottleneck, talking across a
/// 60 ms-RTT WAN to a fast receiver. One bulk TCP flow, Web100-style
/// polling of its MIB.
///
///     sender ── NIC(100 Mbps, IFQ 100) ══ 30 ms ══ NIC(1 Gbps) ── receiver
///
/// The sender NIC is where send-stalls happen; everything the paper
/// measures is observable through `sender().mib()` and `agent()`.
class WanPath {
 public:
  struct Config {
    core::CanonicalPath path{};
    std::uint64_t seed{1};
    /// Event-queue backend — purely a speed knob, pop order is backend-
    /// independent (parity-tested). The single-flow canonical path keeps
    /// only a window's worth of events pending, which bench_micro_substrate
    /// measures as heap territory; the calendar queue overtakes once
    /// thousands of events are in flight (see README "Choosing a
    /// QueueBackend" for the measured crossover).
    sim::QueueBackend backend{sim::QueueBackend::kBinaryHeap};
    std::uint32_t flow_id{1};
    std::size_t receiver_ifq_packets{1000};
    sim::Time web100_poll_period{sim::Time::milliseconds(100)};
    bool enable_web100{true};
    tcp::TcpReceiver::Options receiver{};  ///< flow/peer ids are overwritten
    tcp::TcpSender::Options sender{};      ///< flow/dst/mss are overwritten
  };

  WanPath(Config config, const CcFactory& cc_factory);

  /// Start an unbounded bulk transfer at `start` and run until `until`.
  void run_bulk_transfer(sim::Time start, sim::Time until);

  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] tcp::TcpSender& sender() { return *sender_; }
  [[nodiscard]] const tcp::TcpSender& sender() const { return *sender_; }
  [[nodiscard]] tcp::TcpReceiver& receiver() { return *receiver_; }
  [[nodiscard]] net::Node& sender_node() { return *sender_node_; }
  [[nodiscard]] net::Node& receiver_node() { return *receiver_node_; }
  /// The bottleneck NIC whose IFQ the paper's controller watches.
  [[nodiscard]] net::NetDevice& nic() { return *nic_; }
  [[nodiscard]] const net::NetDevice& nic() const { return *nic_; }
  [[nodiscard]] web100::PollingAgent* agent() { return agent_.get(); }
  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Throughput of the measured flow over [t0, t1] in Mbit/s, from
  /// cumulatively acknowledged bytes.
  [[nodiscard]] double goodput_mbps(sim::Time t0, sim::Time t1) const {
    return sender_->goodput_mbps(t0, t1);
  }

 private:
  Config cfg_;
  sim::Simulation sim_;
  std::unique_ptr<net::Node> sender_node_;
  std::unique_ptr<net::Node> receiver_node_;
  net::NetDevice* nic_{nullptr};
  std::unique_ptr<net::PointToPointLink> link_;
  std::unique_ptr<tcp::TcpReceiver> receiver_;
  std::unique_ptr<tcp::TcpSender> sender_;
  std::unique_ptr<web100::PollingAgent> agent_;
};

}  // namespace rss::scenario
