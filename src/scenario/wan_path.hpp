#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "core/config.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "scenario/builder.hpp"
#include "scenario/topology.hpp"
#include "sim/simulation.hpp"
#include "tcp/congestion_control.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"
#include "web100/polling_agent.hpp"

namespace rss::scenario {

/// The paper's testbed in a box (§4): a host whose 100 Mbps NIC (with a
/// 100-packet interface queue) is the path bottleneck, talking across a
/// 60 ms-RTT WAN to a fast receiver. One bulk TCP flow, Web100-style
/// polling of its MIB.
///
///     sender ── NIC(100 Mbps, IFQ 100) ══ 30 ms ══ NIC(1 Gbps) ── receiver
///
/// The sender NIC is where send-stalls happen; everything the paper
/// measures is observable through `sender().mib()` and `agent()`.
///
/// A preset over ScenarioBuilder: make_spec() emits the declarative
/// TopologySpec and this class is a thin named-accessor wrapper around the
/// built Scenario.
class WanPath {
 public:
  struct Config {
    core::CanonicalPath path{};
    std::uint64_t seed{1};
    /// Deprecated alias for execution.backend (kept so existing call sites
    /// and spec round-trips stay byte-identical; an explicitly set
    /// execution.backend wins). Event-queue backend — purely a speed knob,
    /// pop order is backend-independent (parity-tested). The single-flow
    /// canonical path keeps only a window's worth of events pending, which
    /// bench_micro_substrate measures as heap territory; the calendar queue
    /// overtakes once thousands of events are in flight (see README
    /// "Choosing a QueueBackend" for the measured crossover).
    sim::QueueBackend backend{sim::QueueBackend::kBinaryHeap};
    /// Full execution policy (backend, partitions, thread budget) — the
    /// preferred surface; see scenario::ExecutionPolicy.
    ExecutionPolicy execution{};
    std::uint32_t flow_id{1};
    std::size_t receiver_ifq_packets{1000};
    sim::Time web100_poll_period{sim::Time::milliseconds(100)};
    bool enable_web100{true};
    tcp::TcpReceiver::Options receiver{};  ///< flow/peer ids are overwritten
    tcp::TcpSender::Options sender{};      ///< flow/dst/mss are overwritten
  };

  /// The declarative description of this topology; customize it and build
  /// with ScenarioBuilder directly for variations the Config doesn't cover.
  [[nodiscard]] static TopologySpec make_spec(const Config& config);

  WanPath(Config config, const CcFactory& cc_factory);

  /// Start an unbounded bulk transfer at `start` and run until `until`.
  void run_bulk_transfer(sim::Time start, sim::Time until);

  [[nodiscard]] sim::Simulation& simulation() { return scenario_->simulation(); }
  [[nodiscard]] Scenario& scenario() { return *scenario_; }
  [[nodiscard]] tcp::TcpSender& sender() { return scenario_->sender(0); }
  [[nodiscard]] const tcp::TcpSender& sender() const { return scenario_->sender(0); }
  [[nodiscard]] tcp::TcpReceiver& receiver() { return scenario_->receiver(0); }
  [[nodiscard]] net::Node& sender_node() { return scenario_->node("sender"); }
  [[nodiscard]] net::Node& receiver_node() { return scenario_->node("receiver"); }
  /// The bottleneck NIC whose IFQ the paper's controller watches.
  [[nodiscard]] net::NetDevice& nic() { return scenario_->device("sender", "receiver"); }
  [[nodiscard]] const net::NetDevice& nic() const {
    return scenario_->device("sender", "receiver");
  }
  [[nodiscard]] web100::PollingAgent* agent() { return scenario_->agent(0); }
  [[nodiscard]] const Config& config() const { return cfg_; }

  /// Throughput of the measured flow over [t0, t1] in Mbit/s, from
  /// cumulatively acknowledged bytes.
  [[nodiscard]] double goodput_mbps(sim::Time t0, sim::Time t1) const {
    return scenario_->sender(0).goodput_mbps(t0, t1);
  }

 private:
  Config cfg_;
  std::unique_ptr<Scenario> scenario_;
};

}  // namespace rss::scenario
