#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "scenario/builder.hpp"
#include "scenario/topology.hpp"
#include "sim/simulation.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"

namespace rss::scenario {

/// Classic dumbbell: N senders behind a shared bottleneck router, N
/// receivers on the far side. Used for the multi-flow friendliness
/// experiments (EXT-FAIR) and for exercising *network* (router-queue)
/// congestion as opposed to the WanPath's *host* (IFQ) congestion.
///
///   S1 ─┐                              ┌─ R1
///   S2 ─┼── L ══ bottleneck, delay ══ R ┼─ R2
///   SN ─┘                              └─ RN
///
/// Per-flow congestion control is chosen by a factory taking the flow
/// index, so mixed-algorithm populations (e.g. one RSS flow among Renos)
/// are a one-liner.
///
/// A preset over ScenarioBuilder: make_spec() emits the declarative
/// TopologySpec (EXT-FAIR builds on it directly) and this class is a thin
/// named-accessor wrapper around the built Scenario.
class Dumbbell {
 public:
  /// Flow count at which backend auto-selection switches to the calendar
  /// queue — the measured crossover on bench_micro_substrate's host (see
  /// README "Choosing a QueueBackend"). Equivalent to the builder's
  /// generalized ScenarioBuilder::kCalendarQueuePendingEvents threshold:
  /// each dumbbell flow contributes ~5 pending events (2 timers + 3 hops).
  static constexpr std::size_t kCalendarQueueFlowThreshold = 32;

  struct Config {
    std::size_t flows{2};
    std::uint64_t seed{1};
    /// Deprecated alias for execution.backend (kept so existing call sites
    /// and spec round-trips stay byte-identical; an explicitly set
    /// execution.backend wins). Event-queue backend — purely a speed knob,
    /// pop order is backend-independent (parity-tested). Defaults to
    /// auto-selection from the measured crossover: the calendar queue wins
    /// once enough flows keep the pending set dense (bench_micro_substrate
    /// measures ~+12% at 32+ flows, -25% at 16), the binary heap wins
    /// below. Set explicitly to pin a backend.
    std::optional<sim::QueueBackend> backend{};
    /// Full execution policy (backend, partitions, thread budget) — the
    /// preferred surface; see scenario::ExecutionPolicy.
    ExecutionPolicy execution{};
    net::DataRate access_rate{net::DataRate::gbps(1)};
    net::DataRate bottleneck_rate{net::DataRate::mbps(100)};
    sim::Time access_delay{sim::Time::milliseconds(1)};
    sim::Time bottleneck_delay{sim::Time::milliseconds(28)};  ///< ~60 ms RTT total
    std::size_t sender_ifq_packets{100};      ///< per-host NIC queue
    std::size_t router_queue_packets{100};    ///< shared bottleneck queue
    std::uint32_t mss{1460};
    tcp::TcpSender::Options sender{};         ///< ids/mss overwritten per flow
    tcp::TcpReceiver::Options receiver{};     ///< ids overwritten per flow
  };

  /// Unified indexed factory type (kept as an alias for source compat).
  using PerFlowCcFactory = FlowCcFactory;

  /// The declarative description of this topology; customize it and build
  /// with ScenarioBuilder directly for variations the Config doesn't cover
  /// (staggered spec-declared starts, per-flow options, extra links).
  [[nodiscard]] static TopologySpec make_spec(const Config& config);

  Dumbbell(Config config, const PerFlowCcFactory& cc_factory);

  /// Start flow `i`'s unbounded bulk transfer at `start`.
  void start_flow(std::size_t i, sim::Time start) { scenario_->start_flow(i, start); }

  [[nodiscard]] sim::Simulation& simulation() { return scenario_->simulation(); }
  [[nodiscard]] Scenario& scenario() { return *scenario_; }
  [[nodiscard]] std::size_t flow_count() const { return scenario_->flow_count(); }
  [[nodiscard]] tcp::TcpSender& sender(std::size_t i) { return scenario_->sender(i); }
  [[nodiscard]] tcp::TcpReceiver& receiver(std::size_t i) { return scenario_->receiver(i); }
  [[nodiscard]] net::Node& left_router() { return scenario_->node("routerL"); }
  [[nodiscard]] net::Node& right_router() { return scenario_->node("routerR"); }
  /// The shared bottleneck egress device on the left router.
  [[nodiscard]] net::NetDevice& bottleneck() {
    return scenario_->device("routerL", "routerR");
  }

  /// Per-flow goodput over [t0, t1] (Mbit/s).
  [[nodiscard]] std::vector<double> goodputs_mbps(sim::Time t0, sim::Time t1) const {
    return scenario_->goodputs_mbps(t0, t1);
  }

 private:
  Config cfg_;
  std::unique_ptr<Scenario> scenario_;
};

}  // namespace rss::scenario
