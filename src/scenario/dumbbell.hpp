#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/simulation.hpp"
#include "scenario/wan_path.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"

namespace rss::scenario {

/// Classic dumbbell: N senders behind a shared bottleneck router, N
/// receivers on the far side. Used for the multi-flow friendliness
/// experiments (EXT-FAIR) and for exercising *network* (router-queue)
/// congestion as opposed to the WanPath's *host* (IFQ) congestion.
///
///   S1 ─┐                              ┌─ R1
///   S2 ─┼── L ══ bottleneck, delay ══ R ┼─ R2
///   SN ─┘                              └─ RN
///
/// Per-flow congestion control is chosen by a factory taking the flow
/// index, so mixed-algorithm populations (e.g. one RSS flow among Renos)
/// are a one-liner.
class Dumbbell {
 public:
  /// Flow count at which backend auto-selection switches to the calendar
  /// queue — the measured crossover on bench_micro_substrate's host (see
  /// README "Choosing a QueueBackend").
  static constexpr std::size_t kCalendarQueueFlowThreshold = 32;

  struct Config {
    std::size_t flows{2};
    std::uint64_t seed{1};
    /// Event-queue backend — purely a speed knob, pop order is backend-
    /// independent (parity-tested). Defaults to auto-selection from the
    /// measured crossover: the calendar queue wins once enough flows keep
    /// the pending set dense (bench_micro_substrate measures ~+12% at 32+
    /// flows, -25% at 16), the binary heap wins below. Set explicitly to
    /// pin a backend.
    std::optional<sim::QueueBackend> backend{};
    net::DataRate access_rate{net::DataRate::gbps(1)};
    net::DataRate bottleneck_rate{net::DataRate::mbps(100)};
    sim::Time access_delay{sim::Time::milliseconds(1)};
    sim::Time bottleneck_delay{sim::Time::milliseconds(28)};  ///< ~60 ms RTT total
    std::size_t sender_ifq_packets{100};      ///< per-host NIC queue
    std::size_t router_queue_packets{100};    ///< shared bottleneck queue
    std::uint32_t mss{1460};
    tcp::TcpSender::Options sender{};         ///< ids/mss overwritten per flow
    tcp::TcpReceiver::Options receiver{};     ///< ids overwritten per flow
  };

  using PerFlowCcFactory =
      std::function<std::unique_ptr<tcp::CongestionControl>(std::size_t flow_index)>;

  Dumbbell(Config config, const PerFlowCcFactory& cc_factory);

  /// Start flow `i`'s unbounded bulk transfer at `start`.
  void start_flow(std::size_t i, sim::Time start);

  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] std::size_t flow_count() const { return senders_.size(); }
  [[nodiscard]] tcp::TcpSender& sender(std::size_t i) { return *senders_.at(i); }
  [[nodiscard]] tcp::TcpReceiver& receiver(std::size_t i) { return *receivers_.at(i); }
  [[nodiscard]] net::Node& left_router() { return *left_router_; }
  [[nodiscard]] net::Node& right_router() { return *right_router_; }
  /// The shared bottleneck egress device on the left router.
  [[nodiscard]] net::NetDevice& bottleneck() { return *bottleneck_dev_; }

  /// Per-flow goodput over [t0, t1] (Mbit/s).
  [[nodiscard]] std::vector<double> goodputs_mbps(sim::Time t0, sim::Time t1) const;

 private:
  Config cfg_;
  sim::Simulation sim_;
  std::vector<std::unique_ptr<net::Node>> sender_nodes_;
  std::vector<std::unique_ptr<net::Node>> receiver_nodes_;
  std::unique_ptr<net::Node> left_router_;
  std::unique_ptr<net::Node> right_router_;
  net::NetDevice* bottleneck_dev_{nullptr};
  std::vector<std::unique_ptr<net::PointToPointLink>> links_;
  std::vector<std::unique_ptr<tcp::TcpSender>> senders_;
  std::vector<std::unique_ptr<tcp::TcpReceiver>> receivers_;
};

}  // namespace rss::scenario
