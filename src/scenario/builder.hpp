#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "scenario/topology.hpp"
#include "sim/simulation.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"
#include "web100/polling_agent.hpp"

namespace rss::scenario {

/// A built topology: the simulation plus every node, link, device and flow
/// endpoint the spec described, with lookup by the spec's names. Returned
/// by ScenarioBuilder::build; non-copyable and non-movable (everything
/// holds a Simulation&), so it travels as a unique_ptr.
class Scenario {
 public:
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] const TopologySpec& spec() const { return spec_; }
  [[nodiscard]] const RouteTable& routes() const { return routes_; }
  /// The backend the simulation actually runs on (explicit or auto-selected).
  [[nodiscard]] sim::QueueBackend backend() const { return sim_.scheduler().backend(); }

  // --- flows (indices follow spec.flows order) ---
  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }
  [[nodiscard]] tcp::TcpSender& sender(std::size_t i) { return *flows_.at(i).sender; }
  [[nodiscard]] const tcp::TcpSender& sender(std::size_t i) const {
    return *flows_.at(i).sender;
  }
  [[nodiscard]] tcp::TcpReceiver& receiver(std::size_t i) { return *flows_.at(i).receiver; }
  /// Web100 agent for flow i, or nullptr when the spec didn't ask for one.
  [[nodiscard]] web100::PollingAgent* agent(std::size_t i) { return flows_.at(i).agent.get(); }

  /// Schedule flow i's unbounded bulk transfer to begin at `at` (for flows
  /// whose spec left `start` unset, or to start one again).
  void start_flow(std::size_t i, sim::Time at);

  void run_until(sim::Time t) { sim_.run_until(t); }

  /// Per-flow goodput over [t0, t1] (Mbit/s), in flow order.
  [[nodiscard]] std::vector<double> goodputs_mbps(sim::Time t0, sim::Time t1) const;

  // --- topology lookup ---
  [[nodiscard]] net::Node& node(std::string_view name);
  /// Egress NetDevice on `node` for the direct link toward `peer`; throws
  /// std::out_of_range when the two are not directly linked. This is how
  /// experiments name a bottleneck ("routerL" toward "routerR").
  [[nodiscard]] net::NetDevice& device(std::string_view node, std::string_view peer);
  [[nodiscard]] const net::NetDevice& device(std::string_view node,
                                             std::string_view peer) const;

 private:
  friend class ScenarioBuilder;
  Scenario(TopologySpec spec, RouteTable routes, sim::QueueBackend backend);

  struct FlowRuntime {
    std::unique_ptr<tcp::TcpReceiver> receiver;
    std::unique_ptr<tcp::TcpSender> sender;
    std::unique_ptr<web100::PollingAgent> agent;
  };

  [[nodiscard]] std::size_t index_of(std::string_view name) const;

  TopologySpec spec_;
  RouteTable routes_;
  sim::Simulation sim_;
  std::vector<std::unique_ptr<net::Node>> nodes_;
  std::vector<std::unique_ptr<net::PointToPointLink>> links_;
  std::vector<FlowRuntime> flows_;
  std::unordered_map<std::string, std::size_t> node_index_;
  /// (node index, peer index) -> egress device, for the named-device lookup.
  std::unordered_map<std::uint64_t, net::NetDevice*> device_by_edge_;
};

/// Builds a Scenario from a TopologySpec: validates the spec (typed
/// TopologyError on malformed input), computes static shortest-path
/// routes, wires net::Node / NetDevice / PointToPointLink /
/// tcp::TcpSender / TcpReceiver instances, installs forwarding tables,
/// attaches Web100 agents, and schedules spec-declared flow starts.
///
/// Usable either spec-first (construct with a filled TopologySpec — what
/// the presets do) or fluently:
///
///     auto scenario = ScenarioBuilder{}
///                         .node("a").node("b")
///                         .duplex_link("a", "b", net::DataRate::mbps(100),
///                                      sim::Time::milliseconds(30), 100)
///                         .flow({.src = "a", .dst = "b"})
///                         .build(make_reno_factory());
class ScenarioBuilder {
 public:
  /// Estimated pending-event count at which build() auto-selects the
  /// calendar queue over the binary heap. Derived from the measured
  /// crossover on bench_micro_substrate (README "Choosing a
  /// QueueBackend"): a 32-flow dumbbell — 32 flows x (2 timers + 3 links)
  /// = 160 pending events — is where the calendar starts winning.
  static constexpr std::size_t kCalendarQueuePendingEvents = 160;

  ScenarioBuilder() = default;
  explicit ScenarioBuilder(TopologySpec spec) : spec_{std::move(spec)} {}

  ScenarioBuilder& node(std::string name);
  ScenarioBuilder& link(LinkSpec link);
  /// Symmetric convenience: same rate/IFQ on both endpoint devices.
  ScenarioBuilder& duplex_link(std::string a, std::string b, net::DataRate rate,
                               sim::Time delay, std::size_t ifq_packets);
  ScenarioBuilder& flow(FlowSpec flow);
  ScenarioBuilder& seed(std::uint64_t seed);
  ScenarioBuilder& backend(sim::QueueBackend backend);

  [[nodiscard]] const TopologySpec& spec() const { return spec_; }

  /// The backend build() picks when the spec doesn't pin one.
  [[nodiscard]] static sim::QueueBackend auto_backend(const TopologySpec& spec,
                                                      const RouteTable& routes);

  /// Validate and wire. Throws TopologyError on a malformed spec (and on a
  /// null factory).
  [[nodiscard]] std::unique_ptr<Scenario> build(const FlowCcFactory& cc_factory) const;
  [[nodiscard]] std::unique_ptr<Scenario> build(const CcFactory& cc_factory) const {
    return build(uniform_cc(cc_factory));
  }

 private:
  TopologySpec spec_;
};

}  // namespace rss::scenario
