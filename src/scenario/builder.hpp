#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/fluid.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "scenario/topology.hpp"
#include "sim/partition.hpp"
#include "sim/simulation.hpp"
#include "tcp/tcp_receiver.hpp"
#include "tcp/tcp_sender.hpp"
#include "web100/polling_agent.hpp"

namespace rss::scenario {

/// A built topology: the simulation plus every node, link, device and flow
/// endpoint the spec described, with lookup by the spec's names. Returned
/// by ScenarioBuilder::build; non-copyable and non-movable (everything
/// holds a Simulation&), so it travels as a unique_ptr.
class Scenario {
 public:
  Scenario(const Scenario&) = delete;
  Scenario& operator=(const Scenario&) = delete;

  /// Partition 0's simulation (the only one for a single-partition build).
  /// Partitioned scenarios must be driven through Scenario::run_until —
  /// running one partition's scheduler directly would outrun the safe
  /// window.
  [[nodiscard]] sim::Simulation& simulation() { return *sims_.front(); }
  [[nodiscard]] const TopologySpec& spec() const { return spec_; }
  [[nodiscard]] const RouteTable& routes() const { return routes_; }
  /// The backend the simulation actually runs on (explicit or auto-selected).
  [[nodiscard]] sim::QueueBackend backend() const {
    return sims_.front()->scheduler().backend();
  }

  // --- partitioned execution ---
  [[nodiscard]] std::size_t partition_count() const { return sims_.size(); }
  /// Partition that `name`'s node (and all its devices) executes on.
  [[nodiscard]] std::uint32_t partition_of(std::string_view name) const;
  /// The engine driving a partitioned build, or nullptr for the classic
  /// single-scheduler run (partition stats live here).
  [[nodiscard]] const sim::PartitionedEngine* engine() const { return engine_.get(); }
  /// Conservative lookahead of the partitioning (infinite when single
  /// partition or no cut edges).
  [[nodiscard]] sim::Time lookahead() const { return lookahead_; }
  /// Total events executed across every partition's scheduler (equals the
  /// single scheduler's count for an unpartitioned build). The bench smoke
  /// legs report throughput as events / wall-second from this.
  [[nodiscard]] std::uint64_t events_executed() const;

  // --- flows (indices follow spec.flows order) ---
  [[nodiscard]] std::size_t flow_count() const { return flows_.size(); }
  /// True when flow i is a fluid aggregate (no TCP endpoints).
  [[nodiscard]] bool is_fluid(std::size_t i) const {
    return flows_.at(i).fluid_source != nullptr;
  }
  /// TCP sender of flow i; throws std::logic_error for a fluid flow.
  [[nodiscard]] tcp::TcpSender& sender(std::size_t i) { return *checked_sender(i); }
  [[nodiscard]] const tcp::TcpSender& sender(std::size_t i) const {
    return *const_cast<Scenario*>(this)->checked_sender(i);
  }
  [[nodiscard]] tcp::TcpReceiver& receiver(std::size_t i) { return *flows_.at(i).receiver; }
  /// Fluid endpoints of flow i; throw std::logic_error for a packet flow.
  [[nodiscard]] net::FluidSource& fluid_source(std::size_t i);
  [[nodiscard]] const net::FluidSink& fluid_sink(std::size_t i) const;
  /// Web100 agent for flow i, or nullptr when the spec didn't ask for one.
  [[nodiscard]] web100::PollingAgent* agent(std::size_t i) { return flows_.at(i).agent.get(); }

  /// Schedule flow i's unbounded bulk transfer to begin at `at` (for flows
  /// whose spec left `start` unset, or to start one again).
  void start_flow(std::size_t i, sim::Time at);

  /// Advance the whole scenario to exactly `t` — through the partitioned
  /// engine when there is one, directly otherwise.
  void run_until(sim::Time t) {
    if (engine_) {
      engine_->run_until(t);
    } else {
      sims_.front()->run_until(t);
    }
  }

  /// Per-flow goodput over [t0, t1] (Mbit/s), in flow order.
  [[nodiscard]] std::vector<double> goodputs_mbps(sim::Time t0, sim::Time t1) const;

  // --- topology lookup ---
  [[nodiscard]] net::Node& node(std::string_view name);
  /// Egress NetDevice on `node` for the direct link toward `peer`; throws
  /// std::out_of_range when the two are not directly linked. This is how
  /// experiments name a bottleneck ("routerL" toward "routerR").
  [[nodiscard]] net::NetDevice& device(std::string_view node, std::string_view peer);
  [[nodiscard]] const net::NetDevice& device(std::string_view node,
                                             std::string_view peer) const;

 private:
  friend class ScenarioBuilder;
  Scenario(TopologySpec spec, RouteTable routes);

  struct FlowRuntime {
    std::unique_ptr<tcp::TcpReceiver> receiver;
    std::unique_ptr<tcp::TcpSender> sender;
    std::unique_ptr<web100::PollingAgent> agent;
    std::unique_ptr<net::FluidSource> fluid_source;  ///< set iff model == kFluid
    std::unique_ptr<net::FluidSink> fluid_sink;
    sim::Simulation* src_sim{nullptr};  ///< partition the sender lives on
  };

  [[nodiscard]] std::size_t index_of(std::string_view name) const;
  [[nodiscard]] tcp::TcpSender* checked_sender(std::size_t i);

  TopologySpec spec_;
  RouteTable routes_;
  /// One Simulation per partition (always at least one). Everything a node
  /// owns — devices, queues, flow endpoints — holds a reference to its
  /// partition's Simulation.
  std::vector<std::unique_ptr<sim::Simulation>> sims_;
  std::vector<std::uint32_t> node_partition_;  ///< spec node index -> partition
  sim::Time lookahead_{sim::Time::infinity()};
  std::unique_ptr<sim::PartitionedEngine> engine_;  ///< null for single partition
  std::vector<std::unique_ptr<net::Node>> nodes_;
  std::vector<std::unique_ptr<net::PointToPointLink>> links_;
  std::vector<FlowRuntime> flows_;
  /// Fluid machinery, in deterministic first-touch order: one coupling per
  /// bottleneck device fluid traffic contends on, one driver per partition
  /// that hosts fluid flows.
  std::vector<std::unique_ptr<net::FluidQueueCoupling>> fluid_couplings_;
  std::vector<std::unique_ptr<net::FluidDriver>> fluid_drivers_;
  std::unordered_map<std::string, std::size_t> node_index_;
  /// (node index, peer index) -> egress device, for the named-device lookup.
  std::unordered_map<std::uint64_t, net::NetDevice*> device_by_edge_;
};

/// Builds a Scenario from a TopologySpec: validates the spec (typed
/// TopologyError on malformed input), computes static shortest-path
/// routes, wires net::Node / NetDevice / PointToPointLink /
/// tcp::TcpSender / TcpReceiver instances, installs forwarding tables,
/// attaches Web100 agents, and schedules spec-declared flow starts.
///
/// Usable either spec-first (construct with a filled TopologySpec — what
/// the presets do) or fluently:
///
///     auto scenario = ScenarioBuilder{}
///                         .node("a").node("b")
///                         .duplex_link("a", "b", net::DataRate::mbps(100),
///                                      sim::Time::milliseconds(30), 100)
///                         .flow({.src = "a", .dst = "b"})
///                         .build(make_reno_factory());
class ScenarioBuilder {
 public:
  /// Deprecated alias for ExecutionPolicy::kCalendarQueuePendingEvents,
  /// which now owns the auto-select threshold.
  static constexpr std::size_t kCalendarQueuePendingEvents =
      ExecutionPolicy::kCalendarQueuePendingEvents;

  ScenarioBuilder() = default;
  explicit ScenarioBuilder(TopologySpec spec) : spec_{std::move(spec)} {}

  ScenarioBuilder& node(std::string name);
  ScenarioBuilder& link(LinkSpec link);
  /// Symmetric convenience: same rate/IFQ on both endpoint devices.
  ScenarioBuilder& duplex_link(std::string a, std::string b, net::DataRate rate,
                               sim::Time delay, std::size_t ifq_packets);
  ScenarioBuilder& flow(FlowSpec flow);
  ScenarioBuilder& seed(std::uint64_t seed);
  /// Deprecated alias for execution().backend — kept for existing call
  /// sites; an explicit execution policy backend wins.
  ScenarioBuilder& backend(sim::QueueBackend backend);
  /// Set the full execution policy (backend, partitions, threads).
  ScenarioBuilder& execution(ExecutionPolicy policy);

  [[nodiscard]] const TopologySpec& spec() const { return spec_; }

  /// The backend build() picks when the spec doesn't pin one.
  [[nodiscard]] static sim::QueueBackend auto_backend(const TopologySpec& spec,
                                                      const RouteTable& routes);

  /// Validate and wire. Throws TopologyError on a malformed spec (and on a
  /// null factory).
  [[nodiscard]] std::unique_ptr<Scenario> build(const FlowCcFactory& cc_factory) const;
  [[nodiscard]] std::unique_ptr<Scenario> build(const CcFactory& cc_factory) const {
    return build(uniform_cc(cc_factory));
  }

 private:
  TopologySpec spec_;
};

}  // namespace rss::scenario
