#include "scenario/execution.hpp"

#include <algorithm>
#include <thread>

namespace rss::scenario {

std::size_t ExecutionPolicy::hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::size_t ExecutionPolicy::resolve_threads(std::size_t work_items) const {
  std::size_t budget = threads;
  if (budget == 0) budget = execution_defaults().thread_budget;
  if (budget == 0) budget = hardware_threads();
  return std::clamp<std::size_t>(budget, 1, std::max<std::size_t>(work_items, 1));
}

ExecutionDefaults& execution_defaults() {
  static ExecutionDefaults defaults;
  return defaults;
}

}  // namespace rss::scenario
