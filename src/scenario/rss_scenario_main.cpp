// rss_scenario — file-driven scenario studies: validate JSON scenario
// specs, expand their parameter sweeps, build and run every point through
// ScenarioBuilder/parallel_sweep, and emit result tables as CSV — no
// recompile between studies. CI runs `--validate specs/*.json` and
// `--roundtrip` (preset emit -> parse -> rebuild parity) as the
// spec-conformance gate.

#include "scenario/spec_cli.hpp"

int main(int argc, char** argv) { return rss::scenario::spec::scenario_main(argc, argv); }
