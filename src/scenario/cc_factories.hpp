#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/highspeed_rss.hpp"
#include "core/restricted_slow_start.hpp"
#include "scenario/topology.hpp"
#include "tcp/cubic.hpp"
#include "tcp/dctcp.hpp"
#include "tcp/highspeed.hpp"
#include "tcp/limited_slow_start.hpp"
#include "tcp/reno.hpp"
#include "tcp/tahoe.hpp"
#include "tcp/vegas.hpp"

namespace rss::scenario {

// The factory types themselves live in scenario/topology.hpp with the
// TopologySpec they parameterize: `CcFactory` (zero-arg, one population)
// and the unified indexed `FlowCcFactory` (what every builder and preset
// takes; `uniform_cc` adapts the zero-arg form). This header provides the
// named factories.

/// Indexed factory from one factory per flow position: flow i gets
/// factories[i % factories.size()] — two entries make an alternating
/// mixed population, N entries a striped one.
[[nodiscard]] FlowCcFactory striped_cc(std::vector<CcFactory> factories);

/// Named congestion-control factories so experiment harnesses can iterate
/// "variant" as data. These are the three columns of TAB-1.
[[nodiscard]] inline CcFactory make_reno_factory() {
  return [] { return std::make_unique<tcp::RenoCongestionControl>(); };
}

[[nodiscard]] inline CcFactory make_limited_slow_start_factory(
    std::uint32_t max_ssthresh_segments = 100) {
  return [max_ssthresh_segments] {
    tcp::LimitedSlowStart::LssOptions opt;
    opt.max_ssthresh_segments = max_ssthresh_segments;
    return std::make_unique<tcp::LimitedSlowStart>(opt);
  };
}

[[nodiscard]] inline CcFactory make_rss_factory(
    core::RestrictedSlowStart::Options options = {}) {
  return [options] { return std::make_unique<core::RestrictedSlowStart>(options); };
}

[[nodiscard]] inline CcFactory make_tahoe_factory() {
  return [] { return std::make_unique<tcp::TahoeCongestionControl>(); };
}

[[nodiscard]] inline CcFactory make_vegas_factory(
    tcp::VegasCongestionControl::VegasOptions options = {}) {
  return [options] { return std::make_unique<tcp::VegasCongestionControl>(options); };
}

[[nodiscard]] inline CcFactory make_highspeed_factory(
    tcp::HighSpeedCongestionControl::HsOptions options = {}) {
  return [options] { return std::make_unique<tcp::HighSpeedCongestionControl>(options); };
}

[[nodiscard]] inline CcFactory make_highspeed_rss_factory(
    core::HighSpeedRestrictedSlowStart::HybridOptions options = {}) {
  return [options] {
    return std::make_unique<core::HighSpeedRestrictedSlowStart>(options);
  };
}

[[nodiscard]] inline CcFactory make_cubic_factory(
    tcp::CubicCongestionControl::CubicOptions options = {}) {
  return [options] { return std::make_unique<tcp::CubicCongestionControl>(options); };
}

[[nodiscard]] inline CcFactory make_dctcp_factory(
    tcp::DctcpCongestionControl::Options options = {}) {
  return [options] { return std::make_unique<tcp::DctcpCongestionControl>(options); };
}

/// Factory by name, for command-line front ends; throws on unknown names.
[[nodiscard]] CcFactory factory_by_name(const std::string& name);

/// All registered variant names in display order.
[[nodiscard]] std::vector<std::string> variant_names();

/// Variant descriptor used by the table/figure harnesses.
struct CcVariant {
  std::string label;
  CcFactory factory;
};

[[nodiscard]] inline std::vector<CcVariant> standard_variants(
    core::RestrictedSlowStart::Options rss_options = {}) {
  return {
      {"standard-tcp", make_reno_factory()},
      {"limited-slow-start", make_limited_slow_start_factory()},
      {"restricted-slow-start", make_rss_factory(rss_options)},
  };
}

}  // namespace rss::scenario
