#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/table.hpp"
#include "scenario/builder.hpp"
#include "scenario/exec_flags.hpp"
#include "scenario/spec_io.hpp"
#include "scenario/topology.hpp"

namespace rss::scenario::spec {

/// Indexed congestion-control factory for a parsed spec: flow i gets the
/// variant named by spec.flow_cc[i] ("reno" when unnamed). Safe to use
/// after `spec` goes out of scope (names are resolved eagerly).
[[nodiscard]] FlowCcFactory make_flow_cc_factory(const ScenarioSpec& spec);

/// Validate the spec's graph, build its Scenario, and schedule every flow
/// start (flows with no declared start begin at t=0). Does not run. This
/// is the one build path the runner, the --roundtrip self-check and the
/// parity tests all share, so "what it means to run a spec" cannot drift
/// between them.
[[nodiscard]] std::unique_ptr<Scenario> build_scenario(const ScenarioSpec& spec);

/// Build and run every sweep point of a scenario document (points shard
/// across scenario::parallel_sweep) and emit the canonical result table:
/// one row per (point, flow) holding the sweep assignment, flow identity,
/// goodput over [run.measure_start, run.duration] and the Web100
/// stall/timeout/retransmission counters as deltas over that same window
/// (counters are snapshotted at measure_start, so warm-up is excluded).
[[nodiscard]] metrics::Table run_spec_document(const JsonValue& document,
                                               std::size_t max_threads = 0);
[[nodiscard]] metrics::Table run_spec_text(std::string_view json_text,
                                           std::size_t max_threads = 0);
[[nodiscard]] metrics::Table run_spec_file(const std::string& path,
                                           std::size_t max_threads = 0);

/// ExecFlags-driven variants: --backend/--partitions override every sweep
/// point's execution policy, and --jobs is one budget shared by the sweep
/// workers and the partition engines inside each point (each partitioned
/// point that doesn't pin its own thread count gets budget / workers).
[[nodiscard]] metrics::Table run_spec_document(const JsonValue& document,
                                               const ExecFlags& exec);
[[nodiscard]] metrics::Table run_spec_text(std::string_view json_text,
                                           const ExecFlags& exec);
[[nodiscard]] metrics::Table run_spec_file(const std::string& path, const ExecFlags& exec);

/// The C++ topology presets as scenario specs with Reno on every flow:
/// "wanpath", "dumbbell", "parkinglot", "chain" carry their default Config;
/// "scale" carries the reduced bench configuration of ScaleMesh (the full
/// default is a 100k-flow workload). Throws std::invalid_argument on an
/// unknown name.
[[nodiscard]] ScenarioSpec preset_spec(const std::string& name);
[[nodiscard]] std::vector<std::string> preset_names();

/// Entry point for the rss_scenario driver (see --help for the commands:
/// --run, --validate, --emit-preset, --list-presets, --roundtrip).
int scenario_main(int argc, char** argv);

}  // namespace rss::scenario::spec
