#include "metrics/timeseries.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rss::metrics {

double TimeSeries::value_at(sim::Time t, double fallback) const {
  // Samples are recorded in nondecreasing time order (simulation time is
  // monotone), so binary search applies.
  auto it = std::upper_bound(samples_.begin(), samples_.end(), t,
                             [](sim::Time lhs, const Sample& s) { return lhs < s.t; });
  if (it == samples_.begin()) return fallback;
  return std::prev(it)->value;
}

std::vector<Sample> TimeSeries::resample(sim::Time start, sim::Time end, sim::Time period,
                                         double initial) const {
  if (period <= sim::Time::zero()) throw std::invalid_argument("resample: period must be > 0");
  std::vector<Sample> grid;
  double current = initial;
  auto it = samples_.begin();
  for (sim::Time t = start; t <= end; t += period) {
    while (it != samples_.end() && it->t <= t) current = (it++)->value;
    grid.push_back({t, current});
  }
  return grid;
}

double TimeSeries::min_value() const {
  double m = 0.0;
  bool first = true;
  for (const auto& s : samples_) {
    if (first || s.value < m) m = s.value;
    first = false;
  }
  return m;
}

double TimeSeries::max_value() const {
  double m = 0.0;
  bool first = true;
  for (const auto& s : samples_) {
    if (first || s.value > m) m = s.value;
    first = false;
  }
  return m;
}

double TimeSeries::mean_value() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : samples_) sum += s.value;
  return sum / static_cast<double>(samples_.size());
}

double TimeSeries::time_weighted_mean(sim::Time t0, sim::Time t1, double initial) const {
  if (t1 <= t0) return value_at(t0, initial);
  double acc = 0.0;
  double current = value_at(t0, initial);
  sim::Time prev = t0;
  for (const auto& s : samples_) {
    if (s.t <= t0) continue;
    const sim::Time seg_end = std::min(s.t, t1);
    acc += current * (seg_end - prev).to_seconds();
    prev = seg_end;
    current = s.value;
    if (s.t >= t1) break;
  }
  if (prev < t1) acc += current * (t1 - prev).to_seconds();
  return acc / (t1 - t0).to_seconds();
}

double TimeSeries::stddev_from(sim::Time t0, sim::Time t1) const {
  const double mean = time_weighted_mean(t0, t1);
  double ss = 0.0;
  std::size_t n = 0;
  for (const auto& s : samples_) {
    if (s.t < t0 || s.t > t1) continue;
    ss += (s.value - mean) * (s.value - mean);
    ++n;
  }
  return n ? std::sqrt(ss / static_cast<double>(n)) : 0.0;
}

}  // namespace rss::metrics
