#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rss::metrics {

/// Descriptive statistics over a batch of values.
struct SummaryStats {
  std::size_t count{0};
  double mean{0.0};
  double stddev{0.0};  // sample (n-1) standard deviation; 0 when count < 2
  double min{0.0};
  double p25{0.0};
  double median{0.0};
  double p75{0.0};
  double p95{0.0};
  double max{0.0};
};

/// Compute SummaryStats over `values` (copied & sorted internally).
[[nodiscard]] SummaryStats summarize(std::span<const double> values);

/// Linear-interpolated quantile of a *sorted* sequence, q in [0,1].
[[nodiscard]] double quantile_sorted(std::span<const double> sorted, double q);

/// Jain's fairness index over per-entity allocations:
///   J = (Σx)² / (n · Σx²)  ∈ (0, 1],  1 = perfectly fair.
/// Returns 1.0 for empty or all-zero input (nothing to be unfair about).
[[nodiscard]] double jain_fairness(std::span<const double> allocations);

/// Online mean/variance accumulator (Welford) for streaming use.
class Accumulator {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const;  // sample variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

}  // namespace rss::metrics
