#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rss::metrics {

/// One table cell: canonical text plus, for numeric cells, the parsed
/// value. Numeric cells built from doubles format with %.10g — goldens stay
/// human-readable, and the quantization error (~1e-10 relative) is far
/// below any tolerance the artifact differ uses.
struct Cell {
  // Implicit conversion is the API: rows are written as mixed-type braced
  // lists (`t.add_row({"reno", 3, 1.5})`), which is why every converting
  // constructor below carries a google-explicit-constructor NOLINT.
  Cell(std::string s) : text{std::move(s)} {}  // NOLINT(google-explicit-constructor)
  Cell(std::string_view s) : text{s} {}        // NOLINT(google-explicit-constructor)
  Cell(const char* s) : text{s} {}             // NOLINT(google-explicit-constructor)
  Cell(double v);                              // NOLINT(google-explicit-constructor)
  Cell(long long v);                           // NOLINT(google-explicit-constructor)
  Cell(unsigned long long v);                  // NOLINT(google-explicit-constructor)
  // One overload per distinct standard integer type (std::size_t and the
  // other aliases resolve to one of these on every platform; naming size_t
  // directly would redeclare a constructor on LLP64/ILP32).
  // NOLINTBEGIN(google-explicit-constructor)
  Cell(int v) : Cell{static_cast<long long>(v)} {}
  Cell(long v) : Cell{static_cast<long long>(v)} {}
  Cell(unsigned v) : Cell{static_cast<unsigned long long>(v)} {}
  Cell(unsigned long v) : Cell{static_cast<unsigned long long>(v)} {}
  // NOLINTEND(google-explicit-constructor)

  /// Re-classify a parsed CSV field: numeric iff the whole field parses as
  /// a finite-or-nan double.
  static Cell from_csv_field(std::string field);

  std::string text;
  double number{0.0};
  bool numeric{false};
};

/// In-memory rectangular table with named columns — the canonical artifact
/// every experiment emits. Round-trips through CSV (RFC-4180 quoting via
/// CsvWriter on the way out, a matching parser on the way in) so checked-in
/// goldens can be re-read and diffed cell by cell.
class Table {
 public:
  Table() = default;
  explicit Table(std::vector<std::string> columns);

  /// Append one row; throws std::invalid_argument on arity mismatch.
  void add_row(std::vector<Cell> cells);

  [[nodiscard]] const std::vector<std::string>& columns() const { return columns_; }
  [[nodiscard]] std::size_t column_count() const { return columns_.size(); }
  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] const Cell& at(std::size_t row, std::size_t col) const;
  [[nodiscard]] std::optional<std::size_t> column_index(std::string_view name) const;

  void write_csv(std::ostream& os) const;
  [[nodiscard]] std::string to_csv() const;

  /// Parse a header + rows; throws std::runtime_error on malformed input
  /// (unterminated quote, ragged row).
  static Table read_csv(std::istream& is);
  static Table read_csv_file(const std::string& path);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace rss::metrics
