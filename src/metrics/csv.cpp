#include "metrics/csv.hpp"

#include <algorithm>
#include <cstdio>

namespace rss::metrics {

void CsvWriter::sep_if_needed() {
  if (row_open_) {
    os_ << sep_;
  } else {
    row_open_ = true;
  }
}

CsvWriter& CsvWriter::field(std::string_view s) {
  sep_if_needed();
  const bool needs_quote = s.find_first_of(",\"\n\r") != std::string_view::npos ||
                           s.find(sep_) != std::string_view::npos;
  if (!needs_quote) {
    os_ << s;
  } else {
    os_ << '"';
    for (char c : s) {
      if (c == '"') os_ << '"';
      os_ << c;
    }
    os_ << '"';
  }
  return *this;
}

CsvWriter& CsvWriter::field(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return field(std::string_view{buf});
}

CsvWriter& CsvWriter::field(long long v) {
  sep_if_needed();
  os_ << v;
  return *this;
}

CsvWriter& CsvWriter::field(unsigned long long v) {
  sep_if_needed();
  os_ << v;
  return *this;
}

CsvWriter& CsvWriter::endrow() {
  os_ << '\n';
  row_open_ = false;
  ++rows_;
  return *this;
}

CsvWriter& CsvWriter::header(std::initializer_list<std::string_view> names) {
  for (auto n : names) field(n);
  return endrow();
}

CsvWriter& CsvWriter::header(const std::vector<std::string>& names) {
  for (const auto& n : names) field(std::string_view{n});
  return endrow();
}

}  // namespace rss::metrics
