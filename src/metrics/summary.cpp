#include "metrics/summary.hpp"

#include <algorithm>
#include <cmath>

namespace rss::metrics {

double quantile_sorted(std::span<const double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

SummaryStats summarize(std::span<const double> values) {
  SummaryStats s;
  s.count = values.size();
  if (values.empty()) return s;

  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());

  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());

  if (sorted.size() > 1) {
    double ss = 0.0;
    for (double v : sorted) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(sorted.size() - 1));
  }
  s.min = sorted.front();
  s.max = sorted.back();
  s.p25 = quantile_sorted(sorted, 0.25);
  s.median = quantile_sorted(sorted, 0.50);
  s.p75 = quantile_sorted(sorted, 0.75);
  s.p95 = quantile_sorted(sorted, 0.95);
  return s;
}

double jain_fairness(std::span<const double> allocations) {
  if (allocations.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : allocations) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(allocations.size()) * sum_sq);
}

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

}  // namespace rss::metrics
