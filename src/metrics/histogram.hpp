#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rss::metrics {

/// Fixed-boundary histogram with quantile estimation by linear
/// interpolation within buckets. Boundaries are caller-supplied (strictly
/// increasing); values below the first boundary land in an underflow
/// bucket, values >= the last in an overflow bucket.
class Histogram {
 public:
  /// `boundaries` define buckets [b0,b1), [b1,b2), ... Must be strictly
  /// increasing and non-empty.
  explicit Histogram(std::vector<double> boundaries);

  /// Convenience: `count` equal-width buckets spanning [lo, hi).
  static Histogram linear(double lo, double hi, std::size_t count);

  /// Convenience: geometrically growing buckets from `lo` by `factor`,
  /// `count` buckets. Suits latency-like heavy-tailed data.
  static Histogram exponential(double lo, double factor, std::size_t count);

  void add(double value, std::uint64_t weight = 1);

  [[nodiscard]] std::uint64_t total_count() const { return total_; }
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] double mean() const { return total_ ? sum_ / static_cast<double>(total_) : 0.0; }

  /// Quantile in [0,1]; interpolates within the containing bucket.
  /// Returns min()/max() at the extremes; 0 for an empty histogram.
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] const std::vector<double>& boundaries() const { return boundaries_; }
  [[nodiscard]] const std::vector<std::uint64_t>& counts() const { return counts_; }

 private:
  std::vector<double> boundaries_;
  std::vector<std::uint64_t> counts_;  // size boundaries_.size()+1: [under, b0..b1, ..., over]
  std::uint64_t total_{0};
  double sum_{0.0};
  double min_{0.0};
  double max_{0.0};
};

}  // namespace rss::metrics
