#include "metrics/table.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "metrics/csv.hpp"

namespace rss::metrics {

namespace {

std::string format_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.10g", v);
  return buf;
}

bool parse_number(const std::string& s, double& out) {
  if (s.empty()) return false;
  const char* begin = s.c_str();
  char* end = nullptr;
  out = std::strtod(begin, &end);
  return end == begin + s.size();
}

}  // namespace

Cell::Cell(double v) : text{format_double(v)}, number{v}, numeric{true} {}

Cell::Cell(long long v)
    : text{std::to_string(v)}, number{static_cast<double>(v)}, numeric{true} {}

Cell::Cell(unsigned long long v)
    : text{std::to_string(v)}, number{static_cast<double>(v)}, numeric{true} {}

Cell Cell::from_csv_field(std::string field) {
  Cell c{std::move(field)};
  c.numeric = parse_number(c.text, c.number);
  return c;
}

Table::Table(std::vector<std::string> columns) : columns_{std::move(columns)} {}

void Table::add_row(std::vector<Cell> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument{"Table::add_row: got " + std::to_string(cells.size()) +
                                " cells for " + std::to_string(columns_.size()) +
                                " columns"};
  }
  rows_.push_back(std::move(cells));
}

const Cell& Table::at(std::size_t row, std::size_t col) const {
  return rows_.at(row).at(col);
}

std::optional<std::size_t> Table::column_index(std::string_view name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i] == name) return i;
  }
  return std::nullopt;
}

void Table::write_csv(std::ostream& os) const {
  CsvWriter csv{os};
  csv.header(columns_);
  for (const auto& row : rows_) {
    for (const auto& cell : row) csv.field(std::string_view{cell.text});
    csv.endrow();
  }
}

std::string Table::to_csv() const {
  std::ostringstream os;
  write_csv(os);
  return os.str();
}

namespace {

/// Split CSV text into rows of raw fields, honouring RFC-4180 quoting
/// ("" escapes a quote inside a quoted field; quoted fields may contain
/// separators and newlines).
std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  // distinguishes a trailing empty line from a 1-field row

  const auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  const auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        // A separator implies another field follows on this row.
        field_started = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        end_row();
        break;
      default:
        field += c;
        field_started = true;
        break;
    }
  }
  if (in_quotes) throw std::runtime_error{"Table::read_csv: unterminated quoted field"};
  if (field_started || !row.empty()) end_row();
  return rows;
}

}  // namespace

Table Table::read_csv(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  const auto raw = parse_csv(buf.str());
  if (raw.empty()) throw std::runtime_error{"Table::read_csv: empty input (no header)"};

  Table t{raw.front()};
  for (std::size_t r = 1; r < raw.size(); ++r) {
    if (raw[r].size() != t.column_count()) {
      throw std::runtime_error{"Table::read_csv: row " + std::to_string(r) + " has " +
                               std::to_string(raw[r].size()) + " fields, header has " +
                               std::to_string(t.column_count())};
    }
    std::vector<Cell> cells;
    cells.reserve(raw[r].size());
    for (const auto& f : raw[r]) cells.push_back(Cell::from_csv_field(f));
    t.rows_.push_back(std::move(cells));
  }
  return t;
}

Table Table::read_csv_file(const std::string& path) {
  std::ifstream f{path, std::ios::binary};
  if (!f) throw std::runtime_error{"Table::read_csv_file: cannot open " + path};
  return read_csv(f);
}

}  // namespace rss::metrics
