#pragma once

#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace rss::metrics {

/// Tiny CSV emitter for experiment output. Handles quoting of fields that
/// contain separators/quotes/newlines; numeric overloads format with enough
/// precision to round-trip.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os, char sep = ',') : os_{os}, sep_{sep} {}

  CsvWriter& header(std::initializer_list<std::string_view> names);
  CsvWriter& header(const std::vector<std::string>& names);

  /// Append one field to the current row.
  CsvWriter& field(std::string_view s);
  CsvWriter& field(double v);
  CsvWriter& field(long long v);
  CsvWriter& field(unsigned long long v);
  CsvWriter& field(int v) { return field(static_cast<long long>(v)); }
  CsvWriter& field(std::size_t v) { return field(static_cast<unsigned long long>(v)); }

  /// Terminate the current row.
  CsvWriter& endrow();

  [[nodiscard]] std::size_t rows_written() const { return rows_; }

 private:
  void sep_if_needed();
  std::ostream& os_;
  char sep_;
  bool row_open_{false};
  std::size_t rows_{0};
};

}  // namespace rss::metrics
