#include "metrics/histogram.hpp"

#include <algorithm>
#include <stdexcept>

namespace rss::metrics {

Histogram::Histogram(std::vector<double> boundaries) : boundaries_{std::move(boundaries)} {
  if (boundaries_.empty()) throw std::invalid_argument("Histogram: no boundaries");
  if (!std::is_sorted(boundaries_.begin(), boundaries_.end()) ||
      std::adjacent_find(boundaries_.begin(), boundaries_.end()) != boundaries_.end()) {
    throw std::invalid_argument("Histogram: boundaries must be strictly increasing");
  }
  counts_.assign(boundaries_.size() + 1, 0);
}

Histogram Histogram::linear(double lo, double hi, std::size_t count) {
  if (count == 0 || hi <= lo) throw std::invalid_argument("Histogram::linear: bad range");
  std::vector<double> bounds;
  bounds.reserve(count + 1);
  const double width = (hi - lo) / static_cast<double>(count);
  for (std::size_t i = 0; i <= count; ++i) bounds.push_back(lo + width * static_cast<double>(i));
  return Histogram{std::move(bounds)};
}

Histogram Histogram::exponential(double lo, double factor, std::size_t count) {
  if (count == 0 || lo <= 0 || factor <= 1.0)
    throw std::invalid_argument("Histogram::exponential: bad parameters");
  std::vector<double> bounds;
  bounds.reserve(count + 1);
  double b = lo;
  for (std::size_t i = 0; i <= count; ++i, b *= factor) bounds.push_back(b);
  return Histogram{std::move(bounds)};
}

void Histogram::add(double value, std::uint64_t weight) {
  if (weight == 0) return;
  if (total_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  total_ += weight;
  sum_ += value * static_cast<double>(weight);
  const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), value);
  counts_[static_cast<std::size_t>(it - boundaries_.begin())] += weight;
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t next = cum + counts_[i];
    if (static_cast<double>(next) >= target && counts_[i] > 0) {
      // Underflow / overflow buckets have no interior: clamp to extremes.
      if (i == 0) return min_;
      if (i == counts_.size() - 1) return max_;
      const double lo = boundaries_[i - 1];
      const double hi = boundaries_[i];
      const double frac = (target - static_cast<double>(cum)) / static_cast<double>(counts_[i]);
      // Interpolated position, clamped to observed extremes so q=0/q=1
      // report real data rather than bucket edges.
      return std::clamp(lo + (hi - lo) * std::clamp(frac, 0.0, 1.0), min_, max_);
    }
    cum = next;
  }
  return max_;
}

}  // namespace rss::metrics
