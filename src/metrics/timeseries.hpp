#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace rss::metrics {

/// One timestamped observation.
struct Sample {
  sim::Time t;
  double value;
};

/// Append-only series of (time, value) observations with a few analysis
/// helpers used by the experiment harnesses (resampling onto a fixed grid,
/// rate-of-change, last value at / before a given time).
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_{std::move(name)} {}

  void record(sim::Time t, double value) { samples_.push_back({t, value}); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] std::span<const Sample> samples() const { return samples_; }
  [[nodiscard]] const Sample& front() const { return samples_.front(); }
  [[nodiscard]] const Sample& back() const { return samples_.back(); }

  /// Most recent value recorded at or before `t`; `fallback` if none.
  [[nodiscard]] double value_at(sim::Time t, double fallback = 0.0) const;

  /// Step-function resample onto a regular grid [start, end] with the given
  /// period: value at each grid point is the last observation <= that time.
  [[nodiscard]] std::vector<Sample> resample(sim::Time start, sim::Time end,
                                             sim::Time period,
                                             double initial = 0.0) const;

  /// Series minimum / maximum / mean over values (0 for empty series).
  [[nodiscard]] double min_value() const;
  [[nodiscard]] double max_value() const;
  [[nodiscard]] double mean_value() const;

  /// Time-weighted average of a step signal over [t0, t1] — the right
  /// average for queue occupancy and cwnd, where samples are change points,
  /// not uniform ticks.
  [[nodiscard]] double time_weighted_mean(sim::Time t0, sim::Time t1,
                                          double initial = 0.0) const;

  /// Standard deviation of the observations at or after `t0`, measured
  /// around time_weighted_mean(t0, t1) — the steady-state dispersion
  /// ("control quality") metric the gain/sampling ablations report.
  /// 0 when no samples fall in the window.
  [[nodiscard]] double stddev_from(sim::Time t0, sim::Time t1) const;

  void clear() { samples_.clear(); }

 private:
  std::string name_;
  std::vector<Sample> samples_;
};

}  // namespace rss::metrics
