#pragma once

#include <cstdint>
#include <optional>

#include "net/data_rate.hpp"
#include "sim/simulation.hpp"
#include "tcp/tcp_sender.hpp"

namespace rss::workload {

/// Bulk transfer: the paper's workload — a single large memory-to-memory
/// transfer (GridFTP-style). Starts the flow at `start`; either a finite
/// object of `bytes` or an unbounded source.
class BulkTransferApp {
 public:
  BulkTransferApp(sim::Simulation& simulation, tcp::TcpSender& sender, sim::Time start,
                  std::optional<std::uint64_t> bytes = std::nullopt);

  [[nodiscard]] sim::Time start_time() const { return start_; }
  [[nodiscard]] bool started() const { return started_; }

 private:
  sim::Time start_;
  bool started_{false};
};

/// On-off source: alternates `on_duration` of writing at `rate` (chunked
/// per `tick`) with `off_duration` of silence. Exercises slow-start restart
/// behaviour and provides bursty foreground traffic for fairness studies.
class OnOffApp {
 public:
  struct Options {
    sim::Time start{sim::Time::zero()};
    sim::Time on_duration{sim::Time::seconds(1)};
    sim::Time off_duration{sim::Time::seconds(1)};
    net::DataRate rate{net::DataRate::mbps(10)};
    sim::Time tick{sim::Time::milliseconds(10)};
  };

  OnOffApp(sim::Simulation& simulation, tcp::TcpSender& sender, Options options);

  [[nodiscard]] std::uint64_t bytes_offered() const { return bytes_offered_; }
  [[nodiscard]] bool in_on_period() const { return on_; }

 private:
  void enter_on();
  void enter_off();
  void tick();

  sim::Simulation& sim_;
  tcp::TcpSender& sender_;
  Options opt_;
  bool on_{false};
  sim::Time phase_end_{sim::Time::zero()};
  std::uint64_t bytes_offered_{0};
};

/// Poisson datagram source: non-TCP cross-traffic injected directly at a
/// node, competing for the same IFQ/bottleneck as the measured flow.
/// Models the "rest of the traffic sharing the congested link" from the
/// paper's introduction.
class PoissonPacketSource {
 public:
  struct Options {
    std::uint32_t dst_node{0};
    std::uint32_t flow_id{0xCAFE};       ///< no handler registered: sink traffic
    std::uint32_t payload_bytes{1460};
    double packets_per_second{100.0};
    sim::Time start{sim::Time::zero()};
    sim::Time stop{sim::Time::infinity()};
  };

  PoissonPacketSource(sim::Simulation& simulation, net::Node& origin, Options options);

  [[nodiscard]] std::uint64_t packets_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t packets_stalled() const { return stalled_; }

 private:
  void schedule_next();
  void emit();

  sim::Simulation& sim_;
  net::Node& origin_;
  Options opt_;
  sim::Rng rng_;
  net::PacketUidSource uid_source_;
  std::uint64_t sent_{0};
  std::uint64_t stalled_{0};
};

}  // namespace rss::workload
