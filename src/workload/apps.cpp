#include "workload/apps.hpp"

#include <stdexcept>

namespace rss::workload {

BulkTransferApp::BulkTransferApp(sim::Simulation& simulation, tcp::TcpSender& sender,
                                 sim::Time start, std::optional<std::uint64_t> bytes)
    : start_{start} {
  simulation.at(start, [this, &sender, bytes] {
    started_ = true;
    if (bytes) {
      sender.app_write(*bytes);
    } else {
      sender.set_unlimited(true);
    }
  });
}

OnOffApp::OnOffApp(sim::Simulation& simulation, tcp::TcpSender& sender, Options options)
    : sim_{simulation}, sender_{sender}, opt_{options} {
  if (opt_.tick <= sim::Time::zero()) throw std::invalid_argument("OnOffApp: tick must be > 0");
  sim_.at(opt_.start, [this] { enter_on(); });
}

void OnOffApp::enter_on() {
  on_ = true;
  phase_end_ = sim_.now() + opt_.on_duration;
  tick();
}

void OnOffApp::enter_off() {
  on_ = false;
  sim_.in(opt_.off_duration, [this] { enter_on(); });
}

void OnOffApp::tick() {
  if (sim_.now() >= phase_end_) {
    enter_off();
    return;
  }
  const std::uint64_t chunk = opt_.rate.bytes_over(opt_.tick);
  sender_.app_write(chunk);
  bytes_offered_ += chunk;
  sim_.in(opt_.tick, [this] { tick(); });
}

PoissonPacketSource::PoissonPacketSource(sim::Simulation& simulation, net::Node& origin,
                                         Options options)
    : sim_{simulation}, origin_{origin}, opt_{options}, rng_{simulation.rng().fork()} {
  if (opt_.packets_per_second <= 0.0)
    throw std::invalid_argument("PoissonPacketSource: rate must be > 0");
  sim_.at(opt_.start, [this] { schedule_next(); });
}

void PoissonPacketSource::schedule_next() {
  const double gap_s = rng_.next_exponential(1.0 / opt_.packets_per_second);
  const sim::Time at = sim_.now() + sim::Time::from_seconds(gap_s);
  if (at >= opt_.stop) return;
  sim_.at(at, [this] {
    emit();
    schedule_next();
  });
}

void PoissonPacketSource::emit() {
  net::Packet p;
  p.uid = uid_source_.next();
  p.flow_id = opt_.flow_id;
  p.dst_node = opt_.dst_node;
  p.payload_bytes = opt_.payload_bytes;
  if (origin_.send(p) == net::Node::SendResult::kSent) {
    ++sent_;
  } else {
    ++stalled_;
  }
}

}  // namespace rss::workload
