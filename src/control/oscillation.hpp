#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rss::control {

/// One sample of a recorded closed-loop response: (time in seconds, value).
struct ResponseSample {
  double t;
  double value;
};

/// Classification of a closed-loop response recorded during gain probing.
enum class ResponseKind {
  kFlat,       ///< no meaningful excursion from the mean
  kDamped,     ///< oscillation that decays — gain below critical
  kSustained,  ///< steady-amplitude oscillation — gain ~ critical (Z-N target)
  kGrowing,    ///< oscillation that grows — gain above critical
};

/// What the detector extracted from a response.
struct OscillationAnalysis {
  ResponseKind kind{ResponseKind::kFlat};
  double period{0.0};          ///< mean peak-to-peak spacing (seconds); 0 if < 2 peaks
  double mean_amplitude{0.0};  ///< mean |peak - signal mean|
  double amplitude_trend{1.0}; ///< geometric mean of successive peak amplitude ratios
  std::size_t peak_count{0};
};

/// Detects sustained oscillation in a recorded response — the measurement
/// step of the Ziegler–Nichols procedure ("increase gain until sustained
/// oscillation; measure the period").
///
/// Method: discard a leading transient fraction, locate strict local maxima
/// of the signal relative to its mean, then examine the ratio of successive
/// peak amplitudes. A geometric-mean ratio within [1-tol, 1+tol] is
/// "sustained"; below, "damped"; above, "growing". The period is the mean
/// spacing between consecutive peaks.
class OscillationDetector {
 public:
  struct Options {
    double transient_fraction{0.3};   ///< fraction of samples skipped as startup transient
    double amplitude_tolerance{0.25}; ///< sustained iff trend ∈ [1-tol, 1+tol]
    double flat_threshold{1e-9};      ///< amplitudes below this (relative to mean |value|) are flat
    std::size_t min_peaks{3};         ///< need at least this many peaks to classify oscillation
  };

  OscillationDetector() = default;
  explicit OscillationDetector(Options opt) : opt_{opt} {}

  [[nodiscard]] OscillationAnalysis analyze(std::span<const ResponseSample> response) const;

 private:
  Options opt_{};
};

}  // namespace rss::control
