#include "control/ziegler_nichols.hpp"

#include <cmath>

namespace rss::control {

std::optional<TuningResult> ZieglerNicholsTuner::tune(const Experiment& experiment) const {
  experiments_run_ = 0;
  const OscillationDetector detector{opt_.detector};

  auto probe = [&](double kp) {
    ++experiments_run_;
    const auto response = experiment(kp);
    return detector.analyze(response);
  };

  // Phase 1: geometric ramp until the loop oscillates (sustained or
  // growing — both mean we have crossed or reached the stability boundary).
  double kp_low = 0.0;         // largest gain seen NOT oscillating
  double kp_high = 0.0;        // smallest gain seen oscillating
  OscillationAnalysis at_high; // analysis at kp_high
  for (double kp = opt_.kp_initial; kp <= opt_.kp_max; kp *= opt_.growth_factor) {
    const auto analysis = probe(kp);
    if (analysis.kind == ResponseKind::kSustained || analysis.kind == ResponseKind::kGrowing) {
      kp_high = kp;
      at_high = analysis;
      break;
    }
    kp_low = kp;
  }
  if (kp_high == 0.0) return std::nullopt;

  // Phase 2: bisect [kp_low, kp_high] toward the boundary. We keep the
  // analysis from the smallest oscillating gain — that is the best estimate
  // of the ultimate point (amplitude trend closest to 1).
  double kc = kp_high;
  double tc = at_high.period;
  for (int i = 0; i < opt_.bisection_steps && kp_low > 0.0; ++i) {
    const double mid = std::sqrt(kp_low * kp_high);  // geometric midpoint
    const auto analysis = probe(mid);
    if (analysis.kind == ResponseKind::kSustained || analysis.kind == ResponseKind::kGrowing) {
      kp_high = mid;
      kc = mid;
      if (analysis.period > 0.0) tc = analysis.period;
    } else {
      kp_low = mid;
    }
  }

  if (tc <= 0.0) return std::nullopt;
  return TuningResult{kc, tc};
}

}  // namespace rss::control
