#include "control/plant.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rss::control {

FirstOrderPlant::FirstOrderPlant(double gain, double tau, double dead_time, double)
    : k_{gain}, tau_{tau}, dead_time_{dead_time} {
  if (tau <= 0.0) throw std::invalid_argument("FirstOrderPlant: tau must be > 0");
  if (dead_time < 0.0) throw std::invalid_argument("FirstOrderPlant: negative dead time");
}

double FirstOrderPlant::delayed_input(double u, double dt) {
  return advance_delay_line(delay_line_, current_delayed_, u, dead_time_, dt);
}

double FirstOrderPlant::step(double u, double dt) {
  if (dt <= 0.0) throw std::invalid_argument("Plant::step: dt must be > 0");
  const double ud = delayed_input(u, dt);
  // Exact discretization of the first-order lag over the step (exponential
  // integrator) — stable for any dt, unlike forward Euler.
  const double alpha = 1.0 - std::exp(-dt / tau_);
  y_ += alpha * (k_ * ud - y_);
  return y_;
}

void FirstOrderPlant::reset() {
  y_ = 0.0;
  delay_line_.clear();
  current_delayed_ = 0.0;
}

IntegratorPlant::IntegratorPlant(double gain, double dead_time, double y_min, double y_max)
    : k_{gain}, dead_time_{dead_time}, y_min_{y_min}, y_max_{y_max} {
  if (dead_time < 0.0) throw std::invalid_argument("IntegratorPlant: negative dead time");
  if (y_min >= y_max) throw std::invalid_argument("IntegratorPlant: empty saturation range");
}

double IntegratorPlant::step(double u, double dt) {
  if (dt <= 0.0) throw std::invalid_argument("Plant::step: dt must be > 0");
  const double ud = advance_delay_line(delay_line_, current_delayed_, u, dead_time_, dt);
  y_ = std::clamp(y_ + k_ * ud * dt, y_min_, y_max_);
  return y_;
}

void IntegratorPlant::reset() {
  y_ = 0.0;
  delay_line_.clear();
  current_delayed_ = 0.0;
}

SecondOrderPlant::SecondOrderPlant(double gain, double natural_freq, double damping)
    : k_{gain}, omega_{natural_freq}, zeta_{damping} {
  if (natural_freq <= 0.0) throw std::invalid_argument("SecondOrderPlant: omega must be > 0");
}

double SecondOrderPlant::step(double u, double dt) {
  if (dt <= 0.0) throw std::invalid_argument("Plant::step: dt must be > 0");
  // Semi-implicit Euler: update velocity from current position, then
  // position from new velocity. Symplectic, so the oscillation amplitude of
  // the undamped case is preserved instead of numerically growing.
  const double accel = k_ * omega_ * omega_ * u - 2.0 * zeta_ * omega_ * v_ - omega_ * omega_ * y_;
  v_ += accel * dt;
  y_ += v_ * dt;
  return y_;
}

void SecondOrderPlant::reset() {
  y_ = 0.0;
  v_ = 0.0;
}

std::vector<ResponseSample> run_p_control_experiment(Plant& plant, double kp,
                                                     double setpoint, double duration,
                                                     double dt) {
  if (dt <= 0.0 || duration <= 0.0)
    throw std::invalid_argument("run_p_control_experiment: bad timing");
  plant.reset();
  std::vector<ResponseSample> response;
  response.reserve(static_cast<std::size_t>(duration / dt) + 1);
  double y = plant.output();
  for (double t = 0.0; t < duration; t += dt) {
    const double u = kp * (setpoint - y);
    y = plant.step(u, dt);
    response.push_back({t + dt, y});
  }
  return response;
}

}  // namespace rss::control
