#include "control/relay_tuner.hpp"

#include <cmath>
#include <numbers>

namespace rss::control {

std::optional<TuningResult> RelayTuner::tune(const Experiment& experiment) const {
  // State of the relay lives across calls within one experiment run.
  double state = opt_.relay_amplitude;  // start pushing up
  auto relay = [this, state](double error) mutable {
    // Schmitt-trigger switching: flip only when the error leaves the
    // hysteresis band, so measurement noise cannot chatter the relay.
    if (error > opt_.hysteresis) {
      state = opt_.relay_amplitude;
    } else if (error < -opt_.hysteresis) {
      state = -opt_.relay_amplitude;
    }
    return opt_.output_bias + state;
  };

  const auto response = experiment(relay);
  const OscillationDetector detector{opt_.detector};
  const auto analysis = detector.analyze(response);

  if (analysis.kind != ResponseKind::kSustained && analysis.kind != ResponseKind::kGrowing)
    return std::nullopt;
  if (analysis.period <= 0.0 || analysis.mean_amplitude <= 0.0) return std::nullopt;

  // Describing-function result for an ideal relay driving a limit cycle.
  const double kc =
      4.0 * opt_.relay_amplitude / (std::numbers::pi * analysis.mean_amplitude);
  return TuningResult{kc, analysis.period};
}

}  // namespace rss::control
