#include "control/pid.hpp"

#include <algorithm>
#include <stdexcept>

namespace rss::control {

double PidController::update(double error, double dt, bool allow_integration) {
  if (dt <= 0.0) throw std::invalid_argument("PidController::update: dt must be > 0");

  // Derivative of error through a first-order low-pass with time constant
  // Td/N. With last_error_ unset (first sample) the derivative is zero: a
  // controller must not kick on its first observation.
  double derivative = 0.0;
  if (gains_.has_derivative() && last_error_) {
    const double raw = (error - *last_error_) / dt;
    const double tf = gains_.td / filter_n_;
    const double alpha = dt / (tf + dt);  // in (0,1]; alpha→1 as filter vanishes
    derivative_state_ += alpha * (raw - derivative_state_);
    derivative = derivative_state_;
  }

  // Backward-Euler integral candidate; committed only if anti-windup
  // allows. Rectangle-of-current-error rather than trapezoid on purpose:
  // with event-driven sampling a single enormous previous error (e.g. the
  // first sample after a saturation episode) would otherwise contribute a
  // poisoned half-slice that pins the output to the rail for many samples.
  double integral_candidate = integral_;
  if (gains_.has_integral()) integral_candidate += error * dt;

  const double p_term = error;
  const double i_term = gains_.has_integral() ? integral_candidate / gains_.ti : 0.0;
  const double d_term = gains_.has_derivative() ? gains_.td * derivative : 0.0;
  const double unsaturated = gains_.kp * (p_term + i_term + d_term);
  const double saturated = std::clamp(unsaturated, limits_.min, limits_.max);

  // Conditional integration: accept the new integral unless we are pinned
  // at a limit and the error would wind us further into it, or the caller
  // separated the integral for this sample.
  const bool winding_up = (saturated >= limits_.max && error > 0.0) ||
                          (saturated <= limits_.min && error < 0.0);
  if (gains_.has_integral() && allow_integration && !winding_up)
    integral_ = integral_candidate;

  last_error_ = error;
  last_output_ = saturated;
  return saturated;
}

void PidController::reset() {
  integral_ = 0.0;
  derivative_state_ = 0.0;
  last_error_.reset();
  last_output_ = 0.0;
}

}  // namespace rss::control
