#include "control/oscillation.hpp"

#include <algorithm>
#include <cmath>

namespace rss::control {

OscillationAnalysis OscillationDetector::analyze(
    std::span<const ResponseSample> response) const {
  OscillationAnalysis out;
  if (response.size() < 8) return out;

  const auto skip = static_cast<std::size_t>(
      static_cast<double>(response.size()) * opt_.transient_fraction);
  const auto window = response.subspan(std::min(skip, response.size() - 4));

  double mean = 0.0;
  double mean_abs = 0.0;
  for (const auto& s : window) {
    mean += s.value;
    mean_abs += std::abs(s.value);
  }
  mean /= static_cast<double>(window.size());
  mean_abs /= static_cast<double>(window.size());

  // Strict local maxima of the deviation-from-mean signal, positive side
  // only — one peak per oscillation cycle.
  struct Peak {
    double t;
    double amplitude;
  };
  std::vector<Peak> peaks;
  for (std::size_t i = 1; i + 1 < window.size(); ++i) {
    const double prev = window[i - 1].value - mean;
    const double cur = window[i].value - mean;
    const double next = window[i + 1].value - mean;
    if (cur > 0.0 && cur >= prev && cur > next) {
      // Merge plateau peaks: if the previous peak is extremely close in
      // time and amplitude, treat them as one crest.
      if (!peaks.empty() && window[i].t - peaks.back().t <
                                1e-9 + 1e-6 * std::abs(peaks.back().t)) {
        continue;
      }
      peaks.push_back({window[i].t, cur});
    }
  }
  out.peak_count = peaks.size();

  if (peaks.size() < opt_.min_peaks) {
    out.kind = ResponseKind::kFlat;
    return out;
  }

  double amp_sum = 0.0;
  for (const auto& p : peaks) amp_sum += p.amplitude;
  out.mean_amplitude = amp_sum / static_cast<double>(peaks.size());

  const double floor_amp = std::max(opt_.flat_threshold, opt_.flat_threshold * mean_abs);
  if (out.mean_amplitude < floor_amp) {
    out.kind = ResponseKind::kFlat;
    return out;
  }

  double period_sum = 0.0;
  for (std::size_t i = 1; i < peaks.size(); ++i) period_sum += peaks[i].t - peaks[i - 1].t;
  out.period = period_sum / static_cast<double>(peaks.size() - 1);

  // Geometric mean of successive amplitude ratios: <1 decaying, ~1
  // sustained, >1 growing. Geometric so one anomalous cycle cannot mask a
  // consistent trend.
  double log_ratio_sum = 0.0;
  std::size_t ratios = 0;
  for (std::size_t i = 1; i < peaks.size(); ++i) {
    if (peaks[i - 1].amplitude > 0.0 && peaks[i].amplitude > 0.0) {
      log_ratio_sum += std::log(peaks[i].amplitude / peaks[i - 1].amplitude);
      ++ratios;
    }
  }
  out.amplitude_trend = ratios ? std::exp(log_ratio_sum / static_cast<double>(ratios)) : 1.0;

  if (out.amplitude_trend > 1.0 + opt_.amplitude_tolerance) {
    out.kind = ResponseKind::kGrowing;
  } else if (out.amplitude_trend < 1.0 - opt_.amplitude_tolerance) {
    out.kind = ResponseKind::kDamped;
  } else {
    out.kind = ResponseKind::kSustained;
  }
  return out;
}

}  // namespace rss::control
