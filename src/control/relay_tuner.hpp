#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "control/oscillation.hpp"
#include "control/ziegler_nichols.hpp"

namespace rss::control {

/// Åström–Hägglund relay (auto-tuning) experiment — the modern, safer
/// alternative to the gain ramp: instead of pushing the loop to the edge of
/// instability, drive it with a bang-bang relay and read the induced limit
/// cycle. Included because the paper's Z-N procedure is manual and fragile;
/// this gives the library a production-grade tuning path and an ablation
/// point (EXT-ZN).
///
///   Kc = 4·d / (π·a),  Tc = limit-cycle period
///
/// where d is the relay amplitude and a the process-variable oscillation
/// amplitude.
class RelayTuner {
 public:
  struct Options {
    double relay_amplitude{1.0};  ///< d: output toggles between ±d around bias
    double output_bias{0.0};
    double hysteresis{0.0};       ///< switch deadband on the error signal
    OscillationDetector::Options detector{};
  };

  /// Closed-loop relay experiment supplied by the caller: it must run the
  /// plant, calling `relay_output(error)` each step to obtain the actuation,
  /// and return the recorded PV response.
  using Experiment =
      std::function<std::vector<ResponseSample>(const std::function<double(double)>& relay_output)>;

  RelayTuner() = default;
  explicit RelayTuner(Options opt) : opt_{opt} {}

  [[nodiscard]] std::optional<TuningResult> tune(const Experiment& experiment) const;

 private:
  Options opt_{};
};

}  // namespace rss::control
