#pragma once

#include <cstddef>
#include <deque>
#include <vector>

#include "control/delay_line.hpp"
#include "control/oscillation.hpp"

namespace rss::control {

/// Analytic plant models, fixed-step integrated, used to (a) verify the PID
/// and the tuners against control-theory closed forms and (b) provide a
/// fast offline stand-in for the IFQ when pre-tuning RSS gains.
///
/// All plants expose the same shape: step(u, dt) -> y.
class Plant {
 public:
  virtual ~Plant() = default;
  /// Advance the plant by dt seconds under actuation u; returns the new
  /// process-variable value.
  virtual double step(double u, double dt) = 0;
  [[nodiscard]] virtual double output() const = 0;
  virtual void reset() = 0;
};

/// First-order lag with dead time:  tau·dy/dt + y = K·u(t - L).
/// A P-only loop around this plant is destabilizable iff L > 0 — the test
/// suite uses that boundary to exercise the tuner's "no result" path.
class FirstOrderPlant final : public Plant {
 public:
  FirstOrderPlant(double gain, double tau, double dead_time = 0.0, double dt_hint = 1e-3);

  double step(double u, double dt) override;
  [[nodiscard]] double output() const override { return y_; }
  void reset() override;

  [[nodiscard]] double gain() const { return k_; }
  [[nodiscard]] double tau() const { return tau_; }
  [[nodiscard]] double dead_time() const { return dead_time_; }

 private:
  double delayed_input(double u, double dt);
  double k_;
  double tau_;
  double dead_time_;
  double y_{0.0};
  // Dead-time as a FIFO of (remaining_delay, value) pairs.
  std::deque<DelayedValue> delay_line_;
  double current_delayed_{0.0};
};

/// Integrator with dead time:  dy/dt = K·u(t - L).  This is the IFQ in
/// miniature — queue occupancy integrates (arrival rate − drain rate), and
/// the feedback path (ACK clock) contributes an RTT of dead time. A P-only
/// loop oscillates for any gain above 0 when L > 0, exactly the sustained
/// oscillation Ziegler–Nichols needs. Optional saturation models the finite
/// queue.
class IntegratorPlant final : public Plant {
 public:
  IntegratorPlant(double gain, double dead_time = 0.0, double y_min = -1e18,
                  double y_max = 1e18);

  double step(double u, double dt) override;
  [[nodiscard]] double output() const override { return y_; }
  void reset() override;

 private:
  double k_;
  double dead_time_;
  double y_min_, y_max_;
  double y_{0.0};
  std::deque<DelayedValue> delay_line_;
  double current_delayed_{0.0};
};

/// Underdamped second-order plant:  y'' + 2ζω y' + ω² y = K ω² u.
/// Used to validate the oscillation detector's damped/growing taxonomy with
/// a system whose envelope is known in closed form.
class SecondOrderPlant final : public Plant {
 public:
  SecondOrderPlant(double gain, double natural_freq, double damping);

  double step(double u, double dt) override;
  [[nodiscard]] double output() const override { return y_; }
  void reset() override;

 private:
  double k_;
  double omega_;
  double zeta_;
  double y_{0.0};
  double v_{0.0};
};

/// Run a unity-feedback P-control loop around `plant` toward `setpoint`
/// for `duration` seconds at step `dt`, recording the PV. The workhorse
/// "experiment" for tuner tests.
[[nodiscard]] std::vector<ResponseSample> run_p_control_experiment(
    Plant& plant, double kp, double setpoint, double duration, double dt);

}  // namespace rss::control
