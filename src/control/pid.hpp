#pragma once

#include <optional>

namespace rss::control {

/// Gains in the ISA "standard" form the paper quotes (§3):
///
///   u(t) = Kp * ( E + (1/Ti) ∫E dt + Td * dE/dt )
///
/// Ti is the integral (reset) time in seconds, Td the derivative time in
/// seconds. Ti = +inf (or <= 0, treated as "off") disables integral action;
/// Td = 0 disables derivative action.
struct PidGains {
  double kp{1.0};
  double ti{0.0};  // <= 0 means no integral action
  double td{0.0};  // 0 means no derivative action

  [[nodiscard]] bool has_integral() const { return ti > 0.0; }
  [[nodiscard]] bool has_derivative() const { return td > 0.0; }
};

/// Saturation limits applied to the controller output.
struct OutputLimits {
  double min{-1e18};
  double max{+1e18};
};

/// Discrete PID controller with:
///  * variable sampling interval (event-driven callers pass dt per update —
///    in RSS the "sample clock" is the ACK arrival process),
///  * backward-Euler integral,
///  * derivative on error through a first-order filter (cutoff Td/N) so a
///    step disturbance does not produce an unbounded kick,
///  * conditional-integration anti-windup: the integral term freezes while
///    the output is saturated and the error would push it further into
///    saturation.
///
/// This is the controller of the paper's §3; tests verify textbook step
/// responses against closed forms.
class PidController {
 public:
  PidController() = default;
  explicit PidController(PidGains gains, OutputLimits limits = {},
                         double derivative_filter_n = 10.0)
      : gains_{gains}, limits_{limits}, filter_n_{derivative_filter_n} {}

  /// Advance the controller by one sample: `error` = setpoint - process
  /// variable, `dt` = seconds since the previous update (> 0). Returns the
  /// saturated output.
  ///
  /// `allow_integration = false` freezes the integral for this sample
  /// ("integral separation"): callers use it while the error is far outside
  /// the linear band, where integrating would only wind up — RSS does this
  /// during the sub-BDP slow-start phase when the IFQ drains to empty every
  /// round.
  double update(double error, double dt, bool allow_integration = true);

  /// Forget all state (integral, derivative filter, last error).
  void reset();

  /// Re-centre the integral term (used by RSS when a send-stall proves the
  /// integral has wound up past reality).
  void set_integral(double value) { integral_ = value; }

  [[nodiscard]] const PidGains& gains() const { return gains_; }
  void set_gains(PidGains g) { gains_ = g; }
  [[nodiscard]] OutputLimits limits() const { return limits_; }
  void set_limits(OutputLimits l) { limits_ = l; }

  [[nodiscard]] double integral() const { return integral_; }
  [[nodiscard]] double last_output() const { return last_output_; }
  [[nodiscard]] double last_error() const { return last_error_.value_or(0.0); }

 private:
  PidGains gains_{};
  OutputLimits limits_{};
  double filter_n_{10.0};

  double integral_{0.0};         // ∫E dt accumulated (pre-gain)
  double derivative_state_{0.0}; // filtered dE/dt
  std::optional<double> last_error_;
  double last_output_{0.0};
};

}  // namespace rss::control
