#pragma once

namespace rss::control {

/// A (remaining_delay, value) pair queued inside a dead-time delay line.
/// Plants and the fluid traffic integrator share this shape so the helper
/// below works over any deque-like container of it.
struct DelayedValue {
  double remaining;
  double value;
};

/// Advance a (remaining_delay, value) FIFO by dt and return the value that
/// is currently emerging from the dead-time line.
template <typename Deque>
double advance_delay_line(Deque& line, double& current, double u, double dead_time,
                          double dt) {
  if (dead_time <= 0.0) {
    current = u;
    return current;
  }
  line.push_back({dead_time, u});
  for (auto& e : line) e.remaining -= dt;
  while (!line.empty() && line.front().remaining <= 0.0) {
    current = line.front().value;
    line.pop_front();
  }
  return current;
}

}  // namespace rss::control
