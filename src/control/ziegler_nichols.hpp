#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "control/oscillation.hpp"
#include "control/pid.hpp"

namespace rss::control {

/// Result of a closed-loop tuning experiment: the critical gain Kc and the
/// critical (ultimate) period Tc, plus rule-based gain sets derived from
/// them.
struct TuningResult {
  double kc{0.0};
  double tc{0.0};

  /// The paper's rule (§3): Kp = 0.33 Kc, Ti = 0.5 Tc, Td = 0.33 Tc.
  [[nodiscard]] PidGains paper_rule() const { return {0.33 * kc, 0.5 * tc, 0.33 * tc}; }

  /// Classic Ziegler–Nichols PID rule for reference/ablation:
  /// Kp = 0.6 Kc, Ti = 0.5 Tc, Td = 0.125 Tc.
  [[nodiscard]] PidGains classic_zn_pid() const { return {0.6 * kc, 0.5 * tc, 0.125 * tc}; }

  /// Classic Z-N PI rule: Kp = 0.45 Kc, Ti = Tc / 1.2.
  [[nodiscard]] PidGains classic_zn_pi() const { return {0.45 * kc, tc / 1.2, 0.0}; }
};

/// Automates the Ziegler–Nichols closed-loop ("ultimate gain") procedure
/// from §3 of the paper:
///
///   1. run the loop under proportional-only control,
///   2. increase Kp geometrically until the response shows sustained
///      oscillation (detected by OscillationDetector),
///   3. refine by bisection between the largest damped gain and the
///      smallest oscillating gain,
///   4. report Kc and the oscillation period Tc.
///
/// The experiment itself is caller-supplied: a functor mapping a candidate
/// proportional gain to the recorded process-variable response. This keeps
/// the tuner agnostic to whether the plant is an analytic model (tests) or
/// a full TCP simulation (RssTuner).
class ZieglerNicholsTuner {
 public:
  /// Run the closed loop with P-only gain `kp`; return the PV trajectory.
  using Experiment = std::function<std::vector<ResponseSample>(double kp)>;

  struct Options {
    double kp_initial{0.01};
    double kp_max{1e6};
    double growth_factor{2.0};   ///< geometric ramp multiplier
    int bisection_steps{8};      ///< refinement iterations once bracketed
    OscillationDetector::Options detector{};
  };

  ZieglerNicholsTuner() = default;
  explicit ZieglerNicholsTuner(Options opt) : opt_{opt} {}

  /// Returns nullopt if no gain in [kp_initial, kp_max] produces sustained
  /// or growing oscillation (plant not destabilizable by P action — e.g. a
  /// pure first-order lag).
  [[nodiscard]] std::optional<TuningResult> tune(const Experiment& experiment) const;

  /// Number of experiments executed by the last tune() call.
  [[nodiscard]] int experiments_run() const { return experiments_run_; }

 private:
  Options opt_{};
  mutable int experiments_run_{0};
};

}  // namespace rss::control
