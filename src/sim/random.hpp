#pragma once

#include <cstdint>
#include <limits>

namespace rss::sim {

/// Deterministic pseudo-random source for workloads and jitter.
///
/// xoshiro256** seeded through splitmix64, the standard recipe: fast,
/// high quality, and — unlike std::mt19937_64 — cheap to copy, so each
/// flow/app can own an independent stream forked from one master seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the scalar seed into the 256-bit state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit word (xoshiro256** next()).
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [lo, hi] inclusive (Lemire-style rejection-free
  /// multiply-shift is overkill here; modulo bias over a 64-bit range with
  /// simulation-scale spans is negligible, but we debias anyway).
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) {
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return next_u64();  // full range requested
    constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
    const std::uint64_t limit = kMax - kMax % span;
    std::uint64_t v = next_u64();
    while (v >= limit) v = next_u64();
    return lo + v % span;
  }

  /// Exponential variate with the given mean (> 0). Used for Poisson
  /// cross-traffic inter-arrivals.
  double next_exponential(double mean);

  /// Standard normal via Marsaglia polar method.
  double next_normal(double mu, double sigma);

  /// Bernoulli trial.
  bool next_bool(double p_true) { return next_double() < p_true; }

  /// Fork an independent stream (jump-free: derives a child seed from the
  /// parent stream; adequate independence for simulation workloads).
  Rng fork() { return Rng{next_u64() ^ 0xd1b54a32d192ed03ULL}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
  bool have_spare_normal_{false};
  double spare_normal_{0.0};
};

}  // namespace rss::sim
