#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/event_entry.hpp"
#include "sim/time.hpp"

namespace rss::sim {

/// Calendar queue (Brown '88) — the classic O(1)-amortized event structure
/// of ns-2-lineage simulators, provided as an alternative to the binary
/// heap inside Scheduler for workloads with dense, near-uniform event
/// spacing (packet serializations at line rate are exactly that).
///
/// Days (buckets) of width `day_width` cover one "year"; an event lands in
/// bucket (t / width) mod days and buckets hold sorted-by-(time, birth,
/// origin, seq) vectors. The structure resizes (doubling/halving days,
/// re-estimating width) when occupancy drifts outside [days/2, 2*days].
///
/// The queue stores plain EventEntry handles — the same 40-byte POD the
/// heap backend pushes — so switching backends moves zero callback state
/// and rebuilds during resize are flat memmoves, not std::function copies.
/// This class is a priority-queue primitive (push/pop-min), deliberately
/// mirroring the interface shape of the heap inside Scheduler so the
/// property suite can run both against identical random schedules and
/// demand identical pop order. bench/micro_substrate compares throughput.
class CalendarQueue {
 public:
  explicit CalendarQueue(std::size_t initial_days = 16,
                         Time initial_day_width = Time::microseconds(100));

  void push(const EventEntry& entry);

  /// Remove and return the earliest entry (ties by seq). The caller must
  /// check empty() first.
  EventEntry pop_min();

  /// Earliest entry without removing it (ties by seq). The caller must check
  /// empty() first. The reference is invalidated by any mutating call.
  [[nodiscard]] const EventEntry& peek_min() const;

  /// Remove the entry matching (at, birth, origin, seq) wherever it sits;
  /// returns true iff something was removed. O(log bucket + bucket shift) —
  /// lets a caller that tracks liveness (Scheduler cancellation) delete
  /// eagerly instead of lazily, which keeps the monotonic pop floor from
  /// advancing past still-relevant times.
  bool remove(Time at, Time birth, std::uint32_t origin, std::uint64_t seq);

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t day_count() const { return buckets_.size(); }
  [[nodiscard]] Time day_width() const { return day_width_; }
  [[nodiscard]] std::uint64_t resizes() const { return resizes_; }

 private:
  [[nodiscard]] std::size_t bucket_of(Time t) const {
    const auto ticks =
        static_cast<std::uint64_t>(t.nanoseconds_count()) /
        static_cast<std::uint64_t>(day_width_.nanoseconds_count());
    return static_cast<std::size_t>(ticks % buckets_.size());
  }
  /// Bucket index holding the earliest entry. Requires size_ > 0.
  [[nodiscard]] std::size_t min_bucket() const;
  void maybe_resize();
  void rebuild(std::size_t new_days, Time new_width);

  /// Memoized min_bucket() result so the common peek-then-pop sequence
  /// (Scheduler::run_until does one per event) pays the O(days) scan once.
  /// Any mutation invalidates it.
  mutable std::optional<std::size_t> min_bucket_cache_;
  /// Estimate a good day width from a sample of queued entries (mean gap).
  [[nodiscard]] Time estimate_width() const;

  std::vector<std::vector<EventEntry>> buckets_;
  Time day_width_;
  std::size_t size_{0};
  Time last_popped_{Time::zero()};
  std::uint64_t resizes_{0};
};

}  // namespace rss::sim
