#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace rss::sim {

/// Facade bundling everything one simulation run needs: the event
/// scheduler, a master RNG, and run-control helpers. All simulation objects
/// hold a `Simulation&` — there are no globals, so independent runs can
/// execute concurrently on different threads (the sweep runner relies on
/// this).
class Simulation {
 public:
  explicit Simulation(std::uint64_t seed = 1,
                      QueueBackend backend = QueueBackend::kBinaryHeap)
      : scheduler_{backend}, rng_{seed} {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] Scheduler& scheduler() { return scheduler_; }
  [[nodiscard]] const Scheduler& scheduler() const { return scheduler_; }
  [[nodiscard]] Time now() const { return scheduler_.now(); }

  /// Master RNG; components should fork() their own streams from it so that
  /// adding a component does not perturb the draws seen by others.
  [[nodiscard]] Rng& rng() { return rng_; }

  EventId at(Time t, Scheduler::Callback cb) { return scheduler_.schedule_at(t, std::move(cb)); }
  /// Schedule with an explicit birth time for the same-timestamp tie-break
  /// (see Scheduler::schedule_at_from). Used by cross-partition drains.
  EventId at_from(Time birth, Time t, Scheduler::Callback cb) {
    return scheduler_.schedule_at_from(birth, t, std::move(cb));
  }
  EventId in(Time delay, Scheduler::Callback cb) {
    return scheduler_.schedule_in(delay, std::move(cb));
  }
  /// Origin-ranked scheduling: same-(at, birth) ties resolve by the node
  /// label `origin` and its private rank counter instead of global insertion
  /// order (see Scheduler::schedule_at_ranked). Links use the sender
  /// device's origin so pop order is intrinsic to the topology, not to
  /// which scheduler an event was inserted into.
  EventId at_ranked(std::uint32_t origin, Time t, Scheduler::Callback cb) {
    return scheduler_.schedule_at_ranked(origin, t, std::move(cb));
  }
  EventId in_ranked(std::uint32_t origin, Time delay, Scheduler::Callback cb) {
    return scheduler_.schedule_in_ranked(origin, delay, std::move(cb));
  }
  /// Drain-side arm with an externally drawn (origin, rank) pair (see
  /// Scheduler::schedule_at_imported). Used by cross-partition deliveries.
  EventId at_imported(std::uint32_t origin, std::uint64_t rank, Time birth, Time t,
                      Scheduler::Callback cb) {
    return scheduler_.schedule_at_imported(origin, rank, birth, t, std::move(cb));
  }
  /// Batched event train: `cb` fires `count` times at `start`,
  /// `start + stride`, ... — one queue entry and one callback for the whole
  /// burst (see Scheduler::schedule_train). NetDevice uses this for
  /// back-to-back packet serializations at line rate.
  EventId train(Time start, Time stride, std::uint64_t count, Scheduler::Callback cb) {
    return scheduler_.schedule_train(start, stride, count, std::move(cb));
  }
  bool cancel(EventId id) { return scheduler_.cancel(id); }

  void run() { scheduler_.run(); }
  void run_until(Time t) { scheduler_.run_until(t); }
  void run_for(Time d) { scheduler_.run_until(scheduler_.now() + d); }
  void stop() { scheduler_.stop(); }

  /// Invoke `fn(now)` every `period` until it returns false or the
  /// simulation ends. First invocation at now() + period.
  void every(Time period, std::function<bool(Time)> fn);

 private:
  Scheduler scheduler_;
  Rng rng_;
};

}  // namespace rss::sim
