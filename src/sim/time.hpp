#pragma once

// Time uses defaulted operator<=> (and the rest of the tree assumes C++20).
// Without this guard a -std=c++17 build dies with the cryptic "declaration
// of 'operator<=' as non-function" deep inside this header; fail loudly and
// early instead. CMake enforces cxx_std_20 via target_compile_features —
// this catches hand-rolled compiler invocations.
#if defined(_MSVC_LANG)
#if _MSVC_LANG < 202002L
#error "rss requires C++20: compile with /std:c++20 or newer"
#endif
#elif __cplusplus < 202002L
#error "rss requires C++20: compile with -std=c++20 or newer"
#endif

#include <compare>
#include <concepts>
#include <cstdint>
#include <iosfwd>
#include <limits>

namespace rss::sim {

/// Simulation time, an absolute instant or a duration, with nanosecond
/// resolution stored in a signed 64-bit counter (covers ~292 years, far
/// beyond any simulation horizon).
///
/// A single type serves both instants and durations — the arithmetic that
/// matters (instant + duration, instant - instant) is closed over it, and
/// network-simulation code mixes the two freely (ns-3 makes the same call).
/// All factories and accessors are constexpr so link rates and RTTs can be
/// compile-time constants.
class Time {
 public:
  constexpr Time() = default;

  [[nodiscard]] static constexpr Time nanoseconds(std::int64_t ns) { return Time{ns}; }
  [[nodiscard]] static constexpr Time microseconds(std::int64_t us) { return Time{us * 1'000}; }
  [[nodiscard]] static constexpr Time milliseconds(std::int64_t ms) { return Time{ms * 1'000'000}; }
  [[nodiscard]] static constexpr Time seconds(std::int64_t s) { return Time{s * 1'000'000'000}; }

  /// Fractional seconds, rounding to the nearest nanosecond.
  [[nodiscard]] static constexpr Time from_seconds(double s) {
    return Time{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
  }

  [[nodiscard]] static constexpr Time zero() { return Time{0}; }
  /// Sentinel meaning "never"; compares greater than every reachable time.
  [[nodiscard]] static constexpr Time infinity() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t nanoseconds_count() const { return ns_; }
  [[nodiscard]] constexpr std::int64_t microseconds_count() const { return ns_ / 1'000; }
  [[nodiscard]] constexpr std::int64_t milliseconds_count() const { return ns_ / 1'000'000; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }

  [[nodiscard]] constexpr bool is_zero() const { return ns_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return ns_ < 0; }
  [[nodiscard]] constexpr bool is_infinite() const { return *this == infinity(); }

  constexpr auto operator<=>(const Time&) const = default;

  constexpr Time& operator+=(Time rhs) {
    ns_ += rhs.ns_;
    return *this;
  }
  constexpr Time& operator-=(Time rhs) {
    ns_ -= rhs.ns_;
    return *this;
  }

  [[nodiscard]] friend constexpr Time operator+(Time a, Time b) { return Time{a.ns_ + b.ns_}; }
  [[nodiscard]] friend constexpr Time operator-(Time a, Time b) { return Time{a.ns_ - b.ns_}; }
  template <std::integral I>
  [[nodiscard]] friend constexpr Time operator*(Time a, I k) {
    return Time{a.ns_ * static_cast<std::int64_t>(k)};
  }
  template <std::integral I>
  [[nodiscard]] friend constexpr Time operator*(I k, Time a) {
    return Time{a.ns_ * static_cast<std::int64_t>(k)};
  }
  [[nodiscard]] friend constexpr Time operator*(Time a, double k) {
    return Time::from_seconds(a.to_seconds() * k);
  }
  template <std::integral I>
  [[nodiscard]] friend constexpr Time operator/(Time a, I k) {
    return Time{a.ns_ / static_cast<std::int64_t>(k)};
  }
  /// Ratio of two durations.
  [[nodiscard]] friend constexpr double operator/(Time a, Time b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }

 private:
  constexpr explicit Time(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_{0};
};

std::ostream& operator<<(std::ostream& os, Time t);

[[nodiscard]] constexpr Time min(Time a, Time b) { return a < b ? a : b; }
[[nodiscard]] constexpr Time max(Time a, Time b) { return a < b ? b : a; }

namespace literals {
[[nodiscard]] constexpr Time operator""_ns(unsigned long long v) {
  return Time::nanoseconds(static_cast<std::int64_t>(v));
}
[[nodiscard]] constexpr Time operator""_us(unsigned long long v) {
  return Time::microseconds(static_cast<std::int64_t>(v));
}
[[nodiscard]] constexpr Time operator""_ms(unsigned long long v) {
  return Time::milliseconds(static_cast<std::int64_t>(v));
}
[[nodiscard]] constexpr Time operator""_s(unsigned long long v) {
  return Time::seconds(static_cast<std::int64_t>(v));
}
[[nodiscard]] constexpr Time operator""_s(long double v) {
  return Time::from_seconds(static_cast<double>(v));
}
}  // namespace literals

}  // namespace rss::sim
