#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace rss::sim::alloc_guard {

/// Global heap-allocation counters, bumped by the replacement operator
/// new/delete that RSS_ALLOC_GUARD_IMPLEMENT emits. Zero-initialized,
/// lock-free; counting is relaxed — the guard asserts *totals* after
/// joining any threads, it is not a synchronization primitive.
struct Counters {
  std::atomic<std::uint64_t> allocations{0};
  std::atomic<std::uint64_t> deallocations{0};
  std::atomic<std::uint64_t> bytes{0};
};

inline Counters& counters() {
  static Counters instance;
  return instance;
}

/// True in exactly one translation unit per binary — the one that defined
/// RSS_ALLOC_GUARD_IMPLEMENT before including this header — so tests can
/// assert the hook is actually installed instead of silently measuring
/// nothing.
bool installed();

/// Scope that samples the global allocation count at construction.
/// `allocations()` returns the number of operator-new calls since then:
///
///   AllocScope guard;
///   ... steady-state hot loop ...
///   EXPECT_EQ(guard.allocations(), 0u);
///
/// The counters are process-global, so keep unrelated allocation out of the
/// scoped region (gtest assertion *failures* allocate; passes do not).
class AllocScope {
 public:
  AllocScope()
      : start_allocs_{counters().allocations.load(std::memory_order_relaxed)},
        start_bytes_{counters().bytes.load(std::memory_order_relaxed)} {}

  [[nodiscard]] std::uint64_t allocations() const {
    return counters().allocations.load(std::memory_order_relaxed) - start_allocs_;
  }
  [[nodiscard]] std::uint64_t bytes() const {
    return counters().bytes.load(std::memory_order_relaxed) - start_bytes_;
  }

 private:
  std::uint64_t start_allocs_;
  std::uint64_t start_bytes_;
};

}  // namespace rss::sim::alloc_guard

// ---------------------------------------------------------------------------
// Replacement global operator new/delete — emitted only where
// RSS_ALLOC_GUARD_IMPLEMENT is defined (one TU per test binary; the standard
// forbids replacing these in more than one place). Counting every form that
// allocates (throwing, nothrow, array, aligned) keeps the zero-allocation
// assertions airtight: a hot path that switched to nothrow or over-aligned
// new would still trip the guard.
// ---------------------------------------------------------------------------
#ifdef RSS_ALLOC_GUARD_IMPLEMENT

#include <cstdlib>
#include <new>

namespace rss::sim::alloc_guard {
bool installed() { return true; }

namespace detail {

inline void* counted_alloc(std::size_t size) {
  counters().allocations.fetch_add(1, std::memory_order_relaxed);
  counters().bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size);  // NOLINT(cppcoreguidelines-no-malloc)
}

inline void* counted_aligned_alloc(std::size_t size, std::size_t align) {
  counters().allocations.fetch_add(1, std::memory_order_relaxed);
  counters().bytes.fetch_add(size, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align, size) != 0) return nullptr;
  return p;
}

inline void counted_free(void* p) {
  if (p != nullptr) counters().deallocations.fetch_add(1, std::memory_order_relaxed);
  std::free(p);  // NOLINT(cppcoreguidelines-no-malloc)
}

}  // namespace detail
}  // namespace rss::sim::alloc_guard

// NOLINTBEGIN(misc-definitions-in-headers) — this block is compiled into
// exactly one TU, gated by RSS_ALLOC_GUARD_IMPLEMENT.
void* operator new(std::size_t size) {
  void* p = rss::sim::alloc_guard::detail::counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return rss::sim::alloc_guard::detail::counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return rss::sim::alloc_guard::detail::counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = rss::sim::alloc_guard::detail::counted_aligned_alloc(
      size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { rss::sim::alloc_guard::detail::counted_free(p); }
void operator delete[](void* p) noexcept { rss::sim::alloc_guard::detail::counted_free(p); }
void operator delete(void* p, std::size_t) noexcept {
  rss::sim::alloc_guard::detail::counted_free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  rss::sim::alloc_guard::detail::counted_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  rss::sim::alloc_guard::detail::counted_free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  rss::sim::alloc_guard::detail::counted_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  rss::sim::alloc_guard::detail::counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  rss::sim::alloc_guard::detail::counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  rss::sim::alloc_guard::detail::counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  rss::sim::alloc_guard::detail::counted_free(p);
}
// NOLINTEND(misc-definitions-in-headers)

#endif  // RSS_ALLOC_GUARD_IMPLEMENT
