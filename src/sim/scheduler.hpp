#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "sim/event_entry.hpp"
#include "sim/inline_callback.hpp"
#include "sim/time.hpp"

namespace rss::sim {

/// Event-queue implementation behind Scheduler. Both backends honor the
/// same contract — (time, insertion-sequence) pop order — so the choice is
/// purely a performance knob: the binary heap is the robust default, the
/// calendar queue is O(1) amortized on dense near-uniform event spacings
/// (packet serializations at line rate).
enum class QueueBackend {
  kBinaryHeap,
  kCalendarQueue,
};

/// Opaque handle to a scheduled event (or event train), used for
/// cancellation. Encodes an arena slot index plus a generation counter, so
/// a handle to a fired/cancelled event can never accidentally cancel the
/// unrelated event that later reuses its slot. Default constructed handles
/// are inert (cancel() on them is a no-op).
class EventId {
 public:
  constexpr EventId() = default;
  [[nodiscard]] constexpr bool valid() const { return raw_ != 0; }
  [[nodiscard]] constexpr std::uint64_t raw() const { return raw_; }
  constexpr auto operator<=>(const EventId&) const = default;

 private:
  friend class Scheduler;
  constexpr EventId(std::uint32_t slot, std::uint32_t gen)
      : raw_{(static_cast<std::uint64_t>(slot) << 32) | gen} {}
  [[nodiscard]] constexpr std::uint32_t slot() const {
    return static_cast<std::uint32_t>(raw_ >> 32);
  }
  [[nodiscard]] constexpr std::uint32_t gen() const {
    return static_cast<std::uint32_t>(raw_ & 0xFFFF'FFFFu);
  }
  std::uint64_t raw_{0};
};

/// Discrete-event scheduler: (time, insertion-sequence) ordered callbacks
/// behind a selectable queue backend.
///
/// Same-timestamp events fire in insertion order (the sequence tiebreak),
/// which keeps simulations deterministic regardless of queue internals —
/// a correctness requirement, not a nicety: TCP ACK processing and link
/// drain events frequently coincide.
///
/// The event core is allocation-free on the hot path. Callbacks are
/// InlineCallback (small-buffer, no heap fallback) and live in a slot
/// arena recycled through a free list; both backends store only the 40-byte
/// POD EventEntry. Cancellation resolves an EventId to its slot in O(1)
/// with no hashing — the TCP retransmission timer is rescheduled on every
/// ACK, so this path is hot. The heap backend cancels lazily (the pop loop
/// discards entries whose generation no longer matches) but always skims
/// dead entries off the top at cancel/pop boundaries, so next_event_time()
/// and empty() are genuinely const. The calendar backend cancels eagerly
/// (buckets are sorted vectors, so removal is a cheap binary search) —
/// required anyway, because popping a dead far-future entry would advance
/// the calendar's monotonic floor past times that are still schedulable.
class Scheduler {
 public:
  using Callback = InlineCallback;

  explicit Scheduler(QueueBackend backend = QueueBackend::kBinaryHeap) : backend_{backend} {}
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] QueueBackend backend() const { return backend_; }

  /// Current simulation time. Monotonically non-decreasing.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `cb` at absolute time `at` (must be >= now()).
  EventId schedule_at(Time at, Callback cb) {
    return arm(at, Time::zero(), 1, std::move(cb), now_, 0);
  }

  /// Schedule `cb` at `at` as if it had been inserted at time `birth`
  /// (birth <= at). Same-timestamp events pop in (birth, origin, seq)
  /// order, so this lets a cross-partition drain — which physically inserts
  /// at the window boundary — give a handoff the tie-break rank its
  /// source-side transmit time would have earned in a single-scheduler run.
  /// For ordinary scheduling use schedule_at, which passes birth = now().
  EventId schedule_at_from(Time birth, Time at, Callback cb) {
    if (birth > at)
      throw std::invalid_argument("Scheduler: event born after its own fire time");
    return arm(at, Time::zero(), 1, std::move(cb), birth, 0);
  }

  /// Schedule `cb` after relative delay `delay` (must be >= 0).
  EventId schedule_in(Time delay, Callback cb) {
    return schedule_at(now_ + delay, std::move(cb));
  }

  /// Schedule on the `origin` tie-break stream (birth = now()): the event's
  /// rank among same-(at, birth) peers is drawn from origin's private
  /// counter, not the global insertion sequence. Origins label *nodes* in a
  /// partitioned topology, so the rank is a pure function of the node's
  /// local transmit history — the same value whether the node's events land
  /// in one shared scheduler or its own partition's. Origin 0 is the
  /// default stream used by every un-ranked schedule_* call.
  EventId schedule_at_ranked(std::uint32_t origin, Time at, Callback cb) {
    return arm(at, Time::zero(), 1, std::move(cb), now_, origin);
  }

  /// Relative-delay form of schedule_at_ranked.
  EventId schedule_in_ranked(std::uint32_t origin, Time delay, Callback cb) {
    return schedule_at_ranked(origin, now_ + delay, std::move(cb));
  }

  /// Schedule with an explicit, externally drawn (origin, rank) pair and
  /// birth time — the cross-partition drain path. The rank was consumed
  /// from the *source* scheduler's origin counter at transmit time
  /// (draw_rank), so it is exactly the rank a single-scheduler run would
  /// have assigned; this call does not touch the local counters.
  EventId schedule_at_imported(std::uint32_t origin, std::uint64_t rank, Time birth,
                               Time at, Callback cb) {
    if (birth > at)
      throw std::invalid_argument("Scheduler: event born after its own fire time");
    return arm_with_rank(at, Time::zero(), 1, std::move(cb), birth, origin, rank);
  }

  /// Consume and return the next rank of `origin`'s tie-break stream
  /// without scheduling anything — used by cross-partition staging, which
  /// draws the rank on the source scheduler but arms the event later on the
  /// destination's (schedule_at_imported).
  std::uint64_t draw_rank(std::uint32_t origin) {
    if (origin >= next_rank_.size()) next_rank_.resize(origin + 1, 1);
    return next_rank_[origin]++;
  }

  /// Pre-size the per-origin rank counters so ranked scheduling for origins
  /// < `count` never allocates on the hot path. The builder calls this with
  /// node_count + 1 on every partition's scheduler.
  void reserve_origins(std::size_t count) {
    if (count > next_rank_.size()) next_rank_.resize(count, 1);
  }

  /// Schedule an event *train*: `cb` fires `count` times, at `start`,
  /// `start + stride`, ... Back-to-back packet serializations at line rate
  /// are exactly this shape, and a train costs one arena slot and one
  /// callback for the whole burst — each firing re-enqueues the same entry
  /// with a fresh insertion sequence drawn at fire time, which makes the
  /// train byte-identical in pop order to `count` chained schedule_at calls
  /// (the pattern it replaces). The returned id covers the whole train:
  /// cancel() stops all remaining firings, including from inside `cb`.
  EventId schedule_train(Time start, Time stride, std::uint64_t count, Callback cb);

  /// Cancel a pending event or train. Safe to call with an already-fired,
  /// already-cancelled, or default-constructed id; returns true iff
  /// something was actually cancelled.
  bool cancel(EventId id);

  /// Run until the queue is empty or `stop()` is called.
  void run();

  /// Run events with timestamp <= `until`; afterwards now() == min(until,
  /// stop time). Events scheduled at exactly `until` do fire.
  void run_until(Time until);

  /// Fire at most one event; returns false if none was pending (or stop was
  /// requested). Useful for single-stepping in tests.
  bool step();

  /// Request run()/run_until() to return after the current event completes.
  void stop() { stop_requested_ = true; }

  [[nodiscard]] bool empty() const { return live_ == 0; }
  /// Live (pending, uncancelled) events. A train counts as one pending
  /// event regardless of remaining firings, matching the chained-schedule
  /// pattern it replaces (which also has exactly one event in flight).
  [[nodiscard]] std::size_t pending() const { return live_; }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Size of the slot arena (high-water mark of simultaneously-pending
  /// events). Slots are recycled through a free list, so schedule/cancel
  /// storms — the per-ACK RTO pattern — must not grow this; tests assert it.
  [[nodiscard]] std::size_t arena_slots() const { return slots_.size(); }

  /// Timestamp of the next pending event, or Time::infinity() if none.
  [[nodiscard]] Time next_event_time() const;

 private:
  /// Arena slot: owns the callback and the bookkeeping shared by one-shot
  /// events (remaining == 1) and trains (remaining > 1). `at`/`seq` mirror
  /// the currently-queued EventEntry so the calendar backend can remove it
  /// eagerly on cancel without any auxiliary map.
  struct Slot {
    Callback cb;
    Time at;
    Time birth;
    Time stride;
    std::uint64_t seq{0};
    std::uint64_t remaining{0};
    std::uint32_t gen{1};
    std::uint32_t origin{0};
    bool armed{false};
  };
  struct Later {
    bool operator()(const EventEntry& a, const EventEntry& b) const {
      // Shared with the calendar backend; see event_entry_before for the
      // tie-break rationale (hashed tagged streams, legacy sequence for
      // the untagged stream).
      return event_entry_before(b, a);
    }
  };

  EventId arm(Time at, Time stride, std::uint64_t count, Callback cb, Time birth,
              std::uint32_t origin);
  EventId arm_with_rank(Time at, Time stride, std::uint64_t count, Callback cb, Time birth,
                        std::uint32_t origin, std::uint64_t rank);
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t index);
  void push_entry(const EventEntry& entry);

  /// Pop dead (cancelled) entries off the top of the heap. Called at cancel
  /// and pop boundaries so the invariant "a non-empty heap has a live top"
  /// holds whenever control is outside the scheduler — which is what lets
  /// next_event_time()/empty() be plain const reads.
  void skim_dead_heap_top();

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::priority_queue<EventEntry, std::vector<EventEntry>, Later> heap_;
  CalendarQueue calendar_;
  QueueBackend backend_{QueueBackend::kBinaryHeap};
  std::size_t live_{0};
  Time now_{Time::zero()};
  /// Per-origin insertion-rank counters; element 0 (always present) is the
  /// default stream and behaves exactly like the old global sequence.
  std::vector<std::uint64_t> next_rank_ = std::vector<std::uint64_t>(1, 1);
  std::uint64_t executed_{0};
  bool stop_requested_{false};
};

}  // namespace rss::sim
