#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "sim/time.hpp"

namespace rss::sim {

/// Event-queue implementation behind Scheduler. Both backends honor the
/// same contract — (time, insertion-sequence) pop order — so the choice is
/// purely a performance knob: the binary heap is the robust default, the
/// calendar queue is O(1) amortized on dense near-uniform event spacings
/// (packet serializations at line rate).
enum class QueueBackend {
  kBinaryHeap,
  kCalendarQueue,
};

/// Opaque handle to a scheduled event, used for cancellation. Default
/// constructed handles are inert (cancel() on them is a no-op).
class EventId {
 public:
  constexpr EventId() = default;
  [[nodiscard]] constexpr bool valid() const { return id_ != 0; }
  [[nodiscard]] constexpr std::uint64_t raw() const { return id_; }
  constexpr auto operator<=>(const EventId&) const = default;

 private:
  friend class Scheduler;
  constexpr explicit EventId(std::uint64_t id) : id_{id} {}
  std::uint64_t id_{0};
};

/// Discrete-event scheduler: a min-heap of (time, insertion-sequence)
/// ordered callbacks.
///
/// Same-timestamp events fire in insertion order (the sequence tiebreak),
/// which keeps simulations deterministic regardless of heap internals —
/// a correctness requirement, not a nicety: TCP ACK processing and link
/// drain events frequently coincide.
///
/// Cancellation on the heap backend is lazy: cancel() removes the id from
/// the live set and the pop loop discards entries that are no longer live.
/// This keeps schedule/cancel O(log n) amortized without intrusive heap
/// surgery. TCP retransmission timers are rescheduled on every ACK, so this
/// path is hot. The calendar backend instead cancels eagerly (buckets are
/// sorted vectors, so removal is a cheap binary search) — required anyway,
/// because popping a dead far-future entry would advance the calendar's
/// monotonic floor past times that are still schedulable.
class Scheduler {
 public:
  using Callback = std::function<void()>;

  explicit Scheduler(QueueBackend backend = QueueBackend::kBinaryHeap) : backend_{backend} {}
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] QueueBackend backend() const { return backend_; }

  /// Current simulation time. Monotonically non-decreasing.
  [[nodiscard]] Time now() const { return now_; }

  /// Schedule `cb` at absolute time `at` (must be >= now()).
  EventId schedule_at(Time at, Callback cb);

  /// Schedule `cb` after relative delay `delay` (must be >= 0).
  EventId schedule_in(Time delay, Callback cb) { return schedule_at(now_ + delay, cb); }

  /// Cancel a pending event. Safe to call with an already-fired, already-
  /// cancelled, or default-constructed id; returns true iff something was
  /// actually cancelled.
  bool cancel(EventId id);

  /// Run until the queue is empty or `stop()` is called.
  void run();

  /// Run events with timestamp <= `until`; afterwards now() == min(until,
  /// stop time). Events scheduled at exactly `until` do fire.
  void run_until(Time until);

  /// Fire at most one event; returns false if none was pending (or stop was
  /// requested). Useful for single-stepping in tests.
  bool step();

  /// Request run()/run_until() to return after the current event completes.
  void stop() { stop_requested_ = true; }

  [[nodiscard]] bool empty() const { return live_.empty(); }
  [[nodiscard]] std::size_t pending() const { return live_.size(); }
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Timestamp of the next pending event, or Time::infinity() if none.
  [[nodiscard]] Time next_event_time() const;

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;  // insertion order; tiebreak AND cancellation id
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Pop dead (cancelled) entries off the top of the heap. Heap backend
  /// only — the calendar holds no dead entries (eager removal).
  void skim_dead() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  CalendarQueue calendar_;
  QueueBackend backend_{QueueBackend::kBinaryHeap};
  /// Live (pending, uncancelled) events. Maps seq -> scheduled time so the
  /// calendar backend can remove a cancelled entry from its bucket; the
  /// heap backend only uses the keys.
  std::unordered_map<std::uint64_t, Time> live_;
  Time now_{Time::zero()};
  std::uint64_t next_seq_{1};
  std::uint64_t executed_{0};
  bool stop_requested_{false};
};

}  // namespace rss::sim
