#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <exception>
#include <type_traits>
#include <vector>

#include "sim/time.hpp"

namespace rss::sim {

class Simulation;

// ---------------------------------------------------------------------------
// Graph partitioning
// ---------------------------------------------------------------------------

/// One undirected edge of the partitioning graph: node indices plus the
/// link's one-way propagation latency. The latency is what partitioning
/// optimizes for — edges *inside* a partition cost nothing, edges *cut*
/// between partitions bound the conservative lookahead window.
struct PartitionEdge {
  std::size_t a{0};
  std::size_t b{0};
  Time latency{Time::zero()};
};

/// Latency-guided agglomeration: start from singletons and greedily merge
/// the lowest-latency edges first (ties by edge declaration order), so the
/// *highest*-latency edges end up on the cut and the lookahead window is as
/// wide as the topology allows. Merges respect a soft size cap of
/// ceil(node_count / parts); when the cap alone would strand more than
/// `parts` components a second uncapped pass finishes the job. Purely a
/// function of its arguments — no RNG, no iteration-order hazards — so a
/// given spec always partitions the same way.
///
/// Returns one partition label per node, contiguous 0..P-1, numbered by
/// first appearance in node order. P can exceed `parts` only when the graph
/// itself has more connected components than `parts`.
///
/// `pinned` lists edge indices (into `edges`) whose endpoints must share a
/// partition: they are united first, in index order, ignoring the balance
/// cap. The builder pins every edge on a fluid flow's route so fluid
/// integration stays partition-local and never crosses a HandoffChannel.
[[nodiscard]] std::vector<std::uint32_t> partition_by_latency(
    std::size_t node_count, const std::vector<PartitionEdge>& edges, std::size_t parts,
    const std::vector<std::size_t>& pinned = {});

/// Contiguous blocks of the node order: node i goes to partition
/// i * parts / node_count. Ignores the edge structure entirely — useful in
/// tests that need a predictable (or adversarial) assignment.
[[nodiscard]] std::vector<std::uint32_t> partition_blocks(std::size_t node_count,
                                                          std::size_t parts);

/// Number of partitions an assignment uses (max label + 1; 0 when empty).
[[nodiscard]] std::size_t partition_count(const std::vector<std::uint32_t>& assignment);

/// Minimum latency over edges whose endpoints live in different partitions
/// — the conservative lookahead bound. Time::infinity() when no edge is
/// cut (partitions never interact, windows are unbounded).
[[nodiscard]] Time min_cut_latency(const std::vector<PartitionEdge>& edges,
                                   const std::vector<std::uint32_t>& assignment);

// ---------------------------------------------------------------------------
// Cross-partition handoff staging
// ---------------------------------------------------------------------------

/// Inline payload budget for one staged handoff. Sized for net::Packet
/// (the only payload today) with headroom; the stage() template rejects
/// anything bigger at compile time.
inline constexpr std::size_t kHandoffPayloadCapacity = 96;

/// Delivery hook invoked on the *destination* partition's worker during the
/// drain phase. A plain function pointer (not InlineCallback) because the
/// payload travels in the staged entry itself, not in a closure.
/// `staged_at` is the source partition's clock when the handoff was staged;
/// `origin`/`rank` are the sending node's label and the insertion rank
/// drawn from the *source* scheduler's origin counter at stage time.
/// Implementations should forward all three when scheduling into the
/// destination (Simulation::at_imported), so same-timestamp ties resolve
/// exactly as a single-scheduler run would — the (birth, origin, rank)
/// tie-break key is intrinsic to the sender, not to insertion order.
using HandoffDeliverFn = void (*)(void* endpoint, const std::byte* payload, Time deliver_at,
                                  Time staged_at, std::uint32_t origin, std::uint64_t rank);

/// One staged cross-partition event, written by the source partition during
/// a window and consumed by the destination during the drain phase.
/// (staged_at, channel, seq) is the deterministic-merge tiebreak: together
/// with deliver_at it totally orders every handoff a partition receives,
/// independent of which thread staged what first. (origin, rank) ride
/// along untouched — they are the *scheduler* tie-break the delivery is
/// armed with, which makes the destination's pop order independent of the
/// merge's insertion order entirely.
struct StagedHandoff {
  Time deliver_at{};
  Time staged_at{};
  std::uint32_t channel{0};
  std::uint32_t origin{0};
  std::uint64_t seq{0};
  std::uint64_t rank{0};
  HandoffDeliverFn deliver{nullptr};
  void* endpoint{nullptr};
  alignas(std::max_align_t) std::byte payload[kHandoffPayloadCapacity];
};

/// Staging queue for one ordered (source partition -> destination
/// partition) direction. Not a concurrent queue: the engine's barrier
/// discipline guarantees the source thread writes only during the window
/// phase and the destination thread reads only during the drain phase, so
/// plain vectors suffice and the steady state (capacity reached) is
/// allocation-free. Padded to a cache line so neighboring channels written
/// by different threads don't false-share.
class alignas(64) HandoffChannel {
 public:
  explicit HandoffChannel(std::uint32_t id) : id_{id} { staged_.reserve(kInitialCapacity); }

  HandoffChannel(const HandoffChannel&) = delete;
  HandoffChannel& operator=(const HandoffChannel&) = delete;

  [[nodiscard]] std::uint32_t id() const { return id_; }

  /// Stage `payload` for delivery at `deliver_at`; called by the source
  /// partition's thread while its window executes, with `staged_at` its
  /// current clock (staged_at <= deliver_at) and (`origin`, `rank`) the
  /// sender's scheduler tie-break key drawn at stage time. `fn(endpoint,
  /// bytes, deliver_at, staged_at, origin, rank)` runs later on the
  /// destination's thread.
  template <typename T>
  void stage(Time deliver_at, Time staged_at, std::uint32_t origin, std::uint64_t rank,
             void* endpoint, HandoffDeliverFn fn, const T& payload) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "handoff payloads are relayed as raw bytes");
    static_assert(sizeof(T) <= kHandoffPayloadCapacity,
                  "handoff payload exceeds the staging budget");
    StagedHandoff& h = staged_.emplace_back();
    h.deliver_at = deliver_at;
    h.staged_at = staged_at;
    h.channel = id_;
    h.origin = origin;
    h.seq = next_seq_++;
    h.rank = rank;
    h.deliver = fn;
    h.endpoint = endpoint;
    std::memcpy(h.payload, &payload, sizeof(T));
  }

  [[nodiscard]] const std::vector<StagedHandoff>& staged() const { return staged_; }
  void clear() { staged_.clear(); }

  /// Total handoffs ever staged (monotone; read between runs).
  [[nodiscard]] std::uint64_t total_staged() const { return next_seq_; }

 private:
  static constexpr std::size_t kInitialCapacity = 256;

  std::uint32_t id_;
  std::uint64_t next_seq_{0};
  std::vector<StagedHandoff> staged_;
};

// ---------------------------------------------------------------------------
// Partitioned execution engine
// ---------------------------------------------------------------------------

/// Conservative-lookahead parallel executor over a set of per-partition
/// Simulations. Each round advances every partition through one *safe
/// window* [t_min, min(target, t_min + lookahead - 1ns)] where t_min is the
/// global minimum pending event time: any cross-partition influence emitted
/// inside the window arrives at least `lookahead` after it was sent, i.e.
/// strictly after the window closes, so partitions cannot affect each other
/// mid-window and may run concurrently.
///
/// Per round, with two std::barrier rendezvous:
///   1. publish: each worker records the min next-event time of the
///      partitions it owns; the barrier completion computes the window.
///   2. window:  each worker runs its partitions to the window end; cross
///      partition sends are staged into HandoffChannels, never applied.
///   3. drain:   after the second barrier, each worker merges the channels
///      inbound to its partitions — sorted by (deliver_at, staged_at,
///      channel, seq) — and schedules the deliveries with staged_at as the
///      birth time and the staged (origin, rank) pair as the intrinsic
///      tie-break key (Scheduler::schedule_at_imported). The sort makes
///      the destination scheduler's insertion order a pure function of the
///      spec, so runs are deterministic regardless of thread count or
///      timing; the (birth, origin, rank) key makes same-timestamp pop
///      order match the single-scheduler run exactly, independent even of
///      that insertion order.
///
/// Worker w owns partitions {p : p % workers == w}; with threads == 1 the
/// same round structure runs inline on the calling thread with no barriers,
/// which is also the configuration the allocation-free steady-state
/// guarantee is asserted against (thread spawn allocates; the round loop
/// does not).
class PartitionedEngine {
 public:
  struct Options {
    /// Safe-window width; must be >= 1ns (or infinite when no channel will
    /// ever carry traffic). Use min_cut_latency() of the partitioning.
    Time lookahead{Time::infinity()};
    /// Worker threads; 0 = one per partition, capped by the hardware. A
    /// hardware_concurrency() report of 0 (permitted by the standard) falls
    /// back to 1.
    std::size_t threads{0};
    /// Sort merged handoffs before scheduling (see class comment). Turning
    /// this off keeps runs deterministic only for single-channel
    /// partitions; it exists to measure the cost of the sort.
    bool deterministic_merge{true};
  };

  /// `partitions[p]` must outlive the engine; each Simulation is driven
  /// exclusively by this engine once run_until() is first called.
  PartitionedEngine(std::vector<Simulation*> partitions, const Options& options);

  PartitionedEngine(const PartitionedEngine&) = delete;
  PartitionedEngine& operator=(const PartitionedEngine&) = delete;

  /// Register a staging channel for cross-partition traffic flowing
  /// src -> dst. Call during wiring, before the first run_until(). Channel
  /// ids follow registration order, which makes them (and the merge order)
  /// deterministic for a given spec. Returned reference is stable.
  HandoffChannel& add_channel(std::size_t src, std::size_t dst);

  /// Advance every partition to exactly `target` (events at `target`
  /// fire, matching Scheduler::run_until). Rethrows the first exception
  /// any partition's event raised, after all workers have stopped.
  void run_until(Time target);

  [[nodiscard]] std::size_t partition_count() const { return sims_.size(); }
  [[nodiscard]] const Options& options() const { return options_; }
  /// Safe windows executed across all run_until() calls.
  [[nodiscard]] std::uint64_t windows_executed() const { return windows_; }
  /// Cross-partition deliveries actually merged and scheduled.
  [[nodiscard]] std::uint64_t handoffs_delivered() const;

 private:
  [[nodiscard]] std::size_t worker_count() const;
  [[nodiscard]] Time window_bound(Time t_min, Time target) const;
  /// Barrier-completion step: fold the published per-worker minima and
  /// either open the next window or flag completion. Runs on exactly one
  /// thread while every worker is blocked, so it writes plain fields.
  void advance_window(Time target);
  void publish_local_min(std::size_t worker, std::size_t workers);
  void run_window(std::size_t worker, std::size_t workers);
  void drain_partition(std::size_t p);
  void record_error() noexcept;
  void run_single(Time target);
  void run_threaded(Time target, std::size_t workers);

  std::vector<Simulation*> sims_;
  Options options_;
  std::deque<HandoffChannel> channels_;
  std::vector<std::vector<std::uint32_t>> inbound_;  // per partition: channel ids
  std::vector<std::vector<const StagedHandoff*>> merge_scratch_;  // per partition
  std::vector<Time> local_min_;      // per worker, written before the publish barrier
  std::vector<std::uint64_t> handoffs_;  // per partition, owner-written
  Time window_end_{Time::zero()};    // written by advance_window only
  bool done_{false};                 // likewise
  std::uint64_t windows_{0};
  std::atomic<bool> error_flag_{false};
  std::exception_ptr first_error_{nullptr};
};

}  // namespace rss::sim
