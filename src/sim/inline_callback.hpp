#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace rss::sim {

class InlineCallback;

/// Inline storage budget for scheduled callbacks. 48 bytes holds every hot
/// closure in the tree (the largest is Simulation::every's tick at 32) with
/// headroom, while keeping a scheduler arena slot within one cache line
/// alongside its bookkeeping fields.
inline constexpr std::size_t kInlineCallbackCapacity = 48;

namespace detail {

template <typename F>
concept InlineCallbackInvocable =
    !std::is_same_v<std::remove_cvref_t<F>, InlineCallback> &&
    std::is_invocable_r_v<void, std::remove_cvref_t<F>&>;

/// Whether a callable fits the inline buffer. Nothrow move construction is
/// required because the scheduler relocates callbacks (arena growth, train
/// continuation) at points where an exception would corrupt the event queue.
template <typename F>
concept InlineCallbackStorable =
    sizeof(std::remove_cvref_t<F>) <= kInlineCallbackCapacity &&
    alignof(std::remove_cvref_t<F>) <= alignof(std::max_align_t) &&
    std::is_nothrow_move_constructible_v<std::remove_cvref_t<F>>;

}  // namespace detail

/// Move-only `void()` callable with small-buffer storage and *no* heap
/// fallback: a capture larger than kInlineCallbackCapacity (or over-aligned,
/// or throwing-move) is rejected at compile time via the deleted overload
/// below, so `Scheduler::schedule_at` can never allocate for the callback.
/// This is the per-event constant factor the ROADMAP's "Scheduler hot path"
/// item targets — std::function allocated on every packet serialization and
/// every per-ACK RTO reschedule.
class InlineCallback {
 public:
  static constexpr std::size_t kCapacity = kInlineCallbackCapacity;

  // User-provided (not `= default`) so `const InlineCallback cb;` is legal:
  // the byte buffer is deliberately left uninitialized when empty.
  constexpr InlineCallback() noexcept {}  // NOLINT(modernize-use-equals-default)

  template <typename F>
    requires(detail::InlineCallbackInvocable<F> && detail::InlineCallbackStorable<F>)
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::remove_cvref_t<F>;
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    invoke_ = [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); };
    manage_ = [](Op op, void* s, void* dst) noexcept {
      Fn* self = std::launder(reinterpret_cast<Fn*>(s));
      if (op == Op::kRelocate) ::new (dst) Fn(std::move(*self));
      self->~Fn();
    };
  }

  /// Oversized / over-aligned / throwing-move callables: shrink the capture
  /// (store bulky state in the owning object and capture a pointer) — there
  /// is deliberately no heap fallback.
  template <typename F>
    requires(detail::InlineCallbackInvocable<F> && !detail::InlineCallbackStorable<F>)
  InlineCallback(F&&) = delete;

  InlineCallback(InlineCallback&& other) noexcept { move_from(other); }
  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;
  ~InlineCallback() { reset(); }

  void operator()() {
    assert(invoke_ && "InlineCallback: invoking empty callback");
    invoke_(storage_);
  }

  [[nodiscard]] explicit operator bool() const noexcept { return invoke_ != nullptr; }

 private:
  enum class Op : std::uint8_t { kDestroy, kRelocate };

  void reset() noexcept {
    if (manage_) manage_(Op::kDestroy, storage_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  /// Relocate `other`'s callable into our (empty) storage; `other` is left
  /// empty. One manager call move-constructs and destroys the source, so
  /// the moved-from callable's destructor runs exactly once.
  void move_from(InlineCallback& other) noexcept {
    if (!other.manage_) return;
    other.manage_(Op::kRelocate, other.storage_, storage_);
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  alignas(std::max_align_t) std::byte storage_[kCapacity];
  void (*invoke_)(void*) = nullptr;
  void (*manage_)(Op, void*, void*) = nullptr;
};

}  // namespace rss::sim
