#include "sim/log.hpp"

namespace rss::sim {
namespace {

constexpr std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void Log::write(LogLevel level, Time now, std::string_view component,
                std::string_view message) {
  if (!enabled(level)) return;
  *sink_ << "[" << now << "] " << level_name(level) << " " << component << ": " << message
         << '\n';
}

}  // namespace rss::sim
