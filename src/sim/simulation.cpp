#include "sim/simulation.hpp"

#include <memory>
#include <utility>

namespace rss::sim {

void Simulation::every(Time period, std::function<bool(Time)> fn) {
  // Self-rescheduling tick. The shared_ptr keeps the callable alive across
  // reschedules; the lambda captures `this`, which outlives the scheduler's
  // queue by construction (the queue is a member of *this).
  auto tick = std::make_shared<std::function<void()>>();
  auto fn_shared = std::make_shared<std::function<bool(Time)>>(std::move(fn));
  *tick = [this, period, fn_shared, tick]() {
    if ((*fn_shared)(scheduler_.now())) scheduler_.schedule_in(period, *tick);
  };
  scheduler_.schedule_in(period, *tick);
}

}  // namespace rss::sim
