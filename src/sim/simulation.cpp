#include "sim/simulation.hpp"

#include <memory>
#include <utility>

namespace rss::sim {

void Simulation::every(Time period, std::function<bool(Time)> fn) {
  // Self-rescheduling tick: each queued callback owns a ref to the user
  // callable and, when it fires, enqueues a copy of itself. Ownership lives
  // only in the scheduler queue — no callable captures a shared_ptr to
  // itself — so when the chain stops (fn returns false or the queue is
  // destroyed) the last copy releases everything. `this` outlives the
  // queue by construction (the queue is a member of *this).
  struct Tick {
    Simulation* sim;
    Time period;
    std::shared_ptr<std::function<bool(Time)>> fn;
    void operator()() const {
      if ((*fn)(sim->scheduler_.now())) sim->scheduler_.schedule_in(period, Tick{*this});
    }
  };
  scheduler_.schedule_in(
      period, Tick{this, period, std::make_shared<std::function<bool(Time)>>(std::move(fn))});
}

}  // namespace rss::sim
