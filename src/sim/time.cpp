#include "sim/time.hpp"

#include <ostream>

namespace rss::sim {

std::ostream& operator<<(std::ostream& os, Time t) {
  if (t.is_infinite()) return os << "+inf";
  const std::int64_t ns = t.nanoseconds_count();
  // Pick the coarsest unit that loses nothing, for readable traces.
  if (ns % 1'000'000'000 == 0) return os << ns / 1'000'000'000 << "s";
  if (ns % 1'000'000 == 0) return os << ns / 1'000'000 << "ms";
  if (ns % 1'000 == 0) return os << ns / 1'000 << "us";
  return os << ns << "ns";
}

}  // namespace rss::sim
