#pragma once

#include <cstdint>
#include <type_traits>

#include "sim/time.hpp"

namespace rss::sim {

/// One queued occurrence of a scheduled event — the single entry type both
/// Scheduler backends (binary heap and CalendarQueue) store. It is a 24-byte
/// trivially-copyable handle: the callback itself lives in the Scheduler's
/// slot arena, addressed by `slot` and validated by `gen` (a generation
/// counter that detects stale entries left behind by lazy cancellation and
/// slot reuse). `seq` is the global insertion sequence that tie-breaks
/// same-timestamp events, which is what keeps pop order — and therefore
/// every reproduced artifact — deterministic across backends.
struct EventEntry {
  Time at;
  std::uint64_t seq{0};
  std::uint32_t slot{0};
  std::uint32_t gen{0};
};

static_assert(std::is_trivially_copyable_v<EventEntry>);

}  // namespace rss::sim
