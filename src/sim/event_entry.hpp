#pragma once

#include <cstdint>
#include <type_traits>

#include "sim/time.hpp"

namespace rss::sim {

/// One queued occurrence of a scheduled event — the single entry type both
/// Scheduler backends (binary heap and CalendarQueue) store. It is a 32-byte
/// trivially-copyable handle: the callback itself lives in the Scheduler's
/// slot arena, addressed by `slot` and validated by `gen` (a generation
/// counter that detects stale entries left behind by lazy cancellation and
/// slot reuse).
///
/// Pop order is (at, birth, seq). `birth` is the simulation time at which
/// the event was inserted and `seq` the per-scheduler insertion sequence.
/// For a single simulation birth is non-decreasing in seq (now() never runs
/// backwards), so the birth tie-break is provably inert there — pop order
/// is plain (time, insertion-sequence), which keeps every reproduced
/// artifact deterministic across backends. The field exists for partitioned
/// execution: a cross-partition handoff is physically inserted late (at the
/// window boundary drain) but carries the source's transmit time as its
/// birth, which restores the insertion order a single-scheduler run would
/// have produced for same-timestamp events.
struct EventEntry {
  Time at;
  Time birth;
  std::uint64_t seq{0};
  std::uint32_t slot{0};
  std::uint32_t gen{0};
};

static_assert(std::is_trivially_copyable_v<EventEntry>);

}  // namespace rss::sim
