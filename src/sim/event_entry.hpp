#pragma once

#include <cstdint>
#include <type_traits>

#include "sim/time.hpp"

namespace rss::sim {

/// One queued occurrence of a scheduled event — the single entry type both
/// Scheduler backends (binary heap and CalendarQueue) store. It is a 40-byte
/// trivially-copyable handle: the callback itself lives in the Scheduler's
/// slot arena, addressed by `slot` and validated by `gen` (a generation
/// counter that detects stale entries left behind by lazy cancellation and
/// slot reuse).
///
/// Pop order is event_entry_before (below): (at, birth), then the hashed
/// tagged streams, then the untagged stream in plain insertion order.
/// `birth` is the simulation time at which the event was inserted and `seq`
/// the insertion rank within its `origin` stream. Origin 0 is the default
/// stream: for a single simulation birth is non-decreasing in seq there
/// (now() never runs backwards), so the birth tie-break is provably inert
/// and pop order is plain (time, insertion-sequence), which keeps every
/// reproduced artifact deterministic across backends.
///
/// The extra fields exist for partitioned execution. A cross-partition
/// handoff is physically inserted late (at the window boundary drain) but
/// carries the source's transmit time as its birth; `origin` (a stable
/// per-node label assigned by the scenario builder) plus the per-origin
/// `seq` then give same-(at, birth) events an *intrinsic* total order — a
/// pure function of the sending node's local history — so sequential and
/// partitioned runs resolve ties identically no matter which scheduler an
/// event was physically inserted into, or when.
struct EventEntry {
  Time at;
  Time birth;
  std::uint64_t seq{0};
  std::uint32_t slot{0};
  std::uint32_t gen{0};
  std::uint32_t origin{0};
};

static_assert(std::is_trivially_copyable_v<EventEntry>);

/// splitmix64 finalizer over (origin, seq) — the tagged streams' tie key.
/// A *fixed* per-node priority at same-(at, birth) ties would phase-lock
/// synchronized flows (equal access rates make exact delivery ties routine,
/// and the same node winning every one starves the rest — Jain fairness
/// craters); hashing keeps the resolution deterministic and intrinsic while
/// statistically unbiased across nodes, like the insertion order it
/// replaces.
[[nodiscard]] constexpr std::uint64_t event_tie_hash(std::uint32_t origin,
                                                     std::uint64_t seq) {
  std::uint64_t x = (static_cast<std::uint64_t>(origin) << 32) ^ seq;
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Strict-weak "fires earlier" order shared by both Scheduler backends:
/// (at, birth), then tagged origins (hashed, ties by (origin, seq)) before
/// the untagged stream 0 (plain insertion sequence — the legacy contract
/// "same-timestamp events fire in insertion order" is untouched because an
/// untagged run never compares across classes). The class split keeps the
/// order transitive: hashed and sequential keys never interleave.
[[nodiscard]] constexpr bool event_entry_before(const EventEntry& a, const EventEntry& b) {
  if (a.at != b.at) return a.at < b.at;
  if (a.birth != b.birth) return a.birth < b.birth;
  const bool a_tagged = a.origin != 0;
  const bool b_tagged = b.origin != 0;
  if (a_tagged != b_tagged) return a_tagged;  // deliveries before local events
  if (a_tagged) {
    const std::uint64_t ha = event_tie_hash(a.origin, a.seq);
    const std::uint64_t hb = event_tie_hash(b.origin, b.seq);
    if (ha != hb) return ha < hb;
    if (a.origin != b.origin) return a.origin < b.origin;
  }
  return a.seq < b.seq;
}

}  // namespace rss::sim
