#include "sim/partition.hpp"

#include <algorithm>
#include <barrier>
#include <cassert>
#include <stdexcept>
#include <thread>
#include <utility>

#include "sim/simulation.hpp"

namespace rss::sim {

namespace {

/// Union-find with union-by-size and path halving; the agglomeration below
/// is two O(E alpha) passes, so partitioning stays cheap even for
/// Scale-preset-sized graphs.
struct DisjointSets {
  explicit DisjointSets(std::size_t n) : parent(n), size(n, 1) {
    for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  }

  std::size_t find(std::size_t v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  }

  bool unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (size[a] < size[b]) std::swap(a, b);
    parent[b] = a;
    size[a] += size[b];
    return true;
  }

  std::vector<std::size_t> parent;
  std::vector<std::size_t> size;
};

void check_edges(std::size_t node_count, const std::vector<PartitionEdge>& edges) {
  for (const auto& e : edges) {
    if (e.a >= node_count || e.b >= node_count)
      throw std::out_of_range("partition: edge endpoint out of range");
  }
}

/// Relabel union-find roots to contiguous partition ids in node order, so
/// the labels (and everything derived from them — channel ids, merge
/// order) depend only on the spec.
std::vector<std::uint32_t> renumber(DisjointSets& sets, std::size_t node_count) {
  constexpr std::uint32_t kUnlabeled = 0xFFFF'FFFFu;
  std::vector<std::uint32_t> root_label(node_count, kUnlabeled);
  std::vector<std::uint32_t> assignment(node_count);
  std::uint32_t next = 0;
  for (std::size_t v = 0; v < node_count; ++v) {
    const std::size_t root = sets.find(v);
    if (root_label[root] == kUnlabeled) root_label[root] = next++;
    assignment[v] = root_label[root];
  }
  return assignment;
}

}  // namespace

std::vector<std::uint32_t> partition_by_latency(std::size_t node_count,
                                                const std::vector<PartitionEdge>& edges,
                                                std::size_t parts,
                                                const std::vector<std::size_t>& pinned) {
  if (parts == 0) throw std::invalid_argument("partition_by_latency: parts must be >= 1");
  check_edges(node_count, edges);
  for (const std::size_t i : pinned) {
    if (i >= edges.size()) throw std::out_of_range("partition_by_latency: pinned edge index");
  }

  std::vector<std::size_t> order(edges.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  // stable_sort keeps declaration order among equal latencies.
  std::stable_sort(order.begin(), order.end(), [&edges](std::size_t x, std::size_t y) {
    return edges[x].latency < edges[y].latency;
  });

  DisjointSets sets{node_count};
  std::size_t components = node_count;
  const std::size_t target = std::min(parts, std::max<std::size_t>(node_count, 1));
  const std::size_t cap =
      node_count == 0 ? 0 : (node_count + parts - 1) / parts;

  // Pass 0: pinned edges are mandatory merges — united first, in index
  // order, with no size cap. Everything these edges connect is guaranteed
  // to land in one partition.
  for (const std::size_t i : pinned) {
    if (sets.unite(edges[i].a, edges[i].b)) --components;
  }

  // Pass 1: merge cheapest edges first, but never grow a partition past the
  // balance cap.
  for (const std::size_t i : order) {
    if (components <= target) break;
    const std::size_t ra = sets.find(edges[i].a);
    const std::size_t rb = sets.find(edges[i].b);
    if (ra == rb || sets.size[ra] + sets.size[rb] > cap) continue;
    sets.unite(ra, rb);
    --components;
  }
  // Pass 2: the cap can strand more than `target` components (e.g. a star
  // whose hub fills one partition early); finish uncapped — reaching the
  // requested partition count matters more than perfect balance.
  for (const std::size_t i : order) {
    if (components <= target) break;
    if (sets.unite(edges[i].a, edges[i].b)) --components;
  }

  return renumber(sets, node_count);
}

std::vector<std::uint32_t> partition_blocks(std::size_t node_count, std::size_t parts) {
  if (parts == 0) throw std::invalid_argument("partition_blocks: parts must be >= 1");
  std::vector<std::uint32_t> assignment(node_count);
  const std::size_t p = std::min(parts, std::max<std::size_t>(node_count, 1));
  for (std::size_t i = 0; i < node_count; ++i)
    assignment[i] = static_cast<std::uint32_t>(i * p / node_count);
  return assignment;
}

std::size_t partition_count(const std::vector<std::uint32_t>& assignment) {
  std::uint32_t max_label = 0;
  if (assignment.empty()) return 0;
  for (const std::uint32_t label : assignment) max_label = std::max(max_label, label);
  return static_cast<std::size_t>(max_label) + 1;
}

Time min_cut_latency(const std::vector<PartitionEdge>& edges,
                     const std::vector<std::uint32_t>& assignment) {
  check_edges(assignment.size(), edges);
  Time lookahead = Time::infinity();
  for (const auto& e : edges) {
    if (assignment[e.a] != assignment[e.b]) lookahead = min(lookahead, e.latency);
  }
  return lookahead;
}

// --- PartitionedEngine ----------------------------------------------------

PartitionedEngine::PartitionedEngine(std::vector<Simulation*> partitions,
                                     const Options& options)
    : sims_{std::move(partitions)}, options_{options} {
  if (sims_.empty()) throw std::invalid_argument("PartitionedEngine: no partitions");
  for (const Simulation* s : sims_) {
    if (s == nullptr) throw std::invalid_argument("PartitionedEngine: null partition");
  }
  if (!options_.lookahead.is_infinite() && options_.lookahead < Time::nanoseconds(1))
    throw std::invalid_argument("PartitionedEngine: lookahead must be at least 1ns");
  inbound_.resize(sims_.size());
  merge_scratch_.resize(sims_.size());
  for (auto& scratch : merge_scratch_) scratch.reserve(256);
  handoffs_.assign(sims_.size(), 0);
}

HandoffChannel& PartitionedEngine::add_channel(std::size_t src, std::size_t dst) {
  if (src >= sims_.size() || dst >= sims_.size())
    throw std::out_of_range("PartitionedEngine: channel partition out of range");
  if (src == dst)
    throw std::invalid_argument("PartitionedEngine: channel within one partition");
  const auto id = static_cast<std::uint32_t>(channels_.size());
  channels_.emplace_back(id);
  inbound_[dst].push_back(id);
  return channels_.back();
}

std::size_t PartitionedEngine::worker_count() const {
  std::size_t budget = options_.threads;
  if (budget == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    budget = hw == 0 ? 1 : hw;  // the standard permits a 0 = "unknown" report
  }
  return std::min(std::max<std::size_t>(budget, 1), sims_.size());
}

Time PartitionedEngine::window_bound(Time t_min, Time target) const {
  const Time lookahead = options_.lookahead;
  if (lookahead.is_infinite()) return target;
  // window_end = min(target, t_min + lookahead - 1ns), computed against the
  // finite slack to `target` so the sum can never overflow.
  const Time slack = target - t_min;
  if (lookahead > slack) return target;
  return t_min + lookahead - Time::nanoseconds(1);
}

void PartitionedEngine::advance_window(Time target) {
  Time t_min = Time::infinity();
  for (const Time t : local_min_) t_min = min(t_min, t);
  if (error_flag_.load(std::memory_order_relaxed) || t_min.is_infinite() || t_min > target) {
    done_ = true;
    return;
  }
  done_ = false;
  window_end_ = window_bound(t_min, target);
  ++windows_;
}

void PartitionedEngine::publish_local_min(std::size_t worker, std::size_t workers) {
  Time local = Time::infinity();
  for (std::size_t p = worker; p < sims_.size(); p += workers)
    local = min(local, sims_[p]->scheduler().next_event_time());
  local_min_[worker] = local;
}

void PartitionedEngine::run_window(std::size_t worker, std::size_t workers) {
  for (std::size_t p = worker; p < sims_.size(); p += workers) {
    try {
      sims_[p]->run_until(window_end_);
    } catch (...) {
      record_error();
    }
  }
}

void PartitionedEngine::drain_partition(std::size_t p) {
  auto& scratch = merge_scratch_[p];
  scratch.clear();
  for (const std::uint32_t id : inbound_[p]) {
    for (const StagedHandoff& h : channels_[id].staged()) scratch.push_back(&h);
  }
  if (scratch.empty()) return;
  if (options_.deterministic_merge) {
    std::sort(scratch.begin(), scratch.end(),
              [](const StagedHandoff* x, const StagedHandoff* y) {
                if (x->deliver_at != y->deliver_at) return x->deliver_at < y->deliver_at;
                if (x->staged_at != y->staged_at) return x->staged_at < y->staged_at;
                if (x->channel != y->channel) return x->channel < y->channel;
                return x->seq < y->seq;
              });
  }
  for (const StagedHandoff* h : scratch) {
    assert(h->deliver_at > sims_[p]->now() && "conservative lookahead violated");
    h->deliver(h->endpoint, h->payload, h->deliver_at, h->staged_at, h->origin, h->rank);
  }
  handoffs_[p] += scratch.size();
  for (const std::uint32_t id : inbound_[p]) channels_[id].clear();
  scratch.clear();
}

void PartitionedEngine::record_error() noexcept {
  if (!error_flag_.exchange(true, std::memory_order_acq_rel))
    first_error_ = std::current_exception();
}

void PartitionedEngine::run_single(Time target) {
  local_min_.assign(1, Time::infinity());
  for (;;) {
    publish_local_min(0, 1);
    advance_window(target);
    if (done_) return;
    run_window(0, 1);
    for (std::size_t p = 0; p < sims_.size(); ++p) {
      try {
        drain_partition(p);
      } catch (...) {
        record_error();
      }
    }
  }
}

void PartitionedEngine::run_threaded(Time target, std::size_t workers) {
  local_min_.assign(workers, Time::infinity());
  const auto count = static_cast<std::ptrdiff_t>(workers);
  auto completion = [this, target]() noexcept { advance_window(target); };
  // Two rendezvous per round. `publish` runs advance_window as its
  // completion step — one thread folds the minima while everyone else is
  // parked, so the plain window_end_/done_ writes are race-free and the
  // phase transition publishes them. `window_done` separates the window
  // phase (sources append to channels) from the drain phase (destinations
  // read them).
  std::barrier<decltype(completion)> publish{count, completion};
  std::barrier<> window_done{count};

  auto worker = [this, &publish, &window_done, workers](std::size_t w) {
    for (;;) {
      publish_local_min(w, workers);
      publish.arrive_and_wait();
      if (done_) return;
      run_window(w, workers);
      window_done.arrive_and_wait();
      for (std::size_t p = w; p < sims_.size(); p += workers) {
        try {
          drain_partition(p);
        } catch (...) {
          record_error();
        }
      }
      // No third barrier: before the next publish a worker reads only its
      // own partitions, which it just drained itself; the publish barrier's
      // completion then orders every drain before the window computation.
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(worker, w);
  worker(0);
  for (auto& t : pool) t.join();
}

void PartitionedEngine::run_until(Time target) {
  error_flag_.store(false, std::memory_order_relaxed);
  first_error_ = nullptr;
  const std::size_t workers = worker_count();
  if (workers <= 1) {
    run_single(target);
  } else {
    run_threaded(target, workers);
  }
  if (first_error_) {
    const std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(error);
  }
  // The round loop stops once no pending event is <= target; this settles
  // every partition's clock at exactly target (firing nothing), matching
  // single-threaded run_until semantics.
  for (Simulation* s : sims_) s->run_until(target);
}

std::uint64_t PartitionedEngine::handoffs_delivered() const {
  std::uint64_t total = 0;
  for (const std::uint64_t h : handoffs_) total += h;
  return total;
}

}  // namespace rss::sim
