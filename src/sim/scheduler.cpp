#include "sim/scheduler.hpp"

#include <stdexcept>
#include <utility>

namespace rss::sim {

EventId Scheduler::schedule_train(Time start, Time stride, std::uint64_t count,
                                  Callback cb) {
  if (count == 0) return EventId{};
  if (stride.is_negative())
    throw std::invalid_argument("Scheduler: negative train stride");
  if (count > 1) {
    if (start.is_infinite() || stride.is_infinite())
      throw std::invalid_argument("Scheduler: multi-event train at/with infinity");
    // The continuation in step() computes at + stride per firing; reject
    // trains whose last firing would overflow the int64 nanosecond clock
    // (which would silently run the heap backend's clock backwards).
    const auto start_ns = static_cast<std::uint64_t>(start.nanoseconds_count());
    const auto stride_ns = static_cast<std::uint64_t>(stride.nanoseconds_count());
    const auto headroom =
        static_cast<std::uint64_t>(Time::infinity().nanoseconds_count()) - start_ns;
    if (stride_ns != 0 && count - 1 > headroom / stride_ns)
      throw std::invalid_argument("Scheduler: train extends beyond representable time");
  }
  return arm(start, stride, count, std::move(cb), now_, 0);
}

EventId Scheduler::arm(Time at, Time stride, std::uint64_t count, Callback cb, Time birth,
                       std::uint32_t origin) {
  return arm_with_rank(at, stride, count, std::move(cb), birth, origin, draw_rank(origin));
}

EventId Scheduler::arm_with_rank(Time at, Time stride, std::uint64_t count, Callback cb,
                                 Time birth, std::uint32_t origin, std::uint64_t rank) {
  if (at < now_) throw std::invalid_argument("Scheduler: event scheduled in the past");
  if (!cb) throw std::invalid_argument("Scheduler: null callback");
  const std::uint32_t index = acquire_slot();
  Slot& slot = slots_[index];
  slot.cb = std::move(cb);
  slot.at = at;
  slot.birth = birth;
  slot.stride = stride;
  slot.seq = rank;
  slot.origin = origin;
  slot.remaining = count;
  slot.armed = true;
  ++live_;
  push_entry(EventEntry{at, birth, slot.seq, index, slot.gen, origin});
  return EventId{index, slot.gen};
}

std::uint32_t Scheduler::acquire_slot() {
  if (!free_slots_.empty()) {
    const std::uint32_t index = free_slots_.back();
    free_slots_.pop_back();
    return index;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Scheduler::release_slot(std::uint32_t index) {
  Slot& slot = slots_[index];
  slot.cb = Callback{};
  slot.armed = false;
  slot.remaining = 0;
  // Bump the generation so stale EventIds and lazily-cancelled heap entries
  // referencing this slot can never match again. Generation 0 is reserved:
  // EventId{slot 0, gen 0} would collide with the inert default id.
  if (++slot.gen == 0) slot.gen = 1;
  free_slots_.push_back(index);
  --live_;
}

void Scheduler::push_entry(const EventEntry& entry) {
  if (backend_ == QueueBackend::kCalendarQueue) {
    calendar_.push(entry);
  } else {
    heap_.push(entry);
  }
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid()) return false;
  const std::uint32_t index = id.slot();
  if (index >= slots_.size()) return false;
  Slot& slot = slots_[index];
  if (!slot.armed || slot.gen != id.gen()) return false;
  if (backend_ == QueueBackend::kCalendarQueue) {
    // May find nothing when a train's current occurrence is mid-flight
    // (popped, callback executing): releasing the slot below is what stops
    // the train from re-enqueueing.
    (void)calendar_.remove(slot.at, slot.birth, slot.origin, slot.seq);
  }
  release_slot(index);
  if (backend_ == QueueBackend::kBinaryHeap) skim_dead_heap_top();
  return true;
}

void Scheduler::skim_dead_heap_top() {
  while (!heap_.empty()) {
    const EventEntry& top = heap_.top();
    const Slot& slot = slots_[top.slot];
    if (slot.armed && slot.gen == top.gen) break;
    heap_.pop();
  }
}

Time Scheduler::next_event_time() const {
  if (backend_ == QueueBackend::kCalendarQueue) {
    return calendar_.empty() ? Time::infinity() : calendar_.peek_min().at;
  }
  // Heap-top invariant: skims at cancel/pop boundaries guarantee a live top.
  return heap_.empty() ? Time::infinity() : heap_.top().at;
}

bool Scheduler::step() {
  if (stop_requested_) return false;
  EventEntry entry;
  if (backend_ == QueueBackend::kCalendarQueue) {
    if (calendar_.empty()) return false;
    entry = calendar_.pop_min();
  } else {
    if (heap_.empty()) return false;
    entry = heap_.top();
    heap_.pop();
    skim_dead_heap_top();
  }
  now_ = entry.at;
  ++executed_;
  // Move the callback out of the arena before invoking it: the callback may
  // schedule (growing slots_ and relocating every Slot) or cancel, and must
  // never execute out of storage that can move underneath it.
  Callback cb = std::move(slots_[entry.slot].cb);
  const bool last = slots_[entry.slot].remaining <= 1;
  if (last) {
    // Freed before the callback runs, so cancel(own id) from inside the
    // final firing reports false — the event is no longer pending.
    release_slot(entry.slot);
  } else {
    --slots_[entry.slot].remaining;
  }
  cb();
  if (!last) {
    // Continue the train unless the callback cancelled it (generation
    // mismatch). The fresh seq drawn here matches the chained-schedule
    // pattern trains replace, which also sequenced each next event at the
    // previous firing — so pop order is byte-identical.
    Slot& slot = slots_[entry.slot];
    if (slot.armed && slot.gen == entry.gen) {
      slot.cb = std::move(cb);
      slot.at = entry.at + slot.stride;
      slot.birth = now_;  // re-enqueued at fire time, like the chained pattern
      slot.seq = draw_rank(slot.origin);
      push_entry(EventEntry{slot.at, slot.birth, slot.seq, entry.slot, slot.gen, slot.origin});
    }
  }
  return true;
}

void Scheduler::run() {
  stop_requested_ = false;
  while (step()) {
  }
}

void Scheduler::run_until(Time until) {
  stop_requested_ = false;
  while (!stop_requested_) {
    // Break on live_ == 0, not on next == infinity: an event scheduled
    // at exactly Time::infinity() must still fire under
    // run_until(Time::infinity()) ("events at exactly `until` do fire").
    if (live_ == 0 || next_event_time() > until) break;
    step();
  }
  if (!stop_requested_ && now_ < until) now_ = until;
}

}  // namespace rss::sim
