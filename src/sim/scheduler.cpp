#include "sim/scheduler.hpp"

#include <stdexcept>
#include <utility>

namespace rss::sim {

EventId Scheduler::schedule_at(Time at, Callback cb) {
  if (at < now_) throw std::invalid_argument("Scheduler: event scheduled in the past");
  if (!cb) throw std::invalid_argument("Scheduler: null callback");
  const std::uint64_t seq = next_seq_++;
  if (backend_ == QueueBackend::kCalendarQueue) {
    calendar_.push(at, seq, std::move(cb));
  } else {
    queue_.push(Entry{at, seq, std::move(cb)});
  }
  live_.emplace(seq, at);
  return EventId{seq};
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid()) return false;
  const auto it = live_.find(id.raw());
  if (it == live_.end()) return false;
  if (backend_ == QueueBackend::kCalendarQueue) calendar_.remove(it->second, it->first);
  live_.erase(it);
  return true;
}

void Scheduler::skim_dead() const {
  // const because next_event_time() must be able to look past cancelled
  // entries; popping them is observationally pure (they can never fire).
  while (!queue_.empty() && !live_.contains(queue_.top().seq)) queue_.pop();
}

Time Scheduler::next_event_time() const {
  if (backend_ == QueueBackend::kCalendarQueue) {
    return calendar_.empty() ? Time::infinity() : calendar_.peek_min().at;
  }
  skim_dead();
  return queue_.empty() ? Time::infinity() : queue_.top().at;
}

bool Scheduler::step() {
  if (stop_requested_) return false;
  Entry entry;
  if (backend_ == QueueBackend::kCalendarQueue) {
    if (calendar_.empty()) return false;
    auto item = calendar_.pop_min();
    entry = Entry{item.at, item.seq, std::move(item.cb)};
  } else {
    skim_dead();
    if (queue_.empty()) return false;
    // Move the callback out before popping so re-entrant schedule() calls
    // from inside the callback cannot invalidate the entry we are executing.
    entry = Entry{queue_.top().at, queue_.top().seq,
                  std::move(const_cast<Entry&>(queue_.top()).cb)};
    queue_.pop();
  }
  live_.erase(entry.seq);
  now_ = entry.at;
  ++executed_;
  entry.cb();
  return true;
}

void Scheduler::run() {
  stop_requested_ = false;
  while (step()) {
  }
}

void Scheduler::run_until(Time until) {
  stop_requested_ = false;
  while (!stop_requested_) {
    // Break on live_.empty(), not on next == infinity: an event scheduled
    // exactly at Time::infinity() must still fire under
    // run_until(Time::infinity()) ("events at exactly `until` do fire").
    if (live_.empty() || next_event_time() > until) break;
    step();
  }
  if (!stop_requested_ && now_ < until) now_ = until;
}

}  // namespace rss::sim
