#include "sim/scheduler.hpp"

#include <stdexcept>
#include <utility>

namespace rss::sim {

EventId Scheduler::schedule_at(Time at, Callback cb) {
  if (at < now_) throw std::invalid_argument("Scheduler: event scheduled in the past");
  if (!cb) throw std::invalid_argument("Scheduler: null callback");
  const std::uint64_t seq = next_seq_++;
  queue_.push(Entry{at, seq, std::move(cb)});
  live_.insert(seq);
  return EventId{seq};
}

bool Scheduler::cancel(EventId id) {
  if (!id.valid()) return false;
  return live_.erase(id.raw()) > 0;
}

void Scheduler::skim_dead() const {
  // const because next_event_time() must be able to look past cancelled
  // entries; popping them is observationally pure (they can never fire).
  while (!queue_.empty() && !live_.contains(queue_.top().seq)) queue_.pop();
}

Time Scheduler::next_event_time() const {
  skim_dead();
  return queue_.empty() ? Time::infinity() : queue_.top().at;
}

bool Scheduler::step() {
  if (stop_requested_) return false;
  skim_dead();
  if (queue_.empty()) return false;
  // Move the callback out before popping so re-entrant schedule() calls from
  // inside the callback cannot invalidate the entry we are executing.
  Entry entry{queue_.top().at, queue_.top().seq,
              std::move(const_cast<Entry&>(queue_.top()).cb)};
  queue_.pop();
  live_.erase(entry.seq);
  now_ = entry.at;
  ++executed_;
  entry.cb();
  return true;
}

void Scheduler::run() {
  stop_requested_ = false;
  while (step()) {
  }
}

void Scheduler::run_until(Time until) {
  stop_requested_ = false;
  while (!stop_requested_) {
    skim_dead();
    if (queue_.empty() || queue_.top().at > until) break;
    step();
  }
  if (!stop_requested_ && now_ < until) now_ = until;
}

}  // namespace rss::sim
