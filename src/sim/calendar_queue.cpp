#include "sim/calendar_queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace rss::sim {

namespace {

bool entry_before(const EventEntry& a, const EventEntry& b) {
  // Shared with Scheduler::Later so both backends pop identically.
  return event_entry_before(a, b);
}

}  // namespace

CalendarQueue::CalendarQueue(std::size_t initial_days, Time initial_day_width)
    : buckets_(initial_days), day_width_{initial_day_width} {
  if (initial_days == 0) throw std::invalid_argument("CalendarQueue: zero days");
  if (initial_day_width <= Time::zero())
    throw std::invalid_argument("CalendarQueue: non-positive day width");
}

void CalendarQueue::push(const EventEntry& entry) {
  if (entry.at < last_popped_)
    throw std::invalid_argument("CalendarQueue: push into the past");
  min_bucket_cache_.reset();
  auto& bucket = buckets_[bucket_of(entry.at)];
  // Buckets stay sorted; insertion keeps the common append case O(1).
  const auto pos = std::upper_bound(bucket.begin(), bucket.end(), entry, entry_before);
  bucket.insert(pos, entry);
  ++size_;
  maybe_resize();
}

std::size_t CalendarQueue::min_bucket() const {
  // Scan from the bucket of the last popped time forward one "year",
  // accepting only entries inside the current year window (classic calendar
  // scan); fall back to a global min when the year scan finds nothing
  // (sparse far-future events).
  const std::size_t days = buckets_.size();
  const auto width_ns = static_cast<std::uint64_t>(day_width_.nanoseconds_count());
  const auto start_ticks =
      static_cast<std::uint64_t>(last_popped_.nanoseconds_count()) / width_ns;

  for (std::size_t i = 0; i < days; ++i) {
    const std::uint64_t ticks = start_ticks + i;
    const auto& bucket = buckets_[static_cast<std::size_t>(ticks % days)];
    if (bucket.empty()) continue;
    const EventEntry& head = bucket.front();
    // Accept if the head belongs to this day of this year.
    if (static_cast<std::uint64_t>(head.at.nanoseconds_count()) / width_ns == ticks) {
      return static_cast<std::size_t>(ticks % days);
    }
  }

  // Direct search: find the globally earliest head.
  std::size_t best = days;
  for (std::size_t b = 0; b < days; ++b) {
    if (buckets_[b].empty()) continue;
    if (best == days || entry_before(buckets_[b].front(), buckets_[best].front())) best = b;
  }
  return best;
}

EventEntry CalendarQueue::pop_min() {
  if (size_ == 0) throw std::logic_error("CalendarQueue: pop from empty queue");
  auto& bucket = buckets_[min_bucket_cache_ ? *min_bucket_cache_ : min_bucket()];
  min_bucket_cache_.reset();
  const EventEntry out = bucket.front();
  bucket.erase(bucket.begin());
  --size_;
  last_popped_ = out.at;
  maybe_resize();
  return out;
}

const EventEntry& CalendarQueue::peek_min() const {
  if (size_ == 0) throw std::logic_error("CalendarQueue: peek into empty queue");
  if (!min_bucket_cache_) min_bucket_cache_ = min_bucket();
  return buckets_[*min_bucket_cache_].front();
}

bool CalendarQueue::remove(Time at, Time birth, std::uint32_t origin, std::uint64_t seq) {
  if (size_ == 0) return false;
  auto& bucket = buckets_[bucket_of(at)];
  const EventEntry probe{at, birth, seq, 0, 0, origin};
  const auto it = std::lower_bound(bucket.begin(), bucket.end(), probe, entry_before);
  if (it == bucket.end() || it->at != at || it->birth != birth || it->origin != origin ||
      it->seq != seq)
    return false;
  min_bucket_cache_.reset();
  bucket.erase(it);
  --size_;
  maybe_resize();
  return true;
}

Time CalendarQueue::estimate_width() const {
  // Mean gap between sorted times of up to 32 sampled entries; fall back to
  // the current width when the sample is degenerate.
  std::vector<Time> sample;
  sample.reserve(32);
  for (const auto& bucket : buckets_) {
    for (const auto& entry : bucket) {
      sample.push_back(entry.at);
      if (sample.size() >= 32) break;
    }
    if (sample.size() >= 32) break;
  }
  if (sample.size() < 2) return day_width_;
  std::sort(sample.begin(), sample.end());
  const Time span = sample.back() - sample.front();
  const auto gaps = static_cast<std::int64_t>(sample.size() - 1);
  Time width = span / gaps;
  if (width <= Time::zero()) width = Time::nanoseconds(1);
  // Brown's rule of thumb: bucket width ~ 3x the mean gap.
  return width * 3;
}

void CalendarQueue::maybe_resize() {
  const std::size_t days = buckets_.size();
  if (size_ > 2 * days) {
    rebuild(days * 2, estimate_width());
  } else if (days > 16 && size_ < days / 2) {
    rebuild(days / 2, estimate_width());
  }
}

void CalendarQueue::rebuild(std::size_t new_days, Time new_width) {
  ++resizes_;
  std::vector<EventEntry> all;
  all.reserve(size_);
  for (auto& bucket : buckets_) {
    for (const auto& entry : bucket) all.push_back(entry);
    bucket.clear();
  }
  buckets_.assign(new_days, {});
  day_width_ = new_width;
  for (const auto& entry : all) {
    auto& bucket = buckets_[bucket_of(entry.at)];
    const auto pos = std::upper_bound(bucket.begin(), bucket.end(), entry, entry_before);
    bucket.insert(pos, entry);
  }
}

}  // namespace rss::sim
