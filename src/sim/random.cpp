#include "sim/random.hpp"

#include <cmath>

namespace rss::sim {

double Rng::next_exponential(double mean) {
  // Inverse CDF; guard the log argument away from zero.
  double u = next_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(1.0 - u);
}

double Rng::next_normal(double mu, double sigma) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mu + sigma * spare_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * next_double() - 1.0;
    v = 2.0 * next_double() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return mu + sigma * u * factor;
}

}  // namespace rss::sim
