#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

#include "sim/time.hpp"

namespace rss::sim {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Minimal leveled logger for simulation tracing. Global threshold, stream
/// sink, stamped with simulation time when the caller provides one.
/// Deliberately tiny: experiments produce their data through metrics
/// recorders, not log scraping, so this only serves debugging.
class Log {
 public:
  static LogLevel threshold() { return threshold_; }
  static void set_threshold(LogLevel level) { threshold_ = level; }
  static void set_sink(std::ostream* os) { sink_ = os; }

  static bool enabled(LogLevel level) { return level >= threshold_ && sink_ != nullptr; }

  static void write(LogLevel level, Time now, std::string_view component,
                    std::string_view message);

 private:
  static inline LogLevel threshold_ = LogLevel::kWarn;
  static inline std::ostream* sink_ = &std::clog;
};

#define RSS_LOG(level, sim_time, component, expr)                           \
  do {                                                                      \
    if (::rss::sim::Log::enabled(level)) {                                  \
      std::ostringstream rss_log_oss_;                                      \
      rss_log_oss_ << expr;                                                 \
      ::rss::sim::Log::write(level, sim_time, component, rss_log_oss_.str()); \
    }                                                                       \
  } while (0)

#define RSS_TRACE(sim_time, component, expr) \
  RSS_LOG(::rss::sim::LogLevel::kTrace, sim_time, component, expr)
#define RSS_DEBUG(sim_time, component, expr) \
  RSS_LOG(::rss::sim::LogLevel::kDebug, sim_time, component, expr)
#define RSS_INFO(sim_time, component, expr) \
  RSS_LOG(::rss::sim::LogLevel::kInfo, sim_time, component, expr)
#define RSS_WARN(sim_time, component, expr) \
  RSS_LOG(::rss::sim::LogLevel::kWarn, sim_time, component, expr)

}  // namespace rss::sim
