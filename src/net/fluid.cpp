#include "net/fluid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "net/device.hpp"
#include "sim/inline_callback.hpp"

namespace rss::net {

namespace {

/// Cap on the fluid aggregate's share of a line so the residual packet
/// serialization rate stays finite (matches NetDevice::set_fluid_share).
constexpr double kMaxFluidShare = 0.98;

/// Fraction of the packet class's arrival share reserved as buffer
/// headroom when publishing virtual occupancy (see the reserve comment in
/// FluidQueueCoupling::step). 1.0 shields packet flows from nearly every
/// fluid overflow episode; 0.0 exposes them to all of them. Calibrated on
/// the parking-lot equivalence study: foreground goodput and loss
/// frequency track the all-packet run closest mid-range. Recalibrated when
/// the scheduler's same-instant tie-break moved to intrinsic per-node
/// streams — the all-packet reference dynamics shifted to a fairer
/// foreground share, and the reserve follows the reference.
constexpr double kPacketBufferShare = 0.937;

}  // namespace

FluidSource::FluidSource(FluidOptions opt, std::string name)
    : opt_{opt}, name_{std::move(name)} {
  if (opt_.stride <= sim::Time::zero())
    throw std::invalid_argument("FluidSource: stride must be > 0");
  if (opt_.rtt <= sim::Time::zero()) throw std::invalid_argument("FluidSource: rtt must be > 0");
  if (opt_.packet_bytes == 0) throw std::invalid_argument("FluidSource: zero packet size");
  if (opt_.decrease <= 0.0 || opt_.decrease >= 1.0)
    throw std::invalid_argument("FluidSource: decrease factor must be in (0, 1)");
  if (opt_.initial_rate.bits_per_second() == 0)
    throw std::invalid_argument("FluidSource: zero initial rate");
}

void FluidSource::start() {
  if (started_) return;
  started_ = true;
  rate_bps_ = static_cast<double>(opt_.initial_rate.bits_per_second());
  const double peak = peak_rate_bps();
  rate_bps_ = std::clamp(rate_bps_, min_rate_bps(), peak);
}

void FluidSource::begin_interval(double dt) {
  if (!started_) return;
  offered_bytes_ += rate_bps_ * dt / 8.0;
}

bool FluidSource::note_loss(sim::Time now) {
  if (!started_) return false;
  if (now < next_decrease_at_) return false;
  pending_decrease_ = true;
  next_decrease_at_ = now + opt_.rtt;
  return true;
}

void FluidSource::end_interval(sim::Time /*now*/, double dt) {
  if (!started_) return;
  const double rtt = opt_.rtt.to_seconds();
  if (pending_decrease_) {
    pending_decrease_ = false;
    slow_start_ = false;
    rate_bps_ *= opt_.decrease;
  } else if (slow_start_) {
    // Slow-start analog: the rate doubles once per RTT until the first
    // loss, so a fresh aggregate pressures the bottleneck on the same
    // timescale a packet TCP's exponential window ramp would.
    rate_bps_ *= std::exp2(dt / rtt);
  } else {
    // TCP-friendly additive increase: one packet per RTT per RTT.
    rate_bps_ += static_cast<double>(opt_.packet_bytes) * 8.0 / (rtt * rtt) * dt;
  }
  rate_bps_ = std::clamp(rate_bps_, min_rate_bps(), peak_rate_bps());
}

double FluidSource::min_rate_bps() const {
  // One packet per RTT — the floor TCP never drops below while alive.
  return static_cast<double>(opt_.packet_bytes) * 8.0 / opt_.rtt.to_seconds();
}

double FluidSource::peak_rate_bps() const {
  return opt_.peak_rate.bits_per_second() > 0
             ? static_cast<double>(opt_.peak_rate.bits_per_second())
             : std::numeric_limits<double>::max();
}

double FluidSink::goodput_mbps(sim::Time t0, sim::Time t1) const {
  if (t1 <= t0) return 0.0;
  return delivered_bytes() * 8.0 / (t1 - t0).to_seconds() / 1e6;
}

FluidQueueCoupling::FluidQueueCoupling(NetDevice& device) : device_{&device} {}

void FluidQueueCoupling::add_source(FluidSource* source) {
  if (source == nullptr) throw std::invalid_argument("FluidQueueCoupling: null source");
  if (sources_.empty()) {
    packet_bytes_ = source->options().packet_bytes;
  } else {
    packet_bytes_ = std::max(packet_bytes_, source->options().packet_bytes);
  }
  sources_.push_back(source);
}

void FluidQueueCoupling::step(sim::Time now, double dt) {
  PacketQueue& queue = device_->mutable_ifq();

  const double cap_bytes = static_cast<double>(device_->rate().bits_per_second()) * dt / 8.0;
  double fluid_arrival = 0.0;
  for (const FluidSource* s : sources_) fluid_arrival += s->rate_bps() * dt / 8.0;
  const double fluid_demand = backlog_bytes_ + fluid_arrival;

  // Packet demand over the interval: bytes newly offered to the queue
  // (enqueued or dropped — drops still competed for room) plus the bytes
  // that were already waiting when the interval began.
  const QueueStats& st = queue.stats();
  const std::uint64_t counter = st.bytes_enqueued + st.bytes_dropped;
  const double pkt_new = static_cast<double>(counter - prev_pkt_bytes_counter_);
  const double pkt_demand = pkt_new + static_cast<double>(prev_queue_bytes_);
  const double total_demand = fluid_demand + pkt_demand;

  // Proportional-share FIFO: under load the line splits pro rata between
  // the two demand classes; underloaded, everything fluid is served.
  double share = 0.0;
  if (fluid_demand > 0.0 && cap_bytes > 0.0) {
    share = total_demand <= cap_bytes ? fluid_demand / cap_bytes : fluid_demand / total_demand;
    share = std::min(share, kMaxFluidShare);
  }
  const double served = std::min(fluid_demand, share * cap_bytes);
  double backlog = fluid_demand - served;

  // Backlog beyond the room real packets leave is shed: those bytes would
  // have been drops for packet cross-traffic, so attribute them pro rata
  // and raise the loss signal.
  const std::size_t cap_packets = queue.capacity_packets();
  const std::size_t real_packets = queue.size_packets();
  const std::size_t room_packets = cap_packets > real_packets ? cap_packets - real_packets : 0;
  const double room_bytes =
      static_cast<double>(room_packets) * static_cast<double>(packet_bytes_);
  if (backlog > room_bytes) {
    const double overflow = backlog - room_bytes;
    backlog = room_bytes;
    double total_rate = 0.0;
    for (const FluidSource* s : sources_) total_rate += s->rate_bps();
    if (total_rate > 0.0) {
      // Every contributing aggregate takes the loss signal, like the drop
      // burst of a drop-tail overflow episode hits every flow with packets
      // in flight; the per-source RTT epoch keeps a sustained overflow from
      // halving anyone more than once per window. Symmetry with the packet
      // class matters more than desynchronization here: real packet flows
      // sharing the queue also lose once per overflow episode.
      for (FluidSource* s : sources_) {
        const double frac = s->rate_bps() / total_rate;
        if (frac <= 0.0) continue;
        s->add_dropped_bytes(overflow * frac);
        (void)s->note_loss(now);
      }
    }
  }

  backlog_bytes_ = backlog;
  std::size_t virtual_packets = static_cast<std::size_t>(
      std::llround(backlog / static_cast<double>(packet_bytes_)));
  virtual_packets = std::min(virtual_packets, room_packets);
  // Published occupancy reserves the packet class's arrival share of the
  // buffer: in a real FIFO the classes' packets interleave, so a flow with
  // a quarter of the arrivals keeps roughly a quarter of the slots and
  // escapes most overflow episodes. Without the reserve, every fluid
  // sawtooth peak would cost the packet flows a drop — a synchronization
  // real multiplexing doesn't have.
  const double arrivals = fluid_arrival + pkt_new;
  const double pkt_frac = arrivals > 0.0 ? pkt_new / arrivals : 0.0;
  const std::size_t reserve = static_cast<std::size_t>(
      std::ceil(kPacketBufferShare * pkt_frac * static_cast<double>(cap_packets)));
  if (cap_packets > reserve) {
    virtual_packets = std::min(virtual_packets, cap_packets - reserve);
  }
  queue.set_virtual_backlog(virtual_packets, static_cast<std::size_t>(backlog));
  device_->set_fluid_share(share);

  prev_pkt_bytes_counter_ = counter;
  prev_queue_bytes_ = queue.size_bytes();
}

FluidDriver::FluidDriver(sim::Simulation& simulation, sim::Time stride)
    : sim_{simulation}, stride_{stride} {
  if (stride_ <= sim::Time::zero()) throw std::invalid_argument("FluidDriver: stride must be > 0");
}

void FluidDriver::add_source(FluidSource* source) {
  if (source == nullptr) throw std::invalid_argument("FluidDriver: null source");
  sources_.push_back(source);
}

void FluidDriver::add_coupling(FluidQueueCoupling* coupling) {
  if (coupling == nullptr) throw std::invalid_argument("FluidDriver: null coupling");
  couplings_.push_back(coupling);
}

void FluidDriver::start() {
  if (armed_) return;
  armed_ = true;
  const auto fire = [this] { tick(); };
  static_assert(sizeof(fire) <= sim::InlineCallback::kCapacity,
                "fluid tick callback must stay inline on the scheduler hot path");
  sim_.in(stride_, fire);
}

void FluidDriver::tick() {
  const double dt = stride_.to_seconds();
  const sim::Time now = sim_.now();
  // Three phases so every coupling sees the same pre-update rates: offer
  // the interval's bytes, couple them into the queues, then adapt rates
  // from the loss signals the couplings raised. Registration order cannot
  // change the outcome of a tick.
  for (FluidSource* s : sources_) s->begin_interval(dt);
  for (FluidQueueCoupling* c : couplings_) c->step(now, dt);
  for (FluidSource* s : sources_) s->end_interval(now, dt);
  const auto fire = [this] { tick(); };
  sim_.in(stride_, fire);
}

}  // namespace rss::net
