#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/device.hpp"
#include "net/packet.hpp"
#include "sim/simulation.hpp"

namespace rss::net {

/// A host or router: a set of NetDevices plus a static forwarding table
/// (destination node id -> egress device) and per-flow protocol handlers.
///
/// Receive path: device -> Node::on_receive -> if the packet is addressed
/// here, demux to the flow handler; otherwise forward out the routed
/// device. Forwarding drops (full egress queue at a router) are ordinary
/// network drops; only *locally originated* sends report stalls to the
/// sender — mirroring the kernel, where NET_XMIT_CN reaches the socket that
/// wrote, not transit traffic.
class Node {
 public:
  using FlowHandler = std::function<void(const Packet&)>;

  enum class SendResult {
    kSent,     ///< admitted to the egress IFQ
    kStalled,  ///< egress IFQ full (local congestion / send-stall)
    kNoRoute,  ///< no forwarding entry for the destination
  };

  Node(sim::Simulation& simulation, std::uint32_t id, std::string name);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Create and own a device. Returned reference is stable for the node's
  /// lifetime (devices are never removed).
  NetDevice& add_device(DataRate rate, std::unique_ptr<PacketQueue> ifq,
                        std::string device_name = {});

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }
  [[nodiscard]] NetDevice& device(std::size_t index) { return *devices_.at(index); }
  [[nodiscard]] const NetDevice& device(std::size_t index) const { return *devices_.at(index); }

  /// Route packets destined to `dst_node` out of `device(index)`.
  void set_route(std::uint32_t dst_node, std::size_t device_index);
  /// Fallback egress when no specific route matches.
  void set_default_route(std::size_t device_index);
  /// Installed egress device index for `dst_node`, or nullopt when only
  /// the default route (or nothing) would match — forwarding-table
  /// introspection for topology-builder tests and debugging.
  [[nodiscard]] std::optional<std::size_t> route(std::uint32_t dst_node) const;
  [[nodiscard]] std::optional<std::size_t> default_route() const { return default_route_; }
  [[nodiscard]] std::size_t route_count() const { return routes_.size(); }

  /// Register the handler for packets of a given flow addressed to this
  /// node. A flow may have at most one handler.
  void register_flow_handler(std::uint32_t flow_id, FlowHandler handler);

  /// Originate a packet from this node (stamps src automatically).
  SendResult send(Packet p);

  [[nodiscard]] std::uint64_t forwarded_packets() const { return forwarded_; }
  [[nodiscard]] std::uint64_t delivered_packets() const { return delivered_; }
  [[nodiscard]] std::uint64_t forward_drops() const { return forward_drops_; }

 private:
  void on_receive(const Packet& p, NetDevice& from);
  [[nodiscard]] NetDevice* egress_for(std::uint32_t dst_node);

  sim::Simulation& sim_;
  std::uint32_t id_;
  std::string name_;
  std::vector<std::unique_ptr<NetDevice>> devices_;
  std::unordered_map<std::uint32_t, std::size_t> routes_;
  std::optional<std::size_t> default_route_;
  std::unordered_map<std::uint32_t, FlowHandler> flow_handlers_;
  std::uint64_t forwarded_{0};
  std::uint64_t delivered_{0};
  std::uint64_t forward_drops_{0};
};

}  // namespace rss::net
