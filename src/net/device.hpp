#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "net/data_rate.hpp"
#include "net/packet.hpp"
#include "net/queue.hpp"
#include "sim/simulation.hpp"

namespace rss::net {

class PointToPointLink;

/// Statistics a NetDevice accumulates. `send_stalls` counts local-send
/// rejections by a full IFQ — the paper's central observable.
struct DeviceStats {
  std::uint64_t tx_packets{0};
  std::uint64_t tx_bytes{0};
  std::uint64_t rx_packets{0};
  std::uint64_t rx_bytes{0};
  std::uint64_t send_stalls{0};
};

/// Network interface: a finite interface queue (IFQ, Linux `txqueuelen`)
/// drained at line rate onto an attached point-to-point link.
///
/// This device is the *plant* of the paper. The host stack pushes packets
/// in bursts (2-per-ACK during slow-start); the wire drains them one
/// serialization time apart. When a push finds the IFQ full, the device
/// rejects it — the Linux `NET_XMIT_CN` "send-stall" — and notifies the
/// stall observer so TCP can react (and Web100 can count it).
class NetDevice {
 public:
  using ReceiveCallback = std::function<void(const Packet&, NetDevice&)>;
  using StallCallback = std::function<void(const Packet&)>;

  enum class TxResult {
    kQueued,    ///< admitted to the IFQ (possibly already on the wire)
    kRejected,  ///< IFQ full — send-stall
  };

  NetDevice(sim::Simulation& simulation, DataRate rate,
            std::unique_ptr<PacketQueue> ifq, std::string name);

  NetDevice(const NetDevice&) = delete;
  NetDevice& operator=(const NetDevice&) = delete;

  /// Push a packet from the upper layer (host stack or forwarding plane).
  TxResult send(const Packet& p);

  /// Wire attachment; the link delivers received packets via deliver_up().
  void attach_link(PointToPointLink* link) { link_ = link; }
  [[nodiscard]] PointToPointLink* link() const { return link_; }

  /// Called by the link when a packet arrives from the peer.
  void deliver_up(const Packet& p);

  void set_receive_callback(ReceiveCallback cb) { rx_cb_ = std::move(cb); }
  void set_stall_callback(StallCallback cb) { stall_cb_ = std::move(cb); }
  /// Current callbacks, exposed so observers (PacketTracer) can chain onto
  /// them without destroying the existing wiring.
  [[nodiscard]] const ReceiveCallback& receive_callback() const { return rx_cb_; }
  [[nodiscard]] const StallCallback& stall_callback() const { return stall_cb_; }
  [[nodiscard]] sim::Simulation& simulation() const { return sim_; }

  [[nodiscard]] const PacketQueue& ifq() const { return *ifq_; }
  /// Mutable IFQ access for the fluid coupling, which pushes the aggregate's
  /// virtual backlog into the queue between events.
  [[nodiscard]] PacketQueue& mutable_ifq() { return *ifq_; }
  [[nodiscard]] DataRate rate() const { return rate_; }
  [[nodiscard]] const DeviceStats& stats() const { return stats_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool transmitting() const { return busy_; }

  /// Occupancy including the packet currently being serialized — what
  /// Linux's qdisc-length probe would report, and the PID process variable.
  [[nodiscard]] std::size_t occupancy_packets() const {
    return ifq_->size_packets() + (busy_ ? 1u : 0u);
  }
  [[nodiscard]] std::size_t ifq_capacity() const { return ifq_->capacity_packets(); }

  /// Fraction of line rate consumed by a fluid aggregate sharing this
  /// device (0 = all-packet). While nonzero, packet serialization slots are
  /// stretched to rate·(1 − share) and event trains are disabled so the
  /// share can change between any two completions.
  void set_fluid_share(double share);
  [[nodiscard]] double fluid_share() const { return fluid_share_; }

  /// Stable tie-break label for events this device emits onto a link
  /// (Scheduler origin streams; see EventEntry). The builder tags every
  /// device with its owning node's global spec index + 1, so same-timestamp
  /// deliveries order by (node, per-node rank) — a pure function of the
  /// topology — instead of scheduler insertion order, which is what keeps
  /// partitioned runs pop-order-identical to sequential ones. 0 (the
  /// default) is the shared legacy stream.
  void set_event_origin(std::uint32_t origin) { event_origin_ = origin; }
  [[nodiscard]] std::uint32_t event_origin() const { return event_origin_; }

 private:
  /// Longest serialization train armed in one go. Bounds how far ahead the
  /// IFQ head run is inspected; runs longer than this simply chain trains.
  static constexpr std::size_t kMaxTxTrain = 64;

  void try_start_tx();
  void complete_tx();

  sim::Simulation& sim_;
  DataRate rate_;
  std::unique_ptr<PacketQueue> ifq_;
  std::string name_;
  PointToPointLink* link_{nullptr};
  ReceiveCallback rx_cb_;
  StallCallback stall_cb_;
  DeviceStats stats_;
  /// The packet currently on the wire. Held here (not in the scheduled
  /// closure) so the serialization callback captures only `this` and stays
  /// within the scheduler's inline-callback budget.
  Packet serializing_{};
  /// Completions left in the current serialization train (0 when idle).
  std::uint64_t train_left_{0};
  double fluid_share_{0.0};
  std::uint32_t event_origin_{0};
  bool busy_{false};
};

}  // namespace rss::net
