#include "net/trace.hpp"

#include <algorithm>
#include <ostream>

namespace rss::net {

void PacketTracer::attach(NetDevice& device) {
  // Chain: keep whatever was wired before and add our recording.
  auto prev_rx = device.receive_callback();
  device.set_receive_callback([this, prev_rx, &device](const Packet& p, NetDevice& dev) {
    events_.push_back({device.simulation().now(), TraceEvent::Kind::kReceive, p.uid,
                       p.flow_id, p.src_node, p.dst_node, p.size_bytes(), dev.name()});
    if (prev_rx) prev_rx(p, dev);
  });

  auto prev_stall = device.stall_callback();
  device.set_stall_callback([this, prev_stall, &device](const Packet& p) {
    events_.push_back({device.simulation().now(), TraceEvent::Kind::kDrop, p.uid, p.flow_id,
                       p.src_node, p.dst_node, p.size_bytes(), device.name()});
    if (prev_stall) prev_stall(p);
  });
}

std::size_t PacketTracer::count(
    const std::function<bool(const TraceEvent&)>& pred) const {
  return static_cast<std::size_t>(std::count_if(events_.begin(), events_.end(), pred));
}

std::vector<TraceEvent> PacketTracer::for_flow(std::uint32_t flow_id) const {
  std::vector<TraceEvent> out;
  for (const auto& e : events_) {
    if (e.flow_id == flow_id) out.push_back(e);
  }
  return out;
}

void PacketTracer::dump(std::ostream& os) const {
  for (const auto& e : events_) os << e << '\n';
}

std::ostream& operator<<(std::ostream& os, const TraceEvent& e) {
  // ns-2-ish single-letter event codes.
  const char code = e.kind == TraceEvent::Kind::kReceive   ? 'r'
                    : e.kind == TraceEvent::Kind::kDrop    ? 'd'
                    : e.kind == TraceEvent::Kind::kEnqueue ? '+'
                                                           : '-';
  return os << code << ' ' << e.t.to_seconds() << ' ' << e.device << " flow" << e.flow_id
            << ' ' << e.src_node << "->" << e.dst_node << " uid" << e.packet_uid << " len"
            << e.size_bytes;
}

}  // namespace rss::net
