#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace rss::net {

/// Link/NIC transmission rate in bits per second, with the conversion that
/// matters everywhere: how long a packet of N bytes occupies the wire.
class DataRate {
 public:
  constexpr DataRate() = default;

  [[nodiscard]] static constexpr DataRate bps(std::uint64_t v) { return DataRate{v}; }
  [[nodiscard]] static constexpr DataRate kbps(std::uint64_t v) { return DataRate{v * 1'000}; }
  [[nodiscard]] static constexpr DataRate mbps(std::uint64_t v) { return DataRate{v * 1'000'000}; }
  [[nodiscard]] static constexpr DataRate gbps(std::uint64_t v) {
    return DataRate{v * 1'000'000'000};
  }

  [[nodiscard]] constexpr std::uint64_t bits_per_second() const { return bps_; }
  [[nodiscard]] constexpr double megabits_per_second() const {
    return static_cast<double>(bps_) / 1e6;
  }

  /// Serialization delay for `bytes` at this rate, rounded up to a whole
  /// nanosecond so back-to-back packets never overlap on the wire.
  [[nodiscard]] constexpr sim::Time transmission_time(std::size_t bytes) const {
    const auto bits = static_cast<std::uint64_t>(bytes) * 8;
    const std::uint64_t ns = (bits * 1'000'000'000 + bps_ - 1) / bps_;
    return sim::Time::nanoseconds(static_cast<std::int64_t>(ns));
  }

  /// Bytes this rate delivers over `interval` (floor).
  [[nodiscard]] constexpr std::uint64_t bytes_over(sim::Time interval) const {
    const auto ns = static_cast<std::uint64_t>(interval.nanoseconds_count());
    return bps_ * ns / 8 / 1'000'000'000;
  }

  constexpr auto operator<=>(const DataRate&) const = default;

 private:
  constexpr explicit DataRate(std::uint64_t bps) : bps_{bps} {}
  std::uint64_t bps_{0};
};

}  // namespace rss::net
