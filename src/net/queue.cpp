#include "net/queue.hpp"

#include <algorithm>
#include <stdexcept>

namespace rss::net {

namespace {

/// Shared by the deque-backed queues: length of the equal-size head run.
std::size_t head_run_of_equal_sizes(const std::deque<Packet>& queue, std::size_t max_run) {
  if (queue.empty() || max_run == 0) return 0;
  const std::uint32_t head_size = queue.front().size_bytes();
  std::size_t run = 1;
  while (run < max_run && run < queue.size() && queue[run].size_bytes() == head_size) ++run;
  return run;
}

}  // namespace

DropTailQueue::DropTailQueue(std::size_t capacity_packets) : capacity_{capacity_packets} {
  if (capacity_packets == 0) throw std::invalid_argument("DropTailQueue: zero capacity");
}

bool DropTailQueue::enqueue(const Packet& p) {
  if (queue_.size() + virtual_packets_ >= capacity_) {
    ++stats_.dropped;
    stats_.bytes_dropped += p.size_bytes();
    return false;
  }
  Packet admitted = p;
  maybe_step_mark(admitted, queue_.size() + virtual_packets_);
  queue_.push_back(admitted);
  bytes_ += admitted.size_bytes();
  ++stats_.enqueued;
  stats_.bytes_enqueued += admitted.size_bytes();
  stats_.peak_packets = std::max(stats_.peak_packets, queue_.size());
  return true;
}

std::optional<Packet> DropTailQueue::dequeue() {
  if (queue_.empty()) return std::nullopt;
  Packet p = queue_.front();
  queue_.pop_front();
  bytes_ -= p.size_bytes();
  ++stats_.dequeued;
  return p;
}

std::size_t DropTailQueue::equal_size_run(std::size_t max_run) const {
  return head_run_of_equal_sizes(queue_, max_run);
}

RedQueue::RedQueue(Options opt, sim::Rng rng) : opt_{opt}, rng_{rng} {
  if (opt_.capacity_packets == 0) throw std::invalid_argument("RedQueue: zero capacity");
  if (!(opt_.min_threshold < opt_.max_threshold))
    throw std::invalid_argument("RedQueue: min_threshold must be < max_threshold");
  if (opt_.queue_weight <= 0.0 || opt_.queue_weight > 1.0)
    throw std::invalid_argument("RedQueue: queue_weight out of (0,1]");
}

bool RedQueue::enqueue(const Packet& p) {
  // EWMA of instantaneous occupancy, updated on every arrival (the
  // idle-period refinement is omitted; our links rarely idle mid-run).
  // Virtual (fluid) backlog counts toward occupancy so AQM pressure
  // matches what packet cross-traffic would exert.
  avg_ = (1.0 - opt_.queue_weight) * avg_ +
         opt_.queue_weight * static_cast<double>(queue_.size() + virtual_packets_);

  bool drop = false;
  bool early = false;
  if (queue_.size() + virtual_packets_ >= opt_.capacity_packets || avg_ >= opt_.max_threshold) {
    drop = true;  // forced drop: hard full or average beyond max threshold
  } else if (avg_ > opt_.min_threshold) {
    // Linear ramp p_b, then the 1/(1 - count·p_b) uniformization from the
    // RED paper so inter-drop gaps are uniform rather than geometric.
    const double pb = opt_.max_drop_probability * (avg_ - opt_.min_threshold) /
                      (opt_.max_threshold - opt_.min_threshold);
    const double denom = 1.0 - static_cast<double>(count_since_drop_) * pb;
    const double pa = denom > 0.0 ? std::min(1.0, pb / denom) : 1.0;
    if (rng_.next_bool(pa)) {
      drop = true;
      early = true;
    } else {
      ++count_since_drop_;
    }
  } else {
    count_since_drop_ = 0;
  }

  Packet admitted = p;
  if (drop) {
    // ECN (RFC 3168): an *early* decision on an ECT packet becomes a CE
    // mark and the packet is admitted — the whole point of marking is to
    // signal before loss is necessary. Forced decisions (hard full, or
    // average beyond max threshold) still drop: at that point the queue
    // genuinely has no room to protect.
    if (early && admitted.ect) {
      admitted.ce = true;
      ++stats_.ce_marked;
      ++early_drops_;  // counts decision events, marked or dropped
      count_since_drop_ = 0;
    } else {
      ++stats_.dropped;
      stats_.bytes_dropped += admitted.size_bytes();
      if (early) {
        ++early_drops_;
        count_since_drop_ = 0;
      } else {
        ++forced_drops_;
      }
      return false;
    }
  } else {
    maybe_step_mark(admitted, queue_.size() + virtual_packets_);
  }

  queue_.push_back(admitted);
  bytes_ += admitted.size_bytes();
  ++stats_.enqueued;
  stats_.bytes_enqueued += admitted.size_bytes();
  stats_.peak_packets = std::max(stats_.peak_packets, queue_.size());
  return true;
}

std::optional<Packet> RedQueue::dequeue() {
  if (queue_.empty()) return std::nullopt;
  Packet p = queue_.front();
  queue_.pop_front();
  bytes_ -= p.size_bytes();
  ++stats_.dequeued;
  return p;
}

std::size_t RedQueue::equal_size_run(std::size_t max_run) const {
  return head_run_of_equal_sizes(queue_, max_run);
}

}  // namespace rss::net
