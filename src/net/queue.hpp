#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>

#include "net/packet.hpp"
#include "sim/random.hpp"

namespace rss::net {

/// Occupancy/drop statistics every queue maintains. `peak_packets` is the
/// high-water mark — the motivation section of the paper is precisely about
/// this value hitting capacity.
struct QueueStats {
  std::uint64_t enqueued{0};
  std::uint64_t dequeued{0};
  std::uint64_t dropped{0};
  std::uint64_t bytes_enqueued{0};
  std::uint64_t bytes_dropped{0};
  std::uint64_t ce_marked{0};  ///< ECT packets CE-marked instead of dropped
  std::size_t peak_packets{0};
};

/// Abstract FIFO of packets with an admission policy. Implementations
/// decide drop behaviour; the owner (NetDevice or Link egress) decides
/// drain timing.
class PacketQueue {
 public:
  virtual ~PacketQueue() = default;

  /// Try to admit a packet. Returns false if the packet was dropped (the
  /// caller turns that into a send-stall or a wire drop as appropriate).
  [[nodiscard]] virtual bool enqueue(const Packet& p) = 0;

  /// Remove and return the head packet, or nullopt when empty.
  [[nodiscard]] virtual std::optional<Packet> dequeue() = 0;

  [[nodiscard]] virtual std::size_t size_packets() const = 0;
  [[nodiscard]] virtual std::size_t size_bytes() const = 0;
  [[nodiscard]] virtual std::size_t capacity_packets() const = 0;
  [[nodiscard]] virtual bool empty() const { return size_packets() == 0; }

  /// Number of consecutive head packets sharing the head packet's on-wire
  /// size, capped at `max_run` (0 when empty). NetDevice uses this to arm
  /// one batched serialization train for the whole equal-size burst instead
  /// of scheduling each completion individually. Purely a read — drop/ECN
  /// policy is untouched, and packets still leave via dequeue() one
  /// serialization slot apart. The conservative default (a run of one)
  /// keeps any third-party queue correct, just train-less.
  [[nodiscard]] virtual std::size_t equal_size_run(std::size_t max_run) const {
    return (empty() || max_run == 0) ? 0 : 1;
  }

  [[nodiscard]] const QueueStats& stats() const { return stats_; }

  /// Occupancy as a fraction of packet capacity — the PID process variable.
  /// Includes the virtual (fluid) backlog so controllers and AQM see the
  /// same pressure packet cross-traffic would exert.
  [[nodiscard]] double fill_fraction() const {
    const std::size_t cap = capacity_packets();
    if (cap == 0) return 0.0;
    return static_cast<double>(size_packets() + virtual_packets_) / static_cast<double>(cap);
  }

  /// Total byte depth: real queued bytes plus the virtual fluid backlog.
  /// This is the introspection surface the fluid coupling reads — no
  /// friend-class poking at implementation deques.
  [[nodiscard]] std::size_t byte_depth() const { return size_bytes() + virtual_bytes_; }

  /// Install the fluid aggregate's share of this queue's occupancy. A
  /// FluidQueueCoupling calls this once per integration stride; admission
  /// policies treat the virtual packets as if they were real occupants so
  /// foreground flows see the depth trajectory packet cross-traffic would
  /// produce.
  void set_virtual_backlog(std::size_t packets, std::size_t bytes) {
    virtual_packets_ = packets;
    virtual_bytes_ = bytes;
  }

  [[nodiscard]] std::size_t virtual_packets() const { return virtual_packets_; }
  [[nodiscard]] std::size_t virtual_bytes() const { return virtual_bytes_; }

  /// DCTCP-style step marking (RFC 8257 §3.1): when non-zero, an ECT packet
  /// admitted while the instantaneous occupancy (real + virtual) is at or
  /// above `packets` is CE-marked. Zero (the default) disables the step —
  /// classic drop behaviour is untouched. Works on every discipline, so a
  /// plain drop-tail switch can serve as the shallow-threshold DCTCP
  /// fabric, which is exactly how the scheme is deployed.
  void set_ecn_step_threshold(std::size_t packets) { ecn_step_threshold_ = packets; }
  [[nodiscard]] std::size_t ecn_step_threshold() const { return ecn_step_threshold_; }

 protected:
  /// Apply the step-marking rule to a packet that is about to be admitted;
  /// `occupancy` is the pre-admission depth in packets (real + virtual).
  void maybe_step_mark(Packet& p, std::size_t occupancy) {
    if (ecn_step_threshold_ == 0 || !p.ect || p.ce) return;
    if (occupancy >= ecn_step_threshold_) {
      p.ce = true;
      ++stats_.ce_marked;
    }
  }

  QueueStats stats_;
  std::size_t virtual_packets_{0};
  std::size_t virtual_bytes_{0};
  std::size_t ecn_step_threshold_{0};
};

/// Classic tail-drop FIFO bounded in packets — the Linux `txqueuelen`
/// interface queue and the default router queue discipline of the paper's
/// era. Capacity 100 packets matches the Linux 2.4 txqueuelen default.
class DropTailQueue final : public PacketQueue {
 public:
  explicit DropTailQueue(std::size_t capacity_packets = 100);

  [[nodiscard]] bool enqueue(const Packet& p) override;
  [[nodiscard]] std::optional<Packet> dequeue() override;
  [[nodiscard]] std::size_t size_packets() const override { return queue_.size(); }
  [[nodiscard]] std::size_t size_bytes() const override { return bytes_; }
  [[nodiscard]] std::size_t capacity_packets() const override { return capacity_; }
  [[nodiscard]] std::size_t equal_size_run(std::size_t max_run) const override;

 private:
  std::size_t capacity_;
  std::size_t bytes_{0};
  std::deque<Packet> queue_;
};

/// Random Early Detection (Floyd & Jacobson '93): probabilistic marking/
/// dropping between min_th and max_th of EWMA average occupancy. Provided
/// as the era's standard AQM so dumbbell experiments can contrast tail-drop
/// routers with AQM routers; RSS itself targets the host IFQ, which is
/// always tail-drop.
class RedQueue final : public PacketQueue {
 public:
  struct Options {
    std::size_t capacity_packets{100};
    double min_threshold{15.0};   ///< packets
    double max_threshold{45.0};   ///< packets
    double max_drop_probability{0.1};
    double queue_weight{0.002};   ///< EWMA weight w_q
  };

  RedQueue(Options opt, sim::Rng rng);

  [[nodiscard]] bool enqueue(const Packet& p) override;
  [[nodiscard]] std::optional<Packet> dequeue() override;
  [[nodiscard]] std::size_t size_packets() const override { return queue_.size(); }
  [[nodiscard]] std::size_t size_bytes() const override { return bytes_; }
  [[nodiscard]] std::size_t capacity_packets() const override { return opt_.capacity_packets; }
  [[nodiscard]] std::size_t equal_size_run(std::size_t max_run) const override;

  [[nodiscard]] double average_occupancy() const { return avg_; }
  [[nodiscard]] std::uint64_t early_drops() const { return early_drops_; }
  [[nodiscard]] std::uint64_t forced_drops() const { return forced_drops_; }

 private:
  Options opt_;
  sim::Rng rng_;
  std::deque<Packet> queue_;
  std::size_t bytes_{0};
  double avg_{0.0};
  std::uint64_t count_since_drop_{0};  ///< packets since last early drop (RED's `count`)
  std::uint64_t early_drops_{0};
  std::uint64_t forced_drops_{0};
};

}  // namespace rss::net
