#include "net/node.hpp"

#include <stdexcept>
#include <utility>

namespace rss::net {

Node::Node(sim::Simulation& simulation, std::uint32_t id, std::string name)
    : sim_{simulation}, id_{id}, name_{std::move(name)} {}

NetDevice& Node::add_device(DataRate rate, std::unique_ptr<PacketQueue> ifq,
                            std::string device_name) {
  if (device_name.empty()) device_name = name_ + "/eth" + std::to_string(devices_.size());
  auto dev = std::make_unique<NetDevice>(sim_, rate, std::move(ifq), std::move(device_name));
  dev->set_receive_callback(
      [this](const Packet& p, NetDevice& from) { on_receive(p, from); });
  devices_.push_back(std::move(dev));
  return *devices_.back();
}

void Node::set_route(std::uint32_t dst_node, std::size_t device_index) {
  if (device_index >= devices_.size()) throw std::out_of_range("Node::set_route: bad device");
  routes_[dst_node] = device_index;
}

void Node::set_default_route(std::size_t device_index) {
  if (device_index >= devices_.size())
    throw std::out_of_range("Node::set_default_route: bad device");
  default_route_ = device_index;
}

std::optional<std::size_t> Node::route(std::uint32_t dst_node) const {
  const auto it = routes_.find(dst_node);
  if (it == routes_.end()) return std::nullopt;
  return it->second;
}

void Node::register_flow_handler(std::uint32_t flow_id, FlowHandler handler) {
  if (!handler) throw std::invalid_argument("Node::register_flow_handler: null handler");
  if (!flow_handlers_.emplace(flow_id, std::move(handler)).second)
    throw std::logic_error("Node::register_flow_handler: duplicate flow handler");
}

NetDevice* Node::egress_for(std::uint32_t dst_node) {
  if (auto it = routes_.find(dst_node); it != routes_.end()) return devices_[it->second].get();
  if (default_route_) return devices_[*default_route_].get();
  return nullptr;
}

Node::SendResult Node::send(Packet p) {
  p.src_node = id_;
  NetDevice* egress = egress_for(p.dst_node);
  if (!egress) return SendResult::kNoRoute;
  return egress->send(p) == NetDevice::TxResult::kQueued ? SendResult::kSent
                                                         : SendResult::kStalled;
}

void Node::on_receive(const Packet& p, NetDevice& from) {
  if (p.dst_node == id_) {
    ++delivered_;
    if (auto it = flow_handlers_.find(p.flow_id); it != flow_handlers_.end()) {
      it->second(p);
    }
    return;
  }
  // Transit traffic: forward. Egress-queue overflow here is a network drop
  // (the router does not tell the sender), so the result is discarded after
  // counting.
  NetDevice* egress = egress_for(p.dst_node);
  if (!egress || egress == &from) {
    ++forward_drops_;
    return;
  }
  ++forwarded_;
  if (egress->send(p) == NetDevice::TxResult::kRejected) ++forward_drops_;
}

}  // namespace rss::net
