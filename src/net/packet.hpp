#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>

namespace rss::net {

/// One SACK block (RFC 2018): receiver-held bytes in [start, end) of
/// sequence space.
struct SackBlock {
  std::uint32_t start{0};
  std::uint32_t end{0};
};

/// TCP header fields the simulation models. Sequence/ack numbers are byte
/// offsets with 32-bit wraparound semantics (see tcp/sequence.hpp). Up to
/// three SACK blocks ride along when the receiver enables the option
/// (three, not four, because real stacks lose one slot to the timestamp
/// option — we model the common case).
struct TcpHeader {
  std::uint32_t seq{0};
  std::uint32_t ack{0};
  std::uint32_t advertised_window{0};  ///< receiver window in bytes
  bool syn{false};
  bool fin{false};
  bool is_ack{false};
  /// ECN-Echo (RFC 3168): the receiver repeats the congestion signal back
  /// to the sender. Our receivers run the DCTCP echo discipline (RFC 8257
  /// §3.2) — every ACK carries the CE state of the data it acknowledges —
  /// which degrades gracefully to classic one-bit feedback for Reno-style
  /// senders.
  bool ece{false};
  std::uint8_t sack_count{0};  ///< 0..3 valid entries in `sack`
  std::array<SackBlock, 3> sack{};
};

/// Simulation packet: headers plus an on-wire size. No payload bytes are
/// carried — the simulation only needs their count (standard simulator
/// economy; ns-2 does the same for FullTcp-less agents).
struct Packet {
  std::uint64_t uid{0};        ///< globally unique, for tracing
  std::uint32_t flow_id{0};    ///< demultiplexing key (connection id)
  std::uint32_t src_node{0};
  std::uint32_t dst_node{0};
  std::uint32_t payload_bytes{0};
  std::uint32_t header_bytes{40};  ///< IP(20) + TCP(20), options ignored
  /// ECN-Capable Transport (RFC 3168 ECT codepoint): set by senders whose
  /// flow negotiated ECN; queues may then CE-mark instead of dropping.
  bool ect{false};
  /// Congestion Experienced: stamped by an AQM queue on an ECT packet in
  /// place of a drop. Echoed back to the sender via TcpHeader::ece.
  bool ce{false};
  TcpHeader tcp{};

  [[nodiscard]] std::uint32_t size_bytes() const { return payload_bytes + header_bytes; }
  [[nodiscard]] bool is_data() const { return payload_bytes > 0; }
  [[nodiscard]] bool is_pure_ack() const { return payload_bytes == 0 && tcp.is_ack; }
};

/// Monotone packet uid source (one per simulation; not thread-shared).
class PacketUidSource {
 public:
  std::uint64_t next() { return ++last_; }

 private:
  std::uint64_t last_{0};
};

std::ostream& operator<<(std::ostream& os, const Packet& p);

}  // namespace rss::net
