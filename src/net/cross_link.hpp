#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/link.hpp"
#include "net/packet.hpp"
#include "sim/partition.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace rss::net {

/// A point-to-point link whose endpoints live in different partitions of a
/// PartitionedEngine. Instead of scheduling the delivery directly (the
/// peer's scheduler belongs to another thread mid-window), transmit_from
/// stages the packet into the engine's HandoffChannel for this direction;
/// the engine's drain phase then parks the packet in a destination-side
/// arena and schedules the delivery on the destination partition's
/// scheduler. Conservative lookahead guarantees the delivery time is
/// beyond the current window, so staging never reorders anything.
///
/// Devices and experiments see the ordinary PointToPointLink surface.
/// Loss and jitter are unsupported across partitions (both draw from an
/// RNG at transmit time, which would make the draw order depend on thread
/// scheduling); set_loss_rate/set_jitter throw. Put lossy links inside a
/// partition.
class CrossPartitionLink final : public PointToPointLink {
 public:
  /// `sim_a`/`sim_b` are the partitions of the two endpoints passed to
  /// attach() (in the same order); `a_to_b`/`b_to_a` the engine channels
  /// for the two directions. `delay` must be >= 1ns — it is (part of) the
  /// lookahead bound, and ScenarioBuilder validates the cut accordingly.
  CrossPartitionLink(sim::Simulation& sim_a, sim::Simulation& sim_b, sim::Time delay,
                     sim::HandoffChannel& a_to_b, sim::HandoffChannel& b_to_a);

  void transmit_from(const NetDevice& sender, const Packet& p) override;
  [[noreturn]] void set_loss_rate(double p, sim::Rng rng) override;
  [[noreturn]] void set_jitter(sim::Time max_jitter, sim::Rng rng) override;

  /// Stats are summed over both directions; read them between runs (the
  /// counters live on two different partition threads during a window).
  [[nodiscard]] std::uint64_t packets_delivered() const override;
  [[nodiscard]] std::uint64_t packets_lost() const override { return 0; }

 private:
  /// Destination-side state: touched only by the destination partition's
  /// worker (engine drain phase + delivery events), so it needs no
  /// synchronization. The arena parks packets between drain and delivery,
  /// keeping the delivery closure within the inline-callback budget.
  struct Endpoint {
    sim::Simulation* sim{nullptr};
    CrossPartitionLink* link{nullptr};
    bool toward_b{false};  ///< deliver to end_b_ (a->b direction)?
    std::vector<Packet> arena;
    std::vector<std::uint32_t> free_slots;
    std::uint64_t delivered{0};
  };

  /// One transmit direction: source-side channel plus destination-side
  /// endpoint.
  struct Direction {
    sim::Simulation* src_sim{nullptr};
    sim::HandoffChannel* channel{nullptr};
    Endpoint endpoint;
  };

  /// sim::HandoffDeliverFn invoked by the engine's drain phase on the
  /// destination partition's thread.
  static void deliver_staged(void* endpoint, const std::byte* payload, sim::Time deliver_at,
                             sim::Time staged_at, std::uint32_t origin, std::uint64_t rank);

  Direction a_to_b_;
  Direction b_to_a_;
};

}  // namespace rss::net
