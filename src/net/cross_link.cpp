#include "net/cross_link.hpp"

#include <cstring>
#include <stdexcept>

#include "net/device.hpp"

namespace rss::net {

CrossPartitionLink::CrossPartitionLink(sim::Simulation& sim_a, sim::Simulation& sim_b,
                                       sim::Time delay, sim::HandoffChannel& a_to_b,
                                       sim::HandoffChannel& b_to_a)
    : PointToPointLink(sim_a, delay) {
  if (delay < sim::Time::nanoseconds(1))
    throw std::invalid_argument(
        "CrossPartitionLink: a cross-partition link needs nonzero latency (it bounds the "
        "conservative lookahead window)");
  a_to_b_.src_sim = &sim_a;
  a_to_b_.channel = &a_to_b;
  a_to_b_.endpoint.sim = &sim_b;
  a_to_b_.endpoint.link = this;
  a_to_b_.endpoint.toward_b = true;
  b_to_a_.src_sim = &sim_b;
  b_to_a_.channel = &b_to_a;
  b_to_a_.endpoint.sim = &sim_a;
  b_to_a_.endpoint.link = this;
  b_to_a_.endpoint.toward_b = false;
}

void CrossPartitionLink::transmit_from(const NetDevice& sender, const Packet& p) {
  if (!end_a_ || !end_b_) throw std::logic_error("CrossPartitionLink: not attached");
  if (&sender != end_a_ && &sender != end_b_)
    throw std::logic_error("CrossPartitionLink: transmit from non-endpoint");
  Direction& dir = (&sender == end_a_) ? a_to_b_ : b_to_a_;
  const sim::Time staged_at = dir.src_sim->now();
  const sim::Time deliver_at = staged_at + delay();
  // The tie-break rank is drawn from the *source* scheduler's counter for
  // the sending node at transmit time — exactly the rank a single shared
  // scheduler would have assigned this delivery — and travels with the
  // payload so the drain can arm it unchanged on the destination.
  const std::uint32_t origin = sender.event_origin();
  const std::uint64_t rank = dir.src_sim->scheduler().draw_rank(origin);
  dir.channel->stage(deliver_at, staged_at, origin, rank, &dir.endpoint,
                     &CrossPartitionLink::deliver_staged, p);
}

void CrossPartitionLink::set_loss_rate(double, sim::Rng) {
  throw std::logic_error(
      "CrossPartitionLink: loss is unsupported across partitions (the per-packet RNG draw "
      "order would depend on thread timing); keep lossy links inside one partition");
}

void CrossPartitionLink::set_jitter(sim::Time, sim::Rng) {
  throw std::logic_error(
      "CrossPartitionLink: jitter is unsupported across partitions (it would shrink the "
      "lookahead bound and randomize the draw order); keep jittery links inside one "
      "partition");
}

std::uint64_t CrossPartitionLink::packets_delivered() const {
  return a_to_b_.endpoint.delivered + b_to_a_.endpoint.delivered;
}

void CrossPartitionLink::deliver_staged(void* endpoint, const std::byte* payload,
                                        sim::Time deliver_at, sim::Time staged_at,
                                        std::uint32_t origin, std::uint64_t rank) {
  auto* ep = static_cast<Endpoint*>(endpoint);
  std::uint32_t slot;
  if (ep->free_slots.empty()) {
    slot = static_cast<std::uint32_t>(ep->arena.size());
    ep->arena.emplace_back();
  } else {
    slot = ep->free_slots.back();
    ep->free_slots.pop_back();
  }
  std::memcpy(&ep->arena[slot], payload, sizeof(Packet));
  const auto deliver = [ep, slot] {
    // Copy out before releasing: deliver_up can cascade into another
    // transmit whose drain later claims the freed slot.
    const Packet arrived = ep->arena[slot];
    ep->free_slots.push_back(slot);
    ++ep->delivered;
    NetDevice* dev = ep->toward_b ? ep->link->end_b_ : ep->link->end_a_;
    dev->deliver_up(arrived);
  };
  static_assert(sizeof(deliver) <= sim::InlineCallback::kCapacity,
                "cross-partition delivery callback must stay inline");
  // staged_at (the source's transmit clock) becomes the birth time and the
  // staged (origin, rank) pair the intrinsic tie-break: a same-timestamp
  // race between this delivery and any other event then resolves exactly
  // as it would in a single-scheduler run, regardless of drain order.
  ep->sim->at_imported(origin, rank, staged_at, deliver_at, deliver);
}

}  // namespace rss::net
