#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/data_rate.hpp"
#include "net/queue.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace rss::net {

class NetDevice;

/// Parameters of one fluid traffic aggregate. A fluid flow replaces a
/// packet-level cross-traffic sender with a rate ODE: the rate follows a
/// TCP-friendly AIMD trajectory (additive increase of one packet per RTT
/// per RTT, multiplicative decrease on a loss signal from a coupled queue)
/// and its arrivals are folded into bottleneck queues as a virtual backlog
/// once per integration stride.
struct FluidOptions {
  /// Rate at flow start. Defaults to a modest share so the AIMD ramp, not
  /// an instantaneous burst, fills the bottleneck — mirroring slow-start's
  /// effect at the coarse timescale fluid models.
  DataRate initial_rate{DataRate::mbps(10)};
  /// Hard rate cap. Zero means "no explicit cap"; the builder caps it at
  /// the minimum line rate along the flow's route.
  DataRate peak_rate{};
  /// Integration stride of the forward-Euler tick. Smaller strides track
  /// queue dynamics more faithfully at proportionally more events.
  sim::Time stride{sim::Time::milliseconds(1)};
  /// Packet size the aggregate emulates; sets the additive-increase slope
  /// and the virtual-backlog packetization.
  std::uint32_t packet_bytes{1500};
  /// Round-trip time of the emulated aggregate; sets the AIMD timescale
  /// and the loss-reaction epoch (at most one decrease per RTT). Zero
  /// means "derive": ScenarioBuilder fills in twice the route's one-way
  /// propagation delay. FluidSource itself requires a positive value.
  sim::Time rtt{sim::Time::zero()};
  /// Multiplicative decrease factor applied on a loss epoch (Reno: 0.5).
  double decrease{0.5};

  friend bool operator==(const FluidOptions&, const FluidOptions&) = default;
};

/// One fluid aggregate: a rate state variable advanced by the FluidDriver
/// in three phases per stride (offer, couple, adapt). Not scheduled on its
/// own — couplings read `rate_bps()` and report losses; the driver calls
/// `begin_interval`/`end_interval` around the coupling sweep so every
/// coupling in a tick sees the same pre-update rates regardless of
/// registration order.
class FluidSource {
 public:
  FluidSource(FluidOptions opt, std::string name);

  /// Open the tap: the rate jumps to `initial_rate` and integration begins
  /// at the next driver tick. Idempotent.
  void start();
  [[nodiscard]] bool started() const { return started_; }

  /// Current offered rate in bits per second (0 before start()).
  [[nodiscard]] double rate_bps() const { return started_ ? rate_bps_ : 0.0; }

  /// Phase 1 of a driver tick: accumulate this interval's offered bytes.
  void begin_interval(double dt);

  /// Called by a coupling (phase 2) when the aggregate's share of a queue
  /// overflowed. At most one multiplicative decrease is applied per RTT
  /// epoch, matching one-halving-per-window TCP behaviour. Returns whether
  /// the signal was accepted (false while closed or inside the epoch).
  bool note_loss(sim::Time now);

  /// Bytes of this aggregate a coupling had to shed (queue overflow).
  void add_dropped_bytes(double bytes) { dropped_bytes_ += bytes; }

  /// Phase 3 of a driver tick: apply the AIMD update for the interval.
  void end_interval(sim::Time now, double dt);

  [[nodiscard]] double offered_bytes() const { return offered_bytes_; }
  [[nodiscard]] double dropped_bytes() const { return dropped_bytes_; }
  [[nodiscard]] const FluidOptions& options() const { return opt_; }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  [[nodiscard]] double min_rate_bps() const;
  [[nodiscard]] double peak_rate_bps() const;

  FluidOptions opt_;
  std::string name_;
  double rate_bps_{0.0};
  double offered_bytes_{0.0};
  double dropped_bytes_{0.0};
  sim::Time next_decrease_at_{sim::Time::zero()};
  bool pending_decrease_{false};
  bool slow_start_{true};  ///< exponential ramp until the first loss
  bool started_{false};
};

/// Accounting endpoint of a fluid aggregate. Deliberately thin: fluid bytes
/// that were offered and not shed at a coupled queue are delivered, so the
/// sink derives goodput from the source's ledger the same way TcpSender's
/// goodput derives from cumulative acked bytes.
class FluidSink {
 public:
  explicit FluidSink(const FluidSource& source) : source_{&source} {}

  [[nodiscard]] double delivered_bytes() const {
    return source_->offered_bytes() - source_->dropped_bytes();
  }

  /// Cumulative delivered bytes expressed over [t0, t1], mirroring
  /// TcpSender::goodput_mbps semantics.
  [[nodiscard]] double goodput_mbps(sim::Time t0, sim::Time t1) const;

 private:
  const FluidSource* source_;
};

/// Couples the fluid aggregates crossing one NetDevice to its packet
/// queue. Each stride it plays a proportional-share FIFO interval game:
/// fluid demand (carried backlog + this interval's arrivals) and packet
/// demand (carried queue bytes + this interval's enqueues) split the line's
/// byte capacity pro rata; the unserved fluid remainder becomes the
/// queue's virtual backlog (and, beyond the queue's free room, loss signals
/// back to the sources), and the served share stretches the device's packet
/// serialization slots.
class FluidQueueCoupling {
 public:
  explicit FluidQueueCoupling(NetDevice& device);

  /// Build-time registration (allocates; the step path does not).
  void add_source(FluidSource* source);

  /// Advance the coupling by one stride. Reads pre-update source rates, so
  /// the driver must call this between begin_interval and end_interval.
  void step(sim::Time now, double dt);

  [[nodiscard]] double backlog_bytes() const { return backlog_bytes_; }
  [[nodiscard]] NetDevice& device() const { return *device_; }
  [[nodiscard]] std::size_t source_count() const { return sources_.size(); }

 private:
  NetDevice* device_;
  std::vector<FluidSource*> sources_;
  double backlog_bytes_{0.0};
  /// Snapshot of (bytes_enqueued + bytes_dropped) at the previous step, so
  /// the interval's packet demand is a counter delta, not a queue poke.
  std::uint64_t prev_pkt_bytes_counter_{0};
  /// Real queued bytes at the end of the previous step (carried demand).
  std::uint64_t prev_queue_bytes_{0};
  std::uint32_t packet_bytes_{1500};
};

/// Per-partition coordinator: one self-rescheduling tick advances every
/// fluid source and coupling in its partition in three deterministic,
/// registration-order-independent phases. All fluid events live on the
/// partition's own scheduler and never cross a HandoffChannel, so the
/// conservative-lookahead window is unaffected by fluidization.
class FluidDriver {
 public:
  FluidDriver(sim::Simulation& simulation, sim::Time stride);

  /// Build-time registration (allocates; the tick path does not).
  void add_source(FluidSource* source);
  void add_coupling(FluidQueueCoupling* coupling);

  /// Arm the first tick. Call once after registration; the tick then
  /// re-arms itself every stride for the lifetime of the run.
  void start();

  [[nodiscard]] sim::Time stride() const { return stride_; }

 private:
  void tick();

  sim::Simulation& sim_;
  sim::Time stride_;
  std::vector<FluidSource*> sources_;
  std::vector<FluidQueueCoupling*> couplings_;
  bool armed_{false};
};

}  // namespace rss::net
