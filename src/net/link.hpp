#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace rss::net {

class NetDevice;

/// Full-duplex point-to-point wire: pure propagation delay between two
/// NetDevices (serialization happens in the devices, which own the rate).
/// An optional Bernoulli loss model supports robustness experiments —
/// every loss is counted so tests can assert on it.
///
/// The transmit/config entry points are virtual so a link can span two
/// partitions (CrossPartitionLink stages deliveries through the partition
/// engine instead of scheduling directly); devices and experiments keep
/// talking to the concrete PointToPointLink surface either way.
class PointToPointLink {
 public:
  PointToPointLink(sim::Simulation& simulation, sim::Time propagation_delay);
  virtual ~PointToPointLink() = default;

  PointToPointLink(const PointToPointLink&) = delete;
  PointToPointLink& operator=(const PointToPointLink&) = delete;

  /// Wire both endpoints. Must be called exactly once before traffic flows.
  void attach(NetDevice& a, NetDevice& b);

  /// Called by an endpoint device when a packet finishes serialization.
  virtual void transmit_from(const NetDevice& sender, const Packet& p);

  /// Enable random loss with probability `p` per packet (0 disables).
  virtual void set_loss_rate(double p, sim::Rng rng);

  /// Add uniform random extra propagation delay in [0, max_jitter] per
  /// packet. Note this deliberately permits reordering (a packet with less
  /// jitter can overtake an earlier one) — that is the point: it exercises
  /// the receiver's out-of-order reassembly and the sender's dupack logic
  /// with realistic WAN pathologies.
  virtual void set_jitter(sim::Time max_jitter, sim::Rng rng);

  [[nodiscard]] sim::Time delay() const { return delay_; }
  [[nodiscard]] virtual std::uint64_t packets_delivered() const { return delivered_; }
  [[nodiscard]] virtual std::uint64_t packets_lost() const { return lost_; }

 protected:
  sim::Simulation& sim_;
  sim::Time delay_;
  NetDevice* end_a_{nullptr};
  NetDevice* end_b_{nullptr};

 private:
  double loss_rate_{0.0};
  sim::Rng loss_rng_{};
  sim::Time max_jitter_{sim::Time::zero()};
  sim::Rng jitter_rng_{};
  std::uint64_t delivered_{0};
  std::uint64_t lost_{0};
  /// Packets on the wire, indexed by the slot captured in the delivery
  /// closure. Parking the payload here keeps the closure at three words —
  /// inside the scheduler's inline-callback budget — and the free list
  /// makes steady-state transmission allocation-free. A plain FIFO would
  /// not do: jitter deliberately permits reordering, so deliveries can
  /// complete out of order.
  std::vector<Packet> in_flight_;
  std::vector<std::uint32_t> free_in_flight_;
};

}  // namespace rss::net
