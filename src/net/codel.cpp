#include "net/codel.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/simulation.hpp"

namespace rss::net {

CodelQueue::CodelQueue(Options opt, const sim::Simulation& sim) : opt_{opt}, sim_{sim} {
  if (opt_.capacity_packets == 0) throw std::invalid_argument("CodelQueue: zero capacity");
  if (opt_.target <= sim::Time::zero())
    throw std::invalid_argument("CodelQueue: target must be > 0");
  if (opt_.interval <= sim::Time::zero())
    throw std::invalid_argument("CodelQueue: interval must be > 0");
}

bool CodelQueue::enqueue(const Packet& p) {
  if (queue_.size() + virtual_packets_ >= opt_.capacity_packets) {
    ++stats_.dropped;
    stats_.bytes_dropped += p.size_bytes();
    ++tail_drops_;
    return false;
  }
  Packet admitted = p;
  maybe_step_mark(admitted, queue_.size() + virtual_packets_);
  queue_.push_back(Entry{admitted, sim_.now()});
  bytes_ += admitted.size_bytes();
  ++stats_.enqueued;
  stats_.bytes_enqueued += admitted.size_bytes();
  stats_.peak_packets = std::max(stats_.peak_packets, queue_.size());
  return true;
}

sim::Time CodelQueue::control_law(sim::Time t) const {
  // Next drop in interval / sqrt(count): drop frequency grows until the
  // standing delay falls below target.
  const double ns = static_cast<double>(opt_.interval.nanoseconds_count()) /
                    std::sqrt(static_cast<double>(std::max<std::uint32_t>(count_, 1)));
  return t + sim::Time::nanoseconds(static_cast<std::int64_t>(std::llround(ns)));
}

std::optional<CodelQueue::Popped> CodelQueue::pop_head(sim::Time now) {
  if (queue_.empty()) {
    first_above_time_ = sim::Time::zero();
    return std::nullopt;
  }
  Popped out{queue_.front(), false};
  queue_.pop_front();
  bytes_ -= out.entry.packet.size_bytes();

  const sim::Time sojourn = now - out.entry.enqueued_at;
  // "Below one MTU" exit: with a single packet left (or none) there is no
  // standing queue to control. This also guarantees the last packet is
  // delivered, never shed (device contract — see the class comment).
  if (sojourn < opt_.target || queue_.empty()) {
    first_above_time_ = sim::Time::zero();
  } else {
    if (first_above_time_ == sim::Time::zero()) {
      first_above_time_ = now + opt_.interval;
    } else if (now >= first_above_time_) {
      out.ok_to_drop = true;
    }
  }
  return out;
}

std::optional<Packet> CodelQueue::dequeue() {
  const sim::Time now = sim_.now();
  std::optional<Popped> head = pop_head(now);
  if (!head) {
    dropping_ = false;
    return std::nullopt;
  }

  auto shed = [this](Entry& e) -> bool {
    // Returns true when the packet was CE-marked (and must be delivered)
    // rather than dropped.
    ++law_drops_;
    if (e.packet.ect && !e.packet.ce) {
      e.packet.ce = true;
      ++stats_.ce_marked;
      return true;
    }
    ++stats_.dropped;
    stats_.bytes_dropped += e.packet.size_bytes();
    return false;
  };

  if (dropping_) {
    if (!head->ok_to_drop) {
      dropping_ = false;
    } else {
      while (dropping_ && now >= drop_next_) {
        ++count_;
        if (shed(head->entry)) {
          // Marked, not dropped: the packet leaves normally; pace the next
          // action with the control law.
          drop_next_ = control_law(drop_next_);
          break;
        }
        head = pop_head(now);
        if (!head) {
          dropping_ = false;
          return std::nullopt;
        }
        if (!head->ok_to_drop) {
          dropping_ = false;
        } else {
          drop_next_ = control_law(drop_next_);
        }
      }
    }
  } else if (head->ok_to_drop) {
    // Enter the dropping state. If the previous episode ended recently,
    // resume near the old drop rate instead of restarting at 1 (RFC 8289
    // §5.4 — this is what makes CoDel converge on persistent overload).
    const bool deliver = shed(head->entry);
    if (!deliver) {
      head = pop_head(now);
      if (!head) {
        dropping_ = false;
        return std::nullopt;
      }
    }
    dropping_ = true;
    const std::uint32_t delta = count_ - last_count_;
    if (delta > 1 && now - drop_next_ < opt_.interval * 16) {
      count_ = delta;
    } else {
      count_ = 1;
    }
    last_count_ = count_;
    drop_next_ = control_law(now);
  }

  ++stats_.dequeued;
  return head->entry.packet;
}

}  // namespace rss::net
