#include "net/device.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "net/link.hpp"

namespace rss::net {

NetDevice::NetDevice(sim::Simulation& simulation, DataRate rate,
                     std::unique_ptr<PacketQueue> ifq, std::string name)
    : sim_{simulation}, rate_{rate}, ifq_{std::move(ifq)}, name_{std::move(name)} {
  if (!ifq_) throw std::invalid_argument("NetDevice: null IFQ");
  if (rate_.bits_per_second() == 0) throw std::invalid_argument("NetDevice: zero rate");
}

NetDevice::TxResult NetDevice::send(const Packet& p) {
  if (!ifq_->enqueue(p)) {
    ++stats_.send_stalls;
    if (stall_cb_) stall_cb_(p);
    return TxResult::kRejected;
  }
  try_start_tx();
  return TxResult::kQueued;
}

void NetDevice::try_start_tx() {
  if (busy_) return;
  // Back-to-back equal-size packets (line-rate bursts: MSS data segments
  // one way, 40-byte ACKs the other) serialize one slot apart, so the whole
  // run is armed as a single batched event train — one queue entry and one
  // callback instead of one heap push per packet. Packets still leave the
  // IFQ one at a time at their serialization start, so queue occupancy (the
  // PID process variable and RED's input) is identical to the chained form.
  // Under a fluid share the slot length depends on the share at arming
  // time, which the coupling may change between any two completions — so
  // trains are disabled (run of one) and every slot is stretched to the
  // residual rate (1 − share).
  const std::size_t run = ifq_->equal_size_run(fluid_share_ > 0.0 ? 1 : kMaxTxTrain);
  if (run == 0) return;
  busy_ = true;
  serializing_ = *ifq_->dequeue();
  train_left_ = run;
  sim::Time slot = rate_.transmission_time(serializing_.size_bytes());
  if (fluid_share_ > 0.0) {
    const double stretched =
        std::ceil(static_cast<double>(slot.nanoseconds_count()) / (1.0 - fluid_share_));
    slot = sim::Time::nanoseconds(static_cast<std::int64_t>(stretched));
  }
  const auto fire = [this] { complete_tx(); };
  static_assert(sizeof(fire) <= sim::InlineCallback::kCapacity,
                "serialization callback must stay inline on the scheduler hot path");
  sim_.train(sim_.now() + slot, slot, run, fire);
}

void NetDevice::complete_tx() {
  const Packet p = serializing_;
  ++stats_.tx_packets;
  stats_.tx_bytes += p.size_bytes();
  --train_left_;
  if (train_left_ > 0) {
    // Train continues: the next equal-size packet starts serializing now.
    // The head run was counted when the train was armed and nothing else
    // dequeues, so this packet is guaranteed present and same-sized.
    serializing_ = *ifq_->dequeue();
    if (link_) link_->transmit_from(*this, p);
    return;
  }
  busy_ = false;
  if (link_) link_->transmit_from(*this, p);
  try_start_tx();
}

void NetDevice::set_fluid_share(double share) {
  // Clamp below 1 so the stretched serialization slot stays finite even
  // when the fluid aggregate momentarily claims the whole line.
  fluid_share_ = std::clamp(share, 0.0, 0.98);
}

void NetDevice::deliver_up(const Packet& p) {
  ++stats_.rx_packets;
  stats_.rx_bytes += p.size_bytes();
  if (rx_cb_) rx_cb_(p, *this);
}

}  // namespace rss::net
