#include "net/device.hpp"

#include <stdexcept>
#include <utility>

#include "net/link.hpp"

namespace rss::net {

NetDevice::NetDevice(sim::Simulation& simulation, DataRate rate,
                     std::unique_ptr<PacketQueue> ifq, std::string name)
    : sim_{simulation}, rate_{rate}, ifq_{std::move(ifq)}, name_{std::move(name)} {
  if (!ifq_) throw std::invalid_argument("NetDevice: null IFQ");
  if (rate_.bits_per_second() == 0) throw std::invalid_argument("NetDevice: zero rate");
}

NetDevice::TxResult NetDevice::send(const Packet& p) {
  if (!ifq_->enqueue(p)) {
    ++stats_.send_stalls;
    if (stall_cb_) stall_cb_(p);
    return TxResult::kRejected;
  }
  try_start_tx();
  return TxResult::kQueued;
}

void NetDevice::try_start_tx() {
  if (busy_) return;
  // Back-to-back equal-size packets (line-rate bursts: MSS data segments
  // one way, 40-byte ACKs the other) serialize one slot apart, so the whole
  // run is armed as a single batched event train — one queue entry and one
  // callback instead of one heap push per packet. Packets still leave the
  // IFQ one at a time at their serialization start, so queue occupancy (the
  // PID process variable and RED's input) is identical to the chained form.
  const std::size_t run = ifq_->equal_size_run(kMaxTxTrain);
  if (run == 0) return;
  busy_ = true;
  serializing_ = *ifq_->dequeue();
  train_left_ = run;
  const sim::Time slot = rate_.transmission_time(serializing_.size_bytes());
  const auto fire = [this] { complete_tx(); };
  static_assert(sizeof(fire) <= sim::InlineCallback::kCapacity,
                "serialization callback must stay inline on the scheduler hot path");
  sim_.train(sim_.now() + slot, slot, run, fire);
}

void NetDevice::complete_tx() {
  const Packet p = serializing_;
  ++stats_.tx_packets;
  stats_.tx_bytes += p.size_bytes();
  --train_left_;
  if (train_left_ > 0) {
    // Train continues: the next equal-size packet starts serializing now.
    // The head run was counted when the train was armed and nothing else
    // dequeues, so this packet is guaranteed present and same-sized.
    serializing_ = *ifq_->dequeue();
    if (link_) link_->transmit_from(*this, p);
    return;
  }
  busy_ = false;
  if (link_) link_->transmit_from(*this, p);
  try_start_tx();
}

void NetDevice::deliver_up(const Packet& p) {
  ++stats_.rx_packets;
  stats_.rx_bytes += p.size_bytes();
  if (rx_cb_) rx_cb_(p, *this);
}

}  // namespace rss::net
