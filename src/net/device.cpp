#include "net/device.hpp"

#include <stdexcept>
#include <utility>

#include "net/link.hpp"

namespace rss::net {

NetDevice::NetDevice(sim::Simulation& simulation, DataRate rate,
                     std::unique_ptr<PacketQueue> ifq, std::string name)
    : sim_{simulation}, rate_{rate}, ifq_{std::move(ifq)}, name_{std::move(name)} {
  if (!ifq_) throw std::invalid_argument("NetDevice: null IFQ");
  if (rate_.bits_per_second() == 0) throw std::invalid_argument("NetDevice: zero rate");
}

NetDevice::TxResult NetDevice::send(const Packet& p) {
  if (!ifq_->enqueue(p)) {
    ++stats_.send_stalls;
    if (stall_cb_) stall_cb_(p);
    return TxResult::kRejected;
  }
  try_start_tx();
  return TxResult::kQueued;
}

void NetDevice::try_start_tx() {
  if (busy_) return;
  auto next = ifq_->dequeue();
  if (!next) return;
  busy_ = true;
  const Packet p = *next;
  sim_.in(rate_.transmission_time(p.size_bytes()), [this, p] { complete_tx(p); });
}

void NetDevice::complete_tx(const Packet& p) {
  ++stats_.tx_packets;
  stats_.tx_bytes += p.size_bytes();
  busy_ = false;
  if (link_) link_->transmit_from(*this, p);
  try_start_tx();
}

void NetDevice::deliver_up(const Packet& p) {
  ++stats_.rx_packets;
  stats_.rx_bytes += p.size_bytes();
  if (rx_cb_) rx_cb_(p, *this);
}

}  // namespace rss::net
