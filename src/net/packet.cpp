#include "net/packet.hpp"

#include <ostream>

namespace rss::net {

std::ostream& operator<<(std::ostream& os, const Packet& p) {
  os << "pkt#" << p.uid << " flow=" << p.flow_id << " " << p.src_node << "->" << p.dst_node
     << " len=" << p.size_bytes();
  if (p.tcp.syn) os << " SYN";
  if (p.tcp.fin) os << " FIN";
  if (p.tcp.is_ack) os << " ACK=" << p.tcp.ack;
  if (p.is_data()) os << " seq=" << p.tcp.seq << "+" << p.payload_bytes;
  return os;
}

}  // namespace rss::net
