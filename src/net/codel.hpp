#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>

#include "net/queue.hpp"
#include "sim/time.hpp"

namespace rss::sim {
class Simulation;
}  // namespace rss::sim

namespace rss::net {

/// CoDel — Controlled Delay AQM (Nichols & Jacobson, RFC 8289). Unlike
/// RED, which reacts to queue *length*, CoDel tracks per-packet sojourn
/// time: when the standing delay stays above `target` for a full
/// `interval`, it enters a dropping state and sheds head packets at a
/// rate that grows with the square root of the drop count (the control
/// law), draining the standing queue while letting bursts through.
///
/// ECN: when the control law elects a packet and that packet is ECT, it
/// is CE-marked and delivered instead of dropped (RFC 8289 §4.1).
///
/// Two deliberate deviations, both for the owning NetDevice's contract:
///  - equal_size_run() is NOT overridden (a run of one): head drops at
///    dequeue may shorten the queue mid-burst, so batched serialization
///    trains would overrun. The conservative default keeps the device
///    correct, just train-less.
///  - the last remaining packet is never dropped at dequeue — a non-empty
///    queue always yields a packet, which the device's transmit path
///    relies on. CoDel's own "queue below one MTU exits the dropping
///    state" rule makes this nearly a no-op in practice.
///
/// The fluid virtual backlog counts toward admission capacity (like the
/// other disciplines) but not toward sojourn — fluid bytes carry no
/// timestamps, so CoDel's delay law sees only real packets.
class CodelQueue final : public PacketQueue {
 public:
  struct Options {
    std::size_t capacity_packets{100};
    sim::Time target{sim::Time::milliseconds(5)};     ///< acceptable standing delay
    sim::Time interval{sim::Time::milliseconds(100)}; ///< sliding window (~worst RTT)
  };

  CodelQueue(Options opt, const sim::Simulation& sim);

  [[nodiscard]] bool enqueue(const Packet& p) override;
  [[nodiscard]] std::optional<Packet> dequeue() override;
  [[nodiscard]] std::size_t size_packets() const override { return queue_.size(); }
  [[nodiscard]] std::size_t size_bytes() const override { return bytes_; }
  [[nodiscard]] std::size_t capacity_packets() const override { return opt_.capacity_packets; }

  /// Packets shed (or CE-marked) by the delay control law, as opposed to
  /// tail drops at hard capacity.
  [[nodiscard]] std::uint64_t law_drops() const { return law_drops_; }
  [[nodiscard]] std::uint64_t tail_drops() const { return tail_drops_; }
  [[nodiscard]] const Options& options() const { return opt_; }

 private:
  struct Entry {
    Packet packet;
    sim::Time enqueued_at;
  };

  /// Pop the head and decide whether the control law may act on it.
  struct Popped {
    Entry entry;
    bool ok_to_drop{false};
  };
  [[nodiscard]] std::optional<Popped> pop_head(sim::Time now);
  [[nodiscard]] sim::Time control_law(sim::Time t) const;

  Options opt_;
  const sim::Simulation& sim_;
  std::deque<Entry> queue_;
  std::size_t bytes_{0};
  bool dropping_{false};
  sim::Time first_above_time_{sim::Time::zero()};
  sim::Time drop_next_{sim::Time::zero()};
  std::uint32_t count_{0};
  std::uint32_t last_count_{0};
  std::uint64_t law_drops_{0};
  std::uint64_t tail_drops_{0};
};

}  // namespace rss::net
