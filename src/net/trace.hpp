#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/device.hpp"
#include "net/packet.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace rss::net {

/// One traced packet event, ns-2 trace-file style.
struct TraceEvent {
  enum class Kind { kEnqueue, kDequeueTx, kReceive, kDrop };
  sim::Time t;
  Kind kind;
  std::uint64_t packet_uid;
  std::uint32_t flow_id;
  std::uint32_t src_node;
  std::uint32_t dst_node;
  std::uint32_t size_bytes;
  std::string device;
};

/// Packet trace recorder: attach to devices and it logs tx/rx/drop events
/// into memory for assertions (tests) or export (debugging). The moral
/// equivalent of `tcpdump` on the paper's testbed.
///
/// Attachment is non-invasive: the tracer chains onto the device's
/// receive/stall callbacks (preserving any existing ones) and polls tx
/// counters per event via wrappers; enqueue/dequeue granularity inside the
/// IFQ is not observable without invading NetDevice, so tx is recorded at
/// receive-on-the-peer and drop at stall time. That is sufficient for flow
/// accounting.
class PacketTracer {
 public:
  explicit PacketTracer(std::size_t capacity_hint = 4096) { events_.reserve(capacity_hint); }

  /// Trace packets delivered up by `device` (receive path) and local
  /// send-stall drops at `device`. Must be called before other parties
  /// replace the callbacks; existing callbacks are preserved and invoked.
  void attach(NetDevice& device);

  [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  /// Count of events matching a predicate.
  [[nodiscard]] std::size_t count(
      const std::function<bool(const TraceEvent&)>& pred) const;

  /// Events of one flow, in order.
  [[nodiscard]] std::vector<TraceEvent> for_flow(std::uint32_t flow_id) const;

  /// Write an ns-2-ish text trace ("r 1.2345 ...") to a stream.
  void dump(std::ostream& os) const;

 private:
  std::vector<TraceEvent> events_;
};

std::ostream& operator<<(std::ostream& os, const TraceEvent& e);

}  // namespace rss::net
