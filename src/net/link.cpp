#include "net/link.hpp"

#include <stdexcept>

#include "net/device.hpp"

namespace rss::net {

PointToPointLink::PointToPointLink(sim::Simulation& simulation, sim::Time propagation_delay)
    : sim_{simulation}, delay_{propagation_delay} {
  if (propagation_delay.is_negative())
    throw std::invalid_argument("PointToPointLink: negative delay");
}

void PointToPointLink::attach(NetDevice& a, NetDevice& b) {
  if (end_a_ || end_b_) throw std::logic_error("PointToPointLink: already attached");
  end_a_ = &a;
  end_b_ = &b;
  a.attach_link(this);
  b.attach_link(this);
}

void PointToPointLink::set_loss_rate(double p, sim::Rng rng) {
  if (p < 0.0 || p >= 1.0) throw std::invalid_argument("PointToPointLink: loss rate in [0,1)");
  loss_rate_ = p;
  loss_rng_ = rng;
}

void PointToPointLink::set_jitter(sim::Time max_jitter, sim::Rng rng) {
  if (max_jitter.is_negative())
    throw std::invalid_argument("PointToPointLink: negative jitter");
  max_jitter_ = max_jitter;
  jitter_rng_ = rng;
}

void PointToPointLink::transmit_from(const NetDevice& sender, const Packet& p) {
  if (!end_a_ || !end_b_) throw std::logic_error("PointToPointLink: not attached");
  NetDevice* peer = (&sender == end_a_) ? end_b_ : end_a_;
  if (&sender != end_a_ && &sender != end_b_)
    throw std::logic_error("PointToPointLink: transmit from non-endpoint");

  if (loss_rate_ > 0.0 && loss_rng_.next_bool(loss_rate_)) {
    ++lost_;
    return;
  }
  ++delivered_;
  sim::Time delay = delay_;
  if (max_jitter_ > sim::Time::zero()) {
    delay += max_jitter_ * jitter_rng_.next_double();
  }
  std::uint32_t slot;
  if (free_in_flight_.empty()) {
    slot = static_cast<std::uint32_t>(in_flight_.size());
    in_flight_.push_back(p);
  } else {
    slot = free_in_flight_.back();
    free_in_flight_.pop_back();
    in_flight_[slot] = p;
  }
  const auto deliver = [this, peer, slot] {
    // Copy out before releasing: deliver_up can cascade into another
    // transmit on this link, which may claim the freed slot immediately.
    const Packet arrived = in_flight_[slot];
    free_in_flight_.push_back(slot);
    peer->deliver_up(arrived);
  };
  static_assert(sizeof(deliver) <= sim::InlineCallback::kCapacity,
                "delivery callback must stay inline on the scheduler hot path");
  // Ranked by the sending device's origin so same-timestamp deliveries
  // order intrinsically (node, per-node rank) — the key a CrossPartitionLink
  // carries across partitions; both link kinds must draw from the same
  // per-origin counters for sequential/partitioned pop-order parity.
  sim_.in_ranked(sender.event_origin(), delay, deliver);
}

}  // namespace rss::net
