#pragma once

#include <string_view>

#include "tcp/reno.hpp"

namespace rss::tcp {

/// TCP Tahoe: the pre-Reno baseline — identical slow-start/congestion-
/// avoidance growth, but *every* loss indication (including the third
/// duplicate ACK) collapses the window to one segment and restarts
/// slow-start. Included as the historical floor for the comparison tables:
/// it makes the cost of slow-start restarts on a large-BDP path vivid.
class TahoeCongestionControl final : public RenoCongestionControl {
 public:
  TahoeCongestionControl() = default;
  explicit TahoeCongestionControl(Options opt) : RenoCongestionControl(opt) {}

  void on_fast_retransmit() override {
    // Tahoe has no fast recovery: halve ssthresh, drop to 1 MSS, slow-start
    // again (use_fast_recovery() = false keeps the sender from inflating).
    set_ssthresh_to_half_flight();
    host().set_cwnd_bytes(static_cast<double>(host().mss()));
  }

  [[nodiscard]] bool use_fast_recovery() const override { return false; }

  [[nodiscard]] std::string_view name() const override { return "tahoe"; }
};

}  // namespace rss::tcp
