#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "metrics/timeseries.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/simulation.hpp"
#include "tcp/congestion_control.hpp"
#include "tcp/rtt_estimator.hpp"
#include "tcp/sequence.hpp"
#include "web100/mib.hpp"

namespace rss::tcp {

/// One-way bulk TCP sender: the full sender-side state machine —
/// slow-start / congestion avoidance through a pluggable CongestionControl,
/// duplicate-ACK counting, NewReno fast retransmit / fast recovery, RFC
/// 6298 retransmission timer with Karn's rule and exponential backoff,
/// go-back-N on timeout, and the Linux-2.4-style send-stall path: a segment
/// rejected by the local interface queue is *not* counted in flight, the
/// stall is recorded in the Web100 MIB, and the congestion-control hook
/// fires (which is exactly the behaviour the paper sets out to fix).
///
/// Connection establishment is elided (the simulation starts connections
/// "established", as classic simulator TCP agents do); sequence numbers
/// still use full 32-bit modular arithmetic internally via 64-bit offsets
/// mapped onto SeqNum for the wire.
class TcpSender final : public CcHost {
 public:
  struct Options {
    std::uint32_t flow_id{1};
    std::uint32_t dst_node{0};
    std::uint32_t mss{1460};             ///< payload bytes per segment
    std::uint32_t initial_seq{0};
    std::uint64_t rwnd_limit_bytes{1u << 30};  ///< cap if receiver never advertises
    RttEstimator::Options rtt{};
    /// Retry delay after a send-stall when nothing is in flight to ACK-clock
    /// a retry (pure safety net; with data in flight ACKs drive retries).
    sim::Time stall_retry_delay{sim::Time::milliseconds(10)};
    /// Process RFC 2018 SACK blocks and run RFC 6675-style pipe-limited
    /// loss recovery instead of NewReno inflation. The peer receiver must
    /// have enable_sack set too (blocks are simply absent otherwise and
    /// recovery silently degrades to NewReno).
    bool enable_sack{false};
    /// RFC 2861 congestion-window validation: after an idle period the
    /// cwnd is halved once per RTO elapsed (floored at the initial
    /// window), because an old cwnd says nothing about current path state.
    /// Matters for on-off applications; harmless for bulk flows.
    bool cwnd_validation{false};
    bool trace_cwnd{false};   ///< record (t, cwnd) into cwnd_trace()
    bool trace_stalls{false}; ///< record (t, cumulative stalls) into stall_trace()
    /// Negotiate ECN (RFC 3168): data segments leave ECT-marked so AQM
    /// queues may CE-mark instead of dropping, and the receiver's ECN-Echo
    /// feeds CongestionControl::on_ecn_feedback on every new ACK. The peer
    /// receiver must have its ecn option set too.
    bool ecn{false};
  };

  /// `node` must outlive the sender. The sender registers itself as the
  /// flow handler for `options.flow_id` on `node`.
  /// `egress` is the NIC the flow transmits through (for IFQ introspection);
  /// pass the device `node` routes dst through.
  TcpSender(sim::Simulation& simulation, net::Node& node, net::NetDevice& egress,
            std::unique_ptr<CongestionControl> cc, Options options);

  TcpSender(const TcpSender&) = delete;
  TcpSender& operator=(const TcpSender&) = delete;

  /// Append bytes to the (virtual) send buffer and try to transmit.
  void app_write(std::uint64_t bytes);

  /// Unlimited source: the sender always has data to send.
  void set_unlimited(bool unlimited);

  // --- CcHost interface (read/written by the congestion-control module) ---
  [[nodiscard]] double cwnd_bytes() const override { return cwnd_; }
  void set_cwnd_bytes(double cwnd) override;
  [[nodiscard]] double ssthresh_bytes() const override { return ssthresh_; }
  void set_ssthresh_bytes(double ssthresh) override;
  [[nodiscard]] std::uint32_t mss() const override { return opt_.mss; }
  [[nodiscard]] std::uint64_t flight_size_bytes() const override {
    return sent_offset_ - acked_offset_;
  }
  [[nodiscard]] sim::Time now() const override { return sim_.now(); }
  [[nodiscard]] std::size_t ifq_occupancy_packets() const override {
    return egress_.occupancy_packets();
  }
  [[nodiscard]] std::size_t ifq_capacity_packets() const override {
    return egress_.ifq_capacity();
  }
  [[nodiscard]] sim::Time srtt() const override {
    return rtt_.has_sample() ? rtt_.srtt() : sim::Time::zero();
  }

  // --- observability ---
  [[nodiscard]] const web100::Mib& mib() const { return mib_; }
  [[nodiscard]] web100::Mib& mib() { return mib_; }
  [[nodiscard]] const CongestionControl& congestion_control() const { return *cc_; }
  [[nodiscard]] std::uint64_t bytes_acked() const { return acked_offset_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return sent_offset_; }
  [[nodiscard]] bool in_fast_recovery() const { return in_recovery_; }
  [[nodiscard]] const RttEstimator& rtt_estimator() const { return rtt_; }
  /// Bytes currently marked received-above-the-hole by SACK.
  [[nodiscard]] std::uint64_t sacked_bytes() const;
  [[nodiscard]] const metrics::TimeSeries& cwnd_trace() const { return cwnd_trace_; }
  [[nodiscard]] const metrics::TimeSeries& stall_trace() const { return stall_trace_; }

  /// Goodput over [t0, t1] from cumulative acked bytes (Mbit/s).
  [[nodiscard]] double goodput_mbps(sim::Time t0, sim::Time t1) const;

 private:
  // --- wire helpers ---
  [[nodiscard]] SeqNum seq_of(std::uint64_t offset) const {
    return SeqNum{opt_.initial_seq + static_cast<std::uint32_t>(offset)};
  }
  [[nodiscard]] std::uint64_t offset_of_ack(SeqNum ack) const;

  void maybe_send();
  /// Transmit [offset, offset+len). Returns false on send-stall.
  bool send_segment(std::uint64_t offset, std::uint32_t len, bool retransmission);
  void on_packet(const net::Packet& p);
  void handle_new_ack(std::uint64_t ack_offset, const net::Packet& p);
  void handle_dup_ack();
  void retransmit_head();
  // --- SACK (RFC 2018 scoreboard + RFC 6675-lite recovery) ---
  void process_sack_blocks(const net::Packet& p);
  [[nodiscard]] std::uint64_t offset_of_seq(SeqNum seq) const;
  /// First un-SACKed, un-retransmitted hole at/after `from`, below `until`;
  /// nullopt when none.
  [[nodiscard]] std::optional<std::uint64_t> next_sack_hole(std::uint64_t from,
                                                            std::uint64_t until) const;
  /// Pipe-limited transmission during SACK recovery: retransmit holes
  /// first, then new data, while estimated pipe < cwnd.
  void sack_recovery_send();
  void on_retransmission_timeout();
  void arm_rto_timer();
  void disarm_rto_timer();

  sim::Simulation& sim_;
  net::Node& node_;
  net::NetDevice& egress_;
  std::unique_ptr<CongestionControl> cc_;
  Options opt_;

  // Send buffer model: [0, app_offset_) written by app; [0, acked_offset_)
  // acked; [acked_offset_, sent_offset_) in flight; sent_offset_ <=
  // app_offset_. highest_sent_ tracks the retransmission frontier after
  // go-back-N.
  std::uint64_t app_offset_{0};
  std::uint64_t acked_offset_{0};
  std::uint64_t sent_offset_{0};
  std::uint64_t highest_sent_{0};
  bool unlimited_{false};

  double cwnd_{0};
  double ssthresh_{0};
  std::uint64_t rwnd_{0};

  int dupacks_{0};
  bool in_recovery_{false};
  std::uint64_t recover_offset_{0};
  /// SACK scoreboard: merged, disjoint [start, end) offset ranges the
  /// receiver holds above the cumulative ACK. Keyed by start.
  std::map<std::uint64_t, std::uint64_t> sacked_;
  /// Recovery retransmission frontier: holes below this were already
  /// retransmitted in the current episode.
  std::uint64_t sack_retx_frontier_{0};

  RttEstimator rtt_;
  std::optional<std::pair<std::uint64_t, sim::Time>> timed_segment_;
  /// RFC 2861 bookkeeping: when data last entered the network.
  std::optional<sim::Time> last_send_activity_;
  sim::EventId rto_timer_{};
  sim::EventId stall_retry_timer_{};

  web100::Mib mib_;
  net::PacketUidSource uid_source_;
  metrics::TimeSeries cwnd_trace_{"cwnd_bytes"};
  metrics::TimeSeries stall_trace_{"cumulative_send_stalls"};
};

}  // namespace rss::tcp
