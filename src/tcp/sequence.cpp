#include "tcp/sequence.hpp"

#include <ostream>

namespace rss::tcp {

std::ostream& operator<<(std::ostream& os, SeqNum s) { return os << s.raw(); }

}  // namespace rss::tcp
