#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string_view>

#include "tcp/reno.hpp"

namespace rss::tcp {

/// HighSpeed TCP (RFC 3649, Floyd 2003) — the era's remedy for the *other*
/// half of the large-BDP problem the paper's introduction frames: once
/// slow-start is survived, standard AIMD needs thousands of RTTs to reach
/// a large window. HSTCP makes the increase a(w) super-linear and the
/// decrease b(w) gentler above a low-window threshold, reverting exactly
/// to Reno below it.
///
/// Uses the RFC's closed-form response function with the standard
/// parameters: Low_Window = 38 segments, High_Window = 83000,
/// High_P = 1e-7, High_Decrease = 0.1. For w > Low_Window:
///
///   p(w)  = exp(log(Low_P) + (log(w)-log(Low_W)) /
///                (log(High_W)-log(Low_W)) * (log(High_P)-log(Low_P)))
///   b(w)  = 0.5 + (log(w)-log(Low_W)) / (log(High_W)-log(Low_W)) * (0.1-0.5)
///   a(w)  = w^2 * p(w) * 2 * b(w) / (2 - b(w))
///
/// Slow-start is *unchanged* from Reno — which is precisely the gap
/// Restricted Slow-Start fills; see HighSpeedRestrictedSlowStart in
/// core/highspeed_rss.hpp for the composition.
class HighSpeedCongestionControl : public RenoCongestionControl {
 public:
  struct HsOptions {
    double low_window_segments{38.0};
    double high_window_segments{83000.0};
    double high_p{1e-7};
    double high_decrease{0.1};
    Options reno{};
  };

  HighSpeedCongestionControl() = default;
  explicit HighSpeedCongestionControl(HsOptions opt)
      : RenoCongestionControl(opt.reno), hs_{opt} {}

  void on_ack(std::uint32_t acked_bytes) override {
    CcHost& h = host();
    const auto mss = static_cast<double>(h.mss());
    if (in_slow_start()) {
      h.set_cwnd_bytes(h.cwnd_bytes() + std::min<double>(acked_bytes, mss));
      return;
    }
    // a(w)/w per ACK == a(w) per RTT.
    const double w = h.cwnd_bytes() / mss;
    h.set_cwnd_bytes(h.cwnd_bytes() + increase_a(w) * mss / w);
  }

  void on_fast_retransmit() override {
    CcHost& h = host();
    const double w =
        static_cast<double>(h.flight_size_bytes()) / static_cast<double>(h.mss());
    const double b = decrease_b(w);
    h.set_ssthresh_bytes(std::max((1.0 - b) * static_cast<double>(h.flight_size_bytes()),
                                  2.0 * static_cast<double>(h.mss())));
  }

  [[nodiscard]] std::string_view name() const override { return "highspeed"; }

  /// RFC 3649 §5 response function pieces, public for direct unit testing.
  [[nodiscard]] double increase_a(double w_segments) const;
  [[nodiscard]] double decrease_b(double w_segments) const;

 protected:
  HsOptions hs_{};
};

inline double HighSpeedCongestionControl::decrease_b(double w) const {
  if (w <= hs_.low_window_segments) return 0.5;
  const double frac = (std::log(w) - std::log(hs_.low_window_segments)) /
                      (std::log(hs_.high_window_segments) - std::log(hs_.low_window_segments));
  return 0.5 + frac * (hs_.high_decrease - 0.5);
}

inline double HighSpeedCongestionControl::increase_a(double w) const {
  if (w <= hs_.low_window_segments) return 1.0;
  // Low_P: loss rate at which stock TCP sustains Low_Window: p = 1.5/w^2.
  const double low_p = 1.5 / (hs_.low_window_segments * hs_.low_window_segments);
  const double frac = (std::log(w) - std::log(hs_.low_window_segments)) /
                      (std::log(hs_.high_window_segments) - std::log(hs_.low_window_segments));
  const double p = std::exp(std::log(low_p) + frac * (std::log(hs_.high_p) - std::log(low_p)));
  const double b = decrease_b(w);
  return std::max(1.0, w * w * p * 2.0 * b / (2.0 - b));
}

}  // namespace rss::tcp
