#include "tcp/rtt_estimator.hpp"

#include <algorithm>

namespace rss::tcp {

void RttEstimator::add_sample(sim::Time measured) {
  if (measured < sim::Time::zero()) return;
  min_rtt_ = std::min(min_rtt_, measured);

  if (!has_sample_) {
    // RFC 6298 (2.2): SRTT <- R, RTTVAR <- R/2.
    srtt_ = measured;
    rttvar_ = measured / 2;
    has_sample_ = true;
  } else {
    // RFC 6298 (2.3): RTTVAR before SRTT, using the old SRTT.
    const sim::Time err = srtt_ > measured ? srtt_ - measured : measured - srtt_;
    rttvar_ = sim::Time::from_seconds((1.0 - opt_.beta) * rttvar_.to_seconds() +
                                      opt_.beta * err.to_seconds());
    srtt_ = sim::Time::from_seconds((1.0 - opt_.alpha) * srtt_.to_seconds() +
                                    opt_.alpha * measured.to_seconds());
  }
  rto_ = srtt_ + rttvar_ * static_cast<std::int64_t>(opt_.k);
  rto_ = std::clamp(rto_, opt_.min_rto, opt_.max_rto);
}

sim::Time RttEstimator::rto() const {
  sim::Time t = has_sample_ ? rto_ : opt_.initial_rto;
  for (int i = 0; i < backoff_shift_; ++i) {
    t = t * 2;
    if (t >= opt_.max_rto) return opt_.max_rto;
  }
  return std::min(t, opt_.max_rto);
}

void RttEstimator::backoff() {
  if (backoff_shift_ < 16) ++backoff_shift_;
}

}  // namespace rss::tcp
