#pragma once

#include "sim/time.hpp"

namespace rss::tcp {

/// RFC 6298 round-trip-time estimation and retransmission-timeout
/// computation (the Jacobson/Karels SRTT/RTTVAR filter plus exponential
/// backoff), with the Linux-style 200 ms minimum RTO floor of the paper's
/// era.
class RttEstimator {
 public:
  struct Options {
    sim::Time initial_rto{sim::Time::seconds(1)};  // RFC 6298 §2.1
    sim::Time min_rto{sim::Time::milliseconds(200)};
    sim::Time max_rto{sim::Time::seconds(60)};
    double alpha{0.125};  // SRTT gain
    double beta{0.25};    // RTTVAR gain
    int k{4};             // RTO = SRTT + K*RTTVAR
  };

  RttEstimator() = default;
  explicit RttEstimator(Options opt) : opt_{opt}, rto_{opt.initial_rto} {}

  /// Feed one RTT measurement (Karn-filtered by the caller: never from a
  /// retransmitted segment).
  void add_sample(sim::Time measured);

  /// Current retransmission timeout, including any backoff in force.
  [[nodiscard]] sim::Time rto() const;

  /// Double the timeout (retransmission timer fired). RFC 6298 §5.5.
  void backoff();

  /// Clear backoff (new ACK arrived). RFC 6298 §5.7 + Karn.
  void reset_backoff() { backoff_shift_ = 0; }

  [[nodiscard]] bool has_sample() const { return has_sample_; }
  [[nodiscard]] sim::Time srtt() const { return srtt_; }
  [[nodiscard]] sim::Time rttvar() const { return rttvar_; }
  [[nodiscard]] sim::Time min_rtt() const { return min_rtt_; }
  [[nodiscard]] int backoff_shift() const { return backoff_shift_; }

 private:
  Options opt_{};
  bool has_sample_{false};
  sim::Time srtt_{sim::Time::zero()};
  sim::Time rttvar_{sim::Time::zero()};
  sim::Time min_rtt_{sim::Time::infinity()};
  sim::Time rto_{sim::Time::seconds(1)};
  int backoff_shift_{0};
};

}  // namespace rss::tcp
