#pragma once

#include <algorithm>
#include <cstdint>
#include <string_view>

#include "tcp/congestion_control.hpp"

namespace rss::tcp {

/// Stock TCP congestion control of the paper's baseline ("standard Linux
/// TCP"): RFC 5681 slow-start and congestion avoidance, with the Linux 2.4
/// local-congestion (CWR) reaction to send-stalls — the behaviour the paper
/// §2 identifies as the problem.
class RenoCongestionControl : public CongestionControl {
 public:
  struct Options {
    std::uint32_t initial_cwnd_segments{2};   ///< RFC 5681 IW for MSS 1460
    double initial_ssthresh_bytes{1 << 30};   ///< effectively unbounded
    /// Linux `tcp_enter_cwr` rate limit: react to local congestion at most
    /// once per SRTT (further stalls in the same window are counted but do
    /// not re-halve).
    bool rate_limit_local_congestion{true};
  };

  RenoCongestionControl() = default;
  explicit RenoCongestionControl(Options opt) : opt_{opt} {}

  void attach(CcHost& host) override {
    CongestionControl::attach(host);
    host.set_cwnd_bytes(static_cast<double>(opt_.initial_cwnd_segments * host.mss()));
    host.set_ssthresh_bytes(opt_.initial_ssthresh_bytes);
  }

  void on_ack(std::uint32_t acked_bytes) override {
    CcHost& h = host();
    const auto mss = static_cast<double>(h.mss());
    if (in_slow_start()) {
      // RFC 5681: cwnd += min(N, SMSS) per ACK.
      h.set_cwnd_bytes(h.cwnd_bytes() + std::min<double>(acked_bytes, mss));
    } else {
      // Congestion avoidance: ~1 MSS per RTT.
      h.set_cwnd_bytes(h.cwnd_bytes() + mss * mss / h.cwnd_bytes());
    }
  }

  void on_fast_retransmit() override { set_ssthresh_to_half_flight(); }

  void on_retransmit_timeout() override {
    set_ssthresh_to_half_flight();
    host().set_cwnd_bytes(static_cast<double>(host().mss()));  // RFC 5681 §3.1: LW = 1 SMSS
  }

  bool on_local_congestion() override {
    CcHost& h = host();
    if (!cwr_allowed()) return false;
    // Linux 2.4 tcp_enter_cwr: treat exactly like network congestion.
    const double mss2 = 2.0 * static_cast<double>(h.mss());
    const double target = std::max(h.cwnd_bytes() / 2.0, mss2);
    h.set_ssthresh_bytes(target);
    h.set_cwnd_bytes(target);  // cwnd == ssthresh: slow-start is over
    return true;
  }

  [[nodiscard]] bool in_slow_start() const override {
    return host().cwnd_bytes() < host().ssthresh_bytes();
  }

  [[nodiscard]] std::string_view name() const override { return "reno"; }

 protected:
  /// Linux `tcp_enter_cwr` rate limit, shared by every Reno-family
  /// algorithm: at most one local-congestion reaction per SRTT. Returns
  /// true when a reduction may proceed (and stamps the CWR clock).
  bool cwr_allowed() {
    if (!opt_.rate_limit_local_congestion) return true;
    CcHost& h = host();
    const sim::Time guard = h.srtt().is_zero() ? sim::Time::milliseconds(200) : h.srtt();
    if (last_cwr_ > sim::Time::zero() && h.now() < last_cwr_ + guard) return false;
    last_cwr_ = h.now();
    return true;
  }

  void set_ssthresh_to_half_flight() {
    CcHost& h = host();
    const double half_flight = static_cast<double>(h.flight_size_bytes()) / 2.0;
    h.set_ssthresh_bytes(std::max(half_flight, 2.0 * static_cast<double>(h.mss())));
  }

  Options opt_{};
  sim::Time last_cwr_{sim::Time::zero()};
};

}  // namespace rss::tcp
