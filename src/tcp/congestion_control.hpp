#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string_view>

#include "sim/time.hpp"

namespace rss::tcp {

/// The sender-side state a congestion-control algorithm may read and the
/// window variables it owns. Implemented by TcpSender; passed to the
/// algorithm at attach time so algorithms stay header-decoupled from the
/// sender machinery (and unit-testable against a mock host).
class CcHost {
 public:
  virtual ~CcHost() = default;

  [[nodiscard]] virtual double cwnd_bytes() const = 0;
  virtual void set_cwnd_bytes(double cwnd) = 0;
  [[nodiscard]] virtual double ssthresh_bytes() const = 0;
  virtual void set_ssthresh_bytes(double ssthresh) = 0;

  [[nodiscard]] virtual std::uint32_t mss() const = 0;
  /// Bytes currently in flight (sent, not yet cumulatively acked).
  [[nodiscard]] virtual std::uint64_t flight_size_bytes() const = 0;
  [[nodiscard]] virtual sim::Time now() const = 0;

  /// Occupancy (packets, including the one on the wire) and capacity of the
  /// local interface queue the connection transmits through — the process
  /// variable of Restricted Slow-Start. Zero capacity means "unknown".
  [[nodiscard]] virtual std::size_t ifq_occupancy_packets() const = 0;
  [[nodiscard]] virtual std::size_t ifq_capacity_packets() const = 0;

  /// Smoothed RTT (zero until the first sample).
  [[nodiscard]] virtual sim::Time srtt() const = 0;
};

/// Pluggable congestion-control algorithm. The TcpSender drives the state
/// machine (dupack counting, recovery bookkeeping, RTO) and calls these
/// hooks at the decision points; algorithms only move cwnd/ssthresh.
///
/// Contract notes:
///  * on_ack fires for new cumulative ACKs outside fast recovery —
///    algorithms implement their slow-start / congestion-avoidance growth
///    here.
///  * on_fast_retransmit fires when the 3rd dupack triggers a retransmit;
///    the algorithm sets ssthresh (sender then inflates cwnd per NewReno).
///  * on_retransmit_timeout fires on RTO expiry, before go-back-N.
///  * on_local_congestion fires on a send-stall (IFQ rejected a locally
///    originated segment). Stock algorithms mirror Linux 2.4: treat it as a
///    congestion signal. RSS additionally re-centres its controller.
class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  /// Called once when attached to a sender, before any traffic.
  virtual void attach(CcHost& host) { host_ = &host; }

  virtual void on_ack(std::uint32_t acked_bytes) = 0;
  virtual void on_fast_retransmit() = 0;
  virtual void on_retransmit_timeout() = 0;
  /// Returns true iff the algorithm actually reduced the window (Linux
  /// rate-limits CWR entry to once per RTT, so repeated stalls within one
  /// window are counted but produce no further reduction).
  virtual bool on_local_congestion() = 0;

  /// ECN feedback: fires once per new cumulative ACK, before on_ack, when
  /// the flow negotiated ECN. `acked_bytes` is the ACK's cumulative
  /// advance and `ce_marked` its ECN-Echo bit (the receiver runs a
  /// DCTCP-style echo, so the bit tracks the CE state of the acked data).
  /// Default: ignore — loss-based algorithms simply never see marks.
  virtual void on_ecn_feedback(std::uint32_t acked_bytes, bool ce_marked) {
    (void)acked_bytes;
    (void)ce_marked;
  }

  /// True while the algorithm considers itself in slow-start (diagnostic;
  /// the sender records phase transitions through this).
  [[nodiscard]] virtual bool in_slow_start() const = 0;

  /// Whether the sender should run NewReno fast recovery (window inflation
  /// and partial-ACK retransmission) after on_fast_retransmit(). Tahoe
  /// returns false: it collapses to one segment and slow-starts again.
  [[nodiscard]] virtual bool use_fast_recovery() const { return true; }

  [[nodiscard]] virtual std::string_view name() const = 0;

 protected:
  [[nodiscard]] CcHost& host() const { return *host_; }
  CcHost* host_{nullptr};
};

/// Factory signature used by scenario builders so experiments can be
/// parameterized over algorithms.
using CongestionControlFactory = std::unique_ptr<CongestionControl> (*)();

}  // namespace rss::tcp
