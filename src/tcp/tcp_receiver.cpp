#include "tcp/tcp_receiver.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace rss::tcp {

TcpReceiver::TcpReceiver(sim::Simulation& simulation, net::Node& node, Options options)
    : sim_{simulation}, node_{node}, opt_{options}, rcv_nxt_{options.initial_seq} {
  if (opt_.ack_every < 1) throw std::invalid_argument("TcpReceiver: ack_every must be >= 1");
  node_.register_flow_handler(opt_.flow_id, [this](const net::Packet& p) { on_packet(p); });
}

void TcpReceiver::on_packet(const net::Packet& p) {
  if (!p.is_data()) return;  // receiver side only consumes data segments
  ++packets_received_;

  if (opt_.ecn) {
    if (p.ce) ++ce_received_;
    if (p.ce != ce_state_) {
      // RFC 8257 §3.2: a CE-state change first flushes an immediate ACK
      // carrying the *old* state, so the sender can attribute every acked
      // byte to the right mark state; subsequent ACKs echo the new state.
      send_ack();
      ce_state_ = p.ce;
    }
  }

  const SeqNum seq{p.tcp.seq};
  const SeqNum seg_end = seq + p.payload_bytes;

  if (seg_end <= rcv_nxt_) {
    // Entirely old (spurious retransmission): re-ACK immediately so the
    // sender's state converges.
    ++duplicates_;
    send_ack();
    return;
  }

  if (seq > rcv_nxt_) {
    // Gap: buffer and emit an immediate duplicate ACK (RFC 5681 §3.2).
    ++out_of_order_;
    auto [it, inserted] = ooo_.emplace(seq, p.payload_bytes);
    if (!inserted && p.payload_bytes > it->second) it->second = p.payload_bytes;
    last_ooo_seq_ = seq;
    send_ack();
    return;
  }

  // In-order (possibly partially duplicate) segment: advance rcv_nxt.
  const auto fresh = static_cast<std::uint32_t>(distance(rcv_nxt_, seg_end));
  rcv_nxt_ = seg_end;
  bytes_received_ += fresh;

  // Pull any now-contiguous buffered segments.
  bool filled_gap = false;
  while (!ooo_.empty()) {
    const auto it = ooo_.begin();
    const SeqNum buf_start = it->first;
    const SeqNum buf_end = buf_start + it->second;
    if (buf_start > rcv_nxt_) break;
    if (buf_end > rcv_nxt_) {
      bytes_received_ += static_cast<std::uint32_t>(distance(rcv_nxt_, buf_end));
      rcv_nxt_ = buf_end;
      filled_gap = true;
    }
    ooo_.erase(it);
  }

  if (filled_gap) {
    // ACK immediately after a gap fill so recovery completes promptly.
    send_ack();
    return;
  }

  const bool quickack = packets_received_ <= opt_.quickack_segments;
  if (quickack || ++unacked_arrivals_ >= opt_.ack_every) {
    send_ack();
  } else {
    schedule_delayed_ack();
  }
}

void TcpReceiver::send_ack() {
  if (delack_timer_.valid()) {
    sim_.cancel(delack_timer_);
    delack_timer_ = sim::EventId{};
  }
  unacked_arrivals_ = 0;

  net::Packet ack;
  ack.uid = uid_source_.next();
  ack.flow_id = opt_.flow_id;
  ack.dst_node = opt_.peer_node;
  ack.payload_bytes = 0;
  ack.tcp.is_ack = true;
  ack.tcp.ack = rcv_nxt_.raw();
  ack.tcp.advertised_window = opt_.advertised_window;
  ack.tcp.ece = opt_.ecn && ce_state_;
  if (opt_.enable_sack && !ooo_.empty()) fill_sack_blocks(ack.tcp);
  // An ACK rejected by the local IFQ is simply lost; cumulative ACKs are
  // self-repairing, so no further action is needed.
  (void)node_.send(ack);
  ++acks_sent_;
}

void TcpReceiver::fill_sack_blocks(net::TcpHeader& header) const {
  // Merge contiguous reassembly-buffer entries into blocks (ascending).
  struct Block {
    SeqNum start;
    SeqNum end;
  };
  std::vector<Block> blocks;
  for (const auto& [seq, len] : ooo_) {
    const SeqNum end = seq + len;
    if (!blocks.empty() && seq <= blocks.back().end) {
      if (end > blocks.back().end) blocks.back().end = end;
    } else {
      blocks.push_back({seq, end});
    }
  }
  // RFC 2018 §4: the block containing the most recently received segment
  // comes first, so the sender learns about the newest arrival even if the
  // list is truncated.
  if (last_ooo_seq_) {
    for (std::size_t i = 1; i < blocks.size(); ++i) {
      if (blocks[i].start <= *last_ooo_seq_ && *last_ooo_seq_ < blocks[i].end) {
        std::rotate(blocks.begin(), blocks.begin() + static_cast<std::ptrdiff_t>(i),
                    blocks.begin() + static_cast<std::ptrdiff_t>(i) + 1);
        break;
      }
    }
  }
  header.sack_count = static_cast<std::uint8_t>(std::min<std::size_t>(blocks.size(), 3));
  for (std::size_t i = 0; i < header.sack_count; ++i) {
    header.sack[i] = {blocks[i].start.raw(), blocks[i].end.raw()};
  }
}

void TcpReceiver::schedule_delayed_ack() {
  if (delack_timer_.valid()) return;
  const auto fire_delack = [this] {
    delack_timer_ = sim::EventId{};
    if (unacked_arrivals_ > 0) send_ack();
  };
  static_assert(sizeof(fire_delack) <= sim::InlineCallback::kCapacity,
                "delayed-ACK callback must stay inline on the per-segment hot path");
  delack_timer_ = sim_.in(opt_.delayed_ack_timeout, fire_delack);
}

}  // namespace rss::tcp
