#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string_view>

#include "tcp/reno.hpp"

namespace rss::tcp {

/// CUBIC (Ha, Rhee & Xu; RFC 8312) — the default congestion control of
/// modern Linux, and the mainstream answer to the large-BDP growth problem
/// HighSpeed TCP attacked a few years after the paper's era. Window growth
/// in congestion avoidance is a cubic of wall-clock time since the last
/// reduction:
///
///   W_cubic(t) = C * (t - K)^3 + W_max,   K = cbrt(W_max * (1-beta) / C)
///
/// so the window races back toward W_max (the size where loss last
/// occurred), plateaus there probing gently, then accelerates into unknown
/// territory. Growth is clocked by time, not RTT, which is what makes
/// CUBIC's convergence RTT-fair. The TCP-friendly estimate W_est keeps it
/// no slower than Reno in short-RTT regimes (RFC 8312 §4.2).
///
/// Slow start, loss detection, and recovery mechanics are inherited from
/// the Reno base; CUBIC changes the avoidance growth and the decrease
/// factor (beta = 0.7, with fast convergence, §4.6).
class CubicCongestionControl final : public RenoCongestionControl {
 public:
  struct CubicOptions {
    double c{0.4};                ///< aggressiveness constant (RFC 8312 §5)
    double beta{0.7};             ///< multiplicative decrease factor
    bool fast_convergence{true};  ///< release bandwidth to newcomers (§4.6)
    Options reno{};
  };

  CubicCongestionControl() = default;
  explicit CubicCongestionControl(CubicOptions opt)
      : RenoCongestionControl(opt.reno), copt_{opt} {}

  void on_ack(std::uint32_t acked_bytes) override {
    CcHost& h = host();
    const auto mss = static_cast<double>(h.mss());
    if (in_slow_start()) {
      h.set_cwnd_bytes(h.cwnd_bytes() + std::min<double>(acked_bytes, mss));
      return;
    }

    const sim::Time now = h.now();
    // Srtt is zero only before the first sample; anything in congestion
    // avoidance has taken samples, but guard the division anyway.
    const double srtt_s = std::max(h.srtt().to_seconds(), 1e-4);
    const double cwnd_seg = h.cwnd_bytes() / mss;

    if (epoch_start_ == sim::Time::zero()) {
      // New avoidance epoch (first ACK after a reduction): anchor the
      // cubic's origin. Below W_max we re-approach it in K seconds; at or
      // above it the plateau starts here.
      epoch_start_ = now;
      if (cwnd_seg < w_max_) {
        k_ = std::cbrt(w_max_ * (1.0 - copt_.beta) / copt_.c);
      } else {
        k_ = 0.0;
        w_max_ = cwnd_seg;
      }
      w_est_ = cwnd_seg;
    }

    // TCP-friendly region: the average Reno window under beta-decrease
    // grows 3(1-beta)/(1+beta) segments per RTT (RFC 8312 §4.2).
    w_est_ += 3.0 * (1.0 - copt_.beta) / (1.0 + copt_.beta) *
              static_cast<double>(acked_bytes) / h.cwnd_bytes();

    const double t = (now - epoch_start_).to_seconds() + srtt_s;
    const double d = t - k_;
    const double w_cubic = copt_.c * d * d * d + w_max_;
    const double target = std::max(w_cubic, w_est_);
    if (target > cwnd_seg) {
      // (target - cwnd)/cwnd segments per ACK == target reached in one RTT.
      h.set_cwnd_bytes(h.cwnd_bytes() + mss * (target - cwnd_seg) / cwnd_seg);
    }
  }

  void on_fast_retransmit() override {
    CcHost& h = host();
    const auto mss = static_cast<double>(h.mss());
    const double cwnd_seg = h.cwnd_bytes() / mss;
    // Fast convergence: a loss *below* the previous W_max means a new flow
    // is taking its share — release extra room by remembering less.
    if (copt_.fast_convergence && cwnd_seg < w_max_) {
      w_max_ = cwnd_seg * (2.0 - copt_.beta) / 2.0;
    } else {
      w_max_ = cwnd_seg;
    }
    epoch_start_ = sim::Time::zero();
    h.set_ssthresh_bytes(std::max(h.cwnd_bytes() * copt_.beta, 2.0 * mss));
  }

  void on_retransmit_timeout() override {
    CcHost& h = host();
    const auto mss = static_cast<double>(h.mss());
    w_max_ = h.cwnd_bytes() / mss;
    epoch_start_ = sim::Time::zero();
    h.set_ssthresh_bytes(std::max(h.cwnd_bytes() * copt_.beta, 2.0 * mss));
    h.set_cwnd_bytes(mss);  // RFC 5681 §3.1: LW = 1 SMSS
  }

  bool on_local_congestion() override {
    CcHost& h = host();
    if (!cwr_allowed()) return false;
    const auto mss = static_cast<double>(h.mss());
    w_max_ = h.cwnd_bytes() / mss;
    epoch_start_ = sim::Time::zero();
    const double target = std::max(h.cwnd_bytes() * copt_.beta, 2.0 * mss);
    h.set_ssthresh_bytes(target);
    h.set_cwnd_bytes(target);
    return true;
  }

  [[nodiscard]] std::string_view name() const override { return "cubic"; }

 private:
  CubicOptions copt_{};
  double w_max_{0.0};  ///< segments; window size at the last reduction
  double k_{0.0};      ///< seconds to return to w_max_
  double w_est_{0.0};  ///< TCP-friendly Reno estimate, segments
  sim::Time epoch_start_{sim::Time::zero()};
};

}  // namespace rss::tcp
