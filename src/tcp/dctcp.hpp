#pragma once

#include <algorithm>
#include <cstdint>
#include <string_view>

#include "tcp/reno.hpp"

namespace rss::tcp {

/// DCTCP — Data Center TCP (Alizadeh et al., RFC 8257). Pairs with a
/// shallow step-marking queue (PacketQueue::set_ecn_step_threshold): the
/// switch CE-marks every ECT packet above a small occupancy, the receiver
/// echoes the marks byte-accurately, and the sender scales its window cut
/// by the *fraction* of marked bytes instead of halving on any signal:
///
///   alpha <- (1 - g) * alpha + g * F        once per observation window
///   cwnd  <- cwnd * (1 - alpha / 2)         once per window with marks
///
/// where F is the marked-byte fraction of the window (~one RTT). A fully
/// marked window behaves like Reno's halving; sparse marks shave the
/// window gently, which is what keeps throughput at near-empty queues.
///
/// Loss handling (dupacks, RTO, send-stalls) is inherited from Reno —
/// exactly as RFC 8257 §3.3 prescribes: DCTCP only changes the reaction
/// to ECN marks.
class DctcpCongestionControl final : public RenoCongestionControl {
 public:
  struct Options {
    RenoCongestionControl::Options reno{};
    double gain{1.0 / 16.0};     ///< g — EWMA gain for alpha (RFC 8257 §4.2)
    double initial_alpha{1.0};   ///< conservative start: first mark halves
    /// Observation-window fallback before the first RTT sample.
    sim::Time fallback_window{sim::Time::milliseconds(200)};
  };

  DctcpCongestionControl() : DctcpCongestionControl(Options{}) {}
  explicit DctcpCongestionControl(Options opt)
      : RenoCongestionControl(opt.reno), dopt_{opt}, alpha_{opt.initial_alpha} {}

  void on_ecn_feedback(std::uint32_t acked_bytes, bool ce_marked) override {
    acked_window_ += acked_bytes;
    if (ce_marked) marked_window_ += acked_bytes;

    CcHost& h = host();
    const sim::Time now = h.now();
    if (window_end_ == sim::Time::zero()) window_end_ = now + observation_window();
    if (now >= window_end_) {
      const double f = acked_window_ > 0
                           ? static_cast<double>(marked_window_) /
                                 static_cast<double>(acked_window_)
                           : 0.0;
      alpha_ = (1.0 - dopt_.gain) * alpha_ + dopt_.gain * f;
      acked_window_ = 0;
      marked_window_ = 0;
      window_end_ = now + observation_window();
    }

    if (ce_marked && now >= next_cut_at_) {
      // One multiplicative cut per window; ssthresh follows so the
      // algorithm does not re-enter slow start after the reduction.
      const double target = h.cwnd_bytes() * (1.0 - alpha_ / 2.0);
      h.set_ssthresh_bytes(target);
      h.set_cwnd_bytes(target);
      next_cut_at_ = now + observation_window();
    }
  }

  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] std::string_view name() const override { return "dctcp"; }

 private:
  [[nodiscard]] sim::Time observation_window() const {
    const sim::Time srtt = host().srtt();
    return srtt > sim::Time::zero() ? srtt : dopt_.fallback_window;
  }

  Options dopt_{};
  double alpha_{1.0};
  std::uint64_t acked_window_{0};
  std::uint64_t marked_window_{0};
  sim::Time window_end_{sim::Time::zero()};
  sim::Time next_cut_at_{sim::Time::zero()};
};

}  // namespace rss::tcp
