#pragma once

#include <algorithm>
#include <cstdint>
#include <string_view>

#include "tcp/reno.hpp"

namespace rss::tcp {

/// TCP Vegas (Brakmo & Peterson '94) — the era's delay-based congestion
/// control, included as the conceptual cousin of Restricted Slow-Start:
/// both throttle *before* loss, Vegas by watching RTT inflation (queueing
/// anywhere on the path), RSS by watching the local IFQ directly.
/// bench/ext_vegas compares them on the paper path.
///
/// Implemented per the original paper:
///  * expected = cwnd / baseRTT,  actual = cwnd / RTT (both in segments/s),
///  * diff = (expected - actual) * baseRTT  (segments of queued data),
///  * congestion avoidance: diff < alpha -> cwnd += 1/cwnd per ACK;
///    diff > beta -> cwnd -= 1/cwnd per ACK; else hold,
///  * slow start: double only every *other* RTT, and leave slow start once
///    diff > gamma.
class VegasCongestionControl final : public RenoCongestionControl {
 public:
  struct VegasOptions {
    double alpha_segments{2.0};
    double beta_segments{4.0};
    double gamma_segments{1.0};  ///< slow-start exit threshold
    Options reno{};
  };

  VegasCongestionControl() = default;
  explicit VegasCongestionControl(VegasOptions opt)
      : RenoCongestionControl(opt.reno), vopt_{opt} {}

  void on_ack(std::uint32_t acked_bytes) override {
    CcHost& h = host();
    const auto mss = static_cast<double>(h.mss());
    const sim::Time srtt = h.srtt();
    if (srtt.is_zero()) {  // no RTT estimate yet: plain slow-start
      h.set_cwnd_bytes(h.cwnd_bytes() + std::min<double>(acked_bytes, mss));
      return;
    }
    if (base_rtt_.is_zero() || srtt < base_rtt_) base_rtt_ = srtt;

    const double cwnd_seg = h.cwnd_bytes() / mss;
    const double expected = cwnd_seg / base_rtt_.to_seconds();
    const double actual = cwnd_seg / srtt.to_seconds();
    const double diff_seg = (expected - actual) * base_rtt_.to_seconds();

    if (in_slow_start()) {
      if (diff_seg > vopt_.gamma_segments) {
        // Queue building: leave slow start right here (Vegas' early exit).
        h.set_ssthresh_bytes(h.cwnd_bytes());
        return;
      }
      // Double only every other RTT: approximate by growing 1 MSS per two
      // ACKs.
      if ((ack_parity_ ^= 1) == 0)
        h.set_cwnd_bytes(h.cwnd_bytes() + std::min<double>(acked_bytes, mss));
      return;
    }

    if (diff_seg < vopt_.alpha_segments) {
      h.set_cwnd_bytes(h.cwnd_bytes() + mss * mss / h.cwnd_bytes());
    } else if (diff_seg > vopt_.beta_segments) {
      h.set_cwnd_bytes(h.cwnd_bytes() - mss * mss / h.cwnd_bytes());
    }
    // else: inside the [alpha, beta] band — hold.
  }

  [[nodiscard]] std::string_view name() const override { return "vegas"; }
  [[nodiscard]] sim::Time base_rtt() const { return base_rtt_; }

 private:
  VegasOptions vopt_{};
  sim::Time base_rtt_{sim::Time::zero()};
  int ack_parity_{0};
};

}  // namespace rss::tcp
