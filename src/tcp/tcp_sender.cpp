#include "tcp/tcp_sender.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace rss::tcp {

TcpSender::TcpSender(sim::Simulation& simulation, net::Node& node, net::NetDevice& egress,
                     std::unique_ptr<CongestionControl> cc, Options options)
    : sim_{simulation},
      node_{node},
      egress_{egress},
      cc_{std::move(cc)},
      opt_{options},
      rwnd_{options.rwnd_limit_bytes},
      rtt_{options.rtt} {
  if (!cc_) throw std::invalid_argument("TcpSender: null congestion control");
  if (opt_.mss == 0) throw std::invalid_argument("TcpSender: zero MSS");
  node_.register_flow_handler(opt_.flow_id, [this](const net::Packet& p) { on_packet(p); });
  cc_->attach(*this);
  mib_.update_cwnd(cwnd_);
  mib_.CurSsthresh = ssthresh_;
}

void TcpSender::set_cwnd_bytes(double cwnd) {
  // Floor at one segment: a zero/negative window would deadlock the
  // ACK clock permanently.
  cwnd_ = std::max(cwnd, static_cast<double>(opt_.mss));
  mib_.update_cwnd(cwnd_);
  if (opt_.trace_cwnd) cwnd_trace_.record(sim_.now(), cwnd_);
}

void TcpSender::set_ssthresh_bytes(double ssthresh) {
  ssthresh_ = std::max(ssthresh, 2.0 * static_cast<double>(opt_.mss));
  mib_.CurSsthresh = ssthresh_;
}

void TcpSender::app_write(std::uint64_t bytes) {
  app_offset_ += bytes;
  maybe_send();
}

void TcpSender::set_unlimited(bool unlimited) {
  unlimited_ = unlimited;
  maybe_send();
}

std::uint64_t TcpSender::offset_of_ack(SeqNum ack) const {
  const std::int32_t d = distance(seq_of(acked_offset_), ack);
  if (d <= 0) return acked_offset_;  // old or duplicate ACK
  const std::uint64_t candidate = acked_offset_ + static_cast<std::uint32_t>(d);
  // Never trust an ACK beyond anything we transmitted.
  return std::min(candidate, std::max(sent_offset_, highest_sent_));
}

void TcpSender::maybe_send() {
  // RFC 2861: decay a cwnd that sat idle — halve once per RTO of idleness,
  // floored at the restart window (2 MSS here). Applied lazily at the next
  // send opportunity, then the idle clock restarts.
  if (opt_.cwnd_validation && last_send_activity_ && flight_size_bytes() == 0) {
    const sim::Time idle = sim_.now() - *last_send_activity_;
    const sim::Time rto = rtt_.rto();
    if (idle >= rto && rto > sim::Time::zero()) {
      const auto halvings = std::min<std::int64_t>(
          idle.nanoseconds_count() / rto.nanoseconds_count(), 30);
      double decayed = cwnd_;
      for (std::int64_t i = 0; i < halvings; ++i) decayed /= 2.0;
      set_cwnd_bytes(std::max(decayed, 2.0 * static_cast<double>(opt_.mss)));
      last_send_activity_ = sim_.now();
    }
  }

  while (true) {
    const auto wnd = static_cast<std::uint64_t>(
        std::min(cwnd_, static_cast<double>(std::min(rwnd_, opt_.rwnd_limit_bytes))));
    const std::uint64_t flight = flight_size_bytes();
    if (flight >= wnd) break;

    const std::uint64_t unsent =
        unlimited_ ? std::numeric_limits<std::uint64_t>::max()
                   : (app_offset_ > sent_offset_ ? app_offset_ - sent_offset_ : 0);
    if (unsent == 0) break;

    const auto len =
        static_cast<std::uint32_t>(std::min<std::uint64_t>(opt_.mss, unsent));
    // Avoid sub-MSS silly sends while data is in flight; with an empty pipe
    // send regardless to keep the ACK clock alive.
    if (wnd - flight < len && flight > 0) break;

    if (!send_segment(sent_offset_, len, sent_offset_ < highest_sent_)) break;
  }
}

bool TcpSender::send_segment(std::uint64_t offset, std::uint32_t len, bool retransmission) {
  net::Packet p;
  p.uid = uid_source_.next();
  p.flow_id = opt_.flow_id;
  p.dst_node = opt_.dst_node;
  p.payload_bytes = len;
  p.ect = opt_.ecn;  // data is ECT when the flow negotiated ECN
  p.tcp.seq = seq_of(offset).raw();

  const auto result = node_.send(p);
  if (result == net::Node::SendResult::kNoRoute)
    throw std::logic_error("TcpSender: no route to destination");

  if (result == net::Node::SendResult::kStalled) {
    // Linux 2.4 send-stall: segment dropped before the wire; data stays
    // pending (offsets do not advance). Count it, let the congestion
    // control react, and make sure *something* will retry if the pipe is
    // otherwise empty.
    ++mib_.SendStall;
    if (opt_.trace_stalls)
      stall_trace_.record(sim_.now(), static_cast<double>(mib_.SendStall));
    if (cc_->on_local_congestion()) {
      ++mib_.CongestionSignals;
      ++mib_.OtherReductions;
    }
    if (flight_size_bytes() == 0 && !stall_retry_timer_.valid()) {
      stall_retry_timer_ = sim_.in(opt_.stall_retry_delay, [this] {
        stall_retry_timer_ = sim::EventId{};
        maybe_send();
      });
    }
    return false;
  }

  ++mib_.PktsOut;
  mib_.DataBytesOut += len;
  if (retransmission) {
    ++mib_.PktsRetrans;
    mib_.BytesRetrans += len;
    // Karn: any retransmission invalidates the pending RTT sample.
    timed_segment_.reset();
  } else if (!timed_segment_) {
    timed_segment_ = {offset, sim_.now()};
  }

  if (offset == sent_offset_) {
    sent_offset_ += len;
    highest_sent_ = std::max(highest_sent_, sent_offset_);
  }
  last_send_activity_ = sim_.now();
  if (!rto_timer_.valid()) arm_rto_timer();
  return true;
}

void TcpSender::on_packet(const net::Packet& p) {
  if (!p.tcp.is_ack) return;
  ++mib_.AcksIn;
  rwnd_ = p.tcp.advertised_window;
  mib_.CurRwinRcvd = p.tcp.advertised_window;

  if (opt_.enable_sack) process_sack_blocks(p);

  const std::uint64_t ack_off = offset_of_ack(SeqNum{p.tcp.ack});
  if (ack_off > acked_offset_) {
    handle_new_ack(ack_off, p);
  } else if (ack_off == acked_offset_ && flight_size_bytes() > 0 && !p.is_data()) {
    ++mib_.DupAcksIn;
    handle_dup_ack();
  }
}

std::uint64_t TcpSender::offset_of_seq(SeqNum seq) const {
  const std::int32_t d = distance(seq_of(acked_offset_), seq);
  if (d <= 0) return acked_offset_;
  return std::min(acked_offset_ + static_cast<std::uint32_t>(d),
                  std::max(sent_offset_, highest_sent_));
}

void TcpSender::process_sack_blocks(const net::Packet& p) {
  for (std::uint8_t i = 0; i < p.tcp.sack_count; ++i) {
    std::uint64_t start = offset_of_seq(SeqNum{p.tcp.sack[i].start});
    std::uint64_t end = offset_of_seq(SeqNum{p.tcp.sack[i].end});
    if (end <= start || end <= acked_offset_) continue;
    start = std::max(start, acked_offset_);

    // Insert [start, end) into the merged scoreboard.
    auto it = sacked_.lower_bound(start);
    if (it != sacked_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= start) {
        start = prev->first;
        end = std::max(end, prev->second);
        it = prev;
      }
    }
    while (it != sacked_.end() && it->first <= end) {
      end = std::max(end, it->second);
      it = sacked_.erase(it);
    }
    sacked_.emplace(start, end);
  }
}

std::uint64_t TcpSender::sacked_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [start, end] : sacked_) {
    const std::uint64_t lo = std::max(start, acked_offset_);
    if (end > lo) total += end - lo;
  }
  return total;
}

std::optional<std::uint64_t> TcpSender::next_sack_hole(std::uint64_t from,
                                                       std::uint64_t until) const {
  std::uint64_t candidate = from;
  for (const auto& [start, end] : sacked_) {
    if (end <= candidate) continue;
    if (start > candidate) break;  // candidate sits in a hole before this block
    candidate = end;               // candidate was inside a SACKed range: skip it
  }
  if (candidate >= until) return std::nullopt;

  // RFC 6675 IsLost: a hole counts as lost only once >= DupThresh * MSS
  // bytes above it have been SACKed — anything less may simply still be in
  // flight, and retransmitting it would be spurious go-back-N.
  std::uint64_t sacked_above = 0;
  for (const auto& [start, end] : sacked_) {
    if (end > candidate) sacked_above += end - std::max(start, candidate);
  }
  if (sacked_above < 3ull * opt_.mss) return std::nullopt;
  return candidate;
}

void TcpSender::sack_recovery_send() {
  // RFC 6675-lite: pipe = bytes out - bytes SACKed; transmit (holes first,
  // then new data) while the pipe has room under cwnd.
  for (;;) {
    const std::uint64_t flight = flight_size_bytes();
    const std::uint64_t sacked = std::min(sacked_bytes(), flight);
    const std::uint64_t pipe = flight - sacked;
    const auto wnd = static_cast<std::uint64_t>(
        std::min(cwnd_, static_cast<double>(std::min(rwnd_, opt_.rwnd_limit_bytes))));
    if (pipe + opt_.mss > wnd) break;

    if (const auto hole = next_sack_hole(std::max(sack_retx_frontier_, acked_offset_),
                                         recover_offset_)) {
      const auto len = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(opt_.mss, recover_offset_ - *hole));
      if (!send_segment(*hole, len, /*retransmission=*/true)) return;
      sack_retx_frontier_ = *hole + len;
      continue;
    }
    // No hole left to repair: forward progress with new data if available.
    const std::uint64_t unsent = unlimited_ ? std::numeric_limits<std::uint64_t>::max()
                                            : (app_offset_ > sent_offset_
                                                   ? app_offset_ - sent_offset_
                                                   : 0);
    if (unsent == 0) break;
    const auto len = static_cast<std::uint32_t>(std::min<std::uint64_t>(opt_.mss, unsent));
    if (!send_segment(sent_offset_, len, sent_offset_ < highest_sent_)) return;
  }
}

void TcpSender::handle_new_ack(std::uint64_t ack_offset, const net::Packet& p) {
  const std::uint64_t bytes = ack_offset - acked_offset_;
  mib_.ThruBytesAcked += bytes;

  if (opt_.ecn) {
    // ECN feedback reaches the algorithm on every new ACK — including
    // inside recovery, where DCTCP keeps integrating its mark fraction.
    cc_->on_ecn_feedback(
        static_cast<std::uint32_t>(
            std::min<std::uint64_t>(bytes, std::numeric_limits<std::uint32_t>::max())),
        p.tcp.ece);
  }

  if (timed_segment_ && ack_offset > timed_segment_->first) {
    rtt_.add_sample(sim_.now() - timed_segment_->second);
    timed_segment_.reset();
    mib_.SmoothedRTT = rtt_.srtt();
    mib_.MinRTT = rtt_.min_rtt();
    mib_.CurRTO = rtt_.rto();
  }
  rtt_.reset_backoff();

  acked_offset_ = ack_offset;
  // Late ACKs after a go-back-N rewind may cover data beyond the rewound
  // send frontier; advance it so we never "re-send" acknowledged bytes.
  sent_offset_ = std::max(sent_offset_, acked_offset_);

  // Drop scoreboard state the cumulative ACK has overtaken.
  if (opt_.enable_sack && !sacked_.empty()) {
    for (auto it = sacked_.begin(); it != sacked_.end();) {
      if (it->second <= acked_offset_) {
        it = sacked_.erase(it);
      } else {
        ++it;
      }
    }
  }

  if (in_recovery_) {
    if (ack_offset >= recover_offset_) {
      // Full ACK: deflate to ssthresh and leave recovery (NewReno/SACK).
      set_cwnd_bytes(ssthresh_);
      in_recovery_ = false;
      dupacks_ = 0;
      sacked_.clear();
      sack_retx_frontier_ = acked_offset_;
    } else if (opt_.enable_sack) {
      // Partial ACK under SACK: the pipe algorithm decides what to send;
      // cwnd stays parked at ssthresh (no inflation/deflation dance).
      sack_retx_frontier_ = std::max(sack_retx_frontier_, acked_offset_);
      sack_recovery_send();
    } else {
      // Partial ACK: the next hole is lost too — retransmit it, deflate by
      // the amount acked, stay in recovery (RFC 6582).
      retransmit_head();
      set_cwnd_bytes(std::max(cwnd_ - static_cast<double>(bytes) +
                                  static_cast<double>(opt_.mss),
                              static_cast<double>(opt_.mss)));
    }
  } else {
    dupacks_ = 0;
    const bool was_slow_start = cc_->in_slow_start();
    cc_->on_ack(static_cast<std::uint32_t>(
        std::min<std::uint64_t>(bytes, std::numeric_limits<std::uint32_t>::max())));
    if (was_slow_start) {
      ++mib_.SlowStartSegments;
    } else {
      ++mib_.CongAvoidSegments;
    }
  }

  if (flight_size_bytes() == 0) {
    disarm_rto_timer();
  } else {
    arm_rto_timer();  // RFC 6298 5.3: restart on new data acked
  }
  maybe_send();
}

void TcpSender::handle_dup_ack() {
  ++dupacks_;
  if (!in_recovery_ && dupacks_ == 3) {
    cc_->on_fast_retransmit();  // sets ssthresh (and, for Tahoe, cwnd)
    ++mib_.FastRetran;
    ++mib_.CongestionSignals;
    retransmit_head();
    if (!cc_->use_fast_recovery()) {
      // Tahoe-style restart: the algorithm already collapsed cwnd; just
      // forget the dupack run and let slow-start rebuild the window.
      dupacks_ = 0;
    } else if (opt_.enable_sack) {
      // SACK recovery (RFC 6675-lite): park cwnd at ssthresh and let the
      // pipe estimate govern transmission — no window inflation.
      in_recovery_ = true;
      recover_offset_ = std::max(sent_offset_, highest_sent_);
      sack_retx_frontier_ = acked_offset_ + opt_.mss;  // head was just resent
      set_cwnd_bytes(ssthresh_);
      sack_recovery_send();
    } else {
      in_recovery_ = true;
      recover_offset_ = std::max(sent_offset_, highest_sent_);
      set_cwnd_bytes(ssthresh_ + 3.0 * static_cast<double>(opt_.mss));  // inflation
    }
    maybe_send();
  } else if (in_recovery_) {
    if (opt_.enable_sack) {
      sack_recovery_send();  // new SACK info may have opened pipe room
    } else {
      set_cwnd_bytes(cwnd_ + static_cast<double>(opt_.mss));
      maybe_send();
    }
  }
}

void TcpSender::retransmit_head() {
  const std::uint64_t outstanding = std::max(sent_offset_, highest_sent_) - acked_offset_;
  if (outstanding == 0) return;
  const auto len = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(opt_.mss, outstanding));
  (void)send_segment(acked_offset_, len, /*retransmission=*/true);
  arm_rto_timer();
}

void TcpSender::on_retransmission_timeout() {
  rto_timer_ = sim::EventId{};
  if (flight_size_bytes() == 0) return;

  ++mib_.Timeouts;
  ++mib_.CongestionSignals;
  cc_->on_retransmit_timeout();
  rtt_.backoff();
  mib_.CurRTO = rtt_.rto();
  in_recovery_ = false;
  dupacks_ = 0;
  timed_segment_.reset();
  sacked_.clear();  // RFC 6675 §5.1: the scoreboard is suspect after RTO
  sack_retx_frontier_ = acked_offset_;
  sent_offset_ = acked_offset_;  // go-back-N: everything outstanding is suspect
  arm_rto_timer();
  maybe_send();
}

void TcpSender::arm_rto_timer() {
  disarm_rto_timer();
  // Rescheduled on every ACK — the scheduler's O(1) cancel + inline
  // callback make this allocation-free, provided the closure stays small.
  const auto on_rto = [this] { on_retransmission_timeout(); };
  static_assert(sizeof(on_rto) <= sim::InlineCallback::kCapacity,
                "RTO callback must stay inline on the per-ACK hot path");
  rto_timer_ = sim_.in(rtt_.rto(), on_rto);
}

void TcpSender::disarm_rto_timer() {
  if (rto_timer_.valid()) {
    sim_.cancel(rto_timer_);
    rto_timer_ = sim::EventId{};
  }
}

double TcpSender::goodput_mbps(sim::Time t0, sim::Time t1) const {
  if (t1 <= t0) return 0.0;
  // Average goodput of the whole transfer window [t0, t1]; for time-resolved
  // goodput use a web100::PollingAgent over ThruBytesAcked.
  return static_cast<double>(acked_offset_) * 8.0 / (t1 - t0).to_seconds() / 1e6;
}

}  // namespace rss::tcp
