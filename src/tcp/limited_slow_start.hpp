#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string_view>

#include "tcp/reno.hpp"

namespace rss::tcp {

/// Limited Slow-Start (RFC 3742) — the era's IETF answer to the same burst
/// problem RSS attacks, included as the second baseline (DESIGN.md TAB-1).
///
/// Up to max_ssthresh the window grows exponentially as usual; beyond it
/// the per-ACK increment is MSS/K with K = ceil(cwnd / (0.5·max_ssthresh)),
/// capping growth at max_ssthresh/2 per RTT. Everything else is Reno.
class LimitedSlowStart final : public RenoCongestionControl {
 public:
  struct LssOptions {
    std::uint32_t max_ssthresh_segments{100};  ///< RFC 3742 suggested value
    Options reno{};
  };

  LimitedSlowStart() = default;
  explicit LimitedSlowStart(LssOptions opt)
      : RenoCongestionControl(opt.reno), lss_opt_{opt} {}

  void on_ack(std::uint32_t acked_bytes) override {
    CcHost& h = host();
    const auto mss = static_cast<double>(h.mss());
    if (!in_slow_start()) {
      h.set_cwnd_bytes(h.cwnd_bytes() + mss * mss / h.cwnd_bytes());
      return;
    }
    const double max_ssthresh = static_cast<double>(lss_opt_.max_ssthresh_segments) * mss;
    if (h.cwnd_bytes() <= max_ssthresh) {
      h.set_cwnd_bytes(h.cwnd_bytes() + std::min<double>(acked_bytes, mss));
    } else {
      const double k = std::ceil(h.cwnd_bytes() / (0.5 * max_ssthresh));
      h.set_cwnd_bytes(h.cwnd_bytes() + mss / k);
    }
  }

  [[nodiscard]] std::string_view name() const override { return "limited-slow-start"; }

 private:
  LssOptions lss_opt_{};
};

}  // namespace rss::tcp
