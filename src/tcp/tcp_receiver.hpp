#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/simulation.hpp"
#include "tcp/sequence.hpp"

namespace rss::tcp {

/// TCP receiver: cumulative acknowledgments with out-of-order reassembly
/// and the standard delayed-ACK policy (ACK every second full-sized
/// segment, or when the delayed-ACK timer fires; immediate duplicate ACK on
/// any out-of-order arrival or gap fill, which is what drives the sender's
/// fast retransmit).
class TcpReceiver {
 public:
  struct Options {
    std::uint32_t flow_id{1};
    std::uint32_t peer_node{0};          ///< where ACKs are sent
    std::uint32_t initial_seq{0};        ///< must match the sender's ISS
    std::uint32_t advertised_window{1u << 30};
    /// ACK after this many unacknowledged in-order arrivals (2 = RFC 1122).
    int ack_every{2};
    sim::Time delayed_ack_timeout{sim::Time::milliseconds(100)};
    /// Attach RFC 2018 SACK blocks (up to 3, most recent first) to every
    /// ACK while the reassembly buffer holds out-of-order data.
    bool enable_sack{false};
    /// Linux "quickack" mode: ACK the first N in-order segments
    /// immediately (no delaying), which is what 2.4 did while the
    /// connection ramped — it roughly doubles the early slow-start ACK
    /// clock. 0 disables.
    std::uint64_t quickack_segments{0};
    /// Echo CE marks back to the sender using the DCTCP discipline (RFC
    /// 8257 §3.2): every ACK carries the CE state of the data it covers,
    /// and a CE-state *change* forces an immediate ACK carrying the old
    /// state so the sender's mark accounting stays byte-accurate.
    bool ecn{false};
  };

  TcpReceiver(sim::Simulation& simulation, net::Node& node, Options options);

  TcpReceiver(const TcpReceiver&) = delete;
  TcpReceiver& operator=(const TcpReceiver&) = delete;

  [[nodiscard]] std::uint64_t bytes_received() const { return bytes_received_; }
  [[nodiscard]] std::uint64_t packets_received() const { return packets_received_; }
  [[nodiscard]] std::uint64_t out_of_order_packets() const { return out_of_order_; }
  [[nodiscard]] std::uint64_t duplicate_packets() const { return duplicates_; }
  [[nodiscard]] std::uint64_t acks_sent() const { return acks_sent_; }
  [[nodiscard]] std::uint64_t ce_received() const { return ce_received_; }
  [[nodiscard]] SeqNum rcv_nxt() const { return rcv_nxt_; }

 private:
  void on_packet(const net::Packet& p);
  void send_ack();
  void schedule_delayed_ack();
  void fill_sack_blocks(net::TcpHeader& header) const;

  sim::Simulation& sim_;
  net::Node& node_;
  Options opt_;

  SeqNum rcv_nxt_;
  /// Out-of-order segments: start seq (modular order) -> length. Stored
  /// with a comparator over SeqNum so reassembly is wrap-safe.
  struct SeqLess {
    bool operator()(SeqNum a, SeqNum b) const { return a < b; }
  };
  std::map<SeqNum, std::uint32_t, SeqLess> ooo_;

  std::uint64_t bytes_received_{0};
  std::uint64_t packets_received_{0};
  std::uint64_t out_of_order_{0};
  std::uint64_t duplicates_{0};
  std::uint64_t acks_sent_{0};
  std::uint64_t ce_received_{0};
  /// CE state of the most recent data arrival — the bit every outgoing ACK
  /// echoes while the ecn option is on (DCTCP state machine).
  bool ce_state_{false};
  int unacked_arrivals_{0};
  sim::EventId delack_timer_{};
  net::PacketUidSource uid_source_;
  /// Start of the most recently buffered out-of-order segment; its merged
  /// block goes first in the SACK list (RFC 2018 §4).
  std::optional<SeqNum> last_ooo_seq_;
};

}  // namespace rss::tcp
