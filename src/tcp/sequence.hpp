#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>

namespace rss::tcp {

/// 32-bit TCP sequence number with RFC 793 modular ("serial number")
/// comparison semantics: a < b iff the signed distance from a to b is
/// positive. Correct across the 2^32 wrap as long as compared values are
/// within 2^31 of each other — guaranteed by TCP's window limits.
class SeqNum {
 public:
  constexpr SeqNum() = default;
  constexpr explicit SeqNum(std::uint32_t raw) : raw_{raw} {}

  [[nodiscard]] constexpr std::uint32_t raw() const { return raw_; }

  [[nodiscard]] friend constexpr SeqNum operator+(SeqNum s, std::uint32_t bytes) {
    return SeqNum{s.raw_ + bytes};  // unsigned wrap is the intended modular add
  }
  [[nodiscard]] friend constexpr SeqNum operator-(SeqNum s, std::uint32_t bytes) {
    return SeqNum{s.raw_ - bytes};
  }

  /// Signed modular distance from `from` to `to` (positive if `to` is
  /// logically ahead). Callers use it for "bytes newly acked" deltas.
  [[nodiscard]] friend constexpr std::int32_t distance(SeqNum from, SeqNum to) {
    return static_cast<std::int32_t>(to.raw_ - from.raw_);
  }

  [[nodiscard]] friend constexpr bool operator==(SeqNum a, SeqNum b) { return a.raw_ == b.raw_; }
  [[nodiscard]] friend constexpr bool operator!=(SeqNum a, SeqNum b) { return a.raw_ != b.raw_; }
  [[nodiscard]] friend constexpr bool operator<(SeqNum a, SeqNum b) {
    return distance(a, b) > 0;
  }
  [[nodiscard]] friend constexpr bool operator>(SeqNum a, SeqNum b) { return b < a; }
  [[nodiscard]] friend constexpr bool operator<=(SeqNum a, SeqNum b) { return !(b < a); }
  [[nodiscard]] friend constexpr bool operator>=(SeqNum a, SeqNum b) { return !(a < b); }

 private:
  std::uint32_t raw_{0};
};

std::ostream& operator<<(std::ostream& os, SeqNum s);

}  // namespace rss::tcp
