// EXT-ZN — the paper's §3 tuning procedure, reproduced end to end:
//
//   1. Ziegler–Nichols gain ramp on an analytic integrator-with-dead-time
//      plant, checked against the closed-form critical point,
//   2. the same procedure simulation-in-the-loop on the real WAN path
//      (the plant is the NIC IFQ driven by the full TCP state machine),
//   3. the relay (Åström–Hägglund) experiment as an independent estimate,
//   4. validation: run RSS with the sim-tuned paper-rule gains and confirm
//      it is stall-free at high utilization.

#include <cmath>
#include <cstdio>

#include "control/plant.hpp"
#include "control/relay_tuner.hpp"
#include "control/ziegler_nichols.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/tuning.hpp"
#include "scenario/wan_path.hpp"

using namespace rss;
using namespace rss::sim::literals;

int main() {
  std::printf("EXT-ZN: Ziegler-Nichols tuning procedure (paper §3)\n\n");
  bool ok = true;

  // 1. Analytic check: K/s e^{-Ls} with K=1, L=0.25 -> Kc = pi/(2KL), Tc = 4L.
  {
    const control::ZieglerNicholsTuner tuner;
    const auto r = tuner.tune([](double kp) {
      control::IntegratorPlant plant{1.0, 0.25};
      return control::run_p_control_experiment(plant, kp, 1.0, 60.0, 0.005);
    });
    const double kc_th = M_PI / 0.5, tc_th = 1.0;
    if (r) {
      std::printf("analytic plant : Kc %6.2f (theory %5.2f)  Tc %5.2f s (theory %4.2f) "
                  " [%d experiments]\n",
                  r->kc, kc_th, r->tc, tc_th, tuner.experiments_run());
      ok = ok && std::abs(r->kc - kc_th) < 0.5 * kc_th && std::abs(r->tc - tc_th) < 0.4;
    } else {
      std::printf("analytic plant : NO RESULT\n");
      ok = false;
    }
  }

  // 2a. Simulation in the loop with the event-driven (per-ACK) controller:
  //     the loop has no dead time (the IFQ is local), so it is
  //     unconditionally stable and Z-N finds nothing. This is a real
  //     finding of the reproduction, worth printing.
  {
    scenario::TuneOptions opt;
    opt.duration = 15_s;
    opt.controller_period = sim::Time::zero();  // per-ACK
    const auto r = scenario::tune_restricted_slow_start(opt);
    std::printf("TCP-in-loop (per-ACK)     : %s\n",
                r ? "unexpected oscillation?!" : "no Kc — loop unconditionally stable (expected)");
    ok = ok && !r;
  }

  // 2b. Simulation in the loop with the paper's kernel-timer controller
  //     (HZ=100 sample-and-hold): the hold adds the delay; Z-N finds the
  //     boundary. Expect Tc ~ 2 sample periods (sampled bang-bang cycle).
  control::TuningResult sim_tuned{};
  {
    scenario::TuneOptions opt;
    opt.duration = 15_s;
    const auto r = scenario::tune_restricted_slow_start(opt);
    if (r) {
      sim_tuned = *r;
      const auto g = r->paper_rule();
      std::printf("TCP-in-loop (10 ms jiffy) : Kc %6.3f  Tc %6.3f s  ->  Kp %5.3f  "
                  "Ti %6.3f s  Td %6.3f s\n",
                  r->kc, r->tc, g.kp, g.ti, g.td);
    } else {
      std::printf("TCP-in-loop (10 ms jiffy) : NO RESULT\n");
      ok = false;
    }
  }

  // 3. Relay cross-check on the analytic plant.
  {
    control::RelayTuner::Options opt;
    opt.relay_amplitude = 1.0;
    const control::RelayTuner tuner{opt};
    const auto r = tuner.tune([](const std::function<double(double)>& relay) {
      control::IntegratorPlant plant{1.0, 0.25};
      std::vector<control::ResponseSample> resp;
      double y = 0.0;
      for (double t = 0.0; t < 40.0; t += 0.002) {
        y = plant.step(relay(1.0 - y), 0.002);
        resp.push_back({t + 0.002, y});
      }
      return resp;
    });
    if (r) {
      std::printf("relay check    : Kc %6.2f  Tc %5.2f s (same plant; methods agree to ~2x)\n",
                  r->kc, r->tc);
    } else {
      std::printf("relay check    : NO RESULT\n");
      ok = false;
    }
  }

  // 4. Deploy the sim-tuned gains under the same kernel-timer controller
  //    and validate on the paper path.
  if (sim_tuned.tc > 0.0) {
    core::RestrictedSlowStart::Options rss_opt;
    rss_opt.gains = sim_tuned.paper_rule();
    rss_opt.sample_period = 10_ms;
    scenario::WanPath::Config cfg;
    cfg.enable_web100 = false;
    scenario::WanPath wan{cfg, scenario::make_rss_factory(rss_opt)};
    wan.run_bulk_transfer(0_s, 25_s);
    const double goodput = wan.goodput_mbps(0_s, 25_s);
    const auto stalls = wan.sender().mib().SendStall;
    std::printf("deploy check   : sim-tuned gains -> %.1f Mb/s, %llu stalls\n", goodput,
                static_cast<unsigned long long>(stalls));
    ok = ok && goodput > 70.0 && stalls == 0;
  }

  std::printf("\ntuning pipeline: %s\n", ok ? "REPRODUCED" : "NOT reproduced");
  return ok ? 0 : 1;
}
