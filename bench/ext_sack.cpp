// EXT-SACK — loss-recovery machinery comparison: NewReno vs SACK
// (RFC 2018 + RFC 6675-lite pipe algorithm), with and without Restricted
// Slow-Start, under two loss regimes on the paper path:
//   (a) one 100 ms burst of 20% loss — many holes in one window, the case
//       SACK exists for;
//   (b) continuous 1% random loss — the steady-state regime where both
//       are window-limited by the loss rate.

#include <cstdio>
#include <string>
#include <vector>

#include "scenario/cc_factories.hpp"
#include "scenario/sweep.hpp"
#include "scenario/wan_path.hpp"

using namespace rss;
using namespace rss::sim::literals;

namespace {

struct Cell {
  double goodput{0};
  unsigned long long retrans{0};
  unsigned long long timeouts{0};
};

Cell run(bool sack, bool rss, bool burst) {
  scenario::WanPath::Config cfg;
  cfg.enable_web100 = false;
  cfg.path.ifq_capacity_packets = rss ? 100 : 100000;  // stock path for pure-recovery runs
  cfg.sender.enable_sack = sack;
  cfg.receiver.enable_sack = sack;
  scenario::WanPath wan{cfg, rss ? scenario::make_rss_factory()
                                 : scenario::make_reno_factory()};
  if (burst) {
    wan.simulation().at(3_s, [&] { wan.nic().link()->set_loss_rate(0.2, sim::Rng{11}); });
    wan.simulation().at(3100_ms,
                        [&] { wan.nic().link()->set_loss_rate(0.0, sim::Rng{11}); });
  } else {
    wan.nic().link()->set_loss_rate(0.01, sim::Rng{13});
  }
  const sim::Time horizon = 12_s;
  wan.run_bulk_transfer(sim::Time::zero(), horizon);
  return {wan.goodput_mbps(sim::Time::zero(), horizon),
          static_cast<unsigned long long>(wan.sender().mib().PktsRetrans),
          static_cast<unsigned long long>(wan.sender().mib().Timeouts)};
}

}  // namespace

int main() {
  struct Job {
    const char* label;
    bool sack, rss, burst;
  };
  const std::vector<Job> jobs{
      {"burst | newreno", false, false, true}, {"burst | sack", true, false, true},
      {"burst | rss+newreno", false, true, true}, {"burst | rss+sack", true, true, true},
      {"p=1%  | newreno", false, false, false}, {"p=1%  | sack", true, false, false},
  };
  std::vector<Cell> cells(jobs.size());
  scenario::parallel_sweep(jobs.size(), [&](std::size_t i) {
    cells[i] = run(jobs[i].sack, jobs[i].rss, jobs[i].burst);
  });

  std::printf("EXT-SACK: loss recovery machinery, 12 s runs on the paper path\n");
  std::printf("(burst = 100 ms of 20%% loss at t=3 s; p=1%% = continuous random loss)\n\n");
  std::printf("%-22s %14s %10s %10s\n", "scenario", "goodput Mb/s", "retrans", "timeouts");
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    std::printf("%-22s %14.1f %10llu %10llu\n", jobs[i].label, cells[i].goodput,
                cells[i].retrans, cells[i].timeouts);
  }

  // Note the rss rows run on the paper's IFQ-100 path while the pure-
  // recovery rows use a huge IFQ, so compare within each pair, not across.
  const bool shape = cells[1].goodput > cells[0].goodput &&  // sack wins the burst case
                     cells[3].goodput > cells[2].goodput &&  // ...with RSS too
                     cells[5].retrans <= cells[4].retrans;   // never retransmits more
  std::printf("\nshape: SACK wins multi-hole recovery, composes with RSS, and never "
              "retransmits more than NewReno: %s\n",
              shape ? "yes" : "NO");
  return shape ? 0 : 1;
}
