// EXT-SACK — loss-recovery machinery: NewReno vs SACK, with and without RSS.
//
// The experiment itself lives in src/artifacts/experiments/ext_sack.cpp and
// is shared with the rss_artifacts driver (--run/--write-goldens/--check);
// this binary is the thin stdout front end. Exit code: 0 iff the paper's
// shape reproduced.

#include "artifacts/runner.hpp"

int main() { return rss::artifacts::run_experiment_main("ext_sack"); }
