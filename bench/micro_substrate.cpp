// MICRO — microbenchmarks of the simulation substrate: event-scheduler
// throughput on both queue backends, batched event trains, queue
// operations, PID controller updates and a full end-to-end simulation
// (events per wall-second). These bound how large a parameter sweep the
// harness can afford, and they are where backend decisions (see README
// "Choosing a QueueBackend") get their numbers.
//
// Two entry points:
//   (default)   google-benchmark CLI — full microbenchmark suite.
//   --smoke     CI mode: run the packet-dense WAN scenario, the 3-hop
//               parking-lot scenario and a scheduler churn loop on both
//               backends for a few seconds and write BENCH_scheduler.json
//               (events/sec per scenario and backend), so the perf
//               trajectory of the event core is recorded per commit.
//               Options: --out <path> (default BENCH_scheduler.json),
//               --seconds <n> (approx budget per backend, default 2).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "control/pid.hpp"
#include "net/queue.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/presets.hpp"
#include "scenario/wan_path.hpp"
#include "sim/scheduler.hpp"

using namespace rss;
using namespace rss::sim::literals;

namespace {

sim::QueueBackend backend_arg(std::int64_t v) {
  return v == 0 ? sim::QueueBackend::kBinaryHeap : sim::QueueBackend::kCalendarQueue;
}

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto backend = backend_arg(state.range(1));
  for (auto _ : state) {
    sim::Scheduler s{backend};
    for (std::size_t i = 0; i < n; ++i) {
      s.schedule_at(sim::Time::nanoseconds(static_cast<std::int64_t>(i % 1000)), [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerScheduleRun)
    ->ArgsProduct({{1000, 100000}, {0, 1}})
    ->ArgNames({"n", "calendar"});

void BM_SchedulerCancelHeavy(benchmark::State& state) {
  // The TCP RTO pattern: schedule, cancel, reschedule. With the slot arena
  // this is also the allocation-free path the ISSUE targets — the arena
  // must stay at one slot for the whole loop.
  const auto backend = backend_arg(state.range(0));
  for (auto _ : state) {
    sim::Scheduler s{backend};
    sim::EventId pending{};
    for (int i = 0; i < 10000; ++i) {
      if (pending.valid()) s.cancel(pending);
      pending = s.schedule_at(sim::Time::nanoseconds(i + 1), [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SchedulerCancelHeavy)->Arg(0)->Arg(1)->ArgName("calendar");

void BM_SchedulerTrain(benchmark::State& state) {
  // Batched serialization bursts: one train of `n` firings versus the `n`
  // chained one-shots it replaces (see BM_SchedulerScheduleRun for the
  // unbatched cost of the same event count).
  const auto n = static_cast<std::uint64_t>(state.range(0));
  const auto backend = backend_arg(state.range(1));
  for (auto _ : state) {
    sim::Scheduler s{backend};
    std::uint64_t fired = 0;
    s.schedule_train(sim::Time::nanoseconds(1), sim::Time::nanoseconds(120), n,
                     [&fired] { ++fired; });
    s.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerTrain)
    ->ArgsProduct({{1000, 100000}, {0, 1}})
    ->ArgNames({"n", "calendar"});

void BM_DropTailQueueEnqueueDequeue(benchmark::State& state) {
  net::DropTailQueue q{1024};
  net::Packet p;
  p.payload_bytes = 1460;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.enqueue(p));
    benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DropTailQueueEnqueueDequeue);

void BM_RedQueueEnqueueDequeue(benchmark::State& state) {
  net::RedQueue q{net::RedQueue::Options{}, sim::Rng{1}};
  net::Packet p;
  p.payload_bytes = 1460;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.enqueue(p));
    benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RedQueueEnqueueDequeue);

void BM_PidUpdate(benchmark::State& state) {
  control::PidController pid{control::PidGains{0.12, 0.3, 0.1},
                             control::OutputLimits{-1.0, 1.0}};
  double e = 10.0;
  for (auto _ : state) {
    e = -e;
    benchmark::DoNotOptimize(pid.update(e, 1e-3));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PidUpdate);

scenario::WanPath::Config packet_dense_config(sim::QueueBackend backend) {
  scenario::WanPath::Config cfg;
  cfg.enable_web100 = false;
  cfg.backend = backend;
  return cfg;
}

void BM_FullWanSimulation(benchmark::State& state) {
  // End-to-end cost of one simulated second of the canonical path under
  // Restricted Slow-Start (~8.5k data packets + ACKs + timers) — the
  // packet-dense scenario backend decisions are made on.
  const auto backend = backend_arg(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    scenario::WanPath wan{packet_dense_config(backend), scenario::make_rss_factory()};
    wan.run_bulk_transfer(sim::Time::zero(), 1_s);
    events += wan.simulation().scheduler().events_executed();
    benchmark::DoNotOptimize(wan.sender().bytes_acked());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events_per_sec"] =
      benchmark::Counter(static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullWanSimulation)->Arg(0)->Arg(1)->ArgName("calendar")->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --smoke: the CI leg. No google-benchmark machinery — plain wall-clock
// loops whose results land in a small JSON file the workflow uploads.
// ---------------------------------------------------------------------------

struct SmokeResult {
  std::uint64_t events{0};
  double seconds{0.0};
  [[nodiscard]] double events_per_sec() const {
    return seconds > 0 ? static_cast<double>(events) / seconds : 0.0;
  }
};

/// Repeat 1-simulated-second packet-dense WAN runs until the wall budget is
/// spent. Events/sec here is the headline number: it is dominated by
/// schedule/pop of packet serializations, deliveries, ACK timers — the
/// exact mix production sweeps pay for.
SmokeResult smoke_wan(sim::QueueBackend backend, double budget_seconds) {
  SmokeResult r;
  const auto t0 = std::chrono::steady_clock::now();
  while (r.seconds < budget_seconds) {
    scenario::WanPath wan{packet_dense_config(backend), scenario::make_rss_factory()};
    wan.run_bulk_transfer(sim::Time::zero(), 1_s);
    r.events += wan.simulation().scheduler().events_executed();
    r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  }
  return r;
}

/// Multi-bottleneck forwarding mix: 1 simulated second of the 3-hop
/// parking lot (end-to-end flow + per-hop cross traffic, heterogeneous
/// RTTs) built through ScenarioBuilder. Adds transit forwarding and
/// several contended router queues to the event mix — the load profile of
/// the fairness-study sweeps, which the WAN scenario doesn't exercise.
SmokeResult smoke_parkinglot(sim::QueueBackend backend, double budget_seconds) {
  SmokeResult r;
  const auto t0 = std::chrono::steady_clock::now();
  while (r.seconds < budget_seconds) {
    scenario::ParkingLot::Config cfg;
    cfg.backend = backend;
    cfg.access_rate = net::DataRate::mbps(100);
    scenario::ParkingLot lot{cfg, scenario::uniform_cc(scenario::make_rss_factory())};
    lot.start_all(sim::Time::zero());
    lot.simulation().run_until(1_s);
    r.events += lot.simulation().scheduler().events_executed();
    r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  }
  return r;
}

/// The partitioned-execution leg: an N-dumbbell ScaleMesh run under the
/// unified ExecutionPolicy, once with "partitions": 1 and once with
/// "partitions": 4 (threads auto — worker threads where the hardware has
/// them, the inline single-worker round loop where it doesn't). The two
/// runs execute the identical spec and the identical event count (parity
/// is a tested invariant), so events/sec isolates what partitioning buys:
/// four small per-partition queues instead of one large one, per-partition
/// backend auto-selection, window-sized working sets, and — on multicore —
/// actual parallelism. bench_scale regressions therefore catch both engine
/// slowdowns and partitioning-quality losses.
SmokeResult smoke_scale(std::size_t partitions, double budget_seconds) {
  SmokeResult r;
  const auto t0 = std::chrono::steady_clock::now();
  while (r.seconds < budget_seconds) {
    scenario::ScaleMesh::Config cfg;
    cfg.segments = 4;
    cfg.flows_per_segment = 25;
    cfg.cross_flows_per_segment = 5;
    scenario::TopologySpec spec = scenario::ScaleMesh::make_spec(cfg);
    spec.execution.partitions = partitions;
    auto s = scenario::ScenarioBuilder{spec}.build(scenario::make_reno_factory());
    for (std::size_t i = 0; i < spec.flows.size(); ++i)
      s->start_flow(i, sim::Time::zero());
    s->run_until(1_s);
    r.events += s->events_executed();
    r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  }
  return r;
}

/// The hybrid-engine leg: the 3-hop parking lot under heavy per-hop cross
/// traffic (8 Reno aggregates per hop), once all-packet and once with the
/// cross traffic fluidized into rate-ODE aggregates. Both variants simulate
/// the same horizon, so the wall-time-per-simulated-second ratio printed by
/// run_smoke is the speedup fluidization buys on cross-traffic studies;
/// events/sec stays the regression-gated engine-throughput metric for each
/// variant.
SmokeResult smoke_parkinglot_fluid(bool fluid, double budget_seconds, double* wall_per_sim) {
  SmokeResult r;
  constexpr std::int64_t kHorizonSeconds = 20;
  std::uint64_t sim_seconds = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (r.seconds < budget_seconds) {
    scenario::ParkingLot::Config cfg;
    cfg.cross_flows_per_hop = 8;
    cfg.access_rate = net::DataRate::mbps(100);
    cfg.fluid_cross = fluid;
    scenario::ParkingLot lot{cfg, scenario::uniform_cc(scenario::make_reno_factory())};
    lot.start_all(sim::Time::zero());
    lot.simulation().run_until(sim::Time::seconds(kHorizonSeconds));
    r.events += lot.simulation().scheduler().events_executed();
    sim_seconds += static_cast<std::uint64_t>(kHorizonSeconds);
    r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  }
  if (wall_per_sim != nullptr && sim_seconds > 0) {
    *wall_per_sim = r.seconds / static_cast<double>(sim_seconds);
  }
  return r;
}

/// Partitioned fluid integration: the ScaleMesh preset shape with every
/// segment-local flow fluidized (trunk cross traffic stays packet), at 1
/// and 4 partitions. Exercises the per-partition FluidDriver tick on top
/// of the partitioned engine — regressions here catch fluid-tick overhead
/// and partition-local integration slowdowns that the all-packet
/// scale_mesh leg can't see.
SmokeResult smoke_scale_fluid(std::size_t partitions, double budget_seconds) {
  SmokeResult r;
  const auto t0 = std::chrono::steady_clock::now();
  while (r.seconds < budget_seconds) {
    scenario::ScaleMesh::Config cfg;
    cfg.segments = 4;
    cfg.flows_per_segment = 25;
    cfg.cross_flows_per_segment = 5;
    cfg.fluid_local = true;
    scenario::TopologySpec spec = scenario::ScaleMesh::make_spec(cfg);
    spec.execution.partitions = partitions;
    auto s = scenario::ScenarioBuilder{spec}.build(scenario::make_reno_factory());
    for (std::size_t i = 0; i < spec.flows.size(); ++i)
      s->start_flow(i, sim::Time::zero());
    s->run_until(1_s);
    r.events += s->events_executed();
    r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  }
  return r;
}

/// Pure scheduler churn: the schedule/cancel/reschedule storm of the
/// per-ACK RTO path, plus trains, with no protocol work diluting it.
SmokeResult smoke_churn(sim::QueueBackend backend, double budget_seconds) {
  SmokeResult r;
  const auto t0 = std::chrono::steady_clock::now();
  while (r.seconds < budget_seconds) {
    sim::Scheduler s{backend};
    sim::EventId rto{};
    std::uint64_t fired = 0;
    for (int i = 0; i < 20'000; ++i) {
      if (rto.valid()) s.cancel(rto);
      rto = s.schedule_at(sim::Time::nanoseconds(i * 7 + 1), [] {});
      if (i % 64 == 0) {
        s.schedule_train(sim::Time::nanoseconds(i * 7 + 2), sim::Time::nanoseconds(120), 32,
                         [&fired] { ++fired; });
      }
    }
    s.run();
    r.events += s.events_executed();
    r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  }
  return r;
}

void write_json_entry(std::ostream& os, std::string_view scenario, std::string_view backend,
                      const SmokeResult& res, bool trailing_comma) {
  os << "    {\"scenario\": \"" << scenario << "\", \"backend\": \"" << backend
     << "\", \"events\": " << res.events << ", \"wall_seconds\": " << res.seconds
     << ", \"events_per_sec\": " << static_cast<std::uint64_t>(res.events_per_sec()) << "}"
     << (trailing_comma ? "," : "") << "\n";
}

int run_smoke(const std::vector<std::string>& args) {
  std::string out_path = "BENCH_scheduler.json";
  double budget = 2.0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--out" && i + 1 < args.size()) out_path = args[++i];
    if (args[i] == "--seconds" && i + 1 < args.size()) budget = std::stod(args[++i]);
  }

  struct Row {
    std::string_view scenario;
    std::string_view backend;
    SmokeResult result;
  };
  std::vector<Row> rows;
  for (const auto backend : {sim::QueueBackend::kBinaryHeap, sim::QueueBackend::kCalendarQueue}) {
    const std::string_view name =
        backend == sim::QueueBackend::kBinaryHeap ? "binary_heap" : "calendar_queue";
    rows.push_back({"wan_path_packet_dense", name, smoke_wan(backend, budget)});
    rows.push_back({"parking_lot_3hop", name, smoke_parkinglot(backend, budget)});
    rows.push_back({"scheduler_churn", name, smoke_churn(backend, budget)});
  }
  // bench_scale: the partitioned engine on the ScaleMesh preset shape. The
  // "backend" column carries the partition count — the queue backend itself
  // is the ExecutionPolicy's auto choice, which is part of what's measured.
  rows.push_back({"scale_mesh", "partitions_1", smoke_scale(1, budget)});
  rows.push_back({"scale_mesh", "partitions_4", smoke_scale(4, budget)});
  const double serial = rows[rows.size() - 2].result.events_per_sec();
  const double parted = rows.back().result.events_per_sec();
  if (serial > 0) {
    std::cout << "scale_mesh partitions_4 / partitions_1 speedup: "
              << parted / serial << "x\n";
  }
  // bench_fluid: the hybrid fluid/packet engine. The headline number is the
  // wall-time ratio — how much faster the same simulated horizon completes
  // once the heavy cross traffic is fluidized.
  double packet_wall_per_sim = 0.0;
  double fluid_wall_per_sim = 0.0;
  rows.push_back({"parking_lot_3hop_fluid", "packet_cross",
                  smoke_parkinglot_fluid(false, budget, &packet_wall_per_sim)});
  rows.push_back({"parking_lot_3hop_fluid", "fluid_cross",
                  smoke_parkinglot_fluid(true, budget, &fluid_wall_per_sim)});
  if (fluid_wall_per_sim > 0) {
    std::cout << "parking_lot_3hop_fluid packet_cross / fluid_cross wall-time speedup: "
              << packet_wall_per_sim / fluid_wall_per_sim << "x\n";
  }
  rows.push_back({"scale_fluid", "partitions_1", smoke_scale_fluid(1, budget)});
  rows.push_back({"scale_fluid", "partitions_4", smoke_scale_fluid(4, budget)});

  std::ofstream out{out_path};
  if (!out) {
    std::cerr << "bench_micro_substrate: cannot write " << out_path << "\n";
    return 1;
  }
  out << "{\n  \"benchmark\": \"scheduler_smoke\",\n  \"results\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    write_json_entry(out, rows[i].scenario, rows[i].backend, rows[i].result,
                     i + 1 < rows.size());
  }
  out << "  ]\n}\n";

  for (const auto& row : rows) {
    std::cout << row.scenario << " / " << row.backend << ": "
              << static_cast<std::uint64_t>(row.result.events_per_sec()) << " events/sec ("
              << row.result.events << " events in " << row.result.seconds << "s)\n";
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view{argv[i]} == "--smoke") {
      smoke = true;
    } else {
      args.emplace_back(argv[i]);
    }
  }
  if (smoke) return run_smoke(args);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
