// MICRO — google-benchmark microbenchmarks of the simulation substrate:
// event-scheduler throughput, queue operations, PID controller updates and
// a full end-to-end simulation (events per wall-second). These bound how
// large a parameter sweep the harness can afford.

#include <benchmark/benchmark.h>

#include <memory>

#include "control/pid.hpp"
#include "net/queue.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/wan_path.hpp"
#include "sim/scheduler.hpp"

using namespace rss;
using namespace rss::sim::literals;

namespace {

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler s;
    for (std::size_t i = 0; i < n; ++i) {
      s.schedule_at(sim::Time::nanoseconds(static_cast<std::int64_t>(i % 1000)), [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1000)->Arg(100000);

void BM_SchedulerCancelHeavy(benchmark::State& state) {
  // The TCP RTO pattern: schedule, cancel, reschedule.
  for (auto _ : state) {
    sim::Scheduler s;
    sim::EventId pending{};
    for (int i = 0; i < 10000; ++i) {
      if (pending.valid()) s.cancel(pending);
      pending = s.schedule_at(sim::Time::nanoseconds(i + 1), [] {});
    }
    s.run();
    benchmark::DoNotOptimize(s.events_executed());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SchedulerCancelHeavy);

void BM_DropTailQueueEnqueueDequeue(benchmark::State& state) {
  net::DropTailQueue q{1024};
  net::Packet p;
  p.payload_bytes = 1460;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.enqueue(p));
    benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DropTailQueueEnqueueDequeue);

void BM_RedQueueEnqueueDequeue(benchmark::State& state) {
  net::RedQueue q{net::RedQueue::Options{}, sim::Rng{1}};
  net::Packet p;
  p.payload_bytes = 1460;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.enqueue(p));
    benchmark::DoNotOptimize(q.dequeue());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_RedQueueEnqueueDequeue);

void BM_PidUpdate(benchmark::State& state) {
  control::PidController pid{control::PidGains{0.12, 0.3, 0.1},
                             control::OutputLimits{-1.0, 1.0}};
  double e = 10.0;
  for (auto _ : state) {
    e = -e;
    benchmark::DoNotOptimize(pid.update(e, 1e-3));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PidUpdate);

void BM_FullWanSimulation(benchmark::State& state) {
  // End-to-end cost of one simulated second of the canonical path under
  // Restricted Slow-Start (~8.5k data packets + ACKs + timers).
  for (auto _ : state) {
    scenario::WanPath::Config cfg;
    cfg.enable_web100 = false;
    scenario::WanPath wan{cfg, scenario::make_rss_factory()};
    wan.run_bulk_transfer(sim::Time::zero(), 1_s);
    benchmark::DoNotOptimize(wan.sender().bytes_acked());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FullWanSimulation)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
