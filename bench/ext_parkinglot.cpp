// EXT-PARKINGLOT — multi-bottleneck parking-lot fairness with
// heterogeneous per-hop RTTs.
//
// The experiment itself lives in src/artifacts/experiments/ext_parkinglot.cpp
// and is shared with the rss_artifacts driver (--run/--write-goldens/--check);
// this binary is the thin stdout front end. Exit code: 0 iff the expected
// shape reproduced.

#include "artifacts/runner.hpp"

int main() { return rss::artifacts::run_experiment_main("ext_parkinglot"); }
