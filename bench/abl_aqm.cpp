// ABL-AQM — router queue-discipline ablation: tail-drop vs RED,
// orthogonality to RSS's host-side fix.
//
// The experiment itself lives in src/artifacts/experiments/abl_aqm.cpp and
// is shared with the rss_artifacts driver (--run/--write-goldens/--check);
// this binary is the thin stdout front end. Exit code: 0 iff the paper's
// shape reproduced.

#include "artifacts/runner.hpp"

int main() { return rss::artifacts::run_experiment_main("abl_aqm"); }
