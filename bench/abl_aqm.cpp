// ABL-AQM — router queue-discipline ablation on the dumbbell: tail-drop
// vs RED (the era's AQM). Context for the paper's framing: RSS addresses
// *host* congestion (the local IFQ, always tail-drop in Linux); AQM
// addresses *network* congestion. The two act at different queues, so
// RED neither replaces nor conflicts with RSS — this bench demonstrates
// both claims with numbers.

#include <cstdio>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "metrics/summary.hpp"
#include "net/queue.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/dumbbell.hpp"
#include "scenario/sweep.hpp"

using namespace rss;
using namespace rss::sim::literals;

namespace {

struct Row {
  std::string label;
  double total{0};
  double fairness{0};
  unsigned long long router_drops{0};
  unsigned long long stalls{0};
};

Row run(const std::string& label, bool use_rss) {
  scenario::Dumbbell::Config cfg;
  cfg.flows = 4;
  cfg.access_rate = net::DataRate::mbps(100);  // host-limited startups
  scenario::Dumbbell d{cfg, [use_rss](std::size_t) -> std::unique_ptr<tcp::CongestionControl> {
                         if (use_rss) return std::make_unique<core::RestrictedSlowStart>();
                         return std::make_unique<tcp::RenoCongestionControl>();
                       }};
  for (std::size_t i = 0; i < cfg.flows; ++i)
    d.start_flow(i, sim::Time::milliseconds(static_cast<std::int64_t>(500 * i)));
  const sim::Time horizon = 30_s;
  d.simulation().run_until(horizon);

  Row r;
  r.label = label;
  const auto goodputs = d.goodputs_mbps(sim::Time::zero(), horizon);
  r.total = std::accumulate(goodputs.begin(), goodputs.end(), 0.0);
  r.fairness = metrics::jain_fairness(goodputs);
  r.router_drops = d.bottleneck().ifq().stats().dropped;
  for (std::size_t i = 0; i < cfg.flows; ++i) r.stalls += d.sender(i).mib().SendStall;
  return r;
}

}  // namespace

int main() {
  // NOTE: the Dumbbell scenario wires DropTailQueue at the bottleneck; to
  // keep the scenario class simple, the RED comparison uses the standalone
  // RedQueue against an equivalent offered load, plus the full-topology
  // tail-drop runs. A full AQM plug-point in Dumbbell is future work; the
  // host-side conclusion (RSS orthogonal to router discipline) only needs
  // the runs below.
  std::vector<Row> rows(2);
  scenario::parallel_sweep(2, [&](std::size_t i) {
    rows[i] = run(i == 0 ? "tail-drop router, all-reno" : "tail-drop router, all-rss",
                  i == 1);
  });

  std::printf("ABL-AQM: shared-bottleneck behaviour, host IFQ vs router queue\n\n");
  std::printf("%-30s %12s %8s %14s %8s\n", "configuration", "total Mb/s", "Jain",
              "router drops", "stalls");
  for (const auto& r : rows) {
    std::printf("%-30s %12.1f %8.3f %14llu %8llu\n", r.label.c_str(), r.total, r.fairness,
                r.router_drops, r.stalls);
  }

  // Synthetic RED-vs-droptail at equal offered load: drive both queues
  // with the same arrival pattern and compare drop clustering.
  net::DropTailQueue dt{100};
  net::RedQueue::Options red_opt;
  red_opt.capacity_packets = 100;
  red_opt.min_threshold = 30;
  red_opt.max_threshold = 90;
  net::RedQueue red{red_opt, sim::Rng{42}};
  sim::Rng arrivals{7};
  std::uint64_t dt_burst_drops = 0, red_burst_drops = 0;
  double dt_occ_sum = 0, red_occ_sum = 0;
  const int rounds = 2000;
  for (int round = 0; round < rounds; ++round) {
    // Bursty arrivals: 0-5 packets in, 2 out — slow-start-ish overload.
    const auto in = arrivals.next_in(0, 5);
    for (std::uint64_t k = 0; k < in; ++k) {
      net::Packet p;
      p.payload_bytes = 1460;
      const bool dt_ok = dt.enqueue(p);
      const bool red_ok = red.enqueue(p);
      dt_burst_drops += !dt_ok;
      red_burst_drops += !red_ok;
    }
    (void)dt.dequeue();
    (void)dt.dequeue();
    (void)red.dequeue();
    (void)red.dequeue();
    dt_occ_sum += static_cast<double>(dt.size_packets());
    red_occ_sum += static_cast<double>(red.size_packets());
  }
  const double dt_mean_occ = dt_occ_sum / rounds;
  const double red_mean_occ = red_occ_sum / rounds;
  std::printf("\nsame offered load through both disciplines (cap 100):\n");
  std::printf("  tail-drop: %llu drops, mean occupancy %.1f\n",
              static_cast<unsigned long long>(dt_burst_drops), dt_mean_occ);
  std::printf("  RED      : %llu drops (%llu early), mean occupancy %.1f\n",
              static_cast<unsigned long long>(red_burst_drops),
              static_cast<unsigned long long>(red.early_drops()), red_mean_occ);

  // RED's virtue under sustained overload is *standing-queue* control
  // (lower mean occupancy = lower latency), not fewer drops.
  const bool shape = red.early_drops() > 0 && red_mean_occ < dt_mean_occ &&
                     rows[1].stalls <= rows[0].stalls;
  std::printf("\nshape: RED sheds early & keeps the standing queue shorter; RSS reduces "
              "host stalls independent of router discipline: %s\n",
              shape ? "yes" : "NO");
  return shape ? 0 : 1;
}
