// ABL-IFQ — the paper's §2 motivation: "there have been proposals to
// increase the size of these soft components... deployment revealed that
// still a considerable amount of available bandwidth goes unutilized.
// Also, increasing the size of the soft components increases the memory
// usage."
//
// Sweep the IFQ capacity (txqueuelen) and compare standard TCP vs RSS:
// standard TCP needs a very large IFQ to stop stalling, while RSS reaches
// near-line-rate at every size — i.e. it delivers the utilization without
// the memory.

#include <cstdio>
#include <vector>

#include "scenario/cc_factories.hpp"
#include "scenario/sweep.hpp"
#include "scenario/wan_path.hpp"

using namespace rss;
using namespace rss::sim::literals;

int main() {
  const std::vector<std::size_t> sizes{20, 50, 100, 200, 500, 1000, 2000};
  const sim::Time horizon = 25_s;

  struct Cell {
    double goodput{0};
    unsigned long long stalls{0};
  };
  struct Row {
    std::size_t ifq;
    Cell standard, rss;
  };
  std::vector<Row> rows(sizes.size());

  scenario::parallel_sweep(sizes.size() * 2, [&](std::size_t job) {
    const std::size_t i = job / 2;
    const bool use_rss = job % 2 == 1;
    scenario::WanPath::Config cfg;
    cfg.enable_web100 = false;
    cfg.path.ifq_capacity_packets = sizes[i];
    scenario::WanPath wan{
        cfg, use_rss ? scenario::make_rss_factory() : scenario::make_reno_factory()};
    wan.run_bulk_transfer(sim::Time::zero(), horizon);
    Cell cell{wan.goodput_mbps(sim::Time::zero(), horizon),
              static_cast<unsigned long long>(wan.sender().mib().SendStall)};
    rows[i].ifq = sizes[i];
    (use_rss ? rows[i].rss : rows[i].standard) = cell;
  });

  std::printf("ABL-IFQ: goodput & send-stalls vs interface-queue capacity (25 s run)\n");
  std::printf("paper motivation: bigger soft components waste memory and still underutilize\n\n");
  std::printf("%10s | %14s %8s | %14s %8s\n", "ifq [pkt]", "std Mb/s", "stalls",
              "rss Mb/s", "stalls");
  for (const auto& r : rows) {
    std::printf("%10zu | %14.1f %8llu | %14.1f %8llu\n", r.ifq, r.standard.goodput,
                r.standard.stalls, r.rss.goodput, r.rss.stalls);
  }

  // Shape checks: RSS delivers high utilization even at small IFQs (where
  // standard TCP collapses), and both converge at very large IFQs.
  const bool rss_high = rows.front().rss.goodput > 2.0 * rows.front().standard.goodput &&
                        rows[2].rss.goodput > 85.0;
  const bool std_grows = rows.back().standard.goodput > rows.front().standard.goodput;
  std::printf("\nshape: RSS >> standard at small IFQ and >85 Mb/s at the paper's 100: %s; "
              "standard improves with IFQ size: %s\n",
              rss_high ? "yes" : "NO", std_grows ? "yes" : "NO");
  return rss_high && std_grows ? 0 : 1;
}
