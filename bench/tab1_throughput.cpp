// TAB-1 — the paper's §4 headline result: bulk-transfer throughput by
// congestion-control variant.
//
// The experiment itself lives in src/artifacts/experiments/tab1_throughput.cpp and
// is shared with the rss_artifacts driver (--run/--write-goldens/--check);
// this binary is the thin stdout front end. Exit code: 0 iff the paper's
// shape reproduced.

#include "artifacts/runner.hpp"

int main() { return rss::artifacts::run_experiment_main("tab1_throughput"); }
