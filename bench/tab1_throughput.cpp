// TAB-1 — the paper's §4 headline result: "our scheme is able to achieve
// 40% improvement in throughput compared to the standard TCP" on a
// 100 Mbit/s, 60 ms-RTT path.
//
// We run the same bulk transfer under standard TCP, Limited Slow-Start
// (RFC 3742, the era's alternative remedy) and Restricted Slow-Start, and
// report goodput plus the improvement over standard.

#include <cstdio>

#include "scenario/cc_factories.hpp"
#include "scenario/sweep.hpp"
#include "scenario/wan_path.hpp"

using namespace rss;
using namespace rss::sim::literals;

int main() {
  const sim::Time horizon = 25_s;

  struct Row {
    std::string label;
    double goodput_mbps{0};
    unsigned long long stalls{0};
    unsigned long long timeouts{0};
    double max_cwnd_pkts{0};
  };

  auto variants = scenario::standard_variants();
  std::vector<Row> rows(variants.size());
  scenario::parallel_sweep(variants.size(), [&](std::size_t i) {
    scenario::WanPath::Config cfg;
    cfg.enable_web100 = false;
    scenario::WanPath wan{cfg, variants[i].factory};
    wan.run_bulk_transfer(sim::Time::zero(), horizon);
    rows[i] = {variants[i].label, wan.goodput_mbps(sim::Time::zero(), horizon),
               static_cast<unsigned long long>(wan.sender().mib().SendStall),
               static_cast<unsigned long long>(wan.sender().mib().Timeouts),
               wan.sender().mib().MaxCwnd / 1460.0};
  });

  std::printf("TAB-1: bulk-transfer throughput, ANL<->LBNL path, %.0f s (paper §4)\n\n",
              horizon.to_seconds());
  std::printf("%-24s %14s %14s %8s %9s %12s\n", "variant", "goodput Mb/s",
              "vs standard", "stalls", "timeouts", "max cwnd pkt");

  const double standard = rows[0].goodput_mbps;
  for (const auto& r : rows) {
    std::printf("%-24s %14.1f %+13.1f%% %8llu %9llu %12.0f\n", r.label.c_str(),
                r.goodput_mbps, 100.0 * (r.goodput_mbps - standard) / standard, r.stalls,
                r.timeouts, r.max_cwnd_pkts);
  }

  const double rss = rows[2].goodput_mbps;
  const double improvement = 100.0 * (rss - standard) / standard;
  std::printf("\npaper claim: +40%% for restricted slow-start; measured %+.1f%%  ->  %s\n",
              improvement, improvement > 20.0 ? "REPRODUCED (shape)" : "NOT reproduced");
  return improvement > 20.0 ? 0 : 1;
}
