// ABL-GAIN — ablation of the Ziegler–Nichols gain choice (§3). Scales the
// default proportional gain up and down (and drops the I/D terms) to show
// the tuned operating point is neither arbitrary nor fragile:
//   * far too low -> sluggish ramp, slow-start takes longer to fill the pipe;
//   * far too high -> jittery control near the set point;
//   * P-only vs PI vs PID -> the integral removes the steady-state offset,
//     the derivative damps the approach.

#include <cstdio>
#include <string>
#include <vector>

#include "metrics/timeseries.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/sweep.hpp"
#include "scenario/wan_path.hpp"

using namespace rss;
using namespace rss::sim::literals;

int main() {
  struct Variant {
    std::string label;
    control::PidGains gains;
  };
  const control::PidGains base = core::RestrictedSlowStart::Options{}.gains;
  const std::vector<Variant> variants{
      {"0.1x Kp (sluggish)", {0.1 * base.kp, base.ti, base.td}},
      {"0.33x Kp", {0.33 * base.kp, base.ti, base.td}},
      {"tuned (paper rule)", base},
      {"3x Kp", {3.0 * base.kp, base.ti, base.td}},
      {"10x Kp (aggressive)", {10.0 * base.kp, base.ti, base.td}},
      {"P only", {base.kp, 0.0, 0.0}},
      {"PI (no derivative)", {base.kp, base.ti, 0.0}},
  };
  const sim::Time horizon = 25_s;

  struct Row {
    double goodput;
    double mean_ifq;
    double ifq_stddev;
    unsigned long long stalls;
    double t_to_90mbps;  ///< ramp speed: first time goodput-so-far > 90% line
  };
  std::vector<Row> rows(variants.size());

  scenario::parallel_sweep(variants.size(), [&](std::size_t i) {
    core::RestrictedSlowStart::Options opt;
    opt.gains = variants[i].gains;
    scenario::WanPath::Config cfg;
    cfg.enable_web100 = false;
    scenario::WanPath wan{cfg, scenario::make_rss_factory(opt)};

    metrics::TimeSeries ifq{"ifq"};
    double t_ramp = -1.0;
    std::uint64_t last_acked = 0;
    wan.simulation().every(20_ms, [&](sim::Time now) {
      ifq.record(now, static_cast<double>(wan.nic().occupancy_packets()));
      const std::uint64_t acked = wan.sender().bytes_acked();
      const double inst_mbps = static_cast<double>(acked - last_acked) * 8.0 / 0.02 / 1e6;
      last_acked = acked;
      if (t_ramp < 0.0 && inst_mbps > 85.0) t_ramp = now.to_seconds();
      return true;
    });
    wan.run_bulk_transfer(sim::Time::zero(), horizon);

    // Occupancy dispersion in steady state measures control quality.
    double mean = ifq.time_weighted_mean(10_s, horizon);
    double ss = 0.0;
    std::size_t n = 0;
    for (const auto& s : ifq.samples()) {
      if (s.t < 10_s) continue;
      ss += (s.value - mean) * (s.value - mean);
      ++n;
    }
    rows[i] = {wan.goodput_mbps(sim::Time::zero(), horizon), mean,
               n ? std::sqrt(ss / static_cast<double>(n)) : 0.0,
               static_cast<unsigned long long>(wan.sender().mib().SendStall), t_ramp};
  });

  std::printf("ABL-GAIN: PID gain ablation around the tuned point "
              "(Kp=%.3f Ti=%.2fs Td=%.2fs)\n\n",
              base.kp, base.ti, base.td);
  std::printf("%-22s %12s %10s %10s %8s %10s\n", "gains", "goodput Mb/s", "mean IFQ",
              "IFQ sigma", "stalls", "ramp[s]");
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto& r = rows[i];
    std::printf("%-22s %12.1f %10.1f %10.2f %8llu %10.2f\n", variants[i].label.c_str(),
                r.goodput, r.mean_ifq, r.ifq_stddev, r.stalls, r.t_to_90mbps);
  }

  const auto& tuned = rows[2];
  const bool ok = tuned.stalls == 0 && tuned.goodput >= rows[0].goodput - 0.5;
  std::printf("\ntuned gains: stall-free and at least as fast as the detuned variants: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
