// ABL-SAMP — controller sampling-regime ablation. The paper implemented
// the controller inside a Linux 2.4 kernel, which bounds it to timer
// granularity (HZ=100 -> 10 ms jiffies); this library's default samples on
// every ACK. This bench quantifies what that implementation detail costs:
//
//   * per-ACK sampling: delay-free loop, unconditionally stable, any sane
//     gain works;
//   * 10 ms sample-and-hold with per-ACK-tuned gains: the hold adds loop
//     delay, the loop limit-cycles, goodput drops;
//   * 10 ms sample-and-hold with jiffy-tuned Z-N gains: recovers nearly
//     all of it — which is exactly why the paper needed §3's tuning
//     procedure at all.

#include <cstdio>
#include <string>
#include <vector>

#include "metrics/timeseries.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/sweep.hpp"
#include "scenario/wan_path.hpp"

using namespace rss;
using namespace rss::sim::literals;

int main() {
  struct Variant {
    std::string label;
    core::RestrictedSlowStart::Options opt;
  };
  std::vector<Variant> variants;
  variants.push_back({"per-ACK (event-driven)", core::RestrictedSlowStart::Options{}});
  {
    core::RestrictedSlowStart::Options o;  // per-ACK gains under a 10 ms hold
    o.sample_period = 10_ms;
    variants.push_back({"10 ms hold, per-ACK gains", o});
  }
  variants.push_back(
      {"10 ms hold, jiffy-tuned ZN", core::RestrictedSlowStart::kernel_timer_options()});
  {
    auto o = core::RestrictedSlowStart::kernel_timer_options();
    o.sample_period = 100_ms;  // HZ=10 era / sloppy timers
    variants.push_back({"100 ms hold, jiffy-tuned ZN", o});
  }

  struct Row {
    double goodput;
    double ifq_sigma;
    unsigned long long stalls;
  };
  std::vector<Row> rows(variants.size());
  const sim::Time horizon = 25_s;

  scenario::parallel_sweep(variants.size(), [&](std::size_t i) {
    scenario::WanPath::Config cfg;
    cfg.enable_web100 = false;
    scenario::WanPath wan{cfg, scenario::make_rss_factory(variants[i].opt)};
    metrics::TimeSeries ifq{"ifq"};
    wan.simulation().every(20_ms, [&](sim::Time now) {
      ifq.record(now, static_cast<double>(wan.nic().occupancy_packets()));
      return true;
    });
    wan.run_bulk_transfer(sim::Time::zero(), horizon);

    const double mean = ifq.time_weighted_mean(10_s, horizon);
    double ss = 0.0;
    std::size_t n = 0;
    for (const auto& s : ifq.samples()) {
      if (s.t < 10_s) continue;
      ss += (s.value - mean) * (s.value - mean);
      ++n;
    }
    rows[i] = {wan.goodput_mbps(sim::Time::zero(), horizon),
               n ? std::sqrt(ss / static_cast<double>(n)) : 0.0,
               static_cast<unsigned long long>(wan.sender().mib().SendStall)};
  });

  std::printf("ABL-SAMP: controller sampling regime (kernel-timer fidelity) ablation\n\n");
  std::printf("%-30s %14s %12s %8s\n", "controller", "goodput Mb/s", "IFQ sigma", "stalls");
  for (std::size_t i = 0; i < variants.size(); ++i) {
    std::printf("%-30s %14.1f %12.2f %8llu\n", variants[i].label.c_str(), rows[i].goodput,
                rows[i].ifq_sigma, rows[i].stalls);
  }

  const bool shape = rows[0].goodput > 85.0 &&            // per-ACK near line rate
                     rows[2].goodput > rows[1].goodput && // tuning recovers the hold's cost
                     rows[2].stalls == 0;
  std::printf("\nshape: jiffy-tuned gains recover what mistuned-hold loses, stall-free: %s\n",
              shape ? "yes" : "NO");
  return shape ? 0 : 1;
}
