// EXT-VAR — extended multi-variant comparison on the paper path: the two
// historical baselines (Tahoe, Reno/"standard"), the era's delay-based
// alternative (Vegas), the IETF's burst remedy (Limited Slow-Start,
// RFC 3742), and the paper's Restricted Slow-Start. Context the paper's
// two-variant Figure 1 / §4 comparison does not show: where RSS sits in
// the design space (Vegas also avoids stalls — by backing off on *path*
// RTT inflation — but leaves more bandwidth unused).

#include <cstdio>
#include <vector>

#include "scenario/cc_factories.hpp"
#include "scenario/sweep.hpp"
#include "scenario/wan_path.hpp"

using namespace rss;
using namespace rss::sim::literals;

int main() {
  const auto names = scenario::variant_names();
  const sim::Time horizon = 25_s;

  struct Row {
    double goodput;
    unsigned long long stalls, fast_retrans, timeouts;
    double max_cwnd_pkts;
    double srtt_ms;
  };
  std::vector<Row> rows(names.size());

  scenario::parallel_sweep(names.size(), [&](std::size_t i) {
    scenario::WanPath::Config cfg;
    cfg.enable_web100 = false;
    scenario::WanPath wan{cfg, scenario::factory_by_name(names[i])};
    wan.run_bulk_transfer(sim::Time::zero(), horizon);
    const auto& mib = wan.sender().mib();
    rows[i] = {wan.goodput_mbps(sim::Time::zero(), horizon),
               static_cast<unsigned long long>(mib.SendStall),
               static_cast<unsigned long long>(mib.FastRetran),
               static_cast<unsigned long long>(mib.Timeouts),
               mib.MaxCwnd / 1460.0,
               static_cast<double>(mib.SmoothedRTT.milliseconds_count())};
  });

  std::printf("EXT-VAR: seven-variant comparison, ANL<->LBNL path, 25 s bulk transfer\n\n");
  std::printf("%-24s %12s %8s %8s %9s %10s %9s\n", "variant", "goodput Mb/s", "stalls",
              "fastrtx", "timeouts", "max cwnd", "srtt ms");
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto& r = rows[i];
    std::printf("%-24s %12.1f %8llu %8llu %9llu %10.0f %9.0f\n", names[i].c_str(),
                r.goodput, r.stalls, r.fast_retrans, r.timeouts, r.max_cwnd_pkts, r.srtt_ms);
  }

  // Shape: RSS wins outright; Vegas stall-free but below RSS; standard
  // beats Tahoe.
  const auto idx = [&](const char* n) {
    for (std::size_t i = 0; i < names.size(); ++i)
      if (names[i] == n) return i;
    return std::size_t{0};
  };
  const bool ok = rows[idx("restricted-slow-start")].goodput > rows[idx("vegas")].goodput &&
                  rows[idx("restricted-slow-start")].stalls == 0 &&
                  rows[idx("reno")].goodput >= rows[idx("tahoe")].goodput;
  std::printf("\nshape: RSS tops the table stall-free; Vegas conservative; Reno >= Tahoe: %s\n",
              ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
