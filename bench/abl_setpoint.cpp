// ABL-SP — ablation of the paper's 90% set-point choice (§3: "The 90% of
// the maximum value of the network interface queue (IFQ) size is used as
// the set point").
//
// Sweep the set-point fraction: too low leaves the pipe underfilled when
// the path needs the queue headroom; too high erodes the burst margin and
// risks stalls. 0.9 sits on the flat top of the goodput curve with a
// comfortable margin — which is presumably why the authors picked it.

#include <cstdio>
#include <vector>

#include "metrics/timeseries.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/sweep.hpp"
#include "scenario/wan_path.hpp"

using namespace rss;
using namespace rss::sim::literals;

int main() {
  const std::vector<double> fractions{0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 1.0};
  const sim::Time horizon = 25_s;

  struct Row {
    double fraction;
    double goodput;
    double mean_ifq;
    double peak_ifq;
    unsigned long long stalls;
  };
  std::vector<Row> rows(fractions.size());

  scenario::parallel_sweep(fractions.size(), [&](std::size_t i) {
    core::RestrictedSlowStart::Options rss_opt;
    rss_opt.setpoint_fraction = fractions[i];
    scenario::WanPath::Config cfg;
    cfg.enable_web100 = false;
    scenario::WanPath wan{cfg, scenario::make_rss_factory(rss_opt)};

    metrics::TimeSeries ifq{"ifq"};
    wan.simulation().every(20_ms, [&](sim::Time now) {
      ifq.record(now, static_cast<double>(wan.nic().occupancy_packets()));
      return true;
    });
    wan.run_bulk_transfer(sim::Time::zero(), horizon);

    rows[i] = {fractions[i], wan.goodput_mbps(sim::Time::zero(), horizon),
               ifq.time_weighted_mean(10_s, horizon), ifq.max_value(),
               static_cast<unsigned long long>(wan.sender().mib().SendStall)};
  });

  std::printf("ABL-SP: Restricted Slow-Start set-point fraction sweep (IFQ = 100 pkts)\n\n");
  std::printf("%10s %14s %12s %12s %8s\n", "setpoint", "goodput Mb/s", "mean IFQ",
              "peak IFQ", "stalls");
  for (const auto& r : rows) {
    std::printf("%9.0f%% %14.1f %12.1f %12.0f %8llu\n", r.fraction * 100.0, r.goodput,
                r.mean_ifq, r.peak_ifq, r.stalls);
  }

  // The paper's 0.9 must be on the flat top and stall-free.
  const auto& p90 = rows[4];
  std::printf("\npaper's 90%% choice: %.1f Mb/s, %llu stalls -> %s\n", p90.goodput,
              p90.stalls, (p90.goodput > 75.0 && p90.stalls == 0) ? "validated" : "NOT validated");
  return (p90.goodput > 75.0 && p90.stalls == 0) ? 0 : 1;
}
