// ABL-RTT — sensitivity of the result to path RTT. The paper measured one
// path (60 ms); the mechanism (slow-start bursts overflowing a fixed-size
// IFQ) is RTT-dependent: the larger the BDP relative to the IFQ, the worse
// standard TCP's stall penalty and the larger RSS's win.

#include <cstdio>
#include <vector>

#include "scenario/cc_factories.hpp"
#include "scenario/sweep.hpp"
#include "scenario/wan_path.hpp"

using namespace rss;
using namespace rss::sim::literals;

int main() {
  const std::vector<std::int64_t> rtts_ms{10, 30, 60, 120, 200};
  const sim::Time horizon = 30_s;

  struct Cell {
    double goodput{0};
    unsigned long long stalls{0};
  };
  struct Row {
    std::int64_t rtt_ms;
    Cell standard, rss;
  };
  std::vector<Row> rows(rtts_ms.size());

  scenario::parallel_sweep(rtts_ms.size() * 2, [&](std::size_t job) {
    const std::size_t i = job / 2;
    const bool use_rss = job % 2 == 1;
    scenario::WanPath::Config cfg;
    cfg.enable_web100 = false;
    cfg.path.one_way_delay = sim::Time::milliseconds(rtts_ms[i] / 2);
    scenario::WanPath wan{
        cfg, use_rss ? scenario::make_rss_factory() : scenario::make_reno_factory()};
    wan.run_bulk_transfer(sim::Time::zero(), horizon);
    Cell cell{wan.goodput_mbps(sim::Time::zero(), horizon),
              static_cast<unsigned long long>(wan.sender().mib().SendStall)};
    rows[i].rtt_ms = rtts_ms[i];
    (use_rss ? rows[i].rss : rows[i].standard) = cell;
  });

  std::printf("ABL-RTT: goodput vs path RTT at 100 Mbit/s, IFQ 100 pkts (30 s runs)\n\n");
  std::printf("%9s | %12s %7s | %12s %7s | %10s\n", "RTT [ms]", "std Mb/s", "stalls",
              "rss Mb/s", "stalls", "rss gain");
  bool rss_never_loses = true;
  for (const auto& r : rows) {
    const double gain = 100.0 * (r.rss.goodput - r.standard.goodput) / r.standard.goodput;
    rss_never_loses = rss_never_loses && r.rss.goodput >= 0.95 * r.standard.goodput;
    std::printf("%9lld | %12.1f %7llu | %12.1f %7llu | %+9.1f%%\n",
                static_cast<long long>(r.rtt_ms), r.standard.goodput, r.standard.stalls,
                r.rss.goodput, r.rss.stalls, gain);
  }

  // Shape: the win grows with RTT (BDP/IFQ ratio), and RSS never loses.
  const double gain_low = rows.front().rss.goodput / rows.front().standard.goodput;
  const double gain_high = rows.back().rss.goodput / rows.back().standard.goodput;
  std::printf("\nshape: RSS >= standard at every RTT: %s; win grows with RTT: %s\n",
              rss_never_loses ? "yes" : "NO", gain_high > gain_low ? "yes" : "NO");
  return rss_never_loses ? 0 : 1;
}
