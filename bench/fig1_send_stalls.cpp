// FIG-1 — Figure 1 of the paper: cumulative send-stall signals vs time
// (0..25 s), standard Linux TCP vs the proposed (Restricted Slow-Start)
// TCP, on the ANL<->LBNL path.
//
// Paper's shape: standard TCP accumulates a handful of send-stalls over
// the run (y-axis 0..4 in the figure); the modified TCP stays at zero.
//
// Output: the time series the figure plots, then a summary verdict.

#include <cstdio>
#include <iostream>

#include "metrics/csv.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/wan_path.hpp"

using namespace rss;
using namespace rss::sim::literals;

namespace {

struct VariantRun {
  std::string label;
  std::unique_ptr<scenario::WanPath> wan;
};

}  // namespace

int main() {
  const sim::Time horizon = 25_s;
  const sim::Time sample = 500_ms;

  std::vector<VariantRun> runs;
  for (auto& variant : scenario::standard_variants()) {
    if (variant.label == "limited-slow-start") continue;  // figure has 2 series
    scenario::WanPath::Config cfg;
    cfg.web100_poll_period = sample;
    cfg.sender.trace_stalls = true;
    auto wan = std::make_unique<scenario::WanPath>(cfg, variant.factory);
    wan->run_bulk_transfer(sim::Time::zero(), horizon);
    runs.push_back({variant.label, std::move(wan)});
  }

  std::printf("FIG-1: cumulative send-stall signals vs time (paper Figure 1)\n");
  std::printf("path: 100 Mbit/s NIC, IFQ 100 pkts, RTT 60 ms; single bulk flow\n\n");

  metrics::CsvWriter csv{std::cout};
  csv.header({"t_s", "standard_tcp_cum_stalls", "restricted_ss_cum_stalls"});
  const auto& std_series = runs[0].wan->agent()->series("SendStall");
  const auto& rss_series = runs[1].wan->agent()->series("SendStall");
  for (sim::Time t = sim::Time::zero(); t <= horizon; t += sample) {
    csv.field(t.to_seconds())
        .field(std_series.value_at(t))
        .field(rss_series.value_at(t))
        .endrow();
  }

  const auto std_stalls = runs[0].wan->sender().mib().SendStall;
  const auto rss_stalls = runs[1].wan->sender().mib().SendStall;
  std::printf("\nsummary: standard TCP %llu send-stalls, restricted slow-start %llu\n",
              static_cast<unsigned long long>(std_stalls),
              static_cast<unsigned long long>(rss_stalls));
  std::printf("paper shape: standard accumulates stalls over the run; modified ~0  ->  %s\n",
              (std_stalls > 0 && rss_stalls == 0) ? "REPRODUCED" : "NOT reproduced");
  return (std_stalls > 0 && rss_stalls == 0) ? 0 : 1;
}
