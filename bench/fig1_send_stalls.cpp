// FIG-1 — Figure 1 of the paper: cumulative send-stall signals vs time,
// standard Linux TCP vs Restricted Slow-Start on the ANL<->LBNL path.
//
// The experiment itself lives in src/artifacts/experiments/fig1_send_stalls.cpp and
// is shared with the rss_artifacts driver (--run/--write-goldens/--check);
// this binary is the thin stdout front end. Exit code: 0 iff the paper's
// shape reproduced.

#include "artifacts/runner.hpp"

int main() { return rss::artifacts::run_experiment_main("fig1_send_stalls"); }
