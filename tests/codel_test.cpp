#include "net/codel.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "sim/simulation.hpp"

namespace rss::net {
namespace {

using namespace rss::sim::literals;

Packet make_packet(std::uint64_t uid = 1, bool ect = false) {
  Packet p;
  p.uid = uid;
  p.payload_bytes = 1460;
  p.ect = ect;
  return p;
}

struct Harness {
  sim::Simulation sim{1};
  CodelQueue q;

  explicit Harness(CodelQueue::Options opt = {}) : q{opt, sim} {}
};

TEST(CodelQueueTest, RejectsDegenerateOptions) {
  sim::Simulation sim{1};
  EXPECT_THROW(CodelQueue({.capacity_packets = 0}, sim), std::invalid_argument);
  EXPECT_THROW(CodelQueue({.target = sim::Time::zero()}, sim), std::invalid_argument);
  EXPECT_THROW(CodelQueue({.interval = sim::Time::zero()}, sim), std::invalid_argument);
}

TEST(CodelQueueTest, SojournBelowTargetIsNeverDropped) {
  Harness h;
  // Each packet waits 1 ms < the 5 ms target: pure FIFO behaviour.
  for (std::uint64_t i = 1; i <= 50; ++i) {
    ASSERT_TRUE(h.q.enqueue(make_packet(i)));
    h.sim.run_until(h.sim.now() + 1_ms);
    const auto p = h.q.dequeue();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->uid, i);
  }
  EXPECT_EQ(h.q.law_drops(), 0u);
  EXPECT_EQ(h.q.stats().dropped, 0u);
}

TEST(CodelQueueTest, EntersDroppingOnlyAfterAFullIntervalAboveTarget) {
  Harness h;
  for (std::uint64_t i = 1; i <= 20; ++i) ASSERT_TRUE(h.q.enqueue(make_packet(i)));

  // First pop above target starts the interval clock but must not drop.
  h.sim.run_until(6_ms);  // sojourn 6 ms > 5 ms target
  ASSERT_EQ(h.q.dequeue()->uid, 1u);
  EXPECT_EQ(h.q.law_drops(), 0u);

  // Still inside the interval (first_above = 6 ms + 100 ms): no drop.
  h.sim.run_until(50_ms);
  ASSERT_EQ(h.q.dequeue()->uid, 2u);
  EXPECT_EQ(h.q.law_drops(), 0u);

  // Past first_above: the next dequeue enters the dropping state — the
  // elected head is shed and the following packet is delivered instead.
  h.sim.run_until(110_ms);
  const auto p = h.q.dequeue();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->uid, 4u);  // uid 3 was law-dropped
  EXPECT_EQ(h.q.law_drops(), 1u);
  EXPECT_EQ(h.q.stats().dropped, 1u);
}

TEST(CodelQueueTest, ExitsDroppingWhenSojournFallsBelowTarget) {
  Harness h;
  for (std::uint64_t i = 1; i <= 20; ++i) ASSERT_TRUE(h.q.enqueue(make_packet(i)));
  h.sim.run_until(6_ms);
  (void)h.q.dequeue();
  h.sim.run_until(110_ms);
  (void)h.q.dequeue();  // enters dropping, sheds one
  ASSERT_EQ(h.q.law_drops(), 1u);

  // Drain the backlog, then run fresh packets through with ~0 sojourn: the
  // first below-target pop resets the state and no further law drops occur.
  while (h.q.dequeue().has_value()) {
  }
  const std::uint64_t shed_before = h.q.law_drops();
  for (std::uint64_t i = 100; i < 150; ++i) {
    ASSERT_TRUE(h.q.enqueue(make_packet(i)));
    const auto p = h.q.dequeue();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->uid, i);
  }
  EXPECT_EQ(h.q.law_drops(), shed_before);
}

TEST(CodelQueueTest, EctPacketsAreMarkedAndDeliveredInsteadOfDropped) {
  Harness h;
  for (std::uint64_t i = 1; i <= 20; ++i) ASSERT_TRUE(h.q.enqueue(make_packet(i, true)));
  h.sim.run_until(6_ms);
  EXPECT_FALSE(h.q.dequeue()->ce);
  h.sim.run_until(110_ms);
  const auto p = h.q.dequeue();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->uid, 2u);  // the elected head itself, marked not shed
  EXPECT_TRUE(p->ce);
  EXPECT_EQ(h.q.law_drops(), 1u);       // the law acted...
  EXPECT_EQ(h.q.stats().dropped, 0u);   // ...but nothing was lost
  EXPECT_EQ(h.q.stats().ce_marked, 1u);
}

TEST(CodelQueueTest, TailDropsAtHardCapacity) {
  Harness h{{.capacity_packets = 4}};
  for (std::uint64_t i = 1; i <= 4; ++i) ASSERT_TRUE(h.q.enqueue(make_packet(i)));
  // Even an ECT packet is dropped at hard capacity — marking is a
  // congestion signal, not an admission bypass.
  EXPECT_FALSE(h.q.enqueue(make_packet(5, true)));
  EXPECT_EQ(h.q.tail_drops(), 1u);
  EXPECT_EQ(h.q.stats().ce_marked, 0u);
}

TEST(CodelQueueTest, LastRemainingPacketIsAlwaysDelivered) {
  Harness h;
  ASSERT_TRUE(h.q.enqueue(make_packet(1)));
  // Aged far beyond target + interval, but it is the only packet: the
  // device contract (non-empty queue yields a packet) must hold.
  h.sim.run_until(1_s);
  const auto p = h.q.dequeue();
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->uid, 1u);
  EXPECT_EQ(h.q.law_drops(), 0u);
}

}  // namespace
}  // namespace rss::net
