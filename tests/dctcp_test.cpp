#include "tcp/dctcp.hpp"

#include <gtest/gtest.h>

namespace rss::tcp {
namespace {

using namespace rss::sim::literals;

/// Minimal CcHost for exercising congestion-control algorithms in
/// isolation from the sender machinery.
class MockHost final : public CcHost {
 public:
  double cwnd{0};
  double ssthresh{0};
  std::uint32_t mss_v{1460};
  std::uint64_t flight{0};
  sim::Time now_v{sim::Time::zero()};
  std::size_t ifq_occ{0};
  std::size_t ifq_cap{100};
  sim::Time srtt_v{60_ms};

  [[nodiscard]] double cwnd_bytes() const override { return cwnd; }
  void set_cwnd_bytes(double c) override { cwnd = c; }
  [[nodiscard]] double ssthresh_bytes() const override { return ssthresh; }
  void set_ssthresh_bytes(double s) override { ssthresh = s; }
  [[nodiscard]] std::uint32_t mss() const override { return mss_v; }
  [[nodiscard]] std::uint64_t flight_size_bytes() const override { return flight; }
  [[nodiscard]] sim::Time now() const override { return now_v; }
  [[nodiscard]] std::size_t ifq_occupancy_packets() const override { return ifq_occ; }
  [[nodiscard]] std::size_t ifq_capacity_packets() const override { return ifq_cap; }
  [[nodiscard]] sim::Time srtt() const override { return srtt_v; }
};

constexpr std::uint32_t kSeg = 1460;

/// Feed one srtt-long observation window of 10 single-segment ACKs,
/// marking the segments whose position satisfies `marked`.
template <typename Pred>
void feed_window(MockHost& host, DctcpCongestionControl& cc, int window, Pred marked) {
  for (int k = 0; k < 10; ++k) {
    host.now_v = sim::Time::milliseconds(window * 60) + sim::Time::milliseconds(k);
    cc.on_ecn_feedback(kSeg, marked(k));
  }
}

TEST(DctcpTest, StartsConservativeAndNamed) {
  MockHost host;
  DctcpCongestionControl dctcp;
  dctcp.attach(host);
  EXPECT_DOUBLE_EQ(dctcp.alpha(), 1.0);
  EXPECT_EQ(dctcp.name(), "dctcp");
  // Loss machinery is Reno's: attach gives the same initial window.
  EXPECT_DOUBLE_EQ(host.cwnd, 2.0 * kSeg);
}

TEST(DctcpTest, FirstMarkHalvesLikeRenoAndSsthreshFollows) {
  MockHost host;
  DctcpCongestionControl dctcp;
  dctcp.attach(host);
  host.cwnd = 100.0 * kSeg;
  host.ssthresh = 1e9;
  // alpha starts at 1.0, so the very first mark cuts by (1 - 1/2) = half.
  dctcp.on_ecn_feedback(kSeg, true);
  EXPECT_DOUBLE_EQ(host.cwnd, 50.0 * kSeg);
  EXPECT_DOUBLE_EQ(host.ssthresh, host.cwnd);
}

TEST(DctcpTest, CutsAtMostOncePerObservationWindow) {
  MockHost host;
  DctcpCongestionControl dctcp;
  dctcp.attach(host);
  host.cwnd = 100.0 * kSeg;

  dctcp.on_ecn_feedback(kSeg, true);  // t = 0: cut
  const double after_first = host.cwnd;
  host.now_v = 1_ms;
  dctcp.on_ecn_feedback(kSeg, true);  // same window: no further cut
  host.now_v = 30_ms;
  dctcp.on_ecn_feedback(kSeg, true);
  EXPECT_DOUBLE_EQ(host.cwnd, after_first);

  host.now_v = 60_ms;  // one srtt later: next window, cut allowed again
  dctcp.on_ecn_feedback(kSeg, true);
  EXPECT_LT(host.cwnd, after_first);
}

TEST(DctcpTest, AlphaConvergesToTheMarkedByteFraction) {
  MockHost host;
  DctcpCongestionControl dctcp;
  dctcp.attach(host);
  host.cwnd = 100.0 * kSeg;
  // 3 of 10 segments marked in every window, marks at the window's tail.
  // alpha must decay from its conservative 1.0 start to the stream's true
  // marked fraction; 200 windows >> the EWMA time constant (1/g = 16).
  for (int w = 0; w < 200; ++w) {
    feed_window(host, dctcp, w, [](int k) { return k >= 7; });
  }
  EXPECT_NEAR(dctcp.alpha(), 0.3, 0.02);
}

TEST(DctcpTest, AlphaTracksSquareWaveMarkingAroundItsMean) {
  MockHost host;
  DctcpCongestionControl dctcp;
  dctcp.attach(host);
  host.cwnd = 100.0 * kSeg;
  // Square wave: windows alternate fully marked / fully clean. The EWMA
  // should settle into a small oscillation around the 50% duty cycle, far
  // from both rails.
  for (int w = 0; w < 200; ++w) {
    const bool hot = (w % 2) == 0;
    feed_window(host, dctcp, w, [hot](int) { return hot; });
  }
  const double settled = dctcp.alpha();
  EXPECT_GT(settled, 0.40);
  EXPECT_LT(settled, 0.60);
  // One more full cycle stays inside the same band: it oscillates, it does
  // not drift.
  feed_window(host, dctcp, 200, [](int) { return true; });
  feed_window(host, dctcp, 201, [](int) { return false; });
  EXPECT_GT(dctcp.alpha(), 0.40);
  EXPECT_LT(dctcp.alpha(), 0.60);
}

TEST(DctcpTest, AlphaDecaysToZeroWithoutMarks) {
  MockHost host;
  DctcpCongestionControl dctcp;
  dctcp.attach(host);
  host.cwnd = 100.0 * kSeg;
  const double before = host.cwnd;
  for (int w = 0; w < 200; ++w) {
    feed_window(host, dctcp, w, [](int) { return false; });
  }
  EXPECT_LT(dctcp.alpha(), 0.01);
  EXPECT_DOUBLE_EQ(host.cwnd, before);  // no marks, no cuts
}

TEST(DctcpTest, SparseMarksShaveGentlyOnceAlphaIsSmall) {
  MockHost host;
  DctcpCongestionControl dctcp;
  dctcp.attach(host);
  host.cwnd = 100.0 * kSeg;
  // Drive alpha down to ~0.1 (1 of 10 segments marked), then measure the
  // cut: it should shave ~alpha/2 = ~5%, nothing like Reno's halving.
  for (int w = 0; w < 200; ++w) {
    feed_window(host, dctcp, w, [](int k) { return k == 9; });
  }
  ASSERT_NEAR(dctcp.alpha(), 0.1, 0.02);
  const double before = host.cwnd;
  host.now_v = sim::Time::milliseconds(201 * 60);
  dctcp.on_ecn_feedback(kSeg, true);
  const double cut_fraction = 1.0 - host.cwnd / before;
  EXPECT_GT(cut_fraction, 0.03);
  EXPECT_LT(cut_fraction, 0.08);
}

}  // namespace
}  // namespace rss::tcp
