#include "metrics/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rss::metrics {
namespace {

TEST(CsvTest, WritesHeaderAndRows) {
  std::ostringstream os;
  CsvWriter csv{os};
  csv.header({"a", "b", "c"});
  csv.field(1).field(2.5).field("x").endrow();
  EXPECT_EQ(os.str(), "a,b,c\n1,2.5,x\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(CsvTest, QuotesFieldsWithSeparators) {
  std::ostringstream os;
  CsvWriter csv{os};
  csv.field("hello, world").endrow();
  EXPECT_EQ(os.str(), "\"hello, world\"\n");
}

TEST(CsvTest, EscapesEmbeddedQuotes) {
  std::ostringstream os;
  CsvWriter csv{os};
  csv.field("say \"hi\"").endrow();
  EXPECT_EQ(os.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(CsvTest, QuotesNewlines) {
  std::ostringstream os;
  CsvWriter csv{os};
  csv.field("two\nlines").endrow();
  EXPECT_EQ(os.str(), "\"two\nlines\"\n");
}

TEST(CsvTest, CustomSeparator) {
  std::ostringstream os;
  CsvWriter csv{os, ';'};
  csv.field("a").field("b;c").endrow();
  EXPECT_EQ(os.str(), "a;\"b;c\"\n");
}

TEST(CsvTest, DoubleFormattingRoundTrips) {
  std::ostringstream os;
  CsvWriter csv{os};
  csv.field(0.1).field(1e-9).field(12345678.9).endrow();
  EXPECT_EQ(os.str(), "0.1,1e-09,12345678.9\n");
}

TEST(CsvTest, VectorHeaderOverload) {
  std::ostringstream os;
  CsvWriter csv{os};
  csv.header(std::vector<std::string>{"x", "y"});
  EXPECT_EQ(os.str(), "x,y\n");
}

TEST(CsvTest, IntegerTypes) {
  std::ostringstream os;
  CsvWriter csv{os};
  csv.field(static_cast<long long>(-7))
      .field(static_cast<unsigned long long>(7))
      .field(42)
      .field(std::size_t{9})
      .endrow();
  EXPECT_EQ(os.str(), "-7,7,42,9\n");
}

}  // namespace
}  // namespace rss::metrics
