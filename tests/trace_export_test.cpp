// Tests for the packet tracer and the Web100 CSV exporter.

#include <gtest/gtest.h>

#include <sstream>

#include "net/trace.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/wan_path.hpp"
#include "web100/csv_export.hpp"

namespace rss {
namespace {

using namespace rss::sim::literals;
using scenario::WanPath;

TEST(PacketTracerTest, RecordsReceivesOnBothEnds) {
  WanPath::Config cfg;
  cfg.enable_web100 = false;
  WanPath wan{cfg, scenario::make_reno_factory()};
  net::PacketTracer tracer;
  tracer.attach(wan.receiver_node().device(0));  // data arriving at receiver
  tracer.attach(wan.nic());                      // ACKs arriving at sender

  wan.run_bulk_transfer(0_s, 2_s);

  const auto data_rx = tracer.count([](const net::TraceEvent& e) {
    return e.kind == net::TraceEvent::Kind::kReceive && e.size_bytes > 1000;
  });
  const auto ack_rx = tracer.count([](const net::TraceEvent& e) {
    return e.kind == net::TraceEvent::Kind::kReceive && e.size_bytes == 40;
  });
  EXPECT_EQ(data_rx, wan.receiver().packets_received());
  EXPECT_GT(ack_rx, data_rx / 3);  // delayed ACKs: roughly one per two
}

TEST(PacketTracerTest, ChainingPreservesDelivery) {
  // Attaching the tracer must not break the node's own receive path.
  WanPath::Config cfg;
  cfg.enable_web100 = false;
  WanPath wan{cfg, scenario::make_reno_factory()};
  net::PacketTracer tracer;
  tracer.attach(wan.receiver_node().device(0));
  wan.run_bulk_transfer(0_s, 2_s);
  EXPECT_GT(wan.receiver().bytes_received(), 1'000'000u);  // still delivered
  EXPECT_GT(tracer.size(), 100u);
}

TEST(PacketTracerTest, RecordsSendStallsAsDrops) {
  WanPath::Config cfg;
  cfg.enable_web100 = false;
  WanPath wan{cfg, scenario::make_reno_factory()};
  net::PacketTracer tracer;
  tracer.attach(wan.nic());
  wan.run_bulk_transfer(0_s, 5_s);
  const auto drops = tracer.count(
      [](const net::TraceEvent& e) { return e.kind == net::TraceEvent::Kind::kDrop; });
  EXPECT_EQ(drops, wan.sender().mib().SendStall);
  EXPECT_GT(drops, 0u);
}

TEST(PacketTracerTest, FlowFilterAndDump) {
  WanPath::Config cfg;
  cfg.enable_web100 = false;
  cfg.flow_id = 42;
  WanPath wan{cfg, scenario::make_reno_factory()};
  net::PacketTracer tracer;
  tracer.attach(wan.receiver_node().device(0));
  wan.run_bulk_transfer(0_s, 1_s);

  const auto flow_events = tracer.for_flow(42);
  EXPECT_EQ(flow_events.size(), tracer.size());
  EXPECT_TRUE(tracer.for_flow(7).empty());

  std::ostringstream os;
  tracer.dump(os);
  EXPECT_NE(os.str().find("flow42"), std::string::npos);
  EXPECT_NE(os.str().find("r "), std::string::npos);

  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(CsvExportTest, RectangularOutputWithHeader) {
  WanPath::Config cfg;
  cfg.web100_poll_period = 100_ms;
  WanPath wan{cfg, scenario::make_reno_factory()};
  wan.run_bulk_transfer(0_s, 2_s);

  std::ostringstream os;
  const auto rows = web100::export_csv(*wan.agent(), os,
                                       {"SendStall", "CurCwnd", "ThruBytesAcked"}, 0_s,
                                       2_s, 500_ms);
  EXPECT_EQ(rows, 5u);  // t = 0, 0.5, 1.0, 1.5, 2.0

  std::istringstream is{os.str()};
  std::string header;
  std::getline(is, header);
  EXPECT_EQ(header, "t_s,SendStall,CurCwnd,ThruBytesAcked");
  std::size_t data_lines = 0;
  for (std::string line; std::getline(is, line);) ++data_lines;
  EXPECT_EQ(data_lines, 5u);
}

TEST(CsvExportTest, AllVariablesOverloadAndValidation) {
  WanPath::Config cfg;
  WanPath wan{cfg, scenario::make_reno_factory()};
  wan.run_bulk_transfer(0_s, 1_s);
  std::ostringstream os;
  EXPECT_GT(web100::export_csv(*wan.agent(), os, 0_s, 1_s, 100_ms), 0u);
  EXPECT_THROW(web100::export_csv(*wan.agent(), os, {}, 0_s, 1_s, 100_ms),
               std::invalid_argument);
  EXPECT_THROW(web100::export_csv(*wan.agent(), os, 0_s, 1_s, 0_ms), std::invalid_argument);
}

}  // namespace
}  // namespace rss
