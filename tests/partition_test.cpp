// Partitioned execution: graph partitioning, the conservative-lookahead
// window engine, cross-partition handoff, and — the headline claim —
// determinism: a partitioned run of every preset produces byte-identical
// flow-observable state to the classic single-scheduler run, regardless of
// thread count or timing.
//
// The handoff stress tests double as the TSan surface for the engine (CI's
// tsan job runs this binary); they push many concurrent windows' worth of
// staged handoffs through the two-barrier round loop.

#include "sim/partition.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "net/cross_link.hpp"
#include "scenario/builder.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/dumbbell.hpp"
#include "scenario/presets.hpp"
#include "scenario/topology.hpp"
#include "scenario/wan_path.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"
#include "web100/mib.hpp"

namespace rss {
namespace {

using namespace rss::sim::literals;
using scenario::ExecutionPolicy;
using scenario::PartitionStrategy;
using scenario::TopologySpec;

// --- graph partitioning ---------------------------------------------------

TEST(PartitionGraph, BlocksAreContiguousAndBalanced) {
  const auto a = sim::partition_blocks(10, 3);
  ASSERT_EQ(a.size(), 10u);
  EXPECT_EQ(sim::partition_count(a), 3u);
  // Labels are non-decreasing along node order (contiguous blocks).
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_LE(a[i - 1], a[i]);
}

TEST(PartitionGraph, LatencyGuidedKeepsLowLatencyEdgesInternal) {
  // Two 3-node clusters joined by one high-latency edge: the cut must land
  // on that edge.
  std::vector<sim::PartitionEdge> edges = {
      {0, 1, 1_ms}, {1, 2, 1_ms}, {3, 4, 1_ms}, {4, 5, 1_ms}, {2, 3, 50_ms},
  };
  const auto a = sim::partition_by_latency(6, edges, 2);
  ASSERT_EQ(sim::partition_count(a), 2u);
  EXPECT_EQ(a[0], a[1]);
  EXPECT_EQ(a[1], a[2]);
  EXPECT_EQ(a[3], a[4]);
  EXPECT_EQ(a[4], a[5]);
  EXPECT_NE(a[2], a[3]);
  EXPECT_EQ(sim::min_cut_latency(edges, a), 50_ms);
}

TEST(PartitionGraph, DisconnectedComponentsStaySeparate) {
  const auto a = sim::partition_by_latency(4, {{0, 1, 1_ms}, {2, 3, 1_ms}}, 2);
  EXPECT_EQ(sim::partition_count(a), 2u);
  EXPECT_EQ(a[0], a[1]);
  EXPECT_EQ(a[2], a[3]);
}

TEST(PartitionGraph, MinCutLatencyIsInfinityWithoutCutEdges) {
  const std::vector<sim::PartitionEdge> edges = {{0, 1, 1_ms}};
  const std::vector<std::uint32_t> same = {0, 0};
  EXPECT_EQ(sim::min_cut_latency(edges, same), sim::Time::infinity());
}

// --- engine window mechanics ----------------------------------------------

/// Minimal cross-partition consumer: records delivery times on the dst sim.
struct Recorder {
  sim::Simulation* sim{nullptr};
  std::vector<sim::Time> delivered;

  static void deliver(void* self, const std::byte* payload, sim::Time at,
                      sim::Time staged_at, std::uint32_t origin, std::uint64_t rank) {
    (void)payload;  // the tag only proves arbitrary payloads ride through
    auto* r = static_cast<Recorder*>(self);
    r->sim->at_imported(origin, rank, staged_at, at, [r, at] { r->delivered.push_back(at); });
  }
};

TEST(PartitionedEngine, WindowsRespectLookaheadAndDeliverHandoffs) {
  sim::Simulation a{1};
  sim::Simulation b{2};
  sim::PartitionedEngine engine{{&a, &b},
                               {.lookahead = 10_ms, .threads = 1}};
  sim::HandoffChannel& a_to_b = engine.add_channel(0, 1);

  Recorder recorder{&b, {}};
  // Partition 0 sends one handoff per millisecond for 50 ms, each arriving
  // 10 ms (= the lookahead) later.
  for (int i = 0; i < 50; ++i) {
    a.at(sim::Time::milliseconds(i), [&, i] {
      const std::uint64_t tag = static_cast<std::uint64_t>(i);
      a_to_b.stage(a.now() + 10_ms, a.now(), 0, a.scheduler().draw_rank(0), &recorder,
                   &Recorder::deliver, tag);
    });
  }
  engine.run_until(sim::Time::milliseconds(100));

  EXPECT_EQ(recorder.delivered.size(), 50u);
  for (std::size_t i = 0; i < recorder.delivered.size(); ++i)
    EXPECT_EQ(recorder.delivered[i], sim::Time::milliseconds(static_cast<std::int64_t>(i)) + 10_ms);
  EXPECT_EQ(engine.handoffs_delivered(), 50u);
  EXPECT_GT(engine.windows_executed(), 0u);
  EXPECT_EQ(a.now(), sim::Time::milliseconds(100));
  EXPECT_EQ(b.now(), sim::Time::milliseconds(100));
}

TEST(PartitionedEngine, ThreadedRunMatchesSingleWorker) {
  const auto run = [](std::size_t threads) {
    sim::Simulation a{1};
    sim::Simulation b{2};
    sim::PartitionedEngine engine{{&a, &b}, {.lookahead = 1_ms, .threads = threads}};
    sim::HandoffChannel& ab = engine.add_channel(0, 1);
    sim::HandoffChannel& ba = engine.add_channel(1, 0);

    Recorder to_b{&b, {}};
    Recorder to_a{&a, {}};
    // Ping-pong: every delivery triggers the next send from the other side.
    for (int i = 0; i < 200; ++i) {
      a.at(sim::Time::microseconds(i * 7), [&] {
        const std::uint64_t tag = 1;
        ab.stage(a.now() + 1_ms, a.now(), 0, a.scheduler().draw_rank(0), &to_b,
                 &Recorder::deliver, tag);
      });
      b.at(sim::Time::microseconds(i * 11), [&] {
        const std::uint64_t tag = 2;
        ba.stage(b.now() + 1_ms, b.now(), 0, b.scheduler().draw_rank(0), &to_a,
                 &Recorder::deliver, tag);
      });
    }
    engine.run_until(sim::Time::milliseconds(20));
    return std::make_pair(to_a.delivered, to_b.delivered);
  };

  const auto single = run(1);
  const auto threaded = run(4);
  EXPECT_EQ(single.first, threaded.first);
  EXPECT_EQ(single.second, threaded.second);
}

TEST(PartitionedEngine, PropagatesExceptionsFromWorkers) {
  sim::Simulation a{1};
  sim::Simulation b{2};
  sim::PartitionedEngine engine{{&a, &b}, {.lookahead = 1_ms, .threads = 2}};
  a.at(5_ms, [] { throw std::runtime_error("boom in partition 0"); });
  EXPECT_THROW(engine.run_until(10_ms), std::runtime_error);
}

/// TSan surface: a dense, multi-window handoff storm across 4 partitions in
/// a ring, with every partition staging into two channels per window.
TEST(PartitionedEngine, HandoffStressRing) {
  constexpr std::size_t kParts = 4;
  std::vector<std::unique_ptr<sim::Simulation>> sims;
  std::vector<sim::Simulation*> ptrs;
  for (std::size_t p = 0; p < kParts; ++p) {
    sims.push_back(std::make_unique<sim::Simulation>(p + 1));
    ptrs.push_back(sims.back().get());
  }
  sim::PartitionedEngine engine{std::move(ptrs), {.lookahead = 100_us, .threads = kParts}};

  std::vector<Recorder> recorders;
  recorders.reserve(kParts);
  for (std::size_t p = 0; p < kParts; ++p) recorders.push_back({sims[p].get(), {}});

  std::vector<sim::HandoffChannel*> next_hop;
  std::vector<sim::HandoffChannel*> prev_hop;
  for (std::size_t p = 0; p < kParts; ++p) {
    next_hop.push_back(&engine.add_channel(p, (p + 1) % kParts));
    prev_hop.push_back(&engine.add_channel(p, (p + kParts - 1) % kParts));
  }

  for (std::size_t p = 0; p < kParts; ++p) {
    for (int i = 0; i < 500; ++i) {
      sims[p]->at(sim::Time::microseconds(i * 13 + static_cast<std::int64_t>(p)), [&, p] {
        const std::uint64_t tag = p;
        Recorder& fwd = recorders[(p + 1) % kParts];
        Recorder& back = recorders[(p + kParts - 1) % kParts];
        next_hop[p]->stage(sims[p]->now() + 100_us, sims[p]->now(), 0,
                           sims[p]->scheduler().draw_rank(0), &fwd, &Recorder::deliver, tag);
        prev_hop[p]->stage(sims[p]->now() + 150_us, sims[p]->now(), 0,
                           sims[p]->scheduler().draw_rank(0), &back, &Recorder::deliver, tag);
      });
    }
  }
  engine.run_until(sim::Time::milliseconds(10));

  std::size_t total = 0;
  for (const auto& r : recorders) total += r.delivered.size();
  EXPECT_EQ(total, kParts * 500 * 2);
  EXPECT_EQ(engine.handoffs_delivered(), total);
}

// --- builder validation ---------------------------------------------------

TEST(PartitionBuilder, ZeroLatencyCutIsRejected) {
  TopologySpec spec;
  spec.nodes = {"a", "b"};
  scenario::LinkSpec link;
  link.a = "a";
  link.b = "b";
  link.delay = sim::Time::zero();
  link.a_dev = {net::DataRate::mbps(100), 100};
  link.b_dev = {net::DataRate::mbps(100), 100};
  spec.links.push_back(link);
  spec.execution.partitions = 2;

  try {
    (void)scenario::ScenarioBuilder{spec}.build(scenario::make_reno_factory());
    FAIL() << "expected TopologyError";
  } catch (const scenario::TopologyError& e) {
    EXPECT_EQ(e.code(), scenario::TopologyError::Code::kZeroLatencyCut);
  }
}

TEST(PartitionBuilder, ZeroPartitionsIsRejected) {
  TopologySpec spec;
  spec.nodes = {"a"};
  spec.execution.partitions = 0;
  try {
    (void)scenario::ScenarioBuilder{spec}.build(scenario::make_reno_factory());
    FAIL() << "expected TopologyError";
  } catch (const scenario::TopologyError& e) {
    EXPECT_EQ(e.code(), scenario::TopologyError::Code::kBadExecution);
  }
}

TEST(PartitionBuilder, RequestsBeyondNodeCountAreClamped) {
  scenario::Dumbbell::Config cfg;
  cfg.flows = 2;
  cfg.execution.partitions = 64;  // far beyond the 6 nodes
  scenario::Dumbbell db{cfg, [](std::size_t) { return scenario::make_reno_factory()(); }};
  EXPECT_LE(db.scenario().partition_count(), 6u);
  EXPECT_GT(db.scenario().partition_count(), 1u);
}

TEST(PartitionBuilder, CrossPartitionLinksRejectLossAndJitter) {
  scenario::Dumbbell::Config cfg;
  cfg.flows = 2;
  cfg.execution.partitions = 2;
  cfg.execution.strategy = PartitionStrategy::kAuto;
  scenario::Dumbbell db{cfg, [](std::size_t) { return scenario::make_reno_factory()(); }};
  ASSERT_EQ(db.scenario().partition_count(), 2u);
  // The bottleneck carries the largest delay, so kAuto cuts there; its link
  // must be the cross-partition kind, which refuses RNG-drawing knobs.
  net::PointToPointLink* bottleneck = db.bottleneck().link();
  ASSERT_NE(bottleneck, nullptr);
  EXPECT_THROW(bottleneck->set_loss_rate(0.01, sim::Rng{7}), std::logic_error);
  EXPECT_THROW(bottleneck->set_jitter(1_ms, sim::Rng{7}), std::logic_error);
}

// --- parity: partitioned == single-threaded, on every preset --------------

/// Everything flow-observable, for exact comparison.
[[nodiscard]] std::vector<std::uint64_t> fingerprint(scenario::Scenario& s,
                                                     std::size_t flows) {
  std::vector<std::uint64_t> out;
  for (std::size_t i = 0; i < flows; ++i) {
    const web100::Mib& mib = s.sender(i).mib();
    out.push_back(mib.ThruBytesAcked);
    out.push_back(mib.PktsOut);
    out.push_back(mib.PktsRetrans);
    out.push_back(mib.SendStall);
    out.push_back(mib.Timeouts);
  }
  return out;
}

[[nodiscard]] std::vector<std::uint64_t> run_with_partitions(TopologySpec spec,
                                                             std::size_t partitions,
                                                             sim::Time horizon) {
  spec.execution.partitions = partitions;
  auto scenario = scenario::ScenarioBuilder{spec}.build(scenario::make_reno_factory());
  for (std::size_t i = 0; i < spec.flows.size(); ++i)
    scenario->start_flow(i, sim::Time::zero());
  if (partitions > 1) {
    EXPECT_GT(scenario->partition_count(), 1u);
  }
  scenario->run_until(horizon);
  return fingerprint(*scenario, spec.flows.size());
}

void expect_partition_parity(const TopologySpec& spec, std::size_t partitions,
                             sim::Time horizon) {
  const auto single = run_with_partitions(spec, 1, horizon);
  const auto parted = run_with_partitions(spec, partitions, horizon);
  EXPECT_EQ(single, parted);
  bool progressed = false;
  for (const std::uint64_t v : single) progressed = progressed || v != 0;
  EXPECT_TRUE(progressed) << "parity run transferred no data — vacuous comparison";
}

TEST(PartitionParity, WanPath) {
  expect_partition_parity(scenario::WanPath::make_spec({}), 2, 2_s);
}

TEST(PartitionParity, Dumbbell) {
  scenario::Dumbbell::Config cfg;
  cfg.flows = 4;
  expect_partition_parity(scenario::Dumbbell::make_spec(cfg), 2, 2_s);
}

TEST(PartitionParity, ParkingLot) {
  expect_partition_parity(scenario::ParkingLot::make_spec({}), 2, 2_s);
}

// Regression pin: this exact configuration (1-hop parking lot, 5 cross
// flows, 100 Mbit/s access matching the bottleneck) broke 4-partition
// parity when same-timestamp pops were ordered by raw insertion sequence —
// identical access rates make exact delivery ties routine, and the
// partitioned pop path resolved them by partition-local order. The shared
// intrinsic (time, origin-hash) tie-break restored parity; keep it pinned.
TEST(PartitionParity, ParkingLotFourWayWithSymmetricAccessRates) {
  scenario::ParkingLot::Config cfg;
  cfg.hops = 1;
  cfg.cross_flows_per_hop = 5;
  cfg.access_rate = net::DataRate::mbps(100);
  cfg.bottleneck_rate = net::DataRate::mbps(100);
  expect_partition_parity(scenario::ParkingLot::make_spec(cfg), 4, 2_s);
}

TEST(PartitionParity, MultiBottleneckChain) {
  expect_partition_parity(scenario::MultiBottleneckChain::make_spec({}), 2, 2_s);
}

TEST(PartitionParity, ScaleMeshTwoAndFourWay) {
  scenario::ScaleMesh::Config cfg;
  cfg.segments = 4;
  cfg.flows_per_segment = 4;
  cfg.cross_flows_per_segment = 2;
  const TopologySpec spec = scenario::ScaleMesh::make_spec(cfg);
  expect_partition_parity(spec, 2, 1_s);
  expect_partition_parity(spec, 4, 1_s);
}

TEST(PartitionParity, BlockStrategyMatchesToo) {
  scenario::ScaleMesh::Config cfg;
  cfg.segments = 4;
  cfg.flows_per_segment = 2;
  cfg.cross_flows_per_segment = 1;
  cfg.execution.strategy = PartitionStrategy::kBlock;
  expect_partition_parity(scenario::ScaleMesh::make_spec(cfg), 4, 1_s);
}

TEST(PartitionParity, ThreadCountDoesNotChangeResults) {
  scenario::ScaleMesh::Config cfg;
  cfg.segments = 3;
  cfg.flows_per_segment = 3;
  cfg.cross_flows_per_segment = 1;
  TopologySpec spec = scenario::ScaleMesh::make_spec(cfg);
  spec.execution.partitions = 3;

  std::vector<std::vector<std::uint64_t>> prints;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    spec.execution.threads = threads;
    auto s = scenario::ScenarioBuilder{spec}.build(scenario::make_reno_factory());
    for (std::size_t i = 0; i < spec.flows.size(); ++i) s->start_flow(i, sim::Time::zero());
    s->run_until(1_s);
    prints.push_back(fingerprint(*s, spec.flows.size()));
  }
  EXPECT_EQ(prints[0], prints[1]);
  EXPECT_EQ(prints[0], prints[2]);
}

}  // namespace
}  // namespace rss
