#include "control/ziegler_nichols.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "control/plant.hpp"
#include "control/relay_tuner.hpp"

namespace rss::control {
namespace {

/// P-control experiment around an integrator-with-dead-time plant — the
/// textbook destabilizable loop. Theory: with plant K/s·e^{-Ls}, the loop
/// is marginally stable at Kc = π / (2·K·L) with period Tc = 4·L.
struct IntegratorLoop {
  double k{1.0};
  double dead_time{0.25};
  double duration{60.0};
  double dt{0.005};

  std::vector<ResponseSample> operator()(double kp) const {
    IntegratorPlant plant{k, dead_time};
    return run_p_control_experiment(plant, kp, 1.0, duration, dt);
  }
};

TEST(ZieglerNicholsTunerTest, FindsCriticalPointOfIntegratorDeadTimeLoop) {
  const IntegratorLoop loop{};
  const ZieglerNicholsTuner tuner;
  const auto result = tuner.tune([&loop](double kp) { return loop(kp); });
  ASSERT_TRUE(result.has_value());

  const double kc_theory = 3.14159265 / (2.0 * loop.k * loop.dead_time);  // ≈ 6.28
  const double tc_theory = 4.0 * loop.dead_time;                          // 1.0 s
  EXPECT_NEAR(result->kc, kc_theory, 0.5 * kc_theory);
  EXPECT_NEAR(result->tc, tc_theory, 0.35 * tc_theory);
}

TEST(ZieglerNicholsTunerTest, PaperRuleRatios) {
  const TuningResult r{10.0, 2.0};
  const PidGains g = r.paper_rule();
  EXPECT_DOUBLE_EQ(g.kp, 3.3);   // 0.33 Kc
  EXPECT_DOUBLE_EQ(g.ti, 1.0);   // 0.5 Tc
  EXPECT_DOUBLE_EQ(g.td, 0.66);  // 0.33 Tc
}

TEST(ZieglerNicholsTunerTest, ClassicRules) {
  const TuningResult r{10.0, 2.0};
  EXPECT_DOUBLE_EQ(r.classic_zn_pid().kp, 6.0);
  EXPECT_DOUBLE_EQ(r.classic_zn_pid().td, 0.25);
  EXPECT_DOUBLE_EQ(r.classic_zn_pi().kp, 4.5);
  EXPECT_NEAR(r.classic_zn_pi().ti, 2.0 / 1.2, 1e-12);
  EXPECT_DOUBLE_EQ(r.classic_zn_pi().td, 0.0);
}

TEST(ZieglerNicholsTunerTest, PureLagIsNotDestabilizable) {
  // First-order lag with no dead time: P control never oscillates; the
  // tuner must give up rather than fabricate a result.
  ZieglerNicholsTuner::Options opt;
  opt.kp_max = 1e4;
  const ZieglerNicholsTuner tuner{opt};
  const auto result = tuner.tune([](double kp) {
    FirstOrderPlant plant{1.0, 0.5};
    return run_p_control_experiment(plant, kp, 1.0, 20.0, 0.005);
  });
  EXPECT_FALSE(result.has_value());
}

TEST(ZieglerNicholsTunerTest, CountsExperiments) {
  const IntegratorLoop loop{};
  const ZieglerNicholsTuner tuner;
  (void)tuner.tune([&loop](double kp) { return loop(kp); });
  EXPECT_GT(tuner.experiments_run(), 3);
  EXPECT_LT(tuner.experiments_run(), 60);
}

TEST(RelayTunerTest, RecoversCriticalPointOfIntegratorDeadTime) {
  // Relay feedback on K/s·e^{-Ls}: limit cycle period 4L, and the
  // describing function gives Kc ≈ π/(2KL) — same target as the Z-N ramp.
  RelayTuner::Options opt;
  opt.relay_amplitude = 1.0;
  const RelayTuner tuner{opt};

  const auto result = tuner.tune([](const std::function<double(double)>& relay) {
    IntegratorPlant plant{1.0, 0.25};
    std::vector<ResponseSample> resp;
    const double dt = 0.002;
    double y = 0.0;
    for (double t = 0.0; t < 40.0; t += dt) {
      y = plant.step(relay(1.0 - y), dt);
      resp.push_back({t + dt, y});
    }
    return resp;
  });

  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result->tc, 1.0, 0.25);
  const double kc_theory = 3.14159265 / (2.0 * 0.25);
  EXPECT_NEAR(result->kc, kc_theory, 0.5 * kc_theory);
}

TEST(RelayTunerTest, NoLimitCycleYieldsNothing) {
  const RelayTuner tuner;
  const auto result = tuner.tune([](const std::function<double(double)>&) {
    // Flat response regardless of the relay.
    std::vector<ResponseSample> resp;
    for (double t = 0.0; t < 10.0; t += 0.01) resp.push_back({t, 1.0});
    return resp;
  });
  EXPECT_FALSE(result.has_value());
}

}  // namespace
}  // namespace rss::control
