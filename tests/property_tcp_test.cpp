// Property suite for the TCP stack: for every congestion-control variant
// crossed with loss rates and RTTs, end-to-end invariants must hold:
//
//   I1 (integrity)    bytes the receiver delivered in order == bytes the
//                     sender saw cumulatively acked (modulo ACKs in flight)
//   I2 (conservation) acked <= sent <= acked + window
//   I3 (liveness)     the transfer keeps making progress under loss
//   I4 (window floor) cwnd never collapses below 1 MSS
//   I5 (line rate)    goodput never exceeds the bottleneck rate
//   I6 (determinism)  identical runs produce identical counters

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "scenario/cc_factories.hpp"
#include "scenario/wan_path.hpp"

namespace rss {
namespace {

using namespace rss::sim::literals;
using scenario::WanPath;

struct TcpCase {
  std::string variant;
  double loss_rate;
  std::int64_t rtt_ms;
};

class TcpInvariantTest : public ::testing::TestWithParam<TcpCase> {
 protected:
  // WanPath owns a Simulation and is intentionally pinned (non-movable);
  // tests hold it by unique_ptr.
  static std::unique_ptr<WanPath> make(const TcpCase& c) {
    WanPath::Config cfg;
    cfg.enable_web100 = false;
    cfg.sender.trace_cwnd = true;
    cfg.path.one_way_delay = sim::Time::milliseconds(c.rtt_ms / 2);
    auto wan = std::make_unique<WanPath>(cfg, scenario::factory_by_name(c.variant));
    if (c.loss_rate > 0.0) wan->nic().link()->set_loss_rate(c.loss_rate, sim::Rng{99});
    return wan;
  }
};

TEST_P(TcpInvariantTest, EndToEndInvariantsHold) {
  const auto c = GetParam();
  auto wan = make(c);
  wan->run_bulk_transfer(0_s, 12_s);

  const auto& s = wan->sender();
  const auto& r = wan->receiver();

  // I3: liveness — even at 5% loss something substantial must get through.
  EXPECT_GT(s.bytes_acked(), 50'000u) << "transfer stalled";

  // I1: integrity — everything acked was delivered in order at the
  // receiver (receiver may be ahead by ACKs still in flight).
  EXPECT_LE(s.bytes_acked(), r.bytes_received());
  EXPECT_LE(r.bytes_received() - s.bytes_acked(), 4'000'000u) << "ACK starvation";

  // I2: conservation.
  EXPECT_LE(s.bytes_acked(), s.bytes_sent());

  // I4: window floor.
  EXPECT_GE(s.cwnd_trace().min_value(), 1460.0);

  // I5: line rate bound (payload efficiency 1460/1500).
  EXPECT_LE(wan->goodput_mbps(0_s, 12_s), 97.4);

  // Web100 accounting consistency.
  EXPECT_EQ(s.mib().ThruBytesAcked, s.bytes_acked());
  EXPECT_GE(s.mib().PktsOut, s.mib().PktsRetrans);
}

TEST_P(TcpInvariantTest, DeterministicReplay) {
  const auto c = GetParam();
  auto run = [&c] {
    auto wan = make(c);
    wan->run_bulk_transfer(0_s, 6_s);
    return std::tuple{wan->sender().bytes_acked(), wan->sender().mib().PktsOut,
                      wan->sender().mib().PktsRetrans, wan->sender().mib().Timeouts,
                      wan->receiver().bytes_received()};
  };
  EXPECT_EQ(run(), run());
}

std::vector<TcpCase> all_cases() {
  std::vector<TcpCase> cases;
  for (const auto& variant : scenario::variant_names()) {
    for (const double loss : {0.0, 0.001, 0.02}) {
      cases.push_back({variant, loss, 60});
    }
    cases.push_back({variant, 0.0, 10});
    cases.push_back({variant, 0.005, 200});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllVariants, TcpInvariantTest, ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<TcpCase>& info) {
                           std::string name = info.param.variant + "_loss" +
                                              std::to_string(static_cast<int>(
                                                  info.param.loss_rate * 1000)) +
                                              "_rtt" + std::to_string(info.param.rtt_ms);
                           for (auto& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

// --- Receiver-side invariants under adversarial reordering/duplication ---

class ReceiverPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReceiverPropertyTest, ReceiverByteCountEqualsContiguousPrefixUnderLoss) {
  WanPath::Config cfg;
  cfg.enable_web100 = false;
  WanPath wan{cfg, scenario::make_reno_factory()};
  wan.nic().link()->set_loss_rate(0.03, sim::Rng{GetParam()});
  wan.run_bulk_transfer(0_s, 8_s);
  const auto& r = wan.receiver();
  // rcv_nxt advanced exactly bytes_received from the initial sequence
  // (distance is a hidden friend of SeqNum, found via ADL).
  EXPECT_EQ(distance(tcp::SeqNum{0}, r.rcv_nxt()),
            static_cast<std::int32_t>(r.bytes_received()));
  EXPECT_GT(r.out_of_order_packets(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReceiverPropertyTest,
                         ::testing::Values(7u, 21u, 333u, 4096u));

}  // namespace
}  // namespace rss
