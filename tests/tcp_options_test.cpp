// Tests for the era-fidelity TCP options: Linux quickack receiver mode and
// RFC 2861 congestion-window validation after idle, plus the SACK x jitter
// x loss interaction grid.

#include <gtest/gtest.h>

#include "scenario/cc_factories.hpp"
#include "scenario/wan_path.hpp"
#include "workload/apps.hpp"

namespace rss::tcp {
namespace {

using namespace rss::sim::literals;
using scenario::WanPath;

TEST(QuickackTest, AcksEverySegmentEarly) {
  WanPath::Config cfg;
  cfg.enable_web100 = false;
  cfg.receiver.quickack_segments = 1'000'000;  // quickack for the whole run
  WanPath wan{cfg, scenario::make_reno_factory()};
  wan.run_bulk_transfer(0_s, 3_s);
  // Every data segment produced an immediate ACK.
  EXPECT_GE(wan.receiver().acks_sent() + 5, wan.receiver().packets_received());
}

TEST(QuickackTest, SpeedsUpEarlySlowStart) {
  auto ramp_time = [](std::uint64_t quickack) {
    WanPath::Config cfg;
    cfg.enable_web100 = false;
    cfg.path.ifq_capacity_packets = 100'000;  // no stalls: isolate the ramp
    cfg.receiver.quickack_segments = quickack;
    cfg.sender.trace_cwnd = true;
    WanPath wan{cfg, scenario::make_reno_factory()};
    wan.run_bulk_transfer(0_s, 5_s);
    // First time cwnd crossed 100 segments.
    for (const auto& s : wan.sender().cwnd_trace().samples()) {
      if (s.value >= 100.0 * 1460) return s.t;
    }
    return sim::Time::infinity();
  };
  const sim::Time with = ramp_time(1'000'000);
  const sim::Time without = ramp_time(0);
  EXPECT_LT(with, without) << "quickack must accelerate the exponential phase";
}

TEST(QuickackTest, FirstSegmentsOnlyThenDelayedAcks) {
  WanPath::Config cfg;
  cfg.enable_web100 = false;
  cfg.path.ifq_capacity_packets = 100'000;
  cfg.receiver.quickack_segments = 16;  // Linux-ish initial quickack budget
  WanPath wan{cfg, scenario::make_reno_factory()};
  wan.run_bulk_transfer(0_s, 5_s);
  // Overall ACK ratio still near 1/2 (delayed) because quickack covered
  // only the first 16 of tens of thousands of segments.
  const double ratio = static_cast<double>(wan.receiver().acks_sent()) /
                       static_cast<double>(wan.receiver().packets_received());
  EXPECT_LT(ratio, 0.6);
}

TEST(CwndValidationTest, IdleDecaysWindow) {
  WanPath::Config cfg;
  cfg.enable_web100 = false;
  cfg.sender.cwnd_validation = true;
  cfg.sender.trace_cwnd = true;
  WanPath wan{cfg, scenario::make_reno_factory()};
  // Burst, idle 2 s (>> RTO ~200 ms), then burst again.
  wan.simulation().at(0_s, [&] { wan.sender().app_write(2'000'000); });
  wan.simulation().at(3_s, [&] { wan.sender().app_write(1'000'000); });
  wan.simulation().run_until(6_s);

  // At the second burst the window must have decayed well below its value
  // at the end of the first burst.
  const auto& trace = wan.sender().cwnd_trace();
  const double before_idle = trace.value_at(1500_ms);
  const double after_idle = trace.value_at(3100_ms);
  EXPECT_LT(after_idle, 0.5 * before_idle);
  EXPECT_GE(after_idle, 2.0 * 1460 - 1);  // floored at the restart window
  // The transfer still completes.
  EXPECT_EQ(wan.receiver().bytes_received(), 3'000'000u);
}

TEST(CwndValidationTest, DisabledRestartBurstStallsTheIfq) {
  // Without RFC 2861 the sender blasts its stale full-sized window into
  // the NIC after the idle period — and the IFQ (100 packets) rejects the
  // tail of the burst. Restart-after-idle is thus *another* source of the
  // paper's send-stalls; validation (previous test) removes it.
  auto stalls_with = [](bool validation) {
    WanPath::Config cfg;
    cfg.enable_web100 = false;
    cfg.sender.cwnd_validation = validation;
    WanPath wan{cfg, scenario::make_reno_factory()};
    wan.simulation().at(0_s, [&w = wan] { w.sender().app_write(2'000'000); });
    std::uint64_t stalls_before_restart = 0;
    wan.simulation().at(2900_ms, [&] { stalls_before_restart = wan.sender().mib().SendStall; });
    wan.simulation().at(3_s, [&w = wan] { w.sender().app_write(1'000'000); });
    wan.simulation().run_until(6_s);
    return wan.sender().mib().SendStall - stalls_before_restart;
  };
  EXPECT_GT(stalls_with(false), 0u);   // stale-window burst overflows
  EXPECT_EQ(stalls_with(true), 0u);    // decayed window restarts cleanly
}

TEST(CwndValidationTest, BulkFlowUnaffected) {
  auto run = [](bool validation) {
    WanPath::Config cfg;
    cfg.enable_web100 = false;
    cfg.sender.cwnd_validation = validation;
    WanPath wan{cfg, scenario::make_rss_factory()};
    wan.run_bulk_transfer(0_s, 10_s);
    return wan.sender().bytes_acked();
  };
  EXPECT_EQ(run(true), run(false));  // never idle -> identical
}

// --- SACK x jitter x loss interaction grid ---

struct HarshCase {
  double loss;
  std::int64_t jitter_us;
  bool sack;
};

class HarshPathTest : public ::testing::TestWithParam<HarshCase> {};

TEST_P(HarshPathTest, IntegrityAndLivenessSurviveReorderingPlusLoss) {
  const auto c = GetParam();
  WanPath::Config cfg;
  cfg.enable_web100 = false;
  cfg.path.ifq_capacity_packets = 100'000;
  cfg.sender.enable_sack = c.sack;
  cfg.receiver.enable_sack = c.sack;
  WanPath wan{cfg, scenario::make_reno_factory()};
  if (c.loss > 0) wan.nic().link()->set_loss_rate(c.loss, sim::Rng{41});
  if (c.jitter_us > 0)
    wan.nic().link()->set_jitter(sim::Time::microseconds(c.jitter_us), sim::Rng{43});
  wan.run_bulk_transfer(0_s, 12_s);

  // Liveness under combined pathology.
  EXPECT_GT(wan.sender().bytes_acked(), 100'000u);
  // Integrity: cumulative ACK never exceeds in-order delivery.
  EXPECT_LE(wan.sender().bytes_acked(), wan.receiver().bytes_received() + 1460);
  // Reordering must never wedge recovery permanently: not stuck in
  // fast recovery at the end with an empty pipe.
  if (wan.sender().in_fast_recovery()) {
    EXPECT_GT(wan.sender().bytes_sent(), wan.sender().bytes_acked());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HarshPathTest,
    ::testing::Values(HarshCase{0.0, 400, false}, HarshCase{0.0, 400, true},
                      HarshCase{0.01, 0, true}, HarshCase{0.01, 400, false},
                      HarshCase{0.01, 400, true}, HarshCase{0.03, 1000, true}),
    [](const ::testing::TestParamInfo<HarshCase>& info) {
      return std::string("loss") + std::to_string(static_cast<int>(info.param.loss * 1000)) +
             "_jit" + std::to_string(info.param.jitter_us) +
             (info.param.sack ? "_sack" : "_newreno");
    });

}  // namespace
}  // namespace rss::tcp
