// InlineCallback is the scheduler's allocation-free callable: these tests
// pin down the ownership contract the event core depends on — the wrapped
// callable's destructor runs exactly once no matter how the wrapper is
// moved around, and captures that don't fit the inline buffer are rejected
// at compile time (no silent heap fallback).

#include "sim/inline_callback.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace rss::sim {
namespace {

/// Counts constructions/destructions so tests can assert exactly-once
/// destruction across arbitrary move chains.
struct LifetimeProbe {
  int* constructed;
  int* destroyed;
  int* invoked;

  LifetimeProbe(int* c, int* d, int* i) noexcept
      : constructed{c}, destroyed{d}, invoked{i} {
    ++*constructed;
  }
  LifetimeProbe(const LifetimeProbe& other) noexcept
      : constructed{other.constructed},
        destroyed{other.destroyed},
        invoked{other.invoked} {
    ++*constructed;
  }
  LifetimeProbe(LifetimeProbe&& other) noexcept
      : constructed{other.constructed},
        destroyed{other.destroyed},
        invoked{other.invoked} {
    ++*constructed;
  }
  ~LifetimeProbe() { ++*destroyed; }
  void operator()() const { ++*invoked; }
};

TEST(InlineCallbackTest, InvokesWrappedCallable) {
  int hits = 0;
  InlineCallback cb{[&hits] { ++hits; }};
  EXPECT_TRUE(static_cast<bool>(cb));
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(InlineCallbackTest, DefaultConstructedIsEmpty) {
  const InlineCallback cb;
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(InlineCallbackTest, DestructorRunsExactlyOnce) {
  int constructed = 0, destroyed = 0, invoked = 0;
  {
    InlineCallback cb{LifetimeProbe{&constructed, &destroyed, &invoked}};
    cb();
  }
  EXPECT_EQ(invoked, 1);
  // Every construction (including the temporary and moves) pairs with
  // exactly one destruction: nothing leaked, nothing double-destroyed.
  EXPECT_EQ(constructed, destroyed);
  EXPECT_GE(constructed, 1);
}

TEST(InlineCallbackTest, MoveTransfersOwnershipAndEmptiesSource) {
  int constructed = 0, destroyed = 0, invoked = 0;
  {
    InlineCallback a{LifetimeProbe{&constructed, &destroyed, &invoked}};
    InlineCallback b{std::move(a)};
    EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move): contract
    EXPECT_TRUE(static_cast<bool>(b));
    b();

    InlineCallback c;
    c = std::move(b);
    EXPECT_FALSE(static_cast<bool>(b));  // NOLINT(bugprone-use-after-move): contract
    c();
  }
  EXPECT_EQ(invoked, 2);
  EXPECT_EQ(constructed, destroyed);
}

TEST(InlineCallbackTest, MoveAssignmentDestroysPreviousCallable) {
  int c1 = 0, d1 = 0, i1 = 0;
  int c2 = 0, d2 = 0, i2 = 0;
  InlineCallback a{LifetimeProbe{&c1, &d1, &i1}};
  InlineCallback b{LifetimeProbe{&c2, &d2, &i2}};
  a = std::move(b);  // the first probe must be fully destroyed here
  EXPECT_EQ(c1, d1);
  a();
  EXPECT_EQ(i1, 0);
  EXPECT_EQ(i2, 1);
}

TEST(InlineCallbackTest, SelfMoveAssignmentIsSafe) {
  int constructed = 0, destroyed = 0, invoked = 0;
  InlineCallback cb{LifetimeProbe{&constructed, &destroyed, &invoked}};
  auto& self = cb;
  cb = std::move(self);
  EXPECT_TRUE(static_cast<bool>(cb));
  cb();
  EXPECT_EQ(invoked, 1);
}

TEST(InlineCallbackTest, SharedStateReleasedOnDestruction) {
  // The shared_ptr capture pattern Simulation::every uses: destroying the
  // callback must release the captured ownership.
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  {
    InlineCallback cb{[token] { (void)*token; }};
    token.reset();
    EXPECT_FALSE(watch.expired());  // the callback keeps it alive
  }
  EXPECT_TRUE(watch.expired());  // and its destruction lets go
}

// Compile-time capture budget: these are the static guarantees the
// scheduler hot path relies on — they fail the *build*, not the test run.
struct alignas(64) OverAligned {
  void operator()() const {}
};

using SmallCapture = decltype([x = std::array<std::byte, InlineCallback::kCapacity>{}] {
  (void)x;
});
using OversizedCapture =
    decltype([x = std::array<std::byte, InlineCallback::kCapacity + 1>{}] { (void)x; });

static_assert(std::is_constructible_v<InlineCallback, SmallCapture>,
              "a capture of exactly kCapacity bytes must fit inline");
static_assert(!std::is_constructible_v<InlineCallback, OversizedCapture>,
              "captures beyond kCapacity must be rejected at compile time");
static_assert(!std::is_constructible_v<InlineCallback, OverAligned>,
              "over-aligned callables must be rejected at compile time");
static_assert(!std::is_copy_constructible_v<InlineCallback> &&
                  !std::is_copy_assignable_v<InlineCallback>,
              "InlineCallback is move-only");
static_assert(std::is_nothrow_move_constructible_v<InlineCallback> &&
                  std::is_nothrow_move_assignable_v<InlineCallback>,
              "moves must be noexcept so the scheduler arena can relocate");

TEST(InlineCallbackTest, CompileTimeContracts) {
  // The static_asserts above are the test; this keeps the suite visible.
  SUCCEED();
}

}  // namespace
}  // namespace rss::sim
