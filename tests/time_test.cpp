#include "sim/time.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rss::sim {
namespace {

using namespace rss::sim::literals;

TEST(TimeTest, FactoriesAgreeOnUnits) {
  EXPECT_EQ(Time::seconds(1), Time::milliseconds(1000));
  EXPECT_EQ(Time::milliseconds(1), Time::microseconds(1000));
  EXPECT_EQ(Time::microseconds(1), Time::nanoseconds(1000));
}

TEST(TimeTest, FromSecondsRoundsToNearestNanosecond) {
  EXPECT_EQ(Time::from_seconds(1.5), Time::milliseconds(1500));
  EXPECT_EQ(Time::from_seconds(0.5e-9).nanoseconds_count(), 1);   // rounds up
  EXPECT_EQ(Time::from_seconds(0.49e-9).nanoseconds_count(), 0);  // rounds down
  EXPECT_EQ(Time::from_seconds(-1.5), Time::zero() - Time::milliseconds(1500));
}

TEST(TimeTest, ArithmeticIsClosed) {
  const Time t = 3_s + 250_ms;
  EXPECT_EQ(t.milliseconds_count(), 3250);
  EXPECT_EQ((t - 250_ms), 3_s);
  EXPECT_EQ((t * 2).milliseconds_count(), 6500);
  EXPECT_EQ((t / 2).milliseconds_count(), 1625);
}

TEST(TimeTest, DurationRatio) {
  EXPECT_DOUBLE_EQ(1_s / 250_ms, 4.0);
  EXPECT_DOUBLE_EQ(60_ms / 1_s, 0.06);
}

TEST(TimeTest, ScalingByDouble) {
  EXPECT_EQ(1_s * 0.5, 500_ms);
  EXPECT_EQ(100_ms * 2.5, 250_ms);
}

TEST(TimeTest, ComparisonAndExtremes) {
  EXPECT_LT(1_ms, 2_ms);
  EXPECT_LE(2_ms, 2_ms);
  EXPECT_TRUE(Time::infinity().is_infinite());
  EXPECT_GT(Time::infinity(), Time::seconds(1'000'000'000));
  EXPECT_TRUE(Time::zero().is_zero());
  EXPECT_TRUE((Time::zero() - 1_ns).is_negative());
}

TEST(TimeTest, MinMaxHelpers) {
  EXPECT_EQ(min(3_ms, 5_ms), 3_ms);
  EXPECT_EQ(max(3_ms, 5_ms), 5_ms);
}

TEST(TimeTest, ToSecondsRoundTrips) {
  const Time t = 12345678_us;
  EXPECT_NEAR(t.to_seconds(), 12.345678, 1e-12);
  EXPECT_EQ(Time::from_seconds(t.to_seconds()), t);
}

TEST(TimeTest, StreamFormattingPicksCoarsestExactUnit) {
  auto str = [](Time t) {
    std::ostringstream os;
    os << t;
    return os.str();
  };
  EXPECT_EQ(str(2_s), "2s");
  EXPECT_EQ(str(1500_ms), "1500ms");
  EXPECT_EQ(str(1001_us), "1001us");
  EXPECT_EQ(str(999_ns), "999ns");
  EXPECT_EQ(str(Time::infinity()), "+inf");
}

TEST(TimeTest, LiteralSuffixesProduceExpectedValues) {
  EXPECT_EQ((1.5_s), 1500_ms);
  EXPECT_EQ((42_us).microseconds_count(), 42);
}

}  // namespace
}  // namespace rss::sim
