// Property suite for packet queues: conservation and bound invariants
// under randomized operation sequences, for both disciplines.
//
//   Q1 (bound)        size_packets() <= capacity at every step
//   Q2 (conservation) enqueued == dequeued + dropped_set... more precisely
//                     stats.enqueued == dequeues_succeeded + still_queued
//   Q3 (byte ledger)  size_bytes equals the sum of queued packet sizes
//   Q4 (FIFO)         packets leave in admission order

#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "net/queue.hpp"
#include "sim/random.hpp"

namespace rss::net {
namespace {

struct QueuePlan {
  std::uint64_t seed;
  std::size_t capacity;
  std::size_t operations;
  double enqueue_bias;  ///< probability an op is an enqueue
  bool red;
};

class QueuePropertyTest : public ::testing::TestWithParam<QueuePlan> {};

TEST_P(QueuePropertyTest, InvariantsHoldOverRandomOps) {
  const auto plan = GetParam();
  sim::Rng rng{plan.seed};

  std::unique_ptr<PacketQueue> q;
  if (plan.red) {
    RedQueue::Options opt;
    opt.capacity_packets = plan.capacity;
    opt.min_threshold = static_cast<double>(plan.capacity) * 0.3;
    opt.max_threshold = static_cast<double>(plan.capacity) * 0.8;
    q = std::make_unique<RedQueue>(opt, rng.fork());
  } else {
    q = std::make_unique<DropTailQueue>(plan.capacity);
  }

  std::deque<std::uint64_t> model;  // uids we believe are queued, in order
  std::uint64_t model_bytes = 0;
  std::uint64_t next_uid = 1;
  std::uint64_t dequeued_count = 0;

  for (std::size_t op = 0; op < plan.operations; ++op) {
    if (rng.next_bool(plan.enqueue_bias)) {
      Packet p;
      p.uid = next_uid++;
      p.payload_bytes = static_cast<std::uint32_t>(rng.next_in(0, 1460));
      if (q->enqueue(p)) {
        model.push_back(p.uid);
        model_bytes += p.size_bytes();
      }
    } else {
      const auto got = q->dequeue();
      if (model.empty()) {
        EXPECT_FALSE(got.has_value());
      } else {
        ASSERT_TRUE(got.has_value());
        // Q4: FIFO order.
        EXPECT_EQ(got->uid, model.front());
        model.pop_front();
        model_bytes -= got->size_bytes();
        ++dequeued_count;
      }
    }
    // Q1: bound.
    ASSERT_LE(q->size_packets(), plan.capacity);
    // Q3: byte ledger.
    ASSERT_EQ(q->size_bytes(), model_bytes);
    ASSERT_EQ(q->size_packets(), model.size());
  }

  // Q2: conservation at the end.
  EXPECT_EQ(q->stats().enqueued, dequeued_count + model.size());
  EXPECT_EQ(q->stats().dequeued, dequeued_count);
  // Every offered packet was either admitted or dropped.
  EXPECT_EQ(q->stats().enqueued + q->stats().dropped, next_uid - 1);
}

INSTANTIATE_TEST_SUITE_P(
    Plans, QueuePropertyTest,
    ::testing::Values(QueuePlan{11, 4, 5'000, 0.5, false},
                      QueuePlan{12, 100, 20'000, 0.7, false},
                      QueuePlan{13, 1, 2'000, 0.9, false},   // capacity-1 stress
                      QueuePlan{14, 100, 20'000, 0.7, true}, // RED
                      QueuePlan{15, 16, 10'000, 0.95, true}),
    [](const ::testing::TestParamInfo<QueuePlan>& info) {
      return std::string(info.param.red ? "red" : "droptail") + "_cap" +
             std::to_string(info.param.capacity) + "_seed" +
             std::to_string(info.param.seed);
    });

// Peak occupancy is monotone and correct.
TEST(QueueStatsProperty, PeakIsRunningMaximum) {
  DropTailQueue q{50};
  sim::Rng rng{3};
  std::size_t live_peak = 0;
  for (int i = 0; i < 5000; ++i) {
    if (rng.next_bool(0.6)) {
      Packet p;
      p.uid = static_cast<std::uint64_t>(i);
      (void)q.enqueue(p);
    } else {
      (void)q.dequeue();
    }
    live_peak = std::max(live_peak, q.size_packets());
    ASSERT_EQ(q.stats().peak_packets, live_peak);
  }
}

}  // namespace
}  // namespace rss::net
