// Race-detector stress for parallel_sweep's cancellation and result paths.
//
// sweep_cancel_test pins the error *semantics*; this suite hammers the
// *interleavings*: many short racing rounds where a mid-sweep worker throws
// while siblings are still claiming points and writing results. Under
// -DRSS_SANITIZE=thread (the CI TSan job) every round is a fresh chance for
// the detector to observe an unsynchronized claim/cancel/collect pair; on a
// normal build it still verifies that whichever points report completion
// really did complete (no torn or lost writes through the results vector).

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/sweep.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace {

using rss::scenario::parallel_map;
using rss::scenario::parallel_sweep;

/// A miniature but real event-core workload, so worker threads exercise the
/// same Scheduler machinery a production sweep point does (each point owns
/// an independent scheduler — the only sanctioned threading model).
std::uint64_t run_mini_simulation(std::size_t point) {
  using namespace rss::sim::literals;
  rss::sim::Scheduler s{point % 2 == 0 ? rss::sim::QueueBackend::kBinaryHeap
                                       : rss::sim::QueueBackend::kCalendarQueue};
  std::uint64_t fired = 0;
  s.schedule_train(1_us, 3_us, 50 + point % 7, [&fired] { ++fired; });
  for (int i = 0; i < 20; ++i) {
    const auto id = s.schedule_in(rss::sim::Time::microseconds(5 + i), [&fired] { ++fired; });
    if (i % 3 == 0) s.cancel(id);
  }
  s.run();
  return fired;
}

TEST(SweepStress, MidSweepThrowWhileSiblingsRunSimulations) {
  constexpr std::size_t kPoints = 64;
  constexpr std::size_t kThrowAt = kPoints / 2;
  for (int round = 0; round < 25; ++round) {
    std::vector<std::atomic<std::uint64_t>> results(kPoints);
    try {
      parallel_sweep(
          kPoints,
          [&](std::size_t i) {
            if (i == kThrowAt) throw std::runtime_error{"mid-sweep failure"};
            results[i].store(run_mini_simulation(i) + 1, std::memory_order_relaxed);
          },
          8);
      FAIL() << "expected the mid-sweep error to rethrow (round " << round << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "mid-sweep failure");
    }
    // The throwing point must never report a result, and every point that
    // did report must carry the exact deterministic event count (+1 flag).
    EXPECT_EQ(results[kThrowAt].load(), 0u);
    for (std::size_t i = 0; i < kPoints; ++i) {
      const std::uint64_t r = results[i].load();
      if (r != 0) {
        EXPECT_EQ(r - 1, run_mini_simulation(i)) << "point " << i;
      }
    }
  }
}

TEST(SweepStress, RacingThrowersAgreeOnASingleWinner) {
  // Several points throw nearly simultaneously; exactly one exception may
  // surface and the sweep must still join every worker (TSan reports a
  // missing join as a thread leak at exit).
  constexpr std::size_t kPoints = 256;
  for (int round = 0; round < 25; ++round) {
    std::atomic<int> throws_started{0};
    try {
      parallel_sweep(
          kPoints,
          [&](std::size_t i) {
            if (i % 17 == 0) {
              throws_started.fetch_add(1, std::memory_order_relaxed);
              throw std::runtime_error{std::to_string(i)};
            }
          },
          8);
      FAIL() << "expected rethrow";
    } catch (const std::runtime_error& e) {
      const std::size_t winner = std::stoul(e.what());
      EXPECT_EQ(winner % 17, 0u);
    }
    EXPECT_GE(throws_started.load(), 1);
  }
}

TEST(SweepStress, ParallelMapUnderContentionIsExact) {
  std::vector<std::size_t> inputs(512);
  for (std::size_t i = 0; i < inputs.size(); ++i) inputs[i] = i;
  const auto out = parallel_map(inputs, [](std::size_t i) { return run_mini_simulation(i); }, 8);
  ASSERT_EQ(out.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(out[i], run_mini_simulation(i)) << "point " << i;
  }
}

}  // namespace
