// Property suite for the control library:
//
//   C1 (saturation)  PID output always within [min, max] for arbitrary
//                    gains, errors, and step sizes
//   C2 (windup)      after an arbitrarily long saturation episode, the
//                    controller recovers within a bounded number of steps
//   C3 (linearity)   P-only controller is homogeneous: scaling the error
//                    scales the (unsaturated) output
//   C4 (tuner)       Z-N tuned closed loops on integrator-with-dead-time
//                    plants are stable and remove steady-state error,
//                    across a grid of plant parameters

#include <gtest/gtest.h>

#include <cmath>

#include "control/pid.hpp"
#include "control/plant.hpp"
#include "control/ziegler_nichols.hpp"
#include "sim/random.hpp"

namespace rss::control {
namespace {

struct PidPlan {
  std::uint64_t seed;
  PidGains gains;
  double umin, umax;
};

class PidPropertyTest : public ::testing::TestWithParam<PidPlan> {};

TEST_P(PidPropertyTest, OutputAlwaysSaturated) {
  const auto plan = GetParam();
  PidController pid{plan.gains, OutputLimits{plan.umin, plan.umax}};
  sim::Rng rng{plan.seed};
  for (int i = 0; i < 10'000; ++i) {
    const double error = rng.next_normal(0.0, 100.0);
    const double dt = rng.next_exponential(0.01) + 1e-6;
    const double u = pid.update(error, dt);
    ASSERT_GE(u, plan.umin);
    ASSERT_LE(u, plan.umax);
    ASSERT_TRUE(std::isfinite(u));
    ASSERT_TRUE(std::isfinite(pid.integral()));
  }
}

TEST_P(PidPropertyTest, RecoversFromSaturationEpisode) {
  const auto plan = GetParam();
  PidController pid{plan.gains, OutputLimits{plan.umin, plan.umax}};
  // Long hard-positive episode...
  for (int i = 0; i < 5'000; ++i) pid.update(1e6, 0.01);
  // ...then a clean negative error: output must leave the top rail within
  // a handful of samples (no integral hangover).
  int steps_at_top = 0;
  for (int i = 0; i < 50; ++i) {
    const double u = pid.update(-1.0, 0.01);
    if (u >= plan.umax - 1e-12) {
      ++steps_at_top;
    } else {
      break;
    }
  }
  EXPECT_LT(steps_at_top, 10);
}

INSTANTIATE_TEST_SUITE_P(
    Gains, PidPropertyTest,
    ::testing::Values(PidPlan{1, {1.0, 0.0, 0.0}, -1.0, 1.0},
                      PidPlan{2, {0.12, 0.3, 0.1}, -1.0, 1.0},
                      PidPlan{3, {10.0, 0.05, 0.5}, -2.0, 0.5},
                      PidPlan{4, {0.01, 5.0, 0.0}, 0.0, 1.0},
                      PidPlan{5, {3.0, 0.2, 2.0}, -100.0, 100.0}),
    [](const ::testing::TestParamInfo<PidPlan>& info) {
      return "g" + std::to_string(info.param.seed);
    });

TEST(PidPropertyTest, ProportionalHomogeneity) {
  for (const double k : {0.1, 1.0, 7.5}) {
    PidController pid{PidGains{k, 0.0, 0.0}};
    for (const double e : {-42.0, -1.0, 0.0, 0.5, 13.0}) {
      EXPECT_DOUBLE_EQ(pid.update(e, 0.01), k * e);
      EXPECT_DOUBLE_EQ(pid.update(2.0 * e, 0.01), 2.0 * k * e);
    }
  }
}

struct PlantPlan {
  double gain;
  double dead_time;
};

class TunedLoopTest : public ::testing::TestWithParam<PlantPlan> {};

TEST_P(TunedLoopTest, PaperRuleGainsStabilizeAndRemoveOffset) {
  const auto plan = GetParam();
  const ZieglerNicholsTuner tuner;
  const auto result = tuner.tune([&plan](double kp) {
    IntegratorPlant plant{plan.gain, plan.dead_time};
    return run_p_control_experiment(plant, kp, 1.0, 80.0 * plan.dead_time, plan.dead_time / 50.0);
  });
  ASSERT_TRUE(result.has_value());

  // Deploy the paper rule on the same plant and require convergence to the
  // setpoint with a damped tail.
  const PidGains g = result->paper_rule();
  PidController pid{g};
  IntegratorPlant plant{plan.gain, plan.dead_time};
  const double dt = plan.dead_time / 50.0;
  const double setpoint = 1.0;
  double y = 0.0;
  double worst_late_error = 0.0;
  const int steps = static_cast<int>(200.0 * plan.dead_time / dt);
  for (int i = 0; i < steps; ++i) {
    y = plant.step(pid.update(setpoint - y, dt), dt);
    if (i > steps * 3 / 4) worst_late_error = std::max(worst_late_error, std::abs(setpoint - y));
  }
  EXPECT_LT(worst_late_error, 0.35) << "loop did not settle";
}

INSTANTIATE_TEST_SUITE_P(Plants, TunedLoopTest,
                         ::testing::Values(PlantPlan{1.0, 0.1}, PlantPlan{1.0, 0.25},
                                           PlantPlan{0.5, 0.5}, PlantPlan{2.0, 0.2}),
                         [](const ::testing::TestParamInfo<PlantPlan>& info) {
                           return "K" + std::to_string(static_cast<int>(info.param.gain * 10)) +
                                  "_L" +
                                  std::to_string(static_cast<int>(info.param.dead_time * 100));
                         });

}  // namespace
}  // namespace rss::control
