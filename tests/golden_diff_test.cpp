// Unit tests for the artifact golden differ: tolerance pass/fail semantics,
// schema mismatches (missing/extra/reordered columns), row-count mismatch,
// and the CSV round-trip the goldens rely on.

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "artifacts/golden.hpp"
#include "metrics/table.hpp"

namespace {

using rss::artifacts::ColumnTolerance;
using rss::artifacts::diff_tables;
using rss::artifacts::DiffResult;
using rss::artifacts::Tolerances;
using rss::metrics::Cell;
using rss::metrics::Table;

Table make_table(std::vector<std::string> cols, std::vector<std::vector<Cell>> rows) {
  Table t{std::move(cols)};
  for (auto& r : rows) t.add_row(std::move(r));
  return t;
}

bool has_error_containing(const DiffResult& d, const std::string& needle) {
  for (const auto& e : d.errors) {
    if (e.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(GoldenDiff, IdenticalTablesPass) {
  const auto t = make_table({"label", "x"}, {{"a", 1.0}, {"b", 2.5}});
  const auto u = make_table({"label", "x"}, {{"a", 1.0}, {"b", 2.5}});
  EXPECT_TRUE(diff_tables(t, u, Tolerances{}).ok());
}

TEST(GoldenDiff, ExactToleranceRejectsAnyNumericDrift) {
  const auto g = make_table({"x"}, {{1.0}});
  const auto f = make_table({"x"}, {{1.0 + 1e-12}});
  EXPECT_FALSE(diff_tables(g, f, Tolerances{}).ok());  // fallback {0,0} = exact
}

TEST(GoldenDiff, AbsoluteTolerancePassAndFail) {
  const auto g = make_table({"x"}, {{100.0}});
  Tolerances tol;
  tol.fallback = {0.5, 0.0};
  EXPECT_TRUE(diff_tables(g, make_table({"x"}, {{100.4}}), tol).ok());
  const auto d = diff_tables(g, make_table({"x"}, {{100.6}}), tol);
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(has_error_containing(d, "col x"));
}

TEST(GoldenDiff, RelativeTolerancePassAndFail) {
  const auto g = make_table({"x"}, {{200.0}});
  Tolerances tol;
  tol.fallback = {0.0, 0.01};  // 1% of 200 = 2
  EXPECT_TRUE(diff_tables(g, make_table({"x"}, {{201.9}}), tol).ok());
  EXPECT_FALSE(diff_tables(g, make_table({"x"}, {{202.1}}), tol).ok());
}

TEST(GoldenDiff, PerColumnOverrideBeatsFallback) {
  const auto g = make_table({"loose", "tight"}, {{10.0, 10.0}});
  Tolerances tol;
  tol.fallback = {0.0, 0.0};
  tol.per_column["loose"] = {1.0, 0.0};
  const auto f = make_table({"loose", "tight"}, {{10.5, 10.5}});
  const auto d = diff_tables(g, f, tol);
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.total_mismatches, 1u);
  EXPECT_TRUE(has_error_containing(d, "col tight"));
}

TEST(GoldenDiff, MissingAndUnexpectedColumnsReported) {
  const auto g = make_table({"a", "b"}, {});
  const auto f = make_table({"a", "c"}, {});
  const auto d = diff_tables(g, f, Tolerances{});
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(has_error_containing(d, "missing column: b"));
  EXPECT_TRUE(has_error_containing(d, "unexpected column: c"));
}

TEST(GoldenDiff, ReorderedColumnsFail) {
  const auto g = make_table({"a", "b"}, {});
  const auto f = make_table({"b", "a"}, {});
  const auto d = diff_tables(g, f, Tolerances{});
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(has_error_containing(d, "reordered"));
}

TEST(GoldenDiff, RowCountMismatchFails) {
  const auto g = make_table({"x"}, {{1.0}, {2.0}});
  const auto f = make_table({"x"}, {{1.0}});
  const auto d = diff_tables(g, f, Tolerances{});
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(has_error_containing(d, "row count mismatch"));
}

TEST(GoldenDiff, StringCellsCompareExactly) {
  const auto g = make_table({"label"}, {{"restricted-slow-start"}});
  const auto f = make_table({"label"}, {{"reno"}});
  EXPECT_FALSE(diff_tables(g, f, Tolerances{}).ok());
}

TEST(GoldenDiff, NanEqualsNan) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const auto g = make_table({"x"}, {{nan}});
  const auto f = make_table({"x"}, {{nan}});
  EXPECT_TRUE(diff_tables(g, f, Tolerances{}).ok());
  EXPECT_FALSE(diff_tables(g, make_table({"x"}, {{1.0}}), Tolerances{}).ok());
}

TEST(GoldenDiff, ErrorReportingIsCappedButCounted) {
  Table g{{"x"}};
  Table f{{"x"}};
  for (int i = 0; i < 100; ++i) {
    g.add_row({0.0});
    f.add_row({1.0});
  }
  const auto d = diff_tables(g, f, Tolerances{});
  EXPECT_EQ(d.total_mismatches, 100u);
  EXPECT_LE(d.errors.size(), rss::artifacts::kMaxReportedErrors + 1);
  EXPECT_TRUE(has_error_containing(d, "suppressed"));
}

TEST(TableCsv, RoundTripPreservesValuesAndTypes) {
  const auto t = make_table({"label", "x", "n"},
                            {{"plain", 1.25, 42}, {"with, comma", -3.5e-4, 0}});
  std::stringstream ss{t.to_csv()};
  const auto back = Table::read_csv(ss);
  ASSERT_EQ(back.row_count(), 2u);
  EXPECT_TRUE(diff_tables(t, back, Tolerances{}).ok());
  EXPECT_FALSE(back.at(0, 0).numeric);
  EXPECT_TRUE(back.at(0, 1).numeric);
  EXPECT_DOUBLE_EQ(back.at(0, 1).number, 1.25);
  EXPECT_EQ(back.at(1, 0).text, "with, comma");
}

TEST(TableCsv, QuotingHandlesQuotesAndNewlines) {
  const auto t = make_table({"s"}, {{"say \"hi\"\nline2"}});
  std::stringstream ss{t.to_csv()};
  const auto back = Table::read_csv(ss);
  ASSERT_EQ(back.row_count(), 1u);
  EXPECT_EQ(back.at(0, 0).text, "say \"hi\"\nline2");
}

TEST(TableCsv, MalformedInputThrows) {
  std::stringstream ragged{"a,b\n1\n"};
  EXPECT_THROW(Table::read_csv(ragged), std::runtime_error);
  std::stringstream unterminated{"a\n\"oops\n"};
  EXPECT_THROW(Table::read_csv(unterminated), std::runtime_error);
  std::stringstream empty{""};
  EXPECT_THROW(Table::read_csv(empty), std::runtime_error);
}

TEST(TableCsv, AddRowArityChecked) {
  Table t{{"a", "b"}};
  EXPECT_THROW(t.add_row({1.0}), std::invalid_argument);
}

// --- Tolerance edge cases: the differ's acceptance band is
// --- |fresh - golden| <= max(abs, rel * |golden|). Each boundary below is
// --- load-bearing for the determinism gate and locked explicitly.

TEST(GoldenDiff, DeviationExactlyAtAbsToleranceBoundaryPasses) {
  const auto g = make_table({"x"}, {{10.0}});
  const auto f = make_table({"x"}, {{10.5}});
  Tolerances at_boundary;
  at_boundary.fallback = ColumnTolerance{0.5, 0.0};
  EXPECT_TRUE(diff_tables(g, f, at_boundary).ok());  // <=, not <
  Tolerances just_under;
  just_under.fallback = ColumnTolerance{0.5 - 1e-9, 0.0};
  EXPECT_FALSE(diff_tables(g, f, just_under).ok());
}

TEST(GoldenDiff, RelativeToleranceIsMeasuredAgainstGoldenNotFresh) {
  // rel * |golden| — with golden 100 and rel 10%, fresh 110 passes, and the
  // band does NOT widen when fresh is enormous.
  const auto g = make_table({"x"}, {{100.0}});
  Tolerances rel10;
  rel10.fallback = ColumnTolerance{0.0, 0.10};
  EXPECT_TRUE(diff_tables(g, make_table({"x"}, {{110.0}}), rel10).ok());
  EXPECT_FALSE(diff_tables(g, make_table({"x"}, {{111.0}}), rel10).ok());
  EXPECT_FALSE(diff_tables(g, make_table({"x"}, {{1000.0}}), rel10).ok());
}

TEST(GoldenDiff, RelativeToleranceAroundGoldenZeroIsExact) {
  // rel * |0| == 0: a purely relative tolerance cannot absorb any drift at
  // golden 0 — a zero-stall column must stay exactly zero unless abs > 0.
  const auto g = make_table({"stalls"}, {{0.0}});
  const auto f = make_table({"stalls"}, {{1e-9}});
  Tolerances rel_only;
  rel_only.fallback = ColumnTolerance{0.0, 0.5};
  EXPECT_FALSE(diff_tables(g, f, rel_only).ok());
  Tolerances with_abs;
  with_abs.fallback = ColumnTolerance{1e-8, 0.5};
  EXPECT_TRUE(diff_tables(g, f, with_abs).ok());
}

TEST(GoldenDiff, NegativeGoldenUsesAbsoluteMagnitudeForRel) {
  const auto g = make_table({"x"}, {{-100.0}});
  Tolerances rel10;
  rel10.fallback = ColumnTolerance{0.0, 0.10};
  EXPECT_TRUE(diff_tables(g, make_table({"x"}, {{-92.0}}), rel10).ok());
  EXPECT_FALSE(diff_tables(g, make_table({"x"}, {{-89.0}}), rel10).ok());
}

TEST(GoldenDiff, AbsAndRelCombineAsMaxNotSum) {
  const auto g = make_table({"x"}, {{10.0}});
  const auto f = make_table({"x"}, {{11.5}});  // drift 1.5
  Tolerances t;
  t.fallback = ColumnTolerance{1.0, 0.10};  // max(1.0, 1.0) = 1.0 < 1.5
  EXPECT_FALSE(diff_tables(g, f, t).ok());
  t.fallback = ColumnTolerance{1.0, 0.15};  // max(1.0, 1.5) = 1.5 >= 1.5
  EXPECT_TRUE(diff_tables(g, f, t).ok());
}

TEST(GoldenDiff, InfinityMatchesOnlySameSignedInfinity) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  Tolerances loose;
  loose.fallback = ColumnTolerance{1e9, 1.0};  // tolerance cannot rescue inf
  EXPECT_TRUE(diff_tables(make_table({"x"}, {{kInf}}), make_table({"x"}, {{kInf}}), loose).ok());
  EXPECT_FALSE(
      diff_tables(make_table({"x"}, {{kInf}}), make_table({"x"}, {{-kInf}}), loose).ok());
  EXPECT_FALSE(diff_tables(make_table({"x"}, {{kInf}}), make_table({"x"}, {{1e12}}), loose).ok());
}

TEST(GoldenDiff, NanNeverMatchesANumberEvenWithLooseTolerance) {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  Tolerances loose;
  loose.fallback = ColumnTolerance{1e9, 1e9};
  EXPECT_FALSE(diff_tables(make_table({"x"}, {{kNan}}), make_table({"x"}, {{0.0}}), loose).ok());
  EXPECT_FALSE(diff_tables(make_table({"x"}, {{0.0}}), make_table({"x"}, {{kNan}}), loose).ok());
}

TEST(GoldenDiff, NumericTextMismatchFallsBackToExactTextComparison) {
  // A numeric golden against a non-numeric fresh cell (or vice versa) is a
  // text comparison: tolerances must not apply.
  const auto g = make_table({"x"}, {{1.0}});
  const auto f = make_table({"x"}, {{"not-a-number"}});
  Tolerances loose;
  loose.fallback = ColumnTolerance{1e9, 1e9};
  const auto d = diff_tables(g, f, loose);
  EXPECT_FALSE(d.ok());
  EXPECT_TRUE(has_error_containing(d, "not-a-number"));
}

TEST(Tolerances, ForColumnFallsBack) {
  Tolerances tol;
  tol.fallback = {1.0, 2.0};
  tol.per_column["x"] = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(tol.for_column("x").abs, 3.0);
  EXPECT_DOUBLE_EQ(tol.for_column("y").abs, 1.0);
}

}  // namespace
