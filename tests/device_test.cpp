#include "net/device.hpp"

#include <gtest/gtest.h>

#include "net/link.hpp"
#include "net/queue.hpp"
#include "sim/simulation.hpp"

namespace rss::net {
namespace {

using namespace rss::sim::literals;

Packet make_packet(std::uint32_t payload = 1460, std::uint64_t uid = 1) {
  Packet p;
  p.uid = uid;
  p.payload_bytes = payload;
  return p;
}

struct Harness {
  sim::Simulation sim{1};
  NetDevice a;
  NetDevice b;
  PointToPointLink link;
  std::vector<Packet> received_at_b;

  explicit Harness(DataRate rate = DataRate::mbps(100), std::size_t ifq = 10,
                   sim::Time delay = 1_ms)
      : a{sim, rate, std::make_unique<DropTailQueue>(ifq), "a"},
        b{sim, DataRate::gbps(1), std::make_unique<DropTailQueue>(100), "b"},
        link{sim, delay} {
    link.attach(a, b);
    b.set_receive_callback([this](const Packet& p, NetDevice&) { received_at_b.push_back(p); });
  }
};

TEST(NetDeviceTest, DeliversAfterSerializationPlusPropagation) {
  Harness h;
  // 1500 B at 100 Mbps = 120 us serialization; +1 ms propagation.
  ASSERT_EQ(h.a.send(make_packet()), NetDevice::TxResult::kQueued);
  h.sim.run();
  ASSERT_EQ(h.received_at_b.size(), 1u);
  EXPECT_EQ(h.sim.now(), 120_us + 1_ms);
}

TEST(NetDeviceTest, SerializesBackToBack) {
  Harness h;
  for (std::uint64_t i = 0; i < 3; ++i)
    ASSERT_EQ(h.a.send(make_packet(1460, i)), NetDevice::TxResult::kQueued);
  h.sim.run();
  ASSERT_EQ(h.received_at_b.size(), 3u);
  // Last packet leaves the NIC at 3*120us, arrives 1 ms later.
  EXPECT_EQ(h.sim.now(), 360_us + 1_ms);
  EXPECT_EQ(h.received_at_b[0].uid, 0u);
  EXPECT_EQ(h.received_at_b[2].uid, 2u);
}

TEST(NetDeviceTest, RejectsWhenIfqFull) {
  Harness h{DataRate::mbps(100), /*ifq=*/2};
  // First send starts transmitting immediately (dequeued), so the IFQ can
  // absorb two more; the fourth is rejected.
  EXPECT_EQ(h.a.send(make_packet()), NetDevice::TxResult::kQueued);
  EXPECT_EQ(h.a.send(make_packet()), NetDevice::TxResult::kQueued);
  EXPECT_EQ(h.a.send(make_packet()), NetDevice::TxResult::kQueued);
  EXPECT_EQ(h.a.send(make_packet()), NetDevice::TxResult::kRejected);
  EXPECT_EQ(h.a.stats().send_stalls, 1u);
}

TEST(NetDeviceTest, StallCallbackFires) {
  Harness h{DataRate::mbps(100), 1};
  int stalls = 0;
  h.a.set_stall_callback([&](const Packet&) { ++stalls; });
  (void)h.a.send(make_packet());
  (void)h.a.send(make_packet());
  (void)h.a.send(make_packet());  // rejected
  EXPECT_EQ(stalls, 1);
}

TEST(NetDeviceTest, OccupancyIncludesInFlightPacket) {
  Harness h{DataRate::mbps(100), 10};
  EXPECT_EQ(h.a.occupancy_packets(), 0u);
  (void)h.a.send(make_packet());
  EXPECT_EQ(h.a.occupancy_packets(), 1u);  // being serialized
  (void)h.a.send(make_packet());
  EXPECT_EQ(h.a.occupancy_packets(), 2u);  // 1 wire + 1 queued
  h.sim.run();
  EXPECT_EQ(h.a.occupancy_packets(), 0u);
}

TEST(NetDeviceTest, StatsCountTxRx) {
  Harness h;
  (void)h.a.send(make_packet(1000));
  h.sim.run();
  EXPECT_EQ(h.a.stats().tx_packets, 1u);
  EXPECT_EQ(h.a.stats().tx_bytes, 1040u);
  EXPECT_EQ(h.b.stats().rx_packets, 1u);
  EXPECT_EQ(h.b.stats().rx_bytes, 1040u);
}

TEST(NetDeviceTest, DrainRateMatchesLineRate) {
  // 100 packets of 1500 B at 100 Mbps must take exactly 12 ms to serialize.
  Harness h{DataRate::mbps(100), 200, 0_ms};
  for (std::uint64_t i = 0; i < 100; ++i) (void)h.a.send(make_packet(1460, i));
  h.sim.run();
  EXPECT_EQ(h.sim.now(), 12_ms);
  EXPECT_EQ(h.received_at_b.size(), 100u);
}

TEST(NetDeviceTest, ValidatesConstruction) {
  sim::Simulation s;
  EXPECT_THROW(NetDevice(s, DataRate::mbps(100), nullptr, "x"), std::invalid_argument);
  EXPECT_THROW(NetDevice(s, DataRate::bps(0), std::make_unique<DropTailQueue>(1), "x"),
               std::invalid_argument);
}

TEST(DataRateTest, TransmissionTimeRoundsUp) {
  EXPECT_EQ(DataRate::mbps(100).transmission_time(1500), 120_us);
  EXPECT_EQ(DataRate::gbps(1).transmission_time(1500), 12_us);
  // 1 byte at 3 bps: 8/3 s -> ceil to nanoseconds.
  EXPECT_EQ(DataRate::bps(3).transmission_time(1).nanoseconds_count(), 2'666'666'667);
}

TEST(DataRateTest, BytesOverInterval) {
  EXPECT_EQ(DataRate::mbps(100).bytes_over(1_s), 12'500'000u);
  EXPECT_EQ(DataRate::mbps(8).bytes_over(500_ms), 500'000u);
}

}  // namespace
}  // namespace rss::net
