#include <gtest/gtest.h>

#include <memory>

#include "scenario/cc_factories.hpp"
#include "scenario/wan_path.hpp"
#include "tcp/reno.hpp"

namespace rss {
namespace {

using namespace rss::sim::literals;
using scenario::WanPath;

WanPath::Config base_config() {
  WanPath::Config cfg;
  cfg.sender.trace_cwnd = true;
  cfg.sender.trace_stalls = true;
  return cfg;
}

TEST(TcpIntegrationTest, BulkTransferDeliversInOrderData) {
  WanPath wan{base_config(), scenario::make_reno_factory()};
  wan.run_bulk_transfer(sim::Time::zero(), 5_s);
  EXPECT_GT(wan.receiver().bytes_received(), 1'000'000u);
  // Everything acked was received.
  EXPECT_LE(wan.sender().bytes_acked(), wan.receiver().bytes_received() + 1460);
  EXPECT_GT(wan.sender().bytes_acked(), 0u);
}

TEST(TcpIntegrationTest, FiniteTransferCompletesExactly) {
  WanPath::Config cfg = base_config();
  WanPath wan{cfg, scenario::make_reno_factory()};
  const std::uint64_t object = 500'000;
  wan.simulation().at(0_s, [&] { wan.sender().app_write(object); });
  wan.simulation().run_until(30_s);
  EXPECT_EQ(wan.receiver().bytes_received(), object);
  EXPECT_EQ(wan.sender().bytes_acked(), object);
}

TEST(TcpIntegrationTest, StandardTcpSuffersSendStalls) {
  // The paper's §2 phenomenon: stock slow-start overflows the IFQ.
  WanPath wan{base_config(), scenario::make_reno_factory()};
  wan.run_bulk_transfer(sim::Time::zero(), 10_s);
  EXPECT_GT(wan.sender().mib().SendStall, 0u);
  EXPECT_GT(wan.sender().mib().OtherReductions, 0u);
}

TEST(TcpIntegrationTest, StallsHappenInSlowStartNotCongestionAvoidance) {
  // Paper §2: "these congestion events are generated in the slow-start
  // phase rather than in the congestion avoidance phase". The first stall
  // must occur while cwnd < ssthresh held (i.e. within the first RTTs).
  WanPath wan{base_config(), scenario::make_reno_factory()};
  wan.run_bulk_transfer(sim::Time::zero(), 10_s);
  const auto& stalls = wan.sender().stall_trace();
  ASSERT_FALSE(stalls.empty());
  EXPECT_LT(stalls.front().t, 2_s);  // early, during initial slow-start
}

TEST(TcpIntegrationTest, RttEstimateMatchesPathRtt) {
  WanPath wan{base_config(), scenario::make_reno_factory()};
  wan.run_bulk_transfer(sim::Time::zero(), 5_s);
  const auto srtt = wan.sender().rtt_estimator().srtt();
  // Propagation 60 ms + serialization/queueing; must be in a sane band.
  EXPECT_GE(srtt, 60_ms);
  EXPECT_LE(srtt, 120_ms);
}

TEST(TcpIntegrationTest, NoRetransmissionsWithoutLoss) {
  // Large IFQ: no stalls, no network loss -> not a single retransmission.
  WanPath::Config cfg = base_config();
  cfg.path.ifq_capacity_packets = 100000;
  WanPath wan{cfg, scenario::make_reno_factory()};
  wan.run_bulk_transfer(sim::Time::zero(), 5_s);
  EXPECT_EQ(wan.sender().mib().PktsRetrans, 0u);
  EXPECT_EQ(wan.sender().mib().SendStall, 0u);
  EXPECT_EQ(wan.sender().mib().Timeouts, 0u);
}

TEST(TcpIntegrationTest, ThroughputBoundedByLineRate) {
  WanPath wan{base_config(), scenario::make_reno_factory()};
  wan.run_bulk_transfer(sim::Time::zero(), 10_s);
  EXPECT_LE(wan.goodput_mbps(0_s, 10_s), 100.0);
}

TEST(TcpIntegrationTest, RandomLossTriggersFastRetransmitAndRecovers) {
  WanPath::Config cfg = base_config();
  cfg.path.ifq_capacity_packets = 100000;  // isolate network loss
  WanPath wan{cfg, scenario::make_reno_factory()};
  wan.nic().link()->set_loss_rate(0.001, sim::Rng{7});
  wan.run_bulk_transfer(sim::Time::zero(), 20_s);
  EXPECT_GT(wan.sender().mib().FastRetran, 0u);
  EXPECT_GT(wan.sender().mib().PktsRetrans, 0u);
  // Despite losses, the transfer keeps making progress.
  EXPECT_GT(wan.receiver().bytes_received(), 10'000'000u);
  // Receiver saw out-of-order arrivals (the holes).
  EXPECT_GT(wan.receiver().out_of_order_packets(), 0u);
}

TEST(TcpIntegrationTest, HeavyLossStillProgresses) {
  WanPath::Config cfg = base_config();
  cfg.path.ifq_capacity_packets = 100000;
  WanPath wan{cfg, scenario::make_reno_factory()};
  wan.nic().link()->set_loss_rate(0.05, sim::Rng{11});
  wan.run_bulk_transfer(sim::Time::zero(), 20_s);
  EXPECT_GT(wan.receiver().bytes_received(), 100'000u);
  EXPECT_GT(wan.sender().mib().Timeouts + wan.sender().mib().FastRetran, 0u);
}

TEST(TcpIntegrationTest, CwndTraceRecordsDynamics) {
  WanPath wan{base_config(), scenario::make_reno_factory()};
  wan.run_bulk_transfer(sim::Time::zero(), 5_s);
  const auto& trace = wan.sender().cwnd_trace();
  ASSERT_GT(trace.size(), 100u);
  EXPECT_GT(trace.max_value(), 10.0 * 1460);
}

TEST(TcpIntegrationTest, DelayedAcksRoughlyHalveAckCount) {
  WanPath::Config cfg = base_config();
  cfg.path.ifq_capacity_packets = 100000;
  WanPath wan{cfg, scenario::make_reno_factory()};
  wan.run_bulk_transfer(sim::Time::zero(), 5_s);
  const double acks = static_cast<double>(wan.receiver().acks_sent());
  const double pkts = static_cast<double>(wan.receiver().packets_received());
  EXPECT_LT(acks, 0.75 * pkts);
  EXPECT_GT(acks, 0.35 * pkts);
}

TEST(TcpIntegrationTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    WanPath wan{base_config(), scenario::make_reno_factory()};
    wan.run_bulk_transfer(sim::Time::zero(), 5_s);
    return std::tuple{wan.sender().bytes_acked(), wan.sender().mib().SendStall,
                      wan.sender().mib().PktsOut};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace rss
