#include "net/queue.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rss::net {
namespace {

Packet make_packet(std::uint32_t payload = 1460, std::uint64_t uid = 1) {
  Packet p;
  p.uid = uid;
  p.payload_bytes = payload;
  return p;
}

TEST(DropTailQueueTest, FifoOrder) {
  DropTailQueue q{10};
  for (std::uint64_t i = 1; i <= 3; ++i) ASSERT_TRUE(q.enqueue(make_packet(100, i)));
  EXPECT_EQ(q.dequeue()->uid, 1u);
  EXPECT_EQ(q.dequeue()->uid, 2u);
  EXPECT_EQ(q.dequeue()->uid, 3u);
  EXPECT_FALSE(q.dequeue().has_value());
}

TEST(DropTailQueueTest, DropsWhenFull) {
  DropTailQueue q{2};
  EXPECT_TRUE(q.enqueue(make_packet()));
  EXPECT_TRUE(q.enqueue(make_packet()));
  EXPECT_FALSE(q.enqueue(make_packet()));
  EXPECT_EQ(q.stats().dropped, 1u);
  EXPECT_EQ(q.stats().enqueued, 2u);
  EXPECT_EQ(q.size_packets(), 2u);
}

TEST(DropTailQueueTest, TracksBytesAndPeak) {
  DropTailQueue q{10};
  ASSERT_TRUE(q.enqueue(make_packet(1000)));
  ASSERT_TRUE(q.enqueue(make_packet(500)));
  EXPECT_EQ(q.size_bytes(), 1000u + 40 + 500 + 40);
  EXPECT_EQ(q.stats().peak_packets, 2u);
  (void)q.dequeue();
  EXPECT_EQ(q.size_bytes(), 540u);
  EXPECT_EQ(q.stats().peak_packets, 2u);  // peak sticks
}

TEST(DropTailQueueTest, FillFraction) {
  DropTailQueue q{4};
  EXPECT_DOUBLE_EQ(q.fill_fraction(), 0.0);
  ASSERT_TRUE(q.enqueue(make_packet()));
  ASSERT_TRUE(q.enqueue(make_packet()));
  EXPECT_DOUBLE_EQ(q.fill_fraction(), 0.5);
}

TEST(DropTailQueueTest, RejectsZeroCapacity) {
  EXPECT_THROW(DropTailQueue{0}, std::invalid_argument);
}

TEST(DropTailQueueTest, DropStatsCountBytes) {
  DropTailQueue q{1};
  ASSERT_TRUE(q.enqueue(make_packet(1000)));
  ASSERT_FALSE(q.enqueue(make_packet(2000)));
  EXPECT_EQ(q.stats().bytes_dropped, 2040u);
}

TEST(RedQueueTest, ValidatesOptions) {
  sim::Rng rng{1};
  RedQueue::Options bad;
  bad.min_threshold = 50.0;
  bad.max_threshold = 40.0;
  EXPECT_THROW(RedQueue(bad, rng), std::invalid_argument);
  RedQueue::Options bad_weight;
  bad_weight.queue_weight = 0.0;
  EXPECT_THROW(RedQueue(bad_weight, rng), std::invalid_argument);
  RedQueue::Options zero_cap;
  zero_cap.capacity_packets = 0;
  EXPECT_THROW(RedQueue(zero_cap, rng), std::invalid_argument);
}

TEST(RedQueueTest, NoEarlyDropsBelowMinThreshold) {
  RedQueue::Options opt;
  opt.capacity_packets = 100;
  opt.min_threshold = 20.0;
  opt.max_threshold = 60.0;
  RedQueue q{opt, sim::Rng{7}};
  // Keep instantaneous occupancy low: enqueue/dequeue pairs.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(q.enqueue(make_packet()));
    (void)q.dequeue();
  }
  EXPECT_EQ(q.early_drops(), 0u);
}

TEST(RedQueueTest, EarlyDropsBetweenThresholds) {
  RedQueue::Options opt;
  opt.capacity_packets = 200;
  opt.min_threshold = 5.0;
  opt.max_threshold = 50.0;
  opt.max_drop_probability = 0.5;
  opt.queue_weight = 0.2;  // fast EWMA so the average enters the RED band
  RedQueue q{opt, sim::Rng{7}};
  int admitted = 0;
  for (int i = 0; i < 60; ++i) admitted += q.enqueue(make_packet());
  // Occupancy passed through the RED band: some probabilistic drops must
  // have occurred, but not everything was dropped.
  EXPECT_GT(q.early_drops(), 0u);
  EXPECT_GT(admitted, 30);
}

TEST(RedQueueTest, ForcedDropAtHardCapacity) {
  RedQueue::Options opt;
  opt.capacity_packets = 10;
  opt.min_threshold = 100.0;  // RED band never reached (avg can't exceed cap)
  opt.max_threshold = 200.0;
  RedQueue q{opt, sim::Rng{7}};
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.enqueue(make_packet()));
  EXPECT_FALSE(q.enqueue(make_packet()));
  EXPECT_EQ(q.forced_drops(), 1u);
}

TEST(RedQueueTest, AverageTracksOccupancyEwma) {
  RedQueue::Options opt;
  opt.capacity_packets = 100;
  opt.min_threshold = 90.0;
  opt.max_threshold = 99.0;
  opt.queue_weight = 0.5;  // fast EWMA for the test
  RedQueue q{opt, sim::Rng{7}};
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(q.enqueue(make_packet()));
  EXPECT_GT(q.average_occupancy(), 5.0);
  EXPECT_LT(q.average_occupancy(), 20.0);
}

}  // namespace
}  // namespace rss::net
