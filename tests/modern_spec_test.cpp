#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "scenario/builder.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/spec_io.hpp"
#include "scenario/topology.hpp"

namespace rss::scenario::spec {
namespace {

using namespace rss::sim::literals;
using Code = SpecError::Code;

/// The thrown SpecError's code, or nullopt when `fn` doesn't throw it.
template <typename Fn>
std::optional<Code> spec_error_of(Fn&& fn) {
  try {
    fn();
  } catch (const SpecError& e) {
    return e.code();
  }
  return std::nullopt;
}

[[nodiscard]] std::string one_flow_spec(const std::string& flow_extra,
                                        const std::string& dev_extra = "") {
  std::string dev = dev_extra.empty() ? "{}" : "{" + dev_extra + "}";
  return R"({
    "nodes": ["a", "b"],
    "links": [{"a": "a", "b": "b", "a_dev": )" +
         dev + R"(}],
    "flows": [{"src": "a", "dst": "b")" +
         (flow_extra.empty() ? "" : ", " + flow_extra) + R"(}]
  })";
}

/// serialize(parse(text)) must be a fixed point of parse ∘ serialize.
void expect_round_trip(const std::string& text) {
  const std::string once = serialize_scenario_spec(parse_scenario_spec(text));
  EXPECT_EQ(serialize_scenario_spec(parse_scenario_spec(once)), once) << text;
}

TEST(ModernSpecTest, EveryRegisteredCcNameParsesAndRoundTrips) {
  for (const std::string& cc : variant_names()) {
    const std::string text = one_flow_spec("\"cc\": \"" + cc + "\"");
    const ScenarioSpec s = parse_scenario_spec(text);
    EXPECT_EQ(s.flow_cc[0], cc);
    // The name the parser accepted must resolve to a live factory.
    EXPECT_NE(factory_by_name(cc)(), nullptr);
    expect_round_trip(text);
  }
}

TEST(ModernSpecTest, EveryQdiscParsesAndRoundTrips) {
  const ScenarioSpec dt = parse_scenario_spec(one_flow_spec("", R"("qdisc": "droptail")"));
  EXPECT_EQ(dt.topology.links[0].a_dev.qdisc, QueueDiscipline::kDropTail);

  const ScenarioSpec red = parse_scenario_spec(one_flow_spec(
      "", R"("qdisc": "red", "red": {"min_threshold": 5, "max_threshold": 20})"));
  EXPECT_EQ(red.topology.links[0].a_dev.qdisc, QueueDiscipline::kRed);

  const ScenarioSpec codel = parse_scenario_spec(one_flow_spec("", R"("qdisc": "codel")"));
  EXPECT_EQ(codel.topology.links[0].a_dev.qdisc, QueueDiscipline::kCodel);

  expect_round_trip(one_flow_spec("", R"("qdisc": "droptail")"));
  expect_round_trip(one_flow_spec(
      "", R"("qdisc": "red", "red": {"min_threshold": 5, "max_threshold": 20})"));
  expect_round_trip(one_flow_spec("", R"("qdisc": "codel")"));
}

TEST(ModernSpecTest, CodelOptionsParseAndRoundTrip) {
  const std::string text = one_flow_spec(
      "", R"("qdisc": "codel", "codel": {"target": "2ms", "interval": "50ms"})");
  const ScenarioSpec s = parse_scenario_spec(text);
  const DeviceSpec& dev = s.topology.links[0].a_dev;
  EXPECT_EQ(dev.qdisc, QueueDiscipline::kCodel);
  EXPECT_EQ(dev.codel.target, 2_ms);
  EXPECT_EQ(dev.codel.interval, 50_ms);
  expect_round_trip(text);
}

TEST(ModernSpecTest, EcnSurfaceParsesAndRoundTrips) {
  const std::string text =
      one_flow_spec(R"("cc": "dctcp", "ecn": true)", R"("ecn_threshold": 20)");
  const ScenarioSpec s = parse_scenario_spec(text);
  EXPECT_TRUE(s.topology.flows[0].ecn);
  EXPECT_EQ(s.topology.links[0].a_dev.ecn_threshold, 20u);
  expect_round_trip(text);
}

TEST(ModernSpecTest, DefaultsAreElidedFromSerializedForm) {
  // A spec that never mentions the modern knobs must not grow them on the
  // way out — byte-stability depends on serializing only non-defaults.
  const std::string out = serialize_scenario_spec(parse_scenario_spec(one_flow_spec("")));
  EXPECT_EQ(out.find("codel"), std::string::npos);
  EXPECT_EQ(out.find("ecn"), std::string::npos);
  EXPECT_EQ(out.find("qdisc"), std::string::npos);
}

TEST(ModernSpecTest, UnknownCcNameIsATypedError) {
  EXPECT_EQ(spec_error_of([] {
              (void)parse_scenario_spec(one_flow_spec(R"("cc": "bbrv9")"));
            }),
            Code::kBadValue);
  // And the factory registry agrees with the parser about what exists.
  EXPECT_THROW((void)factory_by_name("bbrv9"), std::invalid_argument);
}

TEST(ModernSpecTest, UnknownQdiscNameIsATypedError) {
  EXPECT_EQ(spec_error_of([] {
              (void)parse_scenario_spec(one_flow_spec("", R"("qdisc": "cake")"));
            }),
            Code::kBadValue);
}

TEST(ModernSpecTest, CodelOptionsRequireCodelQdisc) {
  EXPECT_EQ(spec_error_of([] {
              (void)parse_scenario_spec(one_flow_spec("", R"("codel": {"target": "2ms"})"));
            }),
            Code::kBadValue);
  EXPECT_EQ(spec_error_of([] {
              (void)parse_scenario_spec(
                  one_flow_spec("", R"("qdisc": "red", "codel": {"target": "2ms"})"));
            }),
            Code::kBadValue);
}

TEST(ModernSpecTest, UnknownCodelFieldIsATypedError) {
  EXPECT_EQ(spec_error_of([] {
              (void)parse_scenario_spec(
                  one_flow_spec("", R"("qdisc": "codel", "codel": {"targett": "2ms"})"));
            }),
            Code::kUnknownField);
}

TEST(ModernSpecTest, CubicOverCodelSpecBuildsAndRuns) {
  // End-to-end smoke: the exact pairing the docs advertise — "cc": "cubic"
  // on a "qdisc": "codel" bottleneck — must build and move real bytes.
  const ScenarioSpec s = parse_scenario_spec(R"({
    "nodes": ["a", "b"],
    "links": [{"a": "a", "b": "b", "delay": "5ms",
               "a_dev": {"rate": "10mbps", "qdisc": "codel"},
               "b_dev": {"rate": "10mbps", "qdisc": "codel"}}],
    "flows": [{"src": "a", "dst": "b", "cc": "cubic", "start": "0ms"}]
  })");
  check_scenario_spec(s);
  auto built = ScenarioBuilder{s.topology}.build(factory_by_name(s.flow_cc[0]));
  built->run_until(2_s);
  EXPECT_GT(built->goodputs_mbps(sim::Time::zero(), 2_s)[0], 1.0);
}

}  // namespace
}  // namespace rss::scenario::spec
