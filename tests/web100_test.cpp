#include "web100/mib.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "web100/polling_agent.hpp"

namespace rss::web100 {
namespace {

using namespace rss::sim::literals;

TEST(MibTest, FlattenContainsCoreVariables) {
  Mib mib;
  mib.SendStall = 3;
  mib.CurCwnd = 1460.0;
  const auto flat = flatten(mib);
  bool saw_stall = false, saw_cwnd = false;
  for (const auto& [name, value] : flat) {
    if (name == "SendStall") {
      saw_stall = true;
      EXPECT_DOUBLE_EQ(value, 3.0);
    }
    if (name == "CurCwnd") {
      saw_cwnd = true;
      EXPECT_DOUBLE_EQ(value, 1460.0);
    }
  }
  EXPECT_TRUE(saw_stall);
  EXPECT_TRUE(saw_cwnd);
}

TEST(MibTest, FlattenOrderIsStable) {
  const auto a = flatten(Mib{});
  const auto b = flatten(Mib{});
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].first, b[i].first);
}

TEST(MibTest, UpdateCwndTracksHighWaterMark) {
  Mib mib;
  mib.update_cwnd(100.0);
  mib.update_cwnd(500.0);
  mib.update_cwnd(200.0);
  EXPECT_DOUBLE_EQ(mib.CurCwnd, 200.0);
  EXPECT_DOUBLE_EQ(mib.MaxCwnd, 500.0);
}

TEST(MibTest, StreamOutputMentionsVariables) {
  Mib mib;
  mib.Timeouts = 2;
  std::ostringstream os;
  os << mib;
  EXPECT_NE(os.str().find("Timeouts=2"), std::string::npos);
}

TEST(PollingAgentTest, SamplesOnSchedule) {
  sim::Simulation sim;
  Mib mib;
  PollingAgent agent{sim, [&]() -> const Mib& { return mib; }, 100_ms};
  agent.start();
  sim.at(250_ms, [&] { mib.SendStall = 7; });
  sim.run_until(1_s);
  const auto& series = agent.series("SendStall");
  // Samples at 0,100,...,1000 ms = 11 polls.
  EXPECT_EQ(agent.polls_taken(), 11u);
  EXPECT_DOUBLE_EQ(series.value_at(200_ms), 0.0);
  EXPECT_DOUBLE_EQ(series.value_at(300_ms), 7.0);
}

TEST(PollingAgentTest, StopHaltsPolling) {
  sim::Simulation sim;
  Mib mib;
  PollingAgent agent{sim, [&]() -> const Mib& { return mib; }, 10_ms};
  agent.start();
  sim.at(55_ms, [&] { agent.stop(); });
  sim.run_until(1_s);
  EXPECT_LE(agent.polls_taken(), 7u);
}

TEST(PollingAgentTest, UnknownVariableThrows) {
  sim::Simulation sim;
  Mib mib;
  PollingAgent agent{sim, [&]() -> const Mib& { return mib; }, 10_ms};
  agent.start();
  sim.run_until(20_ms);
  EXPECT_THROW((void)agent.series("NotAVariable"), std::out_of_range);
}

TEST(PollingAgentTest, ValidatesConstruction) {
  sim::Simulation sim;
  Mib mib;
  EXPECT_THROW(PollingAgent(sim, nullptr, 10_ms), std::invalid_argument);
  EXPECT_THROW(PollingAgent(sim, [&]() -> const Mib& { return mib; }, 0_ms),
               std::invalid_argument);
}

TEST(PollingAgentTest, AllFlattenedVariablesBecomeSeries) {
  sim::Simulation sim;
  Mib mib;
  PollingAgent agent{sim, [&]() -> const Mib& { return mib; }, 10_ms};
  agent.start();
  sim.run_until(20_ms);
  EXPECT_EQ(agent.variable_names().size(), flatten(Mib{}).size());
  for (const auto& name : agent.variable_names()) {
    EXPECT_NO_THROW((void)agent.series(name));
  }
}

}  // namespace
}  // namespace rss::web100
