// Tests for HighSpeed TCP (RFC 3649) and its composition with Restricted
// Slow-Start.

#include <gtest/gtest.h>

#include "core/highspeed_rss.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/wan_path.hpp"
#include "tcp/highspeed.hpp"

namespace rss::tcp {
namespace {

using namespace rss::sim::literals;
using scenario::WanPath;

class MockHost final : public CcHost {
 public:
  double cwnd{2 * 1460.0};
  double ssthresh{1e9};
  std::uint64_t flight{0};
  std::size_t ifq_occ{0};

  [[nodiscard]] double cwnd_bytes() const override { return cwnd; }
  void set_cwnd_bytes(double c) override { cwnd = c; }
  [[nodiscard]] double ssthresh_bytes() const override { return ssthresh; }
  void set_ssthresh_bytes(double s) override { ssthresh = s; }
  [[nodiscard]] std::uint32_t mss() const override { return 1460; }
  [[nodiscard]] std::uint64_t flight_size_bytes() const override { return flight; }
  [[nodiscard]] sim::Time now() const override { return now_v; }
  [[nodiscard]] std::size_t ifq_occupancy_packets() const override { return ifq_occ; }
  [[nodiscard]] std::size_t ifq_capacity_packets() const override { return 100; }
  [[nodiscard]] sim::Time srtt() const override { return 60_ms; }
  sim::Time now_v{sim::Time::zero()};
};

TEST(HighSpeedTest, ResponseFunctionAnchorsFromRfc3649) {
  HighSpeedCongestionControl hs;
  // At and below Low_Window the function must be exactly Reno.
  EXPECT_DOUBLE_EQ(hs.increase_a(10.0), 1.0);
  EXPECT_DOUBLE_EQ(hs.increase_a(38.0), 1.0);
  EXPECT_DOUBLE_EQ(hs.decrease_b(38.0), 0.5);
  // At High_Window the RFC's table gives a(w)=72 (±rounding), b(w)=0.1.
  EXPECT_NEAR(hs.increase_a(83000.0), 72.0, 4.0);
  EXPECT_NEAR(hs.decrease_b(83000.0), 0.1, 1e-9);
  // Monotone in between: a grows, b shrinks.
  EXPECT_GT(hs.increase_a(1000.0), hs.increase_a(100.0));
  EXPECT_LT(hs.decrease_b(1000.0), hs.decrease_b(100.0));
  // Closed-form spot check at w=1058: p ~ 1.9e-5, b ~ 0.327,
  // a = w^2 p 2b/(2-b) ~ 8.3.
  EXPECT_NEAR(hs.increase_a(1058.0), 8.3, 1.0);
  EXPECT_NEAR(hs.decrease_b(1058.0), 0.33, 0.03);
}

TEST(HighSpeedTest, CongestionAvoidanceSuperLinearAtLargeWindow) {
  MockHost host;
  HighSpeedCongestionControl hs;
  hs.attach(host);
  host.cwnd = 2000.0 * 1460;
  host.ssthresh = 100.0 * 1460;  // CA
  const double before = host.cwnd;
  for (int i = 0; i < 2000; ++i) hs.on_ack(1460);  // one RTT worth of ACKs
  const double gained_segments = (host.cwnd - before) / 1460.0;
  EXPECT_GT(gained_segments, 5.0) << "should outpace Reno's 1 segment/RTT";
}

TEST(HighSpeedTest, RenoRegimeBelowLowWindow) {
  MockHost host;
  HighSpeedCongestionControl hs;
  hs.attach(host);
  host.cwnd = 20.0 * 1460;
  host.ssthresh = 10.0 * 1460;
  const double before = host.cwnd;
  for (int i = 0; i < 20; ++i) hs.on_ack(1460);
  // ~1 MSS per window of ACKs, i.e. Reno (small shortfall because w grows
  // within the round).
  EXPECT_NEAR(host.cwnd, before + 1460.0, 40.0);
}

TEST(HighSpeedTest, GentlerDecreaseAtLargeWindow) {
  MockHost host;
  HighSpeedCongestionControl hs;
  hs.attach(host);
  host.flight = static_cast<std::uint64_t>(2000.0 * 1460);
  hs.on_fast_retransmit();
  // b(2000) ~ 0.29: ssthresh ~ 0.71 * flight, well above Reno's half.
  EXPECT_GT(host.ssthresh, 0.6 * 2000.0 * 1460);
  EXPECT_LT(host.ssthresh, 0.8 * 2000.0 * 1460);
}

TEST(HighSpeedRssTest, DelegatesByPhase) {
  MockHost host;
  core::HighSpeedRestrictedSlowStart hybrid;
  hybrid.attach(host);
  EXPECT_EQ(hybrid.name(), "highspeed-rss");

  // Slow-start with empty IFQ: the PID saturates at +1 MSS (RSS behaviour).
  host.ifq_occ = 0;
  host.now_v = host.now_v + 1_ms;
  double before = host.cwnd;
  hybrid.on_ack(1460);
  EXPECT_DOUBLE_EQ(host.cwnd, before + 1460.0);

  // Slow-start near the set point: growth restricted (not Reno +1).
  host.ifq_occ = 90;
  host.now_v = host.now_v + 1_ms;
  before = host.cwnd;
  hybrid.on_ack(1460);
  EXPECT_LT(host.cwnd - before, 1460.0);

  // Congestion avoidance at a large window: HSTCP super-linear growth.
  host.cwnd = 2000.0 * 1460;
  host.ssthresh = 100.0 * 1460;
  host.ifq_occ = 0;
  before = host.cwnd;
  for (int i = 0; i < 2000; ++i) {
    host.now_v = host.now_v + sim::Time::microseconds(30);
    hybrid.on_ack(1460);
  }
  EXPECT_GT((host.cwnd - before) / 1460.0, 5.0);
}

TEST(HighSpeedRssTest, EndToEndStallFreeOnPaperPath) {
  WanPath::Config cfg;
  cfg.enable_web100 = false;
  WanPath wan{cfg, scenario::make_highspeed_rss_factory()};
  wan.run_bulk_transfer(0_s, 25_s);
  EXPECT_EQ(wan.sender().mib().SendStall, 0u);
  EXPECT_GT(wan.goodput_mbps(0_s, 25_s), 85.0);
}

TEST(HighSpeedRssTest, SustainsLargerWindowUnderContinuousLoss) {
  // Under a steady random loss rate p the response functions predict the
  // sustained window: Reno ~ 1.2/sqrt(p) segments, HSTCP substantially
  // more. On a 120 ms-RTT path at p = 2e-4: Reno ~ 85 segments (~8 Mbit/s),
  // HSTCP ~ 150 (~15 Mbit/s). Require a clear multiplicative win.
  auto run = [](const scenario::CcFactory& f) {
    WanPath::Config cfg;
    cfg.enable_web100 = false;
    cfg.path.one_way_delay = 60_ms;  // RTT 120 ms, BDP ~1000 pkts
    cfg.path.ifq_capacity_packets = 4000;
    WanPath wan{cfg, f};
    wan.nic().link()->set_loss_rate(2e-4, sim::Rng{3});
    wan.run_bulk_transfer(0_s, 30_s);
    return wan.goodput_mbps(0_s, 30_s);
  };
  const double hybrid = run(scenario::make_highspeed_rss_factory());
  const double reno = run(scenario::make_reno_factory());
  EXPECT_GT(hybrid, 1.2 * reno);
}

TEST(LinkJitterTest, HeavyReorderingDegradesButNeverWedgesTcp) {
  // 5 ms of jitter against a 120 us serialization time reorders packets
  // constantly; spurious dupack fast-retransmits hammer the window (a
  // classic, real TCP pathology). Robustness claim: the connection keeps
  // moving and never loses data — not that it stays fast.
  WanPath::Config cfg;
  cfg.enable_web100 = false;
  WanPath wan{cfg, scenario::make_reno_factory()};
  wan.nic().link()->set_jitter(5_ms, sim::Rng{13});
  wan.run_bulk_transfer(0_s, 10_s);
  EXPECT_GT(wan.receiver().out_of_order_packets(), 0u);
  EXPECT_GT(wan.sender().mib().FastRetran, 0u);  // spurious retransmits
  EXPECT_GT(wan.sender().bytes_acked(), 500'000u);
  EXPECT_LE(wan.sender().bytes_acked(), wan.receiver().bytes_received() + 1460);
}

TEST(LinkJitterTest, SubSerializationJitterIsHarmless) {
  // Jitter below one serialization time cannot reorder; throughput stays
  // at line rate.
  WanPath::Config cfg;
  cfg.enable_web100 = false;
  WanPath wan{cfg, scenario::make_rss_factory()};
  wan.nic().link()->set_jitter(sim::Time::microseconds(50), sim::Rng{13});
  wan.run_bulk_transfer(0_s, 10_s);
  EXPECT_EQ(wan.receiver().out_of_order_packets(), 0u);
  EXPECT_GT(wan.goodput_mbps(0_s, 10_s), 80.0);
}

TEST(LinkJitterTest, ValidatesParameter) {
  sim::Simulation s;
  net::PointToPointLink link{s, 1_ms};
  EXPECT_THROW(link.set_jitter(sim::Time::zero() - 1_ms, sim::Rng{1}), std::invalid_argument);
}

}  // namespace
}  // namespace rss::tcp
