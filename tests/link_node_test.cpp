#include <gtest/gtest.h>

#include "net/device.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "net/queue.hpp"
#include "sim/simulation.hpp"

namespace rss::net {
namespace {

using namespace rss::sim::literals;

Packet to(std::uint32_t dst, std::uint32_t flow = 1, std::uint32_t payload = 100) {
  Packet p;
  p.dst_node = dst;
  p.flow_id = flow;
  p.payload_bytes = payload;
  return p;
}

TEST(LinkTest, AttachOnlyOnce) {
  sim::Simulation s;
  NetDevice a{s, DataRate::gbps(1), std::make_unique<DropTailQueue>(10), "a"};
  NetDevice b{s, DataRate::gbps(1), std::make_unique<DropTailQueue>(10), "b"};
  NetDevice c{s, DataRate::gbps(1), std::make_unique<DropTailQueue>(10), "c"};
  PointToPointLink link{s, 1_ms};
  link.attach(a, b);
  EXPECT_THROW(link.attach(a, c), std::logic_error);
}

TEST(LinkTest, LossModelDropsFraction) {
  sim::Simulation s;
  NetDevice a{s, DataRate::gbps(1), std::make_unique<DropTailQueue>(20000), "a"};
  NetDevice b{s, DataRate::gbps(1), std::make_unique<DropTailQueue>(10), "b"};
  PointToPointLink link{s, 0_ms};
  link.attach(a, b);
  link.set_loss_rate(0.2, sim::Rng{42});
  int received = 0;
  b.set_receive_callback([&](const Packet&, NetDevice&) { ++received; });
  const int n = 5000;
  for (int i = 0; i < n; ++i) (void)a.send(to(0));
  s.run();
  EXPECT_NEAR(static_cast<double>(link.packets_lost()) / n, 0.2, 0.03);
  EXPECT_EQ(received, n - static_cast<int>(link.packets_lost()));
}

TEST(LinkTest, LossRateValidation) {
  sim::Simulation s;
  PointToPointLink link{s, 1_ms};
  EXPECT_THROW(link.set_loss_rate(1.0, sim::Rng{1}), std::invalid_argument);
  EXPECT_THROW(link.set_loss_rate(-0.1, sim::Rng{1}), std::invalid_argument);
}

/// Two hosts and a router in a line: h1 -- r -- h2.
struct LineTopology {
  sim::Simulation sim{1};
  Node h1{sim, 1, "h1"};
  Node r{sim, 2, "r"};
  Node h2{sim, 3, "h2"};
  PointToPointLink l1{sim, 1_ms};
  PointToPointLink l2{sim, 1_ms};

  LineTopology(std::size_t router_queue = 100) {
    auto& d1 = h1.add_device(DataRate::gbps(1), std::make_unique<DropTailQueue>(100));
    auto& r_left = r.add_device(DataRate::gbps(1), std::make_unique<DropTailQueue>(100));
    auto& r_right =
        r.add_device(DataRate::mbps(10), std::make_unique<DropTailQueue>(router_queue));
    auto& d2 = h2.add_device(DataRate::gbps(1), std::make_unique<DropTailQueue>(100));
    l1.attach(d1, r_left);
    l2.attach(r_right, d2);
    h1.set_default_route(0);
    h2.set_default_route(0);
    r.set_route(3, 1);  // to h2 out the right device
    r.set_route(1, 0);  // to h1 out the left device
  }
};

TEST(NodeTest, ForwardsThroughRouter) {
  LineTopology t;
  std::vector<Packet> got;
  t.h2.register_flow_handler(1, [&](const Packet& p) { got.push_back(p); });
  ASSERT_EQ(t.h1.send(to(3)), Node::SendResult::kSent);
  t.sim.run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].src_node, 1u);
  EXPECT_EQ(t.r.forwarded_packets(), 1u);
  EXPECT_EQ(t.h2.delivered_packets(), 1u);
}

TEST(NodeTest, BidirectionalDelivery) {
  LineTopology t;
  int at_h1 = 0, at_h2 = 0;
  t.h1.register_flow_handler(1, [&](const Packet&) { ++at_h1; });
  t.h2.register_flow_handler(1, [&](const Packet&) { ++at_h2; });
  (void)t.h1.send(to(3));
  (void)t.h2.send(to(1));
  t.sim.run();
  EXPECT_EQ(at_h1, 1);
  EXPECT_EQ(at_h2, 1);
}

TEST(NodeTest, NoRouteReported) {
  sim::Simulation s;
  Node n{s, 1, "n"};
  n.add_device(DataRate::gbps(1), std::make_unique<DropTailQueue>(10));
  EXPECT_EQ(n.send(to(99)), Node::SendResult::kNoRoute);
}

TEST(NodeTest, StallReportedForLocalOrigination) {
  sim::Simulation s;
  Node n{s, 1, "n"};
  n.add_device(DataRate::kbps(1), std::make_unique<DropTailQueue>(1));
  n.set_default_route(0);
  EXPECT_EQ(n.send(to(2)), Node::SendResult::kSent);  // serializing
  EXPECT_EQ(n.send(to(2)), Node::SendResult::kSent);  // queued
  EXPECT_EQ(n.send(to(2)), Node::SendResult::kStalled);
}

TEST(NodeTest, TransitDropsAreCountedNotReported) {
  // Router egress too slow + tiny queue: forwarded packets get dropped at
  // the router, invisible to the sender.
  LineTopology t{/*router_queue=*/1};
  int delivered = 0;
  t.h2.register_flow_handler(1, [&](const Packet&) { ++delivered; });
  for (int i = 0; i < 50; ++i) ASSERT_EQ(t.h1.send(to(3, 1, 1460)), Node::SendResult::kSent);
  t.sim.run();
  EXPECT_GT(t.r.forward_drops(), 0u);
  EXPECT_LT(delivered, 50);
  EXPECT_EQ(delivered + static_cast<int>(t.r.forward_drops()), 50);
}

TEST(NodeTest, DuplicateFlowHandlerRejected) {
  sim::Simulation s;
  Node n{s, 1, "n"};
  n.register_flow_handler(1, [](const Packet&) {});
  EXPECT_THROW(n.register_flow_handler(1, [](const Packet&) {}), std::logic_error);
}

TEST(NodeTest, UnhandledFlowIsDroppedSilently) {
  LineTopology t;
  (void)t.h1.send(to(3, /*flow=*/42));
  t.sim.run();  // no handler for flow 42 at h2 — must not crash
  EXPECT_EQ(t.h2.delivered_packets(), 1u);
}

TEST(NodeTest, RouteValidation) {
  sim::Simulation s;
  Node n{s, 1, "n"};
  EXPECT_THROW(n.set_route(2, 0), std::out_of_range);
  EXPECT_THROW(n.set_default_route(0), std::out_of_range);
}

}  // namespace
}  // namespace rss::net
