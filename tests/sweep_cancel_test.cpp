// parallel_sweep error semantics: the first error is rethrown, and an error
// cancels the sweep so surviving workers stop claiming points instead of
// draining the whole range.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>

#include "scenario/sweep.hpp"

namespace {

using rss::scenario::parallel_map;
using rss::scenario::parallel_sweep;

TEST(ParallelSweep, RunsEveryIndexExactlyOnceWithoutErrors) {
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_sweep(kCount, [&](std::size_t i) { hits[i].fetch_add(1); }, 4);
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelSweep, SequentialErrorStopsAtThrowingIndex) {
  std::set<std::size_t> executed;
  EXPECT_THROW(
      parallel_sweep(
          100,
          [&](std::size_t i) {
            executed.insert(i);
            if (i == 3) throw std::runtime_error{"boom at 3"};
          },
          1),
      std::runtime_error);
  // Strict ordering in the single-worker path: nothing after the throwing
  // point may run.
  EXPECT_EQ(executed, (std::set<std::size_t>{0, 1, 2, 3}));
}

TEST(ParallelSweep, ErrorMessageSurvivesRethrow) {
  try {
    parallel_sweep(
        8, [](std::size_t i) { if (i == 0) throw std::runtime_error{"first error"}; }, 2);
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first error");
  }
}

TEST(ParallelSweep, ErrorCancelsSurvivingWorkersPromptly) {
  // Without cancellation the surviving workers drain all remaining points
  // (~kCount * kPointCost of wasted work); with it they stop as soon as the
  // flag is visible. The bound below fails by a wide margin on the
  // drain-everything behaviour but is generous to scheduling jitter.
  constexpr std::size_t kCount = 100000;
  std::atomic<std::size_t> executed{0};
  EXPECT_THROW(
      parallel_sweep(
          kCount,
          [&](std::size_t i) {
            if (i == 0) throw std::runtime_error{"cancel the rest"};
            executed.fetch_add(1, std::memory_order_relaxed);
            std::this_thread::sleep_for(std::chrono::microseconds{50});
          },
          4),
      std::runtime_error);
  EXPECT_LT(executed.load(), kCount / 2);
}

TEST(ParallelSweep, FirstObservedErrorWinsWhenAllThrow) {
  // Every point throws its own index; whichever the pool observed first is
  // rethrown, and it must be one of the indices that actually ran.
  constexpr std::size_t kCount = 64;
  std::vector<std::atomic<int>> ran(kCount);
  try {
    parallel_sweep(
        kCount,
        [&](std::size_t i) {
          ran[i].fetch_add(1);
          throw std::runtime_error{std::to_string(i)};
        },
        4);
    FAIL() << "expected rethrow";
  } catch (const std::runtime_error& e) {
    const std::size_t winner = std::stoul(e.what());
    ASSERT_LT(winner, kCount);
    EXPECT_EQ(ran[winner].load(), 1);
  }
}

TEST(ParallelMap, ResultsArePositionallyStable) {
  const std::vector<int> in{5, 3, 9, 1, 7};
  const auto out = parallel_map(in, [](int v) { return v * 10; }, 3);
  EXPECT_EQ(out, (std::vector<int>{50, 30, 90, 10, 70}));
}

}  // namespace
