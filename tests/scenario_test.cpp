#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "metrics/summary.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/dumbbell.hpp"
#include "scenario/sweep.hpp"
#include "scenario/tuning.hpp"
#include "scenario/wan_path.hpp"

namespace rss::scenario {
namespace {

using namespace rss::sim::literals;

TEST(WanPathTest, TopologyMatchesCanonicalPaper) {
  WanPath wan{WanPath::Config{}, make_reno_factory()};
  EXPECT_EQ(wan.nic().rate(), net::DataRate::mbps(100));
  EXPECT_EQ(wan.nic().ifq_capacity(), 100u);
  EXPECT_EQ(wan.nic().link()->delay(), 30_ms);
  EXPECT_EQ(wan.sender().mss(), 1460u);
}

TEST(WanPathTest, Web100AgentPollsWhenEnabled) {
  WanPath::Config cfg;
  cfg.web100_poll_period = 50_ms;
  WanPath wan{cfg, make_reno_factory()};
  wan.run_bulk_transfer(0_s, 1_s);
  ASSERT_NE(wan.agent(), nullptr);
  EXPECT_GE(wan.agent()->polls_taken(), 20u);
  EXPECT_GT(wan.agent()->series("ThruBytesAcked").back().value, 0.0);
}

TEST(WanPathTest, Web100CanBeDisabled) {
  WanPath::Config cfg;
  cfg.enable_web100 = false;
  WanPath wan{cfg, make_reno_factory()};
  EXPECT_EQ(wan.agent(), nullptr);
}

TEST(WanPathTest, BdpMatchesHandComputation) {
  const core::CanonicalPath path{};
  // 100 Mbps * 60 ms = 750000 bytes / 1500 B-frames = 500 packets.
  EXPECT_NEAR(path.bdp_packets(), 500.0, 1.0);
  EXPECT_EQ(path.rtt(), 60_ms);
}

TEST(DumbbellTest, FlowsShareBottleneckFairly) {
  Dumbbell::Config cfg;
  cfg.flows = 4;
  Dumbbell d{cfg, [](std::size_t) { return std::make_unique<tcp::RenoCongestionControl>(); }};
  for (std::size_t i = 0; i < 4; ++i) d.start_flow(i, 0_s);
  d.simulation().run_until(30_s);

  const auto goodputs = d.goodputs_mbps(0_s, 30_s);
  const double total = std::accumulate(goodputs.begin(), goodputs.end(), 0.0);
  EXPECT_GT(total, 50.0);   // bottleneck is reasonably utilized
  EXPECT_LE(total, 100.0);  // and not exceeded
  EXPECT_GT(metrics::jain_fairness(goodputs), 0.7);
}

TEST(DumbbellTest, RouterQueueCongestionCausesNetworkDrops) {
  Dumbbell::Config cfg;
  cfg.flows = 2;
  cfg.router_queue_packets = 30;
  Dumbbell d{cfg, [](std::size_t) { return std::make_unique<tcp::RenoCongestionControl>(); }};
  d.start_flow(0, 0_s);
  d.start_flow(1, 100_ms);
  d.simulation().run_until(15_s);
  EXPECT_GT(d.bottleneck().ifq().stats().dropped, 0u);
  // Senders saw fast retransmits from those drops.
  EXPECT_GT(d.sender(0).mib().FastRetran + d.sender(1).mib().FastRetran, 0u);
}

TEST(DumbbellTest, MixedAlgorithmsCoexist) {
  Dumbbell::Config cfg;
  cfg.flows = 2;
  Dumbbell d{cfg, [](std::size_t i) -> std::unique_ptr<tcp::CongestionControl> {
               if (i == 0) return std::make_unique<core::RestrictedSlowStart>();
               return std::make_unique<tcp::RenoCongestionControl>();
             }};
  d.start_flow(0, 0_s);
  d.start_flow(1, 0_s);
  d.simulation().run_until(20_s);
  EXPECT_EQ(d.sender(0).congestion_control().name(), "restricted-slow-start");
  EXPECT_EQ(d.sender(1).congestion_control().name(), "reno");
  EXPECT_GT(d.sender(0).bytes_acked(), 0u);
  EXPECT_GT(d.sender(1).bytes_acked(), 0u);
}

TEST(DumbbellTest, ValidatesConfig) {
  Dumbbell::Config cfg;
  cfg.flows = 0;
  EXPECT_THROW(Dumbbell(cfg, [](std::size_t) {
                 return std::make_unique<tcp::RenoCongestionControl>();
               }),
               std::invalid_argument);
}

TEST(ParallelSweepTest, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(100);
  parallel_sweep(100, [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelSweepTest, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_sweep(
          16, [](std::size_t i) { if (i == 7) throw std::runtime_error("boom"); }, 4),
      std::runtime_error);
}

TEST(ParallelSweepTest, ZeroCountIsNoop) {
  parallel_sweep(0, [](std::size_t) { FAIL(); }, 4);
}

TEST(ParallelSweepTest, SingleThreadPathWorks) {
  int sum = 0;
  parallel_sweep(10, [&](std::size_t i) { sum += static_cast<int>(i); }, 1);
  EXPECT_EQ(sum, 45);
}

TEST(ParallelMapTest, ResultsArePositional) {
  const std::vector<int> in{1, 2, 3, 4, 5};
  const auto out = parallel_map(in, [](int x) { return x * x; }, 4);
  EXPECT_EQ(out, (std::vector<int>{1, 4, 9, 16, 25}));
}

TEST(ParallelSweepTest, IndependentSimulationsRunConcurrently) {
  // Smoke test for thread-safety of whole-simulation parallelism: N
  // identical WanPaths must produce identical results.
  std::vector<std::uint64_t> acked(6);
  parallel_sweep(
      6,
      [&](std::size_t i) {
        WanPath wan{WanPath::Config{}, make_reno_factory()};
        wan.run_bulk_transfer(0_s, 3_s);
        acked[i] = wan.sender().bytes_acked();
      },
      6);
  for (std::size_t i = 1; i < acked.size(); ++i) EXPECT_EQ(acked[i], acked[0]);
  EXPECT_GT(acked[0], 0u);
}

TEST(TuningTest, SimInLoopZieglerNicholsFindsGains) {
  TuneOptions opt;
  opt.duration = 10_s;
  opt.tuner.kp_initial = 0.01;
  opt.tuner.kp_max = 100.0;
  opt.tuner.bisection_steps = 4;
  const auto result = tune_restricted_slow_start(opt);
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->kc, 0.0);
  EXPECT_GT(result->tc, 0.0);
  EXPECT_LT(result->tc, 10.0);
  const auto gains = result->paper_rule();
  EXPECT_NEAR(gains.kp, 0.33 * result->kc, 1e-9);
  EXPECT_NEAR(gains.ti, 0.5 * result->tc, 1e-9);
  EXPECT_NEAR(gains.td, 0.33 * result->tc, 1e-9);
}

}  // namespace
}  // namespace rss::scenario
