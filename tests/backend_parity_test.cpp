// Backend parity: the binary-heap and calendar-queue Scheduler backends
// must be observationally identical — same execution order, same now() at
// every callback, same events_executed(), same cancel() results — for any
// event script a simulation can produce. The script below mixes bulk
// scheduling, re-entrant scheduling from callbacks, random cancellation
// (including from inside callbacks), run_until() phases, and
// next_event_time() probes between phases.

#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulation.hpp"

namespace rss::sim {
namespace {

using namespace rss::sim::literals;

struct ParityPlan {
  std::uint64_t seed;
  std::size_t events;
  std::int64_t horizon_ns;
};

/// Everything observable about one run, for exact comparison.
struct RunTrace {
  std::vector<std::pair<std::int64_t, std::size_t>> fired;  // (now at firing, label)
  std::vector<bool> cancel_results;
  std::vector<std::int64_t> probes;  // next_event_time() between phases
  std::int64_t final_now{};
  std::uint64_t executed{};
  std::size_t pending{};
};

RunTrace drive(QueueBackend backend, const ParityPlan& plan) {
  Scheduler s{backend};
  Rng rng{plan.seed};
  RunTrace trace;
  std::vector<EventId> ids;
  std::size_t next_label = 0;

  const auto record = [&trace, &s](std::size_t label) {
    trace.fired.emplace_back(s.now().nanoseconds_count(), label);
  };
  // Re-entrant body: fires, then sometimes schedules a child or cancels a
  // random earlier event from inside the callback. All rng draws happen in
  // callback execution order, so divergent order also diverges the script —
  // any parity break cascades into an obvious trace mismatch.
  const std::function<void(std::size_t)> body = [&](std::size_t label) {
    record(label);
    if (rng.next_bool(0.3)) {
      const std::size_t child = next_label++;
      const Time at = s.now() + Time::nanoseconds(static_cast<std::int64_t>(
                                    rng.next_in(0, 1'000'000)));
      ids.push_back(s.schedule_at(at, [&body, child] { body(child); }));
    }
    if (rng.next_bool(0.15) && !ids.empty()) {
      const auto victim = rng.next_in(0, ids.size() - 1);
      trace.cancel_results.push_back(s.cancel(ids[victim]));
    }
  };

  // Phase 1: bulk schedule across the whole horizon.
  for (std::size_t i = 0; i < plan.events; ++i) {
    const std::size_t label = next_label++;
    const Time at = Time::nanoseconds(
        static_cast<std::int64_t>(rng.next_in(0, static_cast<std::uint64_t>(plan.horizon_ns))));
    ids.push_back(s.schedule_at(at, [&body, label] { body(label); }));
  }
  // Random up-front cancellations, some of which will later be re-cancelled.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (rng.next_bool(0.2)) trace.cancel_results.push_back(s.cancel(ids[i]));
  }
  trace.probes.push_back(s.next_event_time().nanoseconds_count());

  // Phase 2: run the first half of the horizon, then schedule more events
  // into the still-open window (exercises the calendar's monotonic floor).
  s.run_until(Time::nanoseconds(plan.horizon_ns / 2));
  trace.probes.push_back(s.next_event_time().nanoseconds_count());
  for (std::size_t i = 0; i < plan.events / 4; ++i) {
    const std::size_t label = next_label++;
    const Time at = s.now() + Time::nanoseconds(static_cast<std::int64_t>(
                                  rng.next_in(0, static_cast<std::uint64_t>(plan.horizon_ns))));
    ids.push_back(s.schedule_at(at, [&body, label] { body(label); }));
  }

  // Phase 3: cancel a batch (mix of fired, pending, and already-cancelled).
  for (std::size_t i = 0; i < ids.size(); i += 7) {
    trace.cancel_results.push_back(s.cancel(ids[i]));
  }
  trace.probes.push_back(s.next_event_time().nanoseconds_count());

  // Phase 3b: event trains riding through the same window, one of which is
  // cancelled from inside its own callback mid-flight.
  for (int t = 0; t < 4; ++t) {
    const std::size_t label = next_label++;
    const Time start = s.now() + Time::nanoseconds(static_cast<std::int64_t>(
                                     rng.next_in(1, 1'000'000)));
    const Time stride =
        Time::nanoseconds(static_cast<std::int64_t>(rng.next_in(1, 200'000)));
    ids.push_back(s.schedule_train(start, stride, 8, [&record, label] { record(label); }));
  }
  // A self-cancelling train: the third firing kills the remaining 97.
  {
    const std::size_t label = next_label++;
    auto state = std::make_shared<std::pair<int, EventId>>();  // (firings, own id)
    state->second = s.schedule_train(
        s.now() + Time::nanoseconds(500), Time::nanoseconds(77'000), 100,
        [&record, &trace, &s, label, state] {
          record(label);
          if (++state->first == 3) trace.cancel_results.push_back(s.cancel(state->second));
        });
  }
  trace.probes.push_back(s.next_event_time().nanoseconds_count());

  // Phase 4: drain.
  s.run();
  trace.final_now = s.now().nanoseconds_count();
  trace.executed = s.events_executed();
  trace.pending = s.pending();
  return trace;
}

class BackendParityTest : public ::testing::TestWithParam<ParityPlan> {};

TEST_P(BackendParityTest, CalendarMatchesHeapExactly) {
  const auto heap = drive(QueueBackend::kBinaryHeap, GetParam());
  const auto cal = drive(QueueBackend::kCalendarQueue, GetParam());

  ASSERT_EQ(heap.fired.size(), cal.fired.size());
  for (std::size_t i = 0; i < heap.fired.size(); ++i) {
    EXPECT_EQ(heap.fired[i], cal.fired[i]) << "firing " << i;
  }
  EXPECT_EQ(heap.cancel_results, cal.cancel_results);
  EXPECT_EQ(heap.probes, cal.probes);
  EXPECT_EQ(heap.final_now, cal.final_now);
  EXPECT_EQ(heap.executed, cal.executed);
  EXPECT_EQ(heap.pending, cal.pending);
}

INSTANTIATE_TEST_SUITE_P(
    Plans, BackendParityTest,
    ::testing::Values(ParityPlan{11, 200, 1'000},           // dense ties
                      ParityPlan{12, 1'000, 1'000'000},     // typical
                      ParityPlan{13, 3'000, 100},           // extreme tie pressure
                      ParityPlan{14, 800, 1'000'000'000},   // sparse far-future
                      ParityPlan{15, 500, 50'000}),
    [](const ::testing::TestParamInfo<ParityPlan>& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.events);
    });

// The calendar backend must survive the pattern that breaks a naive lazy-
// cancellation port: cancel the only (future) event, probe next_event_time,
// then schedule *earlier* than the cancelled event's timestamp.
TEST(BackendParityTest, CalendarScheduleBelowCancelledFutureEvent) {
  Scheduler s{QueueBackend::kCalendarQueue};
  const EventId far = s.schedule_at(10_ms, [] { FAIL() << "cancelled event fired"; });
  EXPECT_TRUE(s.cancel(far));
  EXPECT_EQ(s.next_event_time(), Time::infinity());
  bool fired = false;
  s.schedule_at(1_ms, [&fired] { fired = true; });
  s.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(s.now(), 1_ms);
  EXPECT_EQ(s.events_executed(), 1u);
}

// run_until(infinity) must drain the queue and return — "no events left"
// has to terminate the loop even though no event time exceeds infinity —
// and per the documented contract ("events at exactly `until` do fire") an
// event scheduled at the infinity sentinel itself still fires.
TEST(BackendParityTest, RunUntilInfinityDrainsAndReturns) {
  for (const auto backend : {QueueBackend::kBinaryHeap, QueueBackend::kCalendarQueue}) {
    Scheduler s{backend};
    int fired = 0;
    s.schedule_at(1_ms, [&fired] { ++fired; });
    s.schedule_at(2_ms, [&fired] { ++fired; });
    s.schedule_at(Time::infinity(), [&fired] { ++fired; });
    s.run_until(Time::infinity());
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(s.now(), Time::infinity());
    EXPECT_TRUE(s.empty());
  }
}

// schedule_train semantics, exercised identically on both backends: firing
// times, run_until splits mid-train, external cancellation of the remnant,
// and the pending-count contract (a train is ONE pending event).
TEST(BackendParityTest, TrainFiresCountTimesAtStride) {
  for (const auto backend : {QueueBackend::kBinaryHeap, QueueBackend::kCalendarQueue}) {
    Scheduler s{backend};
    std::vector<std::int64_t> fire_ns;
    const EventId id =
        s.schedule_train(1_ms, 250_us, 5, [&fire_ns, &s] {
          fire_ns.push_back(s.now().nanoseconds_count());
        });
    EXPECT_TRUE(id.valid());
    EXPECT_EQ(s.pending(), 1u);

    // Split the train across a run_until boundary.
    s.run_until(Time::microseconds(1'250));
    EXPECT_EQ(fire_ns.size(), 2u);
    EXPECT_EQ(s.pending(), 1u);  // remnant still counts as one pending event

    s.run();
    ASSERT_EQ(fire_ns.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(fire_ns[i], 1'000'000 + static_cast<std::int64_t>(i) * 250'000);
    }
    EXPECT_EQ(s.pending(), 0u);
    EXPECT_FALSE(s.cancel(id));  // exhausted trains are no longer cancellable
  }
}

TEST(BackendParityTest, CancelStopsTrainRemnant) {
  for (const auto backend : {QueueBackend::kBinaryHeap, QueueBackend::kCalendarQueue}) {
    Scheduler s{backend};
    int fires = 0;
    const EventId id = s.schedule_train(1_ms, 1_ms, 10, [&fires] { ++fires; });
    s.run_until(3_ms);
    EXPECT_EQ(fires, 3);
    EXPECT_TRUE(s.cancel(id));
    EXPECT_EQ(s.pending(), 0u);
    s.run();
    EXPECT_EQ(fires, 3);
    EXPECT_EQ(s.now(), 3_ms);
  }
}

TEST(BackendParityTest, CancelInsideTrainCallbackStopsFutureFirings) {
  for (const auto backend : {QueueBackend::kBinaryHeap, QueueBackend::kCalendarQueue}) {
    Scheduler s{backend};
    auto state = std::make_shared<std::pair<int, EventId>>();
    bool cancel_result = false;
    state->second = s.schedule_train(1_ms, 1_ms, 10, [state, &s, &cancel_result] {
      if (++state->first == 4) cancel_result = s.cancel(state->second);
    });
    s.run();
    EXPECT_EQ(state->first, 4);
    EXPECT_TRUE(cancel_result);  // the train still had six firings to cancel
    EXPECT_EQ(s.now(), 4_ms);
    EXPECT_EQ(s.pending(), 0u);
  }
}

TEST(BackendParityTest, TrainValidation) {
  Scheduler s;
  // count == 0 is a no-op with an inert id.
  EXPECT_FALSE(s.schedule_train(1_ms, 1_ms, 0, [] {}).valid());
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_THROW(s.schedule_train(1_ms, Time::nanoseconds(-1), 3, [] {}),
               std::invalid_argument);
  EXPECT_THROW(s.schedule_train(Time::infinity(), 1_ms, 2, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_train(1_ms, Time::infinity(), 2, [] {}), std::invalid_argument);
  // A finite stride whose span would overflow the int64 nanosecond clock
  // (stride ~4.0e18 ns is representable; the 4th firing at ~1.2e19 is not).
  EXPECT_THROW(s.schedule_train(1_ms, Time::seconds(4'000'000'000), 4, [] {}),
               std::invalid_argument);
  EXPECT_EQ(s.pending(), 0u);
  // A single firing at infinity is still allowed (matches schedule_at).
  EXPECT_TRUE(s.schedule_train(Time::infinity(), Time::zero(), 1, [] {}).valid());
}

TEST(BackendParityTest, SimulationSelectsBackend) {
  Simulation sim{42, QueueBackend::kCalendarQueue};
  EXPECT_EQ(sim.scheduler().backend(), QueueBackend::kCalendarQueue);
  std::vector<int> order;
  sim.at(2_ms, [&order] { order.push_back(2); });
  sim.at(1_ms, [&order] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sim.now(), 2_ms);
}

}  // namespace
}  // namespace rss::sim
