#include "tcp/sequence.hpp"

#include <gtest/gtest.h>

namespace rss::tcp {
namespace {

TEST(SeqNumTest, BasicOrdering) {
  EXPECT_LT(SeqNum{100}, SeqNum{200});
  EXPECT_GT(SeqNum{200}, SeqNum{100});
  EXPECT_LE(SeqNum{100}, SeqNum{100});
  EXPECT_EQ(SeqNum{7}, SeqNum{7});
  EXPECT_NE(SeqNum{7}, SeqNum{8});
}

TEST(SeqNumTest, OrderingAcrossWrap) {
  const SeqNum near_max{0xFFFFFF00u};
  const SeqNum wrapped{0x00000100u};
  EXPECT_LT(near_max, wrapped);  // wrapped is logically ahead
  EXPECT_GT(wrapped, near_max);
}

TEST(SeqNumTest, AdditionWraps) {
  const SeqNum s{0xFFFFFFF0u};
  const SeqNum t = s + 0x20u;
  EXPECT_EQ(t.raw(), 0x10u);
  EXPECT_GT(t, s);
}

TEST(SeqNumTest, SubtractionWraps) {
  const SeqNum s{0x10u};
  EXPECT_EQ((s - 0x20u).raw(), 0xFFFFFFF0u);
}

TEST(SeqNumTest, DistanceSigned) {
  EXPECT_EQ(distance(SeqNum{100}, SeqNum{150}), 50);
  EXPECT_EQ(distance(SeqNum{150}, SeqNum{100}), -50);
  EXPECT_EQ(distance(SeqNum{0xFFFFFF00u}, SeqNum{0x100u}), 0x200);
  EXPECT_EQ(distance(SeqNum{0x100u}, SeqNum{0xFFFFFF00u}), -0x200);
}

TEST(SeqNumTest, DistanceRoundTripsWithAddition) {
  for (std::uint32_t base : {0u, 1000u, 0x7FFFFFFFu, 0xFFFFFFFEu}) {
    const SeqNum s{base};
    for (std::uint32_t delta : {0u, 1u, 1460u, 0x10000u}) {
      EXPECT_EQ(distance(s, s + delta), static_cast<std::int32_t>(delta));
    }
  }
}

TEST(SeqNumTest, HalfRangeBoundaryBehaviour) {
  // Values exactly 2^31 apart are the ambiguous case: the signed distance
  // is INT32_MIN in both directions, so the pair is unordered (RFC 1982
  // leaves this undefined). TCP windows never span 2^31, so this is
  // documentation, not a constraint.
  const SeqNum a{0};
  const SeqNum b{0x80000000u};
  EXPECT_FALSE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace rss::tcp
