#include "control/pid.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "control/plant.hpp"

namespace rss::control {
namespace {

TEST(PidTest, ProportionalOnlyIsKpTimesError) {
  PidController pid{PidGains{2.0, 0.0, 0.0}};
  EXPECT_DOUBLE_EQ(pid.update(3.0, 0.1), 6.0);
  EXPECT_DOUBLE_EQ(pid.update(-1.5, 0.1), -3.0);
}

TEST(PidTest, RejectsNonPositiveDt) {
  PidController pid{PidGains{1.0, 0.0, 0.0}};
  EXPECT_THROW(pid.update(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(pid.update(1.0, -1.0), std::invalid_argument);
}

TEST(PidTest, IntegralAccumulatesBackwardEuler) {
  // Kp=1, Ti=1: after n steps of constant error e with step dt, the
  // integral is e*n*dt.
  PidController pid{PidGains{1.0, 1.0, 0.0}};
  double out = 0.0;
  for (int i = 0; i < 10; ++i) out = pid.update(2.0, 0.1);
  EXPECT_NEAR(out, 2.0 + 2.0, 1e-9);
}

TEST(PidTest, IntegralDisabledWhenTiNonPositive) {
  PidController pid{PidGains{1.0, 0.0, 0.0}};
  for (int i = 0; i < 5; ++i) pid.update(1.0, 0.1);
  EXPECT_DOUBLE_EQ(pid.integral(), 0.0);
}

TEST(PidTest, DerivativeRespondsToErrorSlope) {
  // Large filter N so the filtered derivative tracks the raw slope closely.
  PidController pid{PidGains{1.0, 0.0, 1.0}, OutputLimits{}, 1000.0};
  pid.update(0.0, 0.1);
  // Error ramps at 10/s; D-term contribution ~ Td * 10 = 10.
  const double out = pid.update(1.0, 0.1);
  EXPECT_NEAR(out, 1.0 + 10.0, 0.15);
}

TEST(PidTest, NoDerivativeKickOnFirstSample) {
  PidController pid{PidGains{1.0, 0.0, 5.0}};
  const double out = pid.update(100.0, 0.01);
  EXPECT_DOUBLE_EQ(out, 100.0);  // P only: derivative needs two samples
}

TEST(PidTest, OutputSaturatesAtLimits) {
  PidController pid{PidGains{10.0, 0.0, 0.0}, OutputLimits{-1.0, 1.0}};
  EXPECT_DOUBLE_EQ(pid.update(100.0, 0.1), 1.0);
  EXPECT_DOUBLE_EQ(pid.update(-100.0, 0.1), -1.0);
}

TEST(PidTest, AntiWindupFreezesIntegralDuringSaturation) {
  PidController pid{PidGains{1.0, 10.0, 0.0}, OutputLimits{-1.0, 1.0}};
  for (int i = 0; i < 100; ++i) pid.update(10.0, 0.1);
  // Without anti-windup the integral would reach 10*10 = 100; conditional
  // integration must have kept it tiny.
  EXPECT_LT(pid.integral(), 1.0);
  // Recovery: when the error flips, output leaves the rail immediately.
  const double out = pid.update(-0.5, 0.1);
  EXPECT_LT(out, 1.0);
}

TEST(PidTest, ResetClearsState) {
  PidController pid{PidGains{1.0, 1.0, 1.0}};
  pid.update(5.0, 0.1);
  pid.update(7.0, 0.1);
  pid.reset();
  EXPECT_DOUBLE_EQ(pid.integral(), 0.0);
  EXPECT_DOUBLE_EQ(pid.last_output(), 0.0);
  // After reset the derivative must not kick; the integral restarts from
  // a single e*dt rectangle.
  EXPECT_DOUBLE_EQ(pid.update(3.0, 0.1), 3.0 + 3.0 * 0.1 / 1.0);
}

TEST(PidTest, SetIntegralRecentresController) {
  PidController pid{PidGains{1.0, 1.0, 0.0}};
  for (int i = 0; i < 50; ++i) pid.update(1.0, 0.1);
  EXPECT_GT(pid.integral(), 1.0);
  pid.set_integral(0.0);
  EXPECT_DOUBLE_EQ(pid.integral(), 0.0);
}

TEST(PidTest, ClosedLoopDrivesFirstOrderPlantToSetpoint) {
  // PI control of a first-order lag: zero steady-state error expected.
  FirstOrderPlant plant{2.0, 0.5};
  PidController pid{PidGains{1.0, 0.5, 0.0}};
  const double setpoint = 3.0;
  double y = 0.0;
  for (int i = 0; i < 5000; ++i) y = plant.step(pid.update(setpoint - y, 0.01), 0.01);
  EXPECT_NEAR(y, setpoint, 0.01);
}

TEST(PidTest, POnlyLeavesSteadyStateError) {
  // Proportional-only on a finite-gain plant cannot remove offset:
  // y_ss = K*Kp/(1 + K*Kp) * setpoint.
  FirstOrderPlant plant{1.0, 0.2};
  PidController pid{PidGains{1.0, 0.0, 0.0}};
  const double setpoint = 1.0;
  double y = 0.0;
  for (int i = 0; i < 5000; ++i) y = plant.step(pid.update(setpoint - y, 0.01), 0.01);
  EXPECT_NEAR(y, 0.5, 0.01);
}

}  // namespace
}  // namespace rss::control
