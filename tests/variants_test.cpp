// Tests for the additional congestion-control variants (Tahoe, Vegas) and
// the name-based factory registry.

#include <gtest/gtest.h>

#include "scenario/cc_factories.hpp"
#include "scenario/wan_path.hpp"
#include "tcp/tahoe.hpp"
#include "tcp/vegas.hpp"

namespace rss::tcp {
namespace {

using namespace rss::sim::literals;
using scenario::WanPath;

class MockHost final : public CcHost {
 public:
  double cwnd{2 * 1460.0};
  double ssthresh{1e9};
  std::uint64_t flight{0};
  sim::Time now_v{sim::Time::zero()};
  sim::Time srtt_v{sim::Time::zero()};

  [[nodiscard]] double cwnd_bytes() const override { return cwnd; }
  void set_cwnd_bytes(double c) override { cwnd = c; }
  [[nodiscard]] double ssthresh_bytes() const override { return ssthresh; }
  void set_ssthresh_bytes(double s) override { ssthresh = s; }
  [[nodiscard]] std::uint32_t mss() const override { return 1460; }
  [[nodiscard]] std::uint64_t flight_size_bytes() const override { return flight; }
  [[nodiscard]] sim::Time now() const override { return now_v; }
  [[nodiscard]] std::size_t ifq_occupancy_packets() const override { return 0; }
  [[nodiscard]] std::size_t ifq_capacity_packets() const override { return 100; }
  [[nodiscard]] sim::Time srtt() const override { return srtt_v; }
};

TEST(TahoeTest, FastRetransmitCollapsesToOneMss) {
  MockHost host;
  TahoeCongestionControl tahoe;
  tahoe.attach(host);
  host.cwnd = 100 * 1460.0;
  host.flight = 80 * 1460;
  tahoe.on_fast_retransmit();
  EXPECT_DOUBLE_EQ(host.cwnd, 1460.0);
  EXPECT_DOUBLE_EQ(host.ssthresh, 40.0 * 1460.0);
  EXPECT_EQ(tahoe.name(), "tahoe");
  EXPECT_TRUE(tahoe.in_slow_start());  // restarts slow-start
}

TEST(TahoeTest, UnderperformsRenoUnderLoss) {
  auto run = [](const scenario::CcFactory& f) {
    WanPath::Config cfg;
    cfg.enable_web100 = false;
    cfg.path.ifq_capacity_packets = 100'000;
    WanPath wan{cfg, f};
    wan.nic().link()->set_loss_rate(0.003, sim::Rng{17});
    wan.run_bulk_transfer(0_s, 20_s);
    return wan.goodput_mbps(0_s, 20_s);
  };
  const double tahoe = run(scenario::make_tahoe_factory());
  const double reno = run(scenario::make_reno_factory());
  EXPECT_LT(tahoe, reno) << "fast recovery must beat slow-start restarts";
  EXPECT_GT(tahoe, 1.0);
}

TEST(VegasTest, SlowStartDoublesEveryOtherRtt) {
  MockHost host;
  VegasCongestionControl vegas;
  vegas.attach(host);
  host.srtt_v = 60_ms;  // base RTT == current RTT: no queueing signal
  const double before = host.cwnd;
  vegas.on_ack(1460);
  vegas.on_ack(1460);
  // Two ACKs -> one increment (half the stock slow-start rate).
  EXPECT_DOUBLE_EQ(host.cwnd, before + 1460.0);
}

TEST(VegasTest, ExitsSlowStartWhenQueueBuilds) {
  MockHost host;
  VegasCongestionControl vegas;
  vegas.attach(host);
  host.cwnd = 100 * 1460.0;
  host.srtt_v = 60_ms;
  vegas.on_ack(1460);  // records base RTT = 60 ms
  ASSERT_TRUE(vegas.in_slow_start());
  // RTT inflates 30%: diff = cwnd*(1 - 60/78) ~ 23 segments >> gamma.
  host.srtt_v = 78_ms;
  vegas.on_ack(1460);
  EXPECT_FALSE(vegas.in_slow_start());
  EXPECT_DOUBLE_EQ(host.ssthresh, host.cwnd);
}

TEST(VegasTest, HoldsInsideAlphaBetaBand) {
  MockHost host;
  VegasCongestionControl vegas;
  vegas.attach(host);
  host.cwnd = 100 * 1460.0;
  host.ssthresh = 50 * 1460.0;  // CA
  host.srtt_v = 60_ms;
  vegas.on_ack(1460);  // base = 60 ms
  // Pick RTT so diff lands between alpha (2) and beta (4): diff = cwnd_seg *
  // (1 - base/rtt) * ... choose rtt = 61.85 ms -> diff ~ 3.
  host.srtt_v = sim::Time::microseconds(61'850);
  const double before = host.cwnd;
  vegas.on_ack(1460);
  EXPECT_NEAR(host.cwnd, before, 1.0);
}

TEST(VegasTest, BacksOffAboveBeta) {
  MockHost host;
  VegasCongestionControl vegas;
  vegas.attach(host);
  host.cwnd = 100 * 1460.0;
  host.ssthresh = 50 * 1460.0;
  host.srtt_v = 60_ms;
  vegas.on_ack(1460);
  host.srtt_v = 70_ms;  // diff ~ 100*(1-6/7) ~ 14 > beta
  const double before = host.cwnd;
  vegas.on_ack(1460);
  EXPECT_LT(host.cwnd, before);
}

TEST(VegasTest, AvoidsLossOnThePaperPathButSlower) {
  // Vegas throttles on RTT inflation, so it too avoids IFQ overflow — at
  // the cost of hovering lower than RSS (it backs off at the *path* queue,
  // not at 90% of the local IFQ).
  WanPath::Config cfg;
  cfg.enable_web100 = false;
  WanPath wan{cfg, scenario::make_vegas_factory()};
  wan.run_bulk_transfer(0_s, 25_s);
  EXPECT_LE(wan.sender().mib().SendStall, 1u);
  EXPECT_GT(wan.goodput_mbps(0_s, 25_s), 40.0);
}

TEST(FactoryRegistryTest, NamesResolveAndMatchAlgorithms) {
  for (const auto& name : scenario::variant_names()) {
    WanPath::Config cfg;
    cfg.enable_web100 = false;
    WanPath wan{cfg, scenario::factory_by_name(name)};
    EXPECT_EQ(wan.sender().congestion_control().name(), name);
  }
  EXPECT_THROW(scenario::factory_by_name("bbr"), std::invalid_argument);
}

TEST(FactoryRegistryTest, AliasesWork) {
  EXPECT_NO_THROW(scenario::factory_by_name("rss"));
  EXPECT_NO_THROW(scenario::factory_by_name("standard"));
  EXPECT_NO_THROW(scenario::factory_by_name("lss"));
}

}  // namespace
}  // namespace rss::tcp
