// Focused edge-case tests for the TcpSender state machine: stall-retry
// with an empty pipe, RTO backoff, go-back-N, ACK pathologies, and flow
// control by the advertised window.

#include <gtest/gtest.h>

#include "scenario/cc_factories.hpp"
#include "scenario/wan_path.hpp"
#include "workload/apps.hpp"

namespace rss::tcp {
namespace {

using namespace rss::sim::literals;
using scenario::WanPath;

TEST(TcpSenderEdgeTest, FirstSendStalledWithEmptyPipeRetriesViaTimer) {
  // Fill the IFQ with cross traffic *before* TCP sends its first byte: the
  // very first segment is rejected with nothing in flight, so no ACK will
  // ever clock a retry — the stall-retry timer must.
  WanPath::Config cfg;
  cfg.enable_web100 = false;
  WanPath wan{cfg, scenario::make_reno_factory()};

  // Saturate the NIC: 200 Mbit/s offered into 100 Mbit/s for 0.5 s.
  workload::PoissonPacketSource::Options xopt;
  xopt.dst_node = 2;
  xopt.packets_per_second = 17'000.0;
  xopt.stop = 500_ms;
  workload::PoissonPacketSource cross{wan.simulation(), wan.sender_node(), xopt};

  // Start TCP at 100 ms, well inside the saturation window.
  wan.simulation().at(100_ms, [&] { wan.sender().set_unlimited(true); });
  wan.simulation().run_until(5_s);

  EXPECT_GT(wan.sender().mib().SendStall, 0u) << "setup failed to provoke a stall";
  // Despite the initial rejection, the transfer got going.
  EXPECT_GT(wan.sender().bytes_acked(), 1'000'000u);
}

TEST(TcpSenderEdgeTest, TotalBlackoutBacksOffExponentially) {
  // 100% loss after startup: every retransmission times out; Timeouts must
  // accumulate slowly (backoff doubling), not once per base RTO.
  WanPath::Config cfg;
  cfg.enable_web100 = false;
  cfg.path.ifq_capacity_packets = 10'000;
  WanPath wan{cfg, scenario::make_reno_factory()};
  wan.simulation().at(0_s, [&] { wan.sender().set_unlimited(true); });
  // Let it establish, then black out.
  wan.simulation().at(2_s, [&] { wan.nic().link()->set_loss_rate(0.999999, sim::Rng{1}); });
  wan.simulation().run_until(62_s);

  const auto timeouts = wan.sender().mib().Timeouts;
  EXPECT_GE(timeouts, 3u);
  // 60 s of blackout with doubling from ~0.2 s: 0.2+0.4+...+51.2 ~ 9 shots,
  // plus the 60 s cap. Without backoff we would see hundreds.
  EXPECT_LE(timeouts, 12u);
  EXPECT_GT(wan.sender().rtt_estimator().backoff_shift(), 2);
}

TEST(TcpSenderEdgeTest, RecoversAfterBlackoutEnds) {
  WanPath::Config cfg;
  cfg.enable_web100 = false;
  cfg.path.ifq_capacity_packets = 10'000;
  WanPath wan{cfg, scenario::make_reno_factory()};
  wan.simulation().at(0_s, [&] { wan.sender().set_unlimited(true); });
  wan.simulation().at(2_s, [&] { wan.nic().link()->set_loss_rate(0.999999, sim::Rng{1}); });
  wan.simulation().at(4_s, [&] { wan.nic().link()->set_loss_rate(0.0, sim::Rng{1}); });
  wan.simulation().run_until(20_s);

  const std::uint64_t acked_at_blackout = 2 * 12'500'000 / 2;  // rough bound
  EXPECT_GT(wan.sender().bytes_acked(), acked_at_blackout);
  EXPECT_GT(wan.sender().mib().Timeouts, 0u);
  // After the blackout the flow resumes. Repeated RTOs legitimately
  // collapse ssthresh to 2 MSS, so the post-blackout climb is congestion
  // avoidance from scratch — expect steady progress, not full line rate.
  const double avg_mbps = static_cast<double>(wan.sender().bytes_acked()) * 8 / 18.0 / 1e6;
  EXPECT_GT(avg_mbps, 10.0);
}

TEST(TcpSenderEdgeTest, AdvertisedWindowLimitsFlight) {
  WanPath::Config cfg;
  cfg.enable_web100 = false;
  cfg.receiver.advertised_window = 64 * 1460;  // 64 segments
  WanPath wan{cfg, scenario::make_reno_factory()};
  wan.run_bulk_transfer(0_s, 10_s);
  // Goodput capped at rwnd/RTT = 64*1460*8/0.06 ~ 12.5 Mbit/s.
  const double goodput = wan.goodput_mbps(0_s, 10_s);
  EXPECT_LT(goodput, 14.0);
  EXPECT_GT(goodput, 8.0);
  EXPECT_EQ(wan.sender().mib().SendStall, 0u);  // flow control, not stalls
}

TEST(TcpSenderEdgeTest, AppLimitedTrickleNeverStalls) {
  WanPath::Config cfg;
  cfg.enable_web100 = false;
  WanPath wan{cfg, scenario::make_reno_factory()};
  workload::OnOffApp::Options opt;
  opt.on_duration = 100_ms;
  opt.off_duration = 400_ms;
  opt.rate = net::DataRate::mbps(2);
  workload::OnOffApp app{wan.simulation(), wan.sender(), opt};
  wan.simulation().run_until(10_s);
  EXPECT_EQ(wan.sender().mib().SendStall, 0u);
  // 2 Mbit/s x 100 ms bursts every 500 ms over 10 s ~ 0.5 MB offered.
  EXPECT_GT(wan.receiver().bytes_received(), 400'000u);
  // Everything offered was delivered (app-limited, lossless), modulo the
  // final burst still in flight at the cutoff.
  EXPECT_NEAR(static_cast<double>(wan.receiver().bytes_received()),
              static_cast<double>(app.bytes_offered()), 30'000.0);
}

TEST(TcpSenderEdgeTest, ConstructionValidation) {
  WanPath::Config cfg;
  cfg.enable_web100 = false;
  EXPECT_THROW(WanPath(cfg, scenario::CcFactory{}), std::invalid_argument);
  EXPECT_THROW(WanPath(cfg, [] { return std::unique_ptr<CongestionControl>{}; }),
               std::invalid_argument);
}

TEST(TcpSenderEdgeTest, ZeroLengthAppWriteIsNoop) {
  WanPath::Config cfg;
  cfg.enable_web100 = false;
  WanPath wan{cfg, scenario::make_reno_factory()};
  wan.sender().app_write(0);
  wan.simulation().run_until(1_s);
  EXPECT_EQ(wan.sender().bytes_sent(), 0u);
  EXPECT_EQ(wan.receiver().packets_received(), 0u);
}

TEST(TcpSenderEdgeTest, SubMssTailIsDelivered) {
  WanPath::Config cfg;
  cfg.enable_web100 = false;
  WanPath wan{cfg, scenario::make_reno_factory()};
  wan.sender().app_write(1460 * 3 + 123);  // three full segments + tail
  wan.simulation().run_until(5_s);
  EXPECT_EQ(wan.receiver().bytes_received(), 1460u * 3 + 123);
  EXPECT_EQ(wan.sender().bytes_acked(), 1460u * 3 + 123);
}

}  // namespace
}  // namespace rss::tcp
