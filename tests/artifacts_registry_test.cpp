// ExperimentRegistry semantics and the builtin experiment catalogue: every
// paper artifact the CI determinism gate depends on must be registered,
// with tolerances and a runner wired up. Experiments are NOT run here —
// that is rss_artifacts --check's job, not the unit suite's.

#include <gtest/gtest.h>

#include "artifacts/experiments.hpp"
#include "artifacts/registry.hpp"

namespace {

using rss::artifacts::Experiment;
using rss::artifacts::ExperimentRegistry;
using rss::artifacts::register_builtin_experiments;

TEST(ExperimentRegistry, AddFindNames) {
  ExperimentRegistry reg;
  Experiment e;
  e.name = "demo";
  e.title = "demo experiment";
  e.run = [] { return rss::artifacts::ExperimentResult{}; };
  reg.add(e);
  ASSERT_NE(reg.find("demo"), nullptr);
  EXPECT_EQ(reg.find("demo")->title, "demo experiment");
  EXPECT_EQ(reg.find("nope"), nullptr);
  EXPECT_EQ(reg.names(), std::vector<std::string>{"demo"});
}

TEST(ExperimentRegistry, RejectsDuplicateAndEmptyNames) {
  ExperimentRegistry reg;
  Experiment e;
  e.name = "dup";
  reg.add(e);
  EXPECT_THROW(reg.add(e), std::invalid_argument);
  Experiment unnamed;
  EXPECT_THROW(reg.add(unnamed), std::invalid_argument);
}

TEST(BuiltinExperiments, CatalogueIsCompleteAndIdempotent) {
  ExperimentRegistry reg;
  register_builtin_experiments(reg);
  const std::vector<std::string> expected{
      "fig1_send_stalls", "tab1_throughput",  "abl_aqm",       "abl_ifq_size",
      "abl_pid_gains",    "abl_rtt",          "abl_sampling",  "abl_setpoint",
      "ext_fairness",     "ext_hybrid_fluid", "ext_modern_cc", "ext_parkinglot",
      "ext_sack",         "ext_specdriven",   "ext_tuning",    "ext_variants",
  };
  EXPECT_EQ(reg.names(), expected);

  register_builtin_experiments(reg);  // second call must be a no-op
  EXPECT_EQ(reg.size(), expected.size());

  for (const auto& name : expected) {
    const auto* e = reg.find(name);
    ASSERT_NE(e, nullptr) << name;
    EXPECT_FALSE(e->title.empty()) << name;
    EXPECT_TRUE(static_cast<bool>(e->run)) << name;
  }
}

}  // namespace
