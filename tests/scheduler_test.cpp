#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/simulation.hpp"

namespace rss::sim {
namespace {

using namespace rss::sim::literals;

TEST(SchedulerTest, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(3_ms, [&] { order.push_back(3); });
  s.schedule_at(1_ms, [&] { order.push_back(1); });
  s.schedule_at(2_ms, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), 3_ms);
  EXPECT_EQ(s.events_executed(), 3u);
}

TEST(SchedulerTest, SameTimestampFiresInInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 50; ++i) s.schedule_at(5_ms, [&order, i] { order.push_back(i); });
  s.run();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(SchedulerTest, RejectsPastAndNullEvents) {
  Scheduler s;
  s.schedule_at(10_ms, [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(5_ms, [] {}), std::invalid_argument);
  EXPECT_THROW(s.schedule_at(20_ms, Scheduler::Callback{}), std::invalid_argument);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  const EventId id = s.schedule_at(1_ms, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(s.events_executed(), 0u);
}

TEST(SchedulerTest, CancelIsIdempotentAndSafeOnFiredEvents) {
  Scheduler s;
  const EventId id = s.schedule_at(1_ms, [] {});
  s.run();
  EXPECT_FALSE(s.cancel(id));         // already fired
  EXPECT_FALSE(s.cancel(id));         // idempotent
  EXPECT_FALSE(s.cancel(EventId{}));  // default id is inert
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SchedulerTest, PendingTracksLiveEventsOnly) {
  Scheduler s;
  const EventId a = s.schedule_at(1_ms, [] {});
  s.schedule_at(2_ms, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_TRUE(s.empty());
}

TEST(SchedulerTest, RunUntilAdvancesClockToHorizon) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(1_ms, [&] { ++fired; });
  s.schedule_at(10_ms, [&] { ++fired; });
  s.run_until(5_ms);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), 5_ms);  // clock advances even with no event at 5ms
  s.run_until(10_ms);        // boundary event does fire
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerTest, EventsScheduledDuringExecutionRun) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.schedule_in(1_ms, recurse);
  };
  s.schedule_at(0_ms, recurse);
  s.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(s.now(), 4_ms);
}

TEST(SchedulerTest, StopHaltsRun) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(1_ms, [&] {
    ++fired;
    s.stop();
  });
  s.schedule_at(2_ms, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  s.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerTest, NextEventTimeSkipsCancelled) {
  Scheduler s;
  const EventId a = s.schedule_at(1_ms, [] {});
  s.schedule_at(2_ms, [] {});
  s.cancel(a);
  EXPECT_EQ(s.next_event_time(), 2_ms);
  s.run();
  EXPECT_EQ(s.next_event_time(), Time::infinity());
}

TEST(SchedulerTest, CancelFromInsideCallback) {
  Scheduler s;
  bool late_fired = false;
  EventId late;
  late = s.schedule_at(2_ms, [&] { late_fired = true; });
  s.schedule_at(1_ms, [&] { EXPECT_TRUE(s.cancel(late)); });
  s.run();
  EXPECT_FALSE(late_fired);
}

TEST(SchedulerTest, StepSingleSteps) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(1_ms, [&] { ++fired; });
  s.schedule_at(2_ms, [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerTest, StaleIdCannotCancelSlotReuser) {
  // Generation-checked ids: after cancel, the arena slot is recycled by the
  // next schedule — a stale handle to the first event must not be able to
  // cancel (or even observe) its successor.
  Scheduler s;
  bool fired = false;
  const EventId first = s.schedule_at(1_ms, [] {});
  EXPECT_TRUE(s.cancel(first));
  const EventId second = s.schedule_at(1_ms, [&fired] { fired = true; });
  EXPECT_EQ(s.arena_slots(), 1u);  // second reused first's slot
  EXPECT_NE(first, second);
  EXPECT_FALSE(s.cancel(first));  // stale: generation mismatch
  s.run();
  EXPECT_TRUE(fired);
}

TEST(SchedulerTest, ArenaStaysFlatUnderRescheduleStorm) {
  // The per-ACK RTO pattern must not grow memory: the arena's size is the
  // high-water mark of *simultaneously pending* events, not of scheduling
  // traffic. This is the pending-set assertion replacing the old live_ map
  // (which paid a hash-map node with a Time per event even on the heap
  // backend, where the value was never read).
  for (const auto backend : {QueueBackend::kBinaryHeap, QueueBackend::kCalendarQueue}) {
    Scheduler s{backend};
    EventId pending{};
    for (int i = 0; i < 10'000; ++i) {
      if (pending.valid()) s.cancel(pending);
      pending = s.schedule_at(Time::nanoseconds(i + 1), [] {});
    }
    EXPECT_EQ(s.pending(), 1u);
    EXPECT_EQ(s.arena_slots(), 1u);
    s.run();
    EXPECT_EQ(s.pending(), 0u);
    EXPECT_EQ(s.events_executed(), 1u);
  }
}

TEST(SimulationTest, TrainForwardsToScheduler) {
  Simulation sim;
  int fires = 0;
  sim.train(5_ms, 5_ms, 3, [&fires] { ++fires; });
  sim.run();
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(sim.now(), 15_ms);
}

TEST(SimulationTest, EveryRepeatsUntilFalse) {
  Simulation sim;
  std::vector<Time> ticks;
  sim.every(10_ms, [&](Time now) {
    ticks.push_back(now);
    return ticks.size() < 3;
  });
  sim.run();
  ASSERT_EQ(ticks.size(), 3u);
  EXPECT_EQ(ticks[0], 10_ms);
  EXPECT_EQ(ticks[1], 20_ms);
  EXPECT_EQ(ticks[2], 30_ms);
}

TEST(SimulationTest, RunForIsRelative) {
  Simulation sim;
  sim.run_until(5_ms);
  sim.run_for(10_ms);
  EXPECT_EQ(sim.now(), 15_ms);
}

}  // namespace
}  // namespace rss::sim
