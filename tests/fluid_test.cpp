// Hybrid fluid/packet engine: the AIMD rate ODE, the proportional-share
// queue coupling, integrator convergence under stride refinement, and the
// two headline guarantees — a fluidized cross-traffic aggregate leaves the
// foreground packet flow's goodput where the all-packet run put it, and
// fluid ticks never perturb the deterministic partition merge order.

#include "net/fluid.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/device.hpp"
#include "net/queue.hpp"
#include "scenario/builder.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/presets.hpp"
#include "scenario/topology.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"
#include "web100/mib.hpp"

namespace rss {
namespace {

using namespace rss::sim::literals;
using net::FluidOptions;
using net::FluidQueueCoupling;
using net::FluidSink;
using net::FluidSource;

[[nodiscard]] FluidOptions base_options() {
  FluidOptions opt;
  opt.initial_rate = net::DataRate::mbps(10);
  opt.rtt = 100_ms;
  opt.stride = 1_ms;
  return opt;
}

// --- the rate ODE ---------------------------------------------------------

TEST(FluidSource, SilentBeforeStart) {
  FluidSource src{base_options(), "bg"};
  EXPECT_FALSE(src.started());
  EXPECT_EQ(src.rate_bps(), 0.0);
  src.begin_interval(0.001);
  EXPECT_EQ(src.offered_bytes(), 0.0);
  src.note_loss(sim::Time::zero());
  src.end_interval(1_ms, 0.001);
  EXPECT_EQ(src.rate_bps(), 0.0);  // loss and AI both ignored while closed
}

TEST(FluidSource, AdditiveIncreaseIsStrideExact) {
  // Post-slow-start additive increase is linear in time, so the
  // forward-Euler sum is exact: integrating 1 s at any stride lands on the
  // same rate.
  const auto integrate = [](double dt_s) {
    FluidSource src{base_options(), "bg"};
    src.start();
    src.note_loss(sim::Time::zero());  // leave slow start at half rate
    src.end_interval(sim::Time::zero(), dt_s);
    const int steps = static_cast<int>(std::lround(1.0 / dt_s));
    for (int i = 0; i < steps; ++i) {
      src.begin_interval(dt_s);
      src.end_interval(sim::Time::from_seconds(dt_s * (i + 1)), dt_s);
    }
    return src.rate_bps();
  };
  // Slope: one packet per RTT per RTT = 1500*8 / 0.1^2 = 1.2 Mbps/s.
  const double expected = 5e6 + 1.2e6;
  EXPECT_NEAR(integrate(0.001), expected, 1e-3 * expected);
  EXPECT_NEAR(integrate(0.00025), expected, 1e-3 * expected);
}

TEST(FluidSource, SlowStartDoublesPerRttUntilFirstLoss) {
  FluidSource src{base_options(), "bg"};
  src.start();
  // Ten strides of rtt/10 compound to exactly one doubling per RTT.
  for (int i = 0; i < 10; ++i) src.end_interval(sim::Time::zero(), 0.01);
  EXPECT_NEAR(src.rate_bps(), 20e6, 1e-6 * 20e6);
  // The first loss ends the exponential phase for good.
  src.note_loss(1_s);
  src.end_interval(1_s, 0.01);
  EXPECT_DOUBLE_EQ(src.rate_bps(), 10e6);
  for (int i = 0; i < 10; ++i) src.end_interval(2_s, 0.01);
  EXPECT_LT(src.rate_bps(), 10.5e6);  // additive now, not doubling
}

TEST(FluidSource, OneDecreasePerRttEpoch) {
  FluidSource src{base_options(), "bg"};
  src.start();
  ASSERT_EQ(src.rate_bps(), 10e6);

  src.note_loss(sim::Time::zero());
  src.note_loss(50_ms);  // same epoch: absorbed into the pending decrease
  src.end_interval(100_ms, 0.1);
  EXPECT_DOUBLE_EQ(src.rate_bps(), 5e6);

  src.note_loss(100_ms);  // a full RTT later: a fresh epoch
  src.end_interval(200_ms, 0.1);
  EXPECT_DOUBLE_EQ(src.rate_bps(), 2.5e6);
}

TEST(FluidSource, RateStaysBetweenFloorAndPeak) {
  FluidOptions opt = base_options();
  opt.peak_rate = net::DataRate::mbps(12);
  FluidSource src{opt, "bg"};
  src.start();

  // Halving forever bottoms out at one packet per RTT, never zero.
  const double floor = 1500.0 * 8.0 / 0.1;
  for (int i = 0; i < 40; ++i) {
    src.note_loss(sim::Time::seconds(i));
    src.end_interval(sim::Time::seconds(i), 0.001);
  }
  EXPECT_DOUBLE_EQ(src.rate_bps(), floor);

  // Additive increase forever pins at the peak.
  for (int i = 0; i < 100000; ++i) src.end_interval(100_s, 0.001);
  EXPECT_DOUBLE_EQ(src.rate_bps(), 12e6);
}

TEST(FluidSource, RejectsDegenerateOptions) {
  FluidOptions opt = base_options();
  opt.rtt = sim::Time::zero();
  EXPECT_THROW((FluidSource{opt, "bg"}), std::invalid_argument);
  opt = base_options();
  opt.decrease = 1.0;
  EXPECT_THROW((FluidSource{opt, "bg"}), std::invalid_argument);
  opt = base_options();
  opt.packet_bytes = 0;
  EXPECT_THROW((FluidSource{opt, "bg"}), std::invalid_argument);
}

// --- the queue coupling ---------------------------------------------------

struct CouplingHarness {
  sim::Simulation sim{1};
  net::NetDevice device;
  FluidQueueCoupling coupling;

  explicit CouplingHarness(net::DataRate rate = net::DataRate::mbps(100),
                           std::size_t ifq_packets = 100)
      : device{sim, rate, std::make_unique<net::DropTailQueue>(ifq_packets), "bneck"},
        coupling{device} {}
};

TEST(FluidCoupling, UnderloadLeavesNoBacklog) {
  CouplingHarness h;
  FluidOptions opt = base_options();
  opt.initial_rate = net::DataRate::mbps(50);
  FluidSource src{opt, "bg"};
  src.start();
  h.coupling.add_source(&src);

  src.begin_interval(0.001);
  h.coupling.step(1_ms, 0.001);
  src.end_interval(1_ms, 0.001);

  EXPECT_EQ(h.coupling.backlog_bytes(), 0.0);
  EXPECT_EQ(h.device.ifq().virtual_packets(), 0u);
  EXPECT_EQ(src.dropped_bytes(), 0.0);
  // Half the line is fluid, so packet slots stretch by that share.
  EXPECT_NEAR(h.device.fluid_share(), 0.5, 1e-9);
}

TEST(FluidCoupling, SaturatedQueueShedsProRataAndSignalsLoss) {
  CouplingHarness h{net::DataRate::mbps(100), /*ifq_packets=*/10};
  FluidOptions opt = base_options();
  opt.initial_rate = net::DataRate::mbps(400);
  opt.peak_rate = net::DataRate::mbps(800);
  FluidSource src{opt, "bg"};
  src.start();
  h.coupling.add_source(&src);

  // One 1 ms stride: 50 KB arrives against 12.5 KB of line capacity and
  // 15 KB of queue room — the remainder must be shed, not accumulated.
  src.begin_interval(0.001);
  h.coupling.step(1_ms, 0.001);
  const double rate_before = src.rate_bps();
  src.end_interval(1_ms, 0.001);

  EXPECT_GT(src.dropped_bytes(), 0.0);
  EXPECT_EQ(h.device.ifq().virtual_packets(), 10u);  // backlog capped at room
  EXPECT_LE(h.coupling.backlog_bytes(), 10 * 1500.0);
  EXPECT_DOUBLE_EQ(src.rate_bps(), rate_before * 0.5);  // loss signal landed
}

TEST(FluidCoupling, VirtualBacklogGatesPacketAdmission) {
  net::DropTailQueue queue{4};
  queue.set_virtual_backlog(3, 3 * 1500);
  net::Packet p;
  p.payload_bytes = 1500;
  EXPECT_TRUE(queue.enqueue(p));   // 1 real + 3 virtual = capacity
  EXPECT_FALSE(queue.enqueue(p));  // full: fluid pressure causes the drop
  EXPECT_EQ(queue.byte_depth(), queue.size_bytes() + 3u * 1500u);
  EXPECT_NEAR(queue.fill_fraction(), 1.0, 1e-9);
}

// --- integrator convergence -----------------------------------------------

/// Drive source + coupling by hand (no scheduler) for `horizon_s` simulated
/// seconds at stride `dt_s`, and report delivered bytes. The AIMD loop
/// oscillates against the queue cap, so this exercises the full ODE, not
/// just the linear ramp.
[[nodiscard]] double delivered_after(double dt_s, double horizon_s) {
  CouplingHarness h{net::DataRate::mbps(100), 100};
  FluidOptions opt = base_options();
  opt.initial_rate = net::DataRate::mbps(40);
  opt.peak_rate = net::DataRate::mbps(200);
  opt.rtt = 40_ms;
  FluidSource src{opt, "bg"};
  src.start();
  h.coupling.add_source(&src);

  const int steps = static_cast<int>(std::lround(horizon_s / dt_s));
  for (int i = 0; i < steps; ++i) {
    const sim::Time now = sim::Time::from_seconds(dt_s * (i + 1));
    src.begin_interval(dt_s);
    h.coupling.step(now, dt_s);
    src.end_interval(now, dt_s);
  }
  FluidSink sink{src};
  return sink.delivered_bytes();
}

TEST(FluidIntegrator, StrideRefinementConverges) {
  const double coarse = delivered_after(0.002, 4.0);
  const double mid = delivered_after(0.001, 4.0);
  const double fine = delivered_after(0.00025, 4.0);
  ASSERT_GT(fine, 0.0);
  // Refining the stride 8x moves the answer by at most a few percent: the
  // integrator is consistent, not stride-sensitive.
  EXPECT_NEAR(coarse / fine, 1.0, 0.05);
  EXPECT_NEAR(mid / fine, 1.0, 0.05);
  // And the delivered volume is physical: never above the line rate.
  EXPECT_LE(fine, 100e6 / 8.0 * 4.0 * 1.001);
}

// --- fluid vs packet equivalence ------------------------------------------

/// Foreground goodput (Mbit/s) of ParkingLot flow 0 over the measurement
/// window, with cross traffic either packet or fluid.
[[nodiscard]] double foreground_goodput(bool fluid_cross, sim::Time warmup,
                                        sim::Time horizon) {
  scenario::ParkingLot::Config cfg;
  cfg.hops = 1;  // single-bottleneck dumbbell
  cfg.cross_flows_per_hop = 5;
  cfg.hop_delays = {20_ms};
  cfg.access_rate = net::DataRate::mbps(100);
  cfg.fluid_cross = fluid_cross;
  scenario::ParkingLot lot{cfg, scenario::uniform_cc(scenario::make_reno_factory())};
  lot.start_all(sim::Time::zero());

  lot.scenario().run_until(warmup);
  const std::uint64_t acked0 = lot.scenario().sender(0).mib().ThruBytesAcked;
  lot.scenario().run_until(horizon);
  const std::uint64_t acked1 = lot.scenario().sender(0).mib().ThruBytesAcked;
  return static_cast<double>(acked1 - acked0) * 8.0 /
         (horizon - warmup).to_seconds() / 1e6;
}

TEST(FluidEquivalence, ForegroundGoodputMatchesAllPacketRun) {
  // The window spans many AIMD sawtooth periods: shorter windows alias the
  // sawtooth phase and make the comparison noisy rather than wrong.
  const double packet = foreground_goodput(false, 5_s, 180_s);
  const double fluid = foreground_goodput(true, 5_s, 180_s);
  ASSERT_GT(packet, 0.0);
  // The fluidized background must leave the foreground flow within the
  // artifact's equivalence budget of the all-packet run.
  EXPECT_NEAR(fluid / packet, 1.0, 0.05)
      << "packet=" << packet << " Mbps, fluid=" << fluid << " Mbps";
}

// --- partition determinism ------------------------------------------------

/// Flow-observable fingerprint covering both models: MIB words for packet
/// flows, the delivered-byte ledger for fluid aggregates.
[[nodiscard]] std::vector<std::uint64_t> fingerprint(scenario::Scenario& s) {
  std::vector<std::uint64_t> out;
  for (std::size_t i = 0; i < s.flow_count(); ++i) {
    if (s.is_fluid(i)) {
      out.push_back(static_cast<std::uint64_t>(s.fluid_sink(i).delivered_bytes()));
      out.push_back(0);
      out.push_back(0);
    } else {
      const web100::Mib& mib = s.sender(i).mib();
      out.push_back(mib.ThruBytesAcked);
      out.push_back(mib.PktsRetrans);
      out.push_back(mib.SendStall);
    }
  }
  return out;
}

TEST(FluidPartitionParity, FluidTicksDoNotPerturbMergeOrder) {
  scenario::ScaleMesh::Config cfg;
  cfg.segments = 4;
  cfg.flows_per_segment = 2;
  cfg.cross_flows_per_segment = 1;
  cfg.fluid_local = true;
  scenario::TopologySpec spec = scenario::ScaleMesh::make_spec(cfg);

  std::vector<std::vector<std::uint64_t>> prints;
  for (const std::size_t partitions : {std::size_t{1}, std::size_t{4}}) {
    spec.execution.partitions = partitions;
    auto s = scenario::ScenarioBuilder{spec}.build(scenario::make_reno_factory());
    if (partitions > 1) {
      ASSERT_GT(s->partition_count(), 1u);
    }
    std::size_t fluid_flows = 0;
    for (std::size_t i = 0; i < s->flow_count(); ++i) fluid_flows += s->is_fluid(i);
    ASSERT_EQ(fluid_flows, cfg.segments * cfg.flows_per_segment);
    for (std::size_t i = 0; i < s->flow_count(); ++i) s->start_flow(i, sim::Time::zero());
    s->run_until(1_s);
    prints.push_back(fingerprint(*s));
  }
  EXPECT_EQ(prints[0], prints[1]);
  bool progressed = false;
  for (const std::uint64_t v : prints[0]) progressed = progressed || v != 0;
  EXPECT_TRUE(progressed) << "parity run transferred no data — vacuous comparison";
}

}  // namespace
}  // namespace rss
