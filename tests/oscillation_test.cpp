#include "control/oscillation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace rss::control {
namespace {

std::vector<ResponseSample> synth(double duration, double dt, double freq_hz,
                                  double growth_rate, double offset = 10.0) {
  // A(t) * sin(2π f t) + offset with A(t) = e^{growth_rate * t}.
  std::vector<ResponseSample> out;
  for (double t = 0.0; t < duration; t += dt) {
    const double amp = std::exp(growth_rate * t);
    out.push_back({t, offset + amp * std::sin(2.0 * 3.14159265358979 * freq_hz * t)});
  }
  return out;
}

TEST(OscillationDetectorTest, ClassifiesSustained) {
  const auto resp = synth(10.0, 0.01, 2.0, 0.0);
  const auto a = OscillationDetector{}.analyze(resp);
  EXPECT_EQ(a.kind, ResponseKind::kSustained);
  EXPECT_NEAR(a.period, 0.5, 0.02);
  EXPECT_NEAR(a.mean_amplitude, 1.0, 0.05);
  EXPECT_NEAR(a.amplitude_trend, 1.0, 0.05);
}

TEST(OscillationDetectorTest, ClassifiesDamped) {
  const auto resp = synth(10.0, 0.01, 2.0, -0.8);
  const auto a = OscillationDetector{}.analyze(resp);
  EXPECT_EQ(a.kind, ResponseKind::kDamped);
  EXPECT_LT(a.amplitude_trend, 0.75);
}

TEST(OscillationDetectorTest, ClassifiesGrowing) {
  const auto resp = synth(10.0, 0.01, 2.0, 0.8);
  const auto a = OscillationDetector{}.analyze(resp);
  EXPECT_EQ(a.kind, ResponseKind::kGrowing);
  EXPECT_GT(a.amplitude_trend, 1.25);
}

TEST(OscillationDetectorTest, FlatSignalIsFlat) {
  std::vector<ResponseSample> resp;
  for (double t = 0.0; t < 10.0; t += 0.01) resp.push_back({t, 5.0});
  const auto a = OscillationDetector{}.analyze(resp);
  EXPECT_EQ(a.kind, ResponseKind::kFlat);
  EXPECT_EQ(a.peak_count, 0u);
}

TEST(OscillationDetectorTest, MonotoneRampIsFlat) {
  std::vector<ResponseSample> resp;
  for (double t = 0.0; t < 10.0; t += 0.01) resp.push_back({t, t * 3.0});
  const auto a = OscillationDetector{}.analyze(resp);
  EXPECT_EQ(a.kind, ResponseKind::kFlat);
}

TEST(OscillationDetectorTest, TooFewSamplesIsFlat) {
  std::vector<ResponseSample> resp{{0.0, 1.0}, {0.1, 2.0}, {0.2, 1.0}};
  EXPECT_EQ(OscillationDetector{}.analyze(resp).kind, ResponseKind::kFlat);
}

TEST(OscillationDetectorTest, TransientIsSkipped) {
  // Big decaying transient in the first 30%, clean sustained tail: the
  // detector must classify from the tail.
  auto resp = synth(10.0, 0.01, 2.0, 0.0);
  for (auto& s : resp) {
    if (s.t < 2.5) s.value += 50.0 * std::exp(-4.0 * s.t);
  }
  const auto a = OscillationDetector{}.analyze(resp);
  EXPECT_EQ(a.kind, ResponseKind::kSustained);
}

TEST(OscillationDetectorTest, PeriodMeasuredAcrossFrequencies) {
  for (const double f : {0.5, 1.0, 4.0, 8.0}) {
    const auto resp = synth(20.0 / f, 0.2 / (f * 10.0), f, 0.0);
    const auto a = OscillationDetector{}.analyze(resp);
    EXPECT_NEAR(a.period, 1.0 / f, 0.1 / f) << "f=" << f;
  }
}

TEST(OscillationDetectorTest, ToleranceOptionWidensSustainedBand) {
  const auto resp = synth(10.0, 0.01, 2.0, 0.1);  // slowly growing
  OscillationDetector strict{OscillationDetector::Options{.amplitude_tolerance = 0.01}};
  OscillationDetector lax{OscillationDetector::Options{.amplitude_tolerance = 0.5}};
  EXPECT_EQ(strict.analyze(resp).kind, ResponseKind::kGrowing);
  EXPECT_EQ(lax.analyze(resp).kind, ResponseKind::kSustained);
}

}  // namespace
}  // namespace rss::control
