// Property suite for the paper's contribution: across a grid of path and
// controller parameters, Restricted Slow-Start must keep its core promise:
//
//   R1 (no stalls)    zero send-stalls and zero IFQ tail drops
//   R2 (containment)  peak IFQ occupancy < capacity
//   R3 (utilization)  goodput at least that of standard TCP on the same
//                     path (RSS never loses)
//   R4 (restriction)  per-ACK growth never exceeds 1 MSS (it is a
//                     *restricted* slow start)

#include <gtest/gtest.h>

#include <string>

#include "metrics/timeseries.hpp"
#include "scenario/cc_factories.hpp"
#include "scenario/wan_path.hpp"
#include "workload/apps.hpp"

namespace rss::core {
namespace {

using namespace rss::sim::literals;
using scenario::WanPath;

struct RssCase {
  std::size_t ifq;
  std::int64_t rtt_ms;
  double setpoint;
  std::int64_t sample_period_ms;  ///< 0 = per-ACK, 10 = kernel jiffy mode
};

class RssGridTest : public ::testing::TestWithParam<RssCase> {
 protected:
  static WanPath make(const RssCase& c, const scenario::CcFactory& factory) {
    WanPath::Config cfg;
    cfg.enable_web100 = false;
    cfg.sender.trace_cwnd = true;
    cfg.path.ifq_capacity_packets = c.ifq;
    cfg.path.one_way_delay = sim::Time::milliseconds(c.rtt_ms / 2);
    return WanPath{cfg, factory};
  }

  static scenario::CcFactory rss_factory(const RssCase& c) {
    // The kernel-timer controller needs the gains tuned for that sampling
    // regime (the per-ACK defaults oscillate under a 10 ms hold).
    RestrictedSlowStart::Options opt = c.sample_period_ms > 0
                                           ? RestrictedSlowStart::kernel_timer_options()
                                           : RestrictedSlowStart::Options{};
    opt.setpoint_fraction = c.setpoint;
    opt.sample_period = sim::Time::milliseconds(c.sample_period_ms);
    return scenario::make_rss_factory(opt);
  }
};

TEST_P(RssGridTest, NoStallsNoDropsContainedQueue) {
  const auto c = GetParam();
  auto wan = make(c, rss_factory(c));
  metrics::TimeSeries ifq{"ifq"};
  wan.simulation().every(10_ms, [&](sim::Time now) {
    ifq.record(now, static_cast<double>(wan.nic().occupancy_packets()));
    return true;
  });
  wan.run_bulk_transfer(0_s, 15_s);

  // R1
  EXPECT_EQ(wan.sender().mib().SendStall, 0u) << "send-stalls observed";
  EXPECT_EQ(wan.nic().ifq().stats().dropped, 0u) << "IFQ tail drops observed";
  // R2 — sampled occupancy (includes wire slot) stays within capacity.
  EXPECT_LE(ifq.max_value(), static_cast<double>(c.ifq) + 1.0);
  // Sanity: the transfer actually ran.
  EXPECT_GT(wan.sender().bytes_acked(), 1'000'000u);
}

TEST_P(RssGridTest, NeverWorseThanStandardTcp) {
  const auto c = GetParam();
  auto rss_wan = make(c, rss_factory(c));
  rss_wan.run_bulk_transfer(0_s, 15_s);
  auto std_wan = make(c, scenario::make_reno_factory());
  std_wan.run_bulk_transfer(0_s, 15_s);
  EXPECT_GE(rss_wan.goodput_mbps(0_s, 15_s), 0.95 * std_wan.goodput_mbps(0_s, 15_s));
}

TEST_P(RssGridTest, GrowthNeverExceedsOneMssPerAck) {
  const auto c = GetParam();
  auto wan = make(c, rss_factory(c));
  // cwnd trace records every set_cwnd call; consecutive increases in
  // slow-start must be bounded by MSS (+ epsilon for CA crossover).
  wan.run_bulk_transfer(0_s, 5_s);
  const auto& trace = wan.sender().cwnd_trace();
  double prev = 0.0;
  bool first = true;
  for (const auto& s : trace.samples()) {
    if (!first) {
      EXPECT_LE(s.value - prev, 1460.0 + 1e-6) << "at t=" << s.t;
    }
    prev = s.value;
    first = false;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RssGridTest,
    ::testing::Values(RssCase{100, 60, 0.9, 0},    // the paper point
                      RssCase{100, 60, 0.9, 10},   // kernel-timer controller
                      RssCase{50, 60, 0.9, 0},     // small IFQ
                      RssCase{1000, 60, 0.9, 0},   // huge IFQ
                      RssCase{100, 10, 0.9, 0},    // LAN-ish RTT
                      RssCase{100, 200, 0.9, 0},   // very long RTT
                      RssCase{100, 60, 0.5, 0},    // conservative set point
                      RssCase{100, 60, 0.95, 0},   // aggressive set point
                      RssCase{20, 120, 0.9, 0}),   // tiny IFQ + long RTT
    [](const ::testing::TestParamInfo<RssCase>& info) {
      return "ifq" + std::to_string(info.param.ifq) + "_rtt" +
             std::to_string(info.param.rtt_ms) + "_sp" +
             std::to_string(static_cast<int>(info.param.setpoint * 100)) + "_T" +
             std::to_string(info.param.sample_period_ms);
    });

// RSS with cross traffic stealing IFQ capacity: the controller sees the
// combined occupancy and still avoids stalls of its own flow.
TEST(RssRobustness, SurvivesCrossTrafficOnTheSameNic) {
  WanPath::Config cfg;
  cfg.enable_web100 = false;
  WanPath wan{cfg, scenario::make_rss_factory()};
  // ~20 Mbit/s of datagram cross traffic through the same 100 Mbit/s NIC.
  workload::PoissonPacketSource::Options xopt;
  xopt.dst_node = 2;
  xopt.packets_per_second = 1700.0;
  workload::PoissonPacketSource cross{wan.simulation(), wan.sender_node(), xopt};
  wan.run_bulk_transfer(0_s, 20_s);

  EXPECT_EQ(wan.sender().mib().SendStall, 0u);
  // TCP cedes bandwidth to the cross traffic but keeps the link busy.
  const double total = wan.goodput_mbps(0_s, 20_s) +
                       static_cast<double>(cross.packets_sent()) * 1500 * 8 / 20.0 / 1e6;
  EXPECT_GT(total, 70.0);
}

TEST(RssRobustness, RandomWanLossFallsBackToStockRecovery) {
  WanPath::Config cfg;
  cfg.enable_web100 = false;
  WanPath wan{cfg, scenario::make_rss_factory()};
  wan.nic().link()->set_loss_rate(0.002, sim::Rng{5});
  wan.run_bulk_transfer(0_s, 20_s);
  EXPECT_GT(wan.sender().mib().FastRetran, 0u);
  EXPECT_GT(wan.sender().bytes_acked(), 10'000'000u);
}

}  // namespace
}  // namespace rss::core
