#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "scenario/spec_io.hpp"
#include "scenario/topology.hpp"

namespace rss::scenario::spec {
namespace {

using namespace rss::sim::literals;
using Code = SpecError::Code;

/// The thrown SpecError's code, or nullopt when `fn` doesn't throw it.
template <typename Fn>
std::optional<Code> spec_error_of(Fn&& fn) {
  try {
    fn();
  } catch (const SpecError& e) {
    return e.code();
  }
  return std::nullopt;
}

/// The SpecError itself, for asserting on field/line context.
template <typename Fn>
std::optional<SpecError> spec_error_full(Fn&& fn) {
  try {
    fn();
  } catch (const SpecError& e) {
    return e;
  }
  return std::nullopt;
}

// --- JSON layer -----------------------------------------------------------

TEST(JsonParseTest, ParsesScalarsArraysAndObjects) {
  const JsonValue v = json_parse(R"({"a": 1, "b": [true, "x", null], "c": {"d": -2.5}})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("a")->as_u64("a"), 1u);
  ASSERT_TRUE(v.find("b")->is_array());
  EXPECT_EQ(v.find("b")->array.size(), 3u);
  EXPECT_TRUE(v.find("b")->array[0].as_bool("b[0]"));
  EXPECT_EQ(v.find("b")->array[1].as_string("b[1]"), "x");
  EXPECT_DOUBLE_EQ(v.find("c")->find("d")->as_double("c.d"), -2.5);
}

TEST(JsonParseTest, DecodesStringEscapes) {
  const JsonValue v = json_parse(R"(["a\"b", "tab\there", "A"])");
  EXPECT_EQ(v.array[0].as_string(""), "a\"b");
  EXPECT_EQ(v.array[1].as_string(""), "tab\there");
  EXPECT_EQ(v.array[2].as_string(""), "A");
}

TEST(JsonParseTest, MalformedDocumentsReportSyntaxErrorsWithLines) {
  const auto err = spec_error_full([] { (void)json_parse("{\n  \"a\": 1,\n  oops\n}"); });
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code(), Code::kSyntax);
  EXPECT_EQ(err->line(), 3);

  EXPECT_EQ(spec_error_of([] { (void)json_parse(""); }), Code::kSyntax);
  EXPECT_EQ(spec_error_of([] { (void)json_parse("{\"a\": }"); }), Code::kSyntax);
  EXPECT_EQ(spec_error_of([] { (void)json_parse("[1, 2"); }), Code::kSyntax);
  EXPECT_EQ(spec_error_of([] { (void)json_parse("\"unterminated"); }), Code::kSyntax);
  EXPECT_EQ(spec_error_of([] { (void)json_parse("{} trailing"); }), Code::kSyntax);
  EXPECT_EQ(spec_error_of([] { (void)json_parse("01"); }), Code::kSyntax);
}

TEST(JsonParseTest, RejectsDuplicateObjectKeys) {
  EXPECT_EQ(spec_error_of([] { (void)json_parse(R"({"a": 1, "a": 2})"); }), Code::kSyntax);
}

TEST(JsonParseTest, NumbersKeepTheirLiteralText) {
  // 2^63 + 1 is not representable as a double; the literal must survive.
  const JsonValue v = json_parse(R"({"seed": 9223372036854775809})");
  EXPECT_EQ(v.find("seed")->as_u64("seed"), 9223372036854775809ull);
  EXPECT_EQ(json_serialize(*v.find("seed")), "9223372036854775809\n");
}

TEST(JsonSerializeTest, RoundTripsStably) {
  const std::string text =
      R"({"name": "x", "nodes": ["a", "b"], "deep": {"k": [1, 2.5, true, null]}})";
  const std::string once = json_serialize(json_parse(text));
  const std::string twice = json_serialize(json_parse(once));
  EXPECT_EQ(once, twice);
}

// --- unit-tagged scalars --------------------------------------------------

TEST(UnitParseTest, ParsesTimes) {
  EXPECT_EQ(parse_time("250ns", "f"), 250_ns);
  EXPECT_EQ(parse_time("10us", "f"), 10_us);
  EXPECT_EQ(parse_time("30ms", "f"), 30_ms);
  EXPECT_EQ(parse_time("2s", "f"), 2_s);
  EXPECT_EQ(parse_time("1.5s", "f"), 1500_ms);
  EXPECT_EQ(parse_time("0s", "f"), sim::Time::zero());
}

TEST(UnitParseTest, FormatsTimesInLargestExactUnit) {
  EXPECT_EQ(format_time(30_ms), "30ms");
  EXPECT_EQ(format_time(1500_ms), "1500ms");
  EXPECT_EQ(format_time(2_s), "2s");
  EXPECT_EQ(format_time(1234_ns), "1234ns");
  EXPECT_EQ(format_time(sim::Time::zero()), "0s");
  // Round trip: parse(format(t)) == t.
  for (const sim::Time t : {1_ns, 999_us, 100_ms, 60_s}) {
    EXPECT_EQ(parse_time(format_time(t), "f"), t);
  }
}

TEST(UnitParseTest, ParsesRates) {
  EXPECT_EQ(parse_rate("9600bps", "f"), net::DataRate::bps(9600));
  EXPECT_EQ(parse_rate("56kbps", "f"), net::DataRate::kbps(56));
  EXPECT_EQ(parse_rate("100mbps", "f"), net::DataRate::mbps(100));
  EXPECT_EQ(parse_rate("1gbps", "f"), net::DataRate::gbps(1));
  EXPECT_EQ(parse_rate("2.5gbps", "f"), net::DataRate::mbps(2500));
  EXPECT_EQ(format_rate(net::DataRate::mbps(100)), "100mbps");
  EXPECT_EQ(format_rate(net::DataRate::bps(2500)), "2500bps");
}

TEST(UnitParseTest, BadUnitsAreTypedErrorsWithFieldContext) {
  const auto err = spec_error_full([] { (void)parse_time("30m", "links[0].delay"); });
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(err->code(), Code::kBadValue);
  EXPECT_EQ(err->field(), "links[0].delay");
  EXPECT_NE(std::string{err->what()}.find("links[0].delay"), std::string::npos);

  EXPECT_EQ(spec_error_of([] { (void)parse_time("30", "f"); }), Code::kBadValue);
  EXPECT_EQ(spec_error_of([] { (void)parse_time("fast", "f"); }), Code::kBadValue);
  EXPECT_EQ(spec_error_of([] { (void)parse_time("-5ms", "f"); }), Code::kBadValue);
  EXPECT_EQ(spec_error_of([] { (void)parse_rate("100mps", "f"); }), Code::kBadValue);
  EXPECT_EQ(spec_error_of([] { (void)parse_rate("100", "f"); }), Code::kBadValue);
  EXPECT_EQ(spec_error_of([] { (void)parse_rate("0bps", "f"); }), Code::kBadValue);
}

TEST(UnitParseTest, NumericPartIsStrict) {
  // strtod alone would accept all of these; the unit grammar must not.
  EXPECT_EQ(spec_error_of([] { (void)parse_time(" 30ms", "f"); }), Code::kBadValue);
  EXPECT_EQ(spec_error_of([] { (void)parse_time("+30ms", "f"); }), Code::kBadValue);
  EXPECT_EQ(spec_error_of([] { (void)parse_time("0x10ms", "f"); }), Code::kBadValue);
  EXPECT_EQ(spec_error_of([] { (void)parse_time("1e3ms", "f"); }), Code::kBadValue);
  EXPECT_EQ(spec_error_of([] { (void)parse_time("1.ms", "f"); }), Code::kBadValue);
  EXPECT_EQ(spec_error_of([] { (void)parse_time(".5s", "f"); }), Code::kBadValue);
  EXPECT_EQ(spec_error_of([] { (void)parse_rate("0x1egbps", "f"); }), Code::kBadValue);
  EXPECT_EQ(spec_error_of([] { (void)parse_rate("1e2mbps", "f"); }), Code::kBadValue);
}

// --- scenario schema ------------------------------------------------------

constexpr const char* kMinimalSpec = R"({
  "nodes": ["a", "b"],
  "links": [{"a": "a", "b": "b", "delay": "10ms"}],
  "flows": [{"src": "a", "dst": "b"}]
})";

TEST(ScenarioSpecTest, ParsesMinimalSpecWithDefaults) {
  const ScenarioSpec s = parse_scenario_spec(kMinimalSpec);
  EXPECT_EQ(s.name, "scenario");
  EXPECT_EQ(s.topology.seed, 1u);
  EXPECT_FALSE(s.topology.backend.has_value());
  ASSERT_EQ(s.topology.nodes.size(), 2u);
  ASSERT_EQ(s.topology.links.size(), 1u);
  EXPECT_EQ(s.topology.links[0].delay, 10_ms);
  EXPECT_EQ(s.topology.links[0].a_dev.rate, net::DataRate::gbps(1));
  ASSERT_EQ(s.topology.flows.size(), 1u);
  ASSERT_EQ(s.flow_cc.size(), 1u);
  EXPECT_EQ(s.flow_cc[0], "reno");
  EXPECT_EQ(s.run.duration, 30_s);
  EXPECT_TRUE(s.sweep.empty());
}

TEST(ScenarioSpecTest, UnknownKeysAreRejectedAtEveryLevel) {
  const auto top = spec_error_full(
      [] { (void)parse_scenario_spec(R"({"nodes": ["a"], "nodez": 1})"); });
  ASSERT_TRUE(top.has_value());
  EXPECT_EQ(top->code(), Code::kUnknownField);
  EXPECT_EQ(top->field(), "nodez");

  const auto nested = spec_error_full([] {
    (void)parse_scenario_spec(R"({
      "nodes": ["a", "b"],
      "links": [{"a": "a", "b": "b", "a_dev": {"ifq_pakcets": 10}}]
    })");
  });
  ASSERT_TRUE(nested.has_value());
  EXPECT_EQ(nested->code(), Code::kUnknownField);
  EXPECT_EQ(nested->field(), "links[0].a_dev.ifq_pakcets");
  EXPECT_GT(nested->line(), 1);
}

TEST(ScenarioSpecTest, MissingRequiredFieldsAreTyped) {
  EXPECT_EQ(spec_error_of([] { (void)parse_scenario_spec(R"({"seed": 1})"); }),
            Code::kMissingField);
  EXPECT_EQ(spec_error_of([] {
              (void)parse_scenario_spec(R"({"nodes": ["a", "b"], "links": [{"a": "a"}]})");
            }),
            Code::kMissingField);
  EXPECT_EQ(spec_error_of([] {
              (void)parse_scenario_spec(R"({"nodes": ["a", "b"], "flows": [{"src": "a"}]})");
            }),
            Code::kMissingField);
}

TEST(ScenarioSpecTest, WrongTypesAreTyped) {
  EXPECT_EQ(spec_error_of([] { (void)parse_scenario_spec(R"({"nodes": "a"})"); }),
            Code::kWrongType);
  EXPECT_EQ(spec_error_of([] { (void)parse_scenario_spec(R"({"nodes": ["a"], "seed": "x"})"); }),
            Code::kWrongType);
  EXPECT_EQ(spec_error_of([] { (void)parse_scenario_spec(R"([1, 2, 3])"); }), Code::kWrongType);
}

TEST(ScenarioSpecTest, BadEnumValuesAreTyped) {
  EXPECT_EQ(spec_error_of([] {
              (void)parse_scenario_spec(R"({"nodes": ["a"], "backend": "quantum"})");
            }),
            Code::kBadValue);
  EXPECT_EQ(spec_error_of([] {
              (void)parse_scenario_spec(R"({
                "nodes": ["a", "b"],
                "links": [{"a": "a", "b": "b", "a_dev": {"qdisc": "sfq"}}]
              })");
            }),
            Code::kBadValue);
  const auto cc = spec_error_full([] {
    (void)parse_scenario_spec(R"({
      "nodes": ["a", "b"],
      "links": [{"a": "a", "b": "b"}],
      "flows": [{"src": "a", "dst": "b", "cc": "warp-drive"}]
    })");
  });
  ASSERT_TRUE(cc.has_value());
  EXPECT_EQ(cc->code(), Code::kBadValue);
  EXPECT_EQ(cc->field(), "flows[0].cc");
}

TEST(ScenarioSpecTest, RedOptionsRequireRedQdisc) {
  EXPECT_EQ(spec_error_of([] {
              (void)parse_scenario_spec(R"({
                "nodes": ["a", "b"],
                "links": [{"a": "a", "b": "b", "a_dev": {"red": {"min_threshold": 5}}}]
              })");
            }),
            Code::kBadValue);
  const ScenarioSpec s = parse_scenario_spec(R"({
    "nodes": ["a", "b"],
    "links": [{"a": "a", "b": "b",
               "a_dev": {"qdisc": "red", "red": {"min_threshold": 5, "max_threshold": 20}}}]
  })");
  EXPECT_EQ(s.topology.links[0].a_dev.qdisc, QueueDiscipline::kRed);
  EXPECT_DOUBLE_EQ(s.topology.links[0].a_dev.red.min_threshold, 5.0);
}

TEST(ScenarioSpecTest, DanglingLinkEndpointIsATopologyError) {
  // Parsing succeeds (the file is well-formed JSON with known keys); the
  // graph check raises the same typed TopologyError the C++ builder does.
  const ScenarioSpec s = parse_scenario_spec(R"({
    "nodes": ["a", "b"],
    "links": [{"a": "a", "b": "ghost"}]
  })");
  try {
    check_scenario_spec(s);
    FAIL() << "expected TopologyError";
  } catch (const TopologyError& e) {
    EXPECT_EQ(e.code(), TopologyError::Code::kUnknownEndpoint);
  }
}

TEST(ScenarioSpecTest, UnroutableFlowIsATopologyError) {
  const ScenarioSpec s = parse_scenario_spec(R"({
    "nodes": ["a", "b", "c"],
    "links": [{"a": "a", "b": "b"}],
    "flows": [{"src": "a", "dst": "c"}]
  })");
  try {
    check_scenario_spec(s);
    FAIL() << "expected TopologyError";
  } catch (const TopologyError& e) {
    EXPECT_EQ(e.code(), TopologyError::Code::kUnroutableFlow);
  }
}

TEST(ScenarioSpecTest, FlowOptionsRoundTripThroughTheSchema) {
  const ScenarioSpec s = parse_scenario_spec(R"({
    "nodes": ["a", "b"],
    "links": [{"a": "a", "b": "b"}],
    "flows": [{
      "src": "a", "dst": "b", "id": 7, "start": "1500ms", "cc": "rss",
      "sender": {"mss": 1000, "enable_sack": true, "rtt": {"min_rto": "150ms"}},
      "receiver": {"ack_every": 1, "quickack_segments": 4},
      "web100": {"poll": "50ms"}
    }]
  })");
  const FlowSpec& f = s.topology.flows[0];
  EXPECT_EQ(f.flow_id, 7u);
  ASSERT_TRUE(f.start.has_value());
  EXPECT_EQ(*f.start, 1500_ms);
  EXPECT_EQ(s.flow_cc[0], "rss");
  EXPECT_EQ(f.sender.mss, 1000u);
  EXPECT_TRUE(f.sender.enable_sack);
  EXPECT_EQ(f.sender.rtt.min_rto, 150_ms);
  EXPECT_EQ(f.receiver.ack_every, 1);
  EXPECT_EQ(f.receiver.quickack_segments, 4u);
  EXPECT_TRUE(f.web100);
  EXPECT_EQ(f.web100_poll_period, 50_ms);

  // And the serialized form re-parses to the same serialized form.
  const std::string once = serialize_scenario_spec(s);
  EXPECT_EQ(serialize_scenario_spec(parse_scenario_spec(once)), once);
}

// --- sweep ----------------------------------------------------------------

constexpr const char* kSweepBase = R"({
  "nodes": ["a", "b"],
  "links": [{"a": "a", "b": "b", "a_dev": {"ifq_packets": 100}}],
  "flows": [{"src": "a", "dst": "b"}],
  "sweep": %s
})";

[[nodiscard]] std::string with_sweep(const std::string& sweep_json) {
  char buf[2048];
  std::snprintf(buf, sizeof buf, kSweepBase, sweep_json.c_str());
  return buf;
}

TEST(SweepTest, GridExpandsAsCartesianProductLastAxisFastest) {
  const auto points = expand_scenario_spec(with_sweep(R"({
    "axes": [
      {"field": "links[0].a_dev.ifq_packets", "values": [10, 20]},
      {"field": "seed", "values": [1, 2, 3]}
    ]
  })"));
  ASSERT_EQ(points.size(), 6u);
  // First axis slowest: (10,1) (10,2) (10,3) (20,1) (20,2) (20,3).
  EXPECT_EQ(points[0].spec.topology.links[0].a_dev.ifq_packets, 10u);
  EXPECT_EQ(points[0].spec.topology.seed, 1u);
  EXPECT_EQ(points[2].spec.topology.seed, 3u);
  EXPECT_EQ(points[3].spec.topology.links[0].a_dev.ifq_packets, 20u);
  EXPECT_EQ(points[3].spec.topology.seed, 1u);
  // Assignments mirror the substitutions, in axis order.
  ASSERT_EQ(points[5].assignment.size(), 2u);
  EXPECT_EQ(points[5].assignment[0].first, "links[0].a_dev.ifq_packets");
  EXPECT_EQ(points[5].assignment[0].second, "20");
  EXPECT_EQ(points[5].assignment[1].second, "3");
}

TEST(SweepTest, ZipAdvancesAxesTogether) {
  const auto points = expand_scenario_spec(with_sweep(R"({
    "mode": "zip",
    "axes": [
      {"field": "links[0].a_dev.ifq_packets", "values": [10, 20]},
      {"field": "seed", "values": [7, 8]}
    ]
  })"));
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].spec.topology.links[0].a_dev.ifq_packets, 10u);
  EXPECT_EQ(points[0].spec.topology.seed, 7u);
  EXPECT_EQ(points[1].spec.topology.links[0].a_dev.ifq_packets, 20u);
  EXPECT_EQ(points[1].spec.topology.seed, 8u);
}

TEST(SweepTest, NoSweepYieldsOnePointWithEmptyAssignment) {
  const auto points = expand_scenario_spec(kMinimalSpec);
  ASSERT_EQ(points.size(), 1u);
  EXPECT_TRUE(points[0].assignment.empty());
}

TEST(SweepTest, EmptyAxisIsATypedError) {
  EXPECT_EQ(spec_error_of([] {
              (void)expand_scenario_spec(with_sweep(R"({
                "axes": [{"field": "seed", "values": []}]
              })"));
            }),
            Code::kBadSweep);
}

TEST(SweepTest, ZipLengthMismatchIsATypedError) {
  EXPECT_EQ(spec_error_of([] {
              (void)expand_scenario_spec(with_sweep(R"({
                "mode": "zip",
                "axes": [
                  {"field": "seed", "values": [1, 2]},
                  {"field": "links[0].a_dev.ifq_packets", "values": [10, 20, 30]}
                ]
              })"));
            }),
            Code::kBadSweep);
}

TEST(SweepTest, UnresolvablePathsAreTypedErrors) {
  EXPECT_EQ(spec_error_of([] {
              (void)expand_scenario_spec(with_sweep(R"({
                "axes": [{"field": "links[5].delay", "values": ["1ms"]}]
              })"));
            }),
            Code::kBadSweep);
  EXPECT_EQ(spec_error_of([] {
              (void)expand_scenario_spec(with_sweep(R"({
                "axes": [{"field": "phantom.knob", "values": [1]}]
              })"));
            }),
            Code::kBadSweep);
  EXPECT_EQ(spec_error_of([] {
              (void)expand_scenario_spec(with_sweep(R"({
                "axes": [{"field": "links[0]..x", "values": [1]}]
              })"));
            }),
            Code::kBadSweep);
}

TEST(SweepTest, AxisMayCreateAFieldTheBaseLeavesDefault) {
  // "name" is absent from the base document; the final path segment may be
  // created so fields the base leaves at their default can be swept too.
  const auto points = expand_scenario_spec(with_sweep(R"({
    "axes": [{"field": "name", "values": ["point-a", "point-b"]}]
  })"));
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].spec.name, "point-a");
  EXPECT_EQ(points[1].spec.name, "point-b");
}

TEST(SweepTest, SweptValuesPassNormalValidation) {
  // A bad unit inside a sweep value fails exactly like a hand-written one.
  EXPECT_EQ(spec_error_of([] {
              (void)expand_scenario_spec(with_sweep(R"({
                "axes": [{"field": "links[0].delay", "values": ["10parsecs"]}]
              })"));
            }),
            Code::kBadValue);
}

TEST(SweepTest, PointCountsAndModeParse) {
  const ScenarioSpec grid = parse_scenario_spec(with_sweep(R"({
    "axes": [
      {"field": "seed", "values": [1, 2]},
      {"field": "links[0].a_dev.ifq_packets", "values": [10, 20, 30]}
    ]
  })"));
  EXPECT_EQ(grid.sweep.mode, SweepSpec::Mode::kGrid);
  EXPECT_EQ(grid.sweep.point_count(), 6u);

  const ScenarioSpec zip = parse_scenario_spec(with_sweep(R"({
    "mode": "zip",
    "axes": [
      {"field": "seed", "values": [1, 2]},
      {"field": "links[0].a_dev.ifq_packets", "values": [10, 20]}
    ]
  })"));
  EXPECT_EQ(zip.sweep.mode, SweepSpec::Mode::kZip);
  EXPECT_EQ(zip.sweep.point_count(), 2u);

  EXPECT_EQ(spec_error_of([] {
              (void)parse_scenario_spec(with_sweep(R"({"mode": "spiral", "axes": []})"));
            }),
            Code::kBadValue);
}

}  // namespace
}  // namespace rss::scenario::spec
