#include "metrics/timeseries.hpp"

#include <gtest/gtest.h>

namespace rss::metrics {
namespace {

using sim::Time;
using namespace rss::sim::literals;

TEST(TimeSeriesTest, RecordsAndExposesSamples) {
  TimeSeries ts{"x"};
  EXPECT_TRUE(ts.empty());
  ts.record(1_ms, 1.0);
  ts.record(2_ms, 2.0);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.name(), "x");
  EXPECT_EQ(ts.front().t, 1_ms);
  EXPECT_DOUBLE_EQ(ts.back().value, 2.0);
}

TEST(TimeSeriesTest, ValueAtIsLastObservationAtOrBefore) {
  TimeSeries ts;
  ts.record(10_ms, 1.0);
  ts.record(20_ms, 2.0);
  ts.record(30_ms, 3.0);
  EXPECT_DOUBLE_EQ(ts.value_at(5_ms, -1.0), -1.0);  // before first -> fallback
  EXPECT_DOUBLE_EQ(ts.value_at(10_ms), 1.0);        // exact hit
  EXPECT_DOUBLE_EQ(ts.value_at(25_ms), 2.0);        // between samples
  EXPECT_DOUBLE_EQ(ts.value_at(99_ms), 3.0);        // after last
}

TEST(TimeSeriesTest, ResampleStepFunction) {
  TimeSeries ts;
  ts.record(10_ms, 1.0);
  ts.record(25_ms, 5.0);
  const auto grid = ts.resample(0_ms, 30_ms, 10_ms, 0.0);
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_DOUBLE_EQ(grid[0].value, 0.0);  // t=0: initial
  EXPECT_DOUBLE_EQ(grid[1].value, 1.0);  // t=10
  EXPECT_DOUBLE_EQ(grid[2].value, 1.0);  // t=20
  EXPECT_DOUBLE_EQ(grid[3].value, 5.0);  // t=30
}

TEST(TimeSeriesTest, ResampleRejectsBadPeriod) {
  TimeSeries ts;
  EXPECT_THROW((void)ts.resample(0_ms, 10_ms, 0_ms), std::invalid_argument);
}

TEST(TimeSeriesTest, MinMaxMean) {
  TimeSeries ts;
  ts.record(1_ms, 4.0);
  ts.record(2_ms, -2.0);
  ts.record(3_ms, 7.0);
  EXPECT_DOUBLE_EQ(ts.min_value(), -2.0);
  EXPECT_DOUBLE_EQ(ts.max_value(), 7.0);
  EXPECT_DOUBLE_EQ(ts.mean_value(), 3.0);
}

TEST(TimeSeriesTest, EmptySeriesStatsAreZero) {
  TimeSeries ts;
  EXPECT_DOUBLE_EQ(ts.min_value(), 0.0);
  EXPECT_DOUBLE_EQ(ts.max_value(), 0.0);
  EXPECT_DOUBLE_EQ(ts.mean_value(), 0.0);
}

TEST(TimeSeriesTest, TimeWeightedMeanOfStepSignal) {
  TimeSeries ts;
  // 0 until 10ms, then 10 until 30ms, then 20.
  ts.record(10_ms, 10.0);
  ts.record(30_ms, 20.0);
  // Over [0, 40]: 10ms*0 + 20ms*10 + 10ms*20 = 400 ms-units / 40ms = 10.
  EXPECT_NEAR(ts.time_weighted_mean(0_ms, 40_ms, 0.0), 10.0, 1e-9);
  // Over [10, 30]: constant 10.
  EXPECT_NEAR(ts.time_weighted_mean(10_ms, 30_ms, 0.0), 10.0, 1e-9);
  // Over [20, 40]: 10ms*10 + 10ms*20 = 15.
  EXPECT_NEAR(ts.time_weighted_mean(20_ms, 40_ms, 0.0), 15.0, 1e-9);
}

TEST(TimeSeriesTest, TimeWeightedMeanDegenerateWindow) {
  TimeSeries ts;
  ts.record(10_ms, 3.0);
  EXPECT_DOUBLE_EQ(ts.time_weighted_mean(20_ms, 20_ms, 0.0), 3.0);
}

TEST(TimeSeriesTest, ClearEmpties) {
  TimeSeries ts;
  ts.record(1_ms, 1.0);
  ts.clear();
  EXPECT_TRUE(ts.empty());
}

}  // namespace
}  // namespace rss::metrics
