// The "execution" spec block and the ExecutionPolicy surface: typed
// validation of every field, byte-stable round trips (including the
// deprecated top-level "backend" alias, which must keep old specs
// byte-identical), and the policy resolution rules the builder applies.

#include "scenario/spec_io.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "scenario/execution.hpp"
#include "scenario/spec_cli.hpp"
#include "scenario/sweep.hpp"

namespace rss::scenario {
namespace {

using spec::parse_scenario_spec;
using spec::ScenarioSpec;
using spec::serialize_scenario_spec;
using spec::SpecError;

constexpr const char* kMinimalTopology = R"({
  "nodes": ["a", "b"],
  "links": [{"a": "a", "b": "b", "delay": "10ms",
             "a_dev": {"rate": "100mbps"}, "b_dev": {"rate": "100mbps"}}]
})";

[[nodiscard]] std::string with_execution(const std::string& execution_json) {
  std::string doc = kMinimalTopology;
  doc.insert(doc.rfind('}'), ",\n  \"execution\": " + execution_json + "\n");
  return doc;
}

TEST(ExecutionSpec, ParsesEveryField) {
  const ScenarioSpec s = parse_scenario_spec(with_execution(
      R"({"backend": "calendar_queue", "partitions": 4, "strategy": "block",
          "threads": 8, "deterministic_merge": false})"));
  const ExecutionPolicy& p = s.topology.execution;
  ASSERT_TRUE(p.backend.has_value());
  EXPECT_EQ(*p.backend, sim::QueueBackend::kCalendarQueue);
  EXPECT_EQ(p.partitions, 4u);
  EXPECT_EQ(p.strategy, PartitionStrategy::kBlock);
  EXPECT_EQ(p.threads, 8u);
  EXPECT_FALSE(p.deterministic_merge);
}

TEST(ExecutionSpec, DefaultsWhenAbsent) {
  const ScenarioSpec s = parse_scenario_spec(kMinimalTopology);
  EXPECT_TRUE(s.topology.execution.is_default());
  EXPECT_FALSE(s.topology.execution.partitioned());
}

TEST(ExecutionSpec, UnknownFieldIsTypedError) {
  try {
    (void)parse_scenario_spec(with_execution(R"({"paritions": 4})"));
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(e.code(), SpecError::Code::kUnknownField);
    EXPECT_EQ(e.field(), "execution.paritions");
  }
}

TEST(ExecutionSpec, ZeroPartitionsIsTypedError) {
  try {
    (void)parse_scenario_spec(with_execution(R"({"partitions": 0})"));
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(e.code(), SpecError::Code::kBadValue);
    EXPECT_EQ(e.field(), "execution.partitions");
  }
}

TEST(ExecutionSpec, BadStrategyIsTypedError) {
  try {
    (void)parse_scenario_spec(with_execution(R"({"strategy": "zigzag"})"));
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(e.code(), SpecError::Code::kBadValue);
    EXPECT_EQ(e.field(), "execution.strategy");
  }
}

TEST(ExecutionSpec, BadBackendIsTypedError) {
  try {
    (void)parse_scenario_spec(with_execution(R"({"backend": "skiplist"})"));
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(e.code(), SpecError::Code::kBadValue);
    EXPECT_EQ(e.field(), "execution.backend");
  }
}

TEST(ExecutionSpec, RoundTripIsByteStable) {
  const std::string doc = with_execution(R"({"partitions": 4, "threads": 2})");
  const std::string emitted = serialize_scenario_spec(parse_scenario_spec(doc));
  EXPECT_EQ(serialize_scenario_spec(parse_scenario_spec(emitted)), emitted);
  EXPECT_NE(emitted.find("\"execution\""), std::string::npos);
  EXPECT_NE(emitted.find("\"partitions\": 4"), std::string::npos);
}

TEST(ExecutionSpec, DefaultExecutionIsElidedOnEmit) {
  // A spec without an execution block must serialize without one — that is
  // what keeps every pre-execution golden byte-identical.
  const std::string emitted = serialize_scenario_spec(parse_scenario_spec(kMinimalTopology));
  EXPECT_EQ(emitted.find("\"execution\""), std::string::npos);
  EXPECT_EQ(serialize_scenario_spec(parse_scenario_spec(emitted)), emitted);
}

TEST(ExecutionSpec, DeprecatedBackendAliasStillRoundTrips) {
  std::string doc = kMinimalTopology;
  doc.insert(doc.rfind('}'), ",\n  \"backend\": \"calendar_queue\"\n");
  const ScenarioSpec s = parse_scenario_spec(doc);
  ASSERT_TRUE(s.topology.backend.has_value());
  EXPECT_EQ(*s.topology.backend, sim::QueueBackend::kCalendarQueue);
  EXPECT_TRUE(s.topology.execution.is_default());
  const std::string emitted = serialize_scenario_spec(s);
  EXPECT_NE(emitted.find("\"backend\": \"calendar_queue\""), std::string::npos);
  EXPECT_EQ(emitted.find("\"execution\""), std::string::npos);
  EXPECT_EQ(serialize_scenario_spec(parse_scenario_spec(emitted)), emitted);
}

TEST(ExecutionSpec, ExplicitExecutionBackendWinsOverAlias) {
  std::string doc = kMinimalTopology;
  doc.insert(doc.rfind('}'),
             ",\n  \"backend\": \"binary_heap\","
             "\n  \"execution\": {\"backend\": \"calendar_queue\"}\n");
  const ScenarioSpec s = parse_scenario_spec(doc);
  // Both fields survive the parse; precedence is the builder's job.
  ASSERT_TRUE(s.topology.backend.has_value());
  ASSERT_TRUE(s.topology.execution.backend.has_value());
  ExecutionPolicy policy = s.topology.execution;
  if (!policy.backend && s.topology.backend) policy.backend = s.topology.backend;
  EXPECT_EQ(*policy.backend, sim::QueueBackend::kCalendarQueue);
}

TEST(ExecutionSpec, PolicyResolveThreadsGuardsZeroHardware) {
  ExecutionPolicy policy;
  policy.threads = 0;
  // Whatever hardware_concurrency reports (including the 0 = "unknown"
  // case, mapped to 1), the resolved count is always in [1, work_items].
  const std::size_t resolved = policy.resolve_threads(3);
  EXPECT_GE(resolved, 1u);
  EXPECT_LE(resolved, 3u);
  EXPECT_EQ(policy.resolve_threads(0), 1u);
  policy.threads = 5;
  EXPECT_EQ(policy.resolve_threads(2), 2u);
  EXPECT_EQ(policy.resolve_threads(100), 5u);
}

TEST(ExecutionSpec, ScalePresetEmitsPartitionedExecution) {
  const ScenarioSpec scale = spec::preset_spec("scale");
  EXPECT_TRUE(scale.topology.execution.partitioned());
  const std::string emitted = serialize_scenario_spec(scale);
  EXPECT_NE(emitted.find("\"execution\""), std::string::npos);
  EXPECT_EQ(serialize_scenario_spec(parse_scenario_spec(emitted)), emitted);
}

}  // namespace
}  // namespace rss::scenario
