// Tests for SACK (RFC 2018 blocks + RFC 6675-lite pipe recovery).

#include <gtest/gtest.h>

#include "scenario/cc_factories.hpp"
#include "scenario/wan_path.hpp"

namespace rss::tcp {
namespace {

using namespace rss::sim::literals;
using scenario::WanPath;

std::unique_ptr<WanPath> make_sack_path(double loss, std::uint64_t loss_seed = 7,
                                        bool sack = true) {
  WanPath::Config cfg;
  cfg.enable_web100 = false;
  cfg.path.ifq_capacity_packets = 100'000;  // isolate network loss from stalls
  cfg.sender.enable_sack = sack;
  cfg.receiver.enable_sack = sack;
  auto wan = std::make_unique<WanPath>(cfg, scenario::make_reno_factory());
  if (loss > 0.0) wan->nic().link()->set_loss_rate(loss, sim::Rng{loss_seed});
  return wan;
}

TEST(SackTest, LosslessPathNeverEmitsBlocks) {
  auto wan = make_sack_path(0.0);
  // No out-of-order data at the receiver means no blocks could have been
  // generated, and the sender's scoreboard must stay empty.
  wan->run_bulk_transfer(0_s, 5_s);
  EXPECT_EQ(wan->receiver().out_of_order_packets(), 0u);
  EXPECT_EQ(wan->sender().sacked_bytes(), 0u);
}

TEST(SackTest, IntegrityUnderLoss) {
  auto wan = make_sack_path(0.02);
  wan->run_bulk_transfer(0_s, 15_s);
  const auto& s = wan->sender();
  const auto& r = wan->receiver();
  EXPECT_GT(s.bytes_acked(), 1'000'000u);
  EXPECT_LE(s.bytes_acked(), r.bytes_received() + 1460);
  EXPECT_GT(s.mib().FastRetran, 0u);
}

TEST(SackTest, BeatsNewRenoAfterLossBurst) {
  // A 100 ms burst of heavy loss punches many holes into one window.
  // NewReno repairs one hole per RTT (dozens of RTTs at 60 ms); SACK
  // repairs them within a couple of RTTs. Aggregate goodput over the run
  // must reflect that.
  auto run = [](bool sack) {
    auto wan = make_sack_path(0.0, 11, sack);
    wan->simulation().at(3_s,
                         [&w = *wan] { w.nic().link()->set_loss_rate(0.2, sim::Rng{11}); });
    wan->simulation().at(3100_ms,
                         [&w = *wan] { w.nic().link()->set_loss_rate(0.0, sim::Rng{11}); });
    wan->run_bulk_transfer(0_s, 12_s);
    return wan->goodput_mbps(0_s, 12_s);
  };
  const double with_sack = run(true);
  const double without = run(false);
  EXPECT_GT(with_sack, 1.05 * without)
      << "sack=" << with_sack << " newreno=" << without;
}

TEST(SackTest, FewerRetransmissionsThanNewReno) {
  // SACK retransmits only real holes; go-back-N/NewReno resends good data.
  auto run = [](bool sack) {
    auto wan = make_sack_path(0.01, 13, sack);
    wan->run_bulk_transfer(0_s, 20_s);
    // Normalize: retransmitted bytes per acked megabyte.
    return static_cast<double>(wan->sender().mib().BytesRetrans) /
           (static_cast<double>(wan->sender().bytes_acked()) / 1e6);
  };
  EXPECT_LT(run(true), run(false));
}

TEST(SackTest, ScoreboardDrainsAfterRecovery) {
  auto wan = make_sack_path(0.0);
  // One isolated loss episode.
  wan->simulation().at(3_s, [&] { wan->nic().link()->set_loss_rate(0.3, sim::Rng{5}); });
  wan->simulation().at(3050_ms, [&] { wan->nic().link()->set_loss_rate(0.0, sim::Rng{5}); });
  wan->run_bulk_transfer(0_s, 10_s);
  // Long after the episode everything is repaired: scoreboard empty, no
  // recovery in progress, transfer moving.
  EXPECT_EQ(wan->sender().sacked_bytes(), 0u);
  EXPECT_FALSE(wan->sender().in_fast_recovery());
  EXPECT_GT(wan->sender().mib().PktsRetrans, 0u);
  EXPECT_GT(wan->sender().bytes_acked(), 30'000'000u);
}

TEST(SackTest, SenderOnlySackDegradesGracefully) {
  // Sender expects blocks, receiver never sends them: recovery silently
  // behaves like NewReno-with-empty-scoreboard; nothing wedges.
  WanPath::Config cfg;
  cfg.enable_web100 = false;
  cfg.path.ifq_capacity_packets = 100'000;
  cfg.sender.enable_sack = true;
  cfg.receiver.enable_sack = false;
  WanPath wan{cfg, scenario::make_reno_factory()};
  wan.nic().link()->set_loss_rate(0.01, sim::Rng{17});
  wan.run_bulk_transfer(0_s, 15_s);
  // At 1% loss the sustainable window is ~12 segments (~2 Mbit/s); demand
  // steady progress, not speed.
  EXPECT_GT(wan.sender().bytes_acked(), 1'500'000u);
  EXPECT_LE(wan.sender().bytes_acked(), wan.receiver().bytes_received() + 1460);
}

TEST(SackTest, WorksWithRestrictedSlowStart) {
  // The paper's algorithm composes with SACK: stall-free startup plus
  // efficient recovery from genuine network loss.
  WanPath::Config cfg;
  cfg.enable_web100 = false;
  cfg.sender.enable_sack = true;
  cfg.receiver.enable_sack = true;
  WanPath wan{cfg, scenario::make_rss_factory()};
  wan.nic().link()->set_loss_rate(0.002, sim::Rng{23});
  wan.run_bulk_transfer(0_s, 20_s);
  EXPECT_EQ(wan.sender().mib().SendStall, 0u);
  EXPECT_GT(wan.sender().mib().FastRetran, 0u);
  // 0.2% random loss bounds the window near 1.2/sqrt(p) ~ 27 segments
  // (~5 Mbit/s at 60 ms) regardless of slow-start behaviour.
  EXPECT_GT(wan.goodput_mbps(0_s, 20_s), 3.0);
}

class SackLossSweep : public ::testing::TestWithParam<double> {};

TEST_P(SackLossSweep, DeterministicAndConsistent) {
  auto run = [this] {
    auto wan = make_sack_path(GetParam(), 31);
    wan->run_bulk_transfer(0_s, 10_s);
    return std::tuple{wan->sender().bytes_acked(), wan->sender().mib().PktsRetrans,
                      wan->receiver().bytes_received()};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  EXPECT_GT(std::get<0>(a), 100'000u);
}

INSTANTIATE_TEST_SUITE_P(LossRates, SackLossSweep,
                         ::testing::Values(0.001, 0.005, 0.02, 0.05),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "loss" +
                                  std::to_string(static_cast<int>(info.param * 1000));
                         });

}  // namespace
}  // namespace rss::tcp
