#include "control/plant.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace rss::control {
namespace {

TEST(FirstOrderPlantTest, StepResponseMatchesClosedForm) {
  // y(t) = K(1 - e^{-t/tau}) for a unit step.
  FirstOrderPlant plant{2.0, 0.5};
  const double dt = 1e-3;
  double y = 0.0;
  for (int i = 0; i < 1000; ++i) y = plant.step(1.0, dt);  // t = 1.0 s
  const double expected = 2.0 * (1.0 - std::exp(-1.0 / 0.5));
  EXPECT_NEAR(y, expected, 1e-3);
}

TEST(FirstOrderPlantTest, ConvergesToGainTimesInput) {
  FirstOrderPlant plant{3.0, 0.1};
  double y = 0.0;
  for (int i = 0; i < 10000; ++i) y = plant.step(2.0, 1e-3);
  EXPECT_NEAR(y, 6.0, 1e-6);
}

TEST(FirstOrderPlantTest, DeadTimeDelaysResponse) {
  FirstOrderPlant plant{1.0, 0.1, /*dead_time=*/0.5};
  const double dt = 1e-2;
  double y = 0.0;
  // Up to t = 0.5 the output must stay at zero.
  for (int i = 0; i < 49; ++i) {
    y = plant.step(1.0, dt);
    EXPECT_NEAR(y, 0.0, 1e-9) << "leaked before dead time at step " << i;
  }
  for (int i = 0; i < 200; ++i) y = plant.step(1.0, dt);
  EXPECT_GT(y, 0.9);  // well underway after the delay
}

TEST(FirstOrderPlantTest, ValidatesParameters) {
  EXPECT_THROW(FirstOrderPlant(1.0, 0.0), std::invalid_argument);
  EXPECT_THROW(FirstOrderPlant(1.0, 1.0, -0.1), std::invalid_argument);
  FirstOrderPlant ok{1.0, 1.0};
  EXPECT_THROW(ok.step(1.0, 0.0), std::invalid_argument);
}

TEST(FirstOrderPlantTest, ResetClearsStateAndDelayLine) {
  FirstOrderPlant plant{1.0, 0.1, 0.2};
  for (int i = 0; i < 100; ++i) plant.step(1.0, 1e-2);
  plant.reset();
  EXPECT_DOUBLE_EQ(plant.output(), 0.0);
  EXPECT_NEAR(plant.step(0.0, 1e-2), 0.0, 1e-12);  // no residual delayed input
}

TEST(IntegratorPlantTest, IntegratesInput) {
  IntegratorPlant plant{2.0};
  double y = 0.0;
  for (int i = 0; i < 100; ++i) y = plant.step(0.5, 0.01);  // ∫ 2*0.5 dt over 1 s
  EXPECT_NEAR(y, 1.0, 1e-9);
}

TEST(IntegratorPlantTest, SaturatesAtBounds) {
  IntegratorPlant plant{1.0, 0.0, 0.0, 5.0};
  double y = 0.0;
  for (int i = 0; i < 1000; ++i) y = plant.step(1.0, 0.1);
  EXPECT_DOUBLE_EQ(y, 5.0);
  for (int i = 0; i < 2000; ++i) y = plant.step(-1.0, 0.1);
  EXPECT_DOUBLE_EQ(y, 0.0);
}

TEST(IntegratorPlantTest, RejectsEmptySaturationRange) {
  EXPECT_THROW(IntegratorPlant(1.0, 0.0, 1.0, 1.0), std::invalid_argument);
}

TEST(SecondOrderPlantTest, UndampedOscillationPreservesAmplitude) {
  // Symplectic integration: zero damping must not numerically explode.
  SecondOrderPlant plant{1.0, 2.0 * 3.14159265, 0.0};  // 1 Hz
  const double dt = 1e-4;
  plant.step(1.0, dt);  // kick
  double peak_early = 0.0, peak_late = 0.0;
  for (int i = 0; i < 20000; ++i) {  // 2 s
    const double y = plant.step(1.0, dt);
    if (i < 10000) {
      peak_early = std::max(peak_early, y);
    } else {
      peak_late = std::max(peak_late, y);
    }
  }
  EXPECT_NEAR(peak_late, peak_early, 0.02 * peak_early);
}

TEST(SecondOrderPlantTest, DampedStepSettlesAtGain) {
  SecondOrderPlant plant{2.0, 10.0, 0.7};
  double y = 0.0;
  for (int i = 0; i < 100000; ++i) y = plant.step(1.0, 1e-4);
  EXPECT_NEAR(y, 2.0, 1e-3);
}

TEST(RunPControlExperimentTest, ProducesTimedSamples) {
  FirstOrderPlant plant{1.0, 0.2};
  const auto response = run_p_control_experiment(plant, 1.0, 1.0, 1.0, 0.01);
  ASSERT_EQ(response.size(), 100u);
  EXPECT_NEAR(response.front().t, 0.01, 1e-12);
  EXPECT_NEAR(response.back().t, 1.0, 1e-9);
  // Monotone approach to the P-only steady state 0.5.
  EXPECT_GT(response.back().value, 0.45);
  EXPECT_LT(response.back().value, 0.55);
}

TEST(RunPControlExperimentTest, ValidatesTiming) {
  FirstOrderPlant plant{1.0, 0.2};
  EXPECT_THROW((void)run_p_control_experiment(plant, 1.0, 1.0, 0.0, 0.01),
               std::invalid_argument);
  EXPECT_THROW((void)run_p_control_experiment(plant, 1.0, 1.0, 1.0, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace rss::control
