#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace rss::sim {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng r{7};
  for (int i = 0; i < 10000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, DoubleMeanNearHalf) {
  Rng r{11};
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, NextInRespectsBounds) {
  Rng r{3};
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.next_in(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(RngTest, NextInCoversRange) {
  Rng r{5};
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 1000; ++i) ++seen[r.next_in(0, 4)];
  for (int count : seen) EXPECT_GT(count, 100);  // roughly uniform over 5 bins
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng r{13};
  const double mean = 0.25;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = r.next_exponential(mean);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, mean, 0.005);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng r{17};
  const int n = 200000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = r.next_normal(3.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng r{19};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.next_bool(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent1{99}, parent2{99};
  Rng child1 = parent1.fork();
  Rng child2 = parent2.fork();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
  // Child differs from a fresh parent stream.
  Rng parent3{99};
  int equal = 0;
  Rng child3 = parent3.fork();
  Rng parent4{99};
  (void)parent4.fork();
  for (int i = 0; i < 50; ++i) equal += (child3.next_u64() == parent4.next_u64());
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ReseedResetsStream) {
  Rng r{123};
  const auto a = r.next_u64();
  r.reseed(123);
  EXPECT_EQ(r.next_u64(), a);
}

}  // namespace
}  // namespace rss::sim
