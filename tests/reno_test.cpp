#include "tcp/reno.hpp"

#include <gtest/gtest.h>

#include "tcp/limited_slow_start.hpp"

namespace rss::tcp {
namespace {

using namespace rss::sim::literals;

/// Minimal CcHost for exercising congestion-control algorithms in
/// isolation from the sender machinery.
class MockHost final : public CcHost {
 public:
  double cwnd{0};
  double ssthresh{0};
  std::uint32_t mss_v{1460};
  std::uint64_t flight{0};
  sim::Time now_v{sim::Time::zero()};
  std::size_t ifq_occ{0};
  std::size_t ifq_cap{100};
  sim::Time srtt_v{60_ms};

  [[nodiscard]] double cwnd_bytes() const override { return cwnd; }
  void set_cwnd_bytes(double c) override { cwnd = c; }
  [[nodiscard]] double ssthresh_bytes() const override { return ssthresh; }
  void set_ssthresh_bytes(double s) override { ssthresh = s; }
  [[nodiscard]] std::uint32_t mss() const override { return mss_v; }
  [[nodiscard]] std::uint64_t flight_size_bytes() const override { return flight; }
  [[nodiscard]] sim::Time now() const override { return now_v; }
  [[nodiscard]] std::size_t ifq_occupancy_packets() const override { return ifq_occ; }
  [[nodiscard]] std::size_t ifq_capacity_packets() const override { return ifq_cap; }
  [[nodiscard]] sim::Time srtt() const override { return srtt_v; }
};

TEST(RenoTest, AttachSetsInitialWindow) {
  MockHost host;
  RenoCongestionControl reno;
  reno.attach(host);
  EXPECT_DOUBLE_EQ(host.cwnd, 2.0 * 1460);
  EXPECT_GT(host.ssthresh, 1e8);
  EXPECT_TRUE(reno.in_slow_start());
  EXPECT_EQ(reno.name(), "reno");
}

TEST(RenoTest, SlowStartAddsMssPerAck) {
  MockHost host;
  RenoCongestionControl reno;
  reno.attach(host);
  const double before = host.cwnd;
  reno.on_ack(1460);
  EXPECT_DOUBLE_EQ(host.cwnd, before + 1460);
}

TEST(RenoTest, SlowStartIncrementCappedAtMssForStretchAcks) {
  MockHost host;
  RenoCongestionControl reno;
  reno.attach(host);
  const double before = host.cwnd;
  reno.on_ack(4 * 1460);  // stretch ACK covers 4 segments
  EXPECT_DOUBLE_EQ(host.cwnd, before + 1460);
}

TEST(RenoTest, SlowStartDoublesPerRoundTrip) {
  MockHost host;
  RenoCongestionControl reno;
  reno.attach(host);
  // One "round": cwnd/mss ACKs each acking one segment.
  const double start = host.cwnd;
  const int acks = static_cast<int>(start / 1460);
  for (int i = 0; i < acks; ++i) reno.on_ack(1460);
  EXPECT_DOUBLE_EQ(host.cwnd, 2.0 * start);
}

TEST(RenoTest, CongestionAvoidanceGrowsOneMssPerRtt) {
  MockHost host;
  RenoCongestionControl reno;
  reno.attach(host);
  host.cwnd = 100.0 * 1460;
  host.ssthresh = 50.0 * 1460;  // below cwnd: CA
  ASSERT_FALSE(reno.in_slow_start());
  const double before = host.cwnd;
  for (int i = 0; i < 100; ++i) reno.on_ack(1460);  // one full window of ACKs
  EXPECT_NEAR(host.cwnd, before + 1460, 25.0);      // ~1 MSS per RTT
}

TEST(RenoTest, FastRetransmitHalvesToFlight) {
  MockHost host;
  RenoCongestionControl reno;
  reno.attach(host);
  host.flight = 100 * 1460;
  reno.on_fast_retransmit();
  EXPECT_DOUBLE_EQ(host.ssthresh, 50.0 * 1460);
}

TEST(RenoTest, SsthreshFloorTwoMss) {
  MockHost host;
  RenoCongestionControl reno;
  reno.attach(host);
  host.flight = 1460;
  reno.on_fast_retransmit();
  EXPECT_DOUBLE_EQ(host.ssthresh, 2.0 * 1460);
}

TEST(RenoTest, TimeoutCollapsesToOneMss) {
  MockHost host;
  RenoCongestionControl reno;
  reno.attach(host);
  host.cwnd = 100 * 1460;
  host.flight = 80 * 1460;
  reno.on_retransmit_timeout();
  EXPECT_DOUBLE_EQ(host.cwnd, 1460.0);
  EXPECT_DOUBLE_EQ(host.ssthresh, 40.0 * 1460);
}

TEST(RenoTest, LocalCongestionHalvesAndExitsSlowStart) {
  MockHost host;
  RenoCongestionControl reno;
  reno.attach(host);
  host.cwnd = 200 * 1460;
  host.now_v = 1_s;
  EXPECT_TRUE(reno.on_local_congestion());
  EXPECT_DOUBLE_EQ(host.cwnd, 100.0 * 1460);
  EXPECT_DOUBLE_EQ(host.ssthresh, 100.0 * 1460);
  EXPECT_FALSE(reno.in_slow_start());  // cwnd == ssthresh
}

TEST(RenoTest, LocalCongestionRateLimitedToOncePerSrtt) {
  MockHost host;
  RenoCongestionControl reno;
  reno.attach(host);
  host.cwnd = 400 * 1460;
  host.now_v = 1_s;
  EXPECT_TRUE(reno.on_local_congestion());
  const double after_first = host.cwnd;
  host.now_v = 1_s + 10_ms;  // within one SRTT (60 ms)
  EXPECT_FALSE(reno.on_local_congestion());
  EXPECT_DOUBLE_EQ(host.cwnd, after_first);
  host.now_v = 1_s + 100_ms;  // past one SRTT
  EXPECT_TRUE(reno.on_local_congestion());
  EXPECT_DOUBLE_EQ(host.cwnd, after_first / 2.0);
}

TEST(RenoTest, LocalCongestionRateLimitCanBeDisabled) {
  MockHost host;
  RenoCongestionControl::Options opt;
  opt.rate_limit_local_congestion = false;
  RenoCongestionControl reno{opt};
  reno.attach(host);
  host.cwnd = 400 * 1460;
  EXPECT_TRUE(reno.on_local_congestion());
  EXPECT_TRUE(reno.on_local_congestion());
  EXPECT_DOUBLE_EQ(host.cwnd, 100.0 * 1460);
}

TEST(LimitedSlowStartTest, ExponentialBelowMaxSsthresh) {
  MockHost host;
  LimitedSlowStart::LssOptions opt;
  opt.max_ssthresh_segments = 100;
  LimitedSlowStart lss{opt};
  lss.attach(host);
  const double before = host.cwnd;
  lss.on_ack(1460);
  EXPECT_DOUBLE_EQ(host.cwnd, before + 1460);
  EXPECT_EQ(lss.name(), "limited-slow-start");
}

TEST(LimitedSlowStartTest, ThrottledAboveMaxSsthresh) {
  MockHost host;
  LimitedSlowStart::LssOptions opt;
  opt.max_ssthresh_segments = 100;
  LimitedSlowStart lss{opt};
  lss.attach(host);
  host.cwnd = 200.0 * 1460;  // 2x max_ssthresh: K = ceil(200/50) = 4
  const double before = host.cwnd;
  lss.on_ack(1460);
  EXPECT_DOUBLE_EQ(host.cwnd, before + 1460.0 / 4.0);
}

TEST(LimitedSlowStartTest, GrowthPerRttCappedAtHalfMaxSsthresh) {
  MockHost host;
  LimitedSlowStart::LssOptions opt;
  opt.max_ssthresh_segments = 100;
  LimitedSlowStart lss{opt};
  lss.attach(host);
  host.cwnd = 200.0 * 1460;
  // One round = 200 ACKs; growth must be <= 50 segments (max_ssthresh/2).
  for (int i = 0; i < 200; ++i) lss.on_ack(1460);
  EXPECT_LE(host.cwnd, (200.0 + 51.0) * 1460);
  EXPECT_GT(host.cwnd, (200.0 + 30.0) * 1460);
}

TEST(LimitedSlowStartTest, CongestionAvoidanceUnchanged) {
  MockHost host;
  LimitedSlowStart lss;
  lss.attach(host);
  host.cwnd = 100.0 * 1460;
  host.ssthresh = 50.0 * 1460;
  const double before = host.cwnd;
  lss.on_ack(1460);
  EXPECT_NEAR(host.cwnd, before + 1460.0 / 100.0, 1.0);
}

}  // namespace
}  // namespace rss::tcp
