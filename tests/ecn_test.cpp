#include <gtest/gtest.h>

#include "net/codel.hpp"
#include "net/queue.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"

namespace rss::net {
namespace {

Packet make_packet(std::uint64_t uid, bool ect) {
  Packet p;
  p.uid = uid;
  p.payload_bytes = 1460;
  p.ect = ect;
  return p;
}

TEST(EcnStepMarkTest, MarksEctPacketsAtOrAboveThreshold) {
  DropTailQueue q{10};
  q.set_ecn_step_threshold(5);
  for (std::uint64_t i = 1; i <= 10; ++i) ASSERT_TRUE(q.enqueue(make_packet(i, true)));
  // Pre-admission occupancy 0..4 is below the step; 5..9 is at/above it.
  for (std::uint64_t i = 1; i <= 10; ++i) {
    const auto p = q.dequeue();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->ce, i > 5) << "packet " << i;
  }
  EXPECT_EQ(q.stats().ce_marked, 5u);
  EXPECT_EQ(q.stats().dropped, 0u);
}

TEST(EcnStepMarkTest, NeverMarksNonEctPackets) {
  DropTailQueue q{10};
  q.set_ecn_step_threshold(1);
  for (std::uint64_t i = 1; i <= 10; ++i) ASSERT_TRUE(q.enqueue(make_packet(i, false)));
  while (const auto p = q.dequeue()) EXPECT_FALSE(p->ce);
  EXPECT_EQ(q.stats().ce_marked, 0u);
}

TEST(EcnStepMarkTest, ZeroThresholdDisablesTheStep) {
  DropTailQueue q{10};
  for (std::uint64_t i = 1; i <= 10; ++i) ASSERT_TRUE(q.enqueue(make_packet(i, true)));
  while (const auto p = q.dequeue()) EXPECT_FALSE(p->ce);
  EXPECT_EQ(q.stats().ce_marked, 0u);
}

TEST(EcnStepMarkTest, VirtualBacklogCountsTowardTheStep) {
  DropTailQueue q{100};
  q.set_ecn_step_threshold(20);
  // Empty real queue, but a 30-packet fluid backlog: the admission sees the
  // combined pressure and marks immediately.
  q.set_virtual_backlog(30, 30 * 1460);
  ASSERT_TRUE(q.enqueue(make_packet(1, true)));
  const auto p = q.dequeue();
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->ce);
}

TEST(EcnRedTest, EarlyDecisionsMarkEctInsteadOfDropping) {
  // Instantaneous averaging and a certain drop probability make every
  // admission inside the [min, max) band an early decision.
  RedQueue::Options opt;
  opt.capacity_packets = 50;
  opt.min_threshold = 2.0;
  opt.max_threshold = 20.0;
  opt.max_drop_probability = 1.0;
  opt.queue_weight = 1.0;
  RedQueue q{opt, sim::Rng{42}};

  std::uint64_t admitted = 0;
  for (std::uint64_t i = 1; i <= 200; ++i) {
    if (q.enqueue(make_packet(i, true))) ++admitted;
    if (q.size_packets() > 10) (void)q.dequeue();  // hold occupancy in-band
  }
  EXPECT_EQ(admitted, 200u);  // every early decision became a mark
  EXPECT_GT(q.early_drops(), 0u);
  EXPECT_GT(q.stats().ce_marked, 0u);
  EXPECT_EQ(q.stats().dropped, 0u);
  EXPECT_EQ(q.forced_drops(), 0u);
}

TEST(EcnRedTest, SameBandDropsNonEctTraffic) {
  RedQueue::Options opt;
  opt.capacity_packets = 50;
  opt.min_threshold = 2.0;
  opt.max_threshold = 20.0;
  opt.max_drop_probability = 1.0;
  opt.queue_weight = 1.0;
  RedQueue q{opt, sim::Rng{42}};

  for (std::uint64_t i = 1; i <= 200; ++i) {
    (void)q.enqueue(make_packet(i, false));
    if (q.size_packets() > 10) (void)q.dequeue();
  }
  EXPECT_GT(q.stats().dropped, 0u);
  EXPECT_EQ(q.stats().ce_marked, 0u);
}

TEST(EcnRedTest, ForcedDecisionsDropEvenEctPackets) {
  // Past max_threshold the average signals genuine overload: ECT stops
  // being a shield and the packet is lost like any other.
  RedQueue::Options opt;
  opt.capacity_packets = 50;
  opt.min_threshold = 2.0;
  opt.max_threshold = 10.0;
  opt.max_drop_probability = 1.0;
  opt.queue_weight = 1.0;
  RedQueue q{opt, sim::Rng{42}};

  bool saw_rejection = false;
  for (std::uint64_t i = 1; i <= 50 && !saw_rejection; ++i) {
    saw_rejection = !q.enqueue(make_packet(i, true));
  }
  EXPECT_TRUE(saw_rejection);
  EXPECT_GT(q.forced_drops(), 0u);
  EXPECT_GT(q.stats().dropped, 0u);
}

TEST(EcnCapacityBoundaryTest, FullQueueDropsEctOnEveryDiscipline) {
  // Hard capacity is not negotiable: ECT earns a mark only while there is
  // still room to admit the packet.
  DropTailQueue droptail{4};
  for (std::uint64_t i = 1; i <= 4; ++i) ASSERT_TRUE(droptail.enqueue(make_packet(i, true)));
  EXPECT_FALSE(droptail.enqueue(make_packet(5, true)));
  EXPECT_EQ(droptail.stats().dropped, 1u);

  RedQueue::Options opt;
  opt.capacity_packets = 4;
  opt.min_threshold = 100.0;  // disarm early decisions; only hard full acts
  opt.max_threshold = 200.0;
  RedQueue red{opt, sim::Rng{7}};
  for (std::uint64_t i = 1; i <= 4; ++i) ASSERT_TRUE(red.enqueue(make_packet(i, true)));
  EXPECT_FALSE(red.enqueue(make_packet(5, true)));
  EXPECT_EQ(red.stats().dropped, 1u);

  sim::Simulation sim{1};
  CodelQueue codel{{.capacity_packets = 4}, sim};
  for (std::uint64_t i = 1; i <= 4; ++i) ASSERT_TRUE(codel.enqueue(make_packet(i, true)));
  EXPECT_FALSE(codel.enqueue(make_packet(5, true)));
  EXPECT_EQ(codel.stats().dropped, 1u);
}

}  // namespace
}  // namespace rss::net
