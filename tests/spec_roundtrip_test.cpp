// Spec-format parity: the four C++ topology presets (WanPath, Dumbbell,
// ParkingLot, MultiBottleneckChain) must survive the trip through the JSON
// file format — emit -> parse -> re-emit is byte-identical, and the
// re-parsed spec rebuilds a scenario whose observable behaviour (Web100
// counters, goodput) is byte-identical to one built from the in-memory
// spec. This is what locks `rss_scenario --emit-preset` output to the C++
// presets it mirrors.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenario/builder.hpp"
#include "scenario/dumbbell.hpp"
#include "scenario/presets.hpp"
#include "scenario/spec_cli.hpp"
#include "scenario/spec_io.hpp"
#include "scenario/wan_path.hpp"
#include "web100/mib.hpp"

namespace rss::scenario::spec {
namespace {

using namespace rss::sim::literals;

/// Exact observable state of a 2-second run: per flow, the MIB counters
/// that summarize everything the flow did on the wire.
std::vector<std::uint64_t> fingerprint(const ScenarioSpec& spec) {
  auto scenario = build_scenario(spec);
  scenario->run_until(2_s);
  std::vector<std::uint64_t> out;
  for (std::size_t i = 0; i < spec.topology.flows.size(); ++i) {
    const web100::Mib& mib = scenario->sender(i).mib();
    out.push_back(mib.ThruBytesAcked);
    out.push_back(mib.PktsOut);
    out.push_back(mib.DataBytesOut);
    out.push_back(mib.PktsRetrans);
    out.push_back(mib.SendStall);
    out.push_back(mib.Timeouts);
    out.push_back(mib.AcksIn);
  }
  return out;
}

class PresetRoundTripTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PresetRoundTripTest, SerializeParseSerializeIsByteStable) {
  const ScenarioSpec original = preset_spec(GetParam());
  const std::string emitted = serialize_scenario_spec(original);
  const ScenarioSpec reparsed = parse_scenario_spec(emitted);
  EXPECT_EQ(serialize_scenario_spec(reparsed), emitted);
}

TEST_P(PresetRoundTripTest, ReparsedSpecPreservesTheTopology) {
  const ScenarioSpec original = preset_spec(GetParam());
  const ScenarioSpec reparsed = parse_scenario_spec(serialize_scenario_spec(original));

  EXPECT_EQ(reparsed.topology.nodes, original.topology.nodes);
  EXPECT_EQ(reparsed.topology.seed, original.topology.seed);
  EXPECT_EQ(reparsed.topology.backend, original.topology.backend);
  ASSERT_EQ(reparsed.topology.links.size(), original.topology.links.size());
  for (std::size_t i = 0; i < original.topology.links.size(); ++i) {
    const LinkSpec& a = original.topology.links[i];
    const LinkSpec& b = reparsed.topology.links[i];
    EXPECT_EQ(b.a, a.a);
    EXPECT_EQ(b.b, a.b);
    EXPECT_EQ(b.delay, a.delay);
    EXPECT_EQ(b.a_dev.rate, a.a_dev.rate);
    EXPECT_EQ(b.a_dev.ifq_packets, a.a_dev.ifq_packets);
    EXPECT_EQ(b.a_dev.qdisc, a.a_dev.qdisc);
    EXPECT_EQ(b.a_dev.name, a.a_dev.name);
    EXPECT_EQ(b.b_dev.rate, a.b_dev.rate);
    EXPECT_EQ(b.b_dev.ifq_packets, a.b_dev.ifq_packets);
    EXPECT_EQ(b.b_dev.name, a.b_dev.name);
  }
  ASSERT_EQ(reparsed.topology.flows.size(), original.topology.flows.size());
  for (std::size_t i = 0; i < original.topology.flows.size(); ++i) {
    const FlowSpec& a = original.topology.flows[i];
    const FlowSpec& b = reparsed.topology.flows[i];
    EXPECT_EQ(b.src, a.src);
    EXPECT_EQ(b.dst, a.dst);
    EXPECT_EQ(b.flow_id, a.flow_id);
    EXPECT_EQ(b.start, a.start);
    EXPECT_EQ(b.sender.mss, a.sender.mss);
    EXPECT_EQ(b.web100, a.web100);
    EXPECT_EQ(b.web100_poll_period, a.web100_poll_period);
  }
}

TEST_P(PresetRoundTripTest, ReparsedSpecRebuildsAnIdenticalScenario) {
  const ScenarioSpec original = preset_spec(GetParam());
  const ScenarioSpec reparsed = parse_scenario_spec(serialize_scenario_spec(original));
  EXPECT_EQ(fingerprint(reparsed), fingerprint(original));
}

INSTANTIATE_TEST_SUITE_P(AllPresets, PresetRoundTripTest,
                         ::testing::Values("wanpath", "dumbbell", "parkinglot", "chain"),
                         [](const auto& info) { return info.param; });

// --- preset specs vs the C++ Config surface --------------------------------

TEST(PresetSpecTest, WanpathSpecMatchesTheCppPreset) {
  // The emitted spec is exactly WanPath::make_spec(default Config): same
  // JSON both ways.
  ScenarioSpec via_cpp;
  via_cpp.name = "wanpath";
  via_cpp.topology = WanPath::make_spec(WanPath::Config{});
  via_cpp.flow_cc = {"reno"};
  EXPECT_EQ(serialize_scenario_spec(preset_spec("wanpath")),
            serialize_scenario_spec(via_cpp));
}

TEST(PresetSpecTest, UnknownPresetThrows) {
  EXPECT_THROW((void)preset_spec("torus"), std::invalid_argument);
}

// --- the spec runner -------------------------------------------------------

TEST(RunSpecTest, EmitsOneRowPerPointAndFlowWithSweepColumns) {
  const metrics::Table table = run_spec_text(R"({
    "nodes": ["a", "b"],
    "links": [{"a": "a", "b": "b", "delay": "5ms",
               "a_dev": {"rate": "50mbps", "ifq_packets": 50}}],
    "flows": [{"src": "a", "dst": "b", "cc": "reno"},
              {"src": "b", "dst": "a", "cc": "rss"}],
    "run": {"duration": "1s"},
    "sweep": {"axes": [{"field": "seed", "values": [1, 2, 3]}]}
  })");
  ASSERT_EQ(table.row_count(), 6u);  // 3 points x 2 flows
  ASSERT_TRUE(table.column_index("seed").has_value());
  ASSERT_TRUE(table.column_index("goodput_mbps").has_value());
  EXPECT_EQ(table.at(0, *table.column_index("seed")).text, "1");
  EXPECT_EQ(table.at(5, *table.column_index("seed")).text, "3");
  EXPECT_EQ(table.at(0, *table.column_index("cc")).text, "reno");
  EXPECT_EQ(table.at(1, *table.column_index("cc")).text, "rss");
  // Both flows moved data.
  EXPECT_GT(table.at(0, *table.column_index("goodput_mbps")).number, 1.0);
  EXPECT_GT(table.at(1, *table.column_index("goodput_mbps")).number, 1.0);
}

TEST(RunSpecTest, MeasureWindowReportsDeltasNotTotals) {
  // The flow saturates a 10 Mb/s link from t=0; measuring over [2s, 4s]
  // must report the windowed rate (~10 Mb/s), not total-bytes/2s (~2x the
  // link rate, which is what a since-boot average over the short window
  // would give).
  const char* base = R"({
    "nodes": ["a", "b"],
    "links": [{"a": "a", "b": "b", "delay": "5ms",
               "a_dev": {"rate": "10mbps", "ifq_packets": 50}}],
    "flows": [{"src": "a", "dst": "b", "start": "0s", "cc": "reno"}],
    "run": {"duration": "4s"%s}
  })";
  char windowed[1024];
  std::snprintf(windowed, sizeof windowed, base, R"(, "measure_start": "2s")");
  char total[1024];
  std::snprintf(total, sizeof total, base, "");

  const metrics::Table w = run_spec_text(windowed);
  const metrics::Table t = run_spec_text(total);
  const std::size_t col = *w.column_index("goodput_mbps");
  // Windowed goodput is bounded by the link rate (plus slack for the
  // final in-flight window) — the pre-fix behavior reported ~2x.
  EXPECT_LE(w.at(0, col).number, 11.0);
  EXPECT_GT(w.at(0, col).number, 5.0);
  // And it is at least the whole-run average (no slow-start ramp inside
  // the window).
  EXPECT_GE(w.at(0, col).number, t.at(0, col).number - 0.5);
}

TEST(RunSpecTest, IsDeterministicAcrossThreadCounts) {
  const char* text = R"({
    "nodes": ["a", "b"],
    "links": [{"a": "a", "b": "b", "delay": "2ms",
               "a_dev": {"rate": "20mbps", "ifq_packets": 30}}],
    "flows": [{"src": "a", "dst": "b", "cc": "reno"}],
    "run": {"duration": "1s"},
    "sweep": {"axes": [{"field": "links[0].a_dev.ifq_packets",
                        "values": [10, 20, 30, 40]}]}
  })";
  const std::string serial = run_spec_text(text, 1).to_csv();
  const std::string parallel = run_spec_text(text, 4).to_csv();
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace rss::scenario::spec
