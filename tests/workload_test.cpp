#include "workload/apps.hpp"

#include <gtest/gtest.h>

#include "scenario/cc_factories.hpp"
#include "scenario/wan_path.hpp"

namespace rss::workload {
namespace {

using namespace rss::sim::literals;
using scenario::WanPath;

TEST(BulkTransferAppTest, UnboundedSourceStartsAtGivenTime) {
  WanPath wan{WanPath::Config{}, scenario::make_reno_factory()};
  BulkTransferApp app{wan.simulation(), wan.sender(), 2_s};
  wan.simulation().run_until(1_s);
  EXPECT_FALSE(app.started());
  EXPECT_EQ(wan.sender().bytes_sent(), 0u);
  wan.simulation().run_until(5_s);
  EXPECT_TRUE(app.started());
  EXPECT_GT(wan.sender().bytes_sent(), 0u);
}

TEST(BulkTransferAppTest, FiniteObjectSendsExactly) {
  WanPath wan{WanPath::Config{}, scenario::make_reno_factory()};
  BulkTransferApp app{wan.simulation(), wan.sender(), 0_s, 200'000};
  wan.simulation().run_until(20_s);
  EXPECT_EQ(wan.receiver().bytes_received(), 200'000u);
}

TEST(OnOffAppTest, AlternatesPhases) {
  WanPath wan{WanPath::Config{}, scenario::make_reno_factory()};
  OnOffApp::Options opt;
  opt.start = 0_s;
  opt.on_duration = 500_ms;
  opt.off_duration = 500_ms;
  opt.rate = net::DataRate::mbps(10);
  OnOffApp app{wan.simulation(), wan.sender(), opt};
  wan.simulation().run_until(3_s);
  // 3 s = ~3 on-phases of 0.5 s at 10 Mbps = ~1.875 MB offered.
  EXPECT_NEAR(static_cast<double>(app.bytes_offered()), 1.875e6, 0.4e6);
  EXPECT_GT(wan.receiver().bytes_received(), 500'000u);
}

TEST(OnOffAppTest, OfferedLoadMatchesRateDuringOn) {
  WanPath wan{WanPath::Config{}, scenario::make_reno_factory()};
  OnOffApp::Options opt;
  opt.on_duration = 1_s;
  opt.off_duration = 1000_s;  // effectively one burst
  opt.rate = net::DataRate::mbps(8);
  OnOffApp app{wan.simulation(), wan.sender(), opt};
  wan.simulation().run_until(5_s);
  EXPECT_NEAR(static_cast<double>(app.bytes_offered()), 1e6, 5e4);
}

TEST(OnOffAppTest, ValidatesTick) {
  WanPath wan{WanPath::Config{}, scenario::make_reno_factory()};
  OnOffApp::Options opt;
  opt.tick = 0_ms;
  EXPECT_THROW(OnOffApp(wan.simulation(), wan.sender(), opt), std::invalid_argument);
}

TEST(PoissonPacketSourceTest, RateMatchesConfiguration) {
  WanPath wan{WanPath::Config{}, scenario::make_reno_factory()};
  PoissonPacketSource::Options opt;
  opt.dst_node = 2;  // the receiver node
  opt.packets_per_second = 500.0;
  PoissonPacketSource src{wan.simulation(), wan.sender_node(), opt};
  wan.simulation().run_until(10_s);
  EXPECT_NEAR(static_cast<double>(src.packets_sent()), 5000.0, 350.0);
}

TEST(PoissonPacketSourceTest, StopsAtConfiguredTime) {
  WanPath wan{WanPath::Config{}, scenario::make_reno_factory()};
  PoissonPacketSource::Options opt;
  opt.dst_node = 2;
  opt.packets_per_second = 1000.0;
  opt.stop = 1_s;
  PoissonPacketSource src{wan.simulation(), wan.sender_node(), opt};
  wan.simulation().run_until(5_s);
  EXPECT_NEAR(static_cast<double>(src.packets_sent()), 1000.0, 150.0);
}

TEST(PoissonPacketSourceTest, CompetesForIfqAndCanStall) {
  // Cross traffic at ~2x the NIC rate must observe stalls.
  WanPath wan{WanPath::Config{}, scenario::make_reno_factory()};
  PoissonPacketSource::Options opt;
  opt.dst_node = 2;
  opt.payload_bytes = 1460;
  opt.packets_per_second = 17000.0;  // ~200 Mbps into a 100 Mbps NIC
  PoissonPacketSource src{wan.simulation(), wan.sender_node(), opt};
  wan.simulation().run_until(2_s);
  EXPECT_GT(src.packets_stalled(), 0u);
}

TEST(PoissonPacketSourceTest, ValidatesRate) {
  WanPath wan{WanPath::Config{}, scenario::make_reno_factory()};
  PoissonPacketSource::Options opt;
  opt.packets_per_second = 0.0;
  EXPECT_THROW(PoissonPacketSource(wan.simulation(), wan.sender_node(), opt),
               std::invalid_argument);
}

}  // namespace
}  // namespace rss::workload
