// Zero-allocation invariant for the event core, enforced at runtime.
//
// PR 3's headline claim is that the steady-state scheduler hot path —
// schedule / cancel / reschedule (the per-ACK RTO pattern) and the
// schedule_train pop loop (packet serialization bursts) — performs no heap
// allocation. scripts/lint_invariants.py bans the allocating *constructs*
// statically; this suite counts actual operator-new calls via the
// sim/alloc_guard.hpp hook and asserts the count is exactly zero once the
// arena, free list, and queue storage are warm.
//
// Warm-up matters: the first iterations legitimately allocate (slot arena
// growth, heap/bucket vector capacity). Steady state starts when a loop's
// working set stops growing — which the arena-flatness tests already pin —
// so each test runs one warm-up round, then measures an identical round.

#define RSS_ALLOC_GUARD_IMPLEMENT
#include "sim/alloc_guard.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/partition.hpp"
#include "sim/scheduler.hpp"
#include "sim/simulation.hpp"
#include "sim/time.hpp"

namespace rss::sim {
namespace {

using namespace rss::sim::literals;

TEST(AllocGuard, HookIsInstalledAndCounts) {
  ASSERT_TRUE(alloc_guard::installed());
  const alloc_guard::AllocScope scope;
  std::vector<std::uint64_t> v(1024);  // allocator reaches operator new
  EXPECT_GE(scope.allocations(), 1u);
  EXPECT_GE(scope.bytes(), 1024 * sizeof(std::uint64_t));
}

TEST(AllocGuard, InlineCallbackNeverAllocates) {
  std::uint64_t sink = 0;
  const alloc_guard::AllocScope scope;
  for (int i = 0; i < 1000; ++i) {
    Scheduler::Callback cb{[&sink] { ++sink; }};
    Scheduler::Callback moved{std::move(cb)};
    moved();
  }
  EXPECT_EQ(sink, 1000u);
  EXPECT_EQ(scope.allocations(), 0u);
}

/// The per-ACK RTO pattern: arm a timer, cancel it, arm the next one, with a
/// periodic pop keeping the queue's drain path hot too.
void rto_storm_round(Scheduler& s, std::uint64_t& fired, int iterations) {
  for (int i = 0; i < iterations; ++i) {
    const EventId rto = s.schedule_in(10_ms, [&fired] { ++fired; });
    s.schedule_in(1_us, [&fired] { ++fired; });  // tick, popped below
    ASSERT_TRUE(s.cancel(rto));
    s.run_until(s.now() + 2_us);  // pops the tick, leaves nothing pending
    ASSERT_TRUE(s.empty());
  }
}

class AllocGuardBackends : public ::testing::TestWithParam<QueueBackend> {};

TEST_P(AllocGuardBackends, SteadyStateScheduleCancelRescheduleIsAllocFree) {
  Scheduler s{GetParam()};
  std::uint64_t fired = 0;
  rto_storm_round(s, fired, 2000);  // warm-up: arena + queue storage growth
  const std::size_t warm_slots = s.arena_slots();

  const alloc_guard::AllocScope scope;
  rto_storm_round(s, fired, 2000);
  EXPECT_EQ(scope.allocations(), 0u)
      << "steady-state schedule/cancel/reschedule allocated " << scope.allocations()
      << " times (" << scope.bytes() << " bytes)";
  EXPECT_EQ(s.arena_slots(), warm_slots) << "slot arena grew in steady state";
}

TEST_P(AllocGuardBackends, SteadyStateTrainPopLoopIsAllocFree) {
  Scheduler s{GetParam()};
  std::uint64_t fired = 0;
  auto run_train = [&] {
    s.schedule_train(s.now() + 1_us, 12_us, 3000, [&fired] { ++fired; });
    s.run();
  };
  run_train();  // warm-up
  ASSERT_EQ(fired, 3000u);

  const alloc_guard::AllocScope scope;
  run_train();
  EXPECT_EQ(fired, 6000u);
  EXPECT_EQ(scope.allocations(), 0u)
      << "steady-state train pop loop allocated " << scope.allocations() << " times ("
      << scope.bytes() << " bytes)";
}

TEST_P(AllocGuardBackends, CancelInsideTrainStaysAllocFree) {
  Scheduler s{GetParam()};
  auto round = [&] {
    std::uint64_t fired = 0;
    EventId id{};
    id = s.schedule_train(s.now() + 1_us, 5_us, 1000, [&] {
      if (++fired == 100) s.cancel(id);
    });
    s.run();
    EXPECT_EQ(fired, 100u);
  };
  // One round spans ~500us but the calendar backend's year is 16 days x
  // 100us = 1.6ms, so a single round leaves most bucket vectors at zero
  // capacity and the next round would allocate on first insert into each
  // cold bucket. Warm until a full year has elapsed so every bucket owns
  // storage before measuring.
  while (s.now() < 2_ms) round();

  const alloc_guard::AllocScope scope;
  round();
  EXPECT_EQ(scope.allocations(), 0u);
}

/// Steady-state partitioned window loop: once the handoff channels' staging
/// vectors, the merge scratch, and both schedulers' arenas are warm, a
/// window round — stage, publish, drain, deliver — performs no heap
/// allocation. Measured on the single-worker path (threads = 1): libstdc++'s
/// std::barrier allocates its own state, so the threaded path pays a fixed
/// per-run_until setup cost, but the per-window loop itself is shared.
TEST(AllocGuard, SteadyStatePartitionWindowLoopIsAllocFree) {
  struct Counter {
    Simulation* sim{nullptr};
    std::uint64_t delivered{0};

    static void deliver(void* self, const std::byte* payload, Time at, Time staged_at,
                        std::uint32_t origin, std::uint64_t rank) {
      (void)payload;
      auto* c = static_cast<Counter*>(self);
      c->sim->at_imported(origin, rank, staged_at, at, [c] { ++c->delivered; });
    }
  };

  Simulation a{1};
  Simulation b{2};
  PartitionedEngine engine{{&a, &b}, {.lookahead = 100_us, .threads = 1}};
  HandoffChannel& ab = engine.add_channel(0, 1);
  Counter counter{&b, 0};

  Time horizon = Time::zero();
  auto round = [&](int windows) {
    const Time start = horizon;
    for (int i = 0; i < windows; ++i) {
      a.at(start + Time::microseconds(i * 100), [&] {
        const std::uint64_t tag = 0;
        ab.stage(a.now() + 100_us, a.now(), 0, a.scheduler().draw_rank(0), &counter,
                 &Counter::deliver, tag);
      });
    }
    horizon = start + Time::microseconds(windows * 100 + 200);
    engine.run_until(horizon);
  };

  round(64);  // warm-up: channel storage, merge scratch, both arenas
  ASSERT_EQ(counter.delivered, 64u);

  const alloc_guard::AllocScope scope;
  round(64);
  EXPECT_EQ(counter.delivered, 128u);
  EXPECT_EQ(scope.allocations(), 0u)
      << "steady-state window loop allocated " << scope.allocations() << " times ("
      << scope.bytes() << " bytes)";
}

INSTANTIATE_TEST_SUITE_P(Backends, AllocGuardBackends,
                         ::testing::Values(QueueBackend::kBinaryHeap,
                                           QueueBackend::kCalendarQueue),
                         [](const auto& info) {
                           return info.param == QueueBackend::kBinaryHeap ? "heap" : "calendar";
                         });

}  // namespace
}  // namespace rss::sim
