#include "tcp/rtt_estimator.hpp"

#include <gtest/gtest.h>

namespace rss::tcp {
namespace {

using sim::Time;
using namespace rss::sim::literals;

TEST(RttEstimatorTest, InitialRtoBeforeAnySample) {
  RttEstimator rtt;
  EXPECT_FALSE(rtt.has_sample());
  EXPECT_EQ(rtt.rto(), 1_s);  // RFC 6298 default
}

TEST(RttEstimatorTest, FirstSampleSetsSrttAndVar) {
  RttEstimator rtt;
  rtt.add_sample(60_ms);
  EXPECT_TRUE(rtt.has_sample());
  EXPECT_EQ(rtt.srtt(), 60_ms);
  EXPECT_EQ(rtt.rttvar(), 30_ms);
  // RTO = 60 + 4*30 = 180ms -> floored to the 200ms minimum.
  EXPECT_EQ(rtt.rto(), 200_ms);
}

TEST(RttEstimatorTest, SmoothsTowardConstantRtt) {
  RttEstimator rtt;
  for (int i = 0; i < 100; ++i) rtt.add_sample(60_ms);
  EXPECT_EQ(rtt.srtt(), 60_ms);
  // Constant samples drive RTTVAR toward zero; RTO hits the floor.
  EXPECT_LT(rtt.rttvar(), 1_ms);
  EXPECT_EQ(rtt.rto(), 200_ms);
}

TEST(RttEstimatorTest, VarianceRaisesRto) {
  RttEstimator rtt;
  for (int i = 0; i < 50; ++i) rtt.add_sample(i % 2 ? 40_ms : 160_ms);
  EXPECT_GT(rtt.rto(), 200_ms);  // jitter must push RTO above the floor
}

TEST(RttEstimatorTest, RfcUpdateFormulaExact) {
  RttEstimator rtt;
  rtt.add_sample(100_ms);
  rtt.add_sample(200_ms);
  // RTTVAR = 0.75*50 + 0.25*|100-200| = 62.5ms; SRTT = 0.875*100+0.125*200 = 112.5ms
  EXPECT_EQ(rtt.rttvar(), Time::from_seconds(0.0625));
  EXPECT_EQ(rtt.srtt(), Time::from_seconds(0.1125));
  EXPECT_EQ(rtt.rto(), Time::from_seconds(0.1125 + 4 * 0.0625));
}

TEST(RttEstimatorTest, BackoffDoublesAndResets) {
  RttEstimator rtt;
  rtt.add_sample(100_ms);
  const Time base = rtt.rto();
  rtt.backoff();
  EXPECT_EQ(rtt.rto(), base * 2);
  rtt.backoff();
  EXPECT_EQ(rtt.rto(), base * 4);
  rtt.reset_backoff();
  EXPECT_EQ(rtt.rto(), base);
}

TEST(RttEstimatorTest, RtoCappedAtMax) {
  RttEstimator rtt;
  rtt.add_sample(10_s);
  for (int i = 0; i < 20; ++i) rtt.backoff();
  EXPECT_EQ(rtt.rto(), 60_s);
}

TEST(RttEstimatorTest, TracksMinRtt) {
  RttEstimator rtt;
  rtt.add_sample(80_ms);
  rtt.add_sample(60_ms);
  rtt.add_sample(100_ms);
  EXPECT_EQ(rtt.min_rtt(), 60_ms);
}

TEST(RttEstimatorTest, NegativeSampleIgnored) {
  RttEstimator rtt;
  rtt.add_sample(Time::zero() - 5_ms);
  EXPECT_FALSE(rtt.has_sample());
}

TEST(RttEstimatorTest, CustomOptions) {
  RttEstimator::Options opt;
  opt.min_rto = 10_ms;
  opt.initial_rto = 3_s;
  RttEstimator rtt{opt};
  EXPECT_EQ(rtt.rto(), 3_s);
  for (int i = 0; i < 100; ++i) rtt.add_sample(5_ms);
  EXPECT_EQ(rtt.rto(), 10_ms);
}

}  // namespace
}  // namespace rss::tcp
