// Property suite for the event core: randomized schedules must execute in
// exact (time, insertion) order under both the binary-heap Scheduler and
// the CalendarQueue, and the two structures must agree item for item.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"

namespace rss::sim {
namespace {

struct SchedulePlan {
  std::uint64_t seed;
  std::size_t events;
  std::int64_t horizon_ns;
};

class RandomScheduleTest : public ::testing::TestWithParam<SchedulePlan> {};

TEST_P(RandomScheduleTest, SchedulerExecutesInTimeThenInsertionOrder) {
  const auto plan = GetParam();
  Rng rng{plan.seed};
  Scheduler s;

  struct Expected {
    Time at;
    std::size_t insertion;
  };
  std::vector<Expected> expected;
  std::vector<std::size_t> observed;
  expected.reserve(plan.events);

  for (std::size_t i = 0; i < plan.events; ++i) {
    const Time at = Time::nanoseconds(static_cast<std::int64_t>(
        rng.next_in(0, static_cast<std::uint64_t>(plan.horizon_ns))));
    expected.push_back({at, i});
    s.schedule_at(at, [&observed, i] { observed.push_back(i); });
  }
  s.run();

  std::stable_sort(expected.begin(), expected.end(),
                   [](const Expected& a, const Expected& b) { return a.at < b.at; });
  ASSERT_EQ(observed.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(observed[i], expected[i].insertion) << "position " << i;
  }
}

TEST_P(RandomScheduleTest, RandomCancellationsNeverFireAndOthersAlwaysDo) {
  const auto plan = GetParam();
  Rng rng{plan.seed ^ 0xABCDEF};
  Scheduler s;
  std::vector<EventId> ids(plan.events);
  std::vector<bool> fired(plan.events, false);
  for (std::size_t i = 0; i < plan.events; ++i) {
    const Time at = Time::nanoseconds(static_cast<std::int64_t>(
        rng.next_in(1, static_cast<std::uint64_t>(plan.horizon_ns))));
    ids[i] = s.schedule_at(at, [&fired, i] { fired[i] = true; });
  }
  std::vector<bool> cancelled(plan.events, false);
  for (std::size_t i = 0; i < plan.events; ++i) {
    if (rng.next_bool(0.4)) {
      cancelled[i] = true;
      EXPECT_TRUE(s.cancel(ids[i]));
    }
  }
  s.run();
  for (std::size_t i = 0; i < plan.events; ++i) {
    EXPECT_EQ(fired[i], !cancelled[i]) << "event " << i;
  }
}

TEST_P(RandomScheduleTest, CalendarQueueAgreesWithHeapOrder) {
  const auto plan = GetParam();
  Rng rng{plan.seed ^ 0x5555};
  CalendarQueue cal;

  struct Entry {
    Time at;
    std::uint64_t seq;
  };
  std::vector<Entry> entries;
  for (std::size_t i = 0; i < plan.events; ++i) {
    const Time at = Time::nanoseconds(static_cast<std::int64_t>(
        rng.next_in(0, static_cast<std::uint64_t>(plan.horizon_ns))));
    entries.push_back({at, i});
    cal.push(at, i, [] {});
  }
  std::stable_sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  });

  for (std::size_t i = 0; i < entries.size(); ++i) {
    ASSERT_FALSE(cal.empty());
    const auto item = cal.pop_min();
    EXPECT_EQ(item.at, entries[i].at) << "position " << i;
    EXPECT_EQ(item.seq, entries[i].seq) << "position " << i;
  }
  EXPECT_TRUE(cal.empty());
}

TEST_P(RandomScheduleTest, CalendarQueueInterleavedPushPop) {
  // Pops interleaved with pushes (monotone non-decreasing push times after
  // pops, as a simulator produces) must still come out sorted.
  const auto plan = GetParam();
  Rng rng{plan.seed ^ 0x9999};
  CalendarQueue cal;
  Time now = Time::zero();
  std::uint64_t seq = 0;
  Time last_popped = Time::zero();
  std::size_t pops = 0;

  for (std::size_t round = 0; round < plan.events; ++round) {
    const auto burst = rng.next_in(1, 4);
    for (std::uint64_t b = 0; b < burst; ++b) {
      const Time at = now + Time::nanoseconds(static_cast<std::int64_t>(
                                rng.next_in(0, 1'000'000)));
      cal.push(at, seq++, [] {});
    }
    if (!cal.empty() && rng.next_bool(0.7)) {
      const auto item = cal.pop_min();
      EXPECT_GE(item.at, last_popped);
      last_popped = item.at;
      now = item.at;
      ++pops;
    }
  }
  while (!cal.empty()) {
    const auto item = cal.pop_min();
    EXPECT_GE(item.at, last_popped);
    last_popped = item.at;
    ++pops;
  }
  EXPECT_EQ(pops, seq);
}

INSTANTIATE_TEST_SUITE_P(
    Plans, RandomScheduleTest,
    ::testing::Values(SchedulePlan{1, 100, 1'000},          // dense ties
                      SchedulePlan{2, 1'000, 1'000'000},    // typical
                      SchedulePlan{3, 5'000, 100},          // extreme tie pressure
                      SchedulePlan{4, 2'000, 1'000'000'000},// sparse
                      SchedulePlan{5, 500, 50'000}),
    [](const ::testing::TestParamInfo<SchedulePlan>& info) {
      return "seed" + std::to_string(info.param.seed) + "_n" +
             std::to_string(info.param.events);
    });

TEST(CalendarQueueTest, ResizesUnderLoad) {
  CalendarQueue cal{16, Time::microseconds(1)};
  for (std::uint64_t i = 0; i < 1000; ++i)
    cal.push(Time::nanoseconds(static_cast<std::int64_t>(i * 137 % 100000)), i, [] {});
  EXPECT_GT(cal.resizes(), 0u);
  EXPECT_GT(cal.day_count(), 16u);
  Time last = Time::zero();
  while (!cal.empty()) {
    const auto item = cal.pop_min();
    EXPECT_GE(item.at, last);
    last = item.at;
  }
}

TEST(CalendarQueueTest, RejectsPastPushAndEmptyPop) {
  CalendarQueue cal;
  cal.push(Time::milliseconds(5), 1, [] {});
  (void)cal.pop_min();
  EXPECT_THROW(cal.push(Time::milliseconds(1), 2, [] {}), std::invalid_argument);
  EXPECT_THROW((void)cal.pop_min(), std::logic_error);
}

TEST(CalendarQueueTest, ValidatesConstruction) {
  EXPECT_THROW(CalendarQueue(0, Time::microseconds(1)), std::invalid_argument);
  EXPECT_THROW(CalendarQueue(16, Time::zero()), std::invalid_argument);
}

}  // namespace
}  // namespace rss::sim
